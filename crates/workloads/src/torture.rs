//! A riscv-torture-style random instruction generator.
//!
//! Generates terminating bare-metal programs from a seed: random ALU and
//! bit-manipulation operations over a register window, constrained
//! loads/stores into a sandbox, and bounded forward branches — all inside
//! a fixed-trip-count outer loop, ending with a register checksum in
//! `a0`. Used by the cross-interpreter and DUT-vs-REF property tests
//! (the paper uses "existing open-source test generation frameworks" for
//! exactly this role).
//!
//! Generation is split in two phases so failing programs can be
//! *minimized*: [`TortureProgram::generate`] deterministically derives an
//! abstract body-instruction list from the seed, and
//! [`TortureProgram::emit_subset`] assembles any kept-subset of that list
//! (prologue, loop scaffolding and checksum epilogue always included)
//! into a runnable [`Program`]. A campaign's delta-debugger shrinks the
//! kept-mask; `(seed, config, mask)` is a complete reproducer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use riscv_isa::asm::{reg, Asm, Program};
use riscv_isa::op::Op;
use serde::{Deserialize, Serialize};

/// Generator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TortureConfig {
    /// Instructions per loop body.
    pub body_len: usize,
    /// Outer-loop trip count.
    pub iterations: i64,
    /// Include loads/stores.
    pub memory_ops: bool,
    /// Include forward branches.
    pub branches: bool,
    /// Include M-extension ops.
    pub muldiv: bool,
    /// Sprinkle compressed (RVC) instructions, misaligning later 4-byte
    /// instructions across fetch-block boundaries.
    pub compressed: bool,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            body_len: 60,
            iterations: 50,
            memory_ops: true,
            branches: true,
            muldiv: true,
            compressed: false,
        }
    }
}

impl TortureConfig {
    /// Clamp the numeric knobs into the range the generator (and a
    /// campaign's cycle budget) can sensibly handle. Fuzz mutators tweak
    /// `body_len`/`iterations` blindly and rely on this to stay valid.
    pub fn clamped(mut self) -> Self {
        self.body_len = self.body_len.clamp(8, 256);
        self.iterations = self.iterations.clamp(1, 1000);
        self
    }
}

const SANDBOX: i64 = 0x8004_0000;
/// Registers the generator may clobber (x5..x15 plus x28..x31).
const WINDOW: [u8; 15] = [5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 28, 29, 30, 31];

/// Memory-access flavours of a sandboxed [`BodyInstr::Mem`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemAccess {
    /// `sd rt, 0(t4)`
    Sd,
    /// `ld rt, 0(t4)`
    Ld,
    /// `lw rt, 0(t4)`
    Lw,
    /// `lhu rt, 0(t4)`
    Lhu,
    /// `lb rt, 0(t4)`
    Lb,
}

/// Branch flavours of a [`BodyInstr::Branch`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchKind {
    /// `beq rs1, rs2, fwd`
    Beq,
    /// `bne rs1, rs2, fwd`
    Bne,
    /// `blt rs1, rs2, fwd`
    Blt,
    /// `bgeu rs1, rs2, fwd`
    Bgeu,
}

/// Compressed-instruction flavours of a [`BodyInstr::Compressed`] slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CompressedKind {
    /// `c.addi rd, imm`
    CAddi {
        /// Destination register.
        rd: u8,
        /// 6-bit signed immediate.
        imm: i64,
    },
    /// `c.li rd, imm`
    CLi {
        /// Destination register.
        rd: u8,
        /// 6-bit signed immediate.
        imm: i64,
    },
    /// `c.mv rd, rs`
    CMv {
        /// Destination register.
        rd: u8,
        /// Source register.
        rs: u8,
    },
    /// `c.nop`
    CNop,
}

/// One abstract body slot of a torture program.
///
/// Each slot occupies exactly one index of [`TortureProgram::body`]; a
/// kept-mask over those indices selects which slots
/// [`TortureProgram::emit_subset`] assembles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BodyInstr {
    /// A pre-encoded 4-byte ALU / imm instruction.
    Encoded(u32),
    /// `li rd, imm` (wide constant; expands to several instructions).
    Li {
        /// Destination register.
        rd: u8,
        /// Constant loaded.
        imm: i64,
    },
    /// Sandboxed access: `andi t4, rv, ..; slli ..; add t4, t4, s2` then
    /// the access on `rt`.
    Mem {
        /// Register masked into the sandbox offset.
        rv: u8,
        /// Data register stored from / loaded into.
        rt: u8,
        /// Access flavour.
        access: MemAccess,
    },
    /// Bounded forward branch binding at body index `until`.
    Branch {
        /// Branch flavour.
        kind: BranchKind,
        /// First compare operand.
        rs1: u8,
        /// Second compare operand.
        rs2: u8,
        /// Body index at which the target label binds.
        until: usize,
    },
    /// A compressed (RVC) instruction.
    Compressed(CompressedKind),
    /// An empty slot (a branch draw suppressed because another branch
    /// was still pending). Emits nothing.
    Skip,
}

/// A torture program in abstract form: the seed-derived body slots plus
/// everything needed to re-emit any subset of them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TortureProgram {
    /// The generating seed.
    pub seed: u64,
    /// The generator knobs used.
    pub cfg: TortureConfig,
    /// Abstract body slots (length `cfg.body_len`).
    pub body: Vec<BodyInstr>,
}

impl TortureProgram {
    /// Deterministically derive the abstract body from `seed`.
    pub fn generate(seed: u64, cfg: &TortureConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut body = Vec::with_capacity(cfg.body_len);
        // `pending_until`: index at which the one outstanding forward
        // branch binds. Mirrored by emit_subset.
        let mut pending_until: Option<usize> = None;
        let r = |rng: &mut StdRng| WINDOW[rng.gen_range(0..WINDOW.len())];
        for i in 0..cfg.body_len {
            if let Some(at) = pending_until {
                if i >= at {
                    pending_until = None;
                }
            }
            let slot = match rng.gen_range(0..100) {
                0..=54 => {
                    // Register-register ALU ops.
                    let ops: &[Op] = if cfg.muldiv {
                        &[
                            Op::Add,
                            Op::Sub,
                            Op::Xor,
                            Op::Or,
                            Op::And,
                            Op::Sll,
                            Op::Srl,
                            Op::Sra,
                            Op::Slt,
                            Op::Sltu,
                            Op::Addw,
                            Op::Subw,
                            Op::Mul,
                            Op::Mulh,
                            Op::Div,
                            Op::Rem,
                            Op::Divu,
                            Op::Remu,
                            Op::Mulw,
                            Op::Divw,
                            Op::Remw,
                            Op::Andn,
                            Op::Orn,
                            Op::Xnor,
                            Op::Min,
                            Op::Max,
                            Op::Minu,
                            Op::Maxu,
                            Op::Rol,
                            Op::Ror,
                            Op::Sh1add,
                            Op::Sh2add,
                            Op::Sh3add,
                            Op::AddUw,
                        ]
                    } else {
                        &[Op::Add, Op::Sub, Op::Xor, Op::Or, Op::And, Op::Sll, Op::Srl]
                    };
                    let op = ops[rng.gen_range(0..ops.len())];
                    let (rd, rs1, rs2) = (r(&mut rng), r(&mut rng), r(&mut rng));
                    BodyInstr::Encoded(
                        riscv_isa::encode::encode(&riscv_isa::op::DecodedInst {
                            op,
                            rd,
                            rs1,
                            rs2,
                            ..Default::default()
                        })
                        .expect("alu op encodes"),
                    )
                }
                55..=74 => {
                    // Register-immediate ops.
                    let ops = [
                        Op::Addi,
                        Op::Xori,
                        Op::Ori,
                        Op::Andi,
                        Op::Slti,
                        Op::Sltiu,
                        Op::Slli,
                        Op::Srli,
                        Op::Srai,
                        Op::Addiw,
                        Op::Rori,
                    ];
                    let op = ops[rng.gen_range(0..ops.len())];
                    let imm = if matches!(op, Op::Slli | Op::Srli | Op::Srai | Op::Rori) {
                        rng.gen_range(0..64)
                    } else {
                        rng.gen_range(-2048..2048)
                    };
                    BodyInstr::Encoded(
                        riscv_isa::encode::encode(&riscv_isa::op::DecodedInst {
                            op,
                            rd: r(&mut rng),
                            rs1: r(&mut rng),
                            imm,
                            ..Default::default()
                        })
                        .expect("imm op encodes"),
                    )
                }
                75..=84 if cfg.memory_ops => {
                    let (rv, rt) = (r(&mut rng), r(&mut rng));
                    let access = if rng.gen_bool(0.5) {
                        MemAccess::Sd
                    } else {
                        match rng.gen_range(0..4) {
                            0 => MemAccess::Ld,
                            1 => MemAccess::Lw,
                            2 => MemAccess::Lhu,
                            _ => MemAccess::Lb,
                        }
                    };
                    BodyInstr::Mem { rv, rt, access }
                }
                85..=94 if cfg.branches => {
                    // Bounded forward branch over the next few slots; at
                    // most one outstanding at a time.
                    if pending_until.is_some() {
                        BodyInstr::Skip
                    } else {
                        let span = rng.gen_range(1usize..6);
                        let kind = match rng.gen_range(0..4) {
                            0 => BranchKind::Beq,
                            1 => BranchKind::Bne,
                            2 => BranchKind::Blt,
                            _ => BranchKind::Bgeu,
                        };
                        let (rs1, rs2) = (r(&mut rng), r(&mut rng));
                        pending_until = Some(i + span);
                        BodyInstr::Branch {
                            kind,
                            rs1,
                            rs2,
                            until: i + span,
                        }
                    }
                }
                95..=97 if cfg.compressed => {
                    let kind = match rng.gen_range(0..4) {
                        0 => CompressedKind::CAddi {
                            rd: r(&mut rng),
                            imm: rng.gen_range(-32i64..32).max(-32),
                        },
                        1 => CompressedKind::CLi {
                            rd: r(&mut rng),
                            imm: rng.gen_range(-32..32),
                        },
                        2 => CompressedKind::CMv {
                            rd: r(&mut rng),
                            rs: r(&mut rng),
                        },
                        _ => CompressedKind::CNop,
                    };
                    BodyInstr::Compressed(kind)
                }
                _ => {
                    // li with a random wide constant.
                    BodyInstr::Li {
                        rd: r(&mut rng),
                        imm: rng.gen::<i64>() >> rng.gen_range(0..32),
                    }
                }
            };
            body.push(slot);
        }
        TortureProgram {
            seed,
            cfg: *cfg,
            body,
        }
    }

    /// Number of body slots (the kept-mask length).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Assemble the full program (every slot kept).
    pub fn emit(&self) -> Program {
        self.emit_subset(&vec![true; self.body.len()])
    }

    /// Assemble a runnable program containing only the body slots whose
    /// mask entry is `true`.
    ///
    /// Register-window seeding, loop scaffolding and the checksum
    /// epilogue are always emitted, so any subset terminates with an
    /// exit code. Branch targets stay anchored to *original* body
    /// indices: a kept branch binds where the remaining kept slots of
    /// its original span end, so dropping slots can only shorten the
    /// skipped region, never redirect the branch.
    ///
    /// # Panics
    ///
    /// Panics when `keep.len() != self.len()`.
    pub fn emit_subset(&self, keep: &[bool]) -> Program {
        assert_eq!(
            keep.len(),
            self.body.len(),
            "kept-mask length must equal body length"
        );
        let mut a = Asm::new(0x8000_0000);
        // Seed the register window with deterministic junk.
        for (i, &r) in WINDOW.iter().enumerate() {
            a.li(r, (self.seed as i64).wrapping_mul(i as i64 + 1) ^ 0x5a5a);
        }
        // s2 = sandbox base, s3 = loop counter.
        a.li(reg::S2, SANDBOX);
        a.li(reg::S3, self.cfg.iterations);
        let top = a.bound_label();
        let mut pending: Option<(riscv_isa::asm::Label, usize)> = None;
        for (i, (slot, &kept)) in self.body.iter().zip(keep).enumerate() {
            if let Some((l, at)) = pending {
                if i >= at {
                    a.bind(l);
                    pending = None;
                }
            }
            if !kept {
                continue;
            }
            match *slot {
                BodyInstr::Encoded(word) => a.raw32(word),
                BodyInstr::Li { rd, imm } => a.li(rd, imm),
                BodyInstr::Mem { rv, rt, access } => {
                    // Mask an arbitrary register into [0, 0x7f8] and
                    // index off s2.
                    a.andi(reg::T4, rv, 0x7f8 >> 2);
                    a.slli(reg::T4, reg::T4, 2);
                    a.add(reg::T4, reg::T4, reg::S2);
                    match access {
                        MemAccess::Sd => a.sd(rt, 0, reg::T4),
                        MemAccess::Ld => a.ld(rt, 0, reg::T4),
                        MemAccess::Lw => a.lw(rt, 0, reg::T4),
                        MemAccess::Lhu => a.lhu(rt, 0, reg::T4),
                        MemAccess::Lb => a.lb(rt, 0, reg::T4),
                    }
                }
                BodyInstr::Branch {
                    kind,
                    rs1,
                    rs2,
                    until,
                } => {
                    let l = a.label();
                    match kind {
                        BranchKind::Beq => a.beq(rs1, rs2, l),
                        BranchKind::Bne => a.bne(rs1, rs2, l),
                        BranchKind::Blt => a.blt(rs1, rs2, l),
                        BranchKind::Bgeu => a.bgeu(rs1, rs2, l),
                    }
                    pending = Some((l, until));
                }
                BodyInstr::Compressed(kind) => match kind {
                    CompressedKind::CAddi { rd, imm } => a.c_addi(rd, imm),
                    CompressedKind::CLi { rd, imm } => a.c_li(rd, imm),
                    CompressedKind::CMv { rd, rs } => a.c_mv(rd, rs),
                    CompressedKind::CNop => a.c_nop(),
                },
                BodyInstr::Skip => {}
            }
        }
        if let Some((l, _)) = pending {
            a.bind(l);
        }
        a.addi(reg::S3, reg::S3, -1);
        a.bnez(reg::S3, top);
        // Checksum the register window into a0.
        a.li(reg::A0, 0);
        for &r in &WINDOW {
            a.add(reg::A0, reg::A0, r);
            a.rori(reg::A0, reg::A0, 7);
        }
        a.ebreak();
        a.assemble()
    }
}

/// Generate a random terminating program from `seed` (every slot kept).
pub fn random_program(seed: u64, cfg: &TortureConfig) -> Program {
    TortureProgram::generate(seed, cfg).emit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemu::{DromajoLike, Interpreter, Nemu, SpikeLike};

    #[test]
    fn clamped_bounds_the_knobs() {
        let wild = TortureConfig {
            body_len: 0,
            iterations: -7,
            ..TortureConfig::default()
        }
        .clamped();
        assert_eq!(wild.body_len, 8);
        assert_eq!(wild.iterations, 1);
        let huge = TortureConfig {
            body_len: 100_000,
            iterations: i64::MAX,
            ..TortureConfig::default()
        }
        .clamped();
        assert_eq!(huge.body_len, 256);
        assert_eq!(huge.iterations, 1000);
        // In-range configs pass through untouched.
        let dflt = TortureConfig::default();
        assert_eq!(dflt.clamped(), dflt);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TortureConfig::default();
        let a = random_program(42, &cfg);
        let b = random_program(42, &cfg);
        let c = random_program(43, &cfg);
        assert_eq!(a.bytes, b.bytes);
        assert_ne!(a.bytes, c.bytes);
    }

    #[test]
    fn abstract_body_is_deterministic_and_masks_re_emit() {
        let cfg = TortureConfig::default();
        let t1 = TortureProgram::generate(11, &cfg);
        let t2 = TortureProgram::generate(11, &cfg);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), cfg.body_len);
        assert_eq!(t1.emit().bytes, random_program(11, &cfg).bytes);
        // Emitting with every other slot dropped yields a shorter body.
        let keep: Vec<bool> = (0..t1.len()).map(|i| i % 2 == 0).collect();
        let partial = t1.emit_subset(&keep);
        assert!(partial.bytes.len() < t1.emit().bytes.len());
    }

    #[test]
    fn every_subset_terminates_and_matches_reference() {
        // Masked-out slots must never break the loop scaffolding: run a
        // handful of subset shapes through two interpreters.
        let cfg = TortureConfig::default();
        let t = TortureProgram::generate(9, &cfg);
        let masks: Vec<Vec<bool>> = vec![
            vec![false; t.len()],
            (0..t.len()).map(|i| i % 3 == 0).collect(),
            (0..t.len()).map(|i| i < t.len() / 2).collect(),
            (0..t.len()).map(|i| i >= t.len() / 2).collect(),
        ];
        for (mi, keep) in masks.iter().enumerate() {
            let p = t.emit_subset(keep);
            let mut n = Nemu::new(&p);
            let mut d = DromajoLike::new(&p);
            let rn = n.run(10_000_000);
            assert!(rn.exit_code.is_some(), "mask {mi} did not halt");
            assert_eq!(rn.exit_code, d.run(10_000_000).exit_code, "mask {mi}");
            assert_eq!(n.hart().state.gpr, d.hart().state.gpr, "mask {mi}");
        }
    }

    #[test]
    fn random_programs_terminate_and_agree() {
        let cfg = TortureConfig::default();
        for seed in 0..20 {
            let p = random_program(seed, &cfg);
            let mut n = Nemu::new(&p);
            let mut s = SpikeLike::new(&p);
            let mut d = DromajoLike::new(&p);
            let rn = n.run(10_000_000);
            assert!(rn.exit_code.is_some(), "seed {seed} did not halt");
            assert_eq!(rn.exit_code, s.run(10_000_000).exit_code, "seed {seed}");
            assert_eq!(rn.exit_code, d.run(10_000_000).exit_code, "seed {seed}");
            assert_eq!(n.hart().state.gpr, d.hart().state.gpr, "seed {seed}");
        }
    }

    #[test]
    fn compressed_programs_terminate_and_agree() {
        let cfg = TortureConfig {
            compressed: true,
            ..Default::default()
        };
        for seed in 50..60 {
            let p = random_program(seed, &cfg);
            let mut n = Nemu::new(&p);
            let mut d = DromajoLike::new(&p);
            let rn = n.run(10_000_000);
            assert!(rn.exit_code.is_some(), "seed {seed} did not halt");
            assert_eq!(rn.exit_code, d.run(10_000_000).exit_code, "seed {seed}");
            assert_eq!(n.hart().state.gpr, d.hart().state.gpr, "seed {seed}");
        }
    }

    #[test]
    fn knobs_take_effect() {
        let no_mem = TortureConfig {
            memory_ops: false,
            branches: false,
            muldiv: false,
            ..Default::default()
        };
        let p = random_program(7, &no_mem);
        let mut n = Nemu::new(&p);
        assert!(n.run(10_000_000).exit_code.is_some());
    }
}
