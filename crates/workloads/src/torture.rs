//! A riscv-torture-style random instruction generator.
//!
//! Generates terminating bare-metal programs from a seed: random ALU and
//! bit-manipulation operations over a register window, constrained
//! loads/stores into a sandbox, and bounded forward branches — all inside
//! a fixed-trip-count outer loop, ending with a register checksum in
//! `a0`. Used by the cross-interpreter and DUT-vs-REF property tests
//! (the paper uses "existing open-source test generation frameworks" for
//! exactly this role).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use riscv_isa::asm::{reg, Asm, Program};
use riscv_isa::op::Op;

/// Generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct TortureConfig {
    /// Instructions per loop body.
    pub body_len: usize,
    /// Outer-loop trip count.
    pub iterations: i64,
    /// Include loads/stores.
    pub memory_ops: bool,
    /// Include forward branches.
    pub branches: bool,
    /// Include M-extension ops.
    pub muldiv: bool,
    /// Sprinkle compressed (RVC) instructions, misaligning later 4-byte
    /// instructions across fetch-block boundaries.
    pub compressed: bool,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            body_len: 60,
            iterations: 50,
            memory_ops: true,
            branches: true,
            muldiv: true,
            compressed: false,
        }
    }
}

const SANDBOX: i64 = 0x8004_0000;
/// Registers the generator may clobber (x5..x15 plus x28..x31).
const WINDOW: [u8; 15] = [5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 28, 29, 30, 31];

/// Generate a random terminating program from `seed`.
pub fn random_program(seed: u64, cfg: &TortureConfig) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Asm::new(0x8000_0000);
    // Seed the register window with deterministic junk.
    for (i, &r) in WINDOW.iter().enumerate() {
        a.li(r, (seed as i64).wrapping_mul(i as i64 + 1) ^ 0x5a5a);
    }
    // s2 = sandbox base, s3 = loop counter.
    a.li(reg::S2, SANDBOX);
    a.li(reg::S3, cfg.iterations);
    let top = a.bound_label();
    let mut skip_to: Option<(riscv_isa::asm::Label, usize)> = None;
    for i in 0..cfg.body_len {
        // Close a pending forward branch.
        if let Some((l, at)) = skip_to {
            if i >= at {
                a.bind(l);
                skip_to = None;
            }
        }
        let r = |rng: &mut StdRng| WINDOW[rng.gen_range(0..WINDOW.len())];
        match rng.gen_range(0..100) {
            0..=54 => {
                // Register-register ALU ops.
                let ops: &[Op] = if cfg.muldiv {
                    &[
                        Op::Add,
                        Op::Sub,
                        Op::Xor,
                        Op::Or,
                        Op::And,
                        Op::Sll,
                        Op::Srl,
                        Op::Sra,
                        Op::Slt,
                        Op::Sltu,
                        Op::Addw,
                        Op::Subw,
                        Op::Mul,
                        Op::Mulh,
                        Op::Div,
                        Op::Rem,
                        Op::Divu,
                        Op::Remu,
                        Op::Mulw,
                        Op::Divw,
                        Op::Remw,
                        Op::Andn,
                        Op::Orn,
                        Op::Xnor,
                        Op::Min,
                        Op::Max,
                        Op::Minu,
                        Op::Maxu,
                        Op::Rol,
                        Op::Ror,
                        Op::Sh1add,
                        Op::Sh2add,
                        Op::Sh3add,
                        Op::AddUw,
                    ]
                } else {
                    &[Op::Add, Op::Sub, Op::Xor, Op::Or, Op::And, Op::Sll, Op::Srl]
                };
                let op = ops[rng.gen_range(0..ops.len())];
                let (rd, rs1, rs2) = (r(&mut rng), r(&mut rng), r(&mut rng));
                a.raw32(
                    riscv_isa::encode::encode(&riscv_isa::op::DecodedInst {
                        op,
                        rd,
                        rs1,
                        rs2,
                        ..Default::default()
                    })
                    .expect("alu op encodes"),
                );
            }
            55..=74 => {
                // Register-immediate ops.
                let ops = [
                    Op::Addi,
                    Op::Xori,
                    Op::Ori,
                    Op::Andi,
                    Op::Slti,
                    Op::Sltiu,
                    Op::Slli,
                    Op::Srli,
                    Op::Srai,
                    Op::Addiw,
                    Op::Rori,
                ];
                let op = ops[rng.gen_range(0..ops.len())];
                let imm = if matches!(op, Op::Slli | Op::Srli | Op::Srai | Op::Rori) {
                    rng.gen_range(0..64)
                } else {
                    rng.gen_range(-2048..2048)
                };
                a.raw32(
                    riscv_isa::encode::encode(&riscv_isa::op::DecodedInst {
                        op,
                        rd: r(&mut rng),
                        rs1: r(&mut rng),
                        imm,
                        ..Default::default()
                    })
                    .expect("imm op encodes"),
                );
            }
            75..=84 if cfg.memory_ops => {
                // Sandboxed store then load: mask an arbitrary register
                // into [0, 0x7f8] and index off s2.
                let (rv, rt) = (r(&mut rng), r(&mut rng));
                a.andi(reg::T4, rv, 0x7f8 >> 2);
                a.slli(reg::T4, reg::T4, 2);
                a.add(reg::T4, reg::T4, reg::S2);
                if rng.gen_bool(0.5) {
                    a.sd(rt, 0, reg::T4);
                } else {
                    match rng.gen_range(0..4) {
                        0 => a.ld(rt, 0, reg::T4),
                        1 => a.lw(rt, 0, reg::T4),
                        2 => a.lhu(rt, 0, reg::T4),
                        _ => a.lb(rt, 0, reg::T4),
                    }
                }
            }
            85..=94 if cfg.branches => {
                // Bounded forward branch over the next few instructions.
                if skip_to.is_none() {
                    let l = a.label();
                    let span = rng.gen_range(1..6);
                    match rng.gen_range(0..4) {
                        0 => a.beq(r(&mut rng), r(&mut rng), l),
                        1 => a.bne(r(&mut rng), r(&mut rng), l),
                        2 => a.blt(r(&mut rng), r(&mut rng), l),
                        _ => a.bgeu(r(&mut rng), r(&mut rng), l),
                    }
                    skip_to = Some((l, i + span));
                }
            }
            95..=97 if cfg.compressed => {
                // Compressed instructions shift the alignment of every
                // later 4-byte instruction (possibly across 32-byte fetch
                // blocks), exercising the split-fetch path.
                match rng.gen_range(0..4) {
                    0 => a.c_addi(r(&mut rng), rng.gen_range(-32..32).max(-32)),
                    1 => a.c_li(r(&mut rng), rng.gen_range(-32..32)),
                    2 => a.c_mv(r(&mut rng), r(&mut rng)),
                    _ => a.c_nop(),
                }
            }
            _ => {
                // li with a random wide constant.
                a.li(r(&mut rng), rng.gen::<i64>() >> rng.gen_range(0..32));
            }
        }
    }
    if let Some((l, _)) = skip_to {
        a.bind(l);
    }
    a.addi(reg::S3, reg::S3, -1);
    a.bnez(reg::S3, top);
    // Checksum the register window into a0.
    a.li(reg::A0, 0);
    for &r in &WINDOW {
        a.add(reg::A0, reg::A0, r);
        a.rori(reg::A0, reg::A0, 7);
    }
    a.ebreak();
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemu::{DromajoLike, Interpreter, Nemu, SpikeLike};

    #[test]
    fn deterministic_per_seed() {
        let cfg = TortureConfig::default();
        let a = random_program(42, &cfg);
        let b = random_program(42, &cfg);
        let c = random_program(43, &cfg);
        assert_eq!(a.bytes, b.bytes);
        assert_ne!(a.bytes, c.bytes);
    }

    #[test]
    fn random_programs_terminate_and_agree() {
        let cfg = TortureConfig::default();
        for seed in 0..20 {
            let p = random_program(seed, &cfg);
            let mut n = Nemu::new(&p);
            let mut s = SpikeLike::new(&p);
            let mut d = DromajoLike::new(&p);
            let rn = n.run(10_000_000);
            assert!(rn.exit_code.is_some(), "seed {seed} did not halt");
            assert_eq!(rn.exit_code, s.run(10_000_000).exit_code, "seed {seed}");
            assert_eq!(rn.exit_code, d.run(10_000_000).exit_code, "seed {seed}");
            assert_eq!(n.hart().state.gpr, d.hart().state.gpr, "seed {seed}");
        }
    }

    #[test]
    fn compressed_programs_terminate_and_agree() {
        let cfg = TortureConfig {
            compressed: true,
            ..Default::default()
        };
        for seed in 50..60 {
            let p = random_program(seed, &cfg);
            let mut n = Nemu::new(&p);
            let mut d = DromajoLike::new(&p);
            let rn = n.run(10_000_000);
            assert!(rn.exit_code.is_some(), "seed {seed} did not halt");
            assert_eq!(rn.exit_code, d.run(10_000_000).exit_code, "seed {seed}");
            assert_eq!(n.hart().state.gpr, d.hart().state.gpr, "seed {seed}");
        }
    }

    #[test]
    fn knobs_take_effect() {
        let no_mem = TortureConfig {
            memory_ops: false,
            branches: false,
            muldiv: false,
            ..Default::default()
        };
        let p = random_program(7, &no_mem);
        let mut n = Nemu::new(&p);
        assert!(n.run(10_000_000).exit_code.is_some());
    }
}
