//! SPEC-CPU2006-like synthetic kernels and a torture-style random
//! program generator.
//!
//! SPEC itself is proprietary (the paper's artifact likewise omits the
//! binaries), so this suite provides one self-contained kernel per
//! program *class* exercised by the paper's evaluation — branchy game
//! trees, pointer chasing, compression-style byte processing, dense
//! floating point, streaming, and so on (DESIGN.md §5.2). Every kernel
//! ends with a checksum in `a0` and an `ebreak`, so any two engines
//! (NEMU, the baselines, the xscore DUT) can be compared exactly.
//!
//! # Example
//!
//! ```
//! use nemu::Interpreter;
//! use workloads::{all_workloads, Scale};
//!
//! let suite = all_workloads(Scale::Test);
//! assert!(suite.len() >= 12);
//! let mut nemu = nemu::Nemu::new(&suite[0].program);
//! assert!(nemu.run(50_000_000).exit_code.is_some());
//! ```

pub mod kernels;
pub mod litmus;
pub mod torture;

pub use kernels::{all_workloads, workload, Scale, Workload, WorkloadClass, NAMES};
pub use litmus::{
    allowed_mask, random_litmus, LitmusConfig, LitmusExit, LitmusProgram, LitmusRound,
    LitmusShape, SerKind,
};
pub use torture::{
    random_program, BodyInstr, BranchKind, CompressedKind, MemAccess, TortureConfig,
    TortureProgram,
};
