//! Multi-hart litmus / torture generator with an allowed-outcome oracle.
//!
//! Emits deterministic two-hart bare-metal programs exercising the
//! classic memory-model shapes — MP, SB, LB, CoRR, CoWW, 2+2W — plus
//! randomized LR/SC-contention and fence/fence.i/sfence-ordering
//! torture. Each program is *self-checking*: the harts run a sequence
//! of synchronized rounds, every round records its observations into a
//! disjoint per-round result region, and hart 0 compares the combined
//! observation index against a generator-computed 64-bit allowed-set
//! mask (the SC interleavings plus the RVWMO relaxations explicitly
//! permitted for the shape). The final `a0` packs the verdict, so the
//! campaign layer can raise a `ForbiddenOutcome` divergence without any
//! out-of-band channel — exactly the self-checking concurrent stimulus
//! style FERIVer argues multi-core verification throughput needs.
//!
//! Like [`TortureProgram`](crate::TortureProgram), generation is split
//! in two phases so failing programs minimize: [`LitmusProgram::generate`]
//! derives an abstract per-round list from the seed and
//! [`LitmusProgram::emit_subset`] assembles any kept-subset of rounds
//! (dispatch prologue and exit epilogue always included). `(seed,
//! config, mask)` is a complete reproducer.
//!
//! # Why the oracle is needed at all
//!
//! The per-hart DiffTest already runs commit-for-commit, but its
//! global-memory rule accepts any load value that appeared *recently*
//! at the address — it checks values, not orderings. A coherence bug
//! that serves a stale-but-historic value is invisible to it. The
//! allowed-outcome sets close that gap: an observation pair outside the
//! shape's set is flagged even though every individual load passed the
//! value check.
//!
//! # Observation encoding
//!
//! Litmus cells are 8-byte values on private cache lines. Written
//! values are `0xff` (first write) and `0xfe` (second write, CoWW /
//! 2+2W), so every observed value maps to a digit: `0 → 0`, `0xff → 1`,
//! `0xfe → 2`, anything else → 3 (wild, always forbidden). An outcome
//! index is `digit0 * 4 + digit1`, and the allowed set is a 64-bit mask
//! over indices. The exit code packs (status, round-0 outcome, first
//! bad round, first bad outcome) into `a0` bytes 0..4 — see
//! [`LitmusExit::decode`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use riscv_isa::asm::{reg, Asm, Program};
use riscv_isa::op::{DecodedInst, Op};
use serde::{Deserialize, Serialize};

/// Litmus cells live here, away from the code image (same region the
/// torture generator sandboxes its accesses into).
pub const SANDBOX: i64 = 0x8004_0000;
/// Bytes reserved per round: four cells on distinct cache lines.
pub const ROUND_STRIDE: i64 = 256;
/// Cell offsets within a round's block (one 64-byte line each).
pub const GO_OFF: i64 = 0;
pub const X_OFF: i64 = 64;
pub const Y_OFF: i64 = 128;
pub const RES_OFF: i64 = 192;
/// First written value (digit 1). Chosen so the §IV-C probe/grant race
/// (which XORs `0xff` into the line) maps the value onto the *other*
/// legal value — the corruption stays invisible to the per-value
/// DiffTest rule and only the outcome oracle can catch it.
pub const VAL1: i64 = 0xff;
/// Second written value (digit 2).
pub const VAL2: i64 = 0xfe;
/// Go-flag token. The handshake bit lives in byte 1 because the §IV-C
/// probe/grant race corrupts bytes 0 and 8 of a line: a byte-0 go flag
/// would soak up every injection as a silent spin stall, pushing the
/// observation-cell probes out of the fault's race window.
pub const GO_TOKEN: i64 = 0x100;
/// Bounded-spin iteration budgets. Spins must be bounded so a desynced
/// (or fault-injected) partner can never deadlock the program: on
/// exhaustion the round proceeds (go) or records a sync timeout (res).
pub const GO_SPIN: i64 = 1 << 12;
pub const RES_SPIN: i64 = 1 << 16;
/// MHARTID CSR number.
const CSR_MHARTID: u16 = 0xf14;
/// Registers the per-round filler may clobber.
const FILLER_WINDOW: [u8; 5] = [reg::A6, reg::A7, reg::S9, reg::S10, reg::S11];

/// Exit-code status values (byte 0 of `a0`).
pub mod status {
    /// Every kept round's outcome was in the allowed set.
    pub const OK: u64 = 0;
    /// At least one round observed a forbidden outcome.
    pub const FORBIDDEN: u64 = 1;
    /// A result spin exhausted its budget (partner hart missing or
    /// desynced); no outcome claim is made for that round.
    pub const SYNC_TIMEOUT: u64 = 2;
}

/// The litmus shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LitmusShape {
    /// Message passing: h0 stores data then flag; h1 loads flag then
    /// data. Forbidden (fenced): flag seen, data stale.
    Mp,
    /// Store buffering: each hart stores its own cell then loads the
    /// other's. Forbidden (fenced): both loads miss both stores.
    Sb,
    /// Load buffering: each hart loads the other's cell then stores its
    /// own. Forbidden (fenced): both loads see both stores.
    Lb,
    /// Coherent read-read: h1 reads the same cell twice
    /// (dependency-ordered). Forbidden always: new value then old.
    CoRR,
    /// Coherent write-write: h0 writes the cell twice; h1 reads twice
    /// (dependency-ordered). Forbidden always: later write then earlier.
    CoWW,
    /// 2+2W: both harts write both cells in opposite orders; h0 reads
    /// the final state. Forbidden (fenced): the cyclic final state.
    TwoPlusTwoW,
    /// Both harts increment a shared counter with bounded LR/SC retry
    /// loops. Forbidden always: final counter differs from the summed
    /// per-hart success counts (a lost update).
    LrScContention,
    /// MP with a randomized serializer (`fence` / `fence.i` / both /
    /// `sfence.vma`) drawn per round per hart. Rounds where both sides
    /// drew a full `fence` pin the SC-only set; others stay relaxed.
    FenceTorture,
}

impl LitmusShape {
    /// All shapes, stable order (fuzz mutation and docs iterate this).
    pub const ALL: [LitmusShape; 8] = [
        LitmusShape::Mp,
        LitmusShape::Sb,
        LitmusShape::Lb,
        LitmusShape::CoRR,
        LitmusShape::CoWW,
        LitmusShape::TwoPlusTwoW,
        LitmusShape::LrScContention,
        LitmusShape::FenceTorture,
    ];

    /// Stable slug for reports and CLI flags.
    pub fn slug(&self) -> &'static str {
        match self {
            LitmusShape::Mp => "mp",
            LitmusShape::Sb => "sb",
            LitmusShape::Lb => "lb",
            LitmusShape::CoRR => "corr",
            LitmusShape::CoWW => "coww",
            LitmusShape::TwoPlusTwoW => "2+2w",
            LitmusShape::LrScContention => "lrsc",
            LitmusShape::FenceTorture => "fence",
        }
    }
}

/// A serializer drawn for a [`LitmusShape::FenceTorture`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SerKind {
    /// `fence` — a full barrier in the DUT (drains the store buffer and
    /// flushes younger instructions).
    Fence,
    /// `fence.i` — instruction-stream synchronization.
    FenceI,
    /// `fence; fence.i`.
    FenceFenceI,
    /// `sfence.vma x0, x0` (legal in M-mode).
    SfenceVma,
}

impl SerKind {
    /// Whether this serializer is a full memory barrier the oracle may
    /// rely on. Only a real `fence` tightens the allowed set; the
    /// others are emitted for pipeline/flush coverage and keep the
    /// relaxed set (sound over-approximation).
    pub fn is_full_barrier(&self) -> bool {
        matches!(self, SerKind::Fence | SerKind::FenceFenceI)
    }
}

/// Generator knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LitmusConfig {
    /// Which litmus shape every round runs.
    pub shape: LitmusShape,
    /// Insert the shape's ordering fences, pinning the SC-only allowed
    /// set; unfenced rounds allow the RVWMO relaxations too.
    pub fenced: bool,
    /// Synchronized rounds (the minimizable slots).
    pub rounds: usize,
    /// Maximum random ALU filler ops per hart per round (jitters the
    /// race timing).
    pub filler: usize,
    /// LR/SC increments per hart per round (LrScContention only).
    pub lrsc_iters: usize,
}

impl Default for LitmusConfig {
    fn default() -> Self {
        LitmusConfig {
            shape: LitmusShape::Mp,
            fenced: true,
            rounds: 4,
            filler: 2,
            lrsc_iters: 4,
        }
    }
}

impl LitmusConfig {
    /// Clamp numeric knobs into the range the generator (and the
    /// campaign's cycle budget) can handle; fuzz mutators rely on this.
    pub fn clamped(mut self) -> Self {
        self.rounds = self.rounds.clamp(1, 24);
        self.filler = self.filler.min(8);
        self.lrsc_iters = self.lrsc_iters.clamp(1, 8);
        self
    }
}

/// One abstract round: the per-hart filler draw plus the serializers a
/// FenceTorture round uses. Each round occupies one kept-mask slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LitmusRound {
    /// Hart-0 serializer (FenceTorture; `Fence` otherwise).
    pub ser0: SerKind,
    /// Hart-1 serializer (FenceTorture; `Fence` otherwise).
    pub ser1: SerKind,
    /// Pre-encoded ALU filler words for hart 0 (filler window only).
    pub filler0: Vec<u32>,
    /// Pre-encoded ALU filler words for hart 1.
    pub filler1: Vec<u32>,
}

/// A litmus program in abstract form: seed-derived rounds plus
/// everything needed to re-emit any subset of them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LitmusProgram {
    /// The generating seed.
    pub seed: u64,
    /// The generator knobs used.
    pub cfg: LitmusConfig,
    /// Abstract rounds (length `cfg.rounds`).
    pub rounds: Vec<LitmusRound>,
}

/// The decoded exit code of a litmus program (hart 0's `a0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LitmusExit {
    /// Status byte — see [`status`].
    pub status: u64,
    /// Outcome index observed by (original) round 0, when it ran.
    pub round0_outcome: u8,
    /// First round that observed a forbidden outcome.
    pub first_bad_round: u8,
    /// The forbidden outcome index that round observed.
    pub first_bad_outcome: u8,
}

impl LitmusExit {
    /// Decode a packed `a0` exit value.
    pub fn decode(a0: u64) -> Self {
        LitmusExit {
            status: a0 & 0xff,
            round0_outcome: ((a0 >> 8) & 0xff) as u8,
            first_bad_round: ((a0 >> 16) & 0xff) as u8,
            first_bad_outcome: ((a0 >> 24) & 0xff) as u8,
        }
    }

    /// Whether the program observed a forbidden outcome.
    pub fn forbidden(&self) -> bool {
        self.status == status::FORBIDDEN
    }

    /// Human-readable outcome digits (`"d0=1,d1=0"`).
    pub fn describe_outcome(idx: u8) -> String {
        format!("d0={},d1={}", (idx >> 2) & 0xf, idx & 0x3)
    }
}

/// The allowed-outcome mask for a shape: SC interleavings plus the
/// RVWMO relaxations the unfenced variant explicitly permits. Bit `i`
/// set means outcome index `i` (`digit0 * 4 + digit1`) is legal.
pub fn allowed_mask(shape: LitmusShape, fenced: bool) -> u64 {
    const fn bits(idxs: &[u64]) -> u64 {
        let mut m = 0;
        let mut i = 0;
        while i < idxs.len() {
            m |= 1 << idxs[i];
            i += 1;
        }
        m
    }
    match (shape, fenced) {
        // (flag, data): SC forbids seeing the flag without the data;
        // unfenced load-load reordering legally produces it.
        (LitmusShape::Mp, true) | (LitmusShape::FenceTorture, true) => bits(&[0, 1, 5]),
        (LitmusShape::Mp, false) | (LitmusShape::FenceTorture, false) => bits(&[0, 1, 4, 5]),
        // (r0, r1): SC forbids both loads missing both stores; store
        // buffering legally produces it unfenced.
        (LitmusShape::Sb, true) => bits(&[1, 4, 5]),
        (LitmusShape::Sb, false) => bits(&[0, 1, 4, 5]),
        // (r0, r1): SC forbids both loads seeing both stores.
        (LitmusShape::Lb, true) => bits(&[0, 1, 4]),
        (LitmusShape::Lb, false) => bits(&[0, 1, 4, 5]),
        // Same-address coherence: never relaxed, fenced or not.
        (LitmusShape::CoRR, _) => bits(&[0, 1, 5]),
        (LitmusShape::CoWW, _) => bits(&[0, 1, 2, 5, 6, 10]),
        // Final state (x, y) with h0 writing VAL1 and h1 VAL2: the
        // cyclic state (VAL1, VAL2) is SC-forbidden.
        (LitmusShape::TwoPlusTwoW, true) => bits(&[5, 9, 10]),
        (LitmusShape::TwoPlusTwoW, false) => bits(&[5, 6, 9, 10]),
        // Outcome 0 = counter consistent with the summed successes.
        (LitmusShape::LrScContention, _) => bits(&[0]),
    }
}

/// Random reg-reg ALU op over the filler window, pre-encoded.
fn filler_word(rng: &mut StdRng) -> u32 {
    const OPS: [Op; 8] = [
        Op::Add,
        Op::Sub,
        Op::Xor,
        Op::Or,
        Op::And,
        Op::Mul,
        Op::Slt,
        Op::Sltu,
    ];
    let r = |rng: &mut StdRng| FILLER_WINDOW[rng.gen_range(0..FILLER_WINDOW.len())];
    riscv_isa::encode::encode(&DecodedInst {
        op: OPS[rng.gen_range(0..OPS.len())],
        rd: r(rng),
        rs1: r(rng),
        rs2: r(rng),
        ..Default::default()
    })
    .expect("filler op encodes")
}

impl LitmusProgram {
    /// Deterministically derive the abstract rounds from `seed`.
    pub fn generate(seed: u64, cfg: &LitmusConfig) -> Self {
        let cfg = cfg.clamped();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1117_05c0_ffee_b01d);
        let ser = |rng: &mut StdRng| match rng.gen_range(0u32..4) {
            0 => SerKind::Fence,
            1 => SerKind::FenceI,
            2 => SerKind::FenceFenceI,
            _ => SerKind::SfenceVma,
        };
        let rounds = (0..cfg.rounds)
            .map(|_| {
                let (ser0, ser1) = if cfg.shape == LitmusShape::FenceTorture {
                    (ser(&mut rng), ser(&mut rng))
                } else {
                    (SerKind::Fence, SerKind::Fence)
                };
                let n0 = rng.gen_range(0..=cfg.filler);
                let filler0 = (0..n0).map(|_| filler_word(&mut rng)).collect();
                let n1 = rng.gen_range(0..=cfg.filler);
                let filler1 = (0..n1).map(|_| filler_word(&mut rng)).collect();
                LitmusRound {
                    ser0,
                    ser1,
                    filler0,
                    filler1,
                }
            })
            .collect();
        LitmusProgram { seed, cfg, rounds }
    }

    /// Number of rounds (the kept-mask length).
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether there are no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The allowed mask round `k` checks (FenceTorture rounds tighten
    /// to the SC set only when both drawn serializers are full fences).
    pub fn round_mask(&self, k: usize) -> u64 {
        if self.cfg.shape == LitmusShape::FenceTorture {
            let r = &self.rounds[k];
            allowed_mask(
                LitmusShape::FenceTorture,
                r.ser0.is_full_barrier() && r.ser1.is_full_barrier(),
            )
        } else {
            allowed_mask(self.cfg.shape, self.cfg.fenced)
        }
    }

    /// Assemble the full program (every round kept).
    pub fn emit(&self) -> Program {
        self.emit_subset(&vec![true; self.rounds.len()])
    }

    /// Assemble a runnable two-hart program containing only the rounds
    /// whose mask entry is `true`.
    ///
    /// The MHARTID dispatch, register seeding and exit epilogues are
    /// always emitted, and dropped rounds are dropped from *both*
    /// harts, so any subset terminates on both harts with a valid exit
    /// code. Kept rounds keep their original result region (cells are
    /// addressed by original round index), so a minimized reproducer
    /// races over the same lines the full program did.
    ///
    /// # Panics
    ///
    /// Panics when `keep.len() != self.len()`.
    pub fn emit_subset(&self, keep: &[bool]) -> Program {
        use reg::*;
        assert_eq!(
            keep.len(),
            self.rounds.len(),
            "kept-mask length must equal round count"
        );
        let mut a = Asm::new(0x8000_0000);
        a.csrrs(T0, CSR_MHARTID, ZERO);
        let h0 = a.label();
        let h1 = a.label();
        a.beqz(T0, h0);
        a.j(h1);

        // ----- hart 0: driver, checker ---------------------------------
        a.bind(h0);
        a.li(S4, 0); // status
        a.li(S5, 0); // first bad round
        a.li(S6, 0); // first bad outcome
        a.li(S7, 0); // round-0 outcome
        self.seed_filler(&mut a, 0);
        for (k, (round, &kept)) in self.rounds.iter().zip(keep).enumerate() {
            if kept {
                self.emit_hart0_round(&mut a, k, round);
            }
        }
        // a0 = status | round0_outcome << 8 | bad_round << 16 | bad_outcome << 24
        a.mv(A0, S4);
        a.slli(T1, S7, 8);
        a.or(A0, A0, T1);
        a.slli(T1, S5, 16);
        a.or(A0, A0, T1);
        a.slli(T1, S6, 24);
        a.or(A0, A0, T1);
        a.ebreak();

        // ----- hart 1: partner, reporter -------------------------------
        a.bind(h1);
        self.seed_filler(&mut a, 1);
        for (k, (round, &kept)) in self.rounds.iter().zip(keep).enumerate() {
            if kept {
                self.emit_hart1_round(&mut a, k, round);
            }
        }
        a.li(A0, 0);
        a.ebreak();
        a.assemble()
    }

    /// Seed the filler window with deterministic per-hart junk.
    fn seed_filler(&self, a: &mut Asm, hart: i64) {
        for (i, &r) in FILLER_WINDOW.iter().enumerate() {
            a.li(
                r,
                (self.seed as i64)
                    .wrapping_mul(i as i64 + 2 * hart + 1)
                    ^ 0x5a5a,
            );
        }
    }

    fn emit_hart0_round(&self, a: &mut Asm, k: usize, round: &LitmusRound) {
        use reg::*;
        let shape = self.cfg.shape;
        let fenced = self.cfg.fenced;
        a.li(S3, SANDBOX + k as i64 * ROUND_STRIDE);
        // Release this round's go flag. The token lives in byte 1 of the
        // go word: the L2 probe/grant race fault corrupts bytes 0 and 8 of
        // a line, so a byte-0 handshake would absorb every injection into
        // a silent spin-budget stall. Byte 1 keeps the handshake clean and
        // the race window tight for the observation cells.
        a.li(T1, GO_TOKEN);
        a.sd(T1, GO_OFF, S3);
        for &w in &round.filler0 {
            a.raw32(w);
        }
        match shape {
            LitmusShape::Mp => {
                a.li(T5, VAL1);
                a.sd(T5, X_OFF, S3); // data
                if fenced {
                    a.fence();
                }
                a.sd(T5, Y_OFF, S3); // flag
            }
            LitmusShape::Sb => {
                a.li(T5, VAL1);
                a.sd(T5, X_OFF, S3);
                if fenced {
                    a.fence();
                }
                a.ld(A3, Y_OFF, S3); // r0
            }
            LitmusShape::Lb => {
                a.ld(A3, X_OFF, S3); // r0
                if fenced {
                    a.fence();
                }
                a.li(T5, VAL1);
                a.sd(T5, Y_OFF, S3);
            }
            LitmusShape::CoRR => {
                a.li(T5, VAL1);
                a.sd(T5, X_OFF, S3);
            }
            LitmusShape::CoWW => {
                a.li(T5, VAL1);
                a.sd(T5, X_OFF, S3);
                if fenced {
                    a.fence();
                }
                a.li(T5, VAL2);
                a.sd(T5, X_OFF, S3);
            }
            LitmusShape::TwoPlusTwoW => {
                a.li(T5, VAL1);
                a.sd(T5, X_OFF, S3);
                if fenced {
                    a.fence();
                }
                a.sd(T5, Y_OFF, S3);
            }
            LitmusShape::LrScContention => emit_lrsc_increments(a, self.cfg.lrsc_iters),
            LitmusShape::FenceTorture => {
                a.li(T5, VAL1);
                a.sd(T5, X_OFF, S3); // data
                emit_serializer(a, round.ser0);
                a.sd(T5, Y_OFF, S3); // flag
            }
        }
        // Scaffolding barrier: this hart's stores are globally visible
        // before result collection (not part of the raced accesses).
        a.fence();
        // Bounded spin for hart 1's packed result (sentinel bit 16).
        a.li(T2, RES_SPIN);
        let spin = a.bound_label();
        let have = a.label();
        let round_end = a.label();
        a.ld(A2, RES_OFF, S3);
        a.srli(T3, A2, 16);
        a.bnez(T3, have);
        a.addi(T2, T2, -1);
        a.bnez(T2, spin);
        // Partner missing or desynced: record and move on, claiming
        // nothing about this round's outcome.
        a.bnez(S4, round_end);
        a.li(S4, status::SYNC_TIMEOUT as i64);
        a.j(round_end);
        a.bind(have);
        // Combine observations into the outcome index (T1).
        match shape {
            LitmusShape::Mp
            | LitmusShape::CoRR
            | LitmusShape::CoWW
            | LitmusShape::FenceTorture => {
                // Both digits ride in hart 1's payload: d0*16 + d1.
                a.srli(T5, A2, 4);
                a.andi(T5, T5, 0xf);
                a.andi(T6, A2, 0xf);
                a.slli(T5, T5, 2);
                a.add(T1, T5, T6);
            }
            LitmusShape::Sb | LitmusShape::Lb => {
                // digit0 is this hart's observation, digit1 hart 1's.
                emit_digit_of(a, A3, T5, T3, T4);
                a.andi(T6, A2, 0xf);
                a.slli(T5, T5, 2);
                a.add(T1, T5, T6);
            }
            LitmusShape::TwoPlusTwoW => {
                // Read the final state, address-dependent on the result
                // so the loads cannot hoist above the spin exit.
                a.andi(T5, A2, 0);
                a.add(T5, T5, S3);
                a.ld(A3, X_OFF, T5);
                a.ld(A4, Y_OFF, T5);
                emit_digit_of(a, A3, T5, T3, T4);
                emit_digit_of(a, A4, T6, T3, T4);
                a.slli(T5, T5, 2);
                a.add(T1, T5, T6);
            }
            LitmusShape::LrScContention => {
                // expected = own successes + partner successes (payload).
                a.slli(T5, A2, 48);
                a.srli(T5, T5, 48);
                a.add(T5, T5, A4);
                // Dependency-ordered read of the final counter.
                a.andi(T6, A2, 0);
                a.add(T6, T6, S3);
                a.ld(A3, X_OFF, T6);
                a.sub(T6, A3, T5);
                a.sltu(T1, ZERO, T6); // 1 on any lost/extra update
            }
        }
        if k == 0 {
            a.mv(S7, T1);
        }
        // Check the outcome index against the round's allowed mask.
        a.li(T3, self.round_mask(k) as i64);
        a.srl(T4, T3, T1);
        a.andi(T4, T4, 1);
        a.bnez(T4, round_end);
        a.bnez(S4, round_end);
        a.li(S4, status::FORBIDDEN as i64);
        a.li(S5, k as i64);
        a.mv(S6, T1);
        a.bind(round_end);
    }

    fn emit_hart1_round(&self, a: &mut Asm, k: usize, round: &LitmusRound) {
        use reg::*;
        let shape = self.cfg.shape;
        let fenced = self.cfg.fenced;
        a.li(S3, SANDBOX + k as i64 * ROUND_STRIDE);
        // Bounded spin on byte 1 of the go flag (byte 0 is fault-injection
        // bait); a corrupted (or missing) flag only costs the spin budget,
        // never a deadlock.
        a.li(T2, GO_SPIN);
        let gspin = a.bound_label();
        let go_ok = a.label();
        a.lbu(T1, GO_OFF + 1, S3);
        a.bnez(T1, go_ok);
        a.addi(T2, T2, -1);
        a.bnez(T2, gspin);
        a.bind(go_ok);
        for &w in &round.filler1 {
            a.raw32(w);
        }
        // Run this side's accesses; leave the packed payload in A5.
        match shape {
            LitmusShape::Mp => {
                a.ld(A3, Y_OFF, S3); // flag
                if fenced {
                    a.fence();
                }
                a.ld(A4, X_OFF, S3); // data
                emit_pack2(a);
            }
            LitmusShape::Sb => {
                a.li(T5, VAL1);
                a.sd(T5, Y_OFF, S3);
                if fenced {
                    a.fence();
                }
                a.ld(A4, X_OFF, S3); // r1
                emit_digit_of(a, A4, T6, T3, T4);
                a.mv(A5, T6);
            }
            LitmusShape::Lb => {
                a.ld(A4, Y_OFF, S3); // r1
                if fenced {
                    a.fence();
                }
                a.li(T5, VAL1);
                a.sd(T5, X_OFF, S3);
                emit_digit_of(a, A4, T6, T3, T4);
                a.mv(A5, T6);
            }
            LitmusShape::CoRR | LitmusShape::CoWW => {
                a.ld(A3, X_OFF, S3);
                // Address-dependency orders the second read after the
                // first (the DUT has no same-address load-load order).
                a.andi(T5, A3, 0);
                a.add(T5, T5, S3);
                a.ld(A4, X_OFF, T5);
                emit_pack2(a);
            }
            LitmusShape::TwoPlusTwoW => {
                a.li(T5, VAL2);
                a.sd(T5, Y_OFF, S3);
                if fenced {
                    a.fence();
                }
                a.sd(T5, X_OFF, S3);
                a.li(A5, 0);
            }
            LitmusShape::LrScContention => {
                emit_lrsc_increments(a, self.cfg.lrsc_iters);
                a.mv(A5, A4);
            }
            LitmusShape::FenceTorture => {
                a.ld(A3, Y_OFF, S3); // flag
                emit_serializer(a, round.ser1);
                a.ld(A4, X_OFF, S3); // data
                emit_pack2(a);
            }
        }
        // res := sentinel | payload. The spin-load on hart 0 carries
        // the payload through a true data dependency, so no separate
        // (reorderable) result load is needed.
        a.li(T3, 1 << 16);
        a.or(T3, T3, A5);
        a.sd(T3, RES_OFF, S3);
    }
}

/// Map a loaded value to its observation digit:
/// `0 → 0`, `VAL1 → 1`, `VAL2 → 2`, anything else → 3.
/// Branch-free: `d = 3 - 3*(v==0) - 2*(v==VAL1) - (v==VAL2)`.
fn emit_digit_of(a: &mut Asm, v: u8, d: u8, s1: u8, s2: u8) {
    a.sltiu(s1, v, 1);
    a.xori(s2, v, VAL1);
    a.sltiu(s2, s2, 1);
    a.li(d, 3);
    a.sub(d, d, s1);
    a.sub(d, d, s1);
    a.sub(d, d, s1);
    a.sub(d, d, s2);
    a.sub(d, d, s2);
    a.xori(s2, v, VAL2);
    a.sltiu(s2, s2, 1);
    a.sub(d, d, s2);
}

/// Pack the digits of A3/A4 into A5 as `digit(A3)*16 + digit(A4)`.
fn emit_pack2(a: &mut Asm) {
    use reg::*;
    emit_digit_of(a, A3, T5, T3, T4);
    emit_digit_of(a, A4, T6, T3, T4);
    a.slli(T5, T5, 4);
    a.add(A5, T5, T6);
}

/// `iters` bounded-retry LR/SC increments of the round's counter cell.
/// Leaves the success count in A4 (a hart that exhausts its retry
/// budget simply contributes fewer increments — counted, not assumed).
fn emit_lrsc_increments(a: &mut Asm, iters: usize) {
    use reg::*;
    a.addi(T4, S3, X_OFF);
    a.li(A4, 0);
    a.li(T2, iters as i64);
    let inc_top = a.bound_label();
    a.li(T5, 64);
    let retry = a.bound_label();
    let got = a.label();
    let skip = a.label();
    a.lr_d(T3, T4);
    a.addi(T3, T3, 1);
    a.sc_d(T6, T3, T4);
    a.beqz(T6, got);
    a.addi(T5, T5, -1);
    a.bnez(T5, retry);
    a.j(skip);
    a.bind(got);
    a.addi(A4, A4, 1);
    a.bind(skip);
    a.addi(T2, T2, -1);
    a.bnez(T2, inc_top);
}

/// Emit one drawn serializer.
fn emit_serializer(a: &mut Asm, ser: SerKind) {
    use reg::*;
    match ser {
        SerKind::Fence => a.fence(),
        SerKind::FenceI => a.fence_i(),
        SerKind::FenceFenceI => {
            a.fence();
            a.fence_i();
        }
        SerKind::SfenceVma => a.sfence_vma(ZERO, ZERO),
    }
}

/// Generate a two-hart litmus program from `seed` (every round kept).
pub fn random_litmus(seed: u64, cfg: &LitmusConfig) -> Program {
    LitmusProgram::generate(seed, cfg).emit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemu::{Interpreter, Nemu};

    #[test]
    fn clamped_bounds_the_knobs() {
        let wild = LitmusConfig {
            rounds: 0,
            filler: 100,
            lrsc_iters: 0,
            ..LitmusConfig::default()
        }
        .clamped();
        assert_eq!(wild.rounds, 1);
        assert_eq!(wild.filler, 8);
        assert_eq!(wild.lrsc_iters, 1);
        let huge = LitmusConfig {
            rounds: 1000,
            lrsc_iters: 1000,
            ..LitmusConfig::default()
        }
        .clamped();
        assert_eq!(huge.rounds, 24);
        assert_eq!(huge.lrsc_iters, 8);
        let dflt = LitmusConfig::default();
        assert_eq!(dflt.clamped(), dflt);
    }

    #[test]
    fn deterministic_per_seed_and_masks_re_emit() {
        let cfg = LitmusConfig::default();
        let p1 = LitmusProgram::generate(42, &cfg);
        let p2 = LitmusProgram::generate(42, &cfg);
        let p3 = LitmusProgram::generate(43, &cfg);
        assert_eq!(p1, p2);
        assert_eq!(p1.emit().bytes, p2.emit().bytes);
        assert_ne!(p1.seed, p3.seed);
        assert_eq!(p1.len(), cfg.rounds);
        // Emitting with rounds dropped yields a shorter image.
        let keep: Vec<bool> = (0..p1.len()).map(|i| i == 0).collect();
        assert!(p1.emit_subset(&keep).bytes.len() < p1.emit().bytes.len());
    }

    #[test]
    fn allowed_masks_encode_the_documented_sets() {
        // Fenced MP forbids (flag=1, data=0) = index 4.
        let mp = allowed_mask(LitmusShape::Mp, true);
        assert_eq!(mp & (1 << 4), 0);
        assert_ne!(mp & (1 << 5), 0);
        // Unfenced MP allows the load-load reordering.
        assert_ne!(allowed_mask(LitmusShape::Mp, false) & (1 << 4), 0);
        // Fenced SB forbids (0,0).
        assert_eq!(allowed_mask(LitmusShape::Sb, true) & 1, 0);
        assert_ne!(allowed_mask(LitmusShape::Sb, false) & 1, 0);
        // Fenced LB forbids (1,1) = index 5.
        assert_eq!(allowed_mask(LitmusShape::Lb, true) & (1 << 5), 0);
        // CoRR forbids new-then-old regardless of fencing.
        for fenced in [false, true] {
            assert_eq!(allowed_mask(LitmusShape::CoRR, fenced) & (1 << 4), 0);
        }
        // CoWW forbids (2,1) = index 9 and (1,0) = index 4.
        assert_eq!(allowed_mask(LitmusShape::CoWW, true) & (1 << 9), 0);
        assert_eq!(allowed_mask(LitmusShape::CoWW, true) & (1 << 4), 0);
        // 2+2W fenced forbids the cyclic (1,2) = index 6.
        assert_eq!(allowed_mask(LitmusShape::TwoPlusTwoW, true) & (1 << 6), 0);
        assert_ne!(allowed_mask(LitmusShape::TwoPlusTwoW, false) & (1 << 6), 0);
        // LR/SC: only a consistent counter is legal.
        assert_eq!(allowed_mask(LitmusShape::LrScContention, true), 1);
        // Wild digits (3) are forbidden everywhere.
        for shape in LitmusShape::ALL {
            for fenced in [false, true] {
                let m = allowed_mask(shape, fenced);
                for idx in [3u64, 7, 11, 12, 13, 14, 15] {
                    assert_eq!(m & (1 << idx), 0, "{shape:?} allows wild {idx}");
                }
            }
        }
    }

    #[test]
    fn fence_torture_rounds_pin_sc_only_when_both_sides_fence() {
        let cfg = LitmusConfig {
            shape: LitmusShape::FenceTorture,
            rounds: 24,
            ..LitmusConfig::default()
        };
        let p = LitmusProgram::generate(9, &cfg);
        let mut saw_tight = false;
        let mut saw_relaxed = false;
        for k in 0..p.len() {
            let r = &p.rounds[k];
            let tight = r.ser0.is_full_barrier() && r.ser1.is_full_barrier();
            assert_eq!(
                p.round_mask(k),
                allowed_mask(LitmusShape::FenceTorture, tight)
            );
            saw_tight |= tight;
            saw_relaxed |= !tight;
        }
        assert!(saw_tight && saw_relaxed, "both regimes drawn over 24 rounds");
    }

    #[test]
    fn exit_decode_round_trips() {
        let e = LitmusExit::decode(0x0a_03_05_01);
        assert_eq!(e.status, status::FORBIDDEN);
        assert!(e.forbidden());
        assert_eq!(e.round0_outcome, 5);
        assert_eq!(e.first_bad_round, 3);
        assert_eq!(e.first_bad_outcome, 10);
        assert_eq!(LitmusExit::describe_outcome(10), "d0=2,d1=2");
        let ok = LitmusExit::decode(0x0500);
        assert!(!ok.forbidden());
        assert_eq!(ok.round0_outcome, 5);
    }

    #[test]
    fn every_shape_decodes_cleanly() {
        // Every emitted word must decode to a legal instruction.
        for shape in LitmusShape::ALL {
            for fenced in [false, true] {
                let cfg = LitmusConfig {
                    shape,
                    fenced,
                    rounds: 3,
                    ..LitmusConfig::default()
                };
                let p = random_litmus(7, &cfg);
                assert_eq!(p.bytes.len() % 4, 0, "{shape:?} image word-aligned");
                for (i, w) in p.bytes.chunks(4).enumerate() {
                    let raw = u32::from_le_bytes(w.try_into().unwrap());
                    let d = riscv_isa::decode::decode32(raw);
                    assert_ne!(
                        d.op,
                        riscv_isa::op::Op::Illegal,
                        "{shape:?} word {i} ({raw:#010x}) must decode"
                    );
                }
            }
        }
    }

    #[test]
    fn single_hart_run_terminates_with_sync_timeout() {
        // With no partner hart the result spins exhaust and the program
        // must still terminate, reporting SYNC_TIMEOUT — the bounded
        // spins are what make desync (or fault injection) unable to
        // deadlock a campaign job.
        for shape in [LitmusShape::Mp, LitmusShape::LrScContention] {
            let cfg = LitmusConfig {
                shape,
                rounds: 1,
                ..LitmusConfig::default()
            };
            let p = random_litmus(3, &cfg);
            let mut n = Nemu::new(&p);
            let r = n.run(10_000_000);
            let code = r.exit_code.expect("single-hart litmus halts");
            assert_eq!(
                LitmusExit::decode(code).status,
                status::SYNC_TIMEOUT,
                "{shape:?}"
            );
        }
    }

    #[test]
    fn subset_emission_preserves_kept_round_cells() {
        // A kept round addresses the same cells whether or not other
        // rounds were dropped: its `li S3, base` constant survives.
        let cfg = LitmusConfig {
            rounds: 4,
            ..LitmusConfig::default()
        };
        let p = LitmusProgram::generate(11, &cfg);
        let full = p.emit();
        let keep: Vec<bool> = vec![false, false, true, false];
        let sub = p.emit_subset(&keep);
        assert!(sub.bytes.len() < full.bytes.len());
        // The kept round still addresses its original cells: the
        // round-2 base (SANDBOX + 2*256) materializes via a trailing
        // `addi rd, rd, 0x200`, whose immediate is unique among round
        // bases here and must survive in the subset image.
        let imm_of = |prog: &Program, target: i64| {
            prog.bytes.chunks(4).any(|w| {
                let d = riscv_isa::decode::decode32(u32::from_le_bytes(w.try_into().unwrap()));
                assert_ne!(d.op, riscv_isa::op::Op::Illegal);
                d.op == riscv_isa::op::Op::Addi && d.rd == d.rs1 && d.imm == (target & 0xfff)
            })
        };
        let round2 = SANDBOX + 2 * ROUND_STRIDE;
        assert!(imm_of(&full, round2));
        assert!(imm_of(&sub, round2));
    }
}

