//! The twelve SPEC-like kernels.
//!
//! Naming follows the SPEC CPU2006 program each kernel's control/memory
//! behavior is modeled on. All kernels run bare-metal at 0x8000_0000,
//! use memory above 0x8002_0000 as their data segment, leave a checksum
//! in `a0`, and halt with `ebreak`.

use riscv_isa::asm::{reg::*, Asm, Program};

/// Problem-size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for unit/integration tests (≈10⁴–10⁵ instructions).
    Test,
    /// Cycle-model benchmarking inputs: moderate instruction counts but
    /// multi-megabyte working sets, so cache-hierarchy capacity (the
    /// Fig. 12 LLC sweep) actually matters.
    Bench,
    /// Large inputs for interpreter benchmarking (≈10⁶–10⁷ instructions).
    Ref,
}

impl Scale {
    fn n3(self, test: i64, bench: i64, reference: i64) -> i64 {
        match self {
            Scale::Test => test,
            Scale::Bench => bench,
            Scale::Ref => reference,
        }
    }
}

/// Integer or floating-point dominated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// SPECint-like.
    Int,
    /// SPECfp-like.
    Fp,
}

/// One benchmark kernel.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Kernel name (modeled-on SPEC program).
    pub name: &'static str,
    /// Int or FP class.
    pub class: WorkloadClass,
    /// The assembled program.
    pub program: Program,
}

const BASE: u64 = 0x8000_0000;
const DATA: i64 = 0x8002_0000;
const GOLDEN: i64 = 0x9e3779b97f4a7c15u64 as i64;

/// Build every kernel at the given scale.
pub fn all_workloads(scale: Scale) -> Vec<Workload> {
    NAMES.iter().map(|n| workload(n, scale)).collect()
}

/// Kernel names in suite order (int first, then fp).
pub const NAMES: [&str; 12] = [
    "sjeng", "mcf", "bzip2", "gobmk", "hmmer", "libquantum", "gcc", "astar", "bwaves", "namd",
    "milc", "lbm",
];

/// Build one kernel by name.
///
/// # Panics
///
/// Panics on an unknown name.
pub fn workload(name: &str, scale: Scale) -> Workload {
    let (class, program) = match name {
        "sjeng" => (WorkloadClass::Int, sjeng(scale)),
        "mcf" => (WorkloadClass::Int, mcf(scale)),
        "bzip2" => (WorkloadClass::Int, bzip2(scale)),
        "gobmk" => (WorkloadClass::Int, gobmk(scale)),
        "hmmer" => (WorkloadClass::Int, hmmer(scale)),
        "libquantum" => (WorkloadClass::Int, libquantum(scale)),
        "gcc" => (WorkloadClass::Int, gcc(scale)),
        "astar" => (WorkloadClass::Int, astar(scale)),
        "bwaves" => (WorkloadClass::Fp, bwaves(scale)),
        "namd" => (WorkloadClass::Fp, namd(scale)),
        "milc" => (WorkloadClass::Fp, milc(scale)),
        "lbm" => (WorkloadClass::Fp, lbm(scale)),
        other => panic!("unknown workload {other}"),
    };
    let name = NAMES
        .iter()
        .find(|n| **n == name)
        .expect("known name");
    Workload {
        name,
        class,
        program,
    }
}

/// sjeng-like: game-tree search flavor — data-dependent branches on a
/// pseudo-random stream, with a small "board" table updated on the way
/// (the paper's §IV-D PUBS case study uses sjeng for its high MPKI).
fn sjeng(scale: Scale) -> Program {
    let n = scale.n3(4_000, 150_000, 400_000);
    let mut a = Asm::new(BASE);
    a.li(S0, 0); // i
    a.li(S1, n);
    a.li(A0, 0); // acc
    a.li(S2, GOLDEN);
    a.li(S3, DATA); // board
    a.li(S4, 0x1234_5678);
    let top = a.bound_label();
    let b1 = a.label();
    let b2 = a.label();
    let b3 = a.label();
    let next = a.label();
    // x = hash(i)
    a.mul(T0, S0, S2);
    a.xor(T0, T0, S4);
    a.srli(T1, T0, 33);
    a.xor(T0, T0, T1);
    // Three data-dependent branches (hard to predict).
    a.andi(T1, T0, 1);
    a.beqz(T1, b1);
    a.addi(A0, A0, 3);
    a.bind(b1);
    a.srli(T1, T0, 7);
    a.andi(T1, T1, 3);
    a.li(T2, 2);
    a.blt(T1, T2, b2);
    a.xor(A0, A0, T0);
    a.bind(b2);
    a.srli(T1, T0, 13);
    a.andi(T1, T1, 7);
    a.li(T2, 5);
    a.bge(T1, T2, b3);
    // "Move generation": touch the board.
    a.andi(T3, T0, 0x3f8);
    a.add(T3, T3, S3);
    a.ld(T4, 0, T3);
    a.add(T4, T4, T0);
    a.sd(T4, 0, T3);
    a.j(next);
    a.bind(b3);
    a.rol(A0, A0, T1);
    a.bind(next);
    a.addi(S0, S0, 1);
    a.bne(S0, S1, top);
    a.ebreak();
    a.assemble()
}

/// mcf-like: pointer chasing through a pseudo-random linked list —
/// latency bound, cache-hostile.
fn mcf(scale: Scale) -> Program {
    let nodes = scale.n3(512, 65_536, 16_384); // Bench: 4 MiB of nodes
    let hops = scale.n3(3_000, 250_000, 600_000);
    let mut a = Asm::new(BASE);
    // Build a singly linked list: node i at DATA + 64*i points to node
    // (i * 2654435761 + 1) % nodes.
    a.li(S0, DATA);
    a.li(T0, 0);
    a.li(T1, nodes);
    a.li(S2, 0x9e37_79b1);
    let build = a.bound_label();
    a.mul(T2, T0, S2);
    a.addi(T2, T2, 1);
    a.remu(T2, T2, T1); // next index
    a.slli(T2, T2, 6);
    a.add(T2, T2, S0); // next pointer
    a.slli(T3, T0, 6);
    a.add(T3, T3, S0);
    a.sd(T2, 0, T3); // node->next
    a.sd(T0, 8, T3); // node->cost = i
    a.addi(T0, T0, 1);
    a.bne(T0, T1, build);
    // Chase.
    a.mv(T0, S0);
    a.li(S1, hops);
    a.li(A0, 0);
    let chase = a.bound_label();
    a.ld(T2, 8, T0); // cost
    a.add(A0, A0, T2);
    a.ld(T0, 0, T0); // next (dependent load)
    a.addi(S1, S1, -1);
    a.bnez(S1, chase);
    a.andi(A0, A0, 0xff_ffff);
    a.ebreak();
    a.assemble()
}

/// bzip2-like: byte-granularity compression flavor — histogram plus
/// run-length detection over a pseudo-random buffer.
fn bzip2(scale: Scale) -> Program {
    let len = scale.n3(4_096, 131_072, 262_144);
    let mut a = Asm::new(BASE);
    // Generate bytes with a xorshift and store them.
    a.li(S0, DATA);
    a.li(T0, 0);
    a.li(T1, len);
    a.li(S2, 88172645463325252u64 as i64);
    let genl = a.bound_label();
    a.slli(T2, S2, 13);
    a.xor(S2, S2, T2);
    a.srli(T2, S2, 7);
    a.xor(S2, S2, T2);
    a.slli(T2, S2, 17);
    a.xor(S2, S2, T2);
    a.add(T3, S0, T0);
    a.sb(S2, 0, T3);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, genl);
    // Histogram + run detection.
    a.li(S3, DATA + 0x8_0000); // histogram base
    a.li(T0, 0);
    a.li(A0, 0);
    a.li(S4, -1); // prev byte
    let scan = a.bound_label();
    let norun = a.label();
    a.add(T3, S0, T0);
    a.lbu(T4, 0, T3);
    // histogram[byte]++
    a.slli(T5, T4, 3);
    a.add(T5, T5, S3);
    a.ld(T6, 0, T5);
    a.addi(T6, T6, 1);
    a.sd(T6, 0, T5);
    // run detection
    a.bne(T4, S4, norun);
    a.addi(A0, A0, 1);
    a.bind(norun);
    a.mv(S4, T4);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, scan);
    // checksum: runs + histogram[0]
    a.ld(T6, 0, S3);
    a.add(A0, A0, T6);
    a.ebreak();
    a.assemble()
}

/// gobmk-like: board scanning with nested position-dependent branches.
fn gobmk(scale: Scale) -> Program {
    let iters = scale.n3(40, 150, 2_500);
    let mut a = Asm::new(BASE);
    a.li(S0, DATA); // 19x19 board, 1 byte per point (we use 32x32)
    a.li(S5, 0);
    a.li(S6, iters);
    a.li(A0, 0);
    let game = a.bound_label();
    a.li(T0, 0); // point index
    a.li(T1, 1024);
    let scan = a.bound_label();
    let empty = a.label();
    let liberty = a.label();
    let nextp = a.label();
    a.add(T2, S0, T0);
    a.lbu(T3, 0, T2);
    a.beqz(T3, empty);
    // occupied: check "liberties" of the two neighbors
    a.lbu(T4, 1, T2);
    a.beqz(T4, liberty);
    a.lbu(T4, 32, T2);
    a.beqz(T4, liberty);
    a.addi(A0, A0, 1); // captured-ish
    a.j(nextp);
    a.bind(liberty);
    a.addi(A0, A0, 2);
    a.j(nextp);
    a.bind(empty);
    // place a stone pseudo-randomly
    a.mul(T5, T0, S6);
    a.add(T5, T5, S5);
    a.andi(T5, T5, 3);
    a.sb(T5, 0, T2);
    a.bind(nextp);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, scan);
    a.addi(S5, S5, 1);
    a.bne(S5, S6, game);
    a.andi(A0, A0, 0xff_ffff);
    a.ebreak();
    a.assemble()
}

/// hmmer-like: dynamic-programming inner loop (max/add recurrences) —
/// high ILP integer code, few branch mispredicts.
fn hmmer(scale: Scale) -> Program {
    let rows = scale.n3(60, 1_200, 4_000);
    let mut a = Asm::new(BASE);
    a.li(S0, DATA); // dp row
    a.li(S5, 0); // row
    a.li(S6, rows);
    a.li(A0, 0);
    a.li(S2, GOLDEN);
    let row = a.bound_label();
    a.li(T0, 0);
    a.li(T1, 128); // columns
    let col = a.bound_label();
    a.slli(T2, T0, 3);
    a.add(T2, T2, S0);
    a.ld(T3, 0, T2); // dp[j]
    a.ld(T4, 8, T2); // dp[j+1]
    a.mul(T5, S5, S2);
    a.xor(T5, T5, T0);
    a.add(T3, T3, T5); // match score
    a.addi(T4, T4, 3); // gap score
    a.max(T3, T3, T4);
    a.sd(T3, 0, T2);
    a.add(A0, A0, T3);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, col);
    a.addi(S5, S5, 1);
    a.bne(S5, S6, row);
    a.andi(A0, A0, 0xfff_ffff);
    a.ebreak();
    a.assemble()
}

/// libquantum-like: long streaming passes toggling bits in a large array
/// — bandwidth bound, trivially predictable branches.
fn libquantum(scale: Scale) -> Program {
    let len = scale.n3(2_048, 262_144, 131_072); // 8-byte elements (Bench: 2 MiB)
    let passes = scale.n3(4, 2, 40);
    let mut a = Asm::new(BASE);
    a.li(S0, DATA);
    a.li(S5, 0);
    a.li(S6, passes);
    a.li(A0, 0);
    let pass = a.bound_label();
    a.li(T0, 0);
    a.li(T1, len);
    let inner = a.bound_label();
    a.slli(T2, T0, 3);
    a.add(T2, T2, S0);
    a.ld(T3, 0, T2);
    a.xor(T3, T3, S5); // toggle control bit
    a.addi(T3, T3, 1);
    a.sd(T3, 0, T2);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, inner);
    a.addi(S5, S5, 1);
    a.bne(S5, S6, pass);
    // checksum first/last
    a.ld(T3, 0, S0);
    a.add(A0, A0, T3);
    a.andi(A0, A0, 0xfff_ffff);
    a.ebreak();
    a.assemble()
}

/// gcc-like: hash-table insert/lookup churn — irregular control plus
/// pointer-ish memory access.
fn gcc(scale: Scale) -> Program {
    let ops = scale.n3(3_000, 100_000, 300_000);
    let mut a = Asm::new(BASE);
    a.li(S0, DATA); // 4096-entry open-addressed table of (key,value)
    a.li(S1, ops);
    a.li(S2, GOLDEN);
    a.li(S5, 0);
    a.li(A0, 0);
    let top = a.bound_label();
    let probe = a.label();
    let insert = a.label();
    let found = a.label();
    let next = a.label();
    // Key index: each key is used twice (insert, then lookup), and the
    // distinct-key space is capped below the table size so probing always
    // terminates.
    a.srli(T6, S5, 1);
    a.andi(T6, T6, 0x7ff);
    a.mul(T0, T6, S2);
    a.ori(T0, T0, 1); // never key 0 (0 marks empty slots)
    a.srli(T1, T0, 17);
    a.andi(T1, T1, 0xfff); // slot
    a.bind(probe);
    a.slli(T2, T1, 4);
    a.add(T2, T2, S0);
    a.ld(T3, 0, T2); // key
    a.beqz(T3, insert);
    a.beq(T3, T0, found);
    a.addi(T1, T1, 1);
    a.andi(T1, T1, 0xfff);
    a.j(probe);
    a.bind(insert);
    a.sd(T0, 0, T2);
    a.sd(S5, 8, T2);
    a.addi(A0, A0, 1);
    a.j(next);
    a.bind(found);
    a.ld(T4, 8, T2);
    a.add(A0, A0, T4);
    a.bind(next);
    a.addi(S5, S5, 1);
    a.bne(S5, S1, top);
    a.andi(A0, A0, 0xfff_ffff);
    a.ebreak();
    a.assemble()
}

/// astar-like: grid path walking with direction branches.
fn astar(scale: Scale) -> Program {
    let steps = scale.n3(4_000, 150_000, 400_000);
    let grid_mask = scale.n3(0xffff, 0xfffff, 0xfffff); // Bench/Ref: 1 MiB grid
    let mut a = Asm::new(BASE);
    a.li(S0, DATA); // byte-cost grid (64 KiB test, 1 MiB bench/ref)
    a.li(S1, steps);
    a.li(S2, GOLDEN);
    a.li(T0, 128 * 256 + 128); // position
    a.li(S5, 0);
    a.li(A0, 0);
    let top = a.bound_label();
    let right = a.label();
    let down = a.label();
    let move_done = a.label();
    a.mul(T1, S5, S2);
    a.srli(T2, T1, 21);
    a.andi(T2, T2, 3);
    a.li(T3, 1);
    a.beq(T2, T3, right);
    a.li(T3, 2);
    a.beq(T2, T3, down);
    a.addi(T0, T0, -1); // left
    a.j(move_done);
    a.bind(right);
    a.addi(T0, T0, 1);
    a.j(move_done);
    a.bind(down);
    a.addi(T0, T0, 256);
    a.bind(move_done);
    a.li(T4, grid_mask);
    a.and(T0, T0, T4);
    a.add(T5, S0, T0);
    a.lbu(T6, 0, T5);
    a.add(A0, A0, T6);
    a.addi(T6, T6, 1);
    a.sb(T6, 0, T5);
    a.addi(S5, S5, 1);
    a.bne(S5, S1, top);
    a.andi(A0, A0, 0xfff_ffff);
    a.ebreak();
    a.assemble()
}

/// bwaves-like: dense FP stencil sweep (fmadd-heavy, streaming).
fn bwaves(scale: Scale) -> Program {
    let len = scale.n3(1_024, 262_144, 65_536); // Bench: 2 MiB array
    let passes = scale.n3(6, 2, 60);
    let mut a = Asm::new(BASE);
    // Initialize array with i as doubles.
    a.li(S0, DATA);
    a.li(T0, 0);
    a.li(T1, len);
    let init = a.bound_label();
    a.fcvt_d_l(FT0, T0);
    a.slli(T2, T0, 3);
    a.add(T2, T2, S0);
    a.fsd(FT0, 0, T2);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, init);
    // Stencil passes: x[i] = 0.25*x[i-1] + 0.5*x[i] + 0.25*x[i+1].
    a.li(T3, 1);
    a.fcvt_d_l(FT1, T3);
    a.li(T3, 4);
    a.fcvt_d_l(FT2, T3);
    a.fdiv_d(FT2, FT1, FT2); // 0.25
    a.fadd_d(FT3, FT2, FT2); // 0.5
    a.li(S5, 0);
    a.li(S6, passes);
    let pass = a.bound_label();
    a.li(T0, 1);
    a.addi(T1, T1, 0);
    let inner = a.bound_label();
    a.slli(T2, T0, 3);
    a.add(T2, T2, S0);
    a.fld(FT4, -8, T2);
    a.fld(FT5, 0, T2);
    a.fld(FT6, 8, T2);
    a.fmul_d(FT7, FT4, FT2);
    a.fmadd_d(FT7, FT5, FT3, FT7);
    a.fmadd_d(FT7, FT6, FT2, FT7);
    a.fsd(FT7, 0, T2);
    a.addi(T0, T0, 1);
    a.addi(T4, T1, -1);
    a.bne(T0, T4, inner);
    a.addi(S5, S5, 1);
    a.bne(S5, S6, pass);
    // checksum: x[len/2] as integer
    a.srli(T0, T1, 1);
    a.slli(T0, T0, 3);
    a.add(T0, T0, S0);
    a.fld(FT4, 0, T0);
    a.fcvt_l_d(A0, FT4);
    a.ebreak();
    a.assemble()
}

/// namd-like: particle-force flavor — chained FMAs with reciprocal-ish
/// scaling, high FP ILP.
fn namd(scale: Scale) -> Program {
    let n = scale.n3(2_000, 150_000, 200_000);
    let mut a = Asm::new(BASE);
    a.li(T0, 3);
    a.fcvt_d_l(FT0, T0); // dx = 3
    a.li(T0, 5);
    a.fcvt_d_l(FT1, T0); // dy = 5
    a.li(T0, 7);
    a.fcvt_d_l(FT2, T0); // dz = 7
    a.li(T0, 1);
    a.fcvt_d_l(FT3, T0); // force accumulator
    a.fmv_d_x(FA0, ZERO); // energy
    a.li(S0, 0);
    a.li(S1, n);
    let top = a.bound_label();
    // r2 = dx*dx + dy*dy + dz*dz (dx varies slowly)
    a.fmul_d(FT4, FT0, FT0);
    a.fmadd_d(FT4, FT1, FT1, FT4);
    a.fmadd_d(FT4, FT2, FT2, FT4);
    a.fsqrt_d(FT5, FT4);
    a.fdiv_d(FT6, FT3, FT5); // 1/r-ish
    a.fmadd_d(FA0, FT6, FT6, FA0); // energy += (1/r)^2
    a.fadd_d(FT0, FT0, FT6); // drift dx
    a.fmin_d(FT0, FT0, FT4); // keep bounded
    a.addi(S0, S0, 1);
    a.bne(S0, S1, top);
    a.fcvt_l_d(A0, FA0);
    a.ebreak();
    a.assemble()
}

/// milc-like: small-matrix (2x2, representing SU(3)-ish work) repeated
/// multiplications from memory.
fn milc(scale: Scale) -> Program {
    let n = scale.n3(1_500, 80_000, 150_000);
    let mut a = Asm::new(BASE);
    // Seed a 2x2 matrix in memory as doubles [1, 2, 3, 4].
    a.li(S0, DATA);
    for (i, v) in [1i64, 2, 3, 4].iter().enumerate() {
        a.li(T0, *v);
        a.fcvt_d_l(FT0, T0);
        a.fsd(FT0, (i * 8) as i64, S0);
    }
    // acc = I
    a.li(T0, 1);
    a.fcvt_d_l(FS0, T0);
    a.fmv_d_x(FS1, ZERO);
    a.fmv_d_x(FT10, ZERO);
    a.li(T0, 1);
    a.fcvt_d_l(FT11, T0);
    a.li(S1, n);
    a.li(S5, 0);
    // Scale factor to keep values bounded: 1/8.
    a.li(T0, 8);
    a.fcvt_d_l(FA1, T0);
    let top = a.bound_label();
    a.fld(FT0, 0, S0);
    a.fld(FT1, 8, S0);
    a.fld(FT2, 16, S0);
    a.fld(FT3, 24, S0);
    // acc = (acc * m) / 8 elementwise-ish (2x2 matmul)
    a.fmul_d(FT4, FS0, FT0);
    a.fmadd_d(FT4, FS1, FT2, FT4);
    a.fmul_d(FT5, FS0, FT1);
    a.fmadd_d(FT5, FS1, FT3, FT5);
    a.fmul_d(FA2, FT10, FT0);
    a.fmadd_d(FA2, FT11, FT2, FA2);
    a.fmul_d(FA3, FT10, FT1);
    a.fmadd_d(FA3, FT11, FT3, FA3);
    a.fdiv_d(FS0, FT4, FA1);
    a.fdiv_d(FS1, FT5, FA1);
    a.fdiv_d(FT10, FA2, FA1);
    a.fdiv_d(FT11, FA3, FA1);
    a.addi(S5, S5, 1);
    a.bne(S5, S1, top);
    a.fadd_d(FT4, FS0, FT11);
    a.fcvt_l_d(A0, FT4);
    a.ebreak();
    a.assemble()
}

/// lbm-like: lattice streaming update — FP loads/stores dominate.
fn lbm(scale: Scale) -> Program {
    let cells = scale.n3(1_024, 262_144, 65_536); // Bench: 4 MiB lattice
    let passes = scale.n3(5, 2, 50);
    let mut a = Asm::new(BASE);
    a.li(S0, DATA);
    a.li(T0, 0);
    a.li(T1, cells);
    let init = a.bound_label();
    a.fcvt_d_l(FT0, T0);
    a.slli(T2, T0, 4); // two doubles per cell
    a.add(T2, T2, S0);
    a.fsd(FT0, 0, T2);
    a.fsd(FT0, 8, T2);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, init);
    a.li(T0, 2);
    a.fcvt_d_l(FT9, T0); // relaxation divisor
    a.li(S5, 0);
    a.li(S6, passes);
    let pass = a.bound_label();
    a.li(T0, 1);
    let inner = a.bound_label();
    a.slli(T2, T0, 4);
    a.add(T2, T2, S0);
    a.fld(FT0, 0, T2); // density
    a.fld(FT1, 8, T2); // momentum
    a.fld(FT2, -16, T2); // neighbor density
    a.fadd_d(FT3, FT0, FT2);
    a.fdiv_d(FT3, FT3, FT9); // average (collide)
    a.fsd(FT3, 0, T2);
    a.fadd_d(FT1, FT1, FT3);
    a.fsd(FT1, 8, T2); // stream
    a.addi(T0, T0, 1);
    a.bne(T0, T1, inner);
    a.addi(S5, S5, 1);
    a.bne(S5, S6, pass);
    a.fld(FT0, 16, S0);
    a.fcvt_l_d(A0, FT0);
    a.ebreak();
    a.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemu::{DromajoLike, Interpreter, Nemu, QemuTciLike, SpikeLike};

    #[test]
    fn all_kernels_terminate_on_nemu() {
        for w in all_workloads(Scale::Test) {
            let mut n = Nemu::new(&w.program);
            let r = n.run(80_000_000);
            assert!(
                r.exit_code.is_some(),
                "{} did not halt ({} insts)",
                w.name,
                r.instructions
            );
            assert!(
                r.instructions > 3_000,
                "{} too small: {} insts",
                w.name,
                r.instructions
            );
        }
    }

    #[test]
    fn interpreters_agree_on_every_kernel() {
        for w in all_workloads(Scale::Test) {
            let mut n = Nemu::new(&w.program);
            let mut s = SpikeLike::new(&w.program);
            let rn = n.run(80_000_000);
            let rs = s.run(80_000_000);
            assert_eq!(rn.exit_code, rs.exit_code, "{}", w.name);
            assert_eq!(rn.instructions, rs.instructions, "{}", w.name);
            assert_eq!(
                n.hart().state.gpr,
                s.hart().state.gpr,
                "{} final registers",
                w.name
            );
        }
    }

    #[test]
    fn baselines_agree_on_fp_kernels() {
        for w in all_workloads(Scale::Test) {
            if w.class != WorkloadClass::Fp {
                continue;
            }
            let mut d = DromajoLike::new(&w.program);
            let mut q = QemuTciLike::new(&w.program);
            assert_eq!(
                d.run(80_000_000).exit_code,
                q.run(80_000_000).exit_code,
                "{}",
                w.name
            );
            assert_eq!(d.hart().state.fpr, q.hart().state.fpr, "{}", w.name);
        }
    }

    #[test]
    fn suite_composition() {
        let all = all_workloads(Scale::Test);
        assert_eq!(all.len(), 12);
        assert_eq!(
            all.iter().filter(|w| w.class == WorkloadClass::Int).count(),
            8
        );
        assert_eq!(
            all.iter().filter(|w| w.class == WorkloadClass::Fp).count(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_name_panics() {
        let _ = workload("perlbench", Scale::Test);
    }
}
