//! Property tests for the two-hart litmus generator.
//!
//! Litmus programs must be *self-contained*: every store lands in the
//! per-round sandbox blocks, each hart's result cells are disjoint from
//! its partner's, and the bounded spins guarantee forward progress even
//! with a hart missing entirely. Each hart's path must also decode and
//! run identically on all five REF interpreter personalities, and
//! `emit_subset` must preserve exactly the kept rounds — these are the
//! properties the campaign's ddmin minimizer and the outcome oracle
//! lean on.

use nemu::registry::PERSONALITIES;
use nemu::Interpreter;
use proptest::prelude::*;
use workloads::litmus::{
    status, LitmusConfig, LitmusExit, LitmusProgram, LitmusShape, GO_OFF, GO_TOKEN, RES_OFF,
    ROUND_STRIDE, SANDBOX, VAL1, X_OFF, Y_OFF,
};
use riscv_isa::asm::Program;
use riscv_isa::mem::PhysMem;

const FUEL: u64 = 8_000_000;

/// Build a personality engine for `hartid` with the program loaded.
fn engine(pers_idx: usize, p: &Program, hartid: u64) -> Box<dyn Interpreter> {
    let mut e = (PERSONALITIES[pers_idx].build)(p);
    e.hart_mut().state.csr.mhartid = hartid;
    e
}

fn cell(e: &mut Box<dyn Interpreter>, round: usize, off: i64) -> u64 {
    let addr = (SANDBOX + round as i64 * ROUND_STRIDE + off) as u64;
    e.mem_mut().read_uint(addr, 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Hart 0 alone writes exactly the go/x/y cells of every round —
    /// nothing else in the sandbox — and times out cleanly; hart 1
    /// alone writes exactly the result cells. The two write sets are
    /// disjoint, so the result regions can never race each other.
    #[test]
    fn mp_programs_are_self_contained(seed in any::<u64>(), rounds in 1usize..=2, fenced in any::<bool>()) {
        let cfg = LitmusConfig { shape: LitmusShape::Mp, fenced, rounds, ..LitmusConfig::default() };
        let prog = LitmusProgram::generate(seed, &cfg);
        let p = prog.emit();

        // Hart 0 alone: no partner result ever arrives.
        let mut h0 = engine(0, &p, 0);
        let r = h0.run(FUEL);
        let code = r.exit_code.expect("hart 0 halts on bounded spins");
        prop_assert_eq!(LitmusExit::decode(code).status, status::SYNC_TIMEOUT);
        for k in 0..prog.len() {
            prop_assert_eq!(cell(&mut h0, k, GO_OFF), GO_TOKEN as u64, "round {} go", k);
            prop_assert_eq!(cell(&mut h0, k, X_OFF), VAL1 as u64, "round {} x", k);
            prop_assert_eq!(cell(&mut h0, k, Y_OFF), VAL1 as u64, "round {} y", k);
            prop_assert_eq!(cell(&mut h0, k, RES_OFF), 0, "round {} res", k);
        }
        // Guard bands outside the sandbox stay untouched.
        let end = prog.len() as i64 * ROUND_STRIDE;
        for off in [-64i64, -8, end, end + 64] {
            prop_assert_eq!(cell(&mut h0, 0, off), 0, "wild store at sandbox{:+}", off);
        }

        // Hart 1 alone: go spin exhausts, zeros observed, result posted.
        let mut h1 = engine(0, &p, 1);
        let r = h1.run(FUEL);
        prop_assert_eq!(r.exit_code, Some(0));
        for k in 0..prog.len() {
            prop_assert_eq!(cell(&mut h1, k, GO_OFF), 0, "round {} go (h1)", k);
            prop_assert_eq!(cell(&mut h1, k, X_OFF), 0, "round {} x (h1)", k);
            prop_assert_eq!(cell(&mut h1, k, Y_OFF), 0, "round {} y (h1)", k);
            prop_assert_eq!(cell(&mut h1, k, RES_OFF), 1 << 16, "round {} res (h1)", k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every shape's program decodes and runs identically on all five
    /// REF personalities, for both hart paths: same exit code, same
    /// retired-instruction count.
    #[test]
    fn programs_agree_on_all_personalities(seed in any::<u64>(), shape_idx in 0usize..8, fenced in any::<bool>()) {
        prop_assert!(PERSONALITIES.len() >= 5, "personality registry lost a tier");
        let cfg = LitmusConfig {
            shape: LitmusShape::ALL[shape_idx],
            fenced,
            rounds: 1,
            lrsc_iters: 2,
            ..LitmusConfig::default()
        };
        let p = LitmusProgram::generate(seed, &cfg).emit();
        for hartid in [0u64, 1] {
            let mut first = engine(0, &p, hartid);
            let r0 = first.run(FUEL);
            prop_assert!(r0.exit_code.is_some(), "hart {} did not halt under {}", hartid, PERSONALITIES[0].name);
            for idx in 1..PERSONALITIES.len() {
                let mut e = engine(idx, &p, hartid);
                let r = e.run(FUEL);
                prop_assert_eq!(r.exit_code, r0.exit_code, "hart {} exit under {}", hartid, PERSONALITIES[idx].name);
                prop_assert_eq!(r.instructions, r0.instructions, "hart {} instret under {}", hartid, PERSONALITIES[idx].name);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `emit_subset` keeps exactly the masked rounds: an all-true mask
    /// reproduces `emit()` byte for byte, and a partial mask's program
    /// touches the kept rounds' blocks and leaves dropped blocks zero —
    /// the invariant ddmin relies on when it shrinks a failing mask.
    #[test]
    fn emit_subset_preserves_kept_rounds(seed in any::<u64>(), rounds in 2usize..=3, mask_bits in any::<u64>()) {
        let cfg = LitmusConfig { shape: LitmusShape::Mp, rounds, ..LitmusConfig::default() };
        let prog = LitmusProgram::generate(seed, &cfg);
        let all = vec![true; prog.len()];
        prop_assert_eq!(prog.emit_subset(&all).bytes, prog.emit().bytes);

        let keep: Vec<bool> = (0..prog.len()).map(|k| mask_bits >> k & 1 == 1).collect();
        let p = prog.emit_subset(&keep);
        let mut h0 = engine(0, &p, 0);
        let r = h0.run(FUEL);
        let expected = if keep.iter().any(|&b| b) { status::SYNC_TIMEOUT } else { status::OK };
        prop_assert_eq!(LitmusExit::decode(r.exit_code.expect("halts")).status, expected);
        for (k, &kept) in keep.iter().enumerate() {
            let want = if kept { GO_TOKEN as u64 } else { 0 };
            prop_assert_eq!(cell(&mut h0, k, GO_OFF), want, "round {} kept={}", k, kept);
            let want_x = if kept { VAL1 as u64 } else { 0 };
            prop_assert_eq!(cell(&mut h0, k, X_OFF), want_x, "round {} x kept={}", k, kept);
        }
    }
}
