//! Property tests for the checkpoint format and the SimPoint pipeline
//! (ISSUE satellite): the byte format round-trips arbitrary
//! torture-derived architectural states, clustering is a pure function
//! of its inputs with exactly partitioned weights, integer weighted-CPI
//! aggregation is permutation-invariant, and the BBV collector tracks
//! interval boundaries exactly.

use checkpoint::{simpoints, weighted_cpi, weighted_cpi_milli, BbvCollector, Checkpoint};
use nemu::hart::{self, Hart};
use proptest::prelude::*;
use workloads::{TortureConfig, TortureProgram};

/// Build a checkpoint by stepping a NEMU hart `steps` instructions into
/// a torture program — a state with populated GPRs/FPRs/CSRs and a live
/// memory image, the same shape the generator produces.
fn torture_checkpoint(seed: u64, steps: u64) -> Checkpoint {
    let cfg = TortureConfig {
        body_len: 40,
        iterations: 4,
        ..Default::default()
    };
    let program = TortureProgram::generate(seed, &cfg).emit();
    let mut memory = riscv_isa::mem::SparseMemory::new();
    program.load_into(&mut memory);
    let mut hart = Hart::new(program.entry, 0);
    let mut executed = 0;
    for _ in 0..steps {
        if hart.is_halted() {
            break;
        }
        hart::step(&mut hart, &mut memory);
        executed += 1;
    }
    Checkpoint {
        state: hart.state.clone(),
        memory,
        instret: executed,
        weight: 0.5,
        members: 3,
        total_intervals: 6,
        interval: (seed % 11) as usize,
    }
}

/// A small random BBV interval set built through the real collector.
fn bbv_set(blocks: &[(u64, u64)], intervals: usize) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    let mut c = BbvCollector::new();
    for i in 0..intervals {
        for (j, &(pc, len)) in blocks.iter().enumerate() {
            // Vary which blocks run per interval so phases exist.
            if (i + j) % 3 != 0 {
                c.record(0x8000_0000 + pc * 4, len.max(1));
            }
        }
        out.push(c.finish());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `to_bytes`/`try_from_bytes` round-trip torture-derived states
    /// bit-exactly, the canonical re-serialization is byte-identical
    /// (so content hashes are stable across a disk round-trip), and
    /// truncating the header region always errors instead of panicking.
    #[test]
    fn byte_format_roundtrips_torture_states(seed in 0u64..50_000, steps in 1u64..400) {
        let c = torture_checkpoint(seed, steps);
        let blob = c.to_bytes();
        let back = Checkpoint::try_from_bytes(&blob).expect("round-trip parses");
        prop_assert_eq!(&back.state, &c.state);
        prop_assert_eq!(back.instret, c.instret);
        prop_assert_eq!(back.members, c.members);
        prop_assert_eq!(back.total_intervals, c.total_intervals);
        prop_assert_eq!(back.interval, c.interval);
        prop_assert_eq!(back.to_bytes(), blob, "re-serialization must be canonical");
        prop_assert_eq!(back.content_hash(), c.content_hash());
        // Header truncations are errors, never panics.
        let hlen = u64::from_le_bytes(blob[..8].try_into().unwrap()) as usize;
        let cut = (seed as usize) % (hlen + 8);
        prop_assert!(Checkpoint::try_from_bytes(&blob[..cut]).is_err());
    }

    /// Clustering is a pure function of `(vectors, k, seed)`; cluster
    /// populations partition the intervals exactly (Σ members == total,
    /// Σ weight == 1) and every representative indexes a real interval.
    #[test]
    fn simpoints_are_deterministic_and_partition(
        blocks in prop::collection::vec((0u64..64, 1u64..50), 2..8),
        intervals in 2usize..20,
        k in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let vecs = bbv_set(&blocks, intervals);
        let pts = simpoints(&vecs, k, seed);
        prop_assert_eq!(&pts, &simpoints(&vecs, k, seed), "same inputs, same points");
        prop_assert!(!pts.is_empty() && pts.len() <= k.min(intervals));
        let members: u64 = pts.iter().map(|p| p.members).sum();
        prop_assert_eq!(members, intervals as u64, "clusters must partition intervals");
        let wsum: f64 = pts.iter().map(|p| p.weight).sum();
        prop_assert!((wsum - 1.0).abs() < 1e-9, "weights sum to 1, got {}", wsum);
        for p in &pts {
            prop_assert!(p.interval < intervals);
            prop_assert!(p.members > 0);
        }
    }

    /// Integer weighted-CPI aggregation is exactly permutation-invariant
    /// (integer addition is associative), bounded by the input range,
    /// and consistent with the float form to within rounding.
    #[test]
    fn weighted_cpi_milli_is_permutation_invariant(
        pairs in prop::collection::vec((100u64..5_000, 1u64..50), 1..12),
        rot in 0usize..12,
    ) {
        let cpis: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let members: Vec<u64> = pairs.iter().map(|p| p.1).collect();
        let base = weighted_cpi_milli(&cpis, &members);
        // Any rotation and the full reversal agree exactly.
        let r = rot % pairs.len();
        let mut rc = cpis.clone();
        rc.rotate_left(r);
        let mut rm = members.clone();
        rm.rotate_left(r);
        prop_assert_eq!(base, weighted_cpi_milli(&rc, &rm));
        let rev_c: Vec<u64> = cpis.iter().rev().copied().collect();
        let rev_m: Vec<u64> = members.iter().rev().copied().collect();
        prop_assert_eq!(base, weighted_cpi_milli(&rev_c, &rev_m));
        // Bounded by the extremes of its inputs.
        let lo = *cpis.iter().min().unwrap();
        let hi = *cpis.iter().max().unwrap();
        prop_assert!(base >= lo.saturating_sub(1) && base <= hi);
        // Agrees with the float estimator to within integer rounding.
        let fc: Vec<f64> = cpis.iter().map(|&c| c as f64 / 1000.0).collect();
        let fw: Vec<f64> = members.iter().map(|&m| m as f64).collect();
        let f = weighted_cpi(&fc, &fw) * 1000.0;
        prop_assert!((base as f64 - f).abs() <= 1.0, "milli {} vs float {}", base, f);
    }

    /// The collector tracks interval boundaries exactly: the running
    /// instruction count is the exact sum of recorded lengths, `finish`
    /// resets it to zero, and a finished interval leaks nothing into the
    /// next one (the next vector equals a fresh collector's).
    #[test]
    fn bbv_collector_interval_boundaries_are_exact(
        first in prop::collection::vec((0u64..256, 1u64..100), 1..10),
        second in prop::collection::vec((0u64..256, 1u64..100), 1..10),
    ) {
        let mut c = BbvCollector::new();
        let mut total = 0;
        for &(pc, len) in &first {
            c.record(0x8000_0000 + pc * 2, len);
            total += len;
        }
        prop_assert_eq!(c.instructions(), total, "exact instruction accounting");
        let v1 = c.finish();
        prop_assert_eq!(c.instructions(), 0, "finish resets the boundary");
        prop_assert_eq!(v1.len(), checkpoint::PROJECTED_DIM);
        // Second interval through the same collector vs. a fresh one.
        for &(pc, len) in &second {
            c.record(0x9000_0000 + pc * 2, len);
        }
        let v2 = c.finish();
        let mut fresh = BbvCollector::new();
        for &(pc, len) in &second {
            fresh.record(0x9000_0000 + pc * 2, len);
        }
        prop_assert_eq!(v2, fresh.finish(), "no leakage across a boundary");
    }
}
