//! Basic-block-vector profiling and SimPoint-style clustering
//! (paper §III-D3: "we further adopt SimPoint to sample the instruction
//! fragments... it is easy to compute the Basic Block Vector in NEMU").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Dimensionality after random projection (SimPoint uses 15; we keep a
/// little more headroom).
pub const PROJECTED_DIM: usize = 32;

/// Fixed seed of the random-projection matrix. Pinned so that the
/// projection — and therefore every BBV, cluster, and checkpoint
/// selection derived from it — is reproducible across runs, platforms,
/// and worker counts. Changing this constant is a compatibility break
/// for stored BBVs.
pub const PROJECTION_SEED: u64 = 0x5351_u64 << 32 | 0x1D07;

/// Collects basic-block execution counts for one interval.
///
/// Counts live in a `BTreeMap`, not a `HashMap`: `finish` accumulates
/// `f64` contributions per block, and float addition is not
/// associative — a hash-order iteration would make the projected
/// vector's low bits depend on insertion history and `RandomState`,
/// breaking bit-for-bit reproducibility of checkpoint selection.
#[derive(Debug, Clone, Default)]
pub struct BbvCollector {
    counts: BTreeMap<u64, u64>,
    instructions: u64,
}

impl BbvCollector {
    /// Create an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the execution of a basic block entered at `pc` containing
    /// `len` instructions.
    pub fn record(&mut self, pc: u64, len: u64) {
        *self.counts.entry(pc).or_insert(0) += len;
        self.instructions += len;
    }

    /// Instructions recorded so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Finish the interval: produce the normalized, randomly projected
    /// vector and reset the collector.
    ///
    /// An empty interval (no instructions recorded) yields the zero
    /// vector: without the guard a 0/0 normalization would poison the
    /// vector with NaNs, and every distance k-means later computes
    /// against it would be NaN too.
    pub fn finish(&mut self) -> Vec<f64> {
        let mut v = vec![0.0f64; PROJECTED_DIM];
        if self.instructions == 0 {
            self.counts.clear();
            return v;
        }
        let total = self.instructions as f64;
        for (&pc, &cnt) in &self.counts {
            // Deterministic random projection: each block's ±weight row
            // comes from an explicitly seeded generator, so the same
            // block projects identically in every run (PROJECTION_SEED).
            let mut rng =
                StdRng::seed_from_u64(PROJECTION_SEED ^ pc.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            for slot in v.iter_mut() {
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                *slot += sign * (cnt as f64) / total;
            }
        }
        self.counts.clear();
        self.instructions = 0;
        v
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// One selected simulation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Index of the representative interval.
    pub interval: usize,
    /// Intervals in this point's cluster (the exact integer numerator of
    /// `weight` — report aggregation uses this so deterministic bodies
    /// stay float-free).
    pub members: u64,
    /// Fraction of all intervals in its cluster.
    pub weight: f64,
}

/// Cluster interval BBVs with k-means++ and pick one representative per
/// cluster (the interval closest to the centroid), weighted by cluster
/// population.
///
/// # Panics
///
/// Panics when `vectors` is empty or `k` is zero.
pub fn simpoints(vectors: &[Vec<f64>], k: usize, seed: u64) -> Vec<SimPoint> {
    assert!(!vectors.is_empty(), "need at least one interval");
    assert!(k > 0, "need at least one cluster");
    let k = k.min(vectors.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ initialization.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(vectors[rng.gen_range(0..vectors.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = vectors
            .iter()
            .map(|v| {
                centroids
                    .iter()
                    .map(|c| dist2(v, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All points identical to some centroid: duplicate one.
            centroids.push(vectors[rng.gen_range(0..vectors.len())].clone());
            continue;
        }
        let mut pick = rng.gen::<f64>() * total;
        let mut chosen = 0;
        for (i, d) in d2.iter().enumerate() {
            pick -= d;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(vectors[chosen].clone());
    }

    // Lloyd iterations.
    let mut assignment = vec![0usize; vectors.len()];
    for _ in 0..50 {
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let best = (0..centroids.len())
                .min_by(|&a, &b| {
                    dist2(v, &centroids[a])
                        .partial_cmp(&dist2(v, &centroids[b]))
                        .expect("finite distances")
                })
                .expect("k > 0");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centroids.
        let dim = vectors[0].len();
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut ns = vec![0usize; centroids.len()];
        for (i, v) in vectors.iter().enumerate() {
            let c = assignment[i];
            ns[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(v) {
                *s += x;
            }
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if ns[c] > 0 {
                centroids[c] = sum.into_iter().map(|x| x / ns[c] as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }

    // Representative per non-empty cluster.
    let mut points = Vec::new();
    for c in 0..centroids.len() {
        let members: Vec<usize> = (0..vectors.len())
            .filter(|&i| assignment[i] == c)
            .collect();
        if members.is_empty() {
            continue;
        }
        let rep = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                dist2(&vectors[a], &centroids[c])
                    .partial_cmp(&dist2(&vectors[b], &centroids[c]))
                    .expect("finite")
            })
            .expect("non-empty");
        points.push(SimPoint {
            interval: rep,
            members: members.len() as u64,
            weight: members.len() as f64 / vectors.len() as f64,
        });
    }
    points.sort_by_key(|p| p.interval);
    points
}

/// Weighted-CPI estimation: combine per-simpoint measured CPIs by weight
/// (the paper's "weighted cycles per instruction for performance
/// validation").
///
/// # Panics
///
/// Panics if the inputs are empty or lengths differ.
pub fn weighted_cpi(cpis: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(cpis.len(), weights.len());
    assert!(!cpis.is_empty());
    let wsum: f64 = weights.iter().sum();
    cpis.iter().zip(weights).map(|(c, w)| c * w).sum::<f64>() / wsum
}

/// Pure-integer weighted-CPI estimation: combine per-simpoint CPI×1000
/// values weighted by exact cluster populations
/// ([`SimPoint::members`]). Campaign reports aggregate with this form so
/// the deterministic body never carries a float — the result is
/// permutation-invariant because integer addition is associative.
///
/// # Panics
///
/// Panics if the inputs are empty, lengths differ, or every weight is
/// zero.
pub fn weighted_cpi_milli(cpi_milli: &[u64], members: &[u64]) -> u64 {
    assert_eq!(cpi_milli.len(), members.len());
    assert!(!cpi_milli.is_empty());
    let wsum: u64 = members.iter().sum();
    assert!(wsum > 0, "at least one cluster must have members");
    let num: u64 = cpi_milli
        .iter()
        .zip(members)
        .map(|(c, m)| c.saturating_mul(*m))
        .sum();
    num / wsum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbv_normalization_and_reset() {
        let mut b = BbvCollector::new();
        b.record(0x1000, 10);
        b.record(0x2000, 30);
        assert_eq!(b.instructions(), 40);
        let v = b.finish();
        assert_eq!(v.len(), PROJECTED_DIM);
        let norm: f64 = v.iter().map(|x| x.abs()).sum();
        assert!(norm > 0.0);
        assert_eq!(b.instructions(), 0, "collector resets");
        // Scaling counts by a constant yields the same normalized vector.
        let mut b2 = BbvCollector::new();
        b2.record(0x1000, 100);
        b2.record(0x2000, 300);
        let v2 = b2.finish();
        for (a, b) in v.iter().zip(&v2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_interval_yields_the_zero_vector() {
        let mut b = BbvCollector::new();
        let v = b.finish();
        assert_eq!(v, vec![0.0; PROJECTED_DIM], "no NaNs, no garbage");
        // An empty vector must be harmless downstream: clustering a mix
        // of empty and non-empty intervals stays NaN-free.
        let mut b2 = BbvCollector::new();
        b2.record(0x1000, 10);
        let pts = simpoints(&[v, b2.finish()], 2, 0);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p.weight.is_finite());
        }
    }

    #[test]
    fn projection_is_pinned() {
        // The projection matrix is part of the stored-BBV format: this
        // vector must never change across releases, platforms, or runs
        // (see PROJECTION_SEED). Counts 1 + 3 of 4 give exact binary
        // fractions, so equality is exact.
        let mut b = BbvCollector::new();
        b.record(0x1000, 1);
        b.record(0x2000, 3);
        let v = b.finish();
        let mut b2 = BbvCollector::new();
        b2.record(0x1000, 1);
        b2.record(0x2000, 3);
        assert_eq!(v, b2.finish(), "same interval, same vector");
        for x in &v {
            assert!(
                [1.0, 0.5, -0.5, -1.0].contains(x),
                "slots are exact ±0.25 ± 0.75 sums: {v:?}"
            );
        }
        let pinned: [f64; PROJECTED_DIM] = PINNED_PROJECTION;
        assert_eq!(v.as_slice(), pinned.as_slice(), "got {v:?}");
    }

    /// The frozen projection of `{0x1000: 1, 0x2000: 3}` under
    /// `PROJECTION_SEED` (see `projection_is_pinned`).
    const PINNED_PROJECTION: [f64; PROJECTED_DIM] = [
        -0.5, 0.5, -0.5, -0.5, 0.5, -0.5, -0.5, -1.0, 1.0, -0.5, 0.5, 1.0, -1.0, -0.5, 0.5, 1.0,
        1.0, 1.0, -0.5, -0.5, 0.5, 0.5, -0.5, 1.0, -0.5, 1.0, -0.5, 0.5, 1.0, 1.0, 0.5, -1.0,
    ];

    fn synthetic_phases() -> Vec<Vec<f64>> {
        // Three clearly distinct program phases, 10 intervals each.
        let mut vecs = Vec::new();
        for phase in 0..3u64 {
            for rep in 0..10u64 {
                let mut b = BbvCollector::new();
                b.record(0x1000 + phase * 0x100, 100 + rep % 2);
                b.record(0x5000 + phase * 0x40, 10);
                vecs.push(b.finish());
            }
        }
        vecs
    }

    #[test]
    fn kmeans_recovers_phases() {
        let vecs = synthetic_phases();
        let pts = simpoints(&vecs, 3, 1);
        assert_eq!(pts.len(), 3);
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to 1");
        // Each representative comes from a distinct phase block.
        let phases: std::collections::HashSet<usize> =
            pts.iter().map(|p| p.interval / 10).collect();
        assert_eq!(phases.len(), 3, "{pts:?}");
        // Roughly equal weights.
        for p in &pts {
            assert!((p.weight - 1.0 / 3.0).abs() < 0.15, "{pts:?}");
        }
    }

    #[test]
    fn k_larger_than_population_is_clamped() {
        let vecs = synthetic_phases();
        let pts = simpoints(&vecs[..2], 10, 0);
        assert!(pts.len() <= 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let vecs = synthetic_phases();
        assert_eq!(simpoints(&vecs, 3, 7), simpoints(&vecs, 3, 7));
    }

    #[test]
    fn weighted_cpi_milli_math() {
        // 3 intervals at CPI 1.000, 1 at CPI 2.000 → 1.250.
        assert_eq!(weighted_cpi_milli(&[1000, 2000], &[3, 1]), 1250);
        // Permutation invariance is exact in integer math.
        assert_eq!(
            weighted_cpi_milli(&[2000, 1000], &[1, 3]),
            weighted_cpi_milli(&[1000, 2000], &[3, 1])
        );
    }

    #[test]
    fn simpoint_members_are_the_weight_numerator() {
        let vecs = synthetic_phases();
        let pts = simpoints(&vecs, 3, 1);
        let total: u64 = pts.iter().map(|p| p.members).sum();
        assert_eq!(total, vecs.len() as u64, "clusters partition intervals");
        for p in &pts {
            assert!(
                (p.weight - p.members as f64 / vecs.len() as f64).abs() < 1e-12,
                "weight must be the members/total ratio: {p:?}"
            );
        }
    }

    #[test]
    fn weighted_cpi_math() {
        let cpi = weighted_cpi(&[1.0, 2.0], &[0.75, 0.25]);
        assert!((cpi - 1.25).abs() < 1e-12);
        // Unnormalized weights are normalized.
        let cpi = weighted_cpi(&[1.0, 2.0], &[3.0, 1.0]);
        assert!((cpi - 1.25).abs() < 1e-12);
    }
}
