//! Checkpoint generation with NEMU (paper §III-D3: "checkpoints can be
//! efficiently generated using NEMU").
//!
//! The generator executes the program on a NEMU hart, collecting a
//! basic-block vector per fixed-length instruction interval and cloning
//! the (copy-on-write) architectural state + memory at every interval
//! boundary. SimPoint clustering then selects the representative
//! intervals, and only their checkpoints are kept.

use crate::format::Checkpoint;
use crate::simpoint::{simpoints, BbvCollector, SimPoint};
use riscv_isa::asm::Program;
use riscv_isa::mem::SparseMemory;
use riscv_isa::state::ArchState;

/// Seed of the k-means++ clustering pass — pinned so interval selection
/// is deterministic across runs, platforms, and profiling personalities.
pub const CLUSTER_SEED: u64 = 0xdead_beef;

/// Result of profiling + checkpointing one program.
#[derive(Debug)]
pub struct CheckpointSet {
    /// Selected checkpoints (one per SimPoint cluster), interval order.
    pub checkpoints: Vec<Checkpoint>,
    /// The SimPoint selection.
    pub points: Vec<SimPoint>,
    /// Total dynamic instructions profiled.
    pub total_instructions: u64,
    /// Interval length used.
    pub interval_len: u64,
    /// Total intervals profiled (the weight denominator: a final partial
    /// interval counts).
    pub total_intervals: u64,
}

/// Generate SimPoint checkpoints for `program` using the default NEMU
/// uop-cache tier as the profiling engine.
///
/// `interval_len` is the interval size in instructions (the paper uses
/// tens of millions for SPEC; tests use thousands), `k` the maximum
/// number of clusters.
///
/// # Panics
///
/// Panics if the program does not halt within `max_insts`.
pub fn generate_checkpoints(
    program: &Program,
    interval_len: u64,
    k: usize,
    max_insts: u64,
) -> CheckpointSet {
    generate_checkpoints_with_ref("nemu", program, interval_len, k, max_insts)
}

/// [`generate_checkpoints`] with an explicit profiling personality from
/// [`nemu::registry`] (the campaign's `--ref` flag ends up here: the
/// superblock `nemu-trace` tier is the fast choice for long workloads).
/// All personalities execute the identical architectural stream — the
/// conformance tier pins that — so the BBVs, the clustering, and the
/// selected checkpoints do not depend on this choice.
///
/// # Panics
///
/// Panics on an unknown personality name or a program that does not
/// halt within `max_insts`.
pub fn generate_checkpoints_with_ref(
    ref_name: &str,
    program: &Program,
    interval_len: u64,
    k: usize,
    max_insts: u64,
) -> CheckpointSet {
    let mut interp = nemu::registry::boot(ref_name, program)
        .unwrap_or_else(|| panic!("unknown profiling personality `{ref_name}`"));

    let mut bbv = BbvCollector::new();
    let mut vectors: Vec<Vec<f64>> = Vec::new();
    // Boundary snapshots: (state, memory, instret) per interval start.
    let mut boundaries: Vec<(ArchState, SparseMemory, u64)> =
        vec![(interp.hart().state.clone(), interp.mem_mut().clone(), 0)];

    let mut block_pc = interp.hart().state.pc;
    let mut block_len = 0u64;
    let mut executed = 0u64;
    while !interp.hart().is_halted() {
        assert!(executed < max_insts, "program did not halt while profiling");
        let info = interp.step_one();
        executed += 1;
        block_len += 1;
        let block_ended = info.inst.ends_block() || info.trap.is_some();
        if block_ended {
            bbv.record(block_pc, block_len);
            block_pc = interp.hart().state.pc;
            block_len = 0;
        }
        if executed % interval_len == 0 {
            if block_len > 0 {
                bbv.record(block_pc, block_len);
                block_len = 0;
                block_pc = interp.hart().state.pc;
            }
            vectors.push(bbv.finish());
            boundaries.push((interp.hart().state.clone(), interp.mem_mut().clone(), executed));
        }
    }
    // Final partial interval.
    if block_len > 0 {
        bbv.record(block_pc, block_len);
    }
    if bbv.instructions() > 0 {
        vectors.push(bbv.finish());
    }
    assert!(!vectors.is_empty(), "program too short for one interval");

    let total_intervals = vectors.len() as u64;
    let points = simpoints(&vectors, k, CLUSTER_SEED);
    let checkpoints = points
        .iter()
        .map(|p| {
            let (state, memory, instret) = boundaries[p.interval].clone();
            Checkpoint {
                state,
                memory,
                instret,
                weight: p.weight,
                members: p.members,
                total_intervals,
                interval: p.interval,
            }
        })
        .collect();
    CheckpointSet {
        checkpoints,
        points,
        total_instructions: executed,
        interval_len,
        total_intervals,
    }
}

/// Re-derive the single checkpoint at `interval` without clustering:
/// execute `interval × interval_len` instructions and snapshot. This is
/// the recipe a triage bundle stores — `(workload, personality,
/// interval_len, interval)` rebuilds the exact state a sample job ran
/// from, keeping bundles free of memory images.
///
/// # Panics
///
/// Panics on an unknown personality name or if the program halts before
/// reaching the boundary.
pub fn checkpoint_at_interval(
    ref_name: &str,
    program: &Program,
    interval_len: u64,
    interval: u64,
) -> Checkpoint {
    let mut interp = nemu::registry::boot(ref_name, program)
        .unwrap_or_else(|| panic!("unknown profiling personality `{ref_name}`"));
    let target = interval * interval_len;
    let mut executed = 0u64;
    while executed < target {
        assert!(
            !interp.hart().is_halted(),
            "program halted at {executed} instructions, before interval {interval}"
        );
        interp.step_one();
        executed += 1;
    }
    Checkpoint {
        state: interp.hart().state.clone(),
        memory: interp.mem_mut().clone(),
        instret: executed,
        weight: 0.0,
        members: 0,
        total_intervals: 0,
        interval: interval as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemu::hart::{self, Hart};
    use riscv_isa::asm::{reg::*, Asm};

    /// A two-phase program: a multiply-heavy phase then a memory phase.
    fn two_phase_program() -> Program {
        let mut a = Asm::new(0x8000_0000);
        // Phase 1: arithmetic.
        a.li(S0, 0);
        a.li(S1, 4000);
        a.li(A0, 1);
        let p1 = a.bound_label();
        a.mul(A0, A0, S1);
        a.xor(A0, A0, S0);
        a.addi(S0, S0, 1);
        a.bne(S0, S1, p1);
        // Phase 2: memory streaming.
        a.li(S0, 0);
        a.li(S2, 0x8002_0000);
        let p2 = a.bound_label();
        a.slli(T0, S0, 3);
        a.add(T0, T0, S2);
        a.sd(S0, 0, T0);
        a.ld(T1, 0, T0);
        a.add(A0, A0, T1);
        a.addi(S0, S0, 1);
        a.bne(S0, S1, p2);
        a.andi(A0, A0, 0xffff);
        a.ebreak();
        a.assemble()
    }

    #[test]
    fn generates_weighted_checkpoints() {
        let p = two_phase_program();
        let set = generate_checkpoints(&p, 2_000, 4, 10_000_000);
        assert!(set.total_instructions > 20_000);
        assert!(!set.checkpoints.is_empty());
        assert!(set.checkpoints.len() <= 4);
        let wsum: f64 = set.points.iter().map(|p| p.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        // Checkpoints sit at interval boundaries.
        for c in &set.checkpoints {
            assert_eq!(c.instret % 2_000, 0);
        }
    }

    #[test]
    fn checkpoints_resume_exactly() {
        // Resuming NEMU from each checkpoint and running to the end must
        // give the same exit code as an uninterrupted run.
        let p = two_phase_program();
        let mut full = nemu::Nemu::new(&p);
        use nemu::Interpreter;
        let expected = full.run(10_000_000).exit_code.expect("halts");

        let set = generate_checkpoints(&p, 3_000, 3, 10_000_000);
        for c in &set.checkpoints {
            let mut h = Hart::new(c.state.pc, 0);
            h.state = c.state.clone();
            let mut mem = c.memory.clone();
            for _ in 0..10_000_000u64 {
                if h.is_halted() {
                    break;
                }
                hart::step(&mut h, &mut mem);
            }
            assert_eq!(h.halted, Some(expected), "checkpoint {:?}", c);
        }
    }

    #[test]
    fn phases_map_to_distinct_simpoints() {
        let p = two_phase_program();
        let set = generate_checkpoints(&p, 2_000, 2, 10_000_000);
        // Phase 1 executes ~16k instructions (4000 iterations x 4 insts),
        // i.e. intervals 0..8; phase 2 fills the rest. With k=2 the two
        // representatives must fall on opposite sides of that boundary.
        assert_eq!(set.points.len(), 2, "{:?}", set.points);
        let boundary = 16_000 / set.interval_len as usize;
        let (a, b) = (set.points[0].interval, set.points[1].interval);
        assert!(
            (a < boundary) != (b < boundary),
            "points {:?} boundary {boundary}",
            set.points
        );
    }

    #[test]
    fn profiling_personality_does_not_change_the_selection() {
        // All registry personalities execute the identical architectural
        // stream, so the BBVs — and therefore the clustering and the
        // selected boundary states — must be identical too.
        let p = two_phase_program();
        let base = generate_checkpoints_with_ref("nemu", &p, 2_000, 3, 10_000_000);
        for name in ["nemu-trace", "spike-like"] {
            let other = generate_checkpoints_with_ref(name, &p, 2_000, 3, 10_000_000);
            assert_eq!(other.total_instructions, base.total_instructions, "{name}");
            assert_eq!(other.total_intervals, base.total_intervals, "{name}");
            assert_eq!(other.points, base.points, "{name}");
            for (a, b) in other.checkpoints.iter().zip(&base.checkpoints) {
                assert_eq!(a.state, b.state, "{name}");
                assert_eq!(a.instret, b.instret, "{name}");
            }
        }
    }

    #[test]
    fn checkpoint_at_interval_matches_the_profiled_boundary() {
        let p = two_phase_program();
        let set = generate_checkpoints(&p, 2_000, 4, 10_000_000);
        for c in &set.checkpoints {
            let again = checkpoint_at_interval("nemu", &p, 2_000, c.interval as u64);
            assert_eq!(again.state, c.state, "interval {}", c.interval);
            assert_eq!(again.instret, c.instret);
        }
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn non_halting_program_is_detected() {
        let mut a = Asm::new(0x8000_0000);
        let l = a.bound_label();
        a.j(l);
        let p = a.assemble();
        let _ = generate_checkpoints(&p, 1_000, 2, 50_000);
    }
}
