//! Checkpoint generation with NEMU (paper §III-D3: "checkpoints can be
//! efficiently generated using NEMU").
//!
//! The generator executes the program on a NEMU hart, collecting a
//! basic-block vector per fixed-length instruction interval and cloning
//! the (copy-on-write) architectural state + memory at every interval
//! boundary. SimPoint clustering then selects the representative
//! intervals, and only their checkpoints are kept.

use crate::format::Checkpoint;
use crate::simpoint::{simpoints, BbvCollector, SimPoint};
use nemu::hart::{self, Hart};
use riscv_isa::asm::Program;
use riscv_isa::mem::SparseMemory;

/// Result of profiling + checkpointing one program.
#[derive(Debug)]
pub struct CheckpointSet {
    /// Selected checkpoints (one per SimPoint cluster), interval order.
    pub checkpoints: Vec<Checkpoint>,
    /// The SimPoint selection.
    pub points: Vec<SimPoint>,
    /// Total dynamic instructions profiled.
    pub total_instructions: u64,
    /// Interval length used.
    pub interval_len: u64,
}

/// Generate SimPoint checkpoints for `program`.
///
/// `interval_len` is the interval size in instructions (the paper uses
/// tens of millions for SPEC; tests use thousands), `k` the maximum
/// number of clusters.
///
/// # Panics
///
/// Panics if the program does not halt within `max_insts`.
pub fn generate_checkpoints(
    program: &Program,
    interval_len: u64,
    k: usize,
    max_insts: u64,
) -> CheckpointSet {
    let mut mem = SparseMemory::new();
    program.load_into(&mut mem);
    let mut h = Hart::new(program.entry, 0);

    let mut bbv = BbvCollector::new();
    let mut vectors: Vec<Vec<f64>> = Vec::new();
    // Boundary snapshots: (state, memory, instret) per interval start.
    let mut boundaries: Vec<(riscv_isa::state::ArchState, SparseMemory, u64)> =
        vec![(h.state.clone(), mem.clone(), 0)];

    let mut block_pc = h.state.pc;
    let mut block_len = 0u64;
    let mut executed = 0u64;
    while !h.is_halted() {
        assert!(executed < max_insts, "program did not halt while profiling");
        let info = hart::step(&mut h, &mut mem);
        executed += 1;
        block_len += 1;
        let block_ended = info.inst.ends_block() || info.trap.is_some();
        if block_ended {
            bbv.record(block_pc, block_len);
            block_pc = h.state.pc;
            block_len = 0;
        }
        if executed % interval_len == 0 {
            if block_len > 0 {
                bbv.record(block_pc, block_len);
                block_len = 0;
                block_pc = h.state.pc;
            }
            vectors.push(bbv.finish());
            boundaries.push((h.state.clone(), mem.clone(), executed));
        }
    }
    // Final partial interval.
    if block_len > 0 {
        bbv.record(block_pc, block_len);
    }
    if bbv.instructions() > 0 {
        vectors.push(bbv.finish());
    }
    assert!(!vectors.is_empty(), "program too short for one interval");

    let points = simpoints(&vectors, k, 0xdeadbeef);
    let checkpoints = points
        .iter()
        .map(|p| {
            let (state, memory, instret) = boundaries[p.interval].clone();
            Checkpoint {
                state,
                memory,
                instret,
                weight: p.weight,
                interval: p.interval,
            }
        })
        .collect();
    CheckpointSet {
        checkpoints,
        points,
        total_instructions: executed,
        interval_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm::{reg::*, Asm};

    /// A two-phase program: a multiply-heavy phase then a memory phase.
    fn two_phase_program() -> Program {
        let mut a = Asm::new(0x8000_0000);
        // Phase 1: arithmetic.
        a.li(S0, 0);
        a.li(S1, 4000);
        a.li(A0, 1);
        let p1 = a.bound_label();
        a.mul(A0, A0, S1);
        a.xor(A0, A0, S0);
        a.addi(S0, S0, 1);
        a.bne(S0, S1, p1);
        // Phase 2: memory streaming.
        a.li(S0, 0);
        a.li(S2, 0x8002_0000);
        let p2 = a.bound_label();
        a.slli(T0, S0, 3);
        a.add(T0, T0, S2);
        a.sd(S0, 0, T0);
        a.ld(T1, 0, T0);
        a.add(A0, A0, T1);
        a.addi(S0, S0, 1);
        a.bne(S0, S1, p2);
        a.andi(A0, A0, 0xffff);
        a.ebreak();
        a.assemble()
    }

    #[test]
    fn generates_weighted_checkpoints() {
        let p = two_phase_program();
        let set = generate_checkpoints(&p, 2_000, 4, 10_000_000);
        assert!(set.total_instructions > 20_000);
        assert!(!set.checkpoints.is_empty());
        assert!(set.checkpoints.len() <= 4);
        let wsum: f64 = set.points.iter().map(|p| p.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-9);
        // Checkpoints sit at interval boundaries.
        for c in &set.checkpoints {
            assert_eq!(c.instret % 2_000, 0);
        }
    }

    #[test]
    fn checkpoints_resume_exactly() {
        // Resuming NEMU from each checkpoint and running to the end must
        // give the same exit code as an uninterrupted run.
        let p = two_phase_program();
        let mut full = nemu::Nemu::new(&p);
        use nemu::Interpreter;
        let expected = full.run(10_000_000).exit_code.expect("halts");

        let set = generate_checkpoints(&p, 3_000, 3, 10_000_000);
        for c in &set.checkpoints {
            let mut h = Hart::new(c.state.pc, 0);
            h.state = c.state.clone();
            let mut mem = c.memory.clone();
            for _ in 0..10_000_000u64 {
                if h.is_halted() {
                    break;
                }
                hart::step(&mut h, &mut mem);
            }
            assert_eq!(h.halted, Some(expected), "checkpoint {:?}", c);
        }
    }

    #[test]
    fn phases_map_to_distinct_simpoints() {
        let p = two_phase_program();
        let set = generate_checkpoints(&p, 2_000, 2, 10_000_000);
        // Phase 1 executes ~16k instructions (4000 iterations x 4 insts),
        // i.e. intervals 0..8; phase 2 fills the rest. With k=2 the two
        // representatives must fall on opposite sides of that boundary.
        assert_eq!(set.points.len(), 2, "{:?}", set.points);
        let boundary = 16_000 / set.interval_len as usize;
        let (a, b) = (set.points[0].interval, set.points[1].interval);
        assert!(
            (a < boundary) != (b < boundary),
            "points {:?} boundary {boundary}",
            set.points
        );
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn non_halting_program_is_detected() {
        let mut a = Asm::new(0x8000_0000);
        let l = a.bound_label();
        a.j(l);
        let p = a.assemble();
        let _ = generate_checkpoints(&p, 1_000, 2, 50_000);
    }
}
