//! The RISC-V architectural checkpoint format (paper §III-D3, Fig. 9).
//!
//! A checkpoint is the full architectural state plus the memory image at
//! an instruction boundary. Like the paper's format it is defined purely
//! at the ISA level — restoration needs "only basic RV64 privilege
//! instructions" and no external debug mode: [`Checkpoint::restore_loader`]
//! emits a self-contained boot program that rebuilds every register and
//! CSR with `li`/`csrw`/`fld` sequences and jumps to the checkpointed pc.

use riscv_isa::asm::{reg, Asm, Program};
use riscv_isa::csr::addr;
use riscv_isa::mem::SparseMemory;
use riscv_isa::state::ArchState;
use serde::{Deserialize, Serialize};

/// Load address for the restore loader (must not collide with the
/// checkpointed image's live code/data).
pub const LOADER_BASE: u64 = 0x8F00_0000;

/// One architectural checkpoint.
#[derive(Clone)]
pub struct Checkpoint {
    /// Architectural state at the boundary.
    pub state: ArchState,
    /// Memory image (copy-on-write shared with the generator).
    pub memory: SparseMemory,
    /// Dynamic instruction count at the boundary.
    pub instret: u64,
    /// SimPoint weight (fraction of intervals this checkpoint stands for).
    pub weight: f64,
    /// Intervals in this checkpoint's cluster — the exact integer
    /// numerator of `weight` (denominator: `total_intervals`). Report
    /// aggregation uses the rational form so deterministic bodies stay
    /// float-free.
    pub members: u64,
    /// Total profiled intervals of the run this checkpoint came from.
    pub total_intervals: u64,
    /// Index of the interval this checkpoint represents.
    pub interval: usize,
}

impl std::fmt::Debug for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpoint")
            .field("pc", &format_args!("{:#x}", self.state.pc))
            .field("instret", &self.instret)
            .field("weight", &self.weight)
            .field("interval", &self.interval)
            .finish()
    }
}

/// Serializable header (memory image stored separately as a binary blob).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Header {
    state: ArchState,
    instret: u64,
    weight: f64,
    members: u64,
    total_intervals: u64,
    interval: usize,
}

impl Checkpoint {
    /// Serialize to a self-contained byte blob.
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = serde_json::to_vec(&Header {
            state: self.state.clone(),
            instret: self.instret,
            weight: self.weight,
            members: self.members,
            total_intervals: self.total_intervals,
            interval: self.interval,
        })
        .expect("header serializes");
        let mem = self.memory.serialize_full();
        let mut out = Vec::with_capacity(16 + header.len() + mem.len());
        out.extend_from_slice(&(header.len() as u64).to_le_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(&mem);
        out
    }

    /// Deserialize from [`Checkpoint::to_bytes`] output.
    ///
    /// # Panics
    ///
    /// Panics on a malformed blob; [`Checkpoint::try_from_bytes`] is the
    /// non-panicking form (on-disk blobs can be truncated or stale).
    pub fn from_bytes(data: &[u8]) -> Self {
        Self::try_from_bytes(data).expect("valid checkpoint blob")
    }

    /// Deserialize from [`Checkpoint::to_bytes`] output, rejecting
    /// malformed blobs instead of panicking — the checkpoint farm reads
    /// blobs back from a reuse directory, where truncated writes and
    /// format drift are ordinary conditions, not bugs.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem found.
    pub fn try_from_bytes(data: &[u8]) -> Result<Self, String> {
        if data.len() < 8 {
            return Err(format!("blob too short for length prefix: {} bytes", data.len()));
        }
        let hlen = u64::from_le_bytes(data[..8].try_into().expect("8 bytes")) as usize;
        let body = &data[8..];
        if hlen > body.len() {
            return Err(format!(
                "header length {hlen} exceeds remaining {} bytes",
                body.len()
            ));
        }
        let header: Header = serde_json::from_slice(&body[..hlen])
            .map_err(|e| format!("header does not parse: {e}"))?;
        let memory = SparseMemory::deserialize_full(&body[hlen..]);
        Ok(Checkpoint {
            state: header.state,
            memory,
            instret: header.instret,
            weight: header.weight,
            members: header.members,
            total_intervals: header.total_intervals,
            interval: header.interval,
        })
    }

    /// Content hash of the serialized blob (FNV-1a 64, hex) — the
    /// on-disk file name under a checkpoint directory, so re-profiling
    /// the same workload reuses identical blobs instead of rewriting
    /// them.
    pub fn content_hash(&self) -> String {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.to_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        format!("{h:016x}")
    }

    /// Emit the Fig. 9-style restore loader: a bare-metal program (loaded
    /// beside the memory image) that reconstructs the architectural state
    /// with base-ISA instructions only, then jumps to the checkpointed pc.
    ///
    /// The loader restores, in order: machine CSRs, floating-point
    /// registers (via a staging area), integer registers, and finally
    /// transfers control with an `mret` whose `mepc` is the target pc —
    /// no debug-mode features required.
    pub fn restore_loader(&self) -> Program {
        let s = &self.state;
        let mut a = Asm::new(LOADER_BASE);
        // CSRs first (while registers are free for staging).
        let csrs: [(u16, u64); 10] = [
            (addr::MSTATUS, s.csr.mstatus),
            (addr::MEDELEG, s.csr.medeleg),
            (addr::MIDELEG, s.csr.mideleg),
            (addr::MIE, s.csr.mie),
            (addr::MTVEC, s.csr.mtvec),
            (addr::MSCRATCH, s.csr.mscratch),
            (addr::STVEC, s.csr.stvec),
            (addr::SSCRATCH, s.csr.sscratch),
            (addr::SATP, s.csr.satp),
            (addr::FCSR, s.csr.fcsr),
        ];
        for (csr, v) in csrs {
            a.li(reg::T0, v as i64);
            a.csrrw(reg::ZERO, csr, reg::T0);
        }
        // Floating-point registers via a staging table in the loader.
        let fstage = a.label();
        a.la(reg::T1, fstage);
        for i in 0..32u8 {
            a.fld(i, (i as i64) * 8, reg::T1);
        }
        // mepc = target pc; privilege restored through mstatus.MPP
        // (already written above; we re-write MPP to the target level).
        a.li(reg::T0, s.pc as i64);
        a.csrrw(reg::ZERO, addr::MEPC, reg::T0);
        let mpp = (s.csr.privilege as u64) << 11;
        a.li(reg::T0, (s.csr.mstatus & !(0b11 << 11) | mpp) as i64);
        a.csrrw(reg::ZERO, addr::MSTATUS, reg::T0);
        // Integer registers last (x1..x31), then mret.
        for i in 1..32u8 {
            a.li(i, s.gpr[i as usize] as i64);
        }
        a.mret();
        a.align(3);
        a.bind(fstage);
        for i in 0..32 {
            a.data_u64(s.fpr[i]);
        }
        a.assemble()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nemu::hart::{self, Hart};
    use riscv_isa::mem::PhysMem;

    fn sample_checkpoint() -> Checkpoint {
        let mut state = ArchState::new(0x8000_1234, 0);
        for i in 1..32 {
            state.gpr[i] = (i as u64) * 0x1111;
            state.fpr[i] = f64::from_bits((i as u64) << 52 | 0x3ff0_0000_0000_0000).to_bits();
        }
        state.csr.mscratch = 0xdead_beef;
        state.csr.mtvec = 0x8000_4000;
        state.csr.fcsr = 0x21;
        let mut memory = SparseMemory::new();
        memory.write_uint(0x8000_1234, 4, 0x0010_0073); // ebreak at target pc
        memory.write_uint(0x8002_0000, 8, 42);
        Checkpoint {
            state,
            memory,
            instret: 1_000_000,
            weight: 0.25,
            members: 2,
            total_intervals: 8,
            interval: 7,
        }
    }

    #[test]
    fn byte_roundtrip() {
        let c = sample_checkpoint();
        let blob = c.to_bytes();
        let mut back = Checkpoint::from_bytes(&blob);
        assert_eq!(back.state, c.state);
        assert_eq!(back.instret, 1_000_000);
        assert_eq!(back.weight, 0.25);
        assert_eq!(back.members, 2);
        assert_eq!(back.total_intervals, 8);
        assert_eq!(back.interval, 7);
        assert_eq!(back.memory.read_uint(0x8002_0000, 8), 42);
    }

    #[test]
    fn malformed_blobs_are_rejected_not_panics() {
        let c = sample_checkpoint();
        let blob = c.to_bytes();
        // Too short for the length prefix.
        assert!(Checkpoint::try_from_bytes(&blob[..4]).is_err());
        // Header length pointing past the end.
        let mut lying = blob.clone();
        lying[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Checkpoint::try_from_bytes(&lying).is_err());
        // Corrupted header JSON.
        let mut garbled = blob.clone();
        garbled[8] = b'!';
        assert!(Checkpoint::try_from_bytes(&garbled).is_err());
        // The untouched blob still round-trips.
        assert!(Checkpoint::try_from_bytes(&blob).is_ok());
    }

    #[test]
    fn content_hash_tracks_content() {
        let c = sample_checkpoint();
        assert_eq!(c.content_hash(), c.content_hash(), "hash is deterministic");
        assert_eq!(c.content_hash().len(), 16);
        let mut other = sample_checkpoint();
        other.state.gpr[5] ^= 1;
        assert_ne!(c.content_hash(), other.content_hash());
    }

    #[test]
    fn restore_loader_reconstructs_state() {
        let c = sample_checkpoint();
        let loader = c.restore_loader();
        // Boot the loader on a fresh NEMU hart over the checkpoint image.
        let mut mem = c.memory.clone();
        loader.load_into(&mut mem);
        let mut hart = Hart::new(loader.entry, 0);
        // Run the loader until it lands on the checkpointed pc.
        for _ in 0..100_000 {
            if hart.state.pc == c.state.pc || hart.is_halted() {
                break;
            }
            hart::step(&mut hart, &mut mem);
        }
        assert_eq!(hart.state.pc, c.state.pc, "loader must jump to the pc");
        // All architectural registers restored.
        assert_eq!(hart.state.gpr, c.state.gpr);
        assert_eq!(hart.state.fpr, c.state.fpr);
        assert_eq!(hart.state.csr.mscratch, 0xdead_beef);
        assert_eq!(hart.state.csr.mtvec, 0x8000_4000);
        assert_eq!(hart.state.csr.fcsr, 0x21);
        assert_eq!(hart.state.csr.privilege, c.state.csr.privilege);
        // Memory image intact.
        assert_eq!(mem.read_uint(0x8002_0000, 8), 42);
    }

    #[test]
    fn loader_uses_base_isa_only() {
        let c = sample_checkpoint();
        let loader = c.restore_loader();
        // Decode every instruction: no compressed forms, no debug-mode
        // constructs; everything must decode as a known base/priv op.
        let mut off = 0;
        let mut in_code = true;
        while off + 4 <= loader.bytes.len() && in_code {
            let raw = u32::from_le_bytes(loader.bytes[off..off + 4].try_into().unwrap());
            let d = riscv_isa::decode32(raw);
            if d.op == riscv_isa::Op::Mret {
                in_code = false; // data staging follows
            }
            assert_ne!(
                d.op,
                riscv_isa::Op::Illegal,
                "loader instruction at {off} must decode"
            );
            off += 4;
        }
        assert!(!in_code, "loader ends in mret before the staging table");
    }
}
