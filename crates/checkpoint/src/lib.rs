//! Architectural checkpoints and SimPoint sampling — the MINJIE
//! performance-evaluation workflow of paper §III-D3.
//!
//! - [`format`](mod@format): the ISA-level checkpoint format of Fig. 9, including a
//!   restore loader that uses only basic RV64 privilege instructions (no
//!   external debug mode),
//! - [`simpoint`]: basic-block-vector profiling and k-means++ clustering,
//! - [`generate`]: NEMU-driven checkpoint generation.
//!
//! The intended flow (reproduced end to end by the `perf_eval` example
//! and the Fig. 12 bench): profile a workload with NEMU, cluster its
//! intervals, simulate only the representative checkpoints on the cycle
//! model with warm-up, and report the weighted CPI.

pub mod format;
pub mod generate;
pub mod simpoint;

pub use format::{Checkpoint, LOADER_BASE};
pub use generate::{
    checkpoint_at_interval, generate_checkpoints, generate_checkpoints_with_ref, CheckpointSet,
    CLUSTER_SEED,
};
pub use simpoint::{
    simpoints, weighted_cpi, weighted_cpi_milli, BbvCollector, SimPoint, PROJECTED_DIM,
};
