//! Property tests for the ddmin minimizer (ISSUE satellite): shrinking
//! is monotone and never grows, results are subsets, and — against the
//! real co-simulator with an armed DUT bug — the minimized program
//! reproduces the same `DiffError` class as the original failure.

use campaign::{error_class, minimize};
use minjie::{run_isolated, CoSimEnd};
use proptest::prelude::*;
use workloads::{TortureConfig, TortureProgram};
use xscore::{InjectedBug, XsConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Synthetic oracle: the failure needs every index of a culprit set.
    /// The minimizer must return exactly that set (1-minimality), as a
    /// subset of the input, with monotone non-increasing steps.
    #[test]
    fn minimize_is_monotone_and_exact(
        len in 4usize..80,
        c1 in 0usize..80,
        c2 in 0usize..80,
    ) {
        let c1 = c1 % len;
        let c2 = c2 % len;
        let initial = vec![true; len];
        let out = minimize(&initial, |m| m[c1] && m[c2]);
        // Never grows, each accepted step shrinks or holds.
        for w in out.steps.windows(2) {
            prop_assert!(w[1] <= w[0], "steps grew: {:?}", out.steps);
        }
        // Subset of the input.
        for (i, &k) in out.kept.iter().enumerate() {
            prop_assert!(!k || initial[i]);
        }
        // Exactly the culprit set.
        let expect = if c1 == c2 { 1 } else { 2 };
        prop_assert_eq!(out.kept_count(), expect);
        prop_assert!(out.kept[c1] && out.kept[c2]);
    }

    /// Sparse initial masks: the result is still a subset and the oracle
    /// still accepts the final mask.
    #[test]
    fn minimize_respects_partial_initial_masks(
        bits in prop::collection::vec(any::<bool>(), 8..60),
        culprit in 0usize..60,
    ) {
        let mut initial = bits.clone();
        let culprit = culprit % initial.len();
        initial[culprit] = true; // ensure the failure is representable
        let out = minimize(&initial, |m| m[culprit]);
        for (i, &k) in out.kept.iter().enumerate() {
            prop_assert!(!k || initial[i], "index {} not in the initial mask", i);
        }
        prop_assert_eq!(out.kept_count(), 1);
        prop_assert!(out.kept[culprit]);
        for w in out.steps.windows(2) {
            prop_assert!(w[1] <= w[0]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Against the real CoSim: whenever a seed diverges under the armed
    /// Mul bug, the minimized subset reproduces the same error class and
    /// never keeps more slots than it started with.
    #[test]
    fn minimized_torture_program_reproduces_the_same_error_class(seed in 0u64..500) {
        let tcfg = TortureConfig { body_len: 30, iterations: 4, ..Default::default() };
        let cfg = || {
            XsConfig::preset("small-nh")
                .expect("preset exists")
                .with_injected_bug(InjectedBug::MulLowBit)
        };
        let t = TortureProgram::generate(seed, &tcfg);
        let full = run_isolated(cfg(), &t.emit(), 2_000_000, None).expect("no panic");
        let CoSimEnd::Bug(bug) = full.end else {
            // This seed drew no Mul: nothing to minimize.
            return Ok(());
        };
        let class = error_class(&bug.error);
        let initial = vec![true; t.len()];
        let out = minimize(&initial, |mask| {
            matches!(
                run_isolated(cfg(), &t.emit_subset(mask), 2_000_000, None),
                Ok(minjie::RunStats { end: CoSimEnd::Bug(b), .. })
                    if error_class(&b.error) == class
            )
        });
        for w in out.steps.windows(2) {
            prop_assert!(w[1] <= w[0], "shrinking grew: {:?}", out.steps);
        }
        prop_assert!(out.kept_count() <= t.len());
        // The final mask reproduces the class (the oracle accepted it).
        let replay = run_isolated(cfg(), &t.emit_subset(&out.kept), 2_000_000, None)
            .expect("no panic");
        match replay.end {
            CoSimEnd::Bug(b) => prop_assert_eq!(error_class(&b.error), class),
            other => {
                return Err(TestCaseError::fail(format!(
                    "minimized mask no longer diverges: {other:?}"
                )))
            }
        }
    }
}
