//! Property tests for the coverage-guided fuzzing layer (ISSUE
//! satellite): mutation is a pure function of `(recipe, mutation_seed)`,
//! every mutant of a valid recipe still assembles to a fully decodable
//! program, and greedy corpus minimization never drops a recipe that
//! uniquely holds a coverage feature.

use campaign::{fresh_recipe, minimize_corpus, mutate_recipe, Recipe};
use campaign::fuzz::mix;
use proptest::prelude::*;
use riscv_isa::{decode16, decode32, Op};
use std::collections::BTreeMap;
use workloads::TortureProgram;

/// Walk a program image as an instruction stream and fail on the first
/// word the decoder rejects. Torture programs are pure code (no data
/// pools), so every halfword boundary must start a valid instruction.
fn assert_decodable(recipe: &Recipe) {
    let t = TortureProgram::generate(recipe.seed, &recipe.cfg);
    if let Some(keep) = &recipe.keep {
        assert_eq!(keep.len(), t.len(), "kept-mask length drifted");
    }
    let p = match &recipe.keep {
        Some(keep) => t.emit_subset(keep),
        None => t.emit(),
    };
    let bytes = &p.bytes;
    let mut i = 0;
    while i < bytes.len() {
        let lo = u16::from_le_bytes([bytes[i], bytes[i + 1]]);
        if lo & 3 == 3 {
            let w = u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
            let d = decode32(w);
            assert_ne!(d.op, Op::Illegal, "illegal 32-bit word {w:#010x} at +{i:#x}");
            i += 4;
        } else {
            let d = decode16(lo);
            assert_ne!(d.op, Op::Illegal, "illegal 16-bit word {lo:#06x} at +{i:#x}");
            i += 2;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `fresh_recipe` and `mutate_recipe` are pure: the same inputs give
    /// the same recipe, and sibling mutation seeds diversify.
    #[test]
    fn mutation_is_deterministic(seed in 0u64..1_000_000, mseed in 0u64..1_000_000) {
        let r = fresh_recipe(seed, "small-nh");
        prop_assert_eq!(&r, &fresh_recipe(seed, "small-nh"));
        let m1 = mutate_recipe(&r, mseed);
        let m2 = mutate_recipe(&r, mseed);
        prop_assert_eq!(&m1, &m2);
        prop_assert_eq!(&m1.config, &r.config, "mutation must not change the preset");
        // The seed-mixing function itself is pure and slot-sensitive.
        prop_assert_eq!(mix(seed, 3, 7), mix(seed, 3, 7));
        prop_assert_ne!(mix(seed, 3, 7), mix(seed, 3, 8));
    }

    /// Every link of a mutation chain yields a decodable program: knob
    /// clamping and mask regeneration keep mutants structurally valid
    /// no matter how far they drift from the fresh recipe.
    #[test]
    fn mutation_chains_stay_decodable(seed in 0u64..100_000) {
        let mut r = fresh_recipe(seed, "small-nh");
        assert_decodable(&r);
        for step in 0..12u64 {
            r = mutate_recipe(&r, mix(seed, step, 0));
            prop_assert!(r.cfg.body_len >= 8 && r.cfg.body_len <= 256);
            prop_assert!(r.cfg.iterations >= 1 && r.cfg.iterations <= 1000);
            assert_decodable(&r);
        }
    }

    /// Corpus minimization is sound: the union of the kept recipes'
    /// features (key -> max bucket) equals the union over the whole
    /// corpus, so no feature coverage is ever lost — in particular a
    /// recipe uniquely holding a key or a unique max bucket survives.
    #[test]
    fn minimize_corpus_preserves_feature_union(
        sets in prop::collection::vec(
            prop::collection::vec((0u8..12, 1u8..6), 0..8),
            0..12,
        ),
    ) {
        let features: Vec<Vec<(String, u8)>> = sets
            .iter()
            .map(|s| s.iter().map(|&(k, b)| (format!("k{k}"), b)).collect())
            .collect();
        let union = |idx: &[usize]| -> BTreeMap<String, u8> {
            let mut m = BTreeMap::new();
            for &i in idx {
                for (k, b) in &features[i] {
                    let e = m.entry(k.clone()).or_insert(0);
                    *e = (*e).max(*b);
                }
            }
            m
        };
        let all: Vec<usize> = (0..features.len()).collect();
        let kept = minimize_corpus(&features);
        // Kept is a sorted subset of valid indices.
        prop_assert!(kept.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(kept.iter().all(|&i| i < features.len()));
        prop_assert_eq!(union(&kept), union(&all));
    }
}
