//! End-to-end fuzz-campaign regressions (ISSUE satellite): a
//! coverage-guided campaign against a DUT with a deliberately injected
//! bug must converge to a divergence within a small, fixed number of
//! rounds, triage it into a self-contained bundle, and that bundle must
//! re-reproduce the failure at the identical commit index. Also pins
//! report determinism at the fuzz level: identical options give
//! byte-identical deterministic report bodies.

use campaign::{run_fuzz, verify_bundle, FuzzOpts, Verdict};
use xscore::InjectedBug;

fn bug_opts(bug: InjectedBug) -> FuzzOpts {
    let mut opts = FuzzOpts::new(5);
    opts.rounds = 3; // convergence bound: the bug must fall within this
    opts.jobs_per_round = 4;
    opts.configs = vec!["small-nh".into()];
    opts.workers = 2;
    opts.max_cycles = 3_000_000;
    opts.lightsss_interval = Some(2_000);
    opts.injected_bug = Some(bug);
    opts.minimize = false; // keep the wall clock small; minimizer has its own tier
    opts.triage = true;
    opts
}

fn assert_bug_found_and_triaged(bug: InjectedBug) {
    let out = run_fuzz(&bug_opts(bug));
    let report = &out.report;
    assert!(
        report.summary.diverged > 0,
        "{bug:?}: no divergence within {} rounds: {}",
        report.fuzz.as_ref().unwrap().rounds.len(),
        report.deterministic_json()
    );
    let job = report
        .jobs
        .iter()
        .find(|j| matches!(j.verdict, Verdict::Diverged { .. }))
        .unwrap();
    let bundle = job
        .triage
        .as_ref()
        .expect("diverged fuzz jobs are triaged into bundles");
    assert_eq!(bundle.trigger, "diverged");
    assert_eq!(
        bundle.job_index, job.index,
        "bundle must carry the re-indexed fuzz job position"
    );
    assert!(
        bundle.reproduced,
        "{bug:?}: triage replay did not reproduce: {}",
        bundle.detail_or_default()
    );
    // The bundle is a standalone reproducer: re-running it from scratch
    // hits the same divergence at the same commit index.
    let v = verify_bundle(bundle).expect("bundle verifies");
    assert!(v.reproduced, "{bug:?}: {}", v.detail);
    assert_eq!(v.at_commit, bundle.at_commit, "{bug:?}: drifted commit index");
}

trait DetailOrDefault {
    fn detail_or_default(&self) -> String;
}
impl DetailOrDefault for campaign::TriageBundle {
    fn detail_or_default(&self) -> String {
        format!("trigger={} at_commit={}", self.trigger, self.at_commit)
    }
}

#[test]
fn fuzz_converges_on_mul_low_bit() {
    assert_bug_found_and_triaged(InjectedBug::MulLowBit);
}

#[test]
fn fuzz_converges_on_addw_no_sext() {
    assert_bug_found_and_triaged(InjectedBug::AddwNoSext);
}

#[test]
fn injected_fuzz_report_is_deterministic() {
    let a = run_fuzz(&bug_opts(InjectedBug::MulLowBit));
    let b = run_fuzz(&bug_opts(InjectedBug::MulLowBit));
    assert_eq!(a.report.deterministic_json(), b.report.deterministic_json());
}

/// The divergence oracle is REF-independent: every interpreter
/// personality in [`nemu::registry`] catches the same deliberate DUT
/// corruption. Derived from the registry rather than a written-out
/// list, so a new personality cannot silently skip this tier.
#[test]
fn every_personality_catches_injected_bug() {
    let names = nemu::registry::names();
    assert!(names.len() >= 5, "personality registry lost a tier: {names:?}");
    for name in names {
        let mut opts = bug_opts(InjectedBug::MulLowBit);
        opts.triage = false; // reproduction depth is covered above; this
                             // tier only pins detection per REF
        opts.ref_model = Some(name.to_string());
        let out = run_fuzz(&opts);
        assert!(
            out.report.summary.diverged > 0,
            "REF {name} missed MulLowBit: {}",
            out.report.deterministic_json()
        );
    }
}
