//! Campaign-runner integration: the injected-bug acceptance pipeline
//! (catch → minimize → report) and report determinism.

use campaign::{error_class, Campaign, JobSpec, Verdict, WorkloadSource};
use workloads::{TortureConfig, TortureProgram};
use xscore::InjectedBug;

fn bug_campaign(seeds: std::ops::Range<u64>) -> Campaign {
    let cfg = TortureConfig::default();
    let jobs: Vec<JobSpec> = seeds
        .map(|seed| {
            JobSpec::new(WorkloadSource::torture(seed, cfg), "small-nh")
                .with_injected_bug(InjectedBug::MulLowBit)
                .with_max_cycles(8_000_000)
                .with_lightsss(2_000)
        })
        .collect();
    Campaign::new(jobs).with_workers(4)
}

#[test]
fn injected_bug_is_caught_minimized_and_reported() {
    let report = bug_campaign(0..6).run();
    assert_eq!(report.summary.total, 6);
    assert!(
        report.summary.diverged >= 2,
        "the corrupted Mul writeback must diverge on several seeds: {}",
        report.deterministic_json()
    );
    assert_eq!(report.summary.panicked, 0);

    for j in &report.jobs {
        let Verdict::Diverged { error } = &j.verdict else {
            continue;
        };
        assert_eq!(error_class(error), "Writeback", "{error:?}");
        // Replay window attached (LightSSS was on).
        let replay = j.replay.as_ref().expect("replay window attached");
        assert!(replay.from_cycle <= replay.at_cycle);
        // Minimized reproducer attached and ≤ 25 % of the original.
        let m = j.minimized.as_ref().expect("minimized reproducer attached");
        assert_eq!(m.error_class, "Writeback");
        assert!(
            m.minimized_kept * 4 <= m.original_kept,
            "minimized to {}/{} slots — not ≤ 25 %",
            m.minimized_kept,
            m.original_kept
        );
        assert_eq!(m.kept.len() as u64, m.minimized_kept);

        // The reproducer actually reproduces: re-emit the minimized
        // subset and re-run under the same corrupted configuration.
        let tcfg = m.torture.expect("torture reproducer");
        let t = TortureProgram::generate(m.seed, &tcfg);
        let mut mask = vec![false; t.len()];
        for &i in &m.kept {
            mask[i as usize] = true;
        }
        let program = t.emit_subset(&mask);
        let cfg = xscore::XsConfig::preset("small-nh")
            .unwrap()
            .with_injected_bug(InjectedBug::MulLowBit);
        match minjie::run_isolated(cfg, &program, 8_000_000, None) {
            Ok(minjie::RunStats {
                end: minjie::CoSimEnd::Bug(b),
                ..
            }) => assert_eq!(error_class(&b.error), "Writeback"),
            other => panic!("reproducer must still diverge, got {other:?}"),
        }
    }
}

#[test]
fn diverged_jobs_carry_a_bundle_that_replays_at_the_same_commit() {
    // The ISSUE 3 acceptance loop: a MulLowBit campaign with LightSSS on
    // must yield a replay bundle for every divergence, and re-executing
    // the bundle's recipe from reset must reproduce the identical
    // DiffError at the identical commit index.
    let report = bug_campaign(0..3).run();
    let mut verified = 0;
    for j in &report.jobs {
        let Verdict::Diverged { error } = &j.verdict else {
            assert!(j.triage.is_none(), "only failed jobs are triaged");
            continue;
        };
        let bundle = j.triage.as_ref().expect("diverged job carries a bundle");
        assert_eq!(bundle.trigger, "diverged");
        assert_eq!(bundle.error.as_ref(), Some(error));
        assert_eq!(bundle.at_commit, j.commits_checked, "anchor = detection point");
        assert!(bundle.reproduced, "rollback replay reproduced in-run");
        assert!(!bundle.commit_tail.is_empty(), "commit tail captured");
        assert!(bundle.window_cpi.total() > 0, "window CPI stack is live");
        assert!(
            bundle.minimized.is_some(),
            "minimized reproducer rides inside the bundle"
        );
        let v = campaign::verify_bundle(bundle).expect("bundle recipe resolves");
        assert!(v.reproduced, "bundle replay diverges identically: {}", v.detail);
        assert_eq!(v.at_commit, bundle.at_commit, "identical commit index");
        verified += 1;
    }
    assert!(verified >= 1, "at least one divergence verified end to end");
}

#[test]
fn clean_presets_never_diverge_on_the_same_seeds() {
    // Control: identical jobs without the injected bug sail through.
    let cfg = TortureConfig::default();
    let jobs: Vec<JobSpec> = (0..6)
        .map(|seed| {
            JobSpec::new(WorkloadSource::torture(seed, cfg), "small-nh")
                .with_max_cycles(8_000_000)
        })
        .collect();
    let report = Campaign::new(jobs).with_workers(4).run();
    assert_eq!(report.summary.halted, 6, "{}", report.deterministic_json());
}

#[test]
fn identical_campaigns_produce_byte_identical_report_bodies() {
    // Includes diverging jobs, so minimizer AND triage determinism are
    // covered: the embedded replay bundles must be byte-identical too.
    let a = bug_campaign(0..4).run();
    let b = bug_campaign(0..4).run();
    let body = a.deterministic_json();
    assert_eq!(
        body,
        b.deterministic_json(),
        "deterministic body must not depend on scheduling or wall clock"
    );
    assert!(body.contains("\"triage\""), "bundles are part of the body");
    // The lifecycle layer is part of the deterministic body too: every
    // perf snapshot embeds the digest and failed-job bundles carry the
    // crash ring, so two same-seed campaigns must agree on both.
    assert!(body.contains("\"lifecycle\""), "lifecycle digest in the body");
    assert!(
        body.contains("\"lifecycle_ring\""),
        "bundle crash rings are part of the body"
    );
    // No wall-clock-derived field may leak into the deterministic body.
    for leak in ["total_ms", "per_job_ms", "\"timing\"", "wall_clock"] {
        assert!(!body.contains(leak), "timing leak: {leak}");
    }
    // And the full reports are valid JSON with the timing section.
    let full: serde_json::Value = serde_json::from_str(&a.full_json()).expect("valid JSON");
    assert!(full["timing"]["total_ms"].as_u64().is_some());
    assert!(full["timing"]["attempts"].as_array().is_some());
    assert_eq!(
        full["jobs"][0]["workload"],
        "torture:seed=0"
    );
}

#[test]
fn bundle_lifecycle_rings_are_bounded_and_well_formed() {
    // Size discipline: the always-on crash ring snapshotted into a
    // triage bundle is capped at LIFECYCLE_RING_CAP records per core
    // and every record is either retired or cause-tagged — the bundle
    // stays recipe-sized, never a full trace dump.
    let report = bug_campaign(0..4).run();
    let mut bundles = 0;
    for j in &report.jobs {
        let Some(bundle) = j.triage.as_ref() else {
            continue;
        };
        bundles += 1;
        assert!(
            !bundle.lifecycle_ring.is_empty(),
            "failed job {} has an empty crash ring",
            j.index
        );
        assert!(
            bundle.lifecycle_ring.len() <= xscore::LIFECYCLE_RING_CAP,
            "job {}: ring holds {} records, cap is {}",
            j.index,
            bundle.lifecycle_ring.len(),
            xscore::LIFECYCLE_RING_CAP
        );
        for r in &bundle.lifecycle_ring {
            assert!(
                r.retired() || r.cause.is_some(),
                "job {}: ring record neither retired nor cause-tagged: {r:?}",
                j.index
            );
            assert!(r.stamps.fetched > 0, "job {}: unfetched ring record", j.index);
        }
        // The ring survives a JSON round trip inside the bundle.
        let json = serde_json::to_string(bundle).expect("bundle serializes");
        let back: campaign::TriageBundle =
            serde_json::from_str(&json).expect("bundle deserializes");
        assert_eq!(back.lifecycle_ring.len(), bundle.lifecycle_ring.len());
    }
    assert!(bundles >= 1, "no bundle produced to inspect");
}

#[test]
fn worker_count_does_not_change_the_report_body() {
    let serial = bug_campaign(0..3).with_workers(1).run();
    let parallel = bug_campaign(0..3).with_workers(4).run();
    // Bodies differ only in the recorded worker count; job records match.
    let js = |r: &campaign::CampaignReport| {
        serde_json::from_str::<serde_json::Value>(&r.deterministic_json()).unwrap()["jobs"].clone()
    };
    assert_eq!(js(&serial), js(&parallel));
}
