//! Campaign-runner integration: the injected-bug acceptance pipeline
//! (catch → minimize → report) and report determinism.

use campaign::{error_class, Campaign, JobSpec, Verdict, WorkloadSource};
use workloads::{TortureConfig, TortureProgram};
use xscore::InjectedBug;

fn bug_campaign(seeds: std::ops::Range<u64>) -> Campaign {
    let cfg = TortureConfig::default();
    let jobs: Vec<JobSpec> = seeds
        .map(|seed| {
            JobSpec::new(WorkloadSource::torture(seed, cfg), "small-nh")
                .with_injected_bug(InjectedBug::MulLowBit)
                .with_max_cycles(8_000_000)
                .with_lightsss(2_000)
        })
        .collect();
    Campaign::new(jobs).with_workers(4)
}

#[test]
fn injected_bug_is_caught_minimized_and_reported() {
    let report = bug_campaign(0..6).run();
    assert_eq!(report.summary.total, 6);
    assert!(
        report.summary.diverged >= 2,
        "the corrupted Mul writeback must diverge on several seeds: {}",
        report.deterministic_json()
    );
    assert_eq!(report.summary.panicked, 0);

    for j in &report.jobs {
        let Verdict::Diverged { error } = &j.verdict else {
            continue;
        };
        assert_eq!(error_class(error), "Writeback", "{error:?}");
        // Replay window attached (LightSSS was on).
        let replay = j.replay.as_ref().expect("replay window attached");
        assert!(replay.from_cycle <= replay.at_cycle);
        // Minimized reproducer attached and ≤ 25 % of the original.
        let m = j.minimized.as_ref().expect("minimized reproducer attached");
        assert_eq!(m.error_class, "Writeback");
        assert!(
            m.minimized_kept * 4 <= m.original_kept,
            "minimized to {}/{} slots — not ≤ 25 %",
            m.minimized_kept,
            m.original_kept
        );
        assert_eq!(m.kept.len() as u64, m.minimized_kept);

        // The reproducer actually reproduces: re-emit the minimized
        // subset and re-run under the same corrupted configuration.
        let t = TortureProgram::generate(m.seed, &m.torture);
        let mut mask = vec![false; t.len()];
        for &i in &m.kept {
            mask[i as usize] = true;
        }
        let program = t.emit_subset(&mask);
        let cfg = xscore::XsConfig::preset("small-nh")
            .unwrap()
            .with_injected_bug(InjectedBug::MulLowBit);
        match minjie::run_isolated(cfg, &program, 8_000_000, None) {
            Ok(minjie::RunStats {
                end: minjie::CoSimEnd::Bug(b),
                ..
            }) => assert_eq!(error_class(&b.error), "Writeback"),
            other => panic!("reproducer must still diverge, got {other:?}"),
        }
    }
}

#[test]
fn clean_presets_never_diverge_on_the_same_seeds() {
    // Control: identical jobs without the injected bug sail through.
    let cfg = TortureConfig::default();
    let jobs: Vec<JobSpec> = (0..6)
        .map(|seed| {
            JobSpec::new(WorkloadSource::torture(seed, cfg), "small-nh")
                .with_max_cycles(8_000_000)
        })
        .collect();
    let report = Campaign::new(jobs).with_workers(4).run();
    assert_eq!(report.summary.halted, 6, "{}", report.deterministic_json());
}

#[test]
fn identical_campaigns_produce_byte_identical_report_bodies() {
    // Includes diverging jobs, so minimizer determinism is covered too.
    let a = bug_campaign(0..4).run();
    let b = bug_campaign(0..4).run();
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "deterministic body must not depend on scheduling or wall clock"
    );
    // And the full reports are valid JSON with the timing section.
    let full: serde_json::Value = serde_json::from_str(&a.full_json()).expect("valid JSON");
    assert!(full["timing"]["total_ms"].as_u64().is_some());
    assert_eq!(
        full["jobs"][0]["workload"],
        "torture:seed=0"
    );
}

#[test]
fn worker_count_does_not_change_the_report_body() {
    let serial = bug_campaign(0..3).with_workers(1).run();
    let parallel = bug_campaign(0..3).with_workers(4).run();
    // Bodies differ only in the recorded worker count; job records match.
    let js = |r: &campaign::CampaignReport| {
        serde_json::from_str::<serde_json::Value>(&r.deterministic_json()).unwrap()["jobs"].clone()
    };
    assert_eq!(js(&serial), js(&parallel));
}
