//! Parallel DiffTest campaign runner with failure minimization.
//!
//! The paper's verification flow runs *fleets* of co-simulations —
//! workload × configuration × torture-seed matrices — and turns any
//! divergence into a small, replayable reproducer. This crate is that
//! harness:
//!
//! - [`JobSpec`] names one run: a [`WorkloadSource`] (kernel, torture
//!   seed, or inline program), an [`XsConfig`] preset slug, and limits.
//! - [`Campaign`] shards jobs across a `std::thread` worker pool; every
//!   job runs inside a panic boundary and yields a [`Verdict`].
//! - On a divergence, the ddmin [`minimize`] pass shrinks the failing
//!   torture program's kept-mask while the same [`DiffError`] class
//!   reproduces, and the report attaches the `(seed, cfg, mask)`
//!   reproducer plus the LightSSS replay window.
//! - Failed jobs (divergence, cycle-budget timeout, panic) are triaged:
//!   the runner rolls back to the older retained LightSSS snapshot —
//!   or the reset state when the failure preceded the first snapshot —
//!   re-executes the failure window in debug mode, and embeds a
//!   self-contained [`TriageBundle`] that [`verify_bundle`] (and the
//!   `replay` binary) can reproduce at the identical commit index.
//! - [`CampaignReport`] renders to JSON with wall-clock timing
//!   segregated from the deterministic body, so identical campaigns
//!   produce byte-identical report bodies.
//! - [`run_fuzz`] turns the fixed job matrix into a coverage-guided
//!   fleet: a corpus of torture [`Recipe`]s is evolved by deterministic
//!   mutation, scheduled by observed coverage novelty (decode,
//!   diff-rule, and pipeline-event coverage maps), and every divergence
//!   it finds flows through the same minimize/triage pipeline.
//! - [`run_sampled`] is the checkpoint farm (§III-D3): workloads are
//!   profiled on a fast architectural personality, SimPoint clustering
//!   picks representative intervals, and one *sample job* per
//!   checkpoint × configuration flows through the same worker pool —
//!   warm-up, then a DiffTest-verified detail window — aggregating to
//!   a weighted-CPI estimate in the report's `sampling` section.
//! - With `FuzzOpts::mp` on, the exploration stream interleaves
//!   two-hart litmus recipes; a run whose final observation set falls
//!   outside the shape's allowed-outcome mask becomes a
//!   [`Verdict::ForbiddenOutcome`], which ddmins over rounds and
//!   triages into a replayable bundle like any divergence.
//!
//! # Example
//!
//! ```
//! use campaign::{Campaign, JobSpec, WorkloadSource};
//! use workloads::TortureConfig;
//!
//! let cfg = TortureConfig { body_len: 20, iterations: 3, ..Default::default() };
//! let jobs = (0..2)
//!     .map(|seed| JobSpec::new(WorkloadSource::torture(seed, cfg), "small-nh")
//!         .with_max_cycles(2_000_000))
//!     .collect();
//! let report = Campaign::new(jobs).with_workers(2).run();
//! assert_eq!(report.summary.halted, 2);
//! ```
//!
//! [`XsConfig`]: xscore::XsConfig
//! [`DiffError`]: minjie::DiffError

pub mod coverage;
pub mod fuzz;
pub mod job;
pub mod minimize;
pub mod report;
pub mod runner;
pub mod sample;
pub mod triage;

pub use coverage::{minimize_corpus, CoverageSet, FuzzRound, FuzzSummary};
pub use fuzz::{
    fresh_litmus_recipe, fresh_recipe, mutate_recipe, run_fuzz, FuzzOpts, FuzzOutcome, Recipe,
};
pub use job::{error_class, JobSpec, WorkloadSource};
pub use minimize::{minimize, MinimizeOutcome};
pub use report::{
    CampaignReport, CampaignSummary, JobRecord, MinimizedRepro, ReplayWindow, SampleRecord,
    SamplingPhase, SamplingSummary, Verdict, WallClock, SCHEMA_VERSION,
};
pub use runner::Campaign;
pub use sample::{run_sampled, SampleSpec};
pub use triage::{
    bundle_spec, verify_bundle, BundleSource, BundleVerification, TriageBundle,
    BUNDLE_SCHEMA_VERSION,
};
