//! Sampled performance estimation: SimPoint checkpoints fanned through
//! the campaign runner (paper §III-D3).
//!
//! [`run_sampled`] is the checkpoint farm. Per workload it (1) profiles
//! the program on a fast architectural personality, collecting a
//! basic-block vector per interval, (2) clusters the intervals and
//! materializes one checkpoint per SimPoint — cached on disk under
//! content-hash names so re-runs skip re-profiling, (3) fans one
//! *sample job* per checkpoint × configuration across the ordinary
//! campaign worker pool (panic isolation, wall-clock retries, LightSSS
//! triage all apply unchanged), and (4) folds the measured windows into
//! the report's `sampling` section: a SimPoint-weighted CPI estimate in
//! exact integer milli-units.

use crate::job::{JobSpec, WorkloadSource};
use crate::report::{CampaignReport, SamplingPhase, SamplingSummary};
use crate::runner::Campaign;
use checkpoint::{generate_checkpoints_with_ref, weighted_cpi_milli, Checkpoint};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What to sample: the workload × configuration matrix plus the
/// profiling and measurement knobs.
#[derive(Debug, Clone)]
pub struct SampleSpec {
    /// Kernel names to profile and sample (see `workloads::workload`).
    pub workloads: Vec<String>,
    /// Configuration preset slugs to measure on.
    pub configs: Vec<String>,
    /// Profiling personality (the `--ref` flag; `nemu-trace` is the
    /// fast default — the conformance tier pins that every personality
    /// yields the identical selection).
    pub ref_model: String,
    /// Profiling interval length, instructions.
    pub interval_len: u64,
    /// Maximum SimPoint clusters (k).
    pub max_checkpoints: usize,
    /// Profiling instruction budget (panic beyond it).
    pub max_profile_insts: u64,
    /// Warm-up instruction budget per sample job.
    pub warmup: u64,
    /// Measured-window instruction budget per sample job.
    pub window: u64,
    /// Cycle budget per sample job.
    pub max_cycles: u64,
    /// LightSSS snapshot interval for sample jobs (None disables).
    pub lightsss_interval: Option<u64>,
    /// Directory for the checkpoint cache (None disables caching).
    pub checkpoint_dir: Option<PathBuf>,
    /// Worker threads.
    pub workers: usize,
    /// Triage failed sample jobs into replay bundles.
    pub triage: bool,
}

impl SampleSpec {
    /// A spec over `workloads` × `configs` with test-scale defaults:
    /// 5 k-instruction intervals, ≤ 3 checkpoints, 1 k warm-up and a
    /// full-interval window, profiling on `nemu-trace`.
    pub fn new(workloads: Vec<String>, configs: Vec<String>) -> Self {
        SampleSpec {
            workloads,
            configs,
            ref_model: "nemu-trace".into(),
            interval_len: 5_000,
            max_checkpoints: 3,
            max_profile_insts: 50_000_000,
            warmup: 1_000,
            window: 5_000,
            max_cycles: 40_000_000,
            lightsss_interval: None,
            checkpoint_dir: None,
            workers: 4,
            triage: true,
        }
    }

    /// Set the profiling personality.
    pub fn with_ref(mut self, name: impl Into<String>) -> Self {
        self.ref_model = name.into();
        self
    }

    /// Set the interval length and measurement budgets in one go:
    /// warm-up `interval/5`, window one full interval.
    pub fn with_interval(mut self, interval_len: u64) -> Self {
        self.interval_len = interval_len;
        self.warmup = (interval_len / 5).max(1);
        self.window = interval_len;
        self
    }

    /// Set the maximum checkpoint count (k).
    pub fn with_max_checkpoints(mut self, k: usize) -> Self {
        self.max_checkpoints = k.max(1);
        self
    }

    /// Set the warm-up instruction budget.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Set the measured-window instruction budget.
    pub fn with_window(mut self, window: u64) -> Self {
        self.window = window;
        self
    }

    /// Set the per-job cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Enable the on-disk checkpoint cache.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Set the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// One workload's profiled checkpoint set, ready to fan out.
struct Profiled {
    kernel: String,
    checkpoints: Vec<Arc<Checkpoint>>,
    total_instructions: u64,
    total_intervals: u64,
}

/// The cache index written next to the checkpoint blobs: everything
/// needed to validate that cached blobs answer *this* profiling recipe.
#[derive(Debug, Serialize, Deserialize)]
struct CheckpointIndex {
    kernel: String,
    ref_model: String,
    interval_len: u64,
    max_checkpoints: u64,
    total_instructions: u64,
    total_intervals: u64,
    /// Blob file names (content hashes), interval order.
    blobs: Vec<String>,
}

fn index_path(dir: &Path, spec: &SampleSpec, kernel: &str) -> PathBuf {
    dir.join(format!(
        "{kernel}-{}-i{}-k{}.index.json",
        spec.ref_model, spec.interval_len, spec.max_checkpoints
    ))
}

/// Try to satisfy one workload's profiling recipe from the cache.
/// Any mismatch — missing blob, corrupt bytes, content hash that does
/// not match the file name — silently misses (the caller re-profiles).
fn load_cached(dir: &Path, spec: &SampleSpec, kernel: &str) -> Option<Profiled> {
    let text = std::fs::read_to_string(index_path(dir, spec, kernel)).ok()?;
    let idx: CheckpointIndex = serde_json::from_str(&text).ok()?;
    if idx.kernel != kernel
        || idx.ref_model != spec.ref_model
        || idx.interval_len != spec.interval_len
        || idx.max_checkpoints != spec.max_checkpoints as u64
    {
        return None;
    }
    let mut checkpoints = Vec::with_capacity(idx.blobs.len());
    for name in &idx.blobs {
        let bytes = std::fs::read(dir.join(name)).ok()?;
        let c = Checkpoint::try_from_bytes(&bytes).ok()?;
        if format!("{}.ckpt", c.content_hash()) != *name {
            return None;
        }
        checkpoints.push(Arc::new(c));
    }
    if checkpoints.is_empty() {
        return None;
    }
    Some(Profiled {
        kernel: kernel.into(),
        checkpoints,
        total_instructions: idx.total_instructions,
        total_intervals: idx.total_intervals,
    })
}

/// Write one workload's checkpoint set into the cache. Blobs are named
/// by content hash, so identical checkpoints from different recipes
/// share storage; the index ties a recipe to its blob list.
fn store_cache(dir: &Path, spec: &SampleSpec, p: &Profiled) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut blobs = Vec::with_capacity(p.checkpoints.len());
    for c in &p.checkpoints {
        let name = format!("{}.ckpt", c.content_hash());
        let path = dir.join(&name);
        if !path.exists() {
            let _ = std::fs::write(&path, c.to_bytes());
        }
        blobs.push(name);
    }
    let idx = CheckpointIndex {
        kernel: p.kernel.clone(),
        ref_model: spec.ref_model.clone(),
        interval_len: spec.interval_len,
        max_checkpoints: spec.max_checkpoints as u64,
        total_instructions: p.total_instructions,
        total_intervals: p.total_intervals,
        blobs,
    };
    let text = serde_json::to_string_pretty(&idx).expect("index serializes");
    let _ = std::fs::write(index_path(dir, spec, p.kernel.as_str()), text);
}

/// Profile one workload (or answer it from the cache).
fn profile(spec: &SampleSpec, kernel: &str) -> Profiled {
    if let Some(dir) = &spec.checkpoint_dir {
        if let Some(p) = load_cached(dir, spec, kernel) {
            return p;
        }
    }
    let program = workloads::workload(kernel, workloads::Scale::Test).program;
    let set = generate_checkpoints_with_ref(
        &spec.ref_model,
        &program,
        spec.interval_len,
        spec.max_checkpoints,
        spec.max_profile_insts,
    );
    let p = Profiled {
        kernel: kernel.into(),
        checkpoints: set.checkpoints.into_iter().map(Arc::new).collect(),
        total_instructions: set.total_instructions,
        total_intervals: set.total_intervals,
    };
    if let Some(dir) = &spec.checkpoint_dir {
        store_cache(dir, spec, &p);
    }
    p
}

/// Run the checkpoint farm: profile, fan out, aggregate.
///
/// Job order (and therefore report order) is configuration-major, then
/// workload, then interval — deterministic for a given spec, so the
/// report body is byte-identical across runs.
///
/// # Panics
///
/// Panics on an unknown personality or kernel name, or a workload that
/// does not halt within the profiling budget.
pub fn run_sampled(spec: &SampleSpec) -> CampaignReport {
    let profiled: Vec<Profiled> = spec.workloads.iter().map(|w| profile(spec, w)).collect();

    let mut jobs = Vec::new();
    for config in &spec.configs {
        for p in &profiled {
            for c in &p.checkpoints {
                let mut j = JobSpec::new(
                    WorkloadSource::Sample {
                        kernel: p.kernel.clone(),
                        ref_model: spec.ref_model.clone(),
                        interval_len: spec.interval_len,
                        warmup: spec.warmup,
                        window: spec.window,
                        checkpoint: Arc::clone(c),
                    },
                    config.clone(),
                )
                .with_max_cycles(spec.max_cycles);
                if let Some(i) = spec.lightsss_interval {
                    j = j.with_lightsss(i);
                }
                jobs.push(j);
            }
        }
    }

    let mut report = Campaign::new(jobs)
        .with_workers(spec.workers)
        .with_minimization(false)
        .with_triage(spec.triage)
        .run();

    // Aggregate in the same nested order the jobs were built in.
    let mut sampling = Vec::new();
    let mut idx = 0usize;
    for config in &spec.configs {
        for p in &profiled {
            let mut phases = Vec::new();
            let mut cpis = Vec::new();
            let mut members = Vec::new();
            for _ in &p.checkpoints {
                let rec = &report.jobs[idx];
                idx += 1;
                let Some(s) = &rec.sample else { continue };
                if s.window_instret == 0 {
                    continue;
                }
                phases.push(SamplingPhase {
                    job_index: rec.index,
                    interval: s.interval,
                    members: s.members,
                    cpi_milli: s.cpi_milli,
                });
                cpis.push(s.cpi_milli);
                members.push(s.members);
            }
            let weighted = if cpis.is_empty() {
                0
            } else {
                weighted_cpi_milli(&cpis, &members)
            };
            sampling.push(SamplingSummary {
                workload: format!("kernel:{}", p.kernel),
                config: config.clone(),
                ref_model: spec.ref_model.clone(),
                interval_len: spec.interval_len,
                total_intervals: p.total_intervals,
                total_instructions: p.total_instructions,
                checkpoints: p.checkpoints.len() as u64,
                aggregated: phases.len() as u64,
                weighted_cpi_milli: weighted,
                phases,
            });
        }
    }
    report.sampling = sampling;
    report
}
