//! Delta-debugging minimizer for failing torture programs.
//!
//! Classic ddmin over the kept-mask of a [`TortureProgram`]'s abstract
//! body: repeatedly drop chunks of the currently-kept slots and keep any
//! candidate for which the caller's oracle still reproduces the failure.
//! The oracle is a closure, so the same algorithm is testable against
//! synthetic failure shapes and drives real CoSim re-runs in the
//! campaign runner.
//!
//! [`TortureProgram`]: workloads::TortureProgram

/// What the minimizer did.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// Final kept-mask (same length as the input).
    pub kept: Vec<bool>,
    /// Kept-slot count after the initial check and after every accepted
    /// reduction — monotonically non-increasing by construction.
    pub steps: Vec<usize>,
    /// Oracle invocations.
    pub runs: u64,
}

impl MinimizeOutcome {
    /// Number of slots still kept.
    pub fn kept_count(&self) -> usize {
        self.kept.iter().filter(|&&k| k).count()
    }
}

/// Shrink `initial` while `reproduces` keeps returning `true`.
///
/// The oracle receives a candidate kept-mask (always a subset of
/// `initial`) and reports whether the failure still reproduces. The
/// returned mask is the smallest subset ddmin found; if the oracle
/// rejects even the unmodified `initial`, it is returned unchanged.
///
/// Deterministic: candidate order depends only on `initial` and the
/// oracle's answers.
pub fn minimize<F>(initial: &[bool], mut reproduces: F) -> MinimizeOutcome
where
    F: FnMut(&[bool]) -> bool,
{
    let total = initial.len();
    let mask_of = |kept_idx: &[usize]| {
        let mut m = vec![false; total];
        for &i in kept_idx {
            m[i] = true;
        }
        m
    };

    let mut kept_idx: Vec<usize> = (0..total).filter(|&i| initial[i]).collect();
    let mut runs = 1u64;
    if !reproduces(&mask_of(&kept_idx)) {
        return MinimizeOutcome {
            kept: initial.to_vec(),
            steps: vec![kept_idx.len()],
            runs,
        };
    }
    let mut steps = vec![kept_idx.len()];

    let mut n = 2usize;
    while kept_idx.len() >= 2 {
        let len = kept_idx.len();
        let chunk = len.div_ceil(n);
        let mut reduced = false;
        for start in (0..len).step_by(chunk) {
            let end = (start + chunk).min(len);
            let candidate: Vec<usize> = kept_idx
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= end)
                .map(|(_, &v)| v)
                .collect();
            runs += 1;
            if reproduces(&mask_of(&candidate)) {
                kept_idx = candidate;
                steps.push(kept_idx.len());
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if n >= len {
                break; // 1-granular and nothing removable: minimal.
            }
            n = (n * 2).min(kept_idx.len());
        }
    }

    MinimizeOutcome {
        kept: mask_of(&kept_idx),
        steps,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_single_culprit() {
        // Failure reproduces iff slot 17 is kept.
        let initial = vec![true; 60];
        let out = minimize(&initial, |m| m[17]);
        assert_eq!(out.kept_count(), 1);
        assert!(out.kept[17]);
    }

    #[test]
    fn keeps_an_interacting_pair() {
        let initial = vec![true; 40];
        let out = minimize(&initial, |m| m[3] && m[31]);
        assert_eq!(out.kept_count(), 2);
        assert!(out.kept[3] && out.kept[31]);
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let initial: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let out = minimize(&initial, |_| false);
        assert_eq!(out.kept, initial);
        assert_eq!(out.runs, 1);
    }

    #[test]
    fn steps_never_grow() {
        let initial = vec![true; 100];
        let out = minimize(&initial, |m| m.iter().filter(|&&k| k).count() >= 10);
        for w in out.steps.windows(2) {
            assert!(w[1] <= w[0], "shrinking must be monotone: {:?}", out.steps);
        }
        assert_eq!(out.kept_count(), 10);
    }
}
