//! Rollback-replay triage: the self-contained failure bundle.
//!
//! When a campaign job ends in a divergence, a cycle-budget timeout, or
//! a panic, the runner rolls back to the older retained LightSSS
//! snapshot (falling back to the reset state when the failure struck
//! before the first snapshot interval), re-executes the ≤ 2×interval
//! failure window in debug mode, and packs everything a later session
//! needs into a [`TriageBundle`]: the program *recipe* (never raw
//! state), the snapshot anchor, the commit-trace tail, the diff-rule
//! verdict, and the window's CPI stack. The bundle is deterministic —
//! no wall-clock field appears in it — and [`verify_bundle`] reproduces
//! the failure from the bundle alone, checking that the divergence
//! strikes at the *identical commit index*.

use crate::job::{error_class, JobSpec, WorkloadSource};
use crate::report::MinimizedRepro;
use minjie::{ArchDb, BugReport, CoSim, CoSimEnd, CoSimState, DiffError, Salvage, Snapshotable};
use riscv_isa::asm::Program;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::panic::{catch_unwind, AssertUnwindSafe};
use workloads::litmus::LitmusConfig;
use workloads::TortureConfig;
use xscore::{CpiStack, InjectedBug};

/// Bundle schema version (independent of the report schema).
/// v4: litmus sources, the `"forbidden-outcome"` trigger with its raw
/// exit code, and the L2 probe/grant race fault flag.
/// v5: sample sources — the `(kernel, personality, interval_len,
/// interval, warmup, window)` recipe re-derives the checkpoint a sample
/// job resumed from, keeping bundles free of memory images.
pub const BUNDLE_SCHEMA_VERSION: u64 = 5;

/// Commit-trace rows retained in the bundle (the tail closest to the
/// failure point).
const COMMIT_TAIL_LEN: usize = 32;

/// Extra cycles granted past the nominal window so the replay can reach
/// the failure even when commit timing shifts slightly at the margins.
const REPLAY_SLACK: u64 = 10_000;

/// A serializable program recipe — mirrors [`WorkloadSource`], which
/// carries a non-serializable [`Program`] in its inline variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BundleSource {
    /// A named SPEC-like kernel.
    Kernel {
        /// Kernel name.
        name: String,
    },
    /// A torture program regenerated from its seed.
    Torture {
        /// Generator seed.
        seed: u64,
        /// Generator knobs.
        cfg: TortureConfig,
        /// Kept-mask over the abstract body slots (None keeps all).
        keep: Option<Vec<bool>>,
    },
    /// A two-hart litmus program regenerated from its seed.
    Litmus {
        /// Generator seed.
        seed: u64,
        /// Generator knobs.
        cfg: LitmusConfig,
        /// Kept-mask over the abstract rounds (None keeps all).
        keep: Option<Vec<bool>>,
    },
    /// A caller-assembled program, stored as raw bytes.
    Inline {
        /// Display name.
        name: String,
        /// Load base address.
        base: u64,
        /// Entry point.
        entry: u64,
        /// Image bytes.
        bytes: Vec<u8>,
    },
    /// A SimPoint sample job, stored as the checkpoint *recipe*:
    /// re-profiling `kernel` on `ref_model` for `interval ×
    /// interval_len` instructions rebuilds the exact restore state
    /// (see `checkpoint::checkpoint_at_interval`).
    Sample {
        /// Profiled kernel name.
        kernel: String,
        /// Profiling personality.
        ref_model: String,
        /// Interval length, instructions.
        interval_len: u64,
        /// Interval index of the checkpoint.
        interval: u64,
        /// Warm-up instruction budget.
        warmup: u64,
        /// Measured-window instruction budget.
        window: u64,
    },
}

impl BundleSource {
    /// Capture a workload recipe into its serializable form.
    pub fn from_workload(w: &WorkloadSource) -> Self {
        match w {
            WorkloadSource::Kernel { name } => BundleSource::Kernel { name: name.clone() },
            WorkloadSource::Torture { seed, cfg, keep } => BundleSource::Torture {
                seed: *seed,
                cfg: *cfg,
                keep: keep.clone(),
            },
            WorkloadSource::Litmus { seed, cfg, keep } => BundleSource::Litmus {
                seed: *seed,
                cfg: *cfg,
                keep: keep.clone(),
            },
            WorkloadSource::Inline { name, program } => BundleSource::Inline {
                name: name.clone(),
                base: program.base,
                entry: program.entry,
                bytes: program.bytes.clone(),
            },
            WorkloadSource::Sample {
                kernel,
                ref_model,
                interval_len,
                warmup,
                window,
                checkpoint,
            } => BundleSource::Sample {
                kernel: kernel.clone(),
                ref_model: ref_model.clone(),
                interval_len: *interval_len,
                interval: checkpoint.interval as u64,
                warmup: *warmup,
                window: *window,
            },
        }
    }

    /// Rebuild the runnable workload recipe.
    pub fn to_workload(&self) -> WorkloadSource {
        match self {
            BundleSource::Kernel { name } => WorkloadSource::Kernel { name: name.clone() },
            BundleSource::Torture { seed, cfg, keep } => WorkloadSource::Torture {
                seed: *seed,
                cfg: *cfg,
                keep: keep.clone(),
            },
            BundleSource::Litmus { seed, cfg, keep } => WorkloadSource::Litmus {
                seed: *seed,
                cfg: *cfg,
                keep: keep.clone(),
            },
            BundleSource::Inline {
                name,
                base,
                entry,
                bytes,
            } => WorkloadSource::Inline {
                name: name.clone(),
                program: Program {
                    base: *base,
                    entry: *entry,
                    bytes: bytes.clone(),
                },
            },
            // Re-derive the checkpoint from its recipe: profile the
            // kernel on the recorded personality up to the boundary.
            // Deterministic, so the rebuilt state matches the original
            // byte for byte.
            BundleSource::Sample {
                kernel,
                ref_model,
                interval_len,
                interval,
                warmup,
                window,
            } => {
                let program = workloads::workload(kernel, workloads::Scale::Test).program;
                let c = checkpoint::checkpoint_at_interval(
                    ref_model,
                    &program,
                    *interval_len,
                    *interval,
                );
                WorkloadSource::Sample {
                    kernel: kernel.clone(),
                    ref_model: ref_model.clone(),
                    interval_len: *interval_len,
                    warmup: *warmup,
                    window: *window,
                    checkpoint: std::sync::Arc::new(c),
                }
            }
        }
    }
}

/// One row of the commit-trace tail: the last committed instructions
/// before the failure, flattened from the debug-mode `instr_commit`
/// table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommitTailEntry {
    /// Cycle of commit.
    pub cycle: u64,
    /// Hart index.
    pub hart: u64,
    /// PC.
    pub pc: u64,
    /// Opcode mnemonic.
    pub op: String,
    /// Destination write `(fp, arch index, value)`, if any.
    pub wb: Option<(bool, u8, u64)>,
}

/// The self-contained rollback-replay bundle.
///
/// Everything here is either configuration (recipe) or derived from the
/// deterministic simulation — a bundle for the same failing job is
/// byte-identical across runs, machines, and worker counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TriageBundle {
    /// Bundle schema version.
    pub schema_version: u64,
    /// The job's position in its campaign.
    pub job_index: u64,
    /// Workload display label.
    pub workload: String,
    /// The program recipe.
    pub source: BundleSource,
    /// Configuration preset slug.
    pub config: String,
    /// Core-count override.
    pub cores: Option<u64>,
    /// Deliberate DUT corruption armed for the job.
    pub injected_bug: Option<InjectedBug>,
    /// §IV-C L2 probe/grant race fault armed for the job.
    pub inject_l2_race: bool,
    /// Per-cycle telemetry enabled.
    pub telemetry: bool,
    /// Full-trace lifecycle streaming enabled (the crash ring below is
    /// captured regardless).
    pub lifecycle: bool,
    /// Cycle budget.
    pub max_cycles: u64,
    /// LightSSS snapshot interval.
    pub lightsss_interval: Option<u64>,
    /// DiffTest REF personality (None = default architectural stepper).
    /// Recorded so a replay re-verifies against the same REF tier.
    pub ref_model: Option<String>,
    /// What ended the job: `"diverged"`, `"timeout"`, `"panicked"`, or
    /// `"forbidden-outcome"`.
    pub trigger: String,
    /// Cycle of the snapshot the replay rolled back to (0 for the
    /// reset-state fallback).
    pub snapshot_cycle: u64,
    /// True when no snapshot had been retained and the replay fell back
    /// to the reset state.
    pub fallback_reset: bool,
    /// Cycle at which the failure was detected.
    pub at_cycle: u64,
    /// Commit index at which the failure was detected — the anchor a
    /// deterministic re-execution must hit again.
    pub at_commit: u64,
    /// The divergence (diverged jobs only).
    pub error: Option<DiffError>,
    /// Divergence class.
    pub error_class: Option<String>,
    /// The panic message (panicked jobs only).
    pub panic: Option<String>,
    /// The raw litmus exit code — status, first bad round and outcome
    /// packed into hart 0's `a0` (forbidden-outcome jobs only). A
    /// replay must halt with this exact value to count as reproduced.
    pub forbidden_exit: Option<u64>,
    /// Whether the rollback replay reproduced the original failure.
    pub reproduced: bool,
    /// Cycles re-simulated in the debug-mode window.
    pub cycles_replayed: u64,
    /// Debug-mode events captured during the window.
    pub trace_records: u64,
    /// The last committed instructions before the failure.
    pub commit_tail: Vec<CommitTailEntry>,
    /// The always-on lifecycle ring at the failure point: the last
    /// [`xscore::LIFECYCLE_RING_CAP`] finished uops per core, with
    /// per-stage cycle stamps and squash causes. Pure-integer stamps —
    /// deterministic and bounded like everything else in the bundle.
    pub lifecycle_ring: Vec<xscore::Lifecycle>,
    /// CPI stack of the replayed window alone.
    pub window_cpi: CpiStack,
    /// Minimized reproducer, when ddmin ran on the failure.
    pub minimized: Option<MinimizedRepro>,
}

/// Extract the commit-trace tail from a debug-mode trace.
pub fn commit_tail(trace: &ArchDb) -> Vec<CommitTailEntry> {
    let Some(t) = trace.table("instr_commit") else {
        return Vec::new();
    };
    let skip = t.len().saturating_sub(COMMIT_TAIL_LEN);
    t.rows()
        .skip(skip)
        .map(|(cycle, v)| CommitTailEntry {
            cycle: *cycle,
            hart: v.get("hart").and_then(Value::as_u64).unwrap_or(0),
            pc: v.get("pc").and_then(Value::as_u64).unwrap_or(0),
            op: v
                .get("inst")
                .and_then(|i| i.get("op"))
                .map(|op| match op {
                    Value::String(s) => s.clone(),
                    other => other.to_string(),
                })
                .unwrap_or_default(),
            wb: v
                .get("wb")
                .and_then(|w| <Option<(bool, u8, u64)> as serde::Deserialize>::deserialize(w).ok())
                .flatten(),
        })
        .collect()
}

/// The outcome of re-simulating a failure window in debug mode.
struct WindowRun {
    error: Option<DiffError>,
    at_commit: u64,
    at_cycle: u64,
    cycles_replayed: u64,
    window_cpi: CpiStack,
    trace_records: u64,
    tail: Vec<CommitTailEntry>,
    ring: Vec<xscore::Lifecycle>,
}

/// Roll forward from `start` (a snapshot or the reset state) for up to
/// `budget` cycles with commit tracing on.
fn replay_window(start: CoSimState, from_cycle: u64, budget: u64) -> WindowRun {
    let mut cosim = CoSim::debug_resume(start);
    let start_cpi = minjie::PerfSnapshot::collect(&cosim.state.sys).cpi_stack();
    let mut error = None;
    let mut at_commit = 0;
    // A cycle deadline, not a step count: with the event-driven skipper
    // on, one step may consume many idle cycles.
    let deadline = cosim.state.time().saturating_add(budget);
    while cosim.state.time() < deadline {
        if cosim.state.sys.all_halted() {
            break;
        }
        match cosim.step_cycle_until(deadline) {
            Ok(()) => {}
            Err(e) => {
                at_commit = cosim.state.diff.commits_checked;
                error = Some(e);
                break;
            }
        }
    }
    let end_cpi = minjie::PerfSnapshot::collect(&cosim.state.sys).cpi_stack();
    WindowRun {
        error,
        at_commit,
        at_cycle: cosim.state.time(),
        cycles_replayed: cosim.state.time().saturating_sub(from_cycle),
        window_cpi: end_cpi.saturating_sub(&start_cpi),
        trace_records: cosim.archdb.records_inserted(),
        tail: commit_tail(&cosim.archdb),
        ring: cosim
            .state
            .sys
            .cores
            .iter()
            .flat_map(|c| c.lifecycle_ring())
            .collect(),
    }
}

/// The recipe-only skeleton every trigger shares.
fn base_bundle(job_index: u64, spec: &JobSpec, trigger: &str) -> TriageBundle {
    TriageBundle {
        schema_version: BUNDLE_SCHEMA_VERSION,
        job_index,
        workload: spec.workload.describe(),
        source: BundleSource::from_workload(&spec.workload),
        config: spec.config.clone(),
        cores: spec.cores.map(|c| c as u64),
        injected_bug: spec.injected_bug,
        inject_l2_race: spec.inject_l2_race,
        telemetry: spec.telemetry,
        lifecycle: spec.lifecycle,
        max_cycles: spec.max_cycles,
        lightsss_interval: spec.lightsss_interval,
        ref_model: spec.ref_model.clone(),
        trigger: trigger.to_string(),
        snapshot_cycle: 0,
        fallback_reset: true,
        at_cycle: 0,
        at_commit: 0,
        error: None,
        error_class: None,
        panic: None,
        forbidden_exit: None,
        reproduced: false,
        cycles_replayed: 0,
        trace_records: 0,
        commit_tail: Vec::new(),
        lifecycle_ring: Vec::new(),
        window_cpi: CpiStack::default(),
        minimized: None,
    }
}

/// Triage a divergence: prefer the in-run LightSSS replay debrief; when
/// LightSSS was disabled, roll back to the salvaged reset state and
/// re-execute the failing prefix in debug mode.
pub fn triage_divergence(
    job_index: u64,
    spec: &JobSpec,
    bug: &BugReport,
    salvage: Option<Salvage>,
    minimized: Option<MinimizedRepro>,
    lifecycle_ring: Vec<xscore::Lifecycle>,
) -> TriageBundle {
    let mut b = base_bundle(job_index, spec, "diverged");
    b.at_cycle = bug.at_cycle;
    b.at_commit = bug.at_commit;
    b.error = Some(bug.error.clone());
    b.error_class = Some(error_class(&bug.error).to_string());
    b.minimized = minimized;
    // The failing run ended at the divergence, so its always-on ring is
    // already the window right before the failure.
    b.lifecycle_ring = lifecycle_ring;
    match (&bug.replay, salvage) {
        (Some(r), _) => {
            b.snapshot_cycle = r.from_cycle;
            b.fallback_reset = r.fallback_reset;
            b.reproduced = r.reproduced;
            b.cycles_replayed = r.cycles_replayed;
            b.trace_records = r.trace.records_inserted();
            b.commit_tail = commit_tail(&r.trace);
            b.window_cpi = r.window_cpi;
        }
        (None, Some(s)) => {
            let from = s.snapshot_cycle;
            let budget = bug.at_cycle.saturating_sub(from) + REPLAY_SLACK;
            let w = replay_window(s.state, from, budget);
            b.snapshot_cycle = from;
            b.fallback_reset = s.fallback_reset;
            b.reproduced = w.error.as_ref() == Some(&bug.error) && w.at_commit == bug.at_commit;
            b.cycles_replayed = w.cycles_replayed;
            b.trace_records = w.trace_records;
            b.commit_tail = w.tail;
            b.window_cpi = w.window_cpi;
            if b.lifecycle_ring.is_empty() {
                b.lifecycle_ring = w.ring;
            }
        }
        (None, None) => {}
    }
    b
}

/// Triage a cycle-budget timeout: roll back to the salvaged snapshot
/// and re-execute the final window in debug mode, capturing what the
/// pipeline was doing when the budget ran out.
pub fn triage_timeout(
    job_index: u64,
    spec: &JobSpec,
    salvage: Salvage,
    end_cycle: u64,
    commits_checked: u64,
    lifecycle_ring: Vec<xscore::Lifecycle>,
) -> TriageBundle {
    let mut b = base_bundle(job_index, spec, "timeout");
    b.at_cycle = end_cycle;
    b.at_commit = commits_checked;
    b.snapshot_cycle = salvage.snapshot_cycle;
    b.fallback_reset = salvage.fallback_reset;
    b.lifecycle_ring = lifecycle_ring;
    let from = salvage.snapshot_cycle;
    let budget = end_cycle.saturating_sub(from);
    let w = replay_window(salvage.state, from, budget);
    // A timeout "reproduces" when the window replays to the original
    // end cycle without halting or diverging.
    b.reproduced = w.error.is_none() && w.at_cycle == end_cycle;
    b.cycles_replayed = w.cycles_replayed;
    b.trace_records = w.trace_records;
    b.commit_tail = w.tail;
    b.window_cpi = w.window_cpi;
    if b.lifecycle_ring.is_empty() {
        b.lifecycle_ring = w.ring;
    }
    b
}

/// Triage a litmus forbidden outcome: both harts committed cleanly (so
/// there is no divergence point to roll back to — the *final
/// observation set* is what's illegal), so rebuild from reset and
/// re-execute the whole run in debug mode, capturing the commit tail
/// and both harts' lifecycle rings around the racy rounds.
pub fn triage_forbidden(
    job_index: u64,
    spec: &JobSpec,
    exit_code: u64,
    end_cycle: u64,
    commits_checked: u64,
    minimized: Option<MinimizedRepro>,
    lifecycle_ring: Vec<xscore::Lifecycle>,
) -> TriageBundle {
    let mut b = base_bundle(job_index, spec, "forbidden-outcome");
    b.at_cycle = end_cycle;
    b.at_commit = commits_checked;
    b.forbidden_exit = Some(exit_code);
    b.minimized = minimized;
    b.lifecycle_ring = lifecycle_ring;
    let Some(cfg) = spec.build_config() else {
        return b;
    };
    let program = spec.workload.build();
    let boot = catch_unwind(AssertUnwindSafe(|| CoSim::new(cfg, &program).state));
    let Ok(start) = boot else {
        return b;
    };
    let w = replay_window(start, 0, end_cycle.saturating_add(REPLAY_SLACK));
    // The model is deterministic: halting at the original end cycle with
    // no divergence en route is the same run, so the same forbidden
    // observation was committed.
    b.reproduced = w.error.is_none() && w.at_cycle == end_cycle;
    b.cycles_replayed = w.cycles_replayed;
    b.trace_records = w.trace_records;
    b.commit_tail = w.tail;
    b.window_cpi = w.window_cpi;
    if b.lifecycle_ring.is_empty() {
        b.lifecycle_ring = w.ring;
    }
    b
}

/// Triage a panic: the unwound harness left nothing to salvage, so
/// rebuild from reset and step in debug mode inside a per-step panic
/// boundary until the panic strikes again.
pub fn triage_panic(job_index: u64, spec: &JobSpec, message: &str) -> TriageBundle {
    let mut b = base_bundle(job_index, spec, "panicked");
    b.panic = Some(message.to_string());
    let Some(cfg) = spec.build_config() else {
        return b;
    };
    let max_cycles = spec.max_cycles;
    let boot = catch_unwind(AssertUnwindSafe(|| {
        let program = spec.workload.build();
        CoSim::new(cfg, &program).state
    }));
    let Ok(start) = boot else {
        // Boot itself panics: the failure reproduces from cycle 0 with
        // an empty window.
        b.reproduced = true;
        return b;
    };
    let mut cosim = CoSim::debug_resume(start);
    let start_cpi = minjie::PerfSnapshot::collect(&cosim.state.sys).cpi_stack();
    let mut replay_panic = None;
    let deadline = cosim.state.time().saturating_add(max_cycles);
    while cosim.state.time() < deadline {
        if cosim.state.sys.all_halted() {
            break;
        }
        match catch_unwind(AssertUnwindSafe(|| cosim.step_cycle_until(deadline))) {
            Ok(Ok(())) => {}
            // A divergence en route to the panic still ends the window.
            Ok(Err(e)) => {
                b.error = Some(e);
                break;
            }
            Err(payload) => {
                replay_panic = Some(minjie::panic_message(payload));
                break;
            }
        }
    }
    let end_cpi = minjie::PerfSnapshot::collect(&cosim.state.sys).cpi_stack();
    b.at_cycle = cosim.state.time();
    b.at_commit = cosim.state.diff.commits_checked;
    b.reproduced = replay_panic.as_deref() == Some(message);
    b.cycles_replayed = cosim.state.time();
    b.trace_records = cosim.archdb.records_inserted();
    b.commit_tail = commit_tail(&cosim.archdb);
    // The original harness unwound, but the debug replay stopped at the
    // same panic, so its ring is the equivalent pre-failure window.
    b.lifecycle_ring = cosim
        .state
        .sys
        .cores
        .iter()
        .flat_map(|c| c.lifecycle_ring())
        .collect();
    b.window_cpi = end_cpi.saturating_sub(&start_cpi);
    b
}

/// Rebuild the [`JobSpec`] a bundle describes.
pub fn bundle_spec(b: &TriageBundle) -> JobSpec {
    let mut spec = JobSpec::new(b.source.to_workload(), b.config.clone());
    if let Some(cores) = b.cores {
        spec = spec.with_cores(cores as usize);
    }
    if let Some(bug) = b.injected_bug {
        spec = spec.with_injected_bug(bug);
    }
    if b.inject_l2_race {
        spec = spec.with_l2_race();
    }
    spec = spec.with_max_cycles(b.max_cycles);
    if let Some(iv) = b.lightsss_interval {
        spec = spec.with_lightsss(iv);
    }
    if b.telemetry {
        spec = spec.with_telemetry();
    }
    if b.lifecycle {
        spec = spec.with_lifecycle();
    }
    if let Some(r) = &b.ref_model {
        spec = spec.with_ref(r.clone());
    }
    spec
}

/// The outcome of replaying a bundle from scratch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BundleVerification {
    /// The original failure reproduced — same kind, same error, same
    /// commit index.
    pub reproduced: bool,
    /// Commit index the re-execution reached (divergences: where it
    /// diverged; timeouts: commits verified at budget exhaustion).
    pub at_commit: u64,
    /// Human-readable explanation of the outcome.
    pub detail: String,
}

/// Re-execute a bundle's job from reset — using only the recipe inside
/// the bundle — and check that the failure reproduces at the identical
/// commit index.
///
/// # Errors
///
/// Setup failures (an unknown configuration preset) that prevent the
/// run from even starting.
pub fn verify_bundle(b: &TriageBundle) -> Result<BundleVerification, String> {
    let spec = bundle_spec(b);
    let Some(cfg) = spec.build_config() else {
        return Err(format!("unknown configuration preset `{}`", b.config));
    };
    // Sample jobs don't run from reset: re-derive the checkpoint from
    // its recipe and resume the warm-up + window exactly as the runner
    // did.
    if let WorkloadSource::Sample {
        checkpoint,
        warmup,
        window,
        ..
    } = &spec.workload
    {
        let (result, _) = minjie::run_isolated_checkpoint(
            cfg,
            &checkpoint.state,
            &checkpoint.memory,
            *warmup,
            *window,
            b.max_cycles,
            b.lightsss_interval,
        );
        let v = match result {
            Err(message) => BundleVerification {
                reproduced: b.trigger == "panicked" && Some(&message) == b.panic.as_ref(),
                at_commit: 0,
                detail: format!("panicked: {message}"),
            },
            Ok(stats) => match stats.end {
                minjie::SampleEnd::Window | minjie::SampleEnd::Halted(_) => BundleVerification {
                    reproduced: false,
                    at_commit: stats.commits_checked,
                    detail: format!(
                        "sampled cleanly: {} window cycles, {} window instructions",
                        stats.window.window_cycles, stats.window.window_instret
                    ),
                },
                minjie::SampleEnd::OutOfCycles => BundleVerification {
                    reproduced: b.trigger == "timeout"
                        && stats.cycles == b.at_cycle
                        && stats.commits_checked == b.at_commit,
                    at_commit: stats.commits_checked,
                    detail: format!(
                        "cycle budget exhausted at cycle {} after {} commits",
                        stats.cycles, stats.commits_checked
                    ),
                },
                minjie::SampleEnd::Bug(bug) => {
                    let same_error = Some(&bug.error) == b.error.as_ref();
                    let same_commit = bug.at_commit == b.at_commit;
                    BundleVerification {
                        reproduced: b.trigger == "diverged" && same_error && same_commit,
                        at_commit: bug.at_commit,
                        detail: format!(
                            "diverged ({}) at commit {} (bundle: commit {}, error match: {})",
                            error_class(&bug.error),
                            bug.at_commit,
                            b.at_commit,
                            same_error
                        ),
                    }
                }
            },
        };
        return Ok(v);
    }
    let program = spec.workload.build();
    let result = minjie::run_isolated(cfg, &program, b.max_cycles, b.lightsss_interval);
    let v = match result {
        Err(message) => BundleVerification {
            reproduced: b.trigger == "panicked" && Some(&message) == b.panic.as_ref(),
            at_commit: 0,
            detail: format!("panicked: {message}"),
        },
        Ok(stats) => match stats.end {
            CoSimEnd::Halted(code) => {
                let same_exit = b.forbidden_exit == Some(code);
                let same_commit = stats.commits_checked == b.at_commit;
                BundleVerification {
                    reproduced: b.trigger == "forbidden-outcome" && same_exit && same_commit,
                    at_commit: stats.commits_checked,
                    detail: if b.trigger == "forbidden-outcome" {
                        format!(
                            "halted with exit code {code:#x} at commit {} \
                             (bundle: {:#x} at commit {})",
                            stats.commits_checked,
                            b.forbidden_exit.unwrap_or(0),
                            b.at_commit
                        )
                    } else {
                        format!("halted cleanly with exit code {code}")
                    },
                }
            }
            CoSimEnd::OutOfCycles => BundleVerification {
                reproduced: b.trigger == "timeout"
                    && stats.cycles == b.at_cycle
                    && stats.commits_checked == b.at_commit,
                at_commit: stats.commits_checked,
                detail: format!(
                    "cycle budget exhausted at cycle {} after {} commits",
                    stats.cycles, stats.commits_checked
                ),
            },
            CoSimEnd::Bug(bug) => {
                let same_error = Some(&bug.error) == b.error.as_ref();
                let same_commit = bug.at_commit == b.at_commit;
                BundleVerification {
                    reproduced: b.trigger == "diverged" && same_error && same_commit,
                    at_commit: bug.at_commit,
                    detail: format!(
                        "diverged ({}) at commit {} (bundle: commit {}, error match: {})",
                        error_class(&bug.error),
                        bug.at_commit,
                        b.at_commit,
                        same_error
                    ),
                }
            }
        },
    };
    Ok(v)
}

impl TriageBundle {
    /// Render the bundle as a human-readable triage card.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "== triage bundle: job {} ({}) ==\n",
            self.job_index, self.trigger
        ));
        s.push_str(&format!(
            "workload: {}  config: {}  cores: {}\n",
            self.workload,
            self.config,
            self.cores
                .map(|c| c.to_string())
                .unwrap_or_else(|| "(preset)".into()),
        ));
        if let Some(bug) = self.injected_bug {
            s.push_str(&format!("injected bug: {bug:?}\n"));
        }
        s.push_str(&format!(
            "limits: {} cycles, lightsss {}\n",
            self.max_cycles,
            self.lightsss_interval
                .map(|i| format!("every {i}"))
                .unwrap_or_else(|| "off".into()),
        ));
        s.push_str(&format!(
            "failure: cycle {} commit {}\n",
            self.at_cycle, self.at_commit
        ));
        if let Some(e) = &self.error {
            s.push_str(&format!(
                "error [{}]: {e:?}\n",
                self.error_class.as_deref().unwrap_or("?")
            ));
        }
        if let Some(p) = &self.panic {
            s.push_str(&format!("panic: {p}\n"));
        }
        if let Some(x) = self.forbidden_exit {
            s.push_str(&format!(
                "forbidden litmus exit: {x:#x} ({:?})\n",
                workloads::litmus::LitmusExit::decode(x)
            ));
        }
        s.push_str(&format!(
            "rollback: from cycle {}{}, replayed {} cycles, {} trace records, reproduced: {}\n",
            self.snapshot_cycle,
            if self.fallback_reset {
                " (reset-state fallback: failure preceded the first snapshot)"
            } else {
                " (older LightSSS snapshot)"
            },
            self.cycles_replayed,
            self.trace_records,
            self.reproduced,
        ));
        if let Some(m) = &self.minimized {
            s.push_str(&format!(
                "minimized: seed {} kept {}/{} slots ({} runs)\n",
                m.seed, m.minimized_kept, m.original_kept, m.minimizer_runs
            ));
        }
        s.push_str(&minjie::telemetry::render_cpi_stack(
            &self.window_cpi,
            "window CPI stack",
        ));
        if !self.lifecycle_ring.is_empty() {
            s.push_str(&xscore::render_waterfall(&self.lifecycle_ring));
        }
        if !self.commit_tail.is_empty() {
            s.push_str(&format!(
                "commit tail (last {} commits):\n",
                self.commit_tail.len()
            ));
            for e in &self.commit_tail {
                let wb = match e.wb {
                    Some((fp, idx, val)) => {
                        format!("{}{} <- {val:#x}", if fp { "f" } else { "x" }, idx)
                    }
                    None => "-".to_string(),
                };
                s.push_str(&format!(
                    "{:>10} | hart {} pc {:#x} {} {}\n",
                    e.cycle, e.hart, e.pc, e.op, wb
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm::{reg::*, Asm};

    fn mul_bug_spec() -> JobSpec {
        let mut a = Asm::new(0x8000_0000);
        a.li(S0, 3);
        a.li(S1, 5);
        a.mul(A0, S0, S1);
        a.ebreak();
        JobSpec::new(
            WorkloadSource::inline("mulbug", a.assemble()),
            "small-nh",
        )
        .with_injected_bug(InjectedBug::MulLowBit)
        .with_max_cycles(200_000)
        .with_lightsss(1000)
    }

    #[test]
    fn bundle_source_round_trips() {
        let spec = mul_bug_spec();
        let src = BundleSource::from_workload(&spec.workload);
        let back = src.to_workload();
        assert_eq!(back.describe(), spec.workload.describe());
        assert_eq!(back.build().bytes, spec.workload.build().bytes);
    }

    #[test]
    fn divergence_bundle_verifies_at_the_same_commit() {
        let spec = mul_bug_spec();
        let cfg = spec.build_config().unwrap();
        let program = spec.workload.build();
        let (result, salvage) = minjie::run_isolated_salvaging(
            cfg,
            &program,
            spec.max_cycles,
            spec.lightsss_interval,
        );
        let stats = result.expect("no panic");
        let CoSimEnd::Bug(bug) = &stats.end else {
            panic!("expected a divergence, got {:?}", stats.end);
        };
        let bundle = triage_divergence(0, &spec, bug, salvage, None, stats.lifecycle_ring.clone());
        assert_eq!(bundle.trigger, "diverged");
        assert!(bundle.reproduced, "rollback replay reproduces");
        assert_eq!(bundle.error_class.as_deref(), Some("Writeback"));
        assert!(!bundle.commit_tail.is_empty(), "commit tail captured");
        assert!(
            !bundle.lifecycle_ring.is_empty(),
            "lifecycle ring snapshotted at the failure"
        );
        assert!(
            bundle.lifecycle_ring.len() <= xscore::LIFECYCLE_RING_CAP,
            "single-core ring stays within the cap"
        );
        // The bundle alone reproduces the failure at the same commit.
        let v = verify_bundle(&bundle).expect("config resolves");
        assert!(v.reproduced, "{}", v.detail);
        assert_eq!(v.at_commit, bundle.at_commit);
        // Bundles serialize deterministically.
        let j1 = serde_json::to_string(&bundle).unwrap();
        let j2 = serde_json::to_string(&bundle.clone()).unwrap();
        assert_eq!(j1, j2);
        assert!(bundle.render().contains("triage bundle"));
    }

    #[test]
    fn timeout_bundle_replays_the_final_window() {
        // An infinite loop exhausts the cycle budget.
        let mut a = Asm::new(0x8000_0000);
        let top = a.bound_label();
        a.addi(S0, S0, 1);
        a.j(top);
        let spec = JobSpec::new(
            WorkloadSource::inline("spin", a.assemble()),
            "small-nh",
        )
        .with_max_cycles(20_000)
        .with_lightsss(4_000);
        let cfg = spec.build_config().unwrap();
        let program = spec.workload.build();
        let (result, salvage) = minjie::run_isolated_salvaging(
            cfg,
            &program,
            spec.max_cycles,
            spec.lightsss_interval,
        );
        let stats = result.expect("no panic");
        assert!(matches!(stats.end, CoSimEnd::OutOfCycles));
        let salvage = salvage.expect("timeout salvages a rollback point");
        assert!(!salvage.fallback_reset, "snapshots were retained");
        let bundle = triage_timeout(
            0,
            &spec,
            salvage,
            stats.cycles,
            stats.commits_checked,
            stats.lifecycle_ring.clone(),
        );
        assert_eq!(bundle.trigger, "timeout");
        assert!(!bundle.lifecycle_ring.is_empty(), "ring captured at budget exhaustion");
        assert!(bundle.reproduced, "window replays to the same end cycle");
        assert!(bundle.cycles_replayed <= 2 * 4_000 + 4_000);
        let v = verify_bundle(&bundle).expect("config resolves");
        assert!(v.reproduced, "{}", v.detail);
    }

    #[test]
    fn panic_bundle_reproduces_the_message() {
        // An empty image panics in the frontend on the first fetch.
        let spec = JobSpec::new(
            WorkloadSource::inline(
                "bogus",
                Program {
                    base: 0x8000_0000,
                    entry: 0x8000_0000,
                    bytes: Vec::new(),
                },
            ),
            "small-nh",
        )
        .with_max_cycles(10_000);
        let cfg = spec.build_config().unwrap();
        let program = spec.workload.build();
        let result = minjie::run_isolated(cfg, &program, spec.max_cycles, None);
        let Err(message) = result else {
            // The empty image halted instead of panicking on this
            // configuration — nothing to triage.
            return;
        };
        let bundle = triage_panic(0, &spec, &message);
        assert_eq!(bundle.trigger, "panicked");
        assert_eq!(bundle.panic.as_deref(), Some(message.as_str()));
        assert!(bundle.reproduced, "panic message matches on replay");
    }
}
