//! The parallel campaign runner.
//!
//! Shards a job list across a `std::thread` worker pool (no external
//! runtime: a mutex-guarded queue feeds workers, an mpsc channel
//! collects results). Each job runs inside [`minjie::run_isolated`]'s
//! panic boundary, so a crashing simulation downs one job, not the
//! pool. Results reassemble in job order, making the report body
//! independent of worker interleaving.
//!
//! Failed jobs are *triaged*: the runner rolls back to the older
//! retained LightSSS snapshot (or the reset state when the failure
//! preceded the first snapshot interval), re-executes the failure
//! window in debug mode, and embeds a self-contained
//! [`TriageBundle`](crate::TriageBundle) in the job record. An optional
//! wall-clock timeout bounds each attempt, with bounded
//! retry-with-backoff before the job is written off as a
//! [`Verdict::WallTimeout`].

use crate::job::{error_class, JobSpec, WorkloadSource};
use crate::minimize::minimize;
use crate::report::{
    CampaignReport, CampaignSummary, JobRecord, MinimizedRepro, ReplayWindow, SampleRecord,
    Verdict, WallClock,
};
use crate::triage::{triage_divergence, triage_forbidden, triage_panic, triage_timeout};
use minjie::{run_isolated, run_isolated_checkpoint, run_isolated_salvaging, CoSimEnd, SampleEnd};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use workloads::litmus::{LitmusExit, LitmusProgram};
use workloads::TortureProgram;

/// Cycle budget for each minimizer re-run (candidates are subsets of an
/// already-failing program, so they fail — or halt — well within the
/// original budget).
const MINIMIZE_MAX_CYCLES: u64 = 20_000_000;

/// A configured campaign: jobs plus execution policy.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The job list (report order).
    pub jobs: Vec<JobSpec>,
    /// Worker threads.
    pub workers: usize,
    /// Delta-debug diverged torture jobs into minimized reproducers.
    pub minimize_failures: bool,
    /// Triage failed jobs into self-contained replay bundles.
    pub triage: bool,
    /// Per-attempt wall-clock limit applied to every job that does not
    /// carry its own (None disables the limit).
    pub job_wall_timeout_ms: Option<u64>,
    /// Retries after a wall-clock timeout before giving up.
    pub job_retries: u32,
    /// Backoff before the first retry, milliseconds (doubles each
    /// retry).
    pub retry_backoff_ms: u64,
}

/// Execution policy one worker needs (copied into the pool).
#[derive(Clone, Copy)]
struct JobPolicy {
    minimize_failures: bool,
    triage: bool,
    wall_timeout_ms: Option<u64>,
    retries: u32,
    backoff_ms: u64,
}

impl Campaign {
    /// A campaign over `jobs` with default policy (4 workers,
    /// minimization and triage on, no wall-clock limit).
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Campaign {
            jobs,
            workers: 4,
            minimize_failures: true,
            triage: true,
            job_wall_timeout_ms: None,
            job_retries: 1,
            retry_backoff_ms: 50,
        }
    }

    /// Set the worker-thread count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enable or disable failure minimization.
    pub fn with_minimization(mut self, on: bool) -> Self {
        self.minimize_failures = on;
        self
    }

    /// Enable or disable rollback-replay triage of failed jobs.
    pub fn with_triage(mut self, on: bool) -> Self {
        self.triage = on;
        self
    }

    /// Set a per-attempt wall-clock limit for every job.
    pub fn with_job_wall_timeout_ms(mut self, ms: u64) -> Self {
        self.job_wall_timeout_ms = Some(ms);
        self
    }

    /// Set the retry budget after wall-clock timeouts.
    pub fn with_job_retries(mut self, retries: u32) -> Self {
        self.job_retries = retries;
        self
    }

    /// Set the initial retry backoff (doubles each retry).
    pub fn with_retry_backoff_ms(mut self, ms: u64) -> Self {
        self.retry_backoff_ms = ms;
        self
    }

    /// Run every job and assemble the report.
    pub fn run(&self) -> CampaignReport {
        let campaign_start = Instant::now();
        let queue: Arc<Mutex<VecDeque<(usize, JobSpec)>>> =
            Arc::new(Mutex::new(self.jobs.iter().cloned().enumerate().collect()));
        let (tx, rx) = mpsc::channel::<(usize, JobRecord, u64, u64)>();

        std::thread::scope(|s| {
            for _ in 0..self.workers.max(1) {
                let queue = Arc::clone(&queue);
                let tx = tx.clone();
                let policy = JobPolicy {
                    minimize_failures: self.minimize_failures,
                    triage: self.triage,
                    wall_timeout_ms: self.job_wall_timeout_ms,
                    retries: self.job_retries,
                    backoff_ms: self.retry_backoff_ms,
                };
                s.spawn(move || loop {
                    let next = queue.lock().expect("queue lock").pop_front();
                    let Some((idx, spec)) = next else { break };
                    let t0 = Instant::now();
                    let (record, attempts) = execute_job_with_policy(idx, &spec, policy);
                    let ms = t0.elapsed().as_millis() as u64;
                    if tx.send((idx, record, ms, attempts)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut slots: Vec<Option<(JobRecord, u64, u64)>> =
                (0..self.jobs.len()).map(|_| None).collect();
            for (idx, record, ms, attempts) in rx {
                slots[idx] = Some((record, ms, attempts));
            }
            let mut jobs = Vec::with_capacity(slots.len());
            let mut per_job_ms = Vec::with_capacity(slots.len());
            let mut per_job_attempts = Vec::with_capacity(slots.len());
            for slot in slots {
                let (record, ms, attempts) = slot.expect("every job reports exactly once");
                jobs.push(record);
                per_job_ms.push(ms);
                per_job_attempts.push(attempts);
            }
            CampaignReport {
                workers: self.workers.max(1) as u64,
                summary: CampaignSummary::tally(&jobs),
                jobs,
                fuzz: None,
                sampling: Vec::new(),
                wall_clock: WallClock {
                    total_ms: campaign_start.elapsed().as_millis() as u64,
                    per_job_ms,
                    attempts: per_job_attempts,
                },
            }
        })
    }
}

/// The empty record every execution path starts from.
fn base_record(index: usize, spec: &JobSpec) -> JobRecord {
    JobRecord {
        index: index as u64,
        workload: spec.workload.describe(),
        config: spec.config.clone(),
        verdict: Verdict::Timeout,
        cycles: 0,
        commits_checked: 0,
        instret: 0,
        exceptions: 0,
        ipc: 0.0,
        rule_counts: Vec::new(),
        replay: None,
        minimized: None,
        triage: None,
        perf: minjie::PerfSnapshot::default(),
        coverage: None,
        sample: None,
    }
}

/// Run one job under the wall-clock policy: each attempt executes on a
/// dedicated thread; an attempt exceeding the limit is abandoned (the
/// runaway thread is detached — its result, if any, is discarded) and
/// retried after an exponentially growing backoff. Returns the record
/// and the number of attempts made.
fn execute_job_with_policy(index: usize, spec: &JobSpec, policy: JobPolicy) -> (JobRecord, u64) {
    let limit_ms = match spec.wall_timeout_ms.or(policy.wall_timeout_ms) {
        Some(ms) => ms,
        None => return (execute_job(index, spec, policy), 1),
    };
    let max_attempts = 1 + u64::from(policy.retries);
    let mut backoff = policy.backoff_ms;
    for attempt in 1..=max_attempts {
        let (tx, rx) = mpsc::channel();
        let spec_for_attempt = spec.clone();
        std::thread::spawn(move || {
            let _ = tx.send(execute_job(index, &spec_for_attempt, policy));
        });
        match rx.recv_timeout(Duration::from_millis(limit_ms)) {
            Ok(record) => return (record, attempt),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if attempt == max_attempts {
                    break;
                }
                std::thread::sleep(Duration::from_millis(backoff));
                backoff = backoff.saturating_mul(2);
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The attempt thread died without reporting — treat like
                // a contained panic (execute_job itself never panics, so
                // this is a thread-infrastructure failure).
                let mut record = base_record(index, spec);
                record.verdict = Verdict::Panicked {
                    message: "job attempt thread terminated without a result".into(),
                };
                return (record, attempt);
            }
        }
    }
    let mut record = base_record(index, spec);
    record.verdict = Verdict::WallTimeout {
        limit_ms,
        attempts: max_attempts,
    };
    (record, max_attempts)
}

/// Run one job to a deterministic record.
fn execute_job(index: usize, spec: &JobSpec, policy: JobPolicy) -> JobRecord {
    let mut record = base_record(index, spec);
    let Some(cfg) = spec.build_config() else {
        record.verdict = Verdict::Panicked {
            message: format!("unknown configuration preset `{}`", spec.config),
        };
        return record;
    };
    if let WorkloadSource::Sample {
        checkpoint,
        warmup,
        window,
        ..
    } = &spec.workload
    {
        return execute_sample_job(record, spec, cfg, checkpoint, *warmup, *window, policy);
    }
    let program = spec.workload.build();
    let (result, salvage) =
        run_isolated_salvaging(cfg, &program, spec.max_cycles, spec.lightsss_interval);
    match result {
        Err(message) => {
            if policy.triage {
                record.triage = Some(triage_panic(index as u64, spec, &message));
            }
            record.verdict = Verdict::Panicked { message };
        }
        Ok(stats) => {
            record.cycles = stats.cycles;
            record.commits_checked = stats.commits_checked;
            record.instret = stats.instret;
            record.exceptions = stats.exceptions;
            record.ipc = if stats.cycles > 0 {
                (stats.instret as f64 / stats.cycles as f64 * 1000.0).round() / 1000.0
            } else {
                0.0
            };
            record.rule_counts = stats.rule_counts;
            record.perf = stats.perf;
            record.coverage = stats.coverage;
            record.verdict = match stats.end {
                CoSimEnd::Halted(exit_code) => match litmus_forbidden(spec, exit_code) {
                    Some(exit) => {
                        if policy.minimize_failures {
                            record.minimized = minimize_litmus_failure(spec);
                        }
                        if policy.triage {
                            record.triage = Some(triage_forbidden(
                                index as u64,
                                spec,
                                exit_code,
                                stats.cycles,
                                stats.commits_checked,
                                record.minimized.clone(),
                                stats.lifecycle_ring,
                            ));
                        }
                        Verdict::ForbiddenOutcome {
                            round: exit.first_bad_round as u64,
                            outcome: exit.first_bad_outcome as u64,
                            outcome_desc: LitmusExit::describe_outcome(exit.first_bad_outcome),
                            exit_code,
                        }
                    }
                    None => Verdict::Halted { exit_code },
                },
                CoSimEnd::OutOfCycles => {
                    if policy.triage {
                        if let Some(s) = salvage {
                            record.triage = Some(triage_timeout(
                                index as u64,
                                spec,
                                s,
                                stats.cycles,
                                stats.commits_checked,
                                stats.lifecycle_ring,
                            ));
                        }
                    }
                    Verdict::Timeout
                }
                CoSimEnd::Bug(bug) => {
                    record.replay = bug.replay.as_ref().map(|r| ReplayWindow {
                        from_cycle: r.from_cycle,
                        fallback_reset: r.fallback_reset,
                        at_cycle: bug.at_cycle,
                        at_commit: r.at_commit,
                        cycles_replayed: r.cycles_replayed,
                        reproduced: r.reproduced,
                        trace_records: r.trace.records_inserted(),
                    });
                    if policy.minimize_failures {
                        record.minimized = minimize_torture_failure(spec, &bug.error);
                    }
                    if policy.triage {
                        record.triage = Some(triage_divergence(
                            index as u64,
                            spec,
                            &bug,
                            salvage,
                            record.minimized.clone(),
                            stats.lifecycle_ring,
                        ));
                    }
                    Verdict::Diverged { error: bug.error }
                }
            };
        }
    }
    record
}

/// Run one sample job: restore the checkpoint, retire the warm-up, then
/// measure the detailed window under DiffTest. Verification machinery
/// (panic isolation, LightSSS salvage, triage bundles, lifecycle rings)
/// applies exactly as for reset-state jobs.
#[allow(clippy::too_many_arguments)]
fn execute_sample_job(
    mut record: JobRecord,
    spec: &JobSpec,
    cfg: xscore::XsConfig,
    checkpoint: &checkpoint::Checkpoint,
    warmup: u64,
    window: u64,
    policy: JobPolicy,
) -> JobRecord {
    let index = record.index;
    let (result, salvage) = run_isolated_checkpoint(
        cfg,
        &checkpoint.state,
        &checkpoint.memory,
        warmup,
        window,
        spec.max_cycles,
        spec.lightsss_interval,
    );
    match result {
        Err(message) => {
            if policy.triage {
                record.triage = Some(triage_panic(index, spec, &message));
            }
            record.verdict = Verdict::Panicked { message };
        }
        Ok(stats) => {
            record.cycles = stats.cycles;
            record.commits_checked = stats.commits_checked;
            record.instret = stats.instret;
            record.exceptions = stats.exceptions;
            record.ipc = if stats.cycles > 0 {
                (stats.instret as f64 / stats.cycles as f64 * 1000.0).round() / 1000.0
            } else {
                0.0
            };
            record.rule_counts = stats.rule_counts;
            record.perf = stats.perf;
            record.coverage = stats.coverage;
            let w = &stats.window;
            let cpi_milli = if w.window_instret > 0 {
                w.window_cycles.saturating_mul(1000) / w.window_instret
            } else {
                0
            };
            record.sample = Some(SampleRecord {
                interval: checkpoint.interval as u64,
                members: checkpoint.members,
                total_intervals: checkpoint.total_intervals,
                checkpoint_instret: checkpoint.instret,
                warmup_cycles: w.warmup_cycles,
                warmup_instret: w.warmup_instret,
                window_cycles: w.window_cycles,
                window_instret: w.window_instret,
                cpi_milli,
                cpi_stack: w.cpi.clone(),
                completed_window: matches!(stats.end, SampleEnd::Window),
                halted: match stats.end {
                    SampleEnd::Halted(code) => Some(code),
                    _ => None,
                },
            });
            record.verdict = match stats.end {
                SampleEnd::Window => Verdict::Sampled { cpi_milli },
                // A halt inside the window still measured something; a
                // halt inside the warm-up measured nothing and reports
                // as an ordinary clean halt.
                SampleEnd::Halted(exit_code) => {
                    if w.window_instret > 0 {
                        Verdict::Sampled { cpi_milli }
                    } else {
                        Verdict::Halted { exit_code }
                    }
                }
                SampleEnd::OutOfCycles => {
                    if policy.triage {
                        if let Some(s) = salvage {
                            record.triage = Some(triage_timeout(
                                index,
                                spec,
                                s,
                                stats.cycles,
                                stats.commits_checked,
                                stats.lifecycle_ring,
                            ));
                        }
                    }
                    Verdict::Timeout
                }
                SampleEnd::Bug(bug) => {
                    record.replay = bug.replay.as_ref().map(|r| ReplayWindow {
                        from_cycle: r.from_cycle,
                        fallback_reset: r.fallback_reset,
                        at_cycle: bug.at_cycle,
                        at_commit: r.at_commit,
                        cycles_replayed: r.cycles_replayed,
                        reproduced: r.reproduced,
                        trace_records: r.trace.records_inserted(),
                    });
                    if policy.triage {
                        record.triage = Some(triage_divergence(
                            index,
                            spec,
                            &bug,
                            salvage,
                            None,
                            stats.lifecycle_ring,
                        ));
                    }
                    Verdict::Diverged { error: bug.error }
                }
            };
        }
    }
    record
}

/// Delta-debug a diverged torture job down to a minimized reproducer.
///
/// Non-torture workloads return `None`: kernels and inline programs
/// have no seed-derived slot structure to shrink.
fn minimize_torture_failure(spec: &JobSpec, error: &minjie::DiffError) -> Option<MinimizedRepro> {
    let WorkloadSource::Torture { seed, cfg, keep } = &spec.workload else {
        return None;
    };
    let class = error_class(error);
    let t = TortureProgram::generate(*seed, cfg);
    let initial = keep.clone().unwrap_or_else(|| vec![true; t.len()]);
    let budget = spec.max_cycles.min(MINIMIZE_MAX_CYCLES);
    let outcome = minimize(&initial, |mask| {
        let program = t.emit_subset(mask);
        let Some(job_cfg) = spec.build_config() else {
            return false;
        };
        matches!(
            run_isolated(job_cfg, &program, budget, None),
            Ok(minjie::RunStats {
                end: CoSimEnd::Bug(b),
                ..
            }) if error_class(&b.error) == class
        )
    });
    let original_kept = initial.iter().filter(|&&k| k).count() as u64;
    Some(MinimizedRepro {
        seed: *seed,
        torture: Some(*cfg),
        litmus: None,
        kept: outcome
            .kept
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| i as u64)
            .collect(),
        original_kept,
        minimized_kept: outcome.kept_count() as u64,
        error_class: class.to_string(),
        minimizer_runs: outcome.runs,
    })
}

/// Decode a halted job's exit code as a litmus verdict: `Some` when the
/// workload is a litmus program and it reported a forbidden outcome.
fn litmus_forbidden(spec: &JobSpec, exit_code: u64) -> Option<LitmusExit> {
    let WorkloadSource::Litmus { .. } = &spec.workload else {
        return None;
    };
    let exit = LitmusExit::decode(exit_code);
    exit.forbidden().then_some(exit)
}

/// Delta-debug a forbidden-outcome litmus job down to the smallest
/// round subset that still commits an illegal observation.
fn minimize_litmus_failure(spec: &JobSpec) -> Option<MinimizedRepro> {
    let WorkloadSource::Litmus { seed, cfg, keep } = &spec.workload else {
        return None;
    };
    let p = LitmusProgram::generate(*seed, cfg);
    let initial = keep.clone().unwrap_or_else(|| vec![true; p.len()]);
    let budget = spec.max_cycles.min(MINIMIZE_MAX_CYCLES);
    let outcome = minimize(&initial, |mask| {
        let program = p.emit_subset(mask);
        let Some(job_cfg) = spec.build_config() else {
            return false;
        };
        matches!(
            run_isolated(job_cfg, &program, budget, None),
            Ok(minjie::RunStats {
                end: CoSimEnd::Halted(code),
                ..
            }) if LitmusExit::decode(code).forbidden()
        )
    });
    let original_kept = initial.iter().filter(|&&k| k).count() as u64;
    Some(MinimizedRepro {
        seed: *seed,
        torture: None,
        litmus: Some(*cfg),
        kept: outcome
            .kept
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| i as u64)
            .collect(),
        original_kept,
        minimized_kept: outcome.kept_count() as u64,
        error_class: "ForbiddenOutcome".to_string(),
        minimizer_runs: outcome.runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkloadSource;
    use workloads::TortureConfig;

    fn quick_torture() -> TortureConfig {
        TortureConfig {
            body_len: 30,
            iterations: 4,
            ..Default::default()
        }
    }

    #[test]
    fn small_parallel_campaign_completes_in_order() {
        let jobs: Vec<JobSpec> = (0..6)
            .map(|seed| {
                JobSpec::new(WorkloadSource::torture(seed, quick_torture()), "small-nh")
                    .with_max_cycles(4_000_000)
            })
            .collect();
        let report = Campaign::new(jobs).with_workers(3).run();
        assert_eq!(report.jobs.len(), 6);
        assert_eq!(report.summary.total, 6);
        assert_eq!(report.summary.halted, 6, "{}", report.deterministic_json());
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.index, i as u64, "records must be in job order");
            assert!(j.cycles > 0 && j.ipc > 0.0);
            assert!(j.triage.is_none(), "healthy jobs carry no bundle");
        }
        assert_eq!(report.wall_clock.per_job_ms.len(), 6);
        assert_eq!(report.wall_clock.attempts, vec![1; 6]);
    }

    #[test]
    fn unknown_preset_is_a_contained_failure() {
        let jobs = vec![JobSpec::new(
            WorkloadSource::torture(0, quick_torture()),
            "not-a-preset",
        )];
        let report = Campaign::new(jobs).run();
        assert_eq!(report.summary.panicked, 1);
        assert!(matches!(
            &report.jobs[0].verdict,
            Verdict::Panicked { message } if message.contains("not-a-preset")
        ));
    }

    #[test]
    fn wall_clock_timeout_exhausts_retries() {
        // A long torture run cannot finish within 1 ms: every attempt
        // times out and the job is written off as WallTimeout. Attempt
        // counts land in the timing section only.
        let slow = TortureConfig {
            body_len: 200,
            iterations: 50_000,
            ..Default::default()
        };
        let jobs = vec![JobSpec::new(WorkloadSource::torture(0, slow), "small-nh")
            .with_max_cycles(200_000_000)];
        let report = Campaign::new(jobs)
            .with_workers(1)
            .with_minimization(false)
            .with_job_wall_timeout_ms(1)
            .with_job_retries(1)
            .with_retry_backoff_ms(1)
            .run();
        assert_eq!(report.summary.timeout, 1, "{}", report.deterministic_json());
        match &report.jobs[0].verdict {
            Verdict::WallTimeout { limit_ms, attempts } => {
                assert_eq!(*limit_ms, 1);
                assert_eq!(*attempts, 2, "1 try + 1 retry");
            }
            other => panic!("expected WallTimeout, got {other:?}"),
        }
        assert_eq!(report.wall_clock.attempts, vec![2]);
        // Measured wall-clock data never reaches the deterministic body
        // (the WallTimeout verdict's fields are configuration values).
        assert!(!report.deterministic_json().contains("per_job_ms"));
    }

    #[test]
    fn generous_wall_clock_limit_does_not_disturb_results() {
        let jobs = vec![
            JobSpec::new(WorkloadSource::torture(1, quick_torture()), "small-nh")
                .with_max_cycles(4_000_000),
        ];
        let report = Campaign::new(jobs)
            .with_workers(1)
            .with_job_wall_timeout_ms(120_000)
            .run();
        assert_eq!(report.summary.halted, 1, "{}", report.deterministic_json());
        assert_eq!(report.wall_clock.attempts, vec![1]);
    }
}
