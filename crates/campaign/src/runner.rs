//! The parallel campaign runner.
//!
//! Shards a job list across a `std::thread` worker pool (no external
//! runtime: a mutex-guarded queue feeds workers, an mpsc channel
//! collects results). Each job runs inside [`minjie::run_isolated`]'s
//! panic boundary, so a crashing simulation downs one job, not the
//! pool. Results reassemble in job order, making the report body
//! independent of worker interleaving.

use crate::job::{error_class, JobSpec, WorkloadSource};
use crate::minimize::minimize;
use crate::report::{
    CampaignReport, CampaignSummary, JobRecord, MinimizedRepro, ReplayWindow, Verdict, WallClock,
};
use minjie::{run_isolated, CoSimEnd};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use workloads::TortureProgram;

/// Cycle budget for each minimizer re-run (candidates are subsets of an
/// already-failing program, so they fail — or halt — well within the
/// original budget).
const MINIMIZE_MAX_CYCLES: u64 = 20_000_000;

/// A configured campaign: jobs plus execution policy.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The job list (report order).
    pub jobs: Vec<JobSpec>,
    /// Worker threads.
    pub workers: usize,
    /// Delta-debug diverged torture jobs into minimized reproducers.
    pub minimize_failures: bool,
}

impl Campaign {
    /// A campaign over `jobs` with default policy (4 workers,
    /// minimization on).
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Campaign {
            jobs,
            workers: 4,
            minimize_failures: true,
        }
    }

    /// Set the worker-thread count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enable or disable failure minimization.
    pub fn with_minimization(mut self, on: bool) -> Self {
        self.minimize_failures = on;
        self
    }

    /// Run every job and assemble the report.
    pub fn run(&self) -> CampaignReport {
        let campaign_start = Instant::now();
        let queue: Arc<Mutex<VecDeque<(usize, JobSpec)>>> =
            Arc::new(Mutex::new(self.jobs.iter().cloned().enumerate().collect()));
        let (tx, rx) = mpsc::channel::<(usize, JobRecord, u64)>();

        std::thread::scope(|s| {
            for _ in 0..self.workers.max(1) {
                let queue = Arc::clone(&queue);
                let tx = tx.clone();
                let minimize_failures = self.minimize_failures;
                s.spawn(move || loop {
                    let next = queue.lock().expect("queue lock").pop_front();
                    let Some((idx, spec)) = next else { break };
                    let t0 = Instant::now();
                    let record = execute_job(idx, &spec, minimize_failures);
                    let ms = t0.elapsed().as_millis() as u64;
                    if tx.send((idx, record, ms)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            let mut slots: Vec<Option<(JobRecord, u64)>> = (0..self.jobs.len()).map(|_| None).collect();
            for (idx, record, ms) in rx {
                slots[idx] = Some((record, ms));
            }
            let mut jobs = Vec::with_capacity(slots.len());
            let mut per_job_ms = Vec::with_capacity(slots.len());
            for slot in slots {
                let (record, ms) = slot.expect("every job reports exactly once");
                jobs.push(record);
                per_job_ms.push(ms);
            }
            CampaignReport {
                workers: self.workers.max(1) as u64,
                summary: CampaignSummary::tally(&jobs),
                jobs,
                wall_clock: WallClock {
                    total_ms: campaign_start.elapsed().as_millis() as u64,
                    per_job_ms,
                },
            }
        })
    }
}

/// Run one job to a deterministic record.
fn execute_job(index: usize, spec: &JobSpec, minimize_failures: bool) -> JobRecord {
    let mut record = JobRecord {
        index: index as u64,
        workload: spec.workload.describe(),
        config: spec.config.clone(),
        verdict: Verdict::Timeout,
        cycles: 0,
        commits_checked: 0,
        instret: 0,
        exceptions: 0,
        ipc: 0.0,
        rule_counts: Vec::new(),
        replay: None,
        minimized: None,
        perf: minjie::PerfSnapshot::default(),
    };
    let Some(cfg) = spec.build_config() else {
        record.verdict = Verdict::Panicked {
            message: format!("unknown configuration preset `{}`", spec.config),
        };
        return record;
    };
    let program = spec.workload.build();
    match run_isolated(cfg, &program, spec.max_cycles, spec.lightsss_interval) {
        Err(message) => record.verdict = Verdict::Panicked { message },
        Ok(stats) => {
            record.cycles = stats.cycles;
            record.commits_checked = stats.commits_checked;
            record.instret = stats.instret;
            record.exceptions = stats.exceptions;
            record.ipc = if stats.cycles > 0 {
                (stats.instret as f64 / stats.cycles as f64 * 1000.0).round() / 1000.0
            } else {
                0.0
            };
            record.rule_counts = stats.rule_counts;
            record.perf = stats.perf;
            record.verdict = match stats.end {
                CoSimEnd::Halted(exit_code) => Verdict::Halted { exit_code },
                CoSimEnd::OutOfCycles => Verdict::Timeout,
                CoSimEnd::Bug(bug) => {
                    record.replay = bug.replay.as_ref().map(|r| ReplayWindow {
                        from_cycle: r.from_cycle,
                        at_cycle: bug.at_cycle,
                        cycles_replayed: r.cycles_replayed,
                        reproduced: r.reproduced,
                        trace_records: r.trace.records_inserted(),
                    });
                    if minimize_failures {
                        record.minimized = minimize_torture_failure(spec, &bug.error);
                    }
                    Verdict::Diverged { error: bug.error }
                }
            };
        }
    }
    record
}

/// Delta-debug a diverged torture job down to a minimized reproducer.
///
/// Non-torture workloads return `None`: kernels and inline programs
/// have no seed-derived slot structure to shrink.
fn minimize_torture_failure(spec: &JobSpec, error: &minjie::DiffError) -> Option<MinimizedRepro> {
    let WorkloadSource::Torture { seed, cfg, keep } = &spec.workload else {
        return None;
    };
    let class = error_class(error);
    let t = TortureProgram::generate(*seed, cfg);
    let initial = keep.clone().unwrap_or_else(|| vec![true; t.len()]);
    let budget = spec.max_cycles.min(MINIMIZE_MAX_CYCLES);
    let outcome = minimize(&initial, |mask| {
        let program = t.emit_subset(mask);
        let Some(job_cfg) = spec.build_config() else {
            return false;
        };
        matches!(
            run_isolated(job_cfg, &program, budget, None),
            Ok(minjie::RunStats {
                end: CoSimEnd::Bug(b),
                ..
            }) if error_class(&b.error) == class
        )
    });
    let original_kept = initial.iter().filter(|&&k| k).count() as u64;
    Some(MinimizedRepro {
        seed: *seed,
        torture: *cfg,
        kept: outcome
            .kept
            .iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| i as u64)
            .collect(),
        original_kept,
        minimized_kept: outcome.kept_count() as u64,
        error_class: class.to_string(),
        minimizer_runs: outcome.runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::WorkloadSource;
    use workloads::TortureConfig;

    fn quick_torture() -> TortureConfig {
        TortureConfig {
            body_len: 30,
            iterations: 4,
            ..Default::default()
        }
    }

    #[test]
    fn small_parallel_campaign_completes_in_order() {
        let jobs: Vec<JobSpec> = (0..6)
            .map(|seed| {
                JobSpec::new(WorkloadSource::torture(seed, quick_torture()), "small-nh")
                    .with_max_cycles(4_000_000)
            })
            .collect();
        let report = Campaign::new(jobs).with_workers(3).run();
        assert_eq!(report.jobs.len(), 6);
        assert_eq!(report.summary.total, 6);
        assert_eq!(report.summary.halted, 6, "{}", report.deterministic_json());
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.index, i as u64, "records must be in job order");
            assert!(j.cycles > 0 && j.ipc > 0.0);
        }
        assert_eq!(report.wall_clock.per_job_ms.len(), 6);
    }

    #[test]
    fn unknown_preset_is_a_contained_failure() {
        let jobs = vec![JobSpec::new(
            WorkloadSource::torture(0, quick_torture()),
            "not-a-preset",
        )];
        let report = Campaign::new(jobs).run();
        assert_eq!(report.summary.panicked, 1);
        assert!(matches!(
            &report.jobs[0].verdict,
            Verdict::Panicked { message } if message.contains("not-a-preset")
        ));
    }
}
