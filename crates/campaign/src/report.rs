//! Machine-readable campaign reports.
//!
//! A report has two parts: a *deterministic body* (schema, summary,
//! per-job records — identical bytes for identical job lists and seeds,
//! regardless of worker interleaving) and a segregated *timing section*
//! (wall-clock measurements, which legitimately vary run to run).
//! [`CampaignReport::deterministic_json`] renders only the body;
//! [`CampaignReport::full_json`] appends the timing section under the
//! `"timing"` key.

use crate::coverage::FuzzSummary;
use crate::triage::TriageBundle;
use minjie::{CoverageMap, DiffError, PerfSnapshot};
use serde::{Deserialize, Serialize};
use serde_json::{Map, Value};
use workloads::litmus::LitmusConfig;
use workloads::TortureConfig;

/// Report schema version (bump on breaking shape changes).
/// v2: triage bundles embedded per job, replay windows carry the
/// reset-fallback flag and commit anchor, wall-clock timeout verdict.
/// v3: per-job coverage maps (coverage-gated jobs) and the top-level
/// `fuzz` section describing a coverage-guided campaign's rounds.
/// v4: per-instruction lifecycle digest embedded in every job's perf
/// snapshot (gap histograms, squash causes, dominant-stall counts), and
/// triage bundles carry the crash-ring lifecycle snapshot (bundle
/// schema v3).
/// v5: multi-hart litmus jobs — the `ForbiddenOutcome` verdict with its
/// summary tally, minimized reproducers carry an optional litmus recipe
/// alongside the torture one, and coverage maps grow the `mp:` family
/// (bundle schema v4).
/// v6: SimPoint sampling — the `Sampled` verdict with its summary
/// tally, per-job `sample` records (warm-up/window phase counters and
/// the window CPI stack, all integer milli-units), and the top-level
/// `sampling` section aggregating weighted CPI per workload ×
/// configuration (bundle schema v5: sample recipes).
pub const SCHEMA_VERSION: u64 = 6;

/// How one job ended.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Verdict {
    /// The program ran to completion under DiffTest.
    Halted {
        /// Exit code (hart 0's `a0` at `ebreak`).
        exit_code: u64,
    },
    /// DiffTest reported a DUT/REF divergence.
    Diverged {
        /// The divergence.
        error: DiffError,
    },
    /// A litmus program halted reporting an observation outside the
    /// shape's allowed set — a memory-model violation both harts
    /// committed architecturally (so per-hart DiffTest stayed clean).
    ForbiddenOutcome {
        /// First round whose outcome was forbidden.
        round: u64,
        /// The forbidden outcome index (see
        /// `LitmusExit::describe_outcome`).
        outcome: u64,
        /// Human-readable outcome, e.g. `"r1=1 r2=0"`.
        outcome_desc: String,
        /// The raw litmus exit code (hart 0's `a0`).
        exit_code: u64,
    },
    /// A sample job measured its detailed window cleanly (checkpoint
    /// restored, warm-up retired, window verified under DiffTest).
    Sampled {
        /// Window CPI in milli-units (`window_cycles × 1000 /
        /// window_instret`) — integer, so the deterministic-body
        /// property is preserved.
        cpi_milli: u64,
    },
    /// The cycle budget ran out.
    Timeout,
    /// The simulation panicked (caught at the job boundary).
    Panicked {
        /// The panic payload.
        message: String,
    },
    /// The job exceeded its wall-clock budget on every attempt. The
    /// recorded fields are configuration values, so the record stays
    /// deterministic for a given campaign policy; whether this verdict
    /// occurs at all necessarily depends on machine speed.
    WallTimeout {
        /// Per-attempt wall-clock limit, milliseconds.
        limit_ms: u64,
        /// Attempts made (1 + configured retries).
        attempts: u64,
    },
}

impl Verdict {
    /// Short label for summaries and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Halted { .. } => "halted",
            Verdict::Diverged { .. } => "diverged",
            Verdict::ForbiddenOutcome { .. } => "forbidden-outcome",
            Verdict::Sampled { .. } => "sampled",
            Verdict::Timeout => "timeout",
            Verdict::Panicked { .. } => "panicked",
            Verdict::WallTimeout { .. } => "wall-timeout",
        }
    }
}

/// The LightSSS replay debrief attached to a divergence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayWindow {
    /// Cycle of the snapshot the replay restarted from (0 for the
    /// reset-state fallback).
    pub from_cycle: u64,
    /// True when no snapshot had been retained yet and the replay fell
    /// back to the reset state.
    pub fallback_reset: bool,
    /// Cycle at which the divergence was originally detected.
    pub at_cycle: u64,
    /// Commit index at which the replay reproduced the divergence (0
    /// when it did not reproduce).
    pub at_commit: u64,
    /// Cycles re-simulated in debug mode.
    pub cycles_replayed: u64,
    /// Whether the error reproduced identically.
    pub reproduced: bool,
    /// Debug-mode events captured during the replay.
    pub trace_records: u64,
}

/// A minimized failing generated program: `(seed, cfg, kept)` rebuilds
/// it exactly via `emit_subset` on the matching generator. Exactly one
/// of `torture`/`litmus` is set.
///
/// [`TortureProgram::emit_subset`]: workloads::TortureProgram::emit_subset
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinimizedRepro {
    /// Generator seed.
    pub seed: u64,
    /// Generator knobs (torture jobs).
    pub torture: Option<TortureConfig>,
    /// Generator knobs (litmus jobs; `kept` indexes rounds).
    pub litmus: Option<LitmusConfig>,
    /// Kept body-slot indices after minimization.
    pub kept: Vec<u64>,
    /// Kept-slot count before minimization.
    pub original_kept: u64,
    /// Kept-slot count after minimization.
    pub minimized_kept: u64,
    /// The divergence class the reproducer preserves.
    pub error_class: String,
    /// CoSim re-runs the minimizer spent.
    pub minimizer_runs: u64,
}

/// The per-phase measurements of one sample job (pure integers, so the
/// deterministic-body property is preserved).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Interval index the checkpoint sits at.
    pub interval: u64,
    /// Intervals this checkpoint represents (the exact integer weight
    /// numerator from clustering).
    pub members: u64,
    /// Total intervals profiled (the weight denominator).
    pub total_intervals: u64,
    /// Instructions the profiler had retired at the checkpoint.
    pub checkpoint_instret: u64,
    /// Warm-up phase: cycles spent.
    pub warmup_cycles: u64,
    /// Warm-up phase: instructions retired.
    pub warmup_instret: u64,
    /// Measured window: cycles spent.
    pub window_cycles: u64,
    /// Measured window: instructions retired.
    pub window_instret: u64,
    /// Window CPI, milli-units (0 when the window retired nothing).
    pub cpi_milli: u64,
    /// Window CPI stack (issue-slot attribution deltas over the window;
    /// components sum to `window_cycles × commit_width`).
    pub cpi_stack: xscore::CpiStack,
    /// True when the full window budget was measured; false when the
    /// program halted inside the warm-up or window.
    pub completed_window: bool,
    /// Exit code, when the program halted during the job.
    pub halted: Option<u64>,
}

/// One job's deterministic record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// Position in the campaign's job list.
    pub index: u64,
    /// Workload label (see `WorkloadSource::describe`).
    pub workload: String,
    /// Configuration preset slug.
    pub config: String,
    /// How the job ended.
    pub verdict: Verdict,
    /// Cycles simulated.
    pub cycles: u64,
    /// Commits DiffTest verified.
    pub commits_checked: u64,
    /// Instructions retired (summed over harts).
    pub instret: u64,
    /// Architectural exceptions taken (summed over harts).
    pub exceptions: u64,
    /// Instructions per cycle, rounded to 3 decimals.
    pub ipc: f64,
    /// Diff-rule applications (name, count), sorted by name.
    pub rule_counts: Vec<(String, u64)>,
    /// Replay debrief (divergences with LightSSS enabled).
    pub replay: Option<ReplayWindow>,
    /// Minimized reproducer (diverged torture jobs only).
    pub minimized: Option<MinimizedRepro>,
    /// Self-contained rollback-replay bundle (failed jobs when triage is
    /// enabled): everything `replay --bundle` needs to reproduce the
    /// failure at the identical commit index.
    pub triage: Option<TriageBundle>,
    /// Cross-layer performance snapshot (integer counters only, so the
    /// deterministic-body property is preserved).
    pub perf: PerfSnapshot,
    /// Coverage map (jobs run with `JobSpec::with_coverage` only);
    /// pure-integer, so the deterministic-body property is preserved.
    pub coverage: Option<CoverageMap>,
    /// Per-phase sampling measurements (sample jobs only).
    pub sample: Option<SampleRecord>,
}

/// Verdict tallies over a whole campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignSummary {
    /// Jobs run.
    pub total: u64,
    /// Jobs that halted cleanly.
    pub halted: u64,
    /// Jobs on which DiffTest diverged.
    pub diverged: u64,
    /// Litmus jobs that committed a forbidden outcome.
    pub forbidden: u64,
    /// Sample jobs that measured their window cleanly.
    pub sampled: u64,
    /// Jobs that exhausted their cycle budget.
    pub timeout: u64,
    /// Jobs that panicked.
    pub panicked: u64,
}

impl CampaignSummary {
    /// Tally the verdicts of `jobs`.
    pub fn tally(jobs: &[JobRecord]) -> Self {
        let mut s = CampaignSummary {
            total: jobs.len() as u64,
            ..Default::default()
        };
        for j in jobs {
            match j.verdict {
                Verdict::Halted { .. } => s.halted += 1,
                Verdict::Diverged { .. } => s.diverged += 1,
                Verdict::ForbiddenOutcome { .. } => s.forbidden += 1,
                Verdict::Sampled { .. } => s.sampled += 1,
                Verdict::Timeout | Verdict::WallTimeout { .. } => s.timeout += 1,
                Verdict::Panicked { .. } => s.panicked += 1,
            }
        }
        s
    }
}

/// One phase's contribution to a [`SamplingSummary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingPhase {
    /// The sample job's index in the campaign's job list.
    pub job_index: u64,
    /// Interval index of the checkpoint.
    pub interval: u64,
    /// Intervals this phase represents (integer weight numerator).
    pub members: u64,
    /// Measured window CPI, milli-units.
    pub cpi_milli: u64,
}

/// Weighted-CPI aggregation over one workload × configuration — the
/// `sampling` section of the report body. All integer milli-units; the
/// weighted mean is computed with exact integer arithmetic
/// (`checkpoint::weighted_cpi_milli`), so the section is
/// permutation-invariant and byte-identical across same-seed runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingSummary {
    /// Workload label, e.g. `"kernel:sjeng"`.
    pub workload: String,
    /// Configuration preset slug.
    pub config: String,
    /// Profiling personality that produced the checkpoints.
    pub ref_model: String,
    /// Profiling interval length, instructions.
    pub interval_len: u64,
    /// Total intervals profiled.
    pub total_intervals: u64,
    /// Total dynamic instructions profiled.
    pub total_instructions: u64,
    /// Checkpoints simulated.
    pub checkpoints: u64,
    /// Checkpoints whose windows contributed to the weighted mean.
    pub aggregated: u64,
    /// SimPoint-weighted CPI estimate, milli-units.
    pub weighted_cpi_milli: u64,
    /// Per-checkpoint phases, interval order.
    pub phases: Vec<SamplingPhase>,
}

/// Wall-clock measurements — segregated from the deterministic body.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WallClock {
    /// Campaign wall time, milliseconds.
    pub total_ms: u64,
    /// Per-job wall time, milliseconds, in job order.
    pub per_job_ms: Vec<u64>,
    /// Attempts each job took (retry-with-backoff policy), in job
    /// order. Lives here, not in the body: attempt counts depend on
    /// machine speed, exactly like the timings they accompany.
    pub attempts: Vec<u64>,
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Worker threads used.
    pub workers: u64,
    /// Verdict tallies.
    pub summary: CampaignSummary,
    /// Per-job records, in job order.
    pub jobs: Vec<JobRecord>,
    /// Coverage-guided fuzzing summary (fuzz campaigns only) — part of
    /// the deterministic body.
    pub fuzz: Option<FuzzSummary>,
    /// Weighted-CPI aggregations (sampling campaigns only) — part of
    /// the deterministic body; the key is omitted when empty.
    pub sampling: Vec<SamplingSummary>,
    /// Wall-clock measurements (excluded from the deterministic body).
    pub wall_clock: WallClock,
}

impl CampaignReport {
    fn body_value(&self) -> Value {
        let to_value = |v: &dyn serde::Serialize| v.serialize();
        let mut m = Map::new();
        m.insert("schema_version".into(), to_value(&SCHEMA_VERSION));
        m.insert("workers".into(), to_value(&self.workers));
        m.insert("summary".into(), to_value(&self.summary));
        m.insert("jobs".into(), to_value(&self.jobs));
        if let Some(fuzz) = &self.fuzz {
            m.insert("fuzz".into(), to_value(fuzz));
        }
        if !self.sampling.is_empty() {
            m.insert("sampling".into(), to_value(&self.sampling));
        }
        Value::Object(m)
    }

    /// The deterministic body: byte-identical across runs of the same
    /// campaign, independent of worker scheduling.
    pub fn deterministic_json(&self) -> String {
        serde_json::to_string_pretty(&self.body_value()).expect("report body serializes")
    }

    /// The full report: deterministic body plus the `"timing"` section.
    pub fn full_json(&self) -> String {
        let mut v = self.body_value();
        if let Value::Object(m) = &mut v {
            m.insert("timing".into(), serde::Serialize::serialize(&self.wall_clock));
        }
        serde_json::to_string_pretty(&v).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: u64, verdict: Verdict) -> JobRecord {
        JobRecord {
            index,
            workload: "kernel:mcf".into(),
            config: "small-nh".into(),
            verdict,
            cycles: 1000,
            commits_checked: 500,
            instret: 700,
            exceptions: 0,
            ipc: 0.7,
            rule_counts: vec![("ScFailure".into(), 1)],
            replay: None,
            minimized: None,
            triage: None,
            perf: PerfSnapshot::default(),
            coverage: None,
            sample: None,
        }
    }

    #[test]
    fn timing_is_segregated_from_the_deterministic_body() {
        let mut r = CampaignReport {
            workers: 4,
            summary: CampaignSummary::tally(&[record(0, Verdict::Timeout)]),
            jobs: vec![record(0, Verdict::Timeout)],
            fuzz: None,
            sampling: Vec::new(),
            wall_clock: WallClock {
                total_ms: 123,
                per_job_ms: vec![123],
                attempts: vec![1],
            },
        };
        let det1 = r.deterministic_json();
        r.wall_clock.total_ms = 9999; // a different run's timing
        let det2 = r.deterministic_json();
        assert_eq!(det1, det2, "wall clock must not leak into the body");
        assert!(!det1.contains("timing"));
        assert!(r.full_json().contains("\"timing\""));
        assert!(r.full_json().contains("9999"));
    }

    #[test]
    fn report_json_parses_back() {
        let r = CampaignReport {
            workers: 2,
            summary: CampaignSummary::tally(&[]),
            jobs: vec![record(
                0,
                Verdict::Halted { exit_code: 42 },
            )],
            fuzz: None,
            sampling: Vec::new(),
            wall_clock: WallClock::default(),
        };
        let v: Value = serde_json::from_str(&r.full_json()).expect("valid JSON");
        assert_eq!(v["schema_version"], SCHEMA_VERSION);
        assert_eq!(v["jobs"][0]["workload"], "kernel:mcf");
    }

    #[test]
    fn sampling_section_appears_only_when_present() {
        let mut r = CampaignReport {
            workers: 1,
            summary: CampaignSummary::tally(&[]),
            jobs: Vec::new(),
            fuzz: None,
            sampling: Vec::new(),
            wall_clock: WallClock::default(),
        };
        assert!(!r.deterministic_json().contains("\"sampling\""));
        r.sampling.push(SamplingSummary {
            workload: "kernel:sjeng".into(),
            config: "small-nh".into(),
            ref_model: "nemu-trace".into(),
            interval_len: 5000,
            total_intervals: 8,
            total_instructions: 39_000,
            checkpoints: 2,
            aggregated: 2,
            weighted_cpi_milli: 1042,
            phases: vec![SamplingPhase {
                job_index: 0,
                interval: 3,
                members: 5,
                cpi_milli: 1042,
            }],
        });
        let det = r.deterministic_json();
        assert!(det.contains("\"sampling\""));
        assert!(det.contains("\"weighted_cpi_milli\": 1042"));
    }

    #[test]
    fn sampled_verdicts_tally_separately() {
        let jobs = vec![
            record(0, Verdict::Sampled { cpi_milli: 1100 }),
            record(1, Verdict::Sampled { cpi_milli: 900 }),
            record(2, Verdict::Halted { exit_code: 0 }),
        ];
        let s = CampaignSummary::tally(&jobs);
        assert_eq!(s.sampled, 2);
        assert_eq!(s.halted, 1);
        assert_eq!(jobs[0].verdict.label(), "sampled");
    }
}
