//! Coverage-guided fuzzing over the campaign runner.
//!
//! The fuzzer evolves a corpus of [`Recipe`]s — torture-generator
//! `(seed, knobs, kept-mask, config)` quadruples, the same complete
//! reproducers the rest of the stack already speaks. Each round it runs
//! a batch of recipes with coverage maps enabled, absorbs their
//! features into the campaign [`CoverageSet`], admits every recipe
//! that produced novel coverage, and seeds the next round with
//! deterministic mutations of the highest-novelty corpus entries plus
//! a few fresh exploration recipes.
//!
//! Everything is a pure function of [`FuzzOpts`]: mutation seeds are
//! `mix(fuzz_seed, round, slot)`, scheduling sorts by recorded novelty,
//! and the runner already reassembles records in job order — so two
//! runs of the same fuzz campaign produce byte-identical report bodies.
//! Divergences flow through the existing minimize/triage pipeline
//! unchanged; a fuzz-found bug yields the same [`TriageBundle`] a
//! matrix campaign would.
//!
//! [`TriageBundle`]: crate::TriageBundle

use crate::coverage::{minimize_corpus, CoverageSet, FuzzRound, FuzzSummary};
use crate::job::{JobSpec, WorkloadSource};
use crate::report::{CampaignReport, CampaignSummary, WallClock};
use crate::runner::Campaign;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use workloads::litmus::{LitmusConfig, LitmusProgram, LitmusShape};
use workloads::{TortureConfig, TortureProgram};
use xscore::InjectedBug;

/// Salt mixed into litmus recipe seeds so a litmus recipe and a torture
/// recipe sharing a slot seed still draw independent knob streams.
const LITMUS_SALT: u64 = 0x11a7_b05e_ed0c_ab1e;

/// One corpus entry: a complete, serializable workload reproducer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recipe {
    /// Torture-generator seed.
    pub seed: u64,
    /// Generator knobs.
    pub cfg: TortureConfig,
    /// Kept-mask over the abstract body slots (None keeps every slot).
    pub keep: Option<Vec<bool>>,
    /// Configuration preset slug the recipe runs on.
    pub config: String,
    /// When set, this is a two-hart litmus recipe: `seed` feeds the
    /// litmus generator, these knobs replace `cfg`, and `keep` masks
    /// rounds instead of body slots. The job runs dual-core.
    pub litmus: Option<LitmusConfig>,
}

/// Fuzz-campaign options. Everything that influences the report body
/// lives here, so a `FuzzOpts` value is a complete reproducer of a
/// fuzz campaign's deterministic output.
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    /// Rounds to run.
    pub rounds: u64,
    /// Recipes per round.
    pub jobs_per_round: usize,
    /// Campaign-level seed every derived seed mixes in.
    pub fuzz_seed: u64,
    /// Configuration presets, rotated across fresh recipes.
    pub configs: Vec<String>,
    /// Worker threads.
    pub workers: usize,
    /// Per-job cycle budget (fuzz jobs are deliberately short).
    pub max_cycles: u64,
    /// LightSSS snapshot interval (None disables snapshots).
    pub lightsss_interval: Option<u64>,
    /// Deliberate DUT corruption (verification-flow tests only).
    pub injected_bug: Option<InjectedBug>,
    /// Delta-debug diverged recipes into minimized reproducers.
    pub minimize: bool,
    /// Triage failed jobs into self-contained replay bundles.
    pub triage: bool,
    /// Stream full lifecycle traces on every job (the crash ring is
    /// captured regardless).
    pub lifecycle: bool,
    /// DiffTest REF personality for every job (None keeps the default
    /// architectural stepper).
    pub ref_model: Option<String>,
    /// Mix two-hart litmus recipes into the exploration stream (the
    /// `mp:` coverage family then steers exploitation toward
    /// coherence-event novelty).
    pub mp: bool,
    /// Arm the §IV-C L2 probe/grant race fault on every job
    /// (verification-flow tests only).
    pub inject_l2_race: bool,
}

impl FuzzOpts {
    /// Default policy: 2 rounds of 8 jobs on `small-nh`, 4 workers,
    /// 6 M cycles per job, minimization and triage on.
    pub fn new(fuzz_seed: u64) -> Self {
        FuzzOpts {
            rounds: 2,
            jobs_per_round: 8,
            fuzz_seed,
            configs: vec!["small-nh".into()],
            workers: 4,
            max_cycles: 6_000_000,
            lightsss_interval: None,
            injected_bug: None,
            minimize: true,
            triage: true,
            lifecycle: false,
            ref_model: None,
            mp: false,
            inject_l2_race: false,
        }
    }
}

/// A finished fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The campaign report (all rounds' jobs in order, `fuzz` section
    /// populated).
    pub report: CampaignReport,
    /// The minimized corpus: recipes that still jointly hold every
    /// covered feature (greedy set cover).
    pub corpus: Vec<Recipe>,
    /// The accumulated coverage.
    pub coverage: CoverageSet,
}

/// SplitMix64 — the standard 64-bit finalizer, used to derive
/// per-(round, slot) seeds from the campaign seed.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic per-slot seed: a pure function of the campaign
/// seed, the round, and the slot.
pub fn mix(fuzz_seed: u64, round: u64, slot: u64) -> u64 {
    splitmix(splitmix(fuzz_seed ^ round.wrapping_mul(0x517c_c1b7_2722_0a95)) ^ slot)
}

/// A fresh exploration recipe: knobs drawn from `seed` so different
/// slots explore different generator regimes (with/without memory ops,
/// branches, muldiv, compressed).
pub fn fresh_recipe(seed: u64, config: &str) -> Recipe {
    let mut rng = StdRng::seed_from_u64(splitmix(seed));
    let cfg = TortureConfig {
        body_len: rng.gen_range(24usize..=64),
        iterations: rng.gen_range(4i64..=10),
        memory_ops: rng.gen_bool(0.8),
        branches: rng.gen_bool(0.8),
        muldiv: rng.gen_bool(0.8),
        compressed: rng.gen_bool(0.3),
    }
    .clamped();
    Recipe {
        seed,
        cfg,
        keep: None,
        config: config.into(),
        litmus: None,
    }
}

/// A fresh two-hart litmus exploration recipe: shape, fencing, and
/// round knobs drawn from `seed` so different slots cover different
/// corners of the shape × fence matrix.
pub fn fresh_litmus_recipe(seed: u64, config: &str) -> Recipe {
    let mut rng = StdRng::seed_from_u64(splitmix(seed ^ LITMUS_SALT));
    let shape = LitmusShape::ALL[rng.gen_range(0..LitmusShape::ALL.len())];
    let litmus = LitmusConfig {
        shape,
        fenced: rng.gen_bool(0.5),
        rounds: rng.gen_range(2usize..=6),
        filler: rng.gen_range(0usize..=6),
        lrsc_iters: rng.gen_range(2usize..=6),
    }
    .clamped();
    Recipe {
        seed,
        cfg: TortureConfig::default(),
        keep: None,
        config: config.into(),
        litmus: Some(litmus),
    }
}

/// Deterministically mutate a recipe: same `(recipe, mutation_seed)`,
/// same result. Mutations that change the seed or the body shape reset
/// the kept-mask (its length would no longer match the regenerated
/// body); mask flips regenerate the body to size the mask correctly,
/// so every mutant emits a valid, decodable program.
pub fn mutate_recipe(r: &Recipe, mutation_seed: u64) -> Recipe {
    if r.litmus.is_some() {
        return mutate_litmus_recipe(r, mutation_seed);
    }
    let mut rng = StdRng::seed_from_u64(mutation_seed);
    let mut out = r.clone();
    match rng.gen_range(0u32..6) {
        // Reseed: a new program under the same knobs.
        0 => {
            out.seed = rng.gen();
            out.keep = None;
        }
        // Flip 1..=4 kept-mask bits.
        1 => {
            let len = TortureProgram::generate(out.seed, &out.cfg).len();
            let mut mask = out
                .keep
                .take()
                .filter(|m| m.len() == len)
                .unwrap_or_else(|| vec![true; len]);
            if len > 0 {
                for _ in 0..rng.gen_range(1usize..=4) {
                    let i = rng.gen_range(0..len);
                    mask[i] = !mask[i];
                }
            }
            out.keep = Some(mask);
        }
        // Grow or shrink the loop body.
        2 => {
            let delta = rng.gen_range(1usize..=24);
            out.cfg.body_len = if rng.gen_bool(0.5) {
                out.cfg.body_len.saturating_add(delta)
            } else {
                out.cfg.body_len.saturating_sub(delta)
            };
            out.keep = None;
        }
        // Tweak the trip count (body shape unchanged: mask survives).
        3 => {
            let delta = rng.gen_range(1i64..=6);
            out.cfg.iterations = if rng.gen_bool(0.5) {
                out.cfg.iterations.saturating_add(delta)
            } else {
                out.cfg.iterations.saturating_sub(delta)
            };
        }
        // Toggle one instruction-mix knob.
        4 => {
            match rng.gen_range(0u32..4) {
                0 => out.cfg.memory_ops = !out.cfg.memory_ops,
                1 => out.cfg.branches = !out.cfg.branches,
                2 => out.cfg.muldiv = !out.cfg.muldiv,
                _ => out.cfg.compressed = !out.cfg.compressed,
            }
            out.keep = None;
        }
        // Combined jump: reseed and flip the compressed regime.
        _ => {
            out.seed = splitmix(out.seed ^ mutation_seed);
            out.cfg.compressed = !out.cfg.compressed;
            out.keep = None;
        }
    }
    out.cfg = out.cfg.clamped();
    out
}

/// The litmus half of [`mutate_recipe`]: hop shapes, toggle fencing,
/// grow or shrink the round count, jitter the filler window, or reseed
/// — the knobs that move the race timing and the coherence traffic mix.
fn mutate_litmus_recipe(r: &Recipe, mutation_seed: u64) -> Recipe {
    let mut rng = StdRng::seed_from_u64(mutation_seed ^ LITMUS_SALT);
    let mut out = r.clone();
    let mut l = out.litmus.expect("litmus recipe");
    match rng.gen_range(0u32..6) {
        // Reseed: new filler draws and FenceTorture serializers under
        // the same knobs.
        0 => {
            out.seed = rng.gen();
            out.keep = None;
        }
        // Flip 1..=2 kept-round bits.
        1 => {
            let len = LitmusProgram::generate(out.seed, &l).len();
            let mut mask = out
                .keep
                .take()
                .filter(|m| m.len() == len)
                .unwrap_or_else(|| vec![true; len]);
            if len > 0 {
                for _ in 0..rng.gen_range(1usize..=2) {
                    let i = rng.gen_range(0..len);
                    mask[i] = !mask[i];
                }
            }
            out.keep = Some(mask);
        }
        // Hop to another shape.
        2 => {
            l.shape = LitmusShape::ALL[rng.gen_range(0..LitmusShape::ALL.len())];
            out.keep = None;
        }
        // Toggle fencing (round count unchanged: the mask survives).
        3 => l.fenced = !l.fenced,
        // Grow or shrink the round count.
        4 => {
            let delta = rng.gen_range(1usize..=2);
            l.rounds = if rng.gen_bool(0.5) {
                l.rounds.saturating_add(delta)
            } else {
                l.rounds.saturating_sub(delta)
            };
            out.keep = None;
        }
        // Jitter the race timing: filler and LR/SC contention knobs.
        _ => {
            l.filler = rng.gen_range(0usize..=8);
            l.lrsc_iters = rng.gen_range(1usize..=8);
            out.keep = None;
        }
    }
    out.litmus = Some(l.clamped());
    out
}

/// The job a recipe runs as (coverage maps always on).
fn job_spec(r: &Recipe, opts: &FuzzOpts) -> JobSpec {
    let workload = match r.litmus {
        Some(cfg) => WorkloadSource::Litmus {
            seed: r.seed,
            cfg,
            keep: r.keep.clone(),
        },
        None => WorkloadSource::Torture {
            seed: r.seed,
            cfg: r.cfg,
            keep: r.keep.clone(),
        },
    };
    let mut spec = JobSpec::new(workload, r.config.clone())
        .with_max_cycles(opts.max_cycles)
        .with_coverage();
    if r.litmus.is_some() {
        // Litmus programs are two-hart by construction.
        spec = spec.with_cores(2);
    }
    if opts.inject_l2_race {
        spec = spec.with_l2_race();
    }
    if let Some(iv) = opts.lightsss_interval {
        spec = spec.with_lightsss(iv);
    }
    if let Some(bug) = opts.injected_bug {
        spec = spec.with_injected_bug(bug);
    }
    if opts.lifecycle {
        spec = spec.with_lifecycle();
    }
    if let Some(r) = &opts.ref_model {
        spec = spec.with_ref(r.clone());
    }
    spec
}

/// Plan one round's recipes: round 0 (or an empty corpus) is pure
/// exploration; later rounds spend ~3/4 of their slots mutating the
/// highest-novelty corpus entries and the rest on fresh exploration.
fn plan_round(opts: &FuzzOpts, round: u64, corpus: &[(Recipe, Vec<(String, u8)>, u64)]) -> Vec<Recipe> {
    let slots = opts.jobs_per_round.max(1);
    let config_for = |slot: usize| opts.configs[slot % opts.configs.len()].as_str();
    // With `--mp` on, every other fresh slot explores a litmus recipe;
    // exploitation below is shape-agnostic, so litmus entries earn
    // mutation slots exactly as far as their `mp:` novelty carries them.
    let fresh = |slot: usize, seed: u64| {
        if opts.mp && slot % 2 == 1 {
            fresh_litmus_recipe(seed, config_for(slot))
        } else {
            fresh_recipe(seed, config_for(slot))
        }
    };
    let mut recipes = Vec::with_capacity(slots);
    if round == 0 || corpus.is_empty() {
        for slot in 0..slots {
            let seed = mix(opts.fuzz_seed, round, slot as u64);
            recipes.push(fresh(slot, seed));
        }
        return recipes;
    }
    // Priority: novelty at admission (desc), then admission order —
    // the scheduler of the tentpole, and fully deterministic.
    let mut order: Vec<usize> = (0..corpus.len()).collect();
    order.sort_by(|&a, &b| corpus[b].2.cmp(&corpus[a].2).then(a.cmp(&b)));
    let exploit = slots - slots / 4;
    for slot in 0..slots {
        let mseed = mix(opts.fuzz_seed, round, slot as u64);
        if slot < exploit {
            let parent = &corpus[order[slot % order.len()]].0;
            recipes.push(mutate_recipe(parent, mseed));
        } else {
            recipes.push(fresh(slot, mseed));
        }
    }
    recipes
}

/// Run a coverage-guided fuzz campaign.
///
/// # Panics
///
/// Panics when `opts.configs` is empty.
pub fn run_fuzz(opts: &FuzzOpts) -> FuzzOutcome {
    assert!(!opts.configs.is_empty(), "fuzz needs at least one config preset");
    let mut coverage = CoverageSet::default();
    let mut corpus: Vec<(Recipe, Vec<(String, u8)>, u64)> = Vec::new();
    let mut all_jobs = Vec::new();
    let mut rounds = Vec::new();
    let mut wall = WallClock::default();
    for round in 0..opts.rounds {
        let recipes = plan_round(opts, round, &corpus);
        let specs = recipes.iter().map(|r| job_spec(r, opts)).collect();
        let report = Campaign::new(specs)
            .with_workers(opts.workers)
            .with_minimization(opts.minimize)
            .with_triage(opts.triage)
            .run();
        let jobs_this_round = report.jobs.len() as u64;
        let mut new_features = 0;
        for (recipe, mut job) in recipes.into_iter().zip(report.jobs) {
            let feats = job
                .coverage
                .as_ref()
                .map(|c| c.features())
                .unwrap_or_default();
            let novelty = coverage.absorb_features(&feats);
            new_features += novelty;
            if novelty > 0 {
                corpus.push((recipe, feats, novelty));
            }
            let index = all_jobs.len() as u64;
            job.index = index;
            if let Some(bundle) = &mut job.triage {
                bundle.job_index = index;
            }
            all_jobs.push(job);
        }
        wall.total_ms += report.wall_clock.total_ms;
        wall.per_job_ms.extend(report.wall_clock.per_job_ms);
        wall.attempts.extend(report.wall_clock.attempts);
        rounds.push(FuzzRound {
            round,
            jobs: jobs_this_round,
            new_features,
            cumulative_features: coverage.len() as u64,
            corpus_size: corpus.len() as u64,
        });
    }
    // Shrink the corpus to a set-cover of the accumulated coverage:
    // recipes made redundant by later discoveries are dropped, recipes
    // uniquely holding a feature never are.
    let kept = minimize_corpus(&corpus.iter().map(|(_, f, _)| f.clone()).collect::<Vec<_>>());
    let corpus: Vec<Recipe> = kept.into_iter().map(|i| corpus[i].0.clone()).collect();
    let report = CampaignReport {
        workers: opts.workers.max(1) as u64,
        summary: CampaignSummary::tally(&all_jobs),
        jobs: all_jobs,
        fuzz: Some(FuzzSummary {
            fuzz_seed: opts.fuzz_seed,
            rounds,
            total_features: coverage.len() as u64,
        }),
        sampling: Vec::new(),
        wall_clock: wall,
    };
    FuzzOutcome {
        report,
        corpus,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_a_pure_function() {
        assert_eq!(mix(7, 1, 3), mix(7, 1, 3));
        assert_ne!(mix(7, 1, 3), mix(7, 1, 4));
        assert_ne!(mix(7, 1, 3), mix(7, 2, 3));
        assert_ne!(mix(7, 1, 3), mix(8, 1, 3));
    }

    #[test]
    fn fresh_and_mutated_recipes_are_deterministic() {
        let fresh = fresh_recipe(42, "small-nh");
        assert_eq!(fresh, fresh_recipe(42, "small-nh"));
        for mseed in 0..32 {
            let a = mutate_recipe(&fresh, mseed);
            assert_eq!(a, mutate_recipe(&fresh, mseed));
        }
    }

    #[test]
    fn every_mutation_emits_a_valid_program() {
        // The structural half of the proptest satellite: a mutant's
        // kept-mask always matches its regenerated body, so emission
        // cannot panic and the program is well-formed.
        let mut r = fresh_recipe(3, "small-nh");
        for mseed in 0..64 {
            r = mutate_recipe(&r, mseed);
            let t = TortureProgram::generate(r.seed, &r.cfg);
            let program = match &r.keep {
                Some(mask) => {
                    assert_eq!(mask.len(), t.len(), "mask tracks the body");
                    t.emit_subset(mask)
                }
                None => t.emit(),
            };
            assert!(!program.bytes.is_empty());
        }
    }

    #[test]
    fn litmus_recipes_are_deterministic_and_mutants_stay_valid() {
        let fresh = fresh_litmus_recipe(42, "small-nh");
        assert_eq!(fresh, fresh_litmus_recipe(42, "small-nh"));
        assert!(fresh.litmus.is_some());
        let mut r = fresh;
        for mseed in 0..64 {
            r = mutate_recipe(&r, mseed);
            let l = r.litmus.expect("litmus mutations stay litmus");
            let p = LitmusProgram::generate(r.seed, &l);
            let program = match &r.keep {
                Some(mask) => {
                    assert_eq!(mask.len(), p.len(), "mask tracks the rounds");
                    p.emit_subset(mask)
                }
                None => p.emit(),
            };
            assert!(!program.bytes.is_empty());
        }
    }

    #[test]
    fn mp_round_planning_interleaves_litmus_recipes() {
        let mut opts = FuzzOpts::new(5);
        opts.mp = true;
        opts.jobs_per_round = 8;
        let recipes = plan_round(&opts, 0, &[]);
        let litmus = recipes.iter().filter(|r| r.litmus.is_some()).count();
        assert_eq!(litmus, 4, "every other fresh slot is a litmus recipe");
        // The spec a litmus recipe runs as is dual-core.
        let spec = job_spec(&recipes[1], &opts);
        assert_eq!(spec.cores, Some(2));
        assert!(!spec.inject_l2_race);
        opts.inject_l2_race = true;
        assert!(job_spec(&recipes[1], &opts).inject_l2_race);
    }

    #[test]
    fn tiny_fuzz_campaign_grows_coverage_and_stays_deterministic() {
        let mut opts = FuzzOpts::new(11);
        opts.rounds = 2;
        opts.jobs_per_round = 3;
        opts.workers = 2;
        opts.max_cycles = 3_000_000;
        opts.minimize = false;
        opts.triage = false;
        let a = run_fuzz(&opts);
        let b = run_fuzz(&opts);
        assert_eq!(
            a.report.deterministic_json(),
            b.report.deterministic_json(),
            "fuzz report bodies must be byte-identical"
        );
        let fuzz = a.report.fuzz.as_ref().expect("fuzz section present");
        assert_eq!(fuzz.rounds.len(), 2);
        assert!(fuzz.rounds[0].new_features > 0);
        assert!(
            fuzz.rounds[1].cumulative_features > fuzz.rounds[0].cumulative_features,
            "coverage must grow round-over-round: {fuzz:?}"
        );
        assert_eq!(fuzz.total_features, a.coverage.len() as u64);
        assert!(!a.corpus.is_empty());
        // Job records were re-indexed globally.
        for (i, j) in a.report.jobs.iter().enumerate() {
            assert_eq!(j.index, i as u64);
            assert!(j.coverage.is_some(), "fuzz jobs carry coverage maps");
        }
    }
}
