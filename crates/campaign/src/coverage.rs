//! Campaign-side coverage accounting: the accumulated feature set a
//! fuzz scheduler steers by, the per-round fuzz summary embedded in the
//! deterministic report body, and greedy corpus minimization.
//!
//! A *feature* is a `(key, bucket)` pair produced by
//! [`CoverageMap::features`] — e.g. `("op:Mulw", 3)` or
//! `("rule:sc-failure", 1)`. The [`CoverageSet`] keeps the highest
//! bucket seen per key; a recipe is *novel* when it produces a key the
//! set has never seen, or a known key at a strictly higher bucket.

use minjie::CoverageMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The accumulated coverage of a fuzz campaign: feature key → highest
/// log2 bucket observed. BTreeMap keeps serialization order stable.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageSet {
    features: BTreeMap<String, u8>,
}

impl CoverageSet {
    /// Distinct feature keys seen.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when nothing has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// How many of `feats` are novel (new key, or strictly higher
    /// bucket), without mutating the set.
    pub fn novelty(&self, feats: &[(String, u8)]) -> u64 {
        feats
            .iter()
            .filter(|(k, b)| self.features.get(k).is_none_or(|&seen| *b > seen))
            .count() as u64
    }

    /// Absorb `feats`, returning how many were novel.
    pub fn absorb_features(&mut self, feats: &[(String, u8)]) -> u64 {
        let mut novel = 0;
        for (k, b) in feats {
            match self.features.get_mut(k) {
                None => {
                    self.features.insert(k.clone(), *b);
                    novel += 1;
                }
                Some(seen) if *b > *seen => {
                    *seen = *b;
                    novel += 1;
                }
                Some(_) => {}
            }
        }
        novel
    }

    /// Absorb a run's coverage map, returning how many features were
    /// novel.
    pub fn absorb(&mut self, map: &CoverageMap) -> u64 {
        self.absorb_features(&map.features())
    }

    /// The feature keys and buckets, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &u8)> {
        self.features.iter()
    }
}

/// One fuzz round's deterministic accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FuzzRound {
    /// Round index (0-based).
    pub round: u64,
    /// Jobs run this round.
    pub jobs: u64,
    /// Features first seen (or first seen at a higher bucket) this
    /// round.
    pub new_features: u64,
    /// Total distinct feature keys after this round.
    pub cumulative_features: u64,
    /// Corpus size after admitting this round's novel recipes.
    pub corpus_size: u64,
}

/// The fuzz section of a campaign report — pure integers, so the
/// deterministic-body property is preserved.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FuzzSummary {
    /// The campaign-level fuzz seed every derived seed mixes in.
    pub fuzz_seed: u64,
    /// Per-round accounting, in round order.
    pub rounds: Vec<FuzzRound>,
    /// Total distinct feature keys covered.
    pub total_features: u64,
}

/// Greedy set-cover corpus minimization: returns the (sorted) indices
/// of a subset of `features` whose union — key → max bucket — equals
/// the union of all entries. A recipe that uniquely holds any feature
/// (or uniquely holds its highest bucket) is therefore never dropped.
pub fn minimize_corpus(features: &[Vec<(String, u8)>]) -> Vec<usize> {
    let mut kept: Vec<usize> = Vec::new();
    let mut covered = CoverageSet::default();
    loop {
        let mut best: Option<(usize, u64)> = None;
        for (i, feats) in features.iter().enumerate() {
            if kept.contains(&i) {
                continue;
            }
            let gain = covered.novelty(feats);
            if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let Some((i, _)) = best else { break };
        covered.absorb_features(&features[i]);
        kept.push(i);
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(pairs: &[(&str, u8)]) -> Vec<(String, u8)> {
        pairs.iter().map(|(k, b)| (k.to_string(), *b)).collect()
    }

    #[test]
    fn absorb_counts_new_keys_and_higher_buckets() {
        let mut set = CoverageSet::default();
        assert_eq!(set.absorb_features(&feats(&[("op:Add", 2), ("op:Mul", 1)])), 2);
        // Same features again: nothing novel.
        assert_eq!(set.absorb_features(&feats(&[("op:Add", 2), ("op:Mul", 1)])), 0);
        // Higher bucket on a known key is novel; lower is not.
        assert_eq!(set.absorb_features(&feats(&[("op:Add", 5), ("op:Mul", 1)])), 1);
        assert_eq!(set.absorb_features(&feats(&[("op:Add", 3)])), 0);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn novelty_is_a_dry_run_of_absorb() {
        let mut set = CoverageSet::default();
        set.absorb_features(&feats(&[("a", 2)]));
        let probe = feats(&[("a", 3), ("b", 1)]);
        assert_eq!(set.novelty(&probe), 2);
        assert_eq!(set.len(), 1, "novelty must not mutate");
        assert_eq!(set.absorb_features(&probe), 2);
    }

    #[test]
    fn minimization_preserves_the_coverage_union() {
        let corpus = vec![
            feats(&[("a", 1), ("b", 1)]),
            feats(&[("a", 1)]), // subset of 0 — droppable
            feats(&[("c", 4)]), // unique key — must survive
            feats(&[("b", 7)]), // unique highest bucket of b — must survive
        ];
        let kept = minimize_corpus(&corpus);
        assert!(kept.contains(&2), "unique key dropped: {kept:?}");
        assert!(kept.contains(&3), "unique max bucket dropped: {kept:?}");
        assert!(!kept.contains(&1), "redundant recipe kept: {kept:?}");
        let mut full = CoverageSet::default();
        let mut min = CoverageSet::default();
        for f in &corpus {
            full.absorb_features(f);
        }
        for &i in &kept {
            min.absorb_features(&corpus[i]);
        }
        assert_eq!(full, min);
    }

    #[test]
    fn minimizing_an_empty_corpus_is_empty() {
        assert!(minimize_corpus(&[]).is_empty());
        assert!(minimize_corpus(&[Vec::new()]).is_empty());
    }
}
