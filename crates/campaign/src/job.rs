//! Job specifications: what one campaign slot runs.

use minjie::DiffError;
use riscv_isa::asm::Program;
use workloads::litmus::{LitmusConfig, LitmusProgram};
use workloads::{Scale, TortureConfig, TortureProgram};
use xscore::{InjectedBug, XsConfig};

/// Where a job's program comes from.
///
/// Everything here is *recipe*, not bytes: a job re-derives its program
/// on the worker, so specs stay cheap to clone across threads and a
/// `(seed, config, mask)` triple in a report is a complete reproducer.
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// A named SPEC-like kernel (built at [`Scale::Test`]).
    Kernel {
        /// Kernel name, e.g. `"sjeng"`.
        name: String,
    },
    /// A torture program regenerated from its seed, optionally with a
    /// kept-mask over the abstract body slots.
    Torture {
        /// Generator seed.
        seed: u64,
        /// Generator knobs.
        cfg: TortureConfig,
        /// Kept-mask (None keeps every slot).
        keep: Option<Vec<bool>>,
    },
    /// A two-hart litmus program regenerated from its seed, optionally
    /// with a kept-mask over the abstract rounds. Litmus jobs need a
    /// multi-core configuration — pair with [`JobSpec::with_cores`].
    Litmus {
        /// Generator seed.
        seed: u64,
        /// Generator knobs (shape, fences, round count).
        cfg: LitmusConfig,
        /// Kept-mask over rounds (None keeps every round).
        keep: Option<Vec<bool>>,
    },
    /// A caller-assembled program.
    Inline {
        /// Display name for the report.
        name: String,
        /// The program image.
        program: Program,
    },
    /// One SimPoint checkpoint of a profiled kernel, simulated as a
    /// warm-up + measured detail window (§III-D3). The checkpoint
    /// itself rides along behind an `Arc` — its sparse memory image is
    /// copy-on-write, so clones across the worker pool stay cheap — and
    /// the recipe fields `(kernel, ref_model, interval_len, interval)`
    /// re-derive it exactly (see `checkpoint::checkpoint_at_interval`),
    /// which is what triage bundles store.
    Sample {
        /// Profiled kernel name, e.g. `"sjeng"`.
        kernel: String,
        /// Profiling personality the checkpoint came from.
        ref_model: String,
        /// Profiling interval length, instructions.
        interval_len: u64,
        /// Warm-up instruction budget before measurement.
        warmup: u64,
        /// Measured-window instruction budget.
        window: u64,
        /// The checkpoint to resume from.
        checkpoint: std::sync::Arc<checkpoint::Checkpoint>,
    },
}

impl WorkloadSource {
    /// A full torture program from `seed`.
    pub fn torture(seed: u64, cfg: TortureConfig) -> Self {
        WorkloadSource::Torture {
            seed,
            cfg,
            keep: None,
        }
    }

    /// A named kernel.
    pub fn kernel(name: impl Into<String>) -> Self {
        WorkloadSource::Kernel { name: name.into() }
    }

    /// A full litmus program from `seed`.
    pub fn litmus(seed: u64, cfg: LitmusConfig) -> Self {
        WorkloadSource::Litmus {
            seed,
            cfg,
            keep: None,
        }
    }

    /// An inline program.
    pub fn inline(name: impl Into<String>, program: Program) -> Self {
        WorkloadSource::Inline {
            name: name.into(),
            program,
        }
    }

    /// Stable display label used in reports.
    pub fn describe(&self) -> String {
        match self {
            WorkloadSource::Kernel { name } => format!("kernel:{name}"),
            WorkloadSource::Torture { seed, .. } => format!("torture:seed={seed}"),
            WorkloadSource::Litmus { seed, cfg, .. } => {
                format!("litmus:{}:seed={seed}", cfg.shape.slug())
            }
            WorkloadSource::Inline { name, .. } => format!("inline:{name}"),
            WorkloadSource::Sample {
                kernel, checkpoint, ..
            } => format!("sample:{kernel}:interval={}", checkpoint.interval),
        }
    }

    /// Assemble the program this source describes.
    pub fn build(&self) -> Program {
        match self {
            WorkloadSource::Kernel { name } => workloads::workload(name, Scale::Test).program,
            WorkloadSource::Torture { seed, cfg, keep } => {
                let t = TortureProgram::generate(*seed, cfg);
                match keep {
                    Some(mask) => t.emit_subset(mask),
                    None => t.emit(),
                }
            }
            WorkloadSource::Litmus { seed, cfg, keep } => {
                let p = LitmusProgram::generate(*seed, cfg);
                match keep {
                    Some(mask) => p.emit_subset(mask),
                    None => p.emit(),
                }
            }
            WorkloadSource::Inline { program, .. } => program.clone(),
            // Sample jobs don't run a program from reset — the runner
            // resumes from the checkpoint state instead — but the
            // underlying kernel is still the meaningful answer here
            // (triage re-derives checkpoints by profiling it).
            WorkloadSource::Sample { kernel, .. } => {
                workloads::workload(kernel, Scale::Test).program
            }
        }
    }
}

/// One campaign job: a workload on a configuration, with run limits.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The program recipe.
    pub workload: WorkloadSource,
    /// Configuration preset slug (see [`XsConfig::preset_names`]).
    pub config: String,
    /// Core-count override (None keeps the preset's).
    pub cores: Option<usize>,
    /// Deliberate DUT corruption (verification-flow tests only).
    pub injected_bug: Option<InjectedBug>,
    /// Arm the §IV-C L2 probe/grant race fault in core 0's L2
    /// (verification-flow tests only).
    pub inject_l2_race: bool,
    /// Cycle budget; exceeding it is a [`Timeout`](crate::Verdict::Timeout).
    pub max_cycles: u64,
    /// LightSSS snapshot interval (None disables snapshots).
    pub lightsss_interval: Option<u64>,
    /// Enable per-cycle telemetry (occupancy and latency histograms).
    pub telemetry: bool,
    /// Stream full per-instruction lifecycle traces into ArchDB (the
    /// cheap ring and digest are always on regardless).
    pub lifecycle: bool,
    /// Collect coverage maps (decode, diff-rule, pipeline-event); the
    /// record's `coverage` field is populated only when set.
    pub coverage: bool,
    /// Per-attempt wall-clock limit, milliseconds (None defers to the
    /// campaign-level policy). Exhausting every attempt is a
    /// [`WallTimeout`](crate::Verdict::WallTimeout).
    pub wall_timeout_ms: Option<u64>,
    /// DiffTest REF personality name (None keeps the default
    /// architectural stepper).
    pub ref_model: Option<String>,
}

impl JobSpec {
    /// A job with default limits (40 M cycles, no snapshots).
    pub fn new(workload: WorkloadSource, config: impl Into<String>) -> Self {
        JobSpec {
            workload,
            config: config.into(),
            cores: None,
            injected_bug: None,
            inject_l2_race: false,
            max_cycles: 40_000_000,
            lightsss_interval: None,
            telemetry: false,
            lifecycle: false,
            coverage: false,
            wall_timeout_ms: None,
            ref_model: None,
        }
    }

    /// Override the preset's core count.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = Some(cores);
        self
    }

    /// Arm a deliberate DUT bug.
    pub fn with_injected_bug(mut self, bug: InjectedBug) -> Self {
        self.injected_bug = Some(bug);
        self
    }

    /// Arm the §IV-C L2 probe/grant race fault.
    pub fn with_l2_race(mut self) -> Self {
        self.inject_l2_race = true;
        self
    }

    /// Set the cycle budget.
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// Enable LightSSS with the given snapshot interval.
    pub fn with_lightsss(mut self, interval: u64) -> Self {
        self.lightsss_interval = Some(interval);
        self
    }

    /// Enable per-cycle telemetry (occupancy and latency histograms).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Enable full-trace lifecycle streaming for this job.
    pub fn with_lifecycle(mut self) -> Self {
        self.lifecycle = true;
        self
    }

    /// Enable coverage-map collection for this job.
    pub fn with_coverage(mut self) -> Self {
        self.coverage = true;
        self
    }

    /// Set a per-attempt wall-clock limit for this job (overrides the
    /// campaign-level policy).
    pub fn with_wall_timeout_ms(mut self, ms: u64) -> Self {
        self.wall_timeout_ms = Some(ms);
        self
    }

    /// Select the DiffTest REF personality for this job.
    pub fn with_ref(mut self, name: impl Into<String>) -> Self {
        self.ref_model = Some(name.into());
        self
    }

    /// Resolve the preset slug and apply the job's overrides.
    pub fn build_config(&self) -> Option<XsConfig> {
        let mut cfg = XsConfig::preset(&self.config)?;
        if let Some(cores) = self.cores {
            cfg.cores = cores;
        }
        if let Some(bug) = self.injected_bug {
            cfg.injected_bug = Some(bug);
        }
        if self.inject_l2_race {
            cfg = cfg.with_l2_race();
        }
        if self.telemetry {
            cfg = cfg.with_telemetry();
        }
        if self.lifecycle {
            cfg = cfg.with_lifecycle();
        }
        if self.coverage {
            cfg = cfg.with_coverage();
        }
        if let Some(r) = &self.ref_model {
            cfg = cfg.with_ref_model(r.clone());
        }
        Some(cfg)
    }
}

/// The variant name of a [`DiffError`] — campaigns group and match
/// divergences by this class.
pub fn error_class(e: &DiffError) -> &'static str {
    match e {
        DiffError::Pc { .. } => "Pc",
        DiffError::Writeback { .. } => "Writeback",
        DiffError::Trap { .. } => "Trap",
        DiffError::RepeatedForcedEvent { .. } => "RepeatedForcedEvent",
        DiffError::State { .. } => "State",
        DiffError::Csr { .. } => "Csr",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_labels_are_stable() {
        assert_eq!(WorkloadSource::kernel("sjeng").describe(), "kernel:sjeng");
        assert_eq!(
            WorkloadSource::torture(7, TortureConfig::default()).describe(),
            "torture:seed=7"
        );
        assert_eq!(
            WorkloadSource::litmus(3, LitmusConfig::default()).describe(),
            "litmus:mp:seed=3"
        );
    }

    #[test]
    fn litmus_source_build_honours_mask() {
        let cfg = LitmusConfig::default();
        let full = WorkloadSource::litmus(5, cfg).build();
        let keep = vec![false; cfg.rounds];
        let empty = WorkloadSource::Litmus {
            seed: 5,
            cfg,
            keep: Some(keep),
        }
        .build();
        assert!(empty.bytes.len() < full.bytes.len());
    }

    #[test]
    fn config_resolution_applies_overrides() {
        let j = JobSpec::new(WorkloadSource::kernel("mcf"), "small-nh")
            .with_cores(2)
            .with_injected_bug(InjectedBug::MulLowBit);
        let c = j.build_config().unwrap();
        assert_eq!(c.cores, 2);
        assert_eq!(c.injected_bug, Some(InjectedBug::MulLowBit));
        assert!(JobSpec::new(WorkloadSource::kernel("mcf"), "bogus")
            .build_config()
            .is_none());
    }

    #[test]
    fn torture_source_build_honours_mask() {
        let cfg = TortureConfig::default();
        let full = WorkloadSource::torture(3, cfg).build();
        let t = TortureProgram::generate(3, &cfg);
        let keep = vec![false; t.len()];
        let empty = WorkloadSource::Torture {
            seed: 3,
            cfg,
            keep: Some(keep),
        }
        .build();
        assert!(empty.bytes.len() < full.bytes.len());
    }
}
