//! Property tier for the superblock trace interpreter.
//!
//! [`NemuTrace`] is the most aggressive specialization in the crate —
//! memoized superblocks, chained exits, micro-TLBs — so it gets its own
//! differential oracle: for random torture recipes it must match the
//! plain decode-and-execute [`DromajoLike`] interpreter commit for
//! commit (pc, every register write, instret), not just at the final
//! state. Chunked execution keeps the comparison granular while still
//! letting traces form, chain, and flush mid-property.

use nemu::{DromajoLike, Interpreter, NemuTrace};
use proptest::prelude::*;
use workloads::{random_program, TortureConfig};

const FUEL: u64 = 5_000_000;

fn torture_cfg() -> TortureConfig {
    TortureConfig {
        body_len: 40,
        iterations: 20,
        ..Default::default()
    }
}

/// Assert the two harts expose identical architectural state.
fn assert_state_eq(t: &NemuTrace, d: &DromajoLike, ctx: &str) {
    assert_eq!(t.hart().state.pc, d.hart().state.pc, "{ctx}: pc");
    assert_eq!(t.hart().instret, d.hart().instret, "{ctx}: instret");
    assert_eq!(t.hart().state.gpr, d.hart().state.gpr, "{ctx}: gpr file");
    assert_eq!(t.hart().state.fpr, d.hart().state.fpr, "{ctx}: fpr file");
    assert_eq!(t.hart().halted, d.hart().halted, "{ctx}: halt state");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Final state agreement on whole random programs: exit code, pc,
    /// register files, and retired-instruction count all match the
    /// reference interpreter exactly.
    #[test]
    fn trace_matches_interp_on_torture(seed in 0u64..10_000) {
        let p = random_program(seed, &torture_cfg());
        let mut d = DromajoLike::new(&p);
        let rd = d.run(FUEL);
        prop_assert!(rd.exit_code.is_some(), "seed {} did not halt", seed);
        let mut t = NemuTrace::new(&p);
        let rt = t.run(FUEL);
        prop_assert_eq!(rd.exit_code, rt.exit_code);
        prop_assert_eq!(rd.instructions, rt.instructions);
        assert_state_eq(&t, &d, "final");
    }

    /// Commit-for-commit agreement: the trace tier is advanced in small
    /// irregular fuel chunks (forcing mid-trace fuel exits and resumes)
    /// while the reference advances by exactly the same number of
    /// retires; architectural state must agree at every boundary. A
    /// wrong pc on a chained exit, a stale micro-TLB entry, or a
    /// misplaced instret adjustment on a sentinel shows up at the first
    /// chunk boundary after the bug, pinning it to a ~7-instruction
    /// window.
    #[test]
    fn trace_commits_match_interp_chunkwise(seed in 0u64..5_000, chunk in 1u64..8) {
        let p = random_program(seed, &torture_cfg());
        let mut t = NemuTrace::new(&p);
        let mut d = DromajoLike::new(&p);
        let mut total = 0u64;
        while !t.hart().is_halted() && total < FUEL {
            let rt = t.run(chunk);
            // Advance the reference by the same number of *retires*; a
            // trap entry retires nothing but redirects pc, which the
            // state compare below still checks.
            let rd = d.run(rt.instructions.max(1));
            prop_assert_eq!(rt.instructions, rd.instructions);
            assert_state_eq(&t, &d, "chunk boundary");
            total += chunk;
        }
        prop_assert!(t.hart().is_halted(), "seed {} did not halt", seed);
    }

    /// A tiny trace buffer (forcing repeated buffer-full flushes and
    /// rebuilds mid-program) must not change a single architectural
    /// result.
    #[test]
    fn buffer_full_flushes_preserve_semantics(seed in 0u64..5_000) {
        let p = random_program(seed, &torture_cfg());
        let mut d = DromajoLike::new(&p);
        let rd = d.run(FUEL);
        prop_assert!(rd.exit_code.is_some(), "seed {} did not halt", seed);
        // 300 slots is barely more than one max-length superblock, so
        // any program needing more than ~43 uops of trace recycles the
        // whole buffer every few fills. (Flush *occurrence* is pinned by
        // the deterministic capacity test in trace.rs; tiny programs may
        // legitimately fit without flushing.)
        let mut t = NemuTrace::with_capacity(&p, 300);
        let rt = t.run(FUEL);
        prop_assert_eq!(rd.exit_code, rt.exit_code);
        prop_assert_eq!(rd.instructions, rt.instructions);
        assert_state_eq(&t, &d, "final (capacity 300)");
    }

    /// Trace construction is deterministic: two runs of the same seed
    /// build the same traces in the same order and take the same
    /// fast/slow paths, instrumentation included.
    #[test]
    fn trace_construction_is_deterministic(seed in 0u64..5_000) {
        let p = random_program(seed, &torture_cfg());
        let mut a = NemuTrace::new(&p);
        let mut b = NemuTrace::new(&p);
        let ra = a.run(FUEL);
        let rb = b.run(FUEL);
        prop_assert_eq!(ra.exit_code, rb.exit_code);
        prop_assert_eq!(ra.instructions, rb.instructions);
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.hart().state.pc, b.hart().state.pc);
        prop_assert_eq!(&a.hart().state.gpr, &b.hart().state.gpr);
    }
}
