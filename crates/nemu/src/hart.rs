//! One hart's functional execution semantics.
//!
//! [`Hart`] + [`step`] form the canonical instruction-at-a-time executor:
//! every interpreter in this crate (NEMU fast path included, for its slow
//! path) and the DiffTest reference model are built on it. It also exposes
//! the hooks DRAV diff-rules need to steer the REF: exception injection
//! (forced page faults), forced SC failures, and load/memory patching.

use riscv_isa::csr::Privilege;
use riscv_isa::exec::{amo_compute, branch_taken, int_compute, load_extend};
use riscv_isa::fpu::fp_execute;
use riscv_isa::mem::PhysMem;
use riscv_isa::mmu::{self, AccessType};
use riscv_isa::op::{DecodedInst, Op};
use riscv_isa::state::ArchState;
use riscv_isa::trap::{Exception, Trap};
use serde::{Deserialize, Serialize};

/// UART transmit register (write-only MMIO).
pub const UART_TX: u64 = 0x1000_0000;
/// CLINT mtime register (read-only MMIO in this model).
pub const MTIME: u64 = 0x0200_bff8;
/// Reservation granule for LR/SC, in bytes.
pub const RESERVATION_GRANULE: u64 = 64;

/// A memory access performed by one instruction (probe payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Virtual address.
    pub vaddr: u64,
    /// Physical address after translation.
    pub paddr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// True for stores/AMOs.
    pub is_store: bool,
    /// Value loaded or stored (post-extension for loads).
    pub value: u64,
    /// True when the access hit an MMIO device.
    pub mmio: bool,
}

/// The observable outcome of stepping one instruction — the information an
/// instruction-commit probe extracts (paper §III-B3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepInfo {
    /// PC of the instruction.
    pub pc: u64,
    /// The instruction (illegal/faulting fetches report a default).
    pub inst: DecodedInst,
    /// Trap taken instead of (or by) this instruction.
    pub trap: Option<Trap>,
    /// Destination register write, if any (`(is_fpr, index, value)`).
    pub wb: Option<(bool, u8, u64)>,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// True if this step was an SC that failed.
    pub sc_failed: bool,
    /// True when the hart halted on this step.
    pub halted: bool,
}

/// Execution error: exception cause plus trap value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecError {
    /// Exception cause.
    pub cause: Exception,
    /// Value for mtval/stval.
    pub tval: u64,
}

impl ExecError {
    fn new(cause: Exception, tval: u64) -> Self {
        ExecError { cause, tval }
    }
}

impl From<Exception> for ExecError {
    fn from(cause: Exception) -> Self {
        ExecError { cause, tval: 0 }
    }
}

/// One hart: architectural state plus simulation bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hart {
    /// Architectural state.
    pub state: ArchState,
    /// LR reservation (granule-aligned physical address).
    pub reservation: Option<u64>,
    /// Exit code once halted.
    pub halted: Option<u64>,
    /// Proxy-kernel mode: ecall is emulated (exit/write) instead of
    /// trapping, like NEMU's user mode (paper §III-D2).
    pub proxy_kernel: bool,
    /// Bytes written to the UART / write syscall.
    pub output: Vec<u8>,
    /// Retired instruction count (simulation-side, always increments).
    pub instret: u64,
    /// Pending forced exception (DiffTest page-fault diff-rule hook).
    pub pending_injection: Option<(Exception, u64)>,
    /// Force the next SC to fail (DiffTest SC-timeout diff-rule hook).
    pub force_sc_fail: bool,
}

impl Hart {
    /// Create a hart resetting to `pc`.
    pub fn new(pc: u64, hartid: u64) -> Self {
        Hart {
            state: ArchState::new(pc, hartid),
            reservation: None,
            halted: None,
            proxy_kernel: false,
            output: Vec::new(),
            instret: 0,
            pending_injection: None,
            force_sc_fail: false,
        }
    }

    /// True once the hart has halted (ebreak or exit ecall).
    pub fn is_halted(&self) -> bool {
        self.halted.is_some()
    }
}

/// Translate and read `size` bytes at a virtual address.
fn virt_read<M: PhysMem>(
    hart: &mut Hart,
    mem: &mut M,
    va: u64,
    size: u64,
    access: AccessType,
) -> Result<(u64, u64, bool), ExecError> {
    if crosses_page(va, size) && mmu::translation_active(&hart.state.csr, access) {
        // Split access: translate each half separately.
        let split = 0x1000 - (va & 0xfff);
        let (lo, _, _) = virt_read(hart, mem, va, split, access)?;
        let (hi, _, _) = virt_read(hart, mem, va + split, size - split, access)?;
        return Ok(((hi << (8 * split)) | lo, va, false));
    }
    let t = mmu::translate(mem, &hart.state.csr, va, access)
        .map_err(|e| ExecError::new(e, va))?;
    if t.pa == MTIME && size == 8 {
        return Ok((hart.state.csr.time, t.pa, true));
    }
    Ok((mem.read_uint(t.pa, size), t.pa, false))
}

fn virt_write<M: PhysMem>(
    hart: &mut Hart,
    mem: &mut M,
    va: u64,
    size: u64,
    value: u64,
) -> Result<(u64, bool), ExecError> {
    if crosses_page(va, size) && mmu::translation_active(&hart.state.csr, AccessType::Store) {
        let split = 0x1000 - (va & 0xfff);
        virt_write(hart, mem, va, split, value)?;
        virt_write(hart, mem, va + split, size - split, value >> (8 * split))?;
        return Ok((va, false));
    }
    let t = mmu::translate(mem, &hart.state.csr, va, AccessType::Store)
        .map_err(|e| ExecError::new(e, va))?;
    if t.pa == UART_TX {
        hart.output.push(value as u8);
        return Ok((t.pa, true));
    }
    mem.write_uint(t.pa, size, value);
    Ok((t.pa, false))
}

#[inline]
fn crosses_page(va: u64, size: u64) -> bool {
    (va & 0xfff) + size > 0x1000
}

/// Fetch and decode the instruction at the current PC.
pub fn fetch<M: PhysMem>(hart: &mut Hart, mem: &mut M) -> Result<DecodedInst, ExecError> {
    let pc = hart.state.pc;
    if pc & 1 != 0 {
        return Err(ExecError::new(Exception::InstAddrMisaligned, pc));
    }
    let t = mmu::translate(mem, &hart.state.csr, pc, AccessType::Fetch)
        .map_err(|e| ExecError::new(e, pc))?;
    let low = mem.read_uint(t.pa, 2) as u32;
    if low & 3 != 3 {
        return Ok(riscv_isa::decode16(low as u16));
    }
    let high = if crosses_page(pc, 4) {
        let t2 = mmu::translate(mem, &hart.state.csr, pc + 2, AccessType::Fetch)
            .map_err(|e| ExecError::new(e, pc + 2))?;
        mem.read_uint(t2.pa, 2) as u32
    } else {
        mem.read_uint(t.pa + 2, 2) as u32
    };
    Ok(riscv_isa::decode32((high << 16) | low))
}

/// Execute one already-decoded instruction, updating PC and state.
///
/// On success fills `info` with writeback/memory/SC details. The caller is
/// responsible for trap entry when an `Err` is returned.
///
/// # Errors
///
/// Returns the exception raised by the instruction.
pub fn execute<M: PhysMem>(
    hart: &mut Hart,
    mem: &mut M,
    d: &DecodedInst,
    info: &mut StepInfo,
) -> Result<(), ExecError> {
    use Op::*;
    let s = &mut hart.state;
    let pc = s.pc;
    let next_pc = pc.wrapping_add(d.len as u64);
    let rs1 = s.read_gpr(d.rs1);
    let rs2 = s.read_gpr(d.rs2);

    macro_rules! wb {
        ($v:expr) => {{
            let v = $v;
            s.write_gpr(d.rd, v);
            if d.rd != 0 {
                info.wb = Some((false, d.rd, v));
            }
            s.pc = next_pc;
        }};
    }
    macro_rules! wb_f {
        ($v:expr) => {{
            let v = $v;
            s.fpr[d.rd as usize] = v;
            info.wb = Some((true, d.rd, v));
            s.pc = next_pc;
        }};
    }

    // Fast path: plain integer computation.
    if let Some(v) = int_compute(d.op, rs1, if has_imm_operand(d.op) { d.imm as u64 } else { rs2 })
    {
        wb!(v);
        return Ok(());
    }

    match d.op {
        Auipc => wb!(pc.wrapping_add(d.imm as u64)),
        Jal => {
            s.write_gpr(d.rd, next_pc);
            if d.rd != 0 {
                info.wb = Some((false, d.rd, next_pc));
            }
            s.pc = pc.wrapping_add(d.imm as u64);
        }
        Jalr => {
            let target = rs1.wrapping_add(d.imm as u64) & !1;
            s.write_gpr(d.rd, next_pc);
            if d.rd != 0 {
                info.wb = Some((false, d.rd, next_pc));
            }
            s.pc = target;
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            s.pc = if branch_taken(d.op, rs1, rs2) {
                pc.wrapping_add(d.imm as u64)
            } else {
                next_pc
            };
        }
        Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => {
            let va = rs1.wrapping_add(d.imm as u64);
            let (raw, pa, mmio) = virt_read(hart, mem, va, d.mem_size(), AccessType::Load)?;
            let v = load_extend(d.op, raw);
            info.mem = Some(MemAccess {
                vaddr: va,
                paddr: pa,
                size: d.mem_size(),
                is_store: false,
                value: v,
                mmio,
            });
            let s = &mut hart.state;
            s.write_gpr(d.rd, v);
            if d.rd != 0 {
                info.wb = Some((false, d.rd, v));
            }
            s.pc = next_pc;
        }
        Flw | Fld => {
            let va = rs1.wrapping_add(d.imm as u64);
            let (raw, pa, mmio) = virt_read(hart, mem, va, d.mem_size(), AccessType::Load)?;
            let v = if d.op == Flw {
                0xffff_ffff_0000_0000 | raw
            } else {
                raw
            };
            info.mem = Some(MemAccess {
                vaddr: va,
                paddr: pa,
                size: d.mem_size(),
                is_store: false,
                value: v,
                mmio,
            });
            let s = &mut hart.state;
            s.fpr[d.rd as usize] = v;
            info.wb = Some((true, d.rd, v));
            s.pc = next_pc;
        }
        Sb | Sh | Sw | Sd | Fsw | Fsd => {
            let va = rs1.wrapping_add(d.imm as u64);
            let value = if matches!(d.op, Fsw | Fsd) {
                hart.state.fpr[d.rs2 as usize]
            } else {
                rs2
            };
            let size = d.mem_size();
            let (pa, mmio) = virt_write(hart, mem, va, size, value)?;
            info.mem = Some(MemAccess {
                vaddr: va,
                paddr: pa,
                size,
                is_store: true,
                value,
                mmio,
            });
            hart.state.pc = next_pc;
        }
        LrW | LrD => {
            let va = rs1;
            if va % d.mem_size() != 0 {
                return Err(ExecError::new(Exception::LoadAddrMisaligned, va));
            }
            let (raw, pa, mmio) = virt_read(hart, mem, va, d.mem_size(), AccessType::Load)?;
            let v = load_extend(d.op, raw);
            hart.reservation = Some(pa & !(RESERVATION_GRANULE - 1));
            info.mem = Some(MemAccess {
                vaddr: va,
                paddr: pa,
                size: d.mem_size(),
                is_store: false,
                value: v,
                mmio,
            });
            let s = &mut hart.state;
            s.write_gpr(d.rd, v);
            if d.rd != 0 {
                info.wb = Some((false, d.rd, v));
            }
            s.pc = next_pc;
        }
        ScW | ScD => {
            let va = rs1;
            if va % d.mem_size() != 0 {
                return Err(ExecError::new(Exception::StoreAddrMisaligned, va));
            }
            // Translate first: a failing SC still needs store permission
            // checks per the spec (we keep it simple and check always).
            let t = mmu::translate(mem, &hart.state.csr, va, AccessType::Store)
                .map_err(|e| ExecError::new(e, va))?;
            let granule = t.pa & !(RESERVATION_GRANULE - 1);
            let success = !hart.force_sc_fail && hart.reservation == Some(granule);
            hart.force_sc_fail = false;
            hart.reservation = None;
            if success {
                mem.write_uint(t.pa, d.mem_size(), rs2);
                info.mem = Some(MemAccess {
                    vaddr: va,
                    paddr: t.pa,
                    size: d.mem_size(),
                    is_store: true,
                    value: rs2,
                    mmio: false,
                });
            } else {
                info.sc_failed = true;
            }
            let s = &mut hart.state;
            let v = (!success) as u64;
            s.write_gpr(d.rd, v);
            if d.rd != 0 {
                info.wb = Some((false, d.rd, v));
            }
            s.pc = next_pc;
        }
        op if d.is_amo() => {
            let va = rs1;
            let size = d.mem_size();
            if va % size != 0 {
                return Err(ExecError::new(Exception::StoreAddrMisaligned, va));
            }
            let t = mmu::translate(mem, &hart.state.csr, va, AccessType::Store)
                .map_err(|e| ExecError::new(e, va))?;
            let raw = mem.read_uint(t.pa, size);
            let old = load_extend(if size == 4 { Op::Lw } else { Op::Ld }, raw);
            let newv = amo_compute(op, old, rs2);
            mem.write_uint(t.pa, size, newv);
            info.mem = Some(MemAccess {
                vaddr: va,
                paddr: t.pa,
                size,
                is_store: true,
                value: newv,
                mmio: false,
            });
            let s = &mut hart.state;
            s.write_gpr(d.rd, old);
            if d.rd != 0 {
                info.wb = Some((false, d.rd, old));
            }
            s.pc = next_pc;
        }
        Fence => s.pc = next_pc,
        FenceI => s.pc = next_pc,
        SfenceVma => {
            if s.csr.privilege == Privilege::User {
                return Err(ExecError::new(Exception::IllegalInstruction, d.raw as u64));
            }
            if s.csr.privilege == Privilege::Supervisor
                && s.csr.mstatus & riscv_isa::csr::mstatus::TVM != 0
            {
                return Err(ExecError::new(Exception::IllegalInstruction, d.raw as u64));
            }
            s.pc = next_pc;
        }
        Csrrw | Csrrs | Csrrc | Csrrwi | Csrrsi | Csrrci => {
            let csr = d.csr();
            let src = if matches!(d.op, Csrrwi | Csrrsi | Csrrci) {
                d.rs1 as u64
            } else {
                rs1
            };
            let old = s
                .csr
                .read(csr)
                .map_err(|e| ExecError::new(e, d.raw as u64))?;
            let newv = match d.op {
                Csrrw | Csrrwi => Some(src),
                Csrrs | Csrrsi => (src != 0).then_some(old | src),
                _ => (src != 0).then_some(old & !src),
            };
            if let Some(v) = newv {
                s.csr
                    .write(csr, v)
                    .map_err(|e| ExecError::new(e, d.raw as u64))?;
                // satp writes and sfence flush nothing here; TLBs are a
                // DUT-side structure. The interpreter re-walks every access.
            }
            wb!(old);
        }
        Ecall => {
            if hart.proxy_kernel {
                handle_proxy_ecall(hart, mem, info)?;
            } else {
                let cause = match s.csr.privilege {
                    Privilege::User => Exception::EcallFromU,
                    Privilege::Supervisor => Exception::EcallFromS,
                    Privilege::Machine => Exception::EcallFromM,
                };
                return Err(ExecError::new(cause, 0));
            }
        }
        Ebreak => {
            // Simulation halt convention (NEMU's "trap" instruction):
            // ebreak ends the program with exit code a0.
            hart.halted = Some(s.read_gpr(10));
            info.halted = true;
            s.pc = next_pc;
        }
        Mret => {
            let target = s.csr.mret().map_err(|e| ExecError::new(e, 0))?;
            s.pc = target;
        }
        Sret => {
            let target = s.csr.sret().map_err(|e| ExecError::new(e, 0))?;
            s.pc = target;
        }
        Wfi => {
            // Treated as a NOP (no external interrupt sources by default).
            s.pc = next_pc;
        }
        Illegal => {
            return Err(ExecError::new(Exception::IllegalInstruction, d.raw as u64));
        }
        // Floating-point operations.
        _ => {
            if s.csr.mstatus & riscv_isa::csr::mstatus::FS == 0 {
                return Err(ExecError::new(Exception::IllegalInstruction, d.raw as u64));
            }
            let a = if d.rs1_is_fpr() {
                s.fpr[d.rs1 as usize]
            } else {
                rs1
            };
            let b = if d.rs2_is_fpr() {
                s.fpr[d.rs2 as usize]
            } else {
                rs2
            };
            let c = s.fpr[d.rs3 as usize];
            let rm = if d.rm == 7 { s.csr.frm() } else { d.rm };
            let r = fp_execute(d.op, a, b, c, rm);
            s.csr.set_fflags(r.flags);
            if d.writes_fpr() {
                wb_f!(r.bits);
            } else {
                wb!(r.bits);
            }
        }
    }
    Ok(())
}

fn handle_proxy_ecall<M: PhysMem>(
    hart: &mut Hart,
    mem: &mut M,
    info: &mut StepInfo,
) -> Result<(), ExecError> {
    let a0 = hart.state.read_gpr(10);
    let a1 = hart.state.read_gpr(11);
    let a2 = hart.state.read_gpr(12);
    let a7 = hart.state.read_gpr(17);
    match a7 {
        93 => {
            // exit(code)
            hart.halted = Some(a0);
            info.halted = true;
        }
        64 => {
            // write(fd, buf, len): forward bytes to the output channel.
            for i in 0..a2.min(4096) {
                let (byte, _, _) = virt_read(hart, mem, a1 + i, 1, AccessType::Load)?;
                hart.output.push(byte as u8);
            }
            hart.state.write_gpr(10, a2);
            info.wb = Some((false, 10, a2));
        }
        _ => {
            // Unknown syscall: return -ENOSYS like a proxy kernel would.
            let v = (-38i64) as u64;
            hart.state.write_gpr(10, v);
            info.wb = Some((false, 10, v));
        }
    }
    hart.state.pc = hart.state.pc.wrapping_add(4);
    Ok(())
}

#[inline]
pub(crate) fn has_imm_operand(op: Op) -> bool {
    use Op::*;
    matches!(
        op,
        Addi | Slti
            | Sltiu
            | Xori
            | Ori
            | Andi
            | Slli
            | Srli
            | Srai
            | Addiw
            | Slliw
            | Srliw
            | Sraiw
            | Lui
            | Rori
            | Roriw
            | SlliUw
    )
}

/// Step one instruction: interrupt check, fetch, decode, execute, retire.
///
/// Returns the commit information for probes. Never panics on guest
/// misbehavior — all faults become architectural traps.
pub fn step<M: PhysMem>(hart: &mut Hart, mem: &mut M) -> StepInfo {
    let mut info = StepInfo {
        pc: hart.state.pc,
        inst: DecodedInst::default(),
        trap: None,
        wb: None,
        mem: None,
        sc_failed: false,
        halted: false,
    };
    if hart.is_halted() {
        info.halted = true;
        return info;
    }
    // Diff-rule hook: forced exception injection (e.g. the speculative
    // page-fault rule makes the REF take the DUT's fault).
    if let Some((cause, tval)) = hart.pending_injection.take() {
        let trap = Trap::Exception(cause, tval);
        let target = hart.state.csr.take_trap(trap, hart.state.pc);
        hart.state.pc = target;
        info.trap = Some(trap);
        hart.state.csr.mcycle += 1;
        return info;
    }
    if let Some(irq) = hart.state.csr.pending_interrupt() {
        let trap = Trap::Interrupt(irq);
        let target = hart.state.csr.take_trap(trap, hart.state.pc);
        hart.state.pc = target;
        info.trap = Some(trap);
        hart.state.csr.mcycle += 1;
        return info;
    }
    match fetch(hart, mem) {
        Ok(d) => {
            info.inst = d;
            match execute(hart, mem, &d, &mut info) {
                Ok(()) => {
                    hart.instret += 1;
                    hart.state.csr.minstret = hart.state.csr.minstret.wrapping_add(1);
                    hart.state.csr.mcycle = hart.state.csr.mcycle.wrapping_add(1);
                }
                Err(e) => {
                    let trap = Trap::Exception(e.cause, e.tval);
                    let target = hart.state.csr.take_trap(trap, hart.state.pc);
                    hart.state.pc = target;
                    info.trap = Some(trap);
                    hart.state.csr.mcycle = hart.state.csr.mcycle.wrapping_add(1);
                }
            }
        }
        Err(e) => {
            let trap = Trap::Exception(e.cause, e.tval);
            let target = hart.state.csr.take_trap(trap, hart.state.pc);
            hart.state.pc = target;
            info.trap = Some(trap);
            hart.state.csr.mcycle = hart.state.csr.mcycle.wrapping_add(1);
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm::{reg::*, Asm};
    use riscv_isa::csr::addr as csr_addr;
    use riscv_isa::mem::SparseMemory;

    fn run_program(build: impl FnOnce(&mut Asm)) -> (Hart, SparseMemory) {
        let mut a = Asm::new(0x8000_0000);
        build(&mut a);
        let p = a.assemble();
        let mut mem = SparseMemory::new();
        p.load_into(&mut mem);
        let mut hart = Hart::new(0x8000_0000, 0);
        for _ in 0..100_000 {
            if hart.is_halted() {
                break;
            }
            step(&mut hart, &mut mem);
        }
        assert!(hart.is_halted(), "program did not halt");
        (hart, mem)
    }

    #[test]
    fn simple_sum() {
        let (hart, _) = run_program(|a| {
            a.li(T0, 0); // i
            a.li(T1, 10); // n
            a.li(T2, 0); // sum
            let top = a.bound_label();
            a.add(T2, T2, T0);
            a.addi(T0, T0, 1);
            a.bne(T0, T1, top);
            a.mv(A0, T2);
            a.ebreak();
        });
        assert_eq!(hart.halted, Some(45));
    }

    #[test]
    fn memory_and_stores() {
        let (hart, mut mem) = run_program(|a| {
            a.li(T0, 0x8001_0000);
            a.li(T1, 0xdead_beef);
            a.sd(T1, 0, T0);
            a.ld(T2, 0, T0);
            a.mv(A0, T2);
            a.ebreak();
        });
        assert_eq!(hart.halted, Some(0xdead_beef));
        assert_eq!(mem.read_uint(0x8001_0000, 8), 0xdead_beef);
    }

    #[test]
    fn uart_output() {
        let (hart, _) = run_program(|a| {
            a.li(T0, UART_TX as i64);
            a.li(T1, b'h' as i64);
            a.sb(T1, 0, T0);
            a.li(T1, b'i' as i64);
            a.sb(T1, 0, T0);
            a.ebreak();
        });
        assert_eq!(hart.output, b"hi");
    }

    #[test]
    fn ecall_traps_to_mtvec() {
        let (hart, _) = run_program(|a| {
            let handler = a.label();
            a.la(T0, handler);
            a.csrrw(ZERO, riscv_isa::csr::addr::MTVEC, T0);
            a.ecall();
            a.li(A0, 1); // skipped
            a.ebreak();
            a.bind(handler);
            a.li(A0, 42);
            a.ebreak();
        });
        assert_eq!(hart.halted, Some(42));
        assert_eq!(hart.state.csr.mcause, Exception::EcallFromM.code());
    }

    #[test]
    fn mret_returns_and_drops_privilege() {
        let (hart, _) = run_program(|a| {
            let target = a.label();
            a.la(T0, target);
            a.csrrw(ZERO, csr_addr::MEPC, T0);
            // MPP = 0 (user)
            a.li(T0, 0);
            a.csrrw(ZERO, csr_addr::MSTATUS, T0);
            a.mret();
            a.ebreak(); // skipped
            a.bind(target);
            a.li(A0, 7);
            a.ebreak();
        });
        assert_eq!(hart.halted, Some(7));
        assert_eq!(hart.state.csr.privilege, Privilege::User);
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let (hart, _) = run_program(|a| {
            a.li(T0, 0x8001_0000);
            a.li(T1, 5);
            a.sd(T1, 0, T0);
            a.lr_d(T2, T0); // reserve
            a.addi(T2, T2, 1);
            a.sc_d(T3, T2, T0); // success -> t3 = 0
            a.sc_d(T4, T2, T0); // no reservation -> t4 = 1
            a.ld(T5, 0, T0); // = 6
            a.slli(T4, T4, 8);
            a.or(A0, T3, T4);
            a.slli(T5, T5, 16);
            a.or(A0, A0, T5);
            a.ebreak();
        });
        assert_eq!(hart.halted, Some((6 << 16) | (1 << 8)));
    }

    #[test]
    fn forced_sc_failure_hook() {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 0x8001_0000);
        a.lr_d(T2, T0);
        a.sc_d(T3, T2, T0);
        a.mv(A0, T3);
        a.ebreak();
        let p = a.assemble();
        let mut mem = SparseMemory::new();
        p.load_into(&mut mem);
        let mut hart = Hart::new(0x8000_0000, 0);
        // Arm the diff-rule hook before the program runs.
        hart.force_sc_fail = true;
        while !hart.is_halted() {
            step(&mut hart, &mut mem);
        }
        assert_eq!(hart.halted, Some(1), "SC must fail when forced");
    }

    #[test]
    fn injection_hook_takes_trap_first() {
        let mut a = Asm::new(0x8000_0000);
        a.li(A0, 1);
        a.ebreak();
        let p = a.assemble();
        let mut mem = SparseMemory::new();
        p.load_into(&mut mem);
        let mut hart = Hart::new(0x8000_0000, 0);
        hart.state.csr.write(csr_addr::MTVEC, 0x8000_1000).unwrap();
        hart.pending_injection = Some((Exception::LoadPageFault, 0x4000_0000));
        let info = step(&mut hart, &mut mem);
        assert_eq!(
            info.trap,
            Some(Trap::Exception(Exception::LoadPageFault, 0x4000_0000))
        );
        assert_eq!(hart.state.pc, 0x8000_1000);
        assert_eq!(hart.state.csr.mtval, 0x4000_0000);
    }

    #[test]
    fn proxy_kernel_syscalls() {
        let mut a = Asm::new(0x8000_0000);
        let msg = a.label();
        a.li(A7, 64);
        a.li(A0, 1);
        a.la(A1, msg);
        a.li(A2, 5);
        a.ecall();
        a.li(A7, 93);
        a.li(A0, 3);
        a.ecall();
        a.align(3);
        a.bind(msg);
        a.data_u64(u64::from_le_bytes(*b"hello\0\0\0"));
        let p = a.assemble();
        let mut mem = SparseMemory::new();
        p.load_into(&mut mem);
        let mut hart = Hart::new(0x8000_0000, 0);
        hart.proxy_kernel = true;
        while !hart.is_halted() {
            step(&mut hart, &mut mem);
        }
        assert_eq!(hart.halted, Some(3));
        assert_eq!(hart.output, b"hello");
    }

    #[test]
    fn fp_roundtrip() {
        let (hart, _) = run_program(|a| {
            a.li(T0, 3);
            a.fcvt_d_l(FT0, T0);
            a.li(T1, 4);
            a.fcvt_d_l(FT1, T1);
            a.fmul_d(FT2, FT0, FT1);
            a.fadd_d(FT2, FT2, FT0); // 15.0
            a.fcvt_l_d(A0, FT2);
            a.ebreak();
        });
        assert_eq!(hart.halted, Some(15));
    }

    #[test]
    fn compressed_instructions_execute() {
        // Hand-place c.li a0, 5 ; ebreak
        let mut mem = SparseMemory::new();
        mem.write_uint(0x8000_0000, 2, 0x4515); // c.li a0, 5
        mem.write_uint(0x8000_0002, 4, 0x0010_0073); // ebreak
        let mut hart = Hart::new(0x8000_0000, 0);
        step(&mut hart, &mut mem);
        assert_eq!(hart.state.read_gpr(10), 5);
        step(&mut hart, &mut mem);
        assert_eq!(hart.halted, Some(5));
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = SparseMemory::new();
        mem.write_uint(0x8000_0000, 4, 0xffff_ffff);
        let mut hart = Hart::new(0x8000_0000, 0);
        hart.state.csr.write(csr_addr::MTVEC, 0x8000_2000).unwrap();
        let info = step(&mut hart, &mut mem);
        assert!(matches!(
            info.trap,
            Some(Trap::Exception(Exception::IllegalInstruction, _))
        ));
        assert_eq!(hart.state.pc, 0x8000_2000);
        assert_eq!(hart.state.csr.mtval, 0xffff_ffff);
    }

    #[test]
    fn mtime_mmio_read() {
        let mut mem = SparseMemory::new();
        // ld t0, 0(t1) with t1 = MTIME
        let mut a = Asm::new(0x8000_0000);
        a.li(T1, MTIME as i64);
        a.ld(T0, 0, T1);
        a.mv(A0, T0);
        a.ebreak();
        let p = a.assemble();
        p.load_into(&mut mem);
        let mut hart = Hart::new(0x8000_0000, 0);
        hart.state.csr.time = 777;
        while !hart.is_halted() {
            step(&mut hart, &mut mem);
        }
        assert_eq!(hart.halted, Some(777));
    }
}
