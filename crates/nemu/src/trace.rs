//! The superblock trace-execution tier: one step past the uop cache of
//! [`crate::fast`] (paper §III-D1, ROADMAP item 1's DBT-successor).
//!
//! Where [`crate::fast::Nemu`] memoizes one basic block per trace and
//! re-enters the dispatch loop at every control transfer, this tier
//! builds **superblocks** — linear trace buffers that span multiple
//! basic blocks — and keeps control inside them:
//!
//! - **superblock formation**: decode continues straight through
//!   conditional branches (the fall-through is the next trace slot) and
//!   follows direct `jal` targets inline, so a loop body with calls
//!   flattens into one linear buffer. A trace ends at an indirect jump,
//!   a slow (system) instruction, the length cap, or when it reaches a
//!   pc that already heads another trace (a chain sentinel joins them).
//! - **direct-threaded dispatch**: every uop carries a pre-resolved
//!   handler index (a dense `u8` dispatched through one jump table), and
//!   the hot integer ops get dedicated handlers with fully inlined
//!   semantics instead of a generic `int_compute` dispatch.
//! - **hot-trace chaining with patch-on-resolve**: a taken branch whose
//!   target trace does not exist yet exits through the outer loop and
//!   records the exiting uop; when the target trace is resolved, the
//!   exit edge is patched to transfer directly on every later execution.
//!   Backward branches whose target is already inside the trace being
//!   built are resolved at fill time (loops chain immediately).
//! - **inline TLB micro-caches**: when data translation is active, loads
//!   and stores probe a 2-entry `{vpn, ppn}` micro-cache before falling
//!   back to the full Sv39 walk; load and store caches are separate so a
//!   store-fill always reflects a D-bit-updating walk.
//!
//! Invalidation is deliberately coarse — whole-cache flush on `fence.i`,
//! `sfence.vma`, privilege transitions (`mret`/`sret`/any trap), and
//! `csrrw` to `satp`; micro-TLBs additionally clear on *any* CSR write
//! (which is what can retarget `satp`/`mstatus.MPRV` without a flush).
//! Because traces only ever grow between flushes, a patched chain link
//! can never dangle, so chained transfers skip the target-revalidation
//! that [`crate::fast::Nemu`]'s `chase` pays on every branch.

use crate::hart::{self, Hart, StepInfo, MTIME, UART_TX};
use crate::interp::{Interpreter, RunResult};
use riscv_isa::exec::int_compute;
use riscv_isa::fpu::fp_execute;
use riscv_isa::mem::{PhysMem, SparseMemory};
use riscv_isa::mmu::{self, AccessType};
use riscv_isa::op::{DecodedInst, Op};
use std::collections::HashMap;

const UNRESOLVED: u32 = u32::MAX;
/// Length cap of one superblock in uops (sentinels excluded).
const MAX_SUPERBLOCK: usize = 256;

// Handler indices. Dense u8 codes dispatched through a single `match`
// (one jump table) — the "pre-resolved handler index" of the trace tier.
// Branches are kept contiguous so fill-time logic can range-test them.
const H_LI: u8 = 0;
const H_MV: u8 = 1;
const H_ADDI: u8 = 2;
const H_ADD: u8 = 3;
const H_SUB: u8 = 4;
const H_AND: u8 = 5;
const H_OR: u8 = 6;
const H_XOR: u8 = 7;
const H_ANDI: u8 = 8;
const H_ORI: u8 = 9;
const H_XORI: u8 = 10;
const H_SLLI: u8 = 11;
const H_SRLI: u8 = 12;
const H_SRAI: u8 = 13;
const H_ADDW: u8 = 14;
const H_ADDIW: u8 = 15;
const H_SLT: u8 = 16;
const H_SLTU: u8 = 17;
const H_ALU_RI: u8 = 18;
const H_ALU_RR: u8 = 19;
const H_LD: u8 = 20;
const H_LW: u8 = 21;
const H_LWU: u8 = 22;
const H_LH: u8 = 23;
const H_LHU: u8 = 24;
const H_LB: u8 = 25;
const H_LBU: u8 = 26;
const H_SD: u8 = 27;
const H_SW: u8 = 28;
const H_SH: u8 = 29;
const H_SB: u8 = 30;
const H_FLOAD: u8 = 31;
const H_FSTORE: u8 = 32;
const H_HOSTFP: u8 = 33;
const H_BEQ: u8 = 34;
const H_BNE: u8 = 35;
const H_BLT: u8 = 36;
const H_BGE: u8 = 37;
const H_BLTU: u8 = 38;
const H_BGEU: u8 = 39;
const H_JAL_INLINE: u8 = 40;
const H_JAL_CHAIN: u8 = 41;
const H_JALR: u8 = 42;
const H_RET: u8 = 43;
const H_NOP: u8 = 44;
const H_SLOW: u8 = 45;
/// Sentinel: join another trace at `link` without executing anything.
const H_CHAIN: u8 = 46;
/// Sentinel: length cap hit — re-enter the outer loop at `pc`.
const H_GOTO: u8 = 47;

#[inline]
fn is_branch(h: u8) -> bool {
    (H_BEQ..=H_BGEU).contains(&h)
}

/// One trace-buffer entry.
#[derive(Debug, Clone, Copy)]
struct TUop {
    h: u8,
    /// Destination register, redirected to 32 when the instruction
    /// architecturally targets `x0`.
    rd: u8,
    rs1: u8,
    rs2: u8,
    /// Chained upc of the taken/indirect target (`UNRESOLVED` until the
    /// target trace exists and the edge gets patched).
    link: u32,
    imm: i64,
    pc: u64,
    next_pc: u64,
    /// Static taken-target pc (branches, chained jal); for indirect
    /// jumps the last target the link was patched for, re-validated at
    /// dispatch.
    tpc: u64,
    /// Full decode result for the generic handlers.
    inst: DecodedInst,
}

/// Template for sentinel uops (every field overridden that matters).
fn dead_tuop() -> TUop {
    TUop {
        h: H_GOTO,
        rd: 32,
        rs1: 0,
        rs2: 0,
        link: UNRESOLVED,
        imm: 0,
        pc: 0,
        next_pc: 0,
        tpc: 0,
        inst: DecodedInst::default(),
    }
}

/// One micro-TLB entry (4 KiB granule, also used for superpage leaves).
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    vpn: u64,
    ppn: u64,
}

const TLB_INVALID: TlbEntry = TlbEntry {
    vpn: u64::MAX,
    ppn: 0,
};

/// Trace-tier statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Trace-entry hits in the pc→upc map plus chained transfers.
    pub trace_hits: u64,
    /// Uops decoded into trace buffers.
    pub trace_fills: u64,
    /// Superblocks built.
    pub traces_built: u64,
    /// Exit edges patched on resolve.
    pub links_patched: u64,
    /// Whole-cache flushes (capacity or system events).
    pub flushes: u64,
    /// Instructions executed through the slow path.
    pub slow_steps: u64,
    /// Micro-TLB hits on the data fast path.
    pub tlb_hits: u64,
    /// Micro-TLB misses that took a full walk.
    pub tlb_misses: u64,
}

/// The superblock trace-execution interpreter.
#[derive(Debug, Clone)]
pub struct NemuTrace {
    hart: Hart,
    mem: SparseMemory,
    regs: [u64; 33],
    code: Vec<TUop>,
    map: HashMap<u64, u32>,
    capacity: usize,
    /// Instruction fetch is untranslated: traces may be built/entered.
    fetch_fast: bool,
    /// Data accesses translate: loads/stores go through the micro-TLBs.
    data_xlat: bool,
    ltlb: [TlbEntry; 2],
    stlb: [TlbEntry; 2],
    ltlb_next: usize,
    stlb_next: usize,
    /// Exiting uop awaiting a chain patch once its target resolves.
    pending_patch: Option<u32>,
    /// Trace statistics.
    pub stats: TraceStats,
}

impl NemuTrace {
    /// Default trace-buffer capacity in uops (matches the uop cache).
    pub const DEFAULT_CAPACITY: usize = 16384;

    /// Boot a program with the default trace-buffer capacity.
    pub fn new(program: &riscv_isa::asm::Program) -> Self {
        Self::with_capacity(program, Self::DEFAULT_CAPACITY)
    }

    /// Boot a program with an explicit trace-buffer capacity.
    pub fn with_capacity(program: &riscv_isa::asm::Program, capacity: usize) -> Self {
        let (hart, mem) = crate::interp::boot(program);
        Self::from_parts_with_capacity(hart, mem, capacity)
    }

    /// Construct directly from a hart + memory (checkpoint restore path).
    pub fn from_parts(hart: Hart, mem: SparseMemory) -> Self {
        Self::from_parts_with_capacity(hart, mem, Self::DEFAULT_CAPACITY)
    }

    fn from_parts_with_capacity(hart: Hart, mem: SparseMemory, capacity: usize) -> Self {
        let mut n = NemuTrace {
            hart,
            mem,
            regs: [0; 33],
            code: Vec::with_capacity(capacity),
            map: HashMap::new(),
            capacity,
            fetch_fast: true,
            data_xlat: false,
            ltlb: [TLB_INVALID; 2],
            stlb: [TLB_INVALID; 2],
            ltlb_next: 0,
            stlb_next: 0,
            pending_patch: None,
            stats: TraceStats::default(),
        };
        n.sync_regs_from_hart();
        n.refresh_modes();
        n
    }

    /// Re-import architectural state after an external write to the hart
    /// (DiffTest REF patches write `hart.state` directly; the shadow
    /// register file must follow or the next sync would clobber them).
    pub fn resync(&mut self) {
        self.sync_regs_from_hart();
    }

    fn refresh_modes(&mut self) {
        let csr = &self.hart.state.csr;
        self.fetch_fast = !mmu::translation_active(csr, AccessType::Fetch);
        self.data_xlat = mmu::translation_active(csr, AccessType::Load);
    }

    fn sync_regs_to_hart(&mut self) {
        self.hart.state.gpr.copy_from_slice(&self.regs[..32]);
        self.hart.state.csr.minstret = self.hart.instret;
        self.hart.state.csr.mcycle = self.hart.instret;
    }

    fn sync_regs_from_hart(&mut self) {
        self.regs[..32].copy_from_slice(&self.hart.state.gpr);
        self.regs[0] = 0;
    }

    fn clear_tlbs(&mut self) {
        self.ltlb = [TLB_INVALID; 2];
        self.stlb = [TLB_INVALID; 2];
        self.ltlb_next = 0;
        self.stlb_next = 0;
    }

    fn flush(&mut self) {
        self.code.clear();
        self.map.clear();
        self.pending_patch = None;
        self.clear_tlbs();
        self.stats.flushes += 1;
    }

    /// Translate a load address through the micro-TLB, or `None` when
    /// the access must take the architectural path (page-crossing or a
    /// walk fault — the slow step re-raises the fault with full state).
    #[inline]
    fn load_pa(&mut self, va: u64, size: u64) -> Option<u64> {
        if !self.data_xlat {
            return Some(va);
        }
        if (va & 0xfff) + size > 0x1000 {
            return None;
        }
        let vpn = va >> 12;
        for e in &self.ltlb {
            if e.vpn == vpn {
                self.stats.tlb_hits += 1;
                return Some((e.ppn << 12) | (va & 0xfff));
            }
        }
        self.stats.tlb_misses += 1;
        let t = mmu::translate(&mut self.mem, &self.hart.state.csr, va, AccessType::Load).ok()?;
        let e = TlbEntry { vpn, ppn: t.pa >> 12 };
        self.ltlb[self.ltlb_next] = e;
        self.ltlb_next ^= 1;
        Some((e.ppn << 12) | (va & 0xfff))
    }

    /// Store-side twin of [`Self::load_pa`]: fills only from walks that
    /// performed the D-bit update, so a hit never skips one.
    #[inline]
    fn store_pa(&mut self, va: u64, size: u64) -> Option<u64> {
        if !self.data_xlat {
            return Some(va);
        }
        if (va & 0xfff) + size > 0x1000 {
            return None;
        }
        let vpn = va >> 12;
        for e in &self.stlb {
            if e.vpn == vpn {
                self.stats.tlb_hits += 1;
                return Some((e.ppn << 12) | (va & 0xfff));
            }
        }
        self.stats.tlb_misses += 1;
        let t = mmu::translate(&mut self.mem, &self.hart.state.csr, va, AccessType::Store).ok()?;
        let e = TlbEntry { vpn, ppn: t.pa >> 12 };
        self.stlb[self.stlb_next] = e;
        self.stlb_next ^= 1;
        Some((e.ppn << 12) | (va & 0xfff))
    }

    /// Build a superblock starting at `pc`, returning the upc of its
    /// head, or `None` when the fast path cannot run.
    fn fill(&mut self, pc: u64) -> Option<u32> {
        if !self.fetch_fast {
            return None;
        }
        if self.code.len() + MAX_SUPERBLOCK + 1 > self.capacity {
            self.flush();
        }
        let head = self.code.len() as u32;
        self.stats.traces_built += 1;
        let mut p = pc;
        for _ in 0..MAX_SUPERBLOCK {
            if p != pc {
                if let Some(&u) = self.map.get(&p) {
                    // The superblock ran into an existing trace: join it
                    // through a chain sentinel instead of duplicating.
                    self.code.push(TUop {
                        h: H_CHAIN,
                        link: u,
                        pc: p,
                        next_pc: p,
                        ..dead_tuop()
                    });
                    return Some(head);
                }
            }
            let raw = self.mem.fetch32(p);
            let d = riscv_isa::decode(raw);
            let h = classify(&d);
            let rd = if d.rd == 0 { 32 } else { d.rd };
            let imm = match (h, d.op) {
                // auipc folds pc into the immediate at decode time.
                (H_LI, Op::Auipc) => p.wrapping_add(d.imm as u64) as i64,
                _ => d.imm,
            };
            let next_pc = p.wrapping_add(d.len as u64);
            let tpc = if is_branch(h) || h == H_JAL_INLINE {
                p.wrapping_add(d.imm as u64)
            } else {
                0
            };
            // Backward branches whose target is already in a trace chain
            // at fill time — loops transfer directly from day one.
            let link = if is_branch(h) {
                self.map.get(&tpc).copied().unwrap_or(UNRESOLVED)
            } else {
                UNRESOLVED
            };
            let idx = self.code.len() as u32;
            self.code.push(TUop {
                h,
                rd,
                rs1: d.rs1,
                rs2: d.rs2,
                link,
                imm,
                pc: p,
                next_pc,
                tpc,
                inst: d,
            });
            self.map.insert(p, idx);
            self.stats.trace_fills += 1;
            match h {
                // Indirect/system: the superblock ends here.
                H_JALR | H_RET | H_SLOW => return Some(head),
                // Direct jump: follow it inline — the target's uops are
                // decoded straight into this trace. If the target is
                // already mapped (including `j .` self-loops, whose pc
                // was mapped by the push above), chain instead.
                H_JAL_INLINE => {
                    if let Some(&u) = self.map.get(&tpc) {
                        self.code[idx as usize].h = H_JAL_CHAIN;
                        self.code[idx as usize].link = u;
                        return Some(head);
                    }
                    p = tpc;
                }
                // Conditional branches fall through inside the trace.
                _ => p = next_pc,
            }
        }
        // Length cap hit mid-flow; continue through the outer loop at the
        // unfinished pc (not mapped: the instruction there gets its own
        // trace later).
        self.code.push(TUop {
            h: H_GOTO,
            pc: p,
            next_pc: p,
            ..dead_tuop()
        });
        Some(head)
    }

    /// One slow-path architectural step (also used when the fast path is
    /// unavailable).
    fn slow_step(&mut self) -> StepInfo {
        self.sync_regs_to_hart();
        let info = hart::step(&mut self.hart, &mut self.mem);
        self.sync_regs_from_hart();
        self.stats.slow_steps += 1;
        // System events invalidate cached traces/translations.
        if matches!(
            info.inst.op,
            Op::FenceI | Op::SfenceVma | Op::Mret | Op::Sret
        ) || info.inst.op == Op::Csrrw && info.inst.csr() == riscv_isa::csr::addr::SATP
            || info.trap.is_some()
        {
            self.flush();
        } else if matches!(
            info.inst.op,
            Op::Csrrw | Op::Csrrs | Op::Csrrc | Op::Csrrwi | Op::Csrrsi | Op::Csrrci
        ) {
            // Any CSR write can retarget satp or mstatus.MPRV without a
            // flush-class event: drop the translation micro-caches.
            self.clear_tlbs();
        }
        self.refresh_modes();
        info
    }

    /// The trace execution loop; returns steps consumed.
    fn run_fast(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0u64;
        'outer: while steps < max_steps && !self.hart.is_halted() {
            if self.hart.pending_injection.is_some()
                || self.hart.state.csr.pending_interrupt().is_some()
            {
                // Control is being redirected: the pending exit edge must
                // not be patched with the trap vector's trace.
                self.pending_patch = None;
                self.slow_step();
                steps += 1;
                continue;
            }
            let pc = self.hart.state.pc;
            let head = if let Some(&u) = self.map.get(&pc) {
                self.stats.trace_hits += 1;
                u
            } else {
                match self.fill(pc) {
                    Some(u) => u,
                    None => {
                        self.pending_patch = None;
                        self.slow_step();
                        steps += 1;
                        continue;
                    }
                }
            };
            // Patch-on-resolve: the edge that exited last now has a live
            // target. Static edges (branch/jal) patch only when this pc
            // is their own target; indirect edges re-validate `tpc` at
            // dispatch, so they always adopt the newest target.
            if let Some(i) = self.pending_patch.take() {
                let u = &mut self.code[i as usize];
                let indirect = u.h == H_JALR || u.h == H_RET;
                if indirect {
                    u.link = head;
                    u.tpc = pc;
                    self.stats.links_patched += 1;
                } else if u.tpc == pc {
                    u.link = head;
                    self.stats.links_patched += 1;
                }
            }
            let mut upc = head;
            // Tight dispatch loop: stays inside the trace buffers until a
            // slow event, an unresolved edge, or fuel runs out.
            while steps < max_steps {
                let uop = self.code[upc as usize];
                steps += 1;
                self.hart.instret += 1;
                // Take the architectural path for this instruction: roll
                // back the optimistic retire, then slow-step (which
                // re-executes it, retiring or trapping with full state).
                macro_rules! slow_exit {
                    () => {{
                        self.hart.instret -= 1;
                        self.hart.state.pc = uop.pc;
                        self.slow_step();
                        if self.hart.is_halted() {
                            break 'outer;
                        }
                        continue 'outer;
                    }};
                }
                // Conditional-branch arm body: chained transfer on the
                // taken edge, `upc + 1` fall-through, exit-and-record
                // when the taken target is unresolved.
                macro_rules! branch {
                    ($taken:expr) => {{
                        if $taken {
                            if uop.link != UNRESOLVED {
                                self.stats.trace_hits += 1;
                                upc = uop.link;
                            } else {
                                self.hart.state.pc = uop.tpc;
                                self.pending_patch = Some(upc);
                                continue 'outer;
                            }
                        } else {
                            upc += 1;
                        }
                    }};
                }
                match uop.h {
                    H_LI => {
                        self.regs[uop.rd as usize] = uop.imm as u64;
                        upc += 1;
                    }
                    H_MV => {
                        self.regs[uop.rd as usize] = self.regs[uop.rs1 as usize];
                        upc += 1;
                    }
                    H_ADDI => {
                        self.regs[uop.rd as usize] =
                            self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        upc += 1;
                    }
                    H_ADD => {
                        self.regs[uop.rd as usize] = self.regs[uop.rs1 as usize]
                            .wrapping_add(self.regs[uop.rs2 as usize]);
                        upc += 1;
                    }
                    H_SUB => {
                        self.regs[uop.rd as usize] = self.regs[uop.rs1 as usize]
                            .wrapping_sub(self.regs[uop.rs2 as usize]);
                        upc += 1;
                    }
                    H_AND => {
                        self.regs[uop.rd as usize] =
                            self.regs[uop.rs1 as usize] & self.regs[uop.rs2 as usize];
                        upc += 1;
                    }
                    H_OR => {
                        self.regs[uop.rd as usize] =
                            self.regs[uop.rs1 as usize] | self.regs[uop.rs2 as usize];
                        upc += 1;
                    }
                    H_XOR => {
                        self.regs[uop.rd as usize] =
                            self.regs[uop.rs1 as usize] ^ self.regs[uop.rs2 as usize];
                        upc += 1;
                    }
                    H_ANDI => {
                        self.regs[uop.rd as usize] = self.regs[uop.rs1 as usize] & uop.imm as u64;
                        upc += 1;
                    }
                    H_ORI => {
                        self.regs[uop.rd as usize] = self.regs[uop.rs1 as usize] | uop.imm as u64;
                        upc += 1;
                    }
                    H_XORI => {
                        self.regs[uop.rd as usize] = self.regs[uop.rs1 as usize] ^ uop.imm as u64;
                        upc += 1;
                    }
                    H_SLLI => {
                        self.regs[uop.rd as usize] =
                            self.regs[uop.rs1 as usize] << (uop.imm as u64 & 63);
                        upc += 1;
                    }
                    H_SRLI => {
                        self.regs[uop.rd as usize] =
                            self.regs[uop.rs1 as usize] >> (uop.imm as u64 & 63);
                        upc += 1;
                    }
                    H_SRAI => {
                        self.regs[uop.rd as usize] = ((self.regs[uop.rs1 as usize] as i64)
                            >> (uop.imm as u64 & 63))
                            as u64;
                        upc += 1;
                    }
                    H_ADDW => {
                        let v = self.regs[uop.rs1 as usize]
                            .wrapping_add(self.regs[uop.rs2 as usize]);
                        self.regs[uop.rd as usize] = v as i32 as i64 as u64;
                        upc += 1;
                    }
                    H_ADDIW => {
                        let v = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        self.regs[uop.rd as usize] = v as i32 as i64 as u64;
                        upc += 1;
                    }
                    H_SLT => {
                        self.regs[uop.rd as usize] = ((self.regs[uop.rs1 as usize] as i64)
                            < (self.regs[uop.rs2 as usize] as i64))
                            as u64;
                        upc += 1;
                    }
                    H_SLTU => {
                        self.regs[uop.rd as usize] =
                            (self.regs[uop.rs1 as usize] < self.regs[uop.rs2 as usize]) as u64;
                        upc += 1;
                    }
                    H_ALU_RI => {
                        let a = self.regs[uop.rs1 as usize];
                        self.regs[uop.rd as usize] = int_compute(uop.inst.op, a, uop.imm as u64)
                            .expect("ALU_RI ops are int_compute-able");
                        upc += 1;
                    }
                    H_ALU_RR => {
                        let a = self.regs[uop.rs1 as usize];
                        let b = self.regs[uop.rs2 as usize];
                        self.regs[uop.rd as usize] = int_compute(uop.inst.op, a, b)
                            .expect("ALU_RR ops are int_compute-able");
                        upc += 1;
                    }
                    H_LD => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.load_pa(va, 8) else {
                            slow_exit!()
                        };
                        self.regs[uop.rd as usize] = if pa == MTIME {
                            self.hart.state.csr.time
                        } else {
                            self.mem.read_uint(pa, 8)
                        };
                        upc += 1;
                    }
                    H_LW => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.load_pa(va, 4) else {
                            slow_exit!()
                        };
                        self.regs[uop.rd as usize] =
                            self.mem.read_uint(pa, 4) as i32 as i64 as u64;
                        upc += 1;
                    }
                    H_LWU => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.load_pa(va, 4) else {
                            slow_exit!()
                        };
                        self.regs[uop.rd as usize] = self.mem.read_uint(pa, 4);
                        upc += 1;
                    }
                    H_LH => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.load_pa(va, 2) else {
                            slow_exit!()
                        };
                        self.regs[uop.rd as usize] =
                            self.mem.read_uint(pa, 2) as i16 as i64 as u64;
                        upc += 1;
                    }
                    H_LHU => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.load_pa(va, 2) else {
                            slow_exit!()
                        };
                        self.regs[uop.rd as usize] = self.mem.read_uint(pa, 2);
                        upc += 1;
                    }
                    H_LB => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.load_pa(va, 1) else {
                            slow_exit!()
                        };
                        self.regs[uop.rd as usize] =
                            self.mem.read_uint(pa, 1) as i8 as i64 as u64;
                        upc += 1;
                    }
                    H_LBU => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.load_pa(va, 1) else {
                            slow_exit!()
                        };
                        self.regs[uop.rd as usize] = self.mem.read_uint(pa, 1);
                        upc += 1;
                    }
                    H_SD => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.store_pa(va, 8) else {
                            slow_exit!()
                        };
                        let v = self.regs[uop.rs2 as usize];
                        if pa == UART_TX {
                            self.hart.output.push(v as u8);
                        } else {
                            self.mem.write_uint(pa, 8, v);
                        }
                        upc += 1;
                    }
                    H_SW => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.store_pa(va, 4) else {
                            slow_exit!()
                        };
                        let v = self.regs[uop.rs2 as usize];
                        if pa == UART_TX {
                            self.hart.output.push(v as u8);
                        } else {
                            self.mem.write_uint(pa, 4, v);
                        }
                        upc += 1;
                    }
                    H_SH => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.store_pa(va, 2) else {
                            slow_exit!()
                        };
                        let v = self.regs[uop.rs2 as usize];
                        if pa == UART_TX {
                            self.hart.output.push(v as u8);
                        } else {
                            self.mem.write_uint(pa, 2, v);
                        }
                        upc += 1;
                    }
                    H_SB => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let Some(pa) = self.store_pa(va, 1) else {
                            slow_exit!()
                        };
                        let v = self.regs[uop.rs2 as usize];
                        if pa == UART_TX {
                            self.hart.output.push(v as u8);
                        } else {
                            self.mem.write_uint(pa, 1, v);
                        }
                        upc += 1;
                    }
                    H_FLOAD => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let size = uop.inst.mem_size();
                        let Some(pa) = self.load_pa(va, size) else {
                            slow_exit!()
                        };
                        let raw = if pa == MTIME && size == 8 {
                            self.hart.state.csr.time
                        } else {
                            self.mem.read_uint(pa, size)
                        };
                        self.hart.state.fpr[uop.inst.rd as usize] = if uop.inst.op == Op::Flw {
                            0xffff_ffff_0000_0000 | raw
                        } else {
                            raw
                        };
                        upc += 1;
                    }
                    H_FSTORE => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let size = uop.inst.mem_size();
                        let Some(pa) = self.store_pa(va, size) else {
                            slow_exit!()
                        };
                        let v = self.hart.state.fpr[uop.inst.rs2 as usize];
                        if pa == UART_TX {
                            self.hart.output.push(v as u8);
                        } else {
                            self.mem.write_uint(pa, size, v);
                        }
                        upc += 1;
                    }
                    H_HOSTFP => {
                        let d = &uop.inst;
                        let a = if d.rs1_is_fpr() {
                            self.hart.state.fpr[d.rs1 as usize]
                        } else {
                            self.regs[d.rs1 as usize]
                        };
                        let b = if d.rs2_is_fpr() {
                            self.hart.state.fpr[d.rs2 as usize]
                        } else {
                            self.regs[d.rs2 as usize]
                        };
                        let c = self.hart.state.fpr[d.rs3 as usize];
                        let rm = if d.rm == 7 {
                            self.hart.state.csr.frm()
                        } else {
                            d.rm
                        };
                        let r = fp_execute(d.op, a, b, c, rm);
                        self.hart.state.csr.set_fflags(r.flags);
                        if d.writes_fpr() {
                            self.hart.state.fpr[d.rd as usize] = r.bits;
                        } else {
                            self.regs[uop.rd as usize] = r.bits;
                        }
                        upc += 1;
                    }
                    H_BEQ => {
                        branch!(self.regs[uop.rs1 as usize] == self.regs[uop.rs2 as usize])
                    }
                    H_BNE => {
                        branch!(self.regs[uop.rs1 as usize] != self.regs[uop.rs2 as usize])
                    }
                    H_BLT => branch!(
                        (self.regs[uop.rs1 as usize] as i64)
                            < (self.regs[uop.rs2 as usize] as i64)
                    ),
                    H_BGE => branch!(
                        (self.regs[uop.rs1 as usize] as i64)
                            >= (self.regs[uop.rs2 as usize] as i64)
                    ),
                    H_BLTU => {
                        branch!(self.regs[uop.rs1 as usize] < self.regs[uop.rs2 as usize])
                    }
                    H_BGEU => {
                        branch!(self.regs[uop.rs1 as usize] >= self.regs[uop.rs2 as usize])
                    }
                    H_JAL_INLINE => {
                        // The target's uops sit in the next slot: writing
                        // the link register is all a direct jump costs.
                        self.regs[uop.rd as usize] = uop.next_pc;
                        upc += 1;
                    }
                    H_JAL_CHAIN => {
                        self.regs[uop.rd as usize] = uop.next_pc;
                        self.stats.trace_hits += 1;
                        upc = uop.link;
                    }
                    H_JALR => {
                        // Compute the target before writing rd (rd may
                        // alias rs1).
                        let target =
                            self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64) & !1;
                        self.regs[uop.rd as usize] = uop.next_pc;
                        if uop.link != UNRESOLVED && uop.tpc == target {
                            self.stats.trace_hits += 1;
                            upc = uop.link;
                        } else {
                            self.hart.state.pc = target;
                            self.pending_patch = Some(upc);
                            continue 'outer;
                        }
                    }
                    H_RET => {
                        let target = self.regs[1] & !1;
                        if uop.link != UNRESOLVED && uop.tpc == target {
                            self.stats.trace_hits += 1;
                            upc = uop.link;
                        } else {
                            self.hart.state.pc = target;
                            self.pending_patch = Some(upc);
                            continue 'outer;
                        }
                    }
                    H_NOP => upc += 1,
                    H_CHAIN => {
                        // Sentinel: no instruction executed — hop to the
                        // joined trace and keep dispatching.
                        steps -= 1;
                        self.hart.instret -= 1;
                        self.stats.trace_hits += 1;
                        upc = uop.link;
                    }
                    H_GOTO => {
                        // Sentinel: no instruction executed — re-enter via
                        // the outer loop at the continuation pc.
                        steps -= 1;
                        self.hart.instret -= 1;
                        self.hart.state.pc = uop.pc;
                        continue 'outer;
                    }
                    _ => slow_exit!(),
                }
            }
            // Fuel exhausted inside the trace: record the resume pc.
            if steps >= max_steps {
                self.hart.state.pc = self.code[upc as usize].pc;
                break;
            }
        }
        self.sync_regs_to_hart();
        steps
    }
}

/// Classify an instruction into its trace-tier handler index.
fn classify(d: &DecodedInst) -> u8 {
    use Op::*;
    match d.op {
        Illegal | Ecall | Ebreak | Mret | Sret | Wfi | FenceI | SfenceVma | Csrrw | Csrrs
        | Csrrc | Csrrwi | Csrrsi | Csrrci | LrW | LrD | ScW | ScD => H_SLOW,
        _ if d.is_amo() => H_SLOW,
        Fence => H_NOP,
        Lui | Auipc => H_LI,
        Addi if d.rs1 == 0 => H_LI,
        Addi if d.imm == 0 => H_MV,
        Addi => H_ADDI,
        Add => H_ADD,
        Sub => H_SUB,
        And => H_AND,
        Or => H_OR,
        Xor => H_XOR,
        Andi => H_ANDI,
        Ori => H_ORI,
        Xori => H_XORI,
        Slli => H_SLLI,
        Srli => H_SRLI,
        Srai => H_SRAI,
        Addw => H_ADDW,
        Addiw => H_ADDIW,
        Slt => H_SLT,
        Sltu => H_SLTU,
        Jal => H_JAL_INLINE,
        Jalr if d.rd == 0 && d.rs1 == 1 && d.imm == 0 => H_RET,
        Jalr => H_JALR,
        Beq => H_BEQ,
        Bne => H_BNE,
        Blt => H_BLT,
        Bge => H_BGE,
        Bltu => H_BLTU,
        Bgeu => H_BGEU,
        Lb => H_LB,
        Lh => H_LH,
        Lw => H_LW,
        Ld => H_LD,
        Lbu => H_LBU,
        Lhu => H_LHU,
        Lwu => H_LWU,
        Flw | Fld => H_FLOAD,
        Sb => H_SB,
        Sh => H_SH,
        Sw => H_SW,
        Sd => H_SD,
        Fsw | Fsd => H_FSTORE,
        op => {
            if int_compute(op, 0, 0).is_some() {
                if crate::hart::has_imm_operand(op) {
                    H_ALU_RI
                } else {
                    H_ALU_RR
                }
            } else {
                // Remaining ops are floating point.
                H_HOSTFP
            }
        }
    }
}

impl Interpreter for NemuTrace {
    fn name(&self) -> &'static str {
        "nemu-trace"
    }
    fn hart(&self) -> &Hart {
        &self.hart
    }
    fn hart_mut(&mut self) -> &mut Hart {
        &mut self.hart
    }
    fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }
    fn step_one(&mut self) -> StepInfo {
        // Single-step goes through the architectural slow path so that
        // probes receive full commit information (this is how the trace
        // tier serves as a DiffTest REF).
        self.sync_regs_to_hart();
        let info = hart::step(&mut self.hart, &mut self.mem);
        self.sync_regs_from_hart();
        if matches!(
            info.inst.op,
            Op::FenceI | Op::SfenceVma | Op::Mret | Op::Sret
        ) || info.inst.op == Op::Csrrw && info.inst.csr() == riscv_isa::csr::addr::SATP
            || info.trap.is_some()
        {
            self.flush();
        } else if matches!(
            info.inst.op,
            Op::Csrrw | Op::Csrrs | Op::Csrrc | Op::Csrrwi | Op::Csrrsi | Op::Csrrci
        ) {
            self.clear_tlbs();
        }
        self.refresh_modes();
        info
    }
    fn run(&mut self, max_steps: u64) -> RunResult {
        let start = self.hart.instret;
        self.sync_regs_from_hart();
        self.run_fast(max_steps);
        RunResult {
            instructions: self.hart.instret - start,
            exit_code: self.hart.halted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::DromajoLike;
    use riscv_isa::asm::{reg::*, Asm};

    fn sum_program(n: i64) -> riscv_isa::asm::Program {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 0);
        a.li(T1, n);
        a.li(T2, 0);
        let top = a.bound_label();
        a.add(T2, T2, T0);
        a.addi(T0, T0, 1);
        a.bne(T0, T1, top);
        a.mv(A0, T2);
        a.ebreak();
        a.assemble()
    }

    #[test]
    fn trace_loop_matches_reference() {
        let p = sum_program(1000);
        let mut t = NemuTrace::new(&p);
        let mut d = DromajoLike::new(&p);
        let rt = t.run(10_000_000);
        let rd = d.run(10_000_000);
        assert_eq!(rt.exit_code, Some((0..1000u64).sum()));
        assert_eq!(rt.exit_code, rd.exit_code);
        assert_eq!(rt.instructions, rd.instructions);
        assert_eq!(t.hart().state.gpr, d.hart().state.gpr);
    }

    #[test]
    fn loop_back_edge_chains_at_fill_time() {
        let p = sum_program(10_000);
        let mut t = NemuTrace::new(&p);
        t.run(10_000_000);
        // One superblock covers the whole program: the loop back-edge is
        // resolved during fill, so no runtime patching is ever needed.
        assert_eq!(t.stats.traces_built, 1, "{:?}", t.stats);
        assert_eq!(t.stats.links_patched, 0, "{:?}", t.stats);
        assert!(t.stats.trace_hits > 9_000, "{:?}", t.stats);
    }

    #[test]
    fn call_ret_patches_on_resolve() {
        let mut a = Asm::new(0x8000_0000);
        let func = a.label();
        let done = a.label();
        a.li(A0, 0);
        a.li(T0, 5);
        let top = a.bound_label();
        a.call(func);
        a.addi(T0, T0, -1);
        a.bnez(T0, top);
        a.j(done);
        a.bind(func);
        a.addi(A0, A0, 10);
        a.ret();
        a.bind(done);
        a.ebreak();
        let p = a.assemble();
        let mut t = NemuTrace::new(&p);
        assert_eq!(t.run(100_000).exit_code, Some(50));
        // The `ret` edge resolves once, then chains for the remaining
        // four iterations.
        assert!(t.stats.links_patched >= 1, "{:?}", t.stats);
    }

    #[test]
    fn capacity_flush() {
        // 1200 straight-line instructions split into length-capped
        // superblocks that overflow a 512-entry buffer.
        let mut a = Asm::new(0x8000_0000);
        for _ in 0..1200 {
            a.addi(T0, T0, 1);
        }
        a.mv(A0, T0);
        a.ebreak();
        let p = a.assemble();
        let mut t = NemuTrace::with_capacity(&p, 512);
        let r = t.run(100_000);
        assert_eq!(r.exit_code, Some(1200));
        assert!(t.stats.flushes >= 1, "capacity flush expected: {:?}", t.stats);
    }

    #[test]
    fn fuel_stops_mid_trace_and_resumes() {
        let p = sum_program(1000);
        let mut t = NemuTrace::new(&p);
        let mut total = 0;
        loop {
            let r = t.run(7);
            total += r.instructions;
            if r.exit_code.is_some() {
                break;
            }
            assert!(r.instructions <= 7);
        }
        let mut d = DromajoLike::new(&p);
        let rd = d.run(10_000_000);
        assert_eq!(total, rd.instructions);
        assert_eq!(t.hart().halted, rd.exit_code);
    }

    #[test]
    fn slow_path_csr_and_amo() {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 0x8001_0000);
        a.li(T1, 7);
        a.amoadd_d(T2, T1, T0);
        a.amoadd_d(T3, T1, T0);
        a.csrrw(ZERO, riscv_isa::csr::addr::MSCRATCH, T3);
        a.csrrs(A0, riscv_isa::csr::addr::MSCRATCH, ZERO);
        a.ebreak();
        let p = a.assemble();
        let mut t = NemuTrace::new(&p);
        assert_eq!(t.run(1000).exit_code, Some(7));
        assert!(t.stats.slow_steps >= 4);
    }

    #[test]
    fn fp_in_trace_loop() {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 2);
        a.fcvt_d_l(FT0, T0);
        a.fmv_d_x(FT1, ZERO);
        a.li(T1, 50);
        let top = a.bound_label();
        a.fmadd_d(FT1, FT0, FT0, FT1);
        a.addi(T1, T1, -1);
        a.bnez(T1, top);
        a.fcvt_l_d(A0, FT1);
        a.ebreak();
        let p = a.assemble();
        let mut t = NemuTrace::new(&p);
        assert_eq!(t.run(100_000).exit_code, Some(200));
    }

    #[test]
    fn step_one_equals_run() {
        let p = sum_program(50);
        let mut a = NemuTrace::new(&p);
        let mut b = NemuTrace::new(&p);
        while !a.hart().is_halted() {
            a.step_one();
        }
        b.run(1_000_000);
        assert_eq!(a.hart().state.gpr, b.hart().state.gpr);
        assert_eq!(a.hart().instret, b.hart().instret);
    }

    #[test]
    fn self_modifying_code_with_fence_i() {
        let mut a = Asm::new(0x8000_0000);
        let patch_site = a.label();
        let new_insn = a.label();
        a.la(T0, patch_site);
        a.la(T1, new_insn);
        a.lw(T2, 0, T1);
        a.sw(T2, 0, T0);
        a.fence_i();
        a.bind(patch_site);
        a.li(A0, 1); // replaced by li a0, 77
        a.ebreak();
        a.align(2);
        a.bind(new_insn);
        a.data_u32(0x04d0_0513); // li a0, 77
        let p = a.assemble();
        let mut t = NemuTrace::new(&p);
        assert_eq!(t.run(1000).exit_code, Some(77));
    }

    #[test]
    fn self_jump_becomes_chain() {
        // `j .` would inline forever without the already-mapped check.
        let mut a = Asm::new(0x8000_0000);
        a.li(A0, 3);
        let spin = a.bound_label();
        a.j(spin);
        let p = a.assemble();
        let mut t = NemuTrace::new(&p);
        let r = t.run(10_000);
        assert_eq!(r.exit_code, None);
        assert_eq!(r.instructions, 10_000);
        assert_eq!(t.stats.traces_built, 1, "{:?}", t.stats);
    }
}
