//! NEMU — the fast RISC-V instruction-set interpreter of the MINJIE
//! platform (paper §III-D) — together with the three baseline interpreters
//! it is evaluated against in Fig. 8.
//!
//! | Interpreter | Paper counterpart | Structure |
//! |---|---|---|
//! | [`NemuTrace`] | NEMU (trace tier) | superblock traces, chained exits, micro-TLBs |
//! | [`Nemu`] | NEMU | trace-organized uop cache, block chaining, host FP |
//! | [`SpikeLike`] | Spike | direct-mapped decode cache, SoftFloat arithmetic |
//! | [`DromajoLike`] | Dromajo | plain decode-and-execute, no cache |
//! | [`QemuTciLike`] | QEMU-TCI | per-instruction bytecode dispatch layer |
//!
//! The [`registry`] module is the canonical enumeration of these
//! personalities; test tiers derive their sets from it.
//!
//! All five share the architectural semantics in [`hart`], so they agree
//! instruction-for-instruction — which is also what makes [`Nemu`] (via
//! its architectural slow path) an "easy-to-develop REF for DiffTest"
//! exactly as the paper uses it.
//!
//! # Example
//!
//! ```
//! use nemu::{Interpreter, Nemu};
//! use riscv_isa::asm::{reg::*, Asm};
//!
//! let mut a = Asm::new(0x8000_0000);
//! a.li(A0, 41);
//! a.addi(A0, A0, 1);
//! a.ebreak();
//! let program = a.assemble();
//!
//! let mut nemu = Nemu::new(&program);
//! let result = nemu.run(1_000);
//! assert_eq!(result.exit_code, Some(42));
//! ```

pub mod fast;
pub mod hart;
pub mod interp;
pub mod registry;
pub mod trace;

pub use fast::{Nemu, NemuStats};
pub use hart::{Hart, MemAccess, StepInfo};
pub use interp::{boot, DromajoLike, Interpreter, QemuTciLike, RunResult, SpikeLike};
pub use trace::{NemuTrace, TraceStats};
