//! The single registry of interpreter personalities.
//!
//! Every tier that fans out over "all interpreters" — the conformance
//! suite, the Fig. 8 bench shootout, the campaign `--ref` flag, the
//! coverage and fuzz pins — derives its set from here, so adding a
//! personality cannot silently skip a test tier.

use crate::fast::Nemu;
use crate::interp::{DromajoLike, Interpreter, QemuTciLike, SpikeLike};
use crate::trace::NemuTrace;
use riscv_isa::asm::Program;

/// One registered interpreter personality.
#[derive(Clone, Copy)]
pub struct Personality {
    /// Stable name, identical to [`Interpreter::name`] of the built
    /// interpreter (and to the campaign CLI `--ref` spelling).
    pub name: &'static str,
    /// Paper counterpart in the Fig. 8 shootout.
    pub paper_counterpart: &'static str,
    /// Boot a fresh interpreter of this personality.
    pub build: fn(&Program) -> Box<dyn Interpreter>,
}

/// All interpreter personalities, slowest-architecture first.
pub const PERSONALITIES: &[Personality] = &[
    Personality {
        name: "dromajo-like",
        paper_counterpart: "Dromajo",
        build: |p| Box::new(DromajoLike::new(p)),
    },
    Personality {
        name: "qemu-tci-like",
        paper_counterpart: "QEMU-TCI",
        build: |p| Box::new(QemuTciLike::new(p)),
    },
    Personality {
        name: "spike-like",
        paper_counterpart: "Spike",
        build: |p| Box::new(SpikeLike::new(p)),
    },
    Personality {
        name: "nemu",
        paper_counterpart: "NEMU",
        build: |p| Box::new(Nemu::new(p)),
    },
    Personality {
        name: "nemu-trace",
        paper_counterpart: "NEMU (trace tier)",
        build: |p| Box::new(NemuTrace::new(p)),
    },
];

/// The registered personality names, in registry order.
pub fn names() -> Vec<&'static str> {
    PERSONALITIES.iter().map(|p| p.name).collect()
}

/// Look up a personality by name.
pub fn find(name: &str) -> Option<&'static Personality> {
    PERSONALITIES.iter().find(|p| p.name == name)
}

/// Boot a named personality on a program.
pub fn boot(name: &str, program: &Program) -> Option<Box<dyn Interpreter>> {
    find(name).map(|p| (p.build)(program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm::{reg::*, Asm};

    #[test]
    fn registry_names_match_interpreter_names() {
        let mut a = Asm::new(0x8000_0000);
        a.li(A0, 42);
        a.ebreak();
        let p = a.assemble();
        for pers in PERSONALITIES {
            let i = (pers.build)(&p);
            assert_eq!(i.name(), pers.name);
        }
    }

    #[test]
    fn registry_has_five_personalities_and_unique_names() {
        let names = names();
        assert_eq!(names.len(), 5);
        let set: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert!(find("nemu-trace").is_some());
        assert!(find("no-such").is_none());
    }

    #[test]
    fn every_personality_runs_a_program() {
        let mut a = Asm::new(0x8000_0000);
        a.li(A0, 41);
        a.addi(A0, A0, 1);
        a.ebreak();
        let p = a.assemble();
        for pers in PERSONALITIES {
            let mut i = boot(pers.name, &p).unwrap();
            assert_eq!(i.run(1000).exit_code, Some(42), "{}", pers.name);
        }
    }
}
