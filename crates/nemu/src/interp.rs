//! The interpreter trait and the three baseline interpreters NEMU is
//! compared against in the paper's Fig. 8: a Spike-like ISS (decoded-
//! instruction cache + SoftFloat arithmetic), a Dromajo-like ISS (plain
//! decode-and-execute, no cache), and a QEMU-TCI-like ISS (an extra
//! bytecode dispatch layer per instruction).

use crate::hart::{self, Hart, StepInfo};
use riscv_isa::mem::SparseMemory;
use riscv_isa::op::{DecodedInst, Op};
use riscv_isa::softfloat;

/// Outcome of [`Interpreter::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Instructions retired during this run call.
    pub instructions: u64,
    /// Exit code if the program halted.
    pub exit_code: Option<u64>,
}

/// A whole-system RISC-V interpreter owning one hart and its memory.
pub trait Interpreter {
    /// Human-readable name used by the benchmark harness.
    fn name(&self) -> &'static str;
    /// The hart.
    fn hart(&self) -> &Hart;
    /// Mutable hart access.
    fn hart_mut(&mut self) -> &mut Hart;
    /// The guest physical memory.
    fn mem_mut(&mut self) -> &mut SparseMemory;
    /// Execute one instruction and report its commit information.
    fn step_one(&mut self) -> StepInfo;

    /// Run until halt or until `max_steps` steps execute.
    ///
    /// A step is one instruction or one trap entry, so a trap storm still
    /// consumes fuel; `instructions` in the result counts actual retires.
    fn run(&mut self, max_steps: u64) -> RunResult {
        let start = self.hart().instret;
        let mut steps = 0;
        while steps < max_steps && !self.hart().is_halted() {
            self.step_one();
            steps += 1;
        }
        RunResult {
            instructions: self.hart().instret - start,
            exit_code: self.hart().halted,
        }
    }
}

/// Load a program image and create a hart at its entry point.
pub fn boot(program: &riscv_isa::asm::Program) -> (Hart, SparseMemory) {
    let mut mem = SparseMemory::new();
    program.load_into(&mut mem);
    (Hart::new(program.entry, 0), mem)
}

// ---------------------------------------------------------------------
// Dromajo-like: straightforward fetch/decode/execute, no caching.
// ---------------------------------------------------------------------

/// A Dromajo-like interpreter: no decode cache at all (the paper notes
/// "there is no cache in Dromajo", §III-D2).
#[derive(Debug, Clone)]
pub struct DromajoLike {
    hart: Hart,
    mem: SparseMemory,
}

impl DromajoLike {
    /// Boot a program.
    pub fn new(program: &riscv_isa::asm::Program) -> Self {
        let (hart, mem) = boot(program);
        DromajoLike { hart, mem }
    }
}

impl Interpreter for DromajoLike {
    fn name(&self) -> &'static str {
        "dromajo-like"
    }
    fn hart(&self) -> &Hart {
        &self.hart
    }
    fn hart_mut(&mut self) -> &mut Hart {
        &mut self.hart
    }
    fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }
    fn step_one(&mut self) -> StepInfo {
        hart::step(&mut self.hart, &mut self.mem)
    }
}

// ---------------------------------------------------------------------
// Spike-like: direct-mapped decoded-instruction cache + SoftFloat.
// ---------------------------------------------------------------------

/// A Spike-like interpreter: a direct-mapped software instruction cache of
/// decoded instructions (subject to conflict misses, unlike NEMU's
/// trace-organized uop cache) and SoftFloat-style software arithmetic for
/// FP add/sub/mul/FMA — the two structural properties the paper credits
/// for Spike's performance profile.
#[derive(Debug, Clone)]
pub struct SpikeLike {
    hart: Hart,
    mem: SparseMemory,
    cache: Vec<CacheEntry>,
    mask: u64,
    /// Decode-cache hits.
    pub hits: u64,
    /// Decode-cache misses (including conflict misses).
    pub misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    tag: u64,
    inst: DecodedInst,
}

impl SpikeLike {
    /// Default software instruction-cache size (the paper sweeps 1024 to
    /// 32768 and selects 16384 as best for Spike).
    pub const DEFAULT_CACHE_SIZE: usize = 16384;

    /// Boot a program with the default cache size.
    pub fn new(program: &riscv_isa::asm::Program) -> Self {
        Self::with_cache_size(program, Self::DEFAULT_CACHE_SIZE)
    }

    /// Boot a program with a specific (power-of-two) cache size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two.
    pub fn with_cache_size(program: &riscv_isa::asm::Program, size: usize) -> Self {
        assert!(size.is_power_of_two(), "cache size must be a power of two");
        let (hart, mem) = boot(program);
        SpikeLike {
            hart,
            mem,
            cache: vec![
                CacheEntry {
                    tag: u64::MAX,
                    inst: DecodedInst::default(),
                };
                size
            ],
            mask: size as u64 - 1,
            hits: 0,
            misses: 0,
        }
    }

    fn lookup(&mut self) -> Result<DecodedInst, crate::hart::ExecError> {
        let pc = self.hart.state.pc;
        let idx = ((pc >> 1) & self.mask) as usize;
        let e = &self.cache[idx];
        if e.tag == pc {
            self.hits += 1;
            return Ok(e.inst);
        }
        self.misses += 1;
        let inst = hart::fetch(&mut self.hart, &mut self.mem)?;
        self.cache[idx] = CacheEntry { tag: pc, inst };
        Ok(inst)
    }

    fn flush_cache(&mut self) {
        for e in &mut self.cache {
            e.tag = u64::MAX;
        }
    }
}

/// Execute an FP add/sub/mul/FMA through the exact softfloat kernels.
/// Returns `true` when the op was handled.
pub(crate) fn execute_fp_soft(hart: &mut Hart, d: &DecodedInst, info: &mut StepInfo) -> bool {
    use Op::*;
    let s = &mut hart.state;
    if s.csr.mstatus & riscv_isa::csr::mstatus::FS == 0 {
        return false; // let the generic path raise the illegal trap
    }
    let a = s.fpr[d.rs1 as usize];
    let b = s.fpr[d.rs2 as usize];
    let c = s.fpr[d.rs3 as usize];
    const SIGN64: u64 = 1 << 63;
    const SIGN32: u32 = 1 << 31;
    let unb = |v: u64| -> u32 {
        if v >> 32 == 0xffff_ffff {
            v as u32
        } else {
            0x7fc0_0000
        }
    };
    let (bits, flags, single) = match d.op {
        FaddD => {
            let r = softfloat::add64(a, b);
            (r.bits, r.flags, false)
        }
        FsubD => {
            let r = softfloat::sub64(a, b);
            (r.bits, r.flags, false)
        }
        FmulD => {
            let r = softfloat::mul64(a, b);
            (r.bits, r.flags, false)
        }
        FmaddD => {
            let r = softfloat::fma64(a, b, c);
            (r.bits, r.flags, false)
        }
        FmsubD => {
            let r = softfloat::fma64(a, b, c ^ SIGN64);
            (r.bits, r.flags, false)
        }
        FnmsubD => {
            let r = softfloat::fma64(a ^ SIGN64, b, c);
            (r.bits, r.flags, false)
        }
        FnmaddD => {
            let r = softfloat::fma64(a ^ SIGN64, b, c ^ SIGN64);
            (r.bits, r.flags, false)
        }
        FaddS => {
            let r = softfloat::add32(unb(a), unb(b));
            (r.bits as u64, r.flags, true)
        }
        FsubS => {
            let r = softfloat::sub32(unb(a), unb(b));
            (r.bits as u64, r.flags, true)
        }
        FmulS => {
            let r = softfloat::mul32(unb(a), unb(b));
            (r.bits as u64, r.flags, true)
        }
        FmaddS => {
            let r = softfloat::fma32(unb(a), unb(b), unb(c));
            (r.bits as u64, r.flags, true)
        }
        FmsubS => {
            let r = softfloat::fma32(unb(a), unb(b), unb(c) ^ SIGN32);
            (r.bits as u64, r.flags, true)
        }
        FnmsubS => {
            let r = softfloat::fma32(unb(a) ^ SIGN32, unb(b), unb(c));
            (r.bits as u64, r.flags, true)
        }
        FnmaddS => {
            let r = softfloat::fma32(unb(a) ^ SIGN32, unb(b), unb(c) ^ SIGN32);
            (r.bits as u64, r.flags, true)
        }
        _ => return false,
    };
    let boxed = if single {
        0xffff_ffff_0000_0000 | bits
    } else {
        bits
    };
    s.csr.set_fflags(flags);
    s.fpr[d.rd as usize] = boxed;
    info.wb = Some((true, d.rd, boxed));
    s.pc = s.pc.wrapping_add(d.len as u64);
    true
}

impl Interpreter for SpikeLike {
    fn name(&self) -> &'static str {
        "spike-like"
    }
    fn hart(&self) -> &Hart {
        &self.hart
    }
    fn hart_mut(&mut self) -> &mut Hart {
        &mut self.hart
    }
    fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }
    fn step_one(&mut self) -> StepInfo {
        let mut info = StepInfo {
            pc: self.hart.state.pc,
            inst: DecodedInst::default(),
            trap: None,
            wb: None,
            mem: None,
            sc_failed: false,
            halted: false,
        };
        if self.hart.is_halted() {
            info.halted = true;
            return info;
        }
        if self.hart.pending_injection.is_some() || self.hart.state.csr.pending_interrupt().is_some()
        {
            return hart::step(&mut self.hart, &mut self.mem);
        }
        let d = match self.lookup() {
            Ok(d) => d,
            Err(_) => return hart::step(&mut self.hart, &mut self.mem),
        };
        info.inst = d;
        if execute_fp_soft(&mut self.hart, &d, &mut info) {
            self.hart.instret += 1;
            self.hart.state.csr.minstret = self.hart.state.csr.minstret.wrapping_add(1);
            self.hart.state.csr.mcycle = self.hart.state.csr.mcycle.wrapping_add(1);
            return info;
        }
        match hart::execute(&mut self.hart, &mut self.mem, &d, &mut info) {
            Ok(()) => {
                self.hart.instret += 1;
                self.hart.state.csr.minstret = self.hart.state.csr.minstret.wrapping_add(1);
                self.hart.state.csr.mcycle = self.hart.state.csr.mcycle.wrapping_add(1);
                if matches!(d.op, Op::FenceI | Op::SfenceVma) {
                    self.flush_cache();
                }
            }
            Err(e) => {
                let trap = riscv_isa::trap::Trap::Exception(e.cause, e.tval);
                let target = self.hart.state.csr.take_trap(trap, info.pc);
                self.hart.state.pc = target;
                self.hart.state.csr.mcycle = self.hart.state.csr.mcycle.wrapping_add(1);
                info.trap = Some(trap);
            }
        }
        info
    }
}

// ---------------------------------------------------------------------
// QEMU-TCI-like: per-instruction lowering to a bytecode dispatch layer.
// ---------------------------------------------------------------------

/// Micro-op bytecode of the TCI-like dispatch layer.
#[derive(Debug, Clone, Copy)]
enum TciOp {
    /// Read the source operands into the virtual accumulators.
    LoadOperands,
    /// Perform the architectural operation.
    Exec,
    /// Retire: bump counters.
    Retire,
    /// End of bytecode.
    End,
}

/// A QEMU-TCI-like interpreter: every instruction is lowered into a tiny
/// bytecode program which an inner dispatcher then interprets. This models
/// the cost structure of interpreting TCG ops rather than host code (the
/// reason QEMU-TCI trails Spike in Fig. 8).
#[derive(Debug, Clone)]
pub struct QemuTciLike {
    hart: Hart,
    mem: SparseMemory,
    scratch: [u64; 4],
}

impl QemuTciLike {
    /// Boot a program.
    pub fn new(program: &riscv_isa::asm::Program) -> Self {
        let (hart, mem) = boot(program);
        QemuTciLike {
            hart,
            mem,
            scratch: [0; 4],
        }
    }
}

impl Interpreter for QemuTciLike {
    fn name(&self) -> &'static str {
        "qemu-tci-like"
    }
    fn hart(&self) -> &Hart {
        &self.hart
    }
    fn hart_mut(&mut self) -> &mut Hart {
        &mut self.hart
    }
    fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }
    fn step_one(&mut self) -> StepInfo {
        let mut info = StepInfo {
            pc: self.hart.state.pc,
            inst: DecodedInst::default(),
            trap: None,
            wb: None,
            mem: None,
            sc_failed: false,
            halted: false,
        };
        if self.hart.is_halted() {
            info.halted = true;
            return info;
        }
        if self.hart.pending_injection.is_some() || self.hart.state.csr.pending_interrupt().is_some()
        {
            return hart::step(&mut self.hart, &mut self.mem);
        }
        let d = match hart::fetch(&mut self.hart, &mut self.mem) {
            Ok(d) => d,
            Err(_) => return hart::step(&mut self.hart, &mut self.mem),
        };
        info.inst = d;
        // Lower into bytecode, then dispatch it.
        let program = [TciOp::LoadOperands, TciOp::Exec, TciOp::Retire, TciOp::End];
        let mut tpc = 0usize;
        loop {
            match program[tpc] {
                TciOp::LoadOperands => {
                    self.scratch[0] = self.hart.state.read_gpr(d.rs1);
                    self.scratch[1] = self.hart.state.read_gpr(d.rs2);
                    self.scratch[2] = d.imm as u64;
                }
                TciOp::Exec => {
                    match hart::execute(&mut self.hart, &mut self.mem, &d, &mut info) {
                        Ok(()) => {}
                        Err(e) => {
                            let trap = riscv_isa::trap::Trap::Exception(e.cause, e.tval);
                            let target = self.hart.state.csr.take_trap(trap, info.pc);
                            self.hart.state.pc = target;
                            self.hart.state.csr.mcycle =
                                self.hart.state.csr.mcycle.wrapping_add(1);
                            info.trap = Some(trap);
                            return info;
                        }
                    }
                }
                TciOp::Retire => {
                    self.hart.instret += 1;
                    self.hart.state.csr.minstret =
                        self.hart.state.csr.minstret.wrapping_add(1);
                    self.hart.state.csr.mcycle = self.hart.state.csr.mcycle.wrapping_add(1);
                }
                TciOp::End => break,
            }
            tpc += 1;
        }
        info
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm::{reg::*, Asm};

    fn sum_program() -> riscv_isa::asm::Program {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 0);
        a.li(T1, 1000);
        a.li(T2, 0);
        let top = a.bound_label();
        a.add(T2, T2, T0);
        a.addi(T0, T0, 1);
        a.bne(T0, T1, top);
        a.mv(A0, T2);
        a.ebreak();
        a.assemble()
    }

    fn fp_program() -> riscv_isa::asm::Program {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 1);
        a.fcvt_d_l(FT0, T0); // 1.0
        a.fmv_d_x(FT1, ZERO); // 0.0
        a.li(T1, 100);
        let top = a.bound_label();
        a.fmadd_d(FT1, FT0, FT0, FT1); // acc += 1.0
        a.addi(T1, T1, -1);
        a.bnez(T1, top);
        a.fcvt_l_d(A0, FT1);
        a.ebreak();
        a.assemble()
    }

    #[test]
    fn all_baselines_agree_on_int() {
        let expected = (0..1000u64).sum::<u64>();
        let p = sum_program();
        let mut d = DromajoLike::new(&p);
        let mut s = SpikeLike::new(&p);
        let mut q = QemuTciLike::new(&p);
        assert_eq!(d.run(1_000_000).exit_code, Some(expected));
        assert_eq!(s.run(1_000_000).exit_code, Some(expected));
        assert_eq!(q.run(1_000_000).exit_code, Some(expected));
        // All retire the same dynamic instruction count.
        assert_eq!(d.hart().instret, s.hart().instret);
        assert_eq!(d.hart().instret, q.hart().instret);
    }

    #[test]
    fn softfloat_path_matches_host_path() {
        let p = fp_program();
        let mut d = DromajoLike::new(&p); // host FP
        let mut s = SpikeLike::new(&p); // softfloat
        assert_eq!(d.run(1_000_000).exit_code, Some(100));
        assert_eq!(s.run(1_000_000).exit_code, Some(100));
        assert_eq!(d.hart().state.fpr, s.hart().state.fpr);
    }

    #[test]
    fn spike_cache_hits_dominate_in_loops() {
        let p = sum_program();
        let mut s = SpikeLike::new(&p);
        s.run(1_000_000);
        assert!(s.hits > s.misses * 10, "hits={} misses={}", s.hits, s.misses);
    }

    #[test]
    fn spike_small_cache_conflicts() {
        // A 2-entry cache on a loop of >2 instructions must conflict-miss.
        let p = sum_program();
        let mut s = SpikeLike::with_cache_size(&p, 2);
        s.run(100_000);
        assert!(s.misses > s.hits, "conflict misses expected");
    }

    #[test]
    fn run_respects_fuel() {
        let p = sum_program();
        let mut d = DromajoLike::new(&p);
        let r = d.run(10);
        assert_eq!(r.instructions, 10);
        assert_eq!(r.exit_code, None);
    }
}
