//! NEMU: the fast threaded-code interpreter with a trace-organized uop
//! cache (paper §III-D1).
//!
//! The optimizations of Fig. 7 are reproduced structurally:
//!
//! - **uop cache**: decode results (operation, pre-extracted operands,
//!   handler) are cached; fetch+decode happen only on uop-cache misses.
//! - **trace organization**: entries for a basic block are allocated
//!   sequentially, so advancing within a block is `upc + 1` — no hashing
//!   and no conflict misses. The cache is flushed only when full or on a
//!   system event (fence.i, sfence.vma, privilege/translation changes).
//! - **block chaining**: direct jumps and both edges of conditional
//!   branches cache the uop index of their target; indirect jumps query
//!   the pc→upc hash map (the slow path).
//! - **zero-register redirection**: writes to `x0` are redirected at
//!   decode time to a 33rd scratch register, removing the `rd != 0` check
//!   from every handler.
//! - **pseudo-instruction specialization**: `li`/`mv`/`ret`/`auipc` get
//!   dedicated handlers with fully inlined operands (`auipc` folds
//!   `pc + imm` into a load-immediate at decode time).
//! - **host floating point**: FP arithmetic uses the host FPU
//!   ([`riscv_isa::fpu`]) rather than softfloat.

use crate::hart::{self, Hart, StepInfo, MTIME, UART_TX};
use crate::interp::{Interpreter, RunResult};
use riscv_isa::exec::{branch_taken, int_compute, load_extend};
use riscv_isa::fpu::fp_execute;
use riscv_isa::mem::{PhysMem, SparseMemory};
use riscv_isa::mmu::{self, AccessType};
use riscv_isa::op::{DecodedInst, Op};
use std::collections::HashMap;

const UNRESOLVED: u32 = u32::MAX;
const MAX_TRACE: usize = 64;

/// Dispatch class of a uop (the "execution routine" pointer of Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Handler {
    /// `rd = imm` (li, lui, and auipc with the pc folded in).
    Li,
    /// `rd = rs1` (mv).
    Mv,
    /// Two-register ALU op via [`int_compute`].
    AluRR,
    /// Register-immediate ALU op via [`int_compute`].
    AluRI,
    /// Integer load.
    Load,
    /// FP load.
    FLoad,
    /// Integer store.
    Store,
    /// FP store.
    FStore,
    /// Direct jump with link.
    Jal,
    /// Indirect jump (hash-list query).
    Jalr,
    /// `ret` — jalr x0, 0(ra), specialized.
    Ret,
    /// Conditional branch with chained both edges.
    Branch,
    /// Trace-length-cap sentinel: transfer to `pc` through the outer loop
    /// without consuming an instruction.
    Goto,
    /// Host-FPU floating-point operation.
    HostFp,
    /// `nop` / fence treated as no-op.
    Nop,
    /// Anything else: synchronize and take the interpreter slow path.
    Slow,
}

/// One uop-cache entry.
#[derive(Debug, Clone, Copy)]
struct Uop {
    handler: Handler,
    /// Destination register, redirected to 32 when the instruction
    /// architecturally targets `x0`.
    rd: u8,
    rs1: u8,
    rs2: u8,
    imm: i64,
    pc: u64,
    next_pc: u64,
    /// Chained upc of the taken target (branches, jal).
    target: u32,
    /// Chained upc of the fall-through (branches only).
    fallthru: u32,
    /// Full decode result for generic handlers.
    inst: DecodedInst,
}

/// uop-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NemuStats {
    /// Block-entry hits in the pc→upc map plus chained transfers.
    pub uop_hits: u64,
    /// Fills (fetch+decode) performed.
    pub uop_fills: u64,
    /// Whole-cache flushes (capacity or system events).
    pub flushes: u64,
    /// Instructions executed through the slow path.
    pub slow_steps: u64,
}

/// The NEMU fast interpreter.
#[derive(Debug, Clone)]
pub struct Nemu {
    hart: Hart,
    mem: SparseMemory,
    regs: [u64; 33],
    code: Vec<Uop>,
    map: HashMap<u64, u32>,
    capacity: usize,
    fast_mem: bool,
    /// Cache/trace statistics.
    pub stats: NemuStats,
}

impl Nemu {
    /// Default uop-cache capacity in entries (the paper selects 16384).
    pub const DEFAULT_CAPACITY: usize = 16384;

    /// Boot a program with the default uop-cache capacity.
    pub fn new(program: &riscv_isa::asm::Program) -> Self {
        Self::with_capacity(program, Self::DEFAULT_CAPACITY)
    }

    /// Boot a program with an explicit uop-cache capacity.
    pub fn with_capacity(program: &riscv_isa::asm::Program, capacity: usize) -> Self {
        let (hart, mem) = crate::interp::boot(program);
        let mut n = Nemu {
            hart,
            mem,
            regs: [0; 33],
            code: Vec::with_capacity(capacity),
            map: HashMap::new(),
            capacity,
            fast_mem: true,
            stats: NemuStats::default(),
        };
        n.refresh_fast_mem();
        n
    }

    /// Construct directly from a hart + memory (checkpoint restore path).
    pub fn from_parts(hart: Hart, mem: SparseMemory) -> Self {
        let mut n = Nemu {
            hart,
            mem,
            regs: [0; 33],
            code: Vec::with_capacity(Self::DEFAULT_CAPACITY),
            map: HashMap::new(),
            capacity: Self::DEFAULT_CAPACITY,
            fast_mem: true,
            stats: NemuStats::default(),
        };
        n.refresh_fast_mem();
        n
    }

    /// Re-import architectural state after an external write to the hart
    /// (DiffTest REF patches write `hart.state` directly; the shadow
    /// register file must follow or the next sync would clobber them).
    pub fn resync(&mut self) {
        self.sync_regs_from_hart();
    }

    fn refresh_fast_mem(&mut self) {
        // The fast path assumes flat physical memory: machine mode (or
        // bare satp) and no MPRV redirection.
        let csr = &self.hart.state.csr;
        self.fast_mem = !mmu::translation_active(csr, AccessType::Fetch)
            && !mmu::translation_active(csr, AccessType::Load)
            && !self.hart.proxy_kernel_needs_slow();
    }

    fn sync_regs_to_hart(&mut self) {
        self.hart.state.gpr.copy_from_slice(&self.regs[..32]);
        self.hart.state.csr.minstret = self.hart.instret;
        self.hart.state.csr.mcycle = self.hart.instret;
    }

    fn sync_regs_from_hart(&mut self) {
        self.regs[..32].copy_from_slice(&self.hart.state.gpr);
        self.regs[0] = 0;
    }

    fn flush(&mut self) {
        self.code.clear();
        self.map.clear();
        self.stats.flushes += 1;
    }

    /// Decode a trace starting at `pc` into the uop cache, returning the
    /// upc of its head, or `None` when the fast path cannot run.
    fn fill(&mut self, pc: u64) -> Option<u32> {
        if !self.fast_mem {
            return None;
        }
        if self.code.len() + MAX_TRACE > self.capacity {
            self.flush();
        }
        let head = self.code.len() as u32;
        let mut p = pc;
        let mut block_ended = false;
        for _ in 0..MAX_TRACE {
            let raw = self.mem.fetch32(p);
            let d = riscv_isa::decode(raw);
            let handler = classify(&d);
            let rd = if d.rd == 0 { 32 } else { d.rd };
            let imm = match (handler, d.op) {
                // auipc folds pc into the immediate at decode time.
                (Handler::Li, Op::Auipc) => p.wrapping_add(d.imm as u64) as i64,
                _ => d.imm,
            };
            let idx = self.code.len() as u32;
            self.code.push(Uop {
                handler,
                rd,
                rs1: d.rs1,
                rs2: d.rs2,
                imm,
                pc: p,
                next_pc: p.wrapping_add(d.len as u64),
                target: UNRESOLVED,
                fallthru: UNRESOLVED,
                inst: d,
            });
            self.map.insert(p, idx);
            self.stats.uop_fills += 1;
            p = p.wrapping_add(d.len as u64);
            if d.ends_block() || handler == Handler::Slow {
                block_ended = true;
                break;
            }
        }
        if !block_ended {
            // The trace hit its length cap mid-block; continue through the
            // outer loop at the unfinished pc (not mapped: the real
            // instruction there gets its own trace later).
            self.code.push(Uop {
                handler: Handler::Goto,
                rd: 32,
                rs1: 0,
                rs2: 0,
                imm: 0,
                pc: p,
                next_pc: p,
                target: UNRESOLVED,
                fallthru: UNRESOLVED,
                inst: DecodedInst::default(),
            });
        }
        Some(head)
    }

    fn lookup_or_fill(&mut self, pc: u64) -> Option<u32> {
        if let Some(&u) = self.map.get(&pc) {
            self.stats.uop_hits += 1;
            return Some(u);
        }
        self.fill(pc)
    }

    /// One slow-path architectural step (also used when the fast path is
    /// unavailable). Returns true when execution may continue.
    fn slow_step(&mut self) -> StepInfo {
        self.sync_regs_to_hart();
        let info = hart::step(&mut self.hart, &mut self.mem);
        self.sync_regs_from_hart();
        self.stats.slow_steps += 1;
        // System events invalidate cached translations/uops.
        if matches!(
            info.inst.op,
            Op::FenceI | Op::SfenceVma | Op::Mret | Op::Sret
        ) || info.inst.op == Op::Csrrw && info.inst.csr() == riscv_isa::csr::addr::SATP
            || info.trap.is_some()
        {
            self.flush();
        }
        self.refresh_fast_mem();
        info
    }

    /// The fast execution loop; returns steps consumed.
    fn run_fast(&mut self, max_steps: u64) -> u64 {
        let mut steps = 0u64;
        'outer: while steps < max_steps && !self.hart.is_halted() {
            if self.hart.pending_injection.is_some()
                || self.hart.state.csr.pending_interrupt().is_some()
            {
                self.slow_step();
                steps += 1;
                continue;
            }
            let Some(mut upc) = self.lookup_or_fill(self.hart.state.pc) else {
                self.slow_step();
                steps += 1;
                continue;
            };
            // Tight dispatch loop: stays inside the uop cache until a
            // slow event, an unresolved edge, or fuel runs out.
            while steps < max_steps {
                let uop = self.code[upc as usize];
                steps += 1;
                self.hart.instret += 1;
                match uop.handler {
                    Handler::Li => {
                        self.regs[uop.rd as usize] = uop.imm as u64;
                        upc += 1;
                    }
                    Handler::Mv => {
                        self.regs[uop.rd as usize] = self.regs[uop.rs1 as usize];
                        upc += 1;
                    }
                    Handler::AluRI => {
                        let a = self.regs[uop.rs1 as usize];
                        self.regs[uop.rd as usize] =
                            int_compute(uop.inst.op, a, uop.imm as u64)
                                .expect("AluRI ops are int_compute-able");
                        upc += 1;
                    }
                    Handler::AluRR => {
                        let a = self.regs[uop.rs1 as usize];
                        let b = self.regs[uop.rs2 as usize];
                        self.regs[uop.rd as usize] = int_compute(uop.inst.op, a, b)
                            .expect("AluRR ops are int_compute-able");
                        upc += 1;
                    }
                    Handler::Load => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let raw = if va == MTIME {
                            self.hart.state.csr.time
                        } else {
                            self.mem.read_uint(va, uop.inst.mem_size())
                        };
                        self.regs[uop.rd as usize] = load_extend(uop.inst.op, raw);
                        upc += 1;
                    }
                    Handler::FLoad => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let raw = self.mem.read_uint(va, uop.inst.mem_size());
                        self.hart.state.fpr[uop.inst.rd as usize] = if uop.inst.op == Op::Flw {
                            0xffff_ffff_0000_0000 | raw
                        } else {
                            raw
                        };
                        upc += 1;
                    }
                    Handler::Store => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let v = self.regs[uop.rs2 as usize];
                        if va == UART_TX {
                            self.hart.output.push(v as u8);
                        } else {
                            self.mem.write_uint(va, uop.inst.mem_size(), v);
                        }
                        upc += 1;
                    }
                    Handler::FStore => {
                        let va = self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64);
                        let v = self.hart.state.fpr[uop.inst.rs2 as usize];
                        self.mem.write_uint(va, uop.inst.mem_size(), v);
                        upc += 1;
                    }
                    Handler::Nop => upc += 1,
                    Handler::HostFp => {
                        let d = &uop.inst;
                        let a = if d.rs1_is_fpr() {
                            self.hart.state.fpr[d.rs1 as usize]
                        } else {
                            self.regs[d.rs1 as usize]
                        };
                        let b = if d.rs2_is_fpr() {
                            self.hart.state.fpr[d.rs2 as usize]
                        } else {
                            self.regs[d.rs2 as usize]
                        };
                        let c = self.hart.state.fpr[d.rs3 as usize];
                        let rm = if d.rm == 7 {
                            self.hart.state.csr.frm()
                        } else {
                            d.rm
                        };
                        let r = fp_execute(d.op, a, b, c, rm);
                        self.hart.state.csr.set_fflags(r.flags);
                        if d.writes_fpr() {
                            self.hart.state.fpr[d.rd as usize] = r.bits;
                        } else {
                            self.regs[uop.rd as usize] = r.bits;
                        }
                        upc += 1;
                    }
                    Handler::Jal => {
                        self.regs[uop.rd as usize] = uop.next_pc;
                        let target_pc = uop.pc.wrapping_add(uop.imm as u64);
                        match self.chase(upc, target_pc, true) {
                            Some(u) => upc = u,
                            None => {
                                self.hart.state.pc = target_pc;
                                continue 'outer;
                            }
                        }
                    }
                    Handler::Ret => {
                        let target_pc = self.regs[1] & !1;
                        match self.map.get(&target_pc) {
                            Some(&u) => {
                                self.stats.uop_hits += 1;
                                upc = u;
                            }
                            None => {
                                self.hart.state.pc = target_pc;
                                continue 'outer;
                            }
                        }
                    }
                    Handler::Jalr => {
                        let target_pc =
                            self.regs[uop.rs1 as usize].wrapping_add(uop.imm as u64) & !1;
                        self.regs[uop.rd as usize] = uop.next_pc;
                        match self.map.get(&target_pc) {
                            Some(&u) => {
                                self.stats.uop_hits += 1;
                                upc = u;
                            }
                            None => {
                                self.hart.state.pc = target_pc;
                                continue 'outer;
                            }
                        }
                    }
                    Handler::Branch => {
                        let a = self.regs[uop.rs1 as usize];
                        let b = self.regs[uop.rs2 as usize];
                        let taken = branch_taken(uop.inst.op, a, b);
                        let target_pc = if taken {
                            uop.pc.wrapping_add(uop.imm as u64)
                        } else {
                            uop.next_pc
                        };
                        match self.chase(upc, target_pc, taken) {
                            Some(u) => upc = u,
                            None => {
                                self.hart.state.pc = target_pc;
                                continue 'outer;
                            }
                        }
                    }
                    Handler::Goto => {
                        // Sentinel: no instruction executed, re-enter via
                        // the outer loop at the continuation pc.
                        steps -= 1;
                        self.hart.instret -= 1;
                        self.hart.state.pc = uop.pc;
                        continue 'outer;
                    }
                    Handler::Slow => {
                        // Roll back the optimistic retire; slow_step
                        // retires (or traps) architecturally.
                        self.hart.instret -= 1;
                        self.hart.state.pc = uop.pc;
                        self.slow_step();
                        if self.hart.is_halted() {
                            break 'outer;
                        }
                        continue 'outer;
                    }
                }
            }
            // Fuel exhausted inside the block: record the resume pc.
            if steps >= max_steps {
                self.hart.state.pc = self.code[upc as usize].pc;
                break;
            }
        }
        self.sync_regs_to_hart();
        steps
    }

    /// Follow (and memoize) a chained control-flow edge.
    fn chase(&mut self, upc: u32, target_pc: u64, taken_edge: bool) -> Option<u32> {
        let cached = if taken_edge {
            self.code[upc as usize].target
        } else {
            self.code[upc as usize].fallthru
        };
        if cached != UNRESOLVED && self.code[cached as usize].pc == target_pc {
            self.stats.uop_hits += 1;
            return Some(cached);
        }
        if let Some(&u) = self.map.get(&target_pc) {
            self.stats.uop_hits += 1;
            let slot = if taken_edge {
                &mut self.code[upc as usize].target
            } else {
                &mut self.code[upc as usize].fallthru
            };
            *slot = u;
            return Some(u);
        }
        None
    }
}

/// Classify an instruction into its fast-path handler.
fn classify(d: &DecodedInst) -> Handler {
    use Op::*;
    match d.op {
        Illegal | Ecall | Ebreak | Mret | Sret | Wfi | FenceI | SfenceVma | Csrrw | Csrrs
        | Csrrc | Csrrwi | Csrrsi | Csrrci | LrW | LrD | ScW | ScD => Handler::Slow,
        _ if d.is_amo() => Handler::Slow,
        Fence => Handler::Nop,
        Lui => Handler::Li,
        Auipc => Handler::Li,
        Addi if d.rs1 == 0 => Handler::Li,
        Addi if d.imm == 0 => Handler::Mv,
        Jal => Handler::Jal,
        Jalr if d.rd == 0 && d.rs1 == 1 && d.imm == 0 => Handler::Ret,
        Jalr => Handler::Jalr,
        Beq | Bne | Blt | Bge | Bltu | Bgeu => Handler::Branch,
        Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => Handler::Load,
        Flw | Fld => Handler::FLoad,
        Sb | Sh | Sw | Sd => Handler::Store,
        Fsw | Fsd => Handler::FStore,
        op => {
            if int_compute(op, 0, 0).is_some() {
                if crate::hart::has_imm_operand(op) {
                    Handler::AluRI
                } else {
                    Handler::AluRR
                }
            } else {
                // Remaining ops are floating point.
                Handler::HostFp
            }
        }
    }
}

impl Hart {
    /// True when this hart's configuration forces NEMU onto the slow path
    /// for memory accesses (currently only proxy-kernel syscalls need it,
    /// and those are `ecall`s which are always slow anyway).
    fn proxy_kernel_needs_slow(&self) -> bool {
        false
    }
}

impl Interpreter for Nemu {
    fn name(&self) -> &'static str {
        "nemu"
    }
    fn hart(&self) -> &Hart {
        &self.hart
    }
    fn hart_mut(&mut self) -> &mut Hart {
        &mut self.hart
    }
    fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }
    fn step_one(&mut self) -> StepInfo {
        // Single-step goes through the architectural slow path so that
        // probes receive full commit information (this is how NEMU serves
        // as the DiffTest REF).
        self.sync_regs_to_hart();
        let info = hart::step(&mut self.hart, &mut self.mem);
        self.sync_regs_from_hart();
        if matches!(info.inst.op, Op::FenceI | Op::SfenceVma | Op::Mret | Op::Sret)
            || info.trap.is_some()
        {
            self.flush();
        }
        self.refresh_fast_mem();
        info
    }
    fn run(&mut self, max_steps: u64) -> RunResult {
        let start = self.hart.instret;
        self.sync_regs_from_hart();
        self.run_fast(max_steps);
        RunResult {
            instructions: self.hart.instret - start,
            exit_code: self.hart.halted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::DromajoLike;
    use riscv_isa::asm::{reg::*, Asm};

    fn sum_program(n: i64) -> riscv_isa::asm::Program {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 0);
        a.li(T1, n);
        a.li(T2, 0);
        let top = a.bound_label();
        a.add(T2, T2, T0);
        a.addi(T0, T0, 1);
        a.bne(T0, T1, top);
        a.mv(A0, T2);
        a.ebreak();
        a.assemble()
    }

    #[test]
    fn fast_loop_matches_reference() {
        let p = sum_program(1000);
        let mut n = Nemu::new(&p);
        let mut d = DromajoLike::new(&p);
        let rn = n.run(10_000_000);
        let rd = d.run(10_000_000);
        assert_eq!(rn.exit_code, Some((0..1000u64).sum()));
        assert_eq!(rn.exit_code, rd.exit_code);
        assert_eq!(rn.instructions, rd.instructions);
        assert_eq!(n.hart().state.gpr, d.hart().state.gpr);
    }

    #[test]
    fn uop_cache_hits_dominate() {
        let p = sum_program(10_000);
        let mut n = Nemu::new(&p);
        n.run(10_000_000);
        assert!(
            n.stats.uop_fills < 50,
            "fills should be one per static instruction, got {}",
            n.stats.uop_fills
        );
        assert!(n.stats.uop_hits > 1000);
    }

    #[test]
    fn capacity_flush() {
        // A tiny cache forces flushes on a program with many blocks.
        let mut a = Asm::new(0x8000_0000);
        let mut labels: Vec<u32> = Vec::new();
        // A long chain of jumps creating many 1-instruction blocks.
        for _ in 0..200 {
            let l = a.label();
            a.j(l);
            a.bind(l);
        }
        a.li(A0, 9);
        a.ebreak();
        let p = a.assemble();
        labels.clear();
        let mut n = Nemu::with_capacity(&p, 128);
        let r = n.run(100_000);
        assert_eq!(r.exit_code, Some(9));
        assert!(n.stats.flushes >= 1, "capacity flush expected");
    }

    #[test]
    fn function_calls_and_ret() {
        let mut a = Asm::new(0x8000_0000);
        let func = a.label();
        let done = a.label();
        a.li(A0, 0);
        a.li(T0, 5);
        let top = a.bound_label();
        a.call(func);
        a.addi(T0, T0, -1);
        a.bnez(T0, top);
        a.j(done);
        a.bind(func);
        a.addi(A0, A0, 10);
        a.ret();
        a.bind(done);
        a.ebreak();
        let p = a.assemble();
        let mut n = Nemu::new(&p);
        assert_eq!(n.run(100_000).exit_code, Some(50));
    }

    #[test]
    fn fuel_stops_mid_block_and_resumes() {
        let p = sum_program(1000);
        let mut n = Nemu::new(&p);
        let mut total = 0;
        loop {
            let r = n.run(7);
            total += r.instructions;
            if r.exit_code.is_some() {
                break;
            }
            assert!(r.instructions <= 7);
        }
        // Compare against the uninterrupted count.
        let mut d = DromajoLike::new(&p);
        let rd = d.run(10_000_000);
        assert_eq!(total, rd.instructions);
        assert_eq!(n.hart().halted, rd.exit_code);
    }

    #[test]
    fn slow_path_csr_and_amo() {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 0x8001_0000);
        a.li(T1, 7);
        a.amoadd_d(T2, T1, T0); // mem += 7 (from 0)
        a.amoadd_d(T3, T1, T0); // t3 = 7
        a.csrrw(ZERO, riscv_isa::csr::addr::MSCRATCH, T3);
        a.csrrs(A0, riscv_isa::csr::addr::MSCRATCH, ZERO);
        a.ebreak();
        let p = a.assemble();
        let mut n = Nemu::new(&p);
        assert_eq!(n.run(1000).exit_code, Some(7));
        assert!(n.stats.slow_steps >= 4);
    }

    #[test]
    fn fp_in_fast_loop() {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 2);
        a.fcvt_d_l(FT0, T0);
        a.fmv_d_x(FT1, ZERO);
        a.li(T1, 50);
        let top = a.bound_label();
        a.fmadd_d(FT1, FT0, FT0, FT1); // acc += 4
        a.addi(T1, T1, -1);
        a.bnez(T1, top);
        a.fcvt_l_d(A0, FT1);
        a.ebreak();
        let p = a.assemble();
        let mut n = Nemu::new(&p);
        assert_eq!(n.run(100_000).exit_code, Some(200));
    }

    #[test]
    fn step_one_equals_run() {
        let p = sum_program(50);
        let mut a = Nemu::new(&p);
        let mut b = Nemu::new(&p);
        while !a.hart().is_halted() {
            a.step_one();
        }
        b.run(1_000_000);
        assert_eq!(a.hart().state.gpr, b.hart().state.gpr);
        assert_eq!(a.hart().instret, b.hart().instret);
    }

    #[test]
    fn self_modifying_code_with_fence_i() {
        let mut a = Asm::new(0x8000_0000);
        let patch_site = a.label();
        let new_insn = a.label();
        // Overwrite the instruction at patch_site with "li a0, 77".
        a.la(T0, patch_site);
        a.la(T1, new_insn);
        a.lw(T2, 0, T1);
        a.sw(T2, 0, T0);
        a.fence_i();
        a.bind(patch_site);
        a.li(A0, 1); // will be replaced by li a0, 77
        a.ebreak();
        a.align(2);
        a.bind(new_insn);
        // li a0, 77 == addi a0, x0, 77
        a.data_u32(0x04d0_0513);
        let p = a.assemble();
        let mut n = Nemu::new(&p);
        assert_eq!(n.run(1000).exit_code, Some(77));
    }
}
