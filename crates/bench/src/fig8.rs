//! Fig. 8 interpreter-shootout measurement and the `BENCH_fig8.json`
//! report format.
//!
//! The report is split into a **deterministic body** and a segregated
//! `timing` section. Everything outside `timing` — retired-instruction
//! counts, job counts, personality names — is a pure function of the
//! workload suite and seeds, so two same-seed runs produce byte-identical
//! bodies (`del timing` then compare). Wall-clock-derived rates (sim-MIPS
//! per personality, sim-kilocycles/sec per cycle-model preset, campaign
//! jobs/sec, total elapsed) live only under `timing`. [`validate`] enforces the split structurally: it pins the
//! exact key set at every level, so a wall-clock field added to the body
//! fails the schema check rather than silently breaking determinism.
//!
//! Layout:
//!
//! ```json
//! {
//!   "schema_version": 4,
//!   "figure": "fig8",
//!   "workload": "spec-like-suite@Test",
//!   "fuel": 200000000,
//!   "personalities": {
//!     "nemu-trace": { "paper_counterpart": "...", "instructions": 123 }
//!   },
//!   "campaign": { "ref": "nemu-trace", "jobs": 12, "halted": 12 },
//!   "cycle_model": {
//!     "small-nh": { "cycles": 456, "instret": 123, "cpi_milli": 3707,
//!                   "sampled_cpi_milli": 3800, "sampled_cpi_err_milli": 25 }
//!   },
//!   "timing": {
//!     "mips": { "nemu-trace": 512.3 },
//!     "sim_kilocycles_per_sec": { "small-nh": 210.4 },
//!     "campaign_jobs_per_sec": 3.4,
//!     "total_ms": 4571.2
//!   }
//! }
//! ```

use campaign::{Campaign, JobSpec, WorkloadSource};
use nemu::registry::PERSONALITIES;
use serde::{Map, Value};
use std::time::Instant;
use workloads::{all_workloads, Scale, TortureConfig};
use xscore::XsConfig;

/// Version stamp of the report layout; bump on any structural change.
///
/// v2: adds the `cycle_model` body section (suite cycles / instret /
/// CPI×1000 per tracked preset) and `timing.sim_kilocycles_per_sec`.
///
/// v3: adds `timing.sim_kilocycles_per_sec_by_workload` (per-preset,
/// per-workload rates) so the event-driven skipper's gain on the
/// DRAM-stall-heavy suite entries is measured, not just the aggregate.
///
/// v4: adds per-preset `sampled_cpi_milli` and `sampled_cpi_err_milli`
/// to the `cycle_model` entries: the checkpoint farm's SimPoint-weighted
/// CPI estimate of [`SAMPLED_WORKLOAD`] and its per-mille error against
/// the full simulation of the same workload. Both deterministic; the
/// validator enforces the [`SAMPLED_ERR_BOUND_MILLI`] accuracy gate.
pub const SCHEMA_VERSION: u64 = 4;

/// The workload whose sampled-vs-full CPI error the report tracks.
pub const SAMPLED_WORKLOAD: &str = "sjeng";

/// Maximum tolerated sampled-vs-full CPI error, per mille (25%): the
/// paper reports ~3% SimPoint error at production interval sizes; the
/// test-scale intervals here are far coarser, so the gate is loose —
/// but a regression that breaks checkpoint restore or weighting blows
/// well past it.
pub const SAMPLED_ERR_BOUND_MILLI: u64 = 250;

/// Cycle-model presets tracked by the report, in sorted order (the
/// validator pins the key set, so keep this in sync with the presets
/// registered in [`XsConfig::preset_names`]).
pub const CYCLE_PRESETS: [&str; 2] = ["small-nh", "small-yqh"];

/// One personality's pass over the workload suite.
#[derive(Debug, Clone)]
pub struct PersonalityMeasurement {
    /// Registry name (e.g. `"nemu-trace"`).
    pub name: String,
    /// The paper's Fig. 8 counterpart (e.g. `"NEMU"`).
    pub paper_counterpart: String,
    /// Total instructions retired across the suite (deterministic).
    pub instructions: u64,
    /// Suite-level simulation rate, million instructions per second.
    pub mips: f64,
}

/// One smoke campaign timed end to end.
#[derive(Debug, Clone)]
pub struct CampaignMeasurement {
    /// DiffTest REF personality the campaign ran against.
    pub reference: String,
    /// Jobs executed.
    pub jobs: u64,
    /// Jobs that halted cleanly (deterministic for fixed seeds).
    pub halted: u64,
    /// End-to-end campaign throughput.
    pub jobs_per_sec: f64,
}

/// One cycle-model preset's pass over the workload suite.
#[derive(Debug, Clone)]
pub struct CycleModelMeasurement {
    /// Configuration preset slug (e.g. `"small-nh"`).
    pub preset: String,
    /// Total cycles simulated across the suite (deterministic).
    pub cycles: u64,
    /// Instructions retired across the suite (deterministic).
    pub instret: u64,
    /// Suite CPI scaled by 1000, integer (deterministic).
    pub cpi_milli: u64,
    /// Checkpoint-farm weighted CPI estimate of [`SAMPLED_WORKLOAD`],
    /// milli-units (deterministic).
    pub sampled_cpi_milli: u64,
    /// Per-mille error of the sampled estimate against the full
    /// simulation of [`SAMPLED_WORKLOAD`] (deterministic).
    pub sampled_cpi_err_milli: u64,
    /// Simulation throughput, thousand simulated cycles per second.
    pub kilocycles_per_sec: f64,
    /// Per-workload throughput (workload name, kilocycles/sec): the
    /// DRAM-stall-heavy entries are where the event-driven skipper
    /// shows up, so the aggregate alone would hide it.
    pub per_workload: Vec<(String, f64)>,
}

/// Passes over the suite per personality: the Test-scale kernels halt
/// within tens of milliseconds, so a single pass is noise-dominated.
const SUITE_REPS: u64 = 3;

/// Run every registered personality over the whole workload suite at
/// `scale` ([`SUITE_REPS`] passes, fresh engine per run) and measure
/// suite-level MIPS. Instruction totals are identical across
/// personalities by construction — the conformance tier pins that — so
/// any body diff between personalities is a bug.
pub fn measure_personalities(scale: Scale, fuel: u64) -> Vec<PersonalityMeasurement> {
    PERSONALITIES
        .iter()
        .map(|p| {
            let mut instructions = 0u64;
            let t0 = Instant::now();
            for _ in 0..SUITE_REPS {
                for w in all_workloads(scale) {
                    let mut engine = (p.build)(&w.program);
                    instructions += engine.run(fuel).instructions;
                }
            }
            let elapsed = t0.elapsed().as_secs_f64();
            PersonalityMeasurement {
                name: p.name.to_string(),
                paper_counterpart: p.paper_counterpart.to_string(),
                instructions,
                mips: instructions as f64 / elapsed / 1e6,
            }
        })
        .collect()
}

/// Run the cycle-level core model over the whole workload suite once
/// per tracked preset ([`CYCLE_PRESETS`]) and measure sim-kilocycles/sec.
/// Cycles and instret totals are pure functions of the suite, preset,
/// and `max_cycles` cap, so they live in the deterministic report body;
/// only the throughput rate is wall-clock-derived.
pub fn measure_cycle_model(scale: Scale, max_cycles: u64) -> Vec<CycleModelMeasurement> {
    // A/B knob for the event-driven idle-cycle skipper:
    // `MINJIE_BENCH_EVENT_DRIVEN=0` forces the tick-by-tick path. The
    // deterministic body is identical either way (the equivalence suite
    // pins that); only `timing.sim_kilocycles_per_sec` moves.
    let event_driven = std::env::var("MINJIE_BENCH_EVENT_DRIVEN")
        .map(|v| v != "0")
        .unwrap_or(true);
    let mut full_cpi_milli: Vec<(String, u64)> = Vec::new();
    let mut out: Vec<CycleModelMeasurement> = CYCLE_PRESETS
        .iter()
        .map(|preset| {
            let mut cycles = 0u64;
            let mut instret = 0u64;
            let mut per_workload = Vec::new();
            let t0 = Instant::now();
            for w in all_workloads(scale) {
                let cfg = XsConfig::preset(preset)
                    .expect("tracked preset exists")
                    .with_event_driven(event_driven);
                let w0 = Instant::now();
                let stats = minjie::run_isolated(cfg, &w.program, max_cycles, None)
                    .unwrap_or_else(|e| panic!("cycle model panicked on {}: {e}", w.name));
                let w_elapsed = w0.elapsed().as_secs_f64();
                cycles += stats.cycles;
                instret += stats.instret;
                if w.name == SAMPLED_WORKLOAD {
                    full_cpi_milli.push((
                        preset.to_string(),
                        stats.cycles.saturating_mul(1000) / stats.instret.max(1),
                    ));
                }
                per_workload.push((
                    w.name.to_string(),
                    stats.cycles as f64 / w_elapsed.max(1e-9) / 1e3,
                ));
            }
            let elapsed = t0.elapsed().as_secs_f64();
            CycleModelMeasurement {
                preset: preset.to_string(),
                cycles,
                instret,
                cpi_milli: cycles.saturating_mul(1000) / instret.max(1),
                sampled_cpi_milli: 0,
                sampled_cpi_err_milli: 0,
                kilocycles_per_sec: cycles as f64 / elapsed.max(1e-9) / 1e3,
                per_workload,
            }
        })
        .collect();

    // The checkpoint-farm accuracy tier: one sampled pass over
    // SAMPLED_WORKLOAD for every tracked preset (the workload is
    // profiled once, shared across presets), then the per-mille error
    // against the full simulation measured above.
    let spec = campaign::SampleSpec::new(
        vec![SAMPLED_WORKLOAD.into()],
        CYCLE_PRESETS.iter().map(|s| s.to_string()).collect(),
    )
    .with_max_cycles(max_cycles);
    let mut spec = spec;
    spec.triage = false;
    let sampled = campaign::run_sampled(&spec);
    for m in &mut out {
        let sm = sampled
            .sampling
            .iter()
            .find(|s| s.config == m.preset)
            .expect("sampled pass covers every tracked preset");
        let full = full_cpi_milli
            .iter()
            .find(|(p, _)| *p == m.preset)
            .map(|(_, c)| *c)
            .expect("suite contains the sampled workload");
        m.sampled_cpi_milli = sm.weighted_cpi_milli;
        m.sampled_cpi_err_milli =
            full.abs_diff(sm.weighted_cpi_milli).saturating_mul(1000) / full.max(1);
    }
    out
}

/// Run a fixed-seed smoke campaign against `reference` and measure
/// end-to-end jobs/sec. Seeds start at 1000 so the jobs differ from the
/// fuzz tier's fixed-seed rounds.
pub fn measure_campaign(reference: &str, jobs: usize, max_cycles: u64) -> CampaignMeasurement {
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| {
            JobSpec::new(
                WorkloadSource::torture(1000 + i as u64, TortureConfig::default()),
                "small-nh",
            )
            .with_max_cycles(max_cycles)
            .with_ref(reference)
        })
        .collect();
    let t0 = Instant::now();
    let report = Campaign::new(specs)
        .with_workers(4)
        .with_minimization(false)
        .with_triage(false)
        .run();
    let elapsed = t0.elapsed().as_secs_f64();
    CampaignMeasurement {
        reference: reference.to_string(),
        jobs: report.summary.total,
        halted: report.summary.halted,
        jobs_per_sec: report.summary.total as f64 / elapsed.max(1e-9),
    }
}

/// Assemble the report [`Value`] from measurements.
pub fn build_report(
    workload: &str,
    fuel: u64,
    personalities: &[PersonalityMeasurement],
    campaign: &CampaignMeasurement,
    cycle_model: &[CycleModelMeasurement],
    total_ms: f64,
) -> Value {
    let mut pmap = Map::new();
    let mut mips = Map::new();
    for p in personalities {
        let mut entry = Map::new();
        entry.insert(
            "paper_counterpart".into(),
            Value::String(p.paper_counterpart.clone()),
        );
        entry.insert("instructions".into(), Value::U64(p.instructions));
        pmap.insert(p.name.clone(), Value::Object(entry));
        mips.insert(p.name.clone(), Value::F64(p.mips));
    }
    let mut camp = Map::new();
    camp.insert("ref".into(), Value::String(campaign.reference.clone()));
    camp.insert("jobs".into(), Value::U64(campaign.jobs));
    camp.insert("halted".into(), Value::U64(campaign.halted));
    let mut cmap = Map::new();
    let mut kcps = Map::new();
    let mut kcps_by_workload = Map::new();
    for c in cycle_model {
        let mut entry = Map::new();
        entry.insert("cycles".into(), Value::U64(c.cycles));
        entry.insert("instret".into(), Value::U64(c.instret));
        entry.insert("cpi_milli".into(), Value::U64(c.cpi_milli));
        entry.insert("sampled_cpi_milli".into(), Value::U64(c.sampled_cpi_milli));
        entry.insert(
            "sampled_cpi_err_milli".into(),
            Value::U64(c.sampled_cpi_err_milli),
        );
        cmap.insert(c.preset.clone(), Value::Object(entry));
        kcps.insert(c.preset.clone(), Value::F64(c.kilocycles_per_sec));
        let mut per_wl = Map::new();
        for (name, rate) in &c.per_workload {
            per_wl.insert(name.clone(), Value::F64(*rate));
        }
        kcps_by_workload.insert(c.preset.clone(), Value::Object(per_wl));
    }
    let mut timing = Map::new();
    timing.insert("mips".into(), Value::Object(mips));
    timing.insert("sim_kilocycles_per_sec".into(), Value::Object(kcps));
    timing.insert(
        "sim_kilocycles_per_sec_by_workload".into(),
        Value::Object(kcps_by_workload),
    );
    timing.insert(
        "campaign_jobs_per_sec".into(),
        Value::F64(campaign.jobs_per_sec),
    );
    timing.insert("total_ms".into(), Value::F64(total_ms));
    let mut root = Map::new();
    root.insert("schema_version".into(), Value::U64(SCHEMA_VERSION));
    root.insert("figure".into(), Value::String("fig8".into()));
    root.insert("workload".into(), Value::String(workload.into()));
    root.insert("fuel".into(), Value::U64(fuel));
    root.insert("personalities".into(), Value::Object(pmap));
    root.insert("campaign".into(), Value::Object(camp));
    root.insert("cycle_model".into(), Value::Object(cmap));
    root.insert("timing".into(), Value::Object(timing));
    Value::Object(root)
}

fn keys_of(v: &Value) -> Vec<&str> {
    v.as_object()
        .map(|m| m.keys().map(|k| k.as_str()).collect())
        .unwrap_or_default()
}

fn expect_keys(v: &Value, ctx: &str, want: &[&str]) -> Result<(), String> {
    let got = keys_of(v);
    if got != want {
        return Err(format!("{ctx}: keys {got:?}, expected {want:?}"));
    }
    Ok(())
}

/// Validate a parsed `BENCH_fig8.json` against the schema: exact key
/// sets at every level (so wall-clock can't leak into the body), every
/// registered personality present with positive deterministic counts,
/// and finite positive rates under `timing`.
pub fn validate(v: &Value) -> Result<(), String> {
    expect_keys(
        v,
        "report",
        &[
            "campaign",
            "cycle_model",
            "figure",
            "fuel",
            "personalities",
            "schema_version",
            "timing",
            "workload",
        ],
    )?;
    if v.get_or_null("schema_version").as_u64() != Some(SCHEMA_VERSION) {
        return Err("schema_version mismatch".into());
    }
    if v.get_or_null("figure").as_str() != Some("fig8") {
        return Err("figure must be \"fig8\"".into());
    }
    if v.get_or_null("workload").as_str().is_none_or(str::is_empty) {
        return Err("workload must be a non-empty string".into());
    }
    if v.get_or_null("fuel").as_u64().is_none_or(|f| f == 0) {
        return Err("fuel must be a positive integer".into());
    }

    let personalities = v.get_or_null("personalities");
    let mut names: Vec<&str> = nemu::registry::names();
    names.sort_unstable();
    expect_keys(personalities, "personalities", &names)?;
    for name in &names {
        let entry = personalities.get_or_null(name);
        expect_keys(entry, name, &["instructions", "paper_counterpart"])?;
        if entry.get_or_null("paper_counterpart").as_str().is_none() {
            return Err(format!("{name}: paper_counterpart must be a string"));
        }
        if entry
            .get_or_null("instructions")
            .as_u64()
            .is_none_or(|i| i == 0)
        {
            return Err(format!("{name}: instructions must be a positive integer"));
        }
    }

    let camp = v.get_or_null("campaign");
    expect_keys(camp, "campaign", &["halted", "jobs", "ref"])?;
    let reference = camp
        .get_or_null("ref")
        .as_str()
        .ok_or("campaign.ref must be a string")?;
    if reference != "arch" && !names.contains(&reference) {
        return Err(format!("campaign.ref {reference:?} is not a known REF"));
    }
    let jobs = camp.get_or_null("jobs").as_u64().unwrap_or(0);
    let halted = camp.get_or_null("halted").as_u64().unwrap_or(u64::MAX);
    if jobs == 0 || halted > jobs {
        return Err(format!("campaign jobs/halted malformed: {halted}/{jobs}"));
    }

    let cm = v.get_or_null("cycle_model");
    expect_keys(cm, "cycle_model", &CYCLE_PRESETS)?;
    for preset in CYCLE_PRESETS {
        let entry = cm.get_or_null(preset);
        expect_keys(
            entry,
            preset,
            &[
                "cpi_milli",
                "cycles",
                "instret",
                "sampled_cpi_err_milli",
                "sampled_cpi_milli",
            ],
        )?;
        let cycles = entry.get_or_null("cycles").as_u64().unwrap_or(0);
        let instret = entry.get_or_null("instret").as_u64().unwrap_or(0);
        let cpi_milli = entry.get_or_null("cpi_milli").as_u64().unwrap_or(0);
        if cycles == 0 || instret == 0 {
            return Err(format!("{preset}: cycles/instret must be positive"));
        }
        if cpi_milli != cycles.saturating_mul(1000) / instret {
            return Err(format!(
                "{preset}: cpi_milli {cpi_milli} inconsistent with cycles/instret"
            ));
        }
        let sampled = entry
            .get_or_null("sampled_cpi_milli")
            .as_u64()
            .unwrap_or(0);
        if sampled == 0 {
            return Err(format!("{preset}: sampled_cpi_milli must be positive"));
        }
        let err = entry
            .get_or_null("sampled_cpi_err_milli")
            .as_u64()
            .unwrap_or(u64::MAX);
        if err > SAMPLED_ERR_BOUND_MILLI {
            return Err(format!(
                "{preset}: sampled CPI error {err} per mille exceeds the \
                 {SAMPLED_ERR_BOUND_MILLI} per-mille accuracy gate"
            ));
        }
    }

    let timing = v.get_or_null("timing");
    expect_keys(
        timing,
        "timing",
        &[
            "campaign_jobs_per_sec",
            "mips",
            "sim_kilocycles_per_sec",
            "sim_kilocycles_per_sec_by_workload",
            "total_ms",
        ],
    )?;
    let mips = timing.get_or_null("mips");
    expect_keys(mips, "timing.mips", &names)?;
    for name in &names {
        match mips.get_or_null(name).as_f64() {
            Some(m) if m.is_finite() && m > 0.0 => {}
            other => return Err(format!("timing.mips.{name} must be positive: {other:?}")),
        }
    }
    let kcps = timing.get_or_null("sim_kilocycles_per_sec");
    expect_keys(kcps, "timing.sim_kilocycles_per_sec", &CYCLE_PRESETS)?;
    for preset in CYCLE_PRESETS {
        match kcps.get_or_null(preset).as_f64() {
            Some(r) if r.is_finite() && r > 0.0 => {}
            other => {
                return Err(format!(
                    "timing.sim_kilocycles_per_sec.{preset} must be positive: {other:?}"
                ))
            }
        }
    }
    let by_wl = timing.get_or_null("sim_kilocycles_per_sec_by_workload");
    expect_keys(
        by_wl,
        "timing.sim_kilocycles_per_sec_by_workload",
        &CYCLE_PRESETS,
    )?;
    for preset in CYCLE_PRESETS {
        let entries = by_wl.get_or_null(preset);
        let names = keys_of(entries);
        if names.is_empty() {
            return Err(format!(
                "timing.sim_kilocycles_per_sec_by_workload.{preset} must name every suite workload"
            ));
        }
        for name in names {
            match entries.get_or_null(name).as_f64() {
                Some(r) if r.is_finite() && r > 0.0 => {}
                other => {
                    return Err(format!(
                        "timing.sim_kilocycles_per_sec_by_workload.{preset}.{name} \
                         must be positive: {other:?}"
                    ))
                }
            }
        }
    }
    for rate in ["campaign_jobs_per_sec", "total_ms"] {
        match timing.get_or_null(rate).as_f64() {
            Some(r) if r.is_finite() && r > 0.0 => {}
            other => return Err(format!("timing.{rate} must be positive: {other:?}")),
        }
    }
    Ok(())
}

/// The sim-MIPS recorded for `name`, if present.
pub fn mips_of(v: &Value, name: &str) -> Option<f64> {
    v.get_or_null("timing").get_or_null("mips").get(name)?.as_f64()
}

/// The sim-kilocycles/sec recorded for cycle-model `preset`, if present.
pub fn kilocycles_per_sec_of(v: &Value, preset: &str) -> Option<f64> {
    v.get_or_null("timing")
        .get_or_null("sim_kilocycles_per_sec")
        .get(preset)?
        .as_f64()
}

/// The deterministic suite CPI×1000 for cycle-model `preset`, if present.
pub fn cpi_milli_of(v: &Value, preset: &str) -> Option<u64> {
    v.get_or_null("cycle_model")
        .get_or_null(preset)
        .get("cpi_milli")?
        .as_u64()
}

/// The checkpoint-farm weighted CPI×1000 for `preset`, if present.
pub fn sampled_cpi_milli_of(v: &Value, preset: &str) -> Option<u64> {
    v.get_or_null("cycle_model")
        .get_or_null(preset)
        .get("sampled_cpi_milli")?
        .as_u64()
}

/// The sampled-vs-full per-mille CPI error for `preset`, if present.
pub fn sampled_cpi_err_milli_of(v: &Value, preset: &str) -> Option<u64> {
    v.get_or_null("cycle_model")
        .get_or_null(preset)
        .get("sampled_cpi_err_milli")?
        .as_u64()
}

/// The deterministic body: the report with `timing` removed, rendered
/// as canonical JSON. Two same-seed runs must agree byte for byte.
pub fn body_json(v: &Value) -> String {
    let mut body = v.clone();
    if let Value::Object(m) = &mut body {
        m.remove("timing");
    }
    serde_json::to_string_pretty(&body).expect("report body serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let ps: Vec<PersonalityMeasurement> = PERSONALITIES
            .iter()
            .enumerate()
            .map(|(i, p)| PersonalityMeasurement {
                name: p.name.to_string(),
                paper_counterpart: p.paper_counterpart.to_string(),
                instructions: 1_000_000,
                mips: 100.0 * (i + 1) as f64,
            })
            .collect();
        let c = CampaignMeasurement {
            reference: "nemu-trace".into(),
            jobs: 12,
            halted: 12,
            jobs_per_sec: 3.5,
        };
        let cm: Vec<CycleModelMeasurement> = CYCLE_PRESETS
            .iter()
            .enumerate()
            .map(|(i, preset)| CycleModelMeasurement {
                preset: preset.to_string(),
                cycles: 400_000 + 10_000 * i as u64,
                instret: 100_000,
                cpi_milli: (400_000 + 10_000 * i as u64) * 1000 / 100_000,
                sampled_cpi_milli: 4_000 + 100 * i as u64,
                sampled_cpi_err_milli: 12 + i as u64,
                kilocycles_per_sec: 250.0 / (i + 1) as f64,
                per_workload: vec![
                    ("mcf".into(), 900.0 * (i + 1) as f64),
                    ("namd".into(), 1200.0 * (i + 1) as f64),
                ],
            })
            .collect();
        build_report("spec-like-suite@Test", 200_000_000, &ps, &c, &cm, 4000.0)
    }

    #[test]
    fn built_report_validates() {
        validate(&sample()).expect("sample report is schema-clean");
    }

    #[test]
    fn body_is_wall_clock_free_and_round_trips() {
        let r = sample();
        let body = body_json(&r);
        assert!(!body.contains("mips"), "rates leaked into the body");
        assert!(!body.contains("_ms"), "wall-clock leaked into the body");
        assert!(!body.contains("per_sec"), "rates leaked into the body");
        // Body is independent of the measured rates.
        let mut slow = sample();
        if let Value::Object(m) = &mut slow {
            let mut t = Map::new();
            t.insert("mips".into(), Value::Object(Map::new()));
            m.insert("timing".into(), Value::Object(t));
        }
        assert_eq!(body, body_json(&slow));
        let parsed: Value = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        validate(&parsed).expect("report survives a JSON round trip");
    }

    #[test]
    fn validator_rejects_mutations() {
        // A wall-clock field smuggled into the body.
        let mut r = sample();
        if let Value::Object(m) = &mut r {
            m.insert("elapsed_ms".into(), Value::F64(1.0));
        }
        assert!(validate(&r).is_err(), "extra body key accepted");

        // A missing personality.
        let mut r = sample();
        if let Some(Value::Object(p)) = r.as_object_mut_key("personalities") {
            p.remove("nemu-trace");
        }
        assert!(validate(&r).is_err(), "missing personality accepted");

        // Zero instructions (a personality that never ran).
        let mut r = sample();
        if let Some(Value::Object(p)) = r.as_object_mut_key("personalities") {
            if let Some(Value::Object(e)) = p.get_mut("nemu") {
                e.insert("instructions".into(), Value::U64(0));
            }
        }
        assert!(validate(&r).is_err(), "zero instructions accepted");

        // An unknown campaign REF.
        let mut r = sample();
        if let Some(Value::Object(c)) = r.as_object_mut_key("campaign") {
            c.insert("ref".into(), Value::String("warp-drive".into()));
        }
        assert!(validate(&r).is_err(), "unknown REF accepted");

        // A wall-clock rate smuggled into a cycle-model body entry.
        let mut r = sample();
        if let Some(Value::Object(cm)) = r.as_object_mut_key("cycle_model") {
            if let Some(Value::Object(e)) = cm.get_mut("small-nh") {
                e.insert("kilocycles".into(), Value::F64(99.0));
            }
        }
        assert!(validate(&r).is_err(), "extra cycle-model key accepted");

        // A cpi_milli inconsistent with cycles/instret.
        let mut r = sample();
        if let Some(Value::Object(cm)) = r.as_object_mut_key("cycle_model") {
            if let Some(Value::Object(e)) = cm.get_mut("small-yqh") {
                e.insert("cpi_milli".into(), Value::U64(1));
            }
        }
        assert!(validate(&r).is_err(), "inconsistent cpi_milli accepted");

        // A sampled CPI error past the accuracy gate.
        let mut r = sample();
        if let Some(Value::Object(cm)) = r.as_object_mut_key("cycle_model") {
            if let Some(Value::Object(e)) = cm.get_mut("small-nh") {
                e.insert(
                    "sampled_cpi_err_milli".into(),
                    Value::U64(SAMPLED_ERR_BOUND_MILLI + 1),
                );
            }
        }
        assert!(validate(&r).is_err(), "out-of-gate sampled error accepted");

        // A sampled estimate that never ran.
        let mut r = sample();
        if let Some(Value::Object(cm)) = r.as_object_mut_key("cycle_model") {
            if let Some(Value::Object(e)) = cm.get_mut("small-nh") {
                e.insert("sampled_cpi_milli".into(), Value::U64(0));
            }
        }
        assert!(validate(&r).is_err(), "zero sampled_cpi_milli accepted");
    }

    /// Test-only helper: mutable access to a top-level object field.
    trait MutKey {
        fn as_object_mut_key(&mut self, key: &str) -> Option<&mut Value>;
    }
    impl MutKey for Value {
        fn as_object_mut_key(&mut self, key: &str) -> Option<&mut Value> {
            match self {
                Value::Object(m) => m.get_mut(key),
                _ => None,
            }
        }
    }
}
