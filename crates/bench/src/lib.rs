//! Benchmark harnesses for the MINJIE/XiangShan reproduction.
//!
//! This crate exists for its `benches/` directory: one harness per paper
//! table or figure (see README.md and EXPERIMENTS.md). The library hosts
//! shared helpers plus the [`fig8`] module: the measurement and
//! `BENCH_fig8.json` report machinery for the interpreter-speed shootout,
//! kept in the library so the bench binary, the CI bench-smoke leg, and
//! `tests/golden_bench.rs` all share one schema definition.

pub mod fig8;

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of an empty slice");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
