//! Table III: physical implementation details of YQH.
//!
//! Tape-out physical statistics cannot be measured by a software
//! reproduction (DESIGN.md §5.6); the paper's reported values are printed
//! verbatim, clearly labeled as such.

fn main() {
    println!("Table III: physical implementation details of YQH");
    println!("(paper-reported values; not reproducible in software)");
    println!();
    for (k, v) in [
        ("Die Size", "8.6 mm^2"),
        ("Std Cell Num/Area", "5053679, 4.27 mm^2"),
        ("Mem Num/Area", "261, 1.7 mm^2"),
        ("Density", "66%"),
        ("Cell", "ULVT 1.04%, LVT 19.32%, SVT 25.19%, HVT 53.67%"),
        ("Power", "5W"),
        ("Frequency", "1.3 GHz, TT85C"),
    ] {
        println!("{k:<20} {v}");
    }
}
