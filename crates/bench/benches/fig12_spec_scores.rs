//! Figure 12: SPEC-like scores of XiangShan across generations, memory
//! models, and LLC sizes.
//!
//! Configurations mirror the paper's series:
//! - YQH-DDR4-1600 (the chip / RTL-simulation configuration),
//! - YQH-FPGA-90C-AMAT (fixed 90-cycle memory),
//! - NH-2MBLLC-FPGA-250C-AMAT and NH-4MBLLC-FPGA-250C-AMAT,
//! - NH-DDR4-2400 (6 MB LLC, the tape-out configuration).
//!
//! "Score/GHz" is reported as a geomean-IPC proxy (the paper notes the
//! metric is proportional to IPC). Shapes to check: NH above YQH, the
//! 4 MB LLC above 2 MB, and the DDR configuration above fixed-AMAT for
//! the int suite.

use workloads::{all_workloads, Scale, WorkloadClass};
use xscore::{MemoryModel, XsConfig, XsSystem};

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let scale = match std::env::var("MINJIE_SCALE").as_deref() {
        Ok("ref") => Scale::Ref,
        Ok("test") => Scale::Test,
        _ => Scale::Bench,
    };
    let configs: Vec<(&str, XsConfig)> = vec![
        ("YQH-DDR4-1600", XsConfig::yqh()),
        (
            "YQH-FPGA-90C-AMAT",
            XsConfig::yqh().with_memory(MemoryModel::FixedAmat(90)),
        ),
        (
            "NH-2MBLLC-FPGA-250C",
            XsConfig::nh()
                .with_llc_mb(2)
                .with_memory(MemoryModel::FixedAmat(250)),
        ),
        (
            "NH-4MBLLC-FPGA-250C",
            XsConfig::nh()
                .with_llc_mb(4)
                .with_memory(MemoryModel::FixedAmat(250)),
        ),
        ("NH-DDR4-2400", XsConfig::nh()),
    ];
    let suite = all_workloads(scale);
    println!("Figure 12: XiangShan score/GHz proxy (IPC), {scale:?} inputs");
    print!("{:<12}", "benchmark");
    for (name, _) in &configs {
        print!(" {name:>20}");
    }
    println!();
    let mut per_config: Vec<(Vec<f64>, Vec<f64>)> = vec![(vec![], vec![]); configs.len()];
    for w in &suite {
        print!("{:<12}", w.name);
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let mut sys = XsSystem::new(cfg.clone(), &w.program);
            let code = sys.run(100_000_000);
            assert!(code.is_some(), "{} did not finish on config {i}", w.name);
            let ipc = sys.cores[0].perf.ipc();
            print!(" {ipc:>20.3}");
            match w.class {
                WorkloadClass::Int => per_config[i].0.push(ipc),
                WorkloadClass::Fp => per_config[i].1.push(ipc),
            }
        }
        println!();
    }
    println!();
    println!("{:<22} {:>12} {:>12}", "config", "int geomean", "fp geomean");
    for (i, (name, _)) in configs.iter().enumerate() {
        println!(
            "{:<22} {:>12.3} {:>12.3}",
            name,
            geomean(&per_config[i].0),
            geomean(&per_config[i].1)
        );
    }
    println!();
    let g2 = geomean(&per_config[2].0);
    let g4 = geomean(&per_config[3].0);
    let f2 = geomean(&per_config[2].1);
    let f4 = geomean(&per_config[3].1);
    println!(
        "NH 4MB vs 2MB LLC: int {:+.1}%  fp {:+.1}%   (paper: +8.9% int, +5.4% fp)",
        (g4 / g2 - 1.0) * 100.0,
        (f4 / f2 - 1.0) * 100.0
    );
    let yqh = geomean(&per_config[0].0.iter().chain(&per_config[0].1).copied().collect::<Vec<_>>());
    let nh = geomean(&per_config[4].0.iter().chain(&per_config[4].1).copied().collect::<Vec<_>>());
    println!(
        "NH-DDR vs YQH-DDR overall: {:.3} vs {:.3} ({:+.1}%)  (paper: 10.06 vs 7.67 per GHz)",
        nh,
        yqh,
        (nh / yqh - 1.0) * 100.0
    );
}
