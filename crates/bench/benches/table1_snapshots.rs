//! Table I + §III-C4: snapshot-scheme comparison.
//!
//! Prints the qualitative Table I (in-memory / incremental / circuit-
//! agnostic) and measures the per-snapshot cost of LightSSS (COW clone)
//! against the eager SSS serialization — the analogue of the paper's
//! "fork() takes 535 us / SSS takes 3.671 s".

use minjie::{CoSim, Snapshotable, Sss};
use std::time::Instant;
use workloads::{workload, Scale};
use xscore::XsConfig;

fn main() {
    println!("Table I: snapshot schemes for software simulation");
    println!(
        "{:<14} {:>10} {:>12} {:>16}",
        "scheme", "in-memory", "incremental", "circuit-agnostic"
    );
    for (name, a, b, c) in [
        ("CRIU", "no", "yes", "yes"),
        ("Verilator", "no", "no", "no"),
        ("LiveSim", "yes", "no", "no"),
        ("LightSSS", "yes", "yes", "yes"),
    ] {
        println!("{name:<14} {a:>10} {b:>12} {c:>16}");
    }
    println!();

    // Warm a real co-simulation to a non-trivial state.
    let w = workload("bzip2", Scale::Test);
    let mut cosim = CoSim::new(XsConfig::nh(), &w.program);
    for _ in 0..40_000 {
        if cosim.state.sys.all_halted() {
            break;
        }
        cosim.step_cycle().expect("clean run");
    }

    // LightSSS: COW clone cost.
    let n = 50;
    let t0 = Instant::now();
    let mut keep = Vec::new();
    for _ in 0..n {
        keep.push(cosim.state.clone());
        if keep.len() > 2 {
            keep.remove(0);
        }
    }
    let light = t0.elapsed() / n;

    // SSS: eager full serialization cost.
    let mut sss = Sss::new();
    let m = 10;
    for _ in 0..m {
        sss.take(&cosim.state);
    }
    let heavy = sss.snapshot_cost / m;
    let bytes = cosim.state.serialize_full().len();

    println!("snapshot cost over a live co-simulation ({bytes} bytes of state):");
    println!("  LightSSS (COW clone):      {light:>12.2?} per snapshot");
    println!("  SSS (full serialization):  {heavy:>12.2?} per snapshot");
    println!(
        "  ratio: {:.0}x  (paper: fork 535us vs SSS 3.671s = ~6900x at 8M-line scale)",
        heavy.as_secs_f64() / light.as_secs_f64().max(1e-12)
    );
    assert!(heavy > light * 5, "LightSSS must be clearly cheaper");
}
