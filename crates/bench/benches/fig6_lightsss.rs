//! Figure 6: simulation time with LightSSS enabled at different snapshot
//! intervals, or disabled.
//!
//! The paper's claim: "the simulation time is barely affected by either
//! the existence or the interval size of snapshots". We run the same
//! workload under co-simulation with intervals from small to large and
//! with LightSSS disabled, and report wall-clock time per configuration.

use minjie::CoSim;
use std::time::Instant;
use workloads::{workload, Scale};
use xscore::XsConfig;

fn run_one(interval: Option<u64>) -> (f64, u64) {
    let w = workload("sjeng", Scale::Ref);
    let mut cosim = CoSim::new(XsConfig::nh(), &w.program);
    if let Some(i) = interval {
        cosim = cosim.with_lightsss(i);
    }
    let t0 = Instant::now();
    let mut cycles = 0u64;
    for _ in 0..1_200_000u64 {
        if cosim.state.sys.all_halted() {
            break;
        }
        cosim.step_cycle().expect("clean run");
        cycles += 1;
    }
    (t0.elapsed().as_secs_f64(), cycles)
}

fn main() {
    println!("Figure 6: simulation time vs LightSSS snapshot interval");
    let (base, cycles) = run_one(None);
    println!(
        "{:<22} {:>10.3}s   ({} cycles, {:.0} KHz)",
        "disabled",
        base,
        cycles,
        cycles as f64 / base / 1e3
    );
    for interval in [5_000u64, 20_000, 60_000, 200_000] {
        let (t, _) = run_one(Some(interval));
        println!(
            "{:<22} {:>10.3}s   (overhead {:+.1}%)",
            format!("interval {interval} cyc"),
            t,
            (t / base - 1.0) * 100.0
        );
    }
    println!();
    println!("expected shape (paper): flat across intervals; an order of magnitude");
    println!("below LiveSim's reported 10-20% overhead.");
}
