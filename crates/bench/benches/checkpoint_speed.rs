//! §III-D3: checkpoint generation speed with NEMU.
//!
//! The paper reports plain NEMU at ~1200 MIPS on bzip2-test and
//! checkpoint-generation (profiling) at >300 MIPS. Those numbers are
//! host-specific; the shape to check is that profiling costs a bounded
//! multiple of plain interpretation and that generated checkpoints
//! restore exactly.

use checkpoint::generate_checkpoints;
use nemu::{Interpreter, Nemu};
use std::time::Instant;
use workloads::{workload, Scale};

fn main() {
    let w = workload("bzip2", Scale::Ref);
    // Plain NEMU speed.
    let mut n = Nemu::new(&w.program);
    let t0 = Instant::now();
    let r = n.run(500_000_000);
    let el = t0.elapsed();
    let plain = r.instructions as f64 / el.as_secs_f64() / 1e6;
    println!("plain NEMU:            {plain:>8.1} MIPS ({} instructions)", r.instructions);

    // Checkpoint-generation (profiling) speed.
    let t0 = Instant::now();
    let set = generate_checkpoints(&w.program, 200_000, 8, 1_000_000_000);
    let el = t0.elapsed();
    let prof = set.total_instructions as f64 / el.as_secs_f64() / 1e6;
    println!(
        "checkpoint generation: {prof:>8.1} MIPS ({} checkpoints from {} intervals)",
        set.checkpoints.len(),
        set.total_instructions / set.interval_len
    );
    println!("profiling slowdown vs plain NEMU: {:.1}x", plain / prof);

    // Restore correctness: each checkpoint resumes to the same exit code.
    let mut full = Nemu::new(&w.program);
    let expected = full.run(1_000_000_000).exit_code.expect("halts");
    for c in &set.checkpoints {
        let mut h = c.state.clone();
        let mut mem = c.memory.clone();
        let mut hart = nemu::Hart::new(h.pc, 0);
        hart.state = std::mem::replace(&mut h, riscv_isa::ArchState::new(0, 0));
        while !hart.is_halted() {
            nemu::hart::step(&mut hart, &mut mem);
        }
        assert_eq!(hart.halted, Some(expected));
    }
    println!("all {} checkpoints restore and reach exit code {expected:#x}", set.checkpoints.len());
    println!();
    println!("paper reference: plain NEMU ~1272 MIPS; generation >300 MIPS (x86 host,");
    println!("threaded-code C). This Rust reproduction is slower in absolute terms; the");
    println!("claim preserved is the bounded profiling overhead and exact restore.");
}
