//! Criterion microbenchmarks of the hot kernels underneath the figures:
//! one NEMU fast-loop slice, one softfloat FMA, one TAGE prediction, and
//! one coherent-cache round trip. These complement the table/figure
//! harnesses with statistically sampled timings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn nemu_slice(c: &mut Criterion) {
    let w = workloads::workload("hmmer", workloads::Scale::Ref);
    c.bench_function("nemu_run_100k_insts", |b| {
        use nemu::Interpreter;
        let mut n = nemu::Nemu::new(&w.program);
        n.run(1_000); // warm the uop cache
        b.iter(|| {
            if n.hart().is_halted() {
                n = nemu::Nemu::new(&w.program);
            }
            black_box(n.run(100_000).instructions)
        })
    });
}

fn softfloat_fma(c: &mut Criterion) {
    c.bench_function("softfloat_fma64", |b| {
        let (x, y, z) = (1.000000073f64.to_bits(), 0.99999918f64.to_bits(), (-1.0f64).to_bits());
        b.iter(|| black_box(riscv_isa::softfloat::fma64(black_box(x), black_box(y), black_box(z))))
    });
    c.bench_function("host_fma64_reference", |b| {
        let (x, y, z) = (1.000000073f64, 0.99999918f64, -1.0f64);
        b.iter(|| black_box(black_box(x).mul_add(black_box(y), black_box(z))))
    });
}

fn tage_predict(c: &mut Criterion) {
    let mut t = xscore::tage::TageSc::new(4096);
    // Train on a loop pattern first.
    let mut g = 0u64;
    for i in 0..10_000u64 {
        let p = t.predict(0x8000_1234, g);
        let taken = i % 7 != 6;
        t.update(0x8000_1234, p, taken);
        g = (g << 1) | taken as u64;
    }
    c.bench_function("tage_predict", |b| {
        b.iter(|| black_box(t.predict(black_box(0x8000_1234), black_box(g))))
    });
}

fn cache_round_trip(c: &mut Criterion) {
    use riscv_isa::mem::SparseMemory;
    use uncore::{AccessKind, CoreReq, DramModel, MemSystem, MemSystemConfig};
    c.bench_function("l1_hit_load", |b| {
        let mut sys = MemSystem::new(MemSystemConfig::tiny(1), DramModel::fixed(20), SparseMemory::new());
        // Warm the line.
        let warm = CoreReq { core: 0, kind: AccessKind::Load, addr: 0x1000, size: 8, data: 0, id: 0 };
        sys.submit_data(warm);
        for _ in 0..200 {
            sys.tick();
        }
        let mut id = 1u64;
        b.iter(|| {
            id += 1;
            let req = CoreReq { core: 0, kind: AccessKind::Load, addr: 0x1000, size: 8, data: 0, id };
            sys.submit_data(req);
            loop {
                if sys.tick().iter().any(|c| c.req.id == id) {
                    break;
                }
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = nemu_slice, softfloat_fma, tage_predict, cache_round_trip
}
criterion_main!(benches);
