//! Table II: tape-out micro-architecture parameters of YQH and NH.
//!
//! Printed directly from the configuration presets, so the table stays
//! in sync with what the model actually simulates.

use xscore::XsConfig;

fn main() {
    println!("Table II: micro-architecture parameters of the two generations");
    println!();
    print!("{}", XsConfig::table2(&XsConfig::yqh(), &XsConfig::nh_dual()));
    println!();
    println!("(ISA / process / frequency rows are tape-out facts, not model");
    println!("parameters: YQH = RV64GC, 28nm, 1.3GHz, 1 core; NH = RV64GCBK,");
    println!("14nm, 2GHz, 2 cores.)");
}
