//! Figure 8: performance of Spike, QEMU-TCI, Dromajo and NEMU — plus
//! this repo's superblock trace tier.
//!
//! Reproduces the paper's interpreter comparison over the SPEC-like
//! kernel suite, driven by [`nemu::registry`] so every personality is
//! enrolled automatically. Absolute MIPS differ from the paper's
//! i9-9900K numbers; the *shape* to check is: the trace tier fastest,
//! then the NEMU uop-cache tier, Spike-like next (decode cache),
//! Dromajo-like and QEMU-TCI-like trailing, and the fast tiers'
//! advantage larger on SPECfp (host FP vs SoftFloat).
//!
//! Run with `cargo bench --bench fig8_interpreters` (or via
//! `scripts/bench.sh`, which also writes `BENCH_fig8.json`).
//!
//! Environment knobs:
//! - `MINJIE_SCALE=ref` — larger workload inputs,
//! - `MINJIE_BENCH_FUEL=N` — per-workload step budget (default 2e8),
//! - `MINJIE_BENCH_CYCLES=N` — per-workload cycle-model budget
//!   (default 2e6),
//! - `MINJIE_BENCH_OUT=path` — also emit the `BENCH_fig8.json` report
//!   (sim-MIPS per personality, sim-kilocycles/sec + suite CPI per
//!   cycle-model preset, and a timed 12-job `--ref nemu-trace` smoke
//!   campaign) to `path`.

use minjie_bench::fig8;
use minjie_bench::geomean;
use nemu::registry::PERSONALITIES;
use nemu::Interpreter;
use std::time::Instant;
use workloads::{all_workloads, Scale, WorkloadClass};

fn mips(mut interp: Box<dyn Interpreter>, fuel: u64) -> (f64, u64) {
    let t0 = Instant::now();
    let r = interp.run(fuel);
    let el = t0.elapsed().as_secs_f64();
    (r.instructions as f64 / el / 1e6, r.instructions)
}

fn main() {
    let scale = match std::env::var("MINJIE_SCALE").as_deref() {
        Ok("ref") => Scale::Ref,
        _ => Scale::Test,
    };
    let fuel = std::env::var("MINJIE_BENCH_FUEL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000_000u64);
    let t_total = Instant::now();
    println!("Figure 8: interpreter performance (MIPS), {scale:?} inputs");
    print!("{:<12} {:>6}", "benchmark", "class");
    for p in PERSONALITIES {
        print!(" {:>14}", p.name);
    }
    println!(" {:>10}", "insts");
    let mut per_class: std::collections::HashMap<(WorkloadClass, &str), Vec<f64>> =
        std::collections::HashMap::new();
    for w in all_workloads(scale) {
        print!("{:<12} {:>6}", w.name, format!("{:?}", w.class));
        let mut insts = 0;
        for p in PERSONALITIES {
            let (m, i) = mips((p.build)(&w.program), fuel);
            insts = i;
            print!(" {m:>14.1}");
            per_class.entry((w.class, p.name)).or_default().push(m);
        }
        println!(" {insts:>10}");
    }
    println!();
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        let g = |n: &str| geomean(&per_class[&(class, n)]);
        print!("geomean {class:?}:");
        for p in PERSONALITIES {
            print!("  {} {:.1}", p.name, g(p.name));
        }
        println!("  | nemu-trace/nemu = {:.2}x", g("nemu-trace") / g("nemu"));
    }
    println!();
    println!("paper reference shape: NEMU 733 MIPS vs Spike 142 MIPS (5.16x int),");
    println!("817 vs 106 (7.71x fp) -- expect the trace tier fastest here, then nemu,");
    println!("with a larger fp ratio over the SoftFloat engines.");

    if let Ok(out) = std::env::var("MINJIE_BENCH_OUT") {
        // Suite-level measurement for the tracked report (separate pass:
        // the table above interleaves personalities per workload, the
        // report wants one contiguous timed pass per personality).
        let personalities = fig8::measure_personalities(scale, fuel);
        let campaign = fig8::measure_campaign("nemu-trace", 12, 2_000_000);
        let sim_cycles = std::env::var("MINJIE_BENCH_CYCLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2_000_000u64);
        let cycle_model = fig8::measure_cycle_model(scale, sim_cycles);
        let report = fig8::build_report(
            &format!("spec-like-suite@{scale:?}"),
            fuel,
            &personalities,
            &campaign,
            &cycle_model,
            t_total.elapsed().as_secs_f64() * 1e3,
        );
        fig8::validate(&report).expect("emitted report is schema-clean");
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&out, json + "\n").expect("write BENCH_fig8.json");
        println!("wrote {out}");
    }
}
