//! Figure 8: performance of Spike, QEMU-TCI, Dromajo and NEMU.
//!
//! Reproduces the paper's interpreter comparison over the SPEC-like
//! kernel suite. Absolute MIPS differ from the paper's i9-9900K numbers;
//! the *shape* to check is: NEMU fastest by a large factor, Spike-like
//! second (decode cache), Dromajo-like and QEMU-TCI-like trailing, and
//! NEMU's advantage larger on SPECfp (host FP vs SoftFloat).
//!
//! Run with `cargo bench --bench fig8_interpreters`; set
//! `MINJIE_SCALE=ref` for larger inputs.

use nemu::{DromajoLike, Interpreter, Nemu, QemuTciLike, SpikeLike};
use std::time::Instant;
use workloads::{all_workloads, Scale, WorkloadClass};

fn mips(mut interp: impl Interpreter, fuel: u64) -> (f64, u64) {
    let t0 = Instant::now();
    let r = interp.run(fuel);
    let el = t0.elapsed().as_secs_f64();
    (r.instructions as f64 / el / 1e6, r.instructions)
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn main() {
    let scale = match std::env::var("MINJIE_SCALE").as_deref() {
        Ok("ref") => Scale::Ref,
        _ => Scale::Test,
    };
    let fuel = 200_000_000;
    println!("Figure 8: interpreter performance (MIPS), {scale:?} inputs");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "benchmark", "class", "nemu", "spike-like", "dromajo", "qemu-tci", "insts"
    );
    let mut per_class: std::collections::HashMap<(WorkloadClass, &str), Vec<f64>> =
        std::collections::HashMap::new();
    for w in all_workloads(scale) {
        let (m_nemu, insts) = mips(Nemu::new(&w.program), fuel);
        let (m_spike, _) = mips(SpikeLike::new(&w.program), fuel);
        let (m_drom, _) = mips(DromajoLike::new(&w.program), fuel);
        let (m_tci, _) = mips(QemuTciLike::new(&w.program), fuel);
        println!(
            "{:<12} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8}",
            w.name,
            format!("{:?}", w.class),
            m_nemu,
            m_spike,
            m_drom,
            m_tci,
            insts
        );
        for (name, v) in [
            ("nemu", m_nemu),
            ("spike", m_spike),
            ("dromajo", m_drom),
            ("tci", m_tci),
        ] {
            per_class.entry((w.class, name)).or_default().push(v);
        }
    }
    println!();
    for class in [WorkloadClass::Int, WorkloadClass::Fp] {
        let g = |n: &str| geomean(&per_class[&(class, n)]);
        let (n, s, d, t) = (g("nemu"), g("spike"), g("dromajo"), g("tci"));
        println!(
            "geomean {class:?}: nemu {n:.1}  spike-like {s:.1}  dromajo {d:.1}  qemu-tci {t:.1}  | nemu/spike = {:.2}x",
            n / s
        );
    }
    println!();
    println!("paper reference shape: NEMU 733 MIPS vs Spike 142 MIPS (5.16x int),");
    println!("817 vs 106 (7.71x fp) -- expect NEMU fastest here with a larger fp ratio.");
}
