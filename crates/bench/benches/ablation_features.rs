//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. NH micro-architecture features (macro-op fusion, move elimination,
//!    ITTAGE) toggled individually on the kernel suite,
//! 2. the Spike-like software instruction-cache size sweep of §III-D2
//!    ("we run different size from 1024 to 32768 ... and select 16384"),
//! 3. NEMU uop-cache capacity sensitivity.

use nemu::{Interpreter, Nemu, SpikeLike};
use std::time::Instant;
use workloads::{all_workloads, workload, Scale};
use xscore::{XsConfig, XsSystem};

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

fn suite_ipc(cfg: &XsConfig) -> f64 {
    let mut ipcs = Vec::new();
    for w in all_workloads(Scale::Test) {
        let mut sys = XsSystem::new(cfg.clone(), &w.program);
        sys.run(50_000_000).expect("halts");
        ipcs.push(sys.cores[0].perf.ipc());
    }
    geomean(&ipcs)
}

fn main() {
    println!("== NH micro-architecture feature ablation (geomean IPC) ==");
    let base = XsConfig::nh();
    let mut no_fusion = XsConfig::nh();
    no_fusion.fusion = false;
    let mut no_moveelim = XsConfig::nh();
    no_moveelim.move_elimination = false;
    let mut no_ittage = XsConfig::nh();
    no_ittage.ittage = false;
    let b = suite_ipc(&base);
    for (name, cfg) in [
        ("NH (all features)", base),
        ("  - fusion", no_fusion),
        ("  - move elimination", no_moveelim),
        ("  - ITTAGE", no_ittage),
    ] {
        let ipc = suite_ipc(&cfg);
        println!("{name:<24} {ipc:.4}  ({:+.2}% vs full NH)", (ipc / b - 1.0) * 100.0);
    }

    println!();
    println!("(fusion shows a small win; move elimination and ITTAGE are ~neutral on");
    println!("this suite — hand-written kernels contain few register moves and few");
    println!("indirect jumps, unlike compiled SPEC code)");
    println!();
    println!("== Spike-like decode-cache size sweep (paper §III-D2) ==");
    let w = workload("sjeng", Scale::Ref);
    for size in [1024usize, 4096, 16384, 32768] {
        let mut s = SpikeLike::with_cache_size(&w.program, size);
        let t = Instant::now();
        let r = s.run(100_000_000);
        let mips = r.instructions as f64 / t.elapsed().as_secs_f64() / 1e6;
        println!(
            "cache {size:>6}: {mips:>7.1} MIPS  (hits {:.1}%)",
            s.hits as f64 / (s.hits + s.misses) as f64 * 100.0
        );
    }

    println!("(the kernels' static footprints are tiny, so every size achieves ~100%");
    println!("hits; the paper's 1024-to-32768 sweep mattered for SPEC-sized code)");
    println!();
    println!("== NEMU uop-cache capacity sweep ==");
    for cap in [256usize, 1024, 16384] {
        let mut n = Nemu::with_capacity(&w.program, cap);
        let t = Instant::now();
        let r = n.run(100_000_000);
        let mips = r.instructions as f64 / t.elapsed().as_secs_f64() / 1e6;
        println!(
            "capacity {cap:>6}: {mips:>7.1} MIPS  (fills {}, flushes {})",
            n.stats.uop_fills, n.stats.flushes
        );
    }
}
