//! Figure 15: fraction of cycles with a given number of ready-to-issue
//! instructions (PUBS disabled), plus the §IV-D2 analysis numbers.
//!
//! Paper reference: on sjeng, more than two ready instructions occur in
//! 12.8% of cycles, and ~5.9% of instructions are marked high priority —
//! which is why PUBS cannot help a 2-wide-issue-per-queue XiangShan.

use checkpoint::generate_checkpoints;
use workloads::{workload, Scale};
use xscore::{XsConfig, XsSystem};

fn main() {
    let w = workload("sjeng", Scale::Ref);
    let set = generate_checkpoints(&w.program, 300_000, 4, 500_000_000);
    let cfg = XsConfig::nh(); // AGE
    let mut hist = [0u64; 16];
    let mut hp = 0u64;
    let mut dispatched = 0u64;
    for c in &set.checkpoints {
        let mut sys = XsSystem::from_memory(cfg.clone(), c.memory.clone(), c.state.pc);
        sys.restore(&c.state);
        while sys.cores[0].instret() < 150_000 && !sys.all_halted() {
            sys.tick();
        }
        for (i, v) in sys.cores[0].perf.ready_hist.iter().enumerate() {
            hist[i] += v;
        }
        hp += sys.cores[0].perf.high_priority_dispatched;
        dispatched += sys.cores[0].perf.dispatched;
    }
    let total: u64 = hist.iter().sum();
    println!("Figure 15: distribution of ready instructions in the ALU issue queues");
    println!("{:<10} {:>12}", "ready", "% of cycles");
    for (i, v) in hist.iter().enumerate() {
        let label = if i == 15 { ">=15".to_string() } else { i.to_string() };
        println!("{label:<10} {:>11.2}%", *v as f64 / total as f64 * 100.0);
    }
    let gt2: u64 = hist[3..].iter().sum();
    println!();
    println!(
        "cycles with more than 2 ready instructions: {:.1}%  (paper: 12.8%)",
        gt2 as f64 / total as f64 * 100.0
    );
    // Re-run one checkpoint with PUBS on to report the high-priority mark
    // rate (the paper's 5.9% statistic is with PUBS tracking enabled).
    let pubs = XsConfig::nh().with_pubs();
    if let Some(c) = set.checkpoints.first() {
        let mut sys = XsSystem::from_memory(pubs, c.memory.clone(), c.state.pc);
        sys.restore(&c.state);
        while sys.cores[0].instret() < 150_000 && !sys.all_halted() {
            sys.tick();
        }
        hp = sys.cores[0].perf.high_priority_dispatched;
        dispatched = sys.cores[0].perf.dispatched;
    }
    println!(
        "instructions marked high priority under PUBS: {:.1}%  (paper: 5.9%)",
        hp as f64 / dispatched.max(1) as f64 * 100.0
    );
}
