//! Figure 14 (and the §IV-D experiment): IPC difference when PUBS is
//! enabled, on sjeng checkpoints.
//!
//! The paper's *negative* result: "we do not observe any visible
//! performance deviation for PUBS on sjeng" on XiangShan's wide backend,
//! even though the original PUBS paper reported +6.5% on a narrower
//! machine. Expect per-checkpoint IPC deltas scattered around 0.

use checkpoint::generate_checkpoints;
use workloads::{workload, Scale};
use xscore::{XsConfig, XsSystem};

/// Run one checkpoint on a config: warm up, then measure the window.
/// Returns None when the checkpoint is too close to program end.
fn measure(cfg: &XsConfig, c: &checkpoint::Checkpoint, warmup: u64, window: u64) -> Option<f64> {
    let mut sys = XsSystem::from_memory(cfg.clone(), c.memory.clone(), c.state.pc);
    sys.restore(&c.state);
    // Warm-up period: micro-architectural state fills (paper §III-D3).
    let mut guard = 0u64;
    while sys.cores[0].instret() < warmup && !sys.all_halted() {
        sys.tick();
        guard += 1;
        assert!(guard < 80_000_000, "warmup did not converge");
    }
    let c0 = sys.cores[0].cycle();
    let i0 = sys.cores[0].instret();
    while sys.cores[0].instret() < i0 + window && !sys.all_halted() {
        sys.tick();
    }
    let di = sys.cores[0].instret() - i0;
    if di < window / 2 {
        return None;
    }
    let dc = sys.cores[0].cycle() - c0;
    Some(di as f64 / dc.max(1) as f64)
}

fn main() {
    let w = workload("sjeng", Scale::Ref);
    // ~10 checkpoints like the paper's sjeng experiment.
    let set = generate_checkpoints(&w.program, 300_000, 10, 500_000_000);
    println!(
        "Figure 14: PUBS IPC delta on {} sjeng checkpoints (AGE baseline)",
        set.checkpoints.len()
    );
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "checkpoint", "AGE ipc", "AGE+PUBS", "delta"
    );
    let age = XsConfig::nh();
    let pubs = XsConfig::nh().with_pubs();
    let (warmup, window) = (50_000, 100_000);
    let mut deltas = Vec::new();
    for c in &set.checkpoints {
        let (Some(a), Some(p)) = (
            measure(&age, c, warmup, window),
            measure(&pubs, c, warmup, window),
        ) else {
            println!("{:<12} {:>12} (skipped: too close to program end)", format!("#{}", c.interval), "-");
            continue;
        };
        let d = (p / a - 1.0) * 100.0;
        deltas.push(d);
        println!(
            "{:<12} {:>12.5} {:>12.5} {:>9.3}%",
            format!("#{}", c.interval),
            a,
            p,
            d
        );
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!();
    println!(
        "mean IPC delta: {mean:+.3}%   (paper: no visible deviation; original PUBS paper: +6.5%)"
    );
}
