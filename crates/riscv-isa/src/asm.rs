//! An in-Rust assembler (program builder) with labels and fixups.
//!
//! The workload suite builds its SPEC-like kernels with this module
//! instead of an external toolchain — the reproduction must be
//! self-contained (SPEC binaries and the riscv-gnu-toolchain are outside
//! the allowed inputs; see DESIGN.md §5.2).
//!
//! # Example
//!
//! ```
//! use riscv_isa::asm::{reg::*, Asm};
//!
//! let mut a = Asm::new(0x8000_0000);
//! a.li(T0, 0);
//! a.li(T1, 10);
//! let top = a.label();
//! a.bind(top);
//! a.addi(T0, T0, 1);
//! a.bne(T0, T1, top);
//! a.ebreak();
//! let prog = a.assemble();
//! assert_eq!(prog.base, 0x8000_0000);
//! assert!(prog.bytes.len() >= 5 * 4);
//! ```

use crate::encode::encode;
use crate::op::{DecodedInst, Op};

/// Integer register ABI constants.
#[allow(missing_docs)]
pub mod reg {
    pub const ZERO: u8 = 0;
    pub const RA: u8 = 1;
    pub const SP: u8 = 2;
    pub const GP: u8 = 3;
    pub const TP: u8 = 4;
    pub const T0: u8 = 5;
    pub const T1: u8 = 6;
    pub const T2: u8 = 7;
    pub const S0: u8 = 8;
    pub const S1: u8 = 9;
    pub const A0: u8 = 10;
    pub const A1: u8 = 11;
    pub const A2: u8 = 12;
    pub const A3: u8 = 13;
    pub const A4: u8 = 14;
    pub const A5: u8 = 15;
    pub const A6: u8 = 16;
    pub const A7: u8 = 17;
    pub const S2: u8 = 18;
    pub const S3: u8 = 19;
    pub const S4: u8 = 20;
    pub const S5: u8 = 21;
    pub const S6: u8 = 22;
    pub const S7: u8 = 23;
    pub const S8: u8 = 24;
    pub const S9: u8 = 25;
    pub const S10: u8 = 26;
    pub const S11: u8 = 27;
    pub const T3: u8 = 28;
    pub const T4: u8 = 29;
    pub const T5: u8 = 30;
    pub const T6: u8 = 31;
    // Floating-point registers share the 0..31 index space.
    pub const FT0: u8 = 0;
    pub const FT1: u8 = 1;
    pub const FT2: u8 = 2;
    pub const FT3: u8 = 3;
    pub const FT4: u8 = 4;
    pub const FT5: u8 = 5;
    pub const FT6: u8 = 6;
    pub const FT7: u8 = 7;
    pub const FS0: u8 = 8;
    pub const FS1: u8 = 9;
    pub const FA0: u8 = 10;
    pub const FA1: u8 = 11;
    pub const FA2: u8 = 12;
    pub const FA3: u8 = 13;
    pub const FA4: u8 = 14;
    pub const FA5: u8 = 15;
    pub const FT8: u8 = 28;
    pub const FT9: u8 = 29;
    pub const FT10: u8 = 30;
    pub const FT11: u8 = 31;
}

/// A forward- or backward-referenced code/data location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
enum FixKind {
    /// B-type target (conditional branch).
    Branch,
    /// J-type target (jal).
    Jal,
    /// An auipc+addi pair materializing an absolute address.
    AuipcPair,
    /// A 64-bit absolute address in the data stream.
    Abs64,
}

#[derive(Debug, Clone, Copy)]
struct Fixup {
    offset: usize,
    label: Label,
    kind: FixKind,
}

/// An assembled flat binary image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Load address of the image.
    pub base: u64,
    /// Entry point (equals `base`).
    pub entry: u64,
    /// The image bytes.
    pub bytes: Vec<u8>,
}

impl Program {
    /// Load the image into a physical memory.
    pub fn load_into<M: crate::mem::PhysMem>(&self, mem: &mut M) {
        mem.write(self.base, &self.bytes);
    }

    /// Size of the image in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// The program builder.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u64,
    buf: Vec<u8>,
    labels: Vec<Option<u64>>,
    fixups: Vec<Fixup>,
}

macro_rules! rrr {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emit `", stringify!($name), " rd, rs1, rs2`.")]
            pub fn $name(&mut self, rd: u8, rs1: u8, rs2: u8) {
                self.emit_op(Op::$op, rd, rs1, rs2, 0, 0);
            }
        )*
    };
}

macro_rules! rri {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emit `", stringify!($name), " rd, rs1, imm`.")]
            pub fn $name(&mut self, rd: u8, rs1: u8, imm: i64) {
                self.emit_op(Op::$op, rd, rs1, 0, 0, imm);
            }
        )*
    };
}

macro_rules! rr {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emit `", stringify!($name), " rd, rs1`.")]
            pub fn $name(&mut self, rd: u8, rs1: u8) {
                self.emit_op(Op::$op, rd, rs1, 0, 0, 0);
            }
        )*
    };
}

macro_rules! branches {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emit `", stringify!($name), " rs1, rs2, label`.")]
            pub fn $name(&mut self, rs1: u8, rs2: u8, target: Label) {
                self.fixups.push(Fixup {
                    offset: self.buf.len(),
                    label: target,
                    kind: FixKind::Branch,
                });
                self.emit_op(Op::$op, 0, rs1, rs2, 0, 0);
            }
        )*
    };
}

macro_rules! fp3 {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emit `", stringify!($name), " rd, rs1, rs2` (FP).")]
            pub fn $name(&mut self, rd: u8, rs1: u8, rs2: u8) {
                self.emit_op(Op::$op, rd, rs1, rs2, 0, 0);
            }
        )*
    };
}

macro_rules! fp4 {
    ($($name:ident => $op:ident),* $(,)?) => {
        $(
            #[doc = concat!("Emit `", stringify!($name), " rd, rs1, rs2, rs3` (FMA).")]
            pub fn $name(&mut self, rd: u8, rs1: u8, rs2: u8, rs3: u8) {
                self.emit_op(Op::$op, rd, rs1, rs2, rs3, 0);
            }
        )*
    };
}

impl Asm {
    /// Start building a program at load address `base`.
    pub fn new(base: u64) -> Self {
        Asm {
            base,
            buf: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Current emit address.
    pub fn here(&self) -> u64 {
        self.base + self.buf.len() as u64
    }

    /// Create a new unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current address.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let here = self.here();
        assert!(
            self.labels[label.0].replace(here).is_none(),
            "label bound twice"
        );
    }

    /// Create a label already bound to the current address.
    pub fn bound_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Emit a raw 32-bit word (instruction or data).
    pub fn raw32(&mut self, w: u32) {
        self.buf.extend_from_slice(&w.to_le_bytes());
    }

    /// Emit a raw 16-bit compressed instruction.
    pub fn raw16(&mut self, w: u16) {
        self.buf.extend_from_slice(&w.to_le_bytes());
    }

    /// Emit `c.addi rd, imm` (compressed; imm in -32..32, nonzero rd).
    ///
    /// # Panics
    ///
    /// Panics when the operands do not fit the compressed encoding.
    pub fn c_addi(&mut self, rd: u8, imm: i64) {
        assert!(rd != 0 && (-32..32).contains(&imm), "c.addi operand range");
        let imm = imm as u16 & 0x3f;
        self.raw16(0x0001 | ((imm >> 5) << 12) | ((rd as u16) << 7) | ((imm & 0x1f) << 2));
    }

    /// Emit `c.li rd, imm` (compressed).
    ///
    /// # Panics
    ///
    /// Panics when the operands do not fit the compressed encoding.
    pub fn c_li(&mut self, rd: u8, imm: i64) {
        assert!(rd != 0 && (-32..32).contains(&imm), "c.li operand range");
        let imm = imm as u16 & 0x3f;
        self.raw16(0x4001 | ((imm >> 5) << 12) | ((rd as u16) << 7) | ((imm & 0x1f) << 2));
    }

    /// Emit `c.mv rd, rs` (compressed).
    ///
    /// # Panics
    ///
    /// Panics when rd or rs is x0.
    pub fn c_mv(&mut self, rd: u8, rs: u8) {
        assert!(rd != 0 && rs != 0, "c.mv needs nonzero registers");
        self.raw16(0x8002 | ((rd as u16) << 7) | ((rs as u16) << 2));
    }

    /// Emit `c.nop` (compressed).
    pub fn c_nop(&mut self) {
        self.raw16(0x0001);
    }

    fn emit_op(&mut self, op: Op, rd: u8, rs1: u8, rs2: u8, rs3: u8, imm: i64) {
        let d = DecodedInst {
            op,
            rd,
            rs1,
            rs2,
            rs3,
            imm,
            rm: if d_needs_rm(op) { 7 } else { 0 },
            len: 4,
            raw: 0,
        };
        let raw = encode(&d).unwrap_or_else(|| panic!("cannot encode {op:?}"));
        self.raw32(raw);
    }

    rrr! {
        add => Add, sub => Sub, sll => Sll, slt => Slt, sltu => Sltu, xor => Xor,
        srl => Srl, sra => Sra, or => Or, and => And,
        addw => Addw, subw => Subw, sllw => Sllw, srlw => Srlw, sraw => Sraw,
        mul => Mul, mulh => Mulh, mulhu => Mulhu, mulhsu => Mulhsu,
        div => Div, divu => Divu, rem => Rem, remu => Remu,
        mulw => Mulw, divw => Divw, divuw => Divuw, remw => Remw, remuw => Remuw,
        sh1add => Sh1add, sh2add => Sh2add, sh3add => Sh3add, add_uw => AddUw,
        andn => Andn, orn => Orn, xnor => Xnor,
        max => Max, min => Min, maxu => Maxu, minu => Minu,
        rol => Rol, ror => Ror,
    }

    rri! {
        addi => Addi, slti => Slti, sltiu => Sltiu, xori => Xori, ori => Ori, andi => Andi,
        slli => Slli, srli => Srli, srai => Srai,
        addiw => Addiw, slliw => Slliw, srliw => Srliw, sraiw => Sraiw,
        rori => Rori, slli_uw => SlliUw,
        jalr => Jalr,
    }

    /// Emit `lb rd, imm(rs1)`.
    pub fn lb(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Lb, rd, rs1, 0, 0, imm);
    }
    /// Emit `lh rd, imm(rs1)`.
    pub fn lh(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Lh, rd, rs1, 0, 0, imm);
    }
    /// Emit `lw rd, imm(rs1)`.
    pub fn lw(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Lw, rd, rs1, 0, 0, imm);
    }
    /// Emit `ld rd, imm(rs1)`.
    pub fn ld(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Ld, rd, rs1, 0, 0, imm);
    }
    /// Emit `lbu rd, imm(rs1)`.
    pub fn lbu(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Lbu, rd, rs1, 0, 0, imm);
    }
    /// Emit `lhu rd, imm(rs1)`.
    pub fn lhu(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Lhu, rd, rs1, 0, 0, imm);
    }
    /// Emit `lwu rd, imm(rs1)`.
    pub fn lwu(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Lwu, rd, rs1, 0, 0, imm);
    }

    rr! {
        clz => Clz, ctz => Ctz, cpop => Cpop, sext_b => SextB, sext_h => SextH,
        zext_h => ZextH, orc_b => OrcB, rev8 => Rev8,
    }

    branches! {
        beq => Beq, bne => Bne, blt => Blt, bge => Bge, bltu => Bltu, bgeu => Bgeu,
    }

    fp3! {
        fadd_s => FaddS, fsub_s => FsubS, fmul_s => FmulS, fdiv_s => FdivS,
        fadd_d => FaddD, fsub_d => FsubD, fmul_d => FmulD, fdiv_d => FdivD,
        fsgnj_d => FsgnjD, fsgnjn_d => FsgnjnD, fsgnjx_d => FsgnjxD,
        fmin_d => FminD, fmax_d => FmaxD,
        feq_d => FeqD, flt_d => FltD, fle_d => FleD,
    }

    fp4! {
        fmadd_d => FmaddD, fmsub_d => FmsubD, fnmsub_d => FnmsubD, fnmadd_d => FnmaddD,
        fmadd_s => FmaddS,
    }

    /// Emit `sb rs2, imm(rs1)`.
    pub fn sb(&mut self, rs2: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Sb, 0, rs1, rs2, 0, imm);
    }
    /// Emit `sh rs2, imm(rs1)`.
    pub fn sh(&mut self, rs2: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Sh, 0, rs1, rs2, 0, imm);
    }
    /// Emit `sw rs2, imm(rs1)`.
    pub fn sw(&mut self, rs2: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Sw, 0, rs1, rs2, 0, imm);
    }
    /// Emit `sd rs2, imm(rs1)`.
    pub fn sd(&mut self, rs2: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Sd, 0, rs1, rs2, 0, imm);
    }
    /// Emit `fld rd, imm(rs1)`.
    pub fn fld(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Fld, rd, rs1, 0, 0, imm);
    }
    /// Emit `fsd rs2, imm(rs1)`.
    pub fn fsd(&mut self, rs2: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Fsd, 0, rs1, rs2, 0, imm);
    }
    /// Emit `flw rd, imm(rs1)`.
    pub fn flw(&mut self, rd: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Flw, rd, rs1, 0, 0, imm);
    }
    /// Emit `fsw rs2, imm(rs1)`.
    pub fn fsw(&mut self, rs2: u8, imm: i64, rs1: u8) {
        self.emit_op(Op::Fsw, 0, rs1, rs2, 0, imm);
    }
    /// Emit `fcvt.d.l rd, rs1`.
    pub fn fcvt_d_l(&mut self, rd: u8, rs1: u8) {
        self.emit_op(Op::FcvtDL, rd, rs1, 0, 0, 0);
    }
    /// Emit `fcvt.l.d rd, rs1` with round-to-zero.
    pub fn fcvt_l_d(&mut self, rd: u8, rs1: u8) {
        let d = DecodedInst {
            op: Op::FcvtLD,
            rd,
            rs1,
            rm: 1, // RTZ, as compilers emit for casts
            ..Default::default()
        };
        self.raw32(encode(&d).expect("fcvt.l.d encodes"));
    }
    /// Emit `fmv_d_x rd, rs1`.
    pub fn fmv_d_x(&mut self, rd: u8, rs1: u8) {
        self.emit_op(Op::FmvDX, rd, rs1, 0, 0, 0);
    }
    /// Emit `fmv_x_d rd, rs1`.
    pub fn fmv_x_d(&mut self, rd: u8, rs1: u8) {
        self.emit_op(Op::FmvXD, rd, rs1, 0, 0, 0);
    }
    /// Emit `fsqrt.d rd, rs1`.
    pub fn fsqrt_d(&mut self, rd: u8, rs1: u8) {
        self.emit_op(Op::FsqrtD, rd, rs1, 0, 0, 0);
    }

    /// Emit `lui rd, imm20` (imm is the already-shifted 32-bit value).
    pub fn lui(&mut self, rd: u8, imm: i64) {
        self.emit_op(Op::Lui, rd, 0, 0, 0, imm);
    }
    /// Emit `auipc rd, imm20`.
    pub fn auipc(&mut self, rd: u8, imm: i64) {
        self.emit_op(Op::Auipc, rd, 0, 0, 0, imm);
    }
    /// Emit `jal rd, label`.
    pub fn jal(&mut self, rd: u8, target: Label) {
        self.fixups.push(Fixup {
            offset: self.buf.len(),
            label: target,
            kind: FixKind::Jal,
        });
        self.emit_op(Op::Jal, rd, 0, 0, 0, 0);
    }
    /// Emit `ecall`.
    pub fn ecall(&mut self) {
        self.emit_op(Op::Ecall, 0, 0, 0, 0, 0);
    }
    /// Emit `ebreak`.
    pub fn ebreak(&mut self) {
        self.emit_op(Op::Ebreak, 0, 0, 0, 0, 0);
    }
    /// Emit `fence`.
    pub fn fence(&mut self) {
        self.emit_op(Op::Fence, 0, 0, 0, 0, 0);
    }
    /// Emit `fence.i`.
    pub fn fence_i(&mut self) {
        self.emit_op(Op::FenceI, 0, 0, 0, 0, 0);
    }
    /// Emit `sfence.vma rs1, rs2`.
    pub fn sfence_vma(&mut self, rs1: u8, rs2: u8) {
        self.emit_op(Op::SfenceVma, 0, rs1, rs2, 0, 0);
    }
    /// Emit `mret`.
    pub fn mret(&mut self) {
        self.emit_op(Op::Mret, 0, 0, 0, 0, 0);
    }
    /// Emit `sret`.
    pub fn sret(&mut self) {
        self.emit_op(Op::Sret, 0, 0, 0, 0, 0);
    }
    /// Emit `csrrw rd, csr, rs1`.
    pub fn csrrw(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.emit_op(Op::Csrrw, rd, rs1, 0, 0, csr as i64);
    }
    /// Emit `csrrs rd, csr, rs1`.
    pub fn csrrs(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.emit_op(Op::Csrrs, rd, rs1, 0, 0, csr as i64);
    }
    /// Emit `csrrc rd, csr, rs1`.
    pub fn csrrc(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.emit_op(Op::Csrrc, rd, rs1, 0, 0, csr as i64);
    }
    /// Emit `csrrwi rd, csr, zimm`.
    pub fn csrrwi(&mut self, rd: u8, csr: u16, zimm: u8) {
        self.emit_op(Op::Csrrwi, rd, zimm, 0, 0, csr as i64);
    }
    /// Emit `lr.d rd, (rs1)`.
    pub fn lr_d(&mut self, rd: u8, rs1: u8) {
        self.emit_op(Op::LrD, rd, rs1, 0, 0, 0);
    }
    /// Emit `sc.d rd, rs2, (rs1)`.
    pub fn sc_d(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.emit_op(Op::ScD, rd, rs1, rs2, 0, 0);
    }
    /// Emit `lr.w rd, (rs1)`.
    pub fn lr_w(&mut self, rd: u8, rs1: u8) {
        self.emit_op(Op::LrW, rd, rs1, 0, 0, 0);
    }
    /// Emit `sc.w rd, rs2, (rs1)`.
    pub fn sc_w(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.emit_op(Op::ScW, rd, rs1, rs2, 0, 0);
    }
    /// Emit `amoadd.d rd, rs2, (rs1)`.
    pub fn amoadd_d(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.emit_op(Op::AmoaddD, rd, rs1, rs2, 0, 0);
    }
    /// Emit `amoswap.w rd, rs2, (rs1)`.
    pub fn amoswap_w(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.emit_op(Op::AmoswapW, rd, rs1, rs2, 0, 0);
    }
    /// Emit `amoadd.w rd, rs2, (rs1)`.
    pub fn amoadd_w(&mut self, rd: u8, rs2: u8, rs1: u8) {
        self.emit_op(Op::AmoaddW, rd, rs1, rs2, 0, 0);
    }

    // ----- pseudo-instructions -----

    /// `nop`.
    pub fn nop(&mut self) {
        self.addi(reg::ZERO, reg::ZERO, 0);
    }
    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: u8, rs: u8) {
        self.addi(rd, rs, 0);
    }
    /// `neg rd, rs`.
    pub fn neg(&mut self, rd: u8, rs: u8) {
        self.sub(rd, reg::ZERO, rs);
    }
    /// `not rd, rs`.
    pub fn not(&mut self, rd: u8, rs: u8) {
        self.xori(rd, rs, -1);
    }
    /// `j label`.
    pub fn j(&mut self, target: Label) {
        self.jal(reg::ZERO, target);
    }
    /// `ret`.
    pub fn ret(&mut self) {
        self.jalr(reg::ZERO, reg::RA, 0);
    }
    /// `call label` (jal ra, label).
    pub fn call(&mut self, target: Label) {
        self.jal(reg::RA, target);
    }
    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: u8, target: Label) {
        self.beq(rs, reg::ZERO, target);
    }
    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: u8, target: Label) {
        self.bne(rs, reg::ZERO, target);
    }

    /// Materialize an arbitrary 64-bit constant into `rd`.
    pub fn li(&mut self, rd: u8, imm: i64) {
        if (-2048..2048).contains(&imm) {
            self.addi(rd, reg::ZERO, imm);
        } else if imm >= i32::MIN as i64 && imm <= i32::MAX as i64 {
            let low = ((imm << 52) >> 52) as i64; // sign-extended low 12
            let high = imm.wrapping_sub(low);
            self.lui(rd, high & 0xffff_f000);
            if low != 0 {
                self.addiw(rd, rd, low);
            }
        } else {
            let low = ((imm << 52) >> 52) as i64;
            let rest = imm.wrapping_sub(low) >> 12;
            self.li(rd, rest);
            self.slli(rd, rd, 12);
            if low != 0 {
                self.addi(rd, rd, low);
            }
        }
    }

    /// Load the absolute address of a label into `rd` (auipc+addi pair).
    pub fn la(&mut self, rd: u8, target: Label) {
        self.fixups.push(Fixup {
            offset: self.buf.len(),
            label: target,
            kind: FixKind::AuipcPair,
        });
        self.auipc(rd, 0);
        self.addi(rd, rd, 0);
    }

    // ----- data directives -----

    /// Align to a power-of-two boundary with zero fill.
    pub fn align(&mut self, pow2: u64) {
        let mask = (1u64 << pow2) - 1;
        while self.here() & mask != 0 {
            self.buf.push(0);
        }
    }
    /// Emit a 32-bit little-endian datum.
    pub fn data_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Emit a 64-bit little-endian datum.
    pub fn data_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Emit a 64-bit absolute address of a label.
    pub fn data_addr(&mut self, target: Label) {
        self.fixups.push(Fixup {
            offset: self.buf.len(),
            label: target,
            kind: FixKind::Abs64,
        });
        self.data_u64(0);
    }
    /// Emit `n` zero bytes.
    pub fn zeros(&mut self, n: usize) {
        self.buf.resize(self.buf.len() + n, 0);
    }

    /// Resolve fixups and return the final image.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels or out-of-range branch displacements.
    pub fn assemble(mut self) -> Program {
        for fix in std::mem::take(&mut self.fixups) {
            let target = self.labels[fix.label.0].expect("unbound label");
            let at = self.base + fix.offset as u64;
            match fix.kind {
                FixKind::Branch | FixKind::Jal => {
                    let disp = target.wrapping_sub(at) as i64;
                    let limit = if matches!(fix.kind, FixKind::Branch) {
                        4096
                    } else {
                        1 << 20
                    };
                    assert!(
                        (-limit..limit).contains(&disp),
                        "branch displacement {disp} out of range"
                    );
                    let raw = self.read32(fix.offset);
                    let mut d = crate::decode::decode32(raw);
                    d.imm = disp;
                    self.write32(fix.offset, encode(&d).expect("refix encodes"));
                }
                FixKind::AuipcPair => {
                    let disp = target.wrapping_sub(at) as i64;
                    let low = ((disp << 52) >> 52) as i64;
                    let high = disp.wrapping_sub(low);
                    let raw = self.read32(fix.offset);
                    let mut d = crate::decode::decode32(raw);
                    d.imm = high;
                    self.write32(fix.offset, encode(&d).expect("auipc encodes"));
                    let raw = self.read32(fix.offset + 4);
                    let mut d = crate::decode::decode32(raw);
                    d.imm = low;
                    self.write32(fix.offset + 4, encode(&d).expect("addi encodes"));
                }
                FixKind::Abs64 => {
                    self.buf[fix.offset..fix.offset + 8].copy_from_slice(&target.to_le_bytes());
                }
            }
        }
        Program {
            base: self.base,
            entry: self.base,
            bytes: self.buf,
        }
    }

    fn read32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.buf[off..off + 4].try_into().unwrap())
    }

    fn write32(&mut self, off: usize, v: u32) {
        self.buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }
}

fn d_needs_rm(op: Op) -> bool {
    use Op::*;
    matches!(
        op,
        FaddS
            | FsubS
            | FmulS
            | FdivS
            | FsqrtS
            | FaddD
            | FsubD
            | FmulD
            | FdivD
            | FsqrtD
            | FmaddS
            | FmsubS
            | FnmsubS
            | FnmaddS
            | FmaddD
            | FmsubD
            | FnmsubD
            | FnmaddD
    )
}

#[cfg(test)]
mod tests {
    use super::reg::*;
    use super::*;
    use crate::decode::decode32;
    use crate::op::Op;

    fn words(p: &Program) -> Vec<u32> {
        p.bytes
            .chunks(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new(0x1000);
        let fwd = a.label();
        let back = a.bound_label();
        a.addi(T0, T0, 1); // 0x1000
        a.bne(T0, T1, fwd); // 0x1004 -> 0x100c
        a.j(back); // 0x1008 -> 0x1000
        a.bind(fwd);
        a.ebreak(); // 0x100c
        let p = a.assemble();
        let w = words(&p);
        let bne = decode32(w[1]);
        assert_eq!((bne.op, bne.imm), (Op::Bne, 8));
        let j = decode32(w[2]);
        assert_eq!((j.op, j.imm), (Op::Jal, -8));
    }

    #[test]
    fn li_materializes_any_constant() {
        use crate::exec::int_compute;
        use crate::op::Op as O;
        for imm in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234,
            -0x1234,
            0x7fff_ffff,
            -0x8000_0000,
            0x1_0000_0000,
            0x1234_5678_9abc_def0,
            i64::MIN,
            i64::MAX,
        ] {
            let mut a = Asm::new(0);
            a.li(T0, imm);
            let p = a.assemble();
            // Interpret the li sequence directly.
            let mut regs = [0u64; 32];
            for w in words(&p) {
                let d = decode32(w);
                let aval = regs[d.rs1 as usize];
                let v = match d.op {
                    O::Lui => d.imm as u64,
                    _ => int_compute(d.op, aval, d.imm as u64).unwrap(),
                };
                regs[d.rd as usize] = v;
            }
            assert_eq!(regs[T0 as usize], imm as u64, "li {imm:#x}");
        }
    }

    #[test]
    fn la_resolves_absolute_address() {
        let mut a = Asm::new(0x8000_0000);
        let data = a.label();
        a.la(T0, data);
        a.ebreak();
        a.align(3);
        a.bind(data);
        a.data_u64(0x1122);
        let p = a.assemble();
        let w = words(&p);
        let auipc = decode32(w[0]);
        let addi = decode32(w[1]);
        assert_eq!(auipc.op, Op::Auipc);
        let resolved = 0x8000_0000u64
            .wrapping_add(auipc.imm as u64)
            .wrapping_add(addi.imm as u64);
        assert_eq!(resolved, 0x8000_0010);
    }

    #[test]
    fn data_directives() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.data_u32(7);
        a.align(3);
        a.bind(l);
        a.data_addr(l);
        a.zeros(3);
        let p = a.assemble();
        assert_eq!(p.bytes.len(), 8 + 8 + 3);
        assert_eq!(
            u64::from_le_bytes(p.bytes[8..16].try_into().unwrap()),
            8,
            "label address stored"
        );
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.j(l);
        let _ = a.assemble();
    }

    #[test]
    fn program_loads_into_memory() {
        use crate::mem::{PhysMem, SparseMemory};
        let mut a = Asm::new(0x8000_0000);
        a.nop();
        let p = a.assemble();
        let mut m = SparseMemory::new();
        p.load_into(&mut m);
        assert_eq!(m.fetch32(0x8000_0000), 0x0000_0013);
    }
}
