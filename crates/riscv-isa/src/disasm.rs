//! A compact disassembler used by trace logs, ArchDB dumps, and debug
//! replays (the reproduction's analogue of reading a waveform next to a
//! program listing).

use crate::op::{DecodedInst, Op};

/// ABI names of the integer registers.
pub const GPR_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// ABI names of the floating-point registers.
pub const FPR_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

/// Lower-case mnemonic of an operation.
pub fn mnemonic(op: Op) -> &'static str {
    use Op::*;
    match op {
        Lui => "lui",
        Auipc => "auipc",
        Jal => "jal",
        Jalr => "jalr",
        Beq => "beq",
        Bne => "bne",
        Blt => "blt",
        Bge => "bge",
        Bltu => "bltu",
        Bgeu => "bgeu",
        Lb => "lb",
        Lh => "lh",
        Lw => "lw",
        Ld => "ld",
        Lbu => "lbu",
        Lhu => "lhu",
        Lwu => "lwu",
        Sb => "sb",
        Sh => "sh",
        Sw => "sw",
        Sd => "sd",
        Addi => "addi",
        Slti => "slti",
        Sltiu => "sltiu",
        Xori => "xori",
        Ori => "ori",
        Andi => "andi",
        Slli => "slli",
        Srli => "srli",
        Srai => "srai",
        Add => "add",
        Sub => "sub",
        Sll => "sll",
        Slt => "slt",
        Sltu => "sltu",
        Xor => "xor",
        Srl => "srl",
        Sra => "sra",
        Or => "or",
        And => "and",
        Addiw => "addiw",
        Slliw => "slliw",
        Srliw => "srliw",
        Sraiw => "sraiw",
        Addw => "addw",
        Subw => "subw",
        Sllw => "sllw",
        Srlw => "srlw",
        Sraw => "sraw",
        Fence => "fence",
        FenceI => "fence.i",
        Ecall => "ecall",
        Ebreak => "ebreak",
        Csrrw => "csrrw",
        Csrrs => "csrrs",
        Csrrc => "csrrc",
        Csrrwi => "csrrwi",
        Csrrsi => "csrrsi",
        Csrrci => "csrrci",
        Mul => "mul",
        Mulh => "mulh",
        Mulhsu => "mulhsu",
        Mulhu => "mulhu",
        Div => "div",
        Divu => "divu",
        Rem => "rem",
        Remu => "remu",
        Mulw => "mulw",
        Divw => "divw",
        Divuw => "divuw",
        Remw => "remw",
        Remuw => "remuw",
        LrW => "lr.w",
        ScW => "sc.w",
        AmoswapW => "amoswap.w",
        AmoaddW => "amoadd.w",
        AmoxorW => "amoxor.w",
        AmoandW => "amoand.w",
        AmoorW => "amoor.w",
        AmominW => "amomin.w",
        AmomaxW => "amomax.w",
        AmominuW => "amominu.w",
        AmomaxuW => "amomaxu.w",
        LrD => "lr.d",
        ScD => "sc.d",
        AmoswapD => "amoswap.d",
        AmoaddD => "amoadd.d",
        AmoxorD => "amoxor.d",
        AmoandD => "amoand.d",
        AmoorD => "amoor.d",
        AmominD => "amomin.d",
        AmomaxD => "amomax.d",
        AmominuD => "amominu.d",
        AmomaxuD => "amomaxu.d",
        Flw => "flw",
        Fsw => "fsw",
        FmaddS => "fmadd.s",
        FmsubS => "fmsub.s",
        FnmsubS => "fnmsub.s",
        FnmaddS => "fnmadd.s",
        FaddS => "fadd.s",
        FsubS => "fsub.s",
        FmulS => "fmul.s",
        FdivS => "fdiv.s",
        FsqrtS => "fsqrt.s",
        FsgnjS => "fsgnj.s",
        FsgnjnS => "fsgnjn.s",
        FsgnjxS => "fsgnjx.s",
        FminS => "fmin.s",
        FmaxS => "fmax.s",
        FcvtWS => "fcvt.w.s",
        FcvtWuS => "fcvt.wu.s",
        FcvtLS => "fcvt.l.s",
        FcvtLuS => "fcvt.lu.s",
        FmvXW => "fmv.x.w",
        FeqS => "feq.s",
        FltS => "flt.s",
        FleS => "fle.s",
        FclassS => "fclass.s",
        FcvtSW => "fcvt.s.w",
        FcvtSWu => "fcvt.s.wu",
        FcvtSL => "fcvt.s.l",
        FcvtSLu => "fcvt.s.lu",
        FmvWX => "fmv.w.x",
        Fld => "fld",
        Fsd => "fsd",
        FmaddD => "fmadd.d",
        FmsubD => "fmsub.d",
        FnmsubD => "fnmsub.d",
        FnmaddD => "fnmadd.d",
        FaddD => "fadd.d",
        FsubD => "fsub.d",
        FmulD => "fmul.d",
        FdivD => "fdiv.d",
        FsqrtD => "fsqrt.d",
        FsgnjD => "fsgnj.d",
        FsgnjnD => "fsgnjn.d",
        FsgnjxD => "fsgnjx.d",
        FminD => "fmin.d",
        FmaxD => "fmax.d",
        FcvtSD => "fcvt.s.d",
        FcvtDS => "fcvt.d.s",
        FeqD => "feq.d",
        FltD => "flt.d",
        FleD => "fle.d",
        FclassD => "fclass.d",
        FcvtWD => "fcvt.w.d",
        FcvtWuD => "fcvt.wu.d",
        FcvtLD => "fcvt.l.d",
        FcvtLuD => "fcvt.lu.d",
        FmvXD => "fmv.x.d",
        FcvtDW => "fcvt.d.w",
        FcvtDWu => "fcvt.d.wu",
        FcvtDL => "fcvt.d.l",
        FcvtDLu => "fcvt.d.lu",
        FmvDX => "fmv.d.x",
        Mret => "mret",
        Sret => "sret",
        Wfi => "wfi",
        SfenceVma => "sfence.vma",
        Sh1add => "sh1add",
        Sh2add => "sh2add",
        Sh3add => "sh3add",
        AddUw => "add.uw",
        Sh1addUw => "sh1add.uw",
        Sh2addUw => "sh2add.uw",
        Sh3addUw => "sh3add.uw",
        SlliUw => "slli.uw",
        Andn => "andn",
        Orn => "orn",
        Xnor => "xnor",
        Clz => "clz",
        Ctz => "ctz",
        Cpop => "cpop",
        Clzw => "clzw",
        Ctzw => "ctzw",
        Cpopw => "cpopw",
        Max => "max",
        Min => "min",
        Maxu => "maxu",
        Minu => "minu",
        SextB => "sext.b",
        SextH => "sext.h",
        ZextH => "zext.h",
        Rol => "rol",
        Ror => "ror",
        Rori => "rori",
        Rolw => "rolw",
        Rorw => "rorw",
        Roriw => "roriw",
        OrcB => "orc.b",
        Rev8 => "rev8",
        Illegal => "illegal",
    }
}

/// Render a decoded instruction as assembly text.
///
/// Branch and jump targets are shown as absolute addresses computed from
/// `pc`.
pub fn disassemble(d: &DecodedInst, pc: u64) -> String {
    use Op::*;
    let m = mnemonic(d.op);
    let x = |r: u8| GPR_NAMES[r as usize];
    let f = |r: u8| FPR_NAMES[r as usize];
    match d.op {
        Illegal => format!("illegal {:#010x}", d.raw),
        Lui | Auipc => format!("{m} {}, {:#x}", x(d.rd), (d.imm as u64 >> 12) & 0xfffff),
        Jal => format!("{m} {}, {:#x}", x(d.rd), pc.wrapping_add(d.imm as u64)),
        Jalr => format!("{m} {}, {}({})", x(d.rd), d.imm, x(d.rs1)),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => format!(
            "{m} {}, {}, {:#x}",
            x(d.rs1),
            x(d.rs2),
            pc.wrapping_add(d.imm as u64)
        ),
        Lb | Lh | Lw | Ld | Lbu | Lhu | Lwu => {
            format!("{m} {}, {}({})", x(d.rd), d.imm, x(d.rs1))
        }
        Flw | Fld => format!("{m} {}, {}({})", f(d.rd), d.imm, x(d.rs1)),
        Sb | Sh | Sw | Sd => format!("{m} {}, {}({})", x(d.rs2), d.imm, x(d.rs1)),
        Fsw | Fsd => format!("{m} {}, {}({})", f(d.rs2), d.imm, x(d.rs1)),
        Addi | Slti | Sltiu | Xori | Ori | Andi | Addiw | Slli | Srli | Srai | Slliw | Srliw
        | Sraiw | Rori | Roriw | SlliUw => {
            format!("{m} {}, {}, {}", x(d.rd), x(d.rs1), d.imm)
        }
        Csrrw | Csrrs | Csrrc => format!("{m} {}, {:#x}, {}", x(d.rd), d.csr(), x(d.rs1)),
        Csrrwi | Csrrsi | Csrrci => format!("{m} {}, {:#x}, {}", x(d.rd), d.csr(), d.rs1),
        Ecall | Ebreak | Mret | Sret | Wfi | Fence | FenceI => m.to_string(),
        SfenceVma => format!("{m} {}, {}", x(d.rs1), x(d.rs2)),
        LrW | LrD => format!("{m} {}, ({})", x(d.rd), x(d.rs1)),
        op if DecodedInst { op, ..*d }.is_amo() || matches!(op, ScW | ScD) => {
            format!("{m} {}, {}, ({})", x(d.rd), x(d.rs2), x(d.rs1))
        }
        FmaddS | FmsubS | FnmsubS | FnmaddS | FmaddD | FmsubD | FnmsubD | FnmaddD => format!(
            "{m} {}, {}, {}, {}",
            f(d.rd),
            f(d.rs1),
            f(d.rs2),
            f(d.rs3)
        ),
        FaddS | FsubS | FmulS | FdivS | FaddD | FsubD | FmulD | FdivD | FsgnjS | FsgnjnS
        | FsgnjxS | FsgnjD | FsgnjnD | FsgnjxD | FminS | FmaxS | FminD | FmaxD => {
            format!("{m} {}, {}, {}", f(d.rd), f(d.rs1), f(d.rs2))
        }
        FsqrtS | FsqrtD | FcvtSD | FcvtDS => format!("{m} {}, {}", f(d.rd), f(d.rs1)),
        FeqS | FltS | FleS | FeqD | FltD | FleD => {
            format!("{m} {}, {}, {}", x(d.rd), f(d.rs1), f(d.rs2))
        }
        FclassS | FclassD | FmvXW | FmvXD | FcvtWS | FcvtWuS | FcvtLS | FcvtLuS | FcvtWD
        | FcvtWuD | FcvtLD | FcvtLuD => format!("{m} {}, {}", x(d.rd), f(d.rs1)),
        FmvWX | FmvDX | FcvtSW | FcvtSWu | FcvtSL | FcvtSLu | FcvtDW | FcvtDWu | FcvtDL
        | FcvtDLu => format!("{m} {}, {}", f(d.rd), x(d.rs1)),
        Clz | Ctz | Cpop | Clzw | Ctzw | Cpopw | SextB | SextH | ZextH | OrcB | Rev8 => {
            format!("{m} {}, {}", x(d.rd), x(d.rs1))
        }
        _ => format!("{m} {}, {}, {}", x(d.rd), x(d.rs1), x(d.rs2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode32;

    #[test]
    fn renders_common_forms() {
        assert_eq!(disassemble(&decode32(0x02a0_0293), 0), "addi t0, zero, 42");
        assert_eq!(disassemble(&decode32(0x0020_81b3), 0), "add gp, ra, sp");
        assert_eq!(
            disassemble(&decode32(0x0101_3303), 0),
            "ld t1, 16(sp)"
        );
        assert_eq!(
            disassemble(&decode32(0xfe61_3c23), 0),
            "sd t1, -8(sp)"
        );
        assert_eq!(
            disassemble(&decode32(0x0020_8463), 0x8000_0000),
            "beq ra, sp, 0x80000008"
        );
        assert_eq!(disassemble(&decode32(0x0000_0073), 0), "ecall");
        assert_eq!(
            disassemble(&decode32(0x0220_f1d3), 0),
            "fadd.d ft3, ft1, ft2"
        );
        assert_eq!(
            disassemble(&decode32(0x1855_332f), 0),
            "sc.d t1, t0, (a0)"
        );
        assert_eq!(
            disassemble(&DecodedInst::default(), 0),
            "illegal 0x00000000"
        );
    }

    use crate::op::DecodedInst;

    #[test]
    fn every_op_has_a_mnemonic() {
        // Spot-check that mnemonics are non-empty and lowercase.
        for op in [Op::Lui, Op::FnmaddD, Op::AmomaxuW, Op::Rev8, Op::Wfi] {
            let m = mnemonic(op);
            assert!(!m.is_empty());
            assert_eq!(m, m.to_lowercase());
        }
    }
}
