//! Sv39 virtual-address translation.
//!
//! The walker is shared by the NEMU reference model and (step by step) by
//! the `xscore` page-table walker, so both produce identical final
//! translations — any DUT/REF divergence then comes only from *when* the
//! TLB observed the page tables, which is precisely the non-determinism
//! the paper's Fig. 3 diff-rule covers.

use crate::csr::{mstatus, CsrFile, Privilege};
use crate::mem::PhysMem;
use crate::trap::Exception;
use serde::{Deserialize, Serialize};

/// The kind of access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessType {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store or AMO.
    Store,
}

impl AccessType {
    /// The page-fault exception for this access type.
    pub fn page_fault(self) -> Exception {
        match self {
            AccessType::Fetch => Exception::InstPageFault,
            AccessType::Load => Exception::LoadPageFault,
            AccessType::Store => Exception::StorePageFault,
        }
    }

    /// The access-fault exception for this access type.
    pub fn access_fault(self) -> Exception {
        match self {
            AccessType::Fetch => Exception::InstAccessFault,
            AccessType::Load => Exception::LoadAccessFault,
            AccessType::Store => Exception::StoreAccessFault,
        }
    }
}

/// PTE flag bits.
#[allow(missing_docs)]
pub mod pte {
    pub const V: u64 = 1 << 0;
    pub const R: u64 = 1 << 1;
    pub const W: u64 = 1 << 2;
    pub const X: u64 = 1 << 3;
    pub const U: u64 = 1 << 4;
    pub const G: u64 = 1 << 5;
    pub const A: u64 = 1 << 6;
    pub const D: u64 = 1 << 7;
}

/// One step of a page walk (used by the cycle model to charge latency and
/// by ArchDB to log PTW transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalkStep {
    /// Physical address of the PTE that was read.
    pub pte_addr: u64,
    /// The PTE value observed.
    pub pte: u64,
    /// Walk level (2 = root .. 0 = leaf for 4 KiB pages).
    pub level: u8,
}

/// Result of a successful page walk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Translation {
    /// Translated physical address.
    pub pa: u64,
    /// Leaf PTE (after any A/D update).
    pub pte: u64,
    /// Level of the leaf (0 = 4 KiB, 1 = 2 MiB, 2 = 1 GiB).
    pub level: u8,
    /// The PTE reads performed.
    pub steps: Vec<WalkStep>,
    /// Virtual page number of the leaf mapping.
    pub vpn: u64,
}

const PTE_SIZE: u64 = 8;
const LEVELS: u64 = 3;

/// Returns true when translation is active for this access.
///
/// Fetches translate whenever `satp.MODE == Sv39` and the privilege is
/// below machine; loads/stores additionally honor `mstatus.MPRV`.
pub fn translation_active(csr: &CsrFile, access: AccessType) -> bool {
    let eff = effective_privilege(csr, access);
    eff != Privilege::Machine && csr.satp >> 60 == 8
}

/// The privilege level at which a memory access is performed,
/// considering `mstatus.MPRV` for data accesses.
pub fn effective_privilege(csr: &CsrFile, access: AccessType) -> Privilege {
    if access != AccessType::Fetch && csr.mstatus & mstatus::MPRV != 0 {
        Privilege::from_bits(csr.mstatus >> 11).unwrap_or(Privilege::User)
    } else {
        csr.privilege
    }
}

/// Translate a virtual address, updating A/D bits in memory.
///
/// Returns the identity mapping when translation is inactive.
///
/// # Errors
///
/// Returns the appropriate page-fault exception when the walk encounters
/// an invalid, misconfigured, or permission-violating PTE.
pub fn translate<M: PhysMem>(
    mem: &mut M,
    csr: &CsrFile,
    va: u64,
    access: AccessType,
) -> Result<Translation, Exception> {
    if !translation_active(csr, access) {
        return Ok(Translation {
            pa: va,
            pte: 0,
            level: 0,
            steps: Vec::new(),
            vpn: va >> 12,
        });
    }
    let eff = effective_privilege(csr, access);
    let walk = walk(mem, csr.satp, va, access)?;
    check_leaf_permissions(csr, eff, walk.pte, access)?;
    // Update A/D bits (this implementation always performs the hardware
    // update rather than faulting — one of the legal choices the spec
    // leaves to the implementation).
    let mut leaf = walk.pte;
    let mut need = pte::A;
    if access == AccessType::Store {
        need |= pte::D;
    }
    if leaf & need != need {
        leaf |= need;
        let last = walk.steps.last().expect("walk has at least one step");
        mem.write_uint(last.pte_addr, PTE_SIZE, leaf);
    }
    Ok(Translation { pte: leaf, ..walk })
}

/// Perform the raw Sv39 walk without permission checks or A/D updates.
///
/// # Errors
///
/// Page fault on non-canonical addresses, invalid PTEs, malformed
/// intermediate PTEs, or misaligned superpages.
pub fn walk<M: PhysMem>(
    mem: &mut M,
    satp: u64,
    va: u64,
    access: AccessType,
) -> Result<Translation, Exception> {
    // Canonicality: bits 63:39 must equal bit 38.
    let sext = (va as i64) << 25 >> 25;
    if sext as u64 != va {
        return Err(access.page_fault());
    }

    let mut steps = Vec::with_capacity(3);
    let mut table = (satp & 0xfff_ffff_ffff) << 12;
    let mut level = LEVELS - 1;
    loop {
        let vpn_i = (va >> (12 + 9 * level)) & 0x1ff;
        let pte_addr = table + vpn_i * PTE_SIZE;
        let pte_val = mem.read_uint(pte_addr, PTE_SIZE);
        steps.push(WalkStep {
            pte_addr,
            pte: pte_val,
            level: level as u8,
        });

        if pte_val & pte::V == 0 || (pte_val & pte::R == 0 && pte_val & pte::W != 0) {
            return Err(access.page_fault());
        }
        if pte_val & (pte::R | pte::X) != 0 {
            // Leaf PTE; check superpage alignment.
            let ppn = pte_val >> 10 & 0xfff_ffff_ffff;
            let align_mask = (1u64 << (9 * level)) - 1;
            if ppn & align_mask != 0 {
                return Err(access.page_fault());
            }
            let offset_mask = (1u64 << (12 + 9 * level)) - 1;
            let pa = ((ppn << 12) & !offset_mask) | (va & offset_mask);
            return Ok(Translation {
                pa,
                pte: pte_val,
                level: level as u8,
                steps,
                vpn: va >> 12,
            });
        }
        // Non-leaf: A/D/U must be clear.
        if pte_val & (pte::A | pte::D | pte::U) != 0 {
            return Err(access.page_fault());
        }
        if level == 0 {
            return Err(access.page_fault());
        }
        level -= 1;
        table = (pte_val >> 10 & 0xfff_ffff_ffff) << 12;
    }
}

/// Check leaf-PTE permissions for an access at effective privilege `eff`.
///
/// # Errors
///
/// Page fault when R/W/X/U/SUM/MXR rules are violated.
pub fn check_leaf_permissions(
    csr: &CsrFile,
    eff: Privilege,
    leaf: u64,
    access: AccessType,
) -> Result<(), Exception> {
    let sum = csr.mstatus & mstatus::SUM != 0;
    let mxr = csr.mstatus & mstatus::MXR != 0;
    let user_page = leaf & pte::U != 0;
    match eff {
        Privilege::User => {
            if !user_page {
                return Err(access.page_fault());
            }
        }
        Privilege::Supervisor => {
            if user_page && (access == AccessType::Fetch || !sum) {
                return Err(access.page_fault());
            }
        }
        Privilege::Machine => {}
    }
    let ok = match access {
        AccessType::Fetch => leaf & pte::X != 0,
        AccessType::Load => leaf & pte::R != 0 || (mxr && leaf & pte::X != 0),
        AccessType::Store => leaf & pte::W != 0,
    };
    if ok {
        Ok(())
    } else {
        Err(access.page_fault())
    }
}

/// Build a PTE value from a physical page number and flags (test helper
/// and page-table construction utility used by workloads).
#[inline]
pub fn make_pte(ppn: u64, flags: u64) -> u64 {
    (ppn << 10) | flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::addr;
    use crate::mem::SparseMemory;

    /// Build a single 4 KiB mapping va -> pa in a fresh page table rooted
    /// at `root`.
    fn map_page(mem: &mut SparseMemory, root: u64, va: u64, pa: u64, flags: u64) {
        let vpn2 = (va >> 30) & 0x1ff;
        let vpn1 = (va >> 21) & 0x1ff;
        let vpn0 = (va >> 12) & 0x1ff;
        let l1 = root + 0x1000;
        let l0 = root + 0x2000;
        mem.write_uint(root + vpn2 * 8, 8, make_pte(l1 >> 12, pte::V));
        mem.write_uint(l1 + vpn1 * 8, 8, make_pte(l0 >> 12, pte::V));
        mem.write_uint(l0 + vpn0 * 8, 8, make_pte(pa >> 12, flags));
    }

    fn sv39_csr(root: u64, privilege: Privilege) -> CsrFile {
        let mut c = CsrFile::new(0);
        c.write(addr::SATP, (8 << 60) | (root >> 12)).unwrap();
        c.privilege = privilege;
        c
    }

    #[test]
    fn bare_mode_is_identity() {
        let mut mem = SparseMemory::new();
        let csr = CsrFile::new(0);
        let t = translate(&mut mem, &csr, 0x1234_5678, AccessType::Load).unwrap();
        assert_eq!(t.pa, 0x1234_5678);
        assert!(t.steps.is_empty());
    }

    #[test]
    fn machine_mode_bypasses_translation() {
        let mut mem = SparseMemory::new();
        let mut csr = sv39_csr(0x8100_0000, Privilege::Machine);
        csr.privilege = Privilege::Machine;
        let t = translate(&mut mem, &csr, 0xdead_b000, AccessType::Fetch).unwrap();
        assert_eq!(t.pa, 0xdead_b000);
    }

    #[test]
    fn basic_walk_and_ad_update() {
        let mut mem = SparseMemory::new();
        let root = 0x8100_0000u64;
        map_page(
            &mut mem,
            root,
            0x4000_1000,
            0x8020_0000,
            pte::V | pte::R | pte::W | pte::U,
        );
        let csr = sv39_csr(root, Privilege::User);
        let t = translate(&mut mem, &csr, 0x4000_1abc, AccessType::Load).unwrap();
        assert_eq!(t.pa, 0x8020_0abc);
        assert_eq!(t.steps.len(), 3);
        // A bit must have been set in memory.
        let leaf_addr = t.steps.last().unwrap().pte_addr;
        assert_ne!(mem.read_uint(leaf_addr, 8) & pte::A, 0);
        assert_eq!(mem.read_uint(leaf_addr, 8) & pte::D, 0);

        // A store also sets D.
        let t = translate(&mut mem, &csr, 0x4000_1abc, AccessType::Store).unwrap();
        assert_ne!(t.pte & pte::D, 0);
        assert_ne!(mem.read_uint(leaf_addr, 8) & pte::D, 0);
    }

    #[test]
    fn invalid_pte_faults() {
        let mut mem = SparseMemory::new();
        let root = 0x8100_0000u64;
        let csr = sv39_csr(root, Privilege::Supervisor);
        // Nothing mapped: level-2 PTE is zero.
        assert_eq!(
            translate(&mut mem, &csr, 0x4000_0000, AccessType::Load),
            Err(Exception::LoadPageFault)
        );
        assert_eq!(
            translate(&mut mem, &csr, 0x4000_0000, AccessType::Fetch),
            Err(Exception::InstPageFault)
        );
        assert_eq!(
            translate(&mut mem, &csr, 0x4000_0000, AccessType::Store),
            Err(Exception::StorePageFault)
        );
    }

    #[test]
    fn non_canonical_va_faults() {
        let mut mem = SparseMemory::new();
        let csr = sv39_csr(0x8100_0000, Privilege::Supervisor);
        assert_eq!(
            translate(&mut mem, &csr, 0x0100_0000_0000_0000, AccessType::Load),
            Err(Exception::LoadPageFault)
        );
    }

    #[test]
    fn permission_enforcement() {
        let mut mem = SparseMemory::new();
        let root = 0x8100_0000u64;
        // Supervisor page, read-only, no X.
        map_page(&mut mem, root, 0x4000_0000, 0x8020_0000, pte::V | pte::R);
        let csr = sv39_csr(root, Privilege::Supervisor);
        assert!(translate(&mut mem, &csr, 0x4000_0000, AccessType::Load).is_ok());
        assert_eq!(
            translate(&mut mem, &csr, 0x4000_0000, AccessType::Store),
            Err(Exception::StorePageFault)
        );
        assert_eq!(
            translate(&mut mem, &csr, 0x4000_0000, AccessType::Fetch),
            Err(Exception::InstPageFault)
        );
        // User cannot touch supervisor pages.
        let mut ucsr = sv39_csr(root, Privilege::User);
        assert_eq!(
            translate(&mut mem, &ucsr, 0x4000_0000, AccessType::Load),
            Err(Exception::LoadPageFault)
        );
        // Supervisor cannot touch user pages without SUM.
        map_page(
            &mut mem,
            root,
            0x4000_0000,
            0x8020_0000,
            pte::V | pte::R | pte::U,
        );
        let mut scsr = sv39_csr(root, Privilege::Supervisor);
        assert_eq!(
            translate(&mut mem, &scsr, 0x4000_0000, AccessType::Load),
            Err(Exception::LoadPageFault)
        );
        scsr.mstatus |= mstatus::SUM;
        assert!(translate(&mut mem, &scsr, 0x4000_0000, AccessType::Load).is_ok());
        // MXR lets loads use X-only pages.
        map_page(&mut mem, root, 0x4000_0000, 0x8020_0000, pte::V | pte::X | pte::U);
        ucsr.mstatus &= !mstatus::MXR;
        assert_eq!(
            translate(&mut mem, &ucsr, 0x4000_0000, AccessType::Load),
            Err(Exception::LoadPageFault)
        );
        ucsr.mstatus |= mstatus::MXR;
        assert!(translate(&mut mem, &ucsr, 0x4000_0000, AccessType::Load).is_ok());
    }

    #[test]
    fn superpage_translation_and_alignment() {
        let mut mem = SparseMemory::new();
        let root = 0x8100_0000u64;
        // 2 MiB superpage at level 1: map VA 0x4000_0000 region.
        let vpn2 = (0x4000_0000u64 >> 30) & 0x1ff;
        let vpn1 = (0x4000_0000u64 >> 21) & 0x1ff;
        let l1 = root + 0x1000;
        mem.write_uint(root + vpn2 * 8, 8, make_pte(l1 >> 12, pte::V));
        mem.write_uint(
            l1 + vpn1 * 8,
            8,
            make_pte(0x8020_0000 >> 12, pte::V | pte::R | pte::W),
        );
        let csr = sv39_csr(root, Privilege::Supervisor);
        let t = translate(&mut mem, &csr, 0x4000_0000 + 0x12_3456, AccessType::Load).unwrap();
        assert_eq!(t.pa, 0x8020_0000 + 0x12_3456);
        assert_eq!(t.level, 1);
        // Misaligned superpage faults.
        mem.write_uint(
            l1 + vpn1 * 8,
            8,
            make_pte((0x8020_0000 >> 12) + 1, pte::V | pte::R),
        );
        assert_eq!(
            translate(&mut mem, &csr, 0x4000_0000, AccessType::Load),
            Err(Exception::LoadPageFault)
        );
    }

    #[test]
    fn mprv_uses_mpp_for_data() {
        let mut mem = SparseMemory::new();
        let root = 0x8100_0000u64;
        map_page(&mut mem, root, 0x4000_0000, 0x8020_0000, pte::V | pte::R | pte::W);
        let mut csr = sv39_csr(root, Privilege::Machine);
        csr.privilege = Privilege::Machine;
        // MPRV with MPP=S: data accesses translate, fetches do not.
        csr.mstatus |= mstatus::MPRV | (1 << 11);
        let t = translate(&mut mem, &csr, 0x4000_0000, AccessType::Load).unwrap();
        assert_eq!(t.pa, 0x8020_0000);
        let t = translate(&mut mem, &csr, 0x4000_0000, AccessType::Fetch).unwrap();
        assert_eq!(t.pa, 0x4000_0000);
    }
}
