//! The architectural-state container compared by DiffTest.
//!
//! [`ArchState`] is the `S_P` of the paper's formal model (§III-A): the
//! specification-defined state every implementation must expose. Both the
//! DUT (`xscore`) and the REF (`nemu`) project their internal state onto
//! this type — that projection is the `f_Pi` mapping of the paper.

use crate::csr::CsrFile;
use serde::{Deserialize, Serialize};

/// Architectural state of one hart: PC, register files, and the CSR file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchState {
    /// Program counter.
    pub pc: u64,
    /// Integer register file (`x0..x31`; `x0` is always zero).
    pub gpr: [u64; 32],
    /// Floating-point register file (raw 64-bit contents, NaN-boxed for
    /// single precision).
    pub fpr: [u64; 32],
    /// Control and status registers.
    pub csr: CsrFile,
}

impl ArchState {
    /// Create a reset state with the given boot PC and hart id.
    pub fn new(pc: u64, hartid: u64) -> Self {
        ArchState {
            pc,
            gpr: [0; 32],
            fpr: [0; 32],
            csr: CsrFile::new(hartid),
        }
    }

    /// Read an integer register (`x0` reads as zero).
    #[inline]
    pub fn read_gpr(&self, r: u8) -> u64 {
        self.gpr[r as usize]
    }

    /// Write an integer register (writes to `x0` are discarded).
    #[inline]
    pub fn write_gpr(&mut self, r: u8, v: u64) {
        if r != 0 {
            self.gpr[r as usize] = v;
        }
    }

    /// Describe the first difference against another state, if any.
    ///
    /// Counters (`mcycle`, `minstret`, `time`) are excluded — they are
    /// CSR diff-rules in the MINJIE rule table, never strict-equality
    /// checks.
    pub fn first_diff(&self, other: &ArchState) -> Option<StateDiff> {
        if self.pc != other.pc {
            return Some(StateDiff::Pc {
                lhs: self.pc,
                rhs: other.pc,
            });
        }
        for i in 0..32 {
            if self.gpr[i] != other.gpr[i] {
                return Some(StateDiff::Gpr {
                    index: i as u8,
                    lhs: self.gpr[i],
                    rhs: other.gpr[i],
                });
            }
        }
        for i in 0..32 {
            if self.fpr[i] != other.fpr[i] {
                return Some(StateDiff::Fpr {
                    index: i as u8,
                    lhs: self.fpr[i],
                    rhs: other.fpr[i],
                });
            }
        }
        let mut a = self.csr.clone();
        let mut b = other.csr.clone();
        // Neutralize free-running counters before comparing.
        a.mcycle = 0;
        b.mcycle = 0;
        a.minstret = 0;
        b.minstret = 0;
        a.time = 0;
        b.time = 0;
        if a != b {
            return Some(StateDiff::Csr);
        }
        None
    }
}

/// A mismatch between two architectural states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateDiff {
    /// Program counters differ.
    Pc {
        /// Left-hand (usually DUT) value.
        lhs: u64,
        /// Right-hand (usually REF) value.
        rhs: u64,
    },
    /// An integer register differs.
    Gpr {
        /// Register index.
        index: u8,
        /// Left-hand value.
        lhs: u64,
        /// Right-hand value.
        rhs: u64,
    },
    /// A floating-point register differs.
    Fpr {
        /// Register index.
        index: u8,
        /// Left-hand value.
        lhs: u64,
        /// Right-hand value.
        rhs: u64,
    },
    /// Some CSR differs (beyond the always-excluded counters).
    Csr,
}

impl std::fmt::Display for StateDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateDiff::Pc { lhs, rhs } => write!(f, "pc: {lhs:#x} vs {rhs:#x}"),
            StateDiff::Gpr { index, lhs, rhs } => {
                write!(f, "x{index}: {lhs:#x} vs {rhs:#x}")
            }
            StateDiff::Fpr { index, lhs, rhs } => {
                write!(f, "f{index}: {lhs:#x} vs {rhs:#x}")
            }
            StateDiff::Csr => write!(f, "csr state differs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired() {
        let mut s = ArchState::new(0x8000_0000, 0);
        s.write_gpr(0, 42);
        assert_eq!(s.read_gpr(0), 0);
        s.write_gpr(1, 42);
        assert_eq!(s.read_gpr(1), 42);
    }

    #[test]
    fn diff_detects_each_field() {
        let base = ArchState::new(0x80, 0);
        let mut other = base.clone();
        assert_eq!(base.first_diff(&other), None);

        other.pc = 0x84;
        assert!(matches!(base.first_diff(&other), Some(StateDiff::Pc { .. })));

        let mut other = base.clone();
        other.gpr[5] = 1;
        assert!(matches!(
            base.first_diff(&other),
            Some(StateDiff::Gpr { index: 5, .. })
        ));

        let mut other = base.clone();
        other.fpr[3] = 1;
        assert!(matches!(
            base.first_diff(&other),
            Some(StateDiff::Fpr { index: 3, .. })
        ));

        let mut other = base.clone();
        other.csr.mscratch = 7;
        assert_eq!(base.first_diff(&other), Some(StateDiff::Csr));
    }

    #[test]
    fn counters_are_not_compared() {
        let base = ArchState::new(0x80, 0);
        let mut other = base.clone();
        other.csr.mcycle = 999;
        other.csr.minstret = 42;
        other.csr.time = 7;
        assert_eq!(base.first_diff(&other), None);
    }
}
