//! Exact-rounding software floating point (round-to-nearest-even).
//!
//! This module plays the role Berkeley SoftFloat plays for Spike: a
//! bit-exact, integer-only implementation of IEEE-754 add/sub/mul/FMA for
//! single and double precision. The Spike-like baseline interpreter in the
//! `nemu` crate routes its FP arithmetic through here, which is what makes
//! it measurably slower on SPECfp-like kernels than NEMU's host-FP fast
//! path — reproducing the Fig. 8 performance gap for the same underlying
//! reason as the paper.
//!
//! Only round-to-nearest-even is implemented (the mode every workload in
//! this repository uses). Results are NaN-canonicalized like the rest of
//! the workspace. Exception flags are approximate in the underflow corner
//! (tininess detection), but result *bits* are exact and are
//! property-tested against host IEEE arithmetic.

/// Result of a softfloat operation: raw IEEE bits plus fflags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfResult<B> {
    /// IEEE-754 encoded result.
    pub bits: B,
    /// Exception flags raised.
    pub flags: u64,
}

macro_rules! softfloat_impl {
    ($mod_name:ident, $B:ty, $EXP_BITS:expr, $FRAC:expr, $canon_nan:expr) => {
        /// Format-specific softfloat kernels.
        pub mod $mod_name {
            use super::SfResult;
            use crate::fpu::flags;

            const EXP_BITS: i32 = $EXP_BITS;
            const FRAC: i32 = $FRAC;
            const BIAS: i32 = (1 << (EXP_BITS - 1)) - 1;
            const EXP_MAX: i32 = (1 << EXP_BITS) - 1;
            const SIGN_BIT: $B = 1 << (EXP_BITS + FRAC);
            const FRAC_MASK: $B = (1 << FRAC) - 1;
            const CANON_NAN: $B = $canon_nan;

            #[derive(Debug, Clone, Copy)]
            enum Num {
                Nan { signaling: bool },
                Inf { sign: bool },
                Zero { sign: bool },
                Fin { sign: bool, sig: u128, e: i32 },
            }

            fn unpack(bits: $B) -> Num {
                let sign = bits & SIGN_BIT != 0;
                let exp = ((bits >> FRAC) as i32) & (EXP_MAX);
                let frac = bits & FRAC_MASK;
                if exp == EXP_MAX {
                    if frac == 0 {
                        Num::Inf { sign }
                    } else {
                        Num::Nan {
                            signaling: frac & (1 << (FRAC - 1)) == 0,
                        }
                    }
                } else if exp == 0 {
                    if frac == 0 {
                        Num::Zero { sign }
                    } else {
                        Num::Fin {
                            sign,
                            sig: frac as u128,
                            e: 1 - BIAS - FRAC,
                        }
                    }
                } else {
                    Num::Fin {
                        sign,
                        sig: (frac | (1 << FRAC)) as u128,
                        e: exp - BIAS - FRAC,
                    }
                }
            }

            #[inline]
            fn pack(sign: bool, biased: $B, frac: $B) -> $B {
                (if sign { SIGN_BIT } else { 0 }) | (biased << FRAC) | (frac & FRAC_MASK)
            }

            #[inline]
            fn inf(sign: bool) -> $B {
                pack(sign, EXP_MAX as $B, 0)
            }

            #[inline]
            fn zero(sign: bool) -> $B {
                pack(sign, 0, 0)
            }

            #[inline]
            fn hb(sig: u128) -> i32 {
                127 - sig.leading_zeros() as i32
            }

            /// Shift right, ORing any lost bits into the LSB ("jamming").
            #[inline]
            fn shift_right_jam(sig: u128, n: i32) -> u128 {
                if n <= 0 {
                    sig
                } else if n >= 128 {
                    (sig != 0) as u128
                } else {
                    let lost = sig & ((1u128 << n) - 1);
                    (sig >> n) | (lost != 0) as u128
                }
            }

            /// Round a positive exact value `sig * 2^e` to nearest-even.
            fn round_pack(sign: bool, sig: u128, e: i32) -> SfResult<$B> {
                debug_assert!(sig != 0);
                let msb = hb(sig);
                let mut biased = e + msb + BIAS;
                let mut drop = msb - FRAC;
                let mut subnormal = false;
                if biased < 1 {
                    drop += 1 - biased;
                    subnormal = true;
                }
                let (kept, round, sticky) = if drop <= 0 {
                    (sig << (-drop) as u32, false, false)
                } else if drop >= 128 {
                    (0, false, sig != 0)
                } else {
                    let kept = sig >> drop;
                    let round = (sig >> (drop - 1)) & 1 == 1;
                    let smask = (1u128 << (drop - 1)) - 1;
                    (kept, round, sig & smask != 0)
                };
                let mut frac_full = kept as $B;
                let mut fl = 0u64;
                if round || sticky {
                    fl |= flags::NX;
                }
                if round && (sticky || frac_full & 1 == 1) {
                    frac_full += 1;
                }
                if subnormal {
                    if round || sticky {
                        fl |= flags::UF;
                    }
                    if frac_full >> FRAC == 1 {
                        // Rounded up into the minimum normal.
                        return SfResult {
                            bits: pack(sign, 1, frac_full),
                            flags: fl,
                        };
                    }
                    return SfResult {
                        bits: pack(sign, 0, frac_full),
                        flags: fl,
                    };
                }
                if frac_full >> (FRAC + 1) == 1 {
                    frac_full >>= 1;
                    biased += 1;
                }
                if biased >= EXP_MAX {
                    return SfResult {
                        bits: inf(sign),
                        flags: fl | flags::OF | flags::NX,
                    };
                }
                SfResult {
                    bits: pack(sign, biased as $B, frac_full),
                    flags: fl,
                }
            }

            /// Add two finite nonzero values exactly, then round.
            fn add_fin(
                sa: bool,
                siga: u128,
                ea: i32,
                sb: bool,
                sigb: u128,
                eb: i32,
            ) -> SfResult<$B> {
                // Normalize the larger-valued operand to a high bit
                // position so right shifts of the other lose only
                // sticky-relevant bits.
                let (xs, mut xsig, mut xe, ys, mut ysig, ye) =
                    if ea + hb(siga) >= eb + hb(sigb) {
                        (sa, siga, ea, sb, sigb, eb)
                    } else {
                        (sb, sigb, eb, sa, siga, ea)
                    };
                let up = 110 - hb(xsig);
                xsig <<= up as u32;
                xe -= up;
                let d = xe - ye; // >= 0 by construction ... up to rounding
                if d >= 0 {
                    ysig = shift_right_jam(ysig, d);
                } else {
                    ysig <<= (-d) as u32;
                }
                if xs == ys {
                    round_pack(xs, xsig + ysig, xe)
                } else if xsig > ysig {
                    round_pack(xs, xsig - ysig, xe)
                } else if xsig < ysig {
                    round_pack(ys, ysig - xsig, xe)
                } else {
                    // Exact cancellation: +0 under round-to-nearest.
                    SfResult {
                        bits: zero(false),
                        flags: 0,
                    }
                }
            }

            /// IEEE add with round-to-nearest-even.
            pub fn add(a: $B, b: $B) -> SfResult<$B> {
                let (na, nb) = (unpack(a), unpack(b));
                match (na, nb) {
                    (Num::Nan { signaling }, _) | (_, Num::Nan { signaling }) => {
                        let other_snan = matches!(na, Num::Nan { signaling: true })
                            || matches!(nb, Num::Nan { signaling: true });
                        SfResult {
                            bits: CANON_NAN,
                            flags: if signaling || other_snan { flags::NV } else { 0 },
                        }
                    }
                    (Num::Inf { sign: s1 }, Num::Inf { sign: s2 }) => {
                        if s1 != s2 {
                            SfResult {
                                bits: CANON_NAN,
                                flags: flags::NV,
                            }
                        } else {
                            SfResult {
                                bits: inf(s1),
                                flags: 0,
                            }
                        }
                    }
                    (Num::Inf { sign }, _) | (_, Num::Inf { sign }) => SfResult {
                        bits: inf(sign),
                        flags: 0,
                    },
                    (Num::Zero { sign: s1 }, Num::Zero { sign: s2 }) => SfResult {
                        bits: zero(s1 && s2),
                        flags: 0,
                    },
                    (Num::Zero { .. }, _) => SfResult { bits: b, flags: 0 },
                    (_, Num::Zero { .. }) => SfResult { bits: a, flags: 0 },
                    (
                        Num::Fin {
                            sign: sa,
                            sig: siga,
                            e: ea,
                        },
                        Num::Fin {
                            sign: sb,
                            sig: sigb,
                            e: eb,
                        },
                    ) => add_fin(sa, siga, ea, sb, sigb, eb),
                }
            }

            /// IEEE subtract (`a - b`).
            pub fn sub(a: $B, b: $B) -> SfResult<$B> {
                add(a, b ^ SIGN_BIT)
            }

            /// IEEE multiply with round-to-nearest-even.
            pub fn mul(a: $B, b: $B) -> SfResult<$B> {
                let (na, nb) = (unpack(a), unpack(b));
                let sign = (a ^ b) & SIGN_BIT != 0;
                match (na, nb) {
                    (Num::Nan { signaling }, _) | (_, Num::Nan { signaling }) => {
                        let other_snan = matches!(na, Num::Nan { signaling: true })
                            || matches!(nb, Num::Nan { signaling: true });
                        SfResult {
                            bits: CANON_NAN,
                            flags: if signaling || other_snan { flags::NV } else { 0 },
                        }
                    }
                    (Num::Inf { .. }, Num::Zero { .. }) | (Num::Zero { .. }, Num::Inf { .. }) => {
                        SfResult {
                            bits: CANON_NAN,
                            flags: flags::NV,
                        }
                    }
                    (Num::Inf { .. }, _) | (_, Num::Inf { .. }) => SfResult {
                        bits: inf(sign),
                        flags: 0,
                    },
                    (Num::Zero { .. }, _) | (_, Num::Zero { .. }) => SfResult {
                        bits: zero(sign),
                        flags: 0,
                    },
                    (
                        Num::Fin { sig: siga, e: ea, .. },
                        Num::Fin { sig: sigb, e: eb, .. },
                    ) => round_pack(sign, siga * sigb, ea + eb),
                }
            }

            /// IEEE fused multiply-add (`a * b + c`) with a single rounding.
            pub fn fma(a: $B, b: $B, c: $B) -> SfResult<$B> {
                let (na, nb, nc) = (unpack(a), unpack(b), unpack(c));
                let psign = (a ^ b) & SIGN_BIT != 0;
                let any_snan = matches!(na, Num::Nan { signaling: true })
                    || matches!(nb, Num::Nan { signaling: true })
                    || matches!(nc, Num::Nan { signaling: true });
                // inf * 0 is invalid even with a NaN addend (RISC-V spec).
                let inf_times_zero = matches!(
                    (na, nb),
                    (Num::Inf { .. }, Num::Zero { .. }) | (Num::Zero { .. }, Num::Inf { .. })
                );
                if matches!(na, Num::Nan { .. })
                    || matches!(nb, Num::Nan { .. })
                    || matches!(nc, Num::Nan { .. })
                {
                    return SfResult {
                        bits: CANON_NAN,
                        flags: if any_snan || inf_times_zero {
                            flags::NV
                        } else {
                            0
                        },
                    };
                }
                if inf_times_zero {
                    return SfResult {
                        bits: CANON_NAN,
                        flags: flags::NV,
                    };
                }
                let prod_inf = matches!(na, Num::Inf { .. }) || matches!(nb, Num::Inf { .. });
                if prod_inf {
                    return match nc {
                        Num::Inf { sign } if sign != psign => SfResult {
                            bits: CANON_NAN,
                            flags: flags::NV,
                        },
                        _ => SfResult {
                            bits: inf(psign),
                            flags: 0,
                        },
                    };
                }
                if let Num::Inf { sign } = nc {
                    return SfResult {
                        bits: inf(sign),
                        flags: 0,
                    };
                }
                // Product is finite or zero from here on.
                match (na, nb, nc) {
                    (Num::Zero { .. }, _, Num::Zero { sign: sc })
                    | (_, Num::Zero { .. }, Num::Zero { sign: sc }) => {
                        // 0*x + 0: sign by effective addition of zeros.
                        SfResult {
                            bits: zero(psign && sc),
                            flags: 0,
                        }
                    }
                    (Num::Zero { .. }, _, _) | (_, Num::Zero { .. }, _) => {
                        SfResult { bits: c, flags: 0 }
                    }
                    (
                        Num::Fin { sig: siga, e: ea, .. },
                        Num::Fin { sig: sigb, e: eb, .. },
                        Num::Zero { .. },
                    ) => round_pack(psign, siga * sigb, ea + eb),
                    (
                        Num::Fin { sig: siga, e: ea, .. },
                        Num::Fin { sig: sigb, e: eb, .. },
                        Num::Fin {
                            sign: sc,
                            sig: sigc,
                            e: ec,
                        },
                    ) => add_fin(psign, siga * sigb, ea + eb, sc, sigc, ec),
                    _ => unreachable!("all special cases handled above"),
                }
            }
        }
    };
}

softfloat_impl!(f64sf, u64, 11, 52, 0x7ff8_0000_0000_0000);
softfloat_impl!(f32sf, u32, 8, 23, 0x7fc0_0000);

/// Double-precision add (see [`f64sf::add`]).
pub fn add64(a: u64, b: u64) -> SfResult<u64> {
    f64sf::add(a, b)
}
/// Double-precision subtract.
pub fn sub64(a: u64, b: u64) -> SfResult<u64> {
    f64sf::sub(a, b)
}
/// Double-precision multiply.
pub fn mul64(a: u64, b: u64) -> SfResult<u64> {
    f64sf::mul(a, b)
}
/// Double-precision fused multiply-add.
pub fn fma64(a: u64, b: u64, c: u64) -> SfResult<u64> {
    f64sf::fma(a, b, c)
}
/// Single-precision add.
pub fn add32(a: u32, b: u32) -> SfResult<u32> {
    f32sf::add(a, b)
}
/// Single-precision subtract.
pub fn sub32(a: u32, b: u32) -> SfResult<u32> {
    f32sf::sub(a, b)
}
/// Single-precision multiply.
pub fn mul32(a: u32, b: u32) -> SfResult<u32> {
    f32sf::mul(a, b)
}
/// Single-precision fused multiply-add.
pub fn fma32(a: u32, b: u32, c: u32) -> SfResult<u32> {
    f32sf::fma(a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpu::flags;

    fn host_eq64(op: &str, a: f64, b: f64, c: f64) {
        let (got, want) = match op {
            "add" => (add64(a.to_bits(), b.to_bits()).bits, a + b),
            "sub" => (sub64(a.to_bits(), b.to_bits()).bits, a - b),
            "mul" => (mul64(a.to_bits(), b.to_bits()).bits, a * b),
            "fma" => (fma64(a.to_bits(), b.to_bits(), c.to_bits()).bits, a.mul_add(b, c)),
            _ => unreachable!(),
        };
        let want_bits = if want.is_nan() {
            0x7ff8_0000_0000_0000
        } else {
            want.to_bits()
        };
        assert_eq!(
            got, want_bits,
            "{op}({a:e}, {b:e}, {c:e}): got {got:#018x} want {want_bits:#018x}"
        );
    }

    #[test]
    fn add_matches_host() {
        let cases: [(f64, f64); 12] = [
            (1.5, 2.25),
            (1.0, 1e-30),
            (1e300, 1e300),
            (-1.0, 1.0),
            (1.0, -1.0 + 2e-16),
            (0.1, 0.2),
            (1e-320, 1e-320),
            (f64::MIN_POSITIVE, -f64::MIN_POSITIVE / 2.0),
            (3.0, -3.0000000000000004),
            (1e308, 1e308),
            (-0.0, 0.0),
            (5e-324, 5e-324),
        ];
        for (a, b) in cases {
            host_eq64("add", a, b, 0.0);
            host_eq64("sub", a, b, 0.0);
        }
    }

    #[test]
    fn mul_matches_host() {
        let cases: [(f64, f64); 10] = [
            (1.5, 2.25),
            (0.1, 0.3),
            (1e200, 1e200),
            (1e-200, 1e-200),
            (-3.7, 9.1),
            (5e-324, 0.5),
            (f64::MAX, 1.0000000001),
            (1e-310, 1e3),
            (2.0, 0.5),
            (1.0 + f64::EPSILON, 1.0 + f64::EPSILON),
        ];
        for (a, b) in cases {
            host_eq64("mul", a, b, 0.0);
        }
    }

    #[test]
    fn fma_matches_host() {
        let cases: [(f64, f64, f64); 10] = [
            (2.0, 3.0, 1.0),
            (0.1, 0.2, 0.3),
            (1e200, 1e200, -1e300),
            (1.0 + f64::EPSILON, 1.0 - f64::EPSILON, -1.0),
            (1e-300, 1e-300, 1e300),
            (1e-300, 1e-300, 0.0),
            (-2.5, 4.0, 10.0),
            (3.0, -3.0, 9.0),
            (1e16, 1e-16, -1.0),
            (5e-324, 1.0, 5e-324),
        ];
        for (a, b, c) in cases {
            host_eq64("fma", a, b, c);
        }
    }

    #[test]
    fn special_values() {
        let inf = f64::INFINITY.to_bits();
        let ninf = f64::NEG_INFINITY.to_bits();
        let nan = f64::NAN.to_bits();
        // inf - inf is invalid.
        let r = add64(inf, ninf);
        assert_eq!(r.bits, 0x7ff8_0000_0000_0000);
        assert_eq!(r.flags, crate::fpu::flags::NV);
        // inf + finite = inf.
        assert_eq!(add64(inf, 1.0f64.to_bits()).bits, inf);
        // 0 * inf is invalid.
        let r = mul64(0, inf);
        assert_eq!(r.flags, crate::fpu::flags::NV);
        // NaN propagates canonically.
        assert_eq!(add64(nan | 0xdead, 1.0f64.to_bits()).bits, 0x7ff8_0000_0000_0000);
        // fma: inf*0 + qNaN raises NV per the RISC-V spec.
        let r = fma64(inf, 0, nan);
        assert_eq!(r.flags, crate::fpu::flags::NV);
        // -0 + -0 = -0; -0 + +0 = +0.
        let nz = (-0.0f64).to_bits();
        assert_eq!(add64(nz, nz).bits, nz);
        assert_eq!(add64(nz, 0).bits, 0);
        // Exact cancellation gives +0.
        assert_eq!(sub64(1.5f64.to_bits(), 1.5f64.to_bits()).bits, 0);
    }

    #[test]
    fn overflow_and_flags() {
        let r = add64(f64::MAX.to_bits(), f64::MAX.to_bits());
        assert_eq!(r.bits, f64::INFINITY.to_bits());
        assert_ne!(r.flags & flags::OF, 0);
        assert_ne!(r.flags & flags::NX, 0);
        let r = add64(1.0f64.to_bits(), 1e-30f64.to_bits());
        assert_ne!(r.flags & flags::NX, 0);
        let r = add64(1.0f64.to_bits(), 1.0f64.to_bits());
        assert_eq!(r.flags, 0);
    }

    #[test]
    fn f32_matches_host() {
        let cases: [(f32, f32); 8] = [
            (1.5, 2.25),
            (0.1, 0.2),
            (1e38, 1e38),
            (1e-38, 1e-38),
            (-1.0, 1.0 + f32::EPSILON),
            (f32::MIN_POSITIVE, -f32::MIN_POSITIVE / 2.0),
            (3.4e38, 1.0),
            (1e-44, 1e-44),
        ];
        for (a, b) in cases {
            let got = add32(a.to_bits(), b.to_bits()).bits;
            assert_eq!(got, (a + b).to_bits(), "add32({a:e},{b:e})");
            let got = mul32(a.to_bits(), b.to_bits()).bits;
            let want = a * b;
            let want = if want.is_nan() { 0x7fc0_0000 } else { want.to_bits() };
            assert_eq!(got, want, "mul32({a:e},{b:e})");
        }
        let got = fma32(0.1f32.to_bits(), 0.2f32.to_bits(), 0.3f32.to_bits()).bits;
        assert_eq!(got, 0.1f32.mul_add(0.2, 0.3).to_bits());
    }

    #[test]
    fn subnormal_results() {
        // Two large subnormals adding to a normal.
        let a = f64::MIN_POSITIVE / 2.0;
        host_eq64("add", a, a, 0.0);
        // Subnormal x normal producing subnormal.
        host_eq64("mul", 1e-310, 0.37, 0.0);
        // Smallest subnormal halved rounds to even (zero).
        let tiny = f64::from_bits(1);
        host_eq64("mul", tiny, 0.5, 0.0);
        host_eq64("mul", f64::from_bits(3), 0.5, 0.0);
    }
}
