//! Trap causes: synchronous exceptions and asynchronous interrupts.

use serde::{Deserialize, Serialize};

/// Synchronous exception causes (RISC-V privileged spec, mcause codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u64)]
#[allow(missing_docs)]
pub enum Exception {
    InstAddrMisaligned = 0,
    InstAccessFault = 1,
    IllegalInstruction = 2,
    Breakpoint = 3,
    LoadAddrMisaligned = 4,
    LoadAccessFault = 5,
    StoreAddrMisaligned = 6,
    StoreAccessFault = 7,
    EcallFromU = 8,
    EcallFromS = 9,
    EcallFromM = 11,
    InstPageFault = 12,
    LoadPageFault = 13,
    StorePageFault = 15,
}

impl Exception {
    /// The mcause/scause code for this exception.
    #[inline]
    pub fn code(self) -> u64 {
        self as u64
    }

    /// True for the three page-fault causes — the exception family the
    /// paper's speculative-TLB diff-rule (Fig. 3) is about.
    #[inline]
    pub fn is_page_fault(self) -> bool {
        matches!(
            self,
            Exception::InstPageFault | Exception::LoadPageFault | Exception::StorePageFault
        )
    }

    /// Reconstruct from an mcause code.
    pub fn from_code(code: u64) -> Option<Self> {
        use Exception::*;
        Some(match code {
            0 => InstAddrMisaligned,
            1 => InstAccessFault,
            2 => IllegalInstruction,
            3 => Breakpoint,
            4 => LoadAddrMisaligned,
            5 => LoadAccessFault,
            6 => StoreAddrMisaligned,
            7 => StoreAccessFault,
            8 => EcallFromU,
            9 => EcallFromS,
            11 => EcallFromM,
            12 => InstPageFault,
            13 => LoadPageFault,
            15 => StorePageFault,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Exception {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Exception::InstAddrMisaligned => "instruction address misaligned",
            Exception::InstAccessFault => "instruction access fault",
            Exception::IllegalInstruction => "illegal instruction",
            Exception::Breakpoint => "breakpoint",
            Exception::LoadAddrMisaligned => "load address misaligned",
            Exception::LoadAccessFault => "load access fault",
            Exception::StoreAddrMisaligned => "store/AMO address misaligned",
            Exception::StoreAccessFault => "store/AMO access fault",
            Exception::EcallFromU => "environment call from U-mode",
            Exception::EcallFromS => "environment call from S-mode",
            Exception::EcallFromM => "environment call from M-mode",
            Exception::InstPageFault => "instruction page fault",
            Exception::LoadPageFault => "load page fault",
            Exception::StorePageFault => "store/AMO page fault",
        };
        f.write_str(s)
    }
}

impl std::error::Error for Exception {}

/// Asynchronous interrupt causes (code without the interrupt bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u64)]
#[allow(missing_docs)]
pub enum Interrupt {
    SupervisorSoftware = 1,
    MachineSoftware = 3,
    SupervisorTimer = 5,
    MachineTimer = 7,
    SupervisorExternal = 9,
    MachineExternal = 11,
}

impl Interrupt {
    /// The interrupt code (low bits of mcause; the top bit is set
    /// separately when written to mcause).
    #[inline]
    pub fn code(self) -> u64 {
        self as u64
    }

    /// The mcause value with the interrupt bit set.
    #[inline]
    pub fn cause(self) -> u64 {
        (1 << 63) | self.code()
    }
}

/// A trap cause: either exception or interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trap {
    /// A synchronous exception with its tval.
    Exception(Exception, u64),
    /// An asynchronous interrupt.
    Interrupt(Interrupt),
}

impl Trap {
    /// The value to be written to mcause/scause.
    pub fn cause(&self) -> u64 {
        match self {
            Trap::Exception(e, _) => e.code(),
            Trap::Interrupt(i) => i.cause(),
        }
    }

    /// The value to be written to mtval/stval.
    pub fn tval(&self) -> u64 {
        match self {
            Trap::Exception(_, tval) => *tval,
            Trap::Interrupt(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exception_codes_match_spec() {
        assert_eq!(Exception::IllegalInstruction.code(), 2);
        assert_eq!(Exception::EcallFromU.code(), 8);
        assert_eq!(Exception::StorePageFault.code(), 15);
        for code in [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15] {
            assert_eq!(Exception::from_code(code).unwrap().code(), code);
        }
        assert_eq!(Exception::from_code(10), None);
        assert_eq!(Exception::from_code(14), None);
    }

    #[test]
    fn page_fault_family() {
        assert!(Exception::LoadPageFault.is_page_fault());
        assert!(!Exception::LoadAccessFault.is_page_fault());
    }

    #[test]
    fn interrupt_cause_has_top_bit() {
        assert_eq!(Interrupt::MachineTimer.cause(), (1 << 63) | 7);
        assert_eq!(
            Trap::Interrupt(Interrupt::SupervisorExternal).cause(),
            (1 << 63) | 9
        );
        assert_eq!(Trap::Exception(Exception::Breakpoint, 0x10).tval(), 0x10);
    }
}
