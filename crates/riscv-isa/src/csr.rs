//! Control and status registers, privilege levels, and trap entry/return.
//!
//! [`CsrFile`] implements the machine- and supervisor-mode CSR subset
//! needed to boot bare-metal and OS-like workloads, with WARL masking as
//! specified. The DiffTest CSR diff-rule table in the `minjie` crate is
//! generated from the same field masks defined here.

use crate::trap::{Exception, Interrupt, Trap};
use serde::{Deserialize, Serialize};

/// Privilege levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Privilege {
    /// User mode (0).
    User = 0,
    /// Supervisor mode (1).
    Supervisor = 1,
    /// Machine mode (3).
    Machine = 3,
}

impl Privilege {
    /// Construct from the 2-bit encoding; 2 (hypervisor) maps to `None`.
    pub fn from_bits(bits: u64) -> Option<Privilege> {
        match bits & 3 {
            0 => Some(Privilege::User),
            1 => Some(Privilege::Supervisor),
            3 => Some(Privilege::Machine),
            _ => None,
        }
    }
}

/// CSR addresses used throughout the workspace.
#[allow(missing_docs)]
pub mod addr {
    pub const FFLAGS: u16 = 0x001;
    pub const FRM: u16 = 0x002;
    pub const FCSR: u16 = 0x003;
    pub const CYCLE: u16 = 0xc00;
    pub const TIME: u16 = 0xc01;
    pub const INSTRET: u16 = 0xc02;
    pub const SSTATUS: u16 = 0x100;
    pub const SIE: u16 = 0x104;
    pub const STVEC: u16 = 0x105;
    pub const SCOUNTEREN: u16 = 0x106;
    pub const SSCRATCH: u16 = 0x140;
    pub const SEPC: u16 = 0x141;
    pub const SCAUSE: u16 = 0x142;
    pub const STVAL: u16 = 0x143;
    pub const SIP: u16 = 0x144;
    pub const SATP: u16 = 0x180;
    pub const MVENDORID: u16 = 0xf11;
    pub const MARCHID: u16 = 0xf12;
    pub const MIMPID: u16 = 0xf13;
    pub const MHARTID: u16 = 0xf14;
    pub const MSTATUS: u16 = 0x300;
    pub const MISA: u16 = 0x301;
    pub const MEDELEG: u16 = 0x302;
    pub const MIDELEG: u16 = 0x303;
    pub const MIE: u16 = 0x304;
    pub const MTVEC: u16 = 0x305;
    pub const MCOUNTEREN: u16 = 0x306;
    pub const MSCRATCH: u16 = 0x340;
    pub const MEPC: u16 = 0x341;
    pub const MCAUSE: u16 = 0x342;
    pub const MTVAL: u16 = 0x343;
    pub const MIP: u16 = 0x344;
    pub const PMPCFG0: u16 = 0x3a0;
    pub const PMPADDR0: u16 = 0x3b0;
    pub const MCYCLE: u16 = 0xb00;
    pub const MINSTRET: u16 = 0xb02;
}

/// mstatus field masks.
#[allow(missing_docs)]
pub mod mstatus {
    pub const SIE: u64 = 1 << 1;
    pub const MIE: u64 = 1 << 3;
    pub const SPIE: u64 = 1 << 5;
    pub const MPIE: u64 = 1 << 7;
    pub const SPP: u64 = 1 << 8;
    pub const MPP: u64 = 0b11 << 11;
    pub const FS: u64 = 0b11 << 13;
    pub const XS: u64 = 0b11 << 15;
    pub const MPRV: u64 = 1 << 17;
    pub const SUM: u64 = 1 << 18;
    pub const MXR: u64 = 1 << 19;
    pub const TVM: u64 = 1 << 20;
    pub const TW: u64 = 1 << 21;
    pub const TSR: u64 = 1 << 22;
    pub const UXL: u64 = 0b11 << 32;
    pub const SXL: u64 = 0b11 << 34;
    pub const SD: u64 = 1 << 63;

    /// Bits writable through the mstatus CSR.
    pub const WRITE_MASK: u64 =
        SIE | MIE | SPIE | MPIE | SPP | MPP | FS | MPRV | SUM | MXR | TVM | TW | TSR;
    /// The sstatus view of mstatus.
    pub const SSTATUS_MASK: u64 = SIE | SPIE | SPP | FS | XS | SUM | MXR | UXL | SD;
}

/// The CSR file of one hart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrFile {
    /// Current privilege level.
    pub privilege: Privilege,
    /// Machine status register (sstatus is a masked view of it).
    pub mstatus: u64,
    /// Machine exception delegation.
    pub medeleg: u64,
    /// Machine interrupt delegation.
    pub mideleg: u64,
    /// Machine interrupt enable.
    pub mie: u64,
    /// Machine interrupt pending.
    pub mip: u64,
    /// Machine trap vector.
    pub mtvec: u64,
    /// Machine counter enable.
    pub mcounteren: u64,
    /// Machine scratch.
    pub mscratch: u64,
    /// Machine exception PC.
    pub mepc: u64,
    /// Machine trap cause.
    pub mcause: u64,
    /// Machine trap value.
    pub mtval: u64,
    /// Cycle counter.
    pub mcycle: u64,
    /// Retired-instruction counter.
    pub minstret: u64,
    /// Supervisor trap vector.
    pub stvec: u64,
    /// Supervisor counter enable.
    pub scounteren: u64,
    /// Supervisor scratch.
    pub sscratch: u64,
    /// Supervisor exception PC.
    pub sepc: u64,
    /// Supervisor trap cause.
    pub scause: u64,
    /// Supervisor trap value.
    pub stval: u64,
    /// Supervisor address translation and protection.
    pub satp: u64,
    /// Floating-point CSR (frm in bits 7:5, fflags in bits 4:0).
    pub fcsr: u64,
    /// Hart id.
    pub mhartid: u64,
    /// Wall-clock time source (read through the `time` CSR).
    pub time: u64,
}

impl Default for CsrFile {
    fn default() -> Self {
        Self::new(0)
    }
}

/// misa value: RV64 with IMAFDC + S + U.
pub const MISA_RV64GCSU: u64 = (2 << 62) // MXL = 64
    | (1 << 0)  // A
    | (1 << 2)  // C
    | (1 << 3)  // D
    | (1 << 5)  // F
    | (1 << 8)  // I
    | (1 << 12) // M
    | (1 << 18) // S
    | (1 << 20); // U

impl CsrFile {
    /// Create a reset-state CSR file for hart `hartid`.
    ///
    /// The hart resets into machine mode with floating point enabled
    /// (`mstatus.FS = dirty`) so that bare-metal workloads can use the FPU
    /// without an enabling stub.
    pub fn new(hartid: u64) -> Self {
        CsrFile {
            privilege: Privilege::Machine,
            mstatus: mstatus::FS | (2 << 32) | (2 << 34), // FS=initial-dirty is set below
            medeleg: 0,
            mideleg: 0,
            mie: 0,
            mip: 0,
            mtvec: 0,
            mcounteren: 0,
            mscratch: 0,
            mepc: 0,
            mcause: 0,
            mtval: 0,
            mcycle: 0,
            minstret: 0,
            stvec: 0,
            scounteren: 0,
            sscratch: 0,
            sepc: 0,
            scause: 0,
            stval: 0,
            satp: 0,
            fcsr: 0,
            mhartid: hartid,
            time: 0,
        }
    }

    #[inline]
    fn mstatus_read(&self) -> u64 {
        let mut v = self.mstatus;
        // SD summarizes FS/XS dirtiness.
        if (v & mstatus::FS) == mstatus::FS || (v & mstatus::XS) == mstatus::XS {
            v |= mstatus::SD;
        }
        v
    }

    /// Read a CSR, checking privilege.
    ///
    /// # Errors
    ///
    /// Returns [`Exception::IllegalInstruction`] for unknown CSRs or
    /// insufficient privilege.
    pub fn read(&self, csr: u16) -> Result<u64, Exception> {
        self.check_privilege(csr)?;
        use addr::*;
        Ok(match csr {
            FFLAGS => self.fcsr & 0x1f,
            FRM => (self.fcsr >> 5) & 0x7,
            FCSR => self.fcsr & 0xff,
            CYCLE => self.counter_read(0)?,
            TIME => self.counter_read(1)?,
            INSTRET => self.counter_read(2)?,
            SSTATUS => self.mstatus_read() & mstatus::SSTATUS_MASK,
            SIE => self.mie & self.mideleg,
            STVEC => self.stvec,
            SCOUNTEREN => self.scounteren,
            SSCRATCH => self.sscratch,
            SEPC => self.sepc,
            SCAUSE => self.scause,
            STVAL => self.stval,
            SIP => self.mip & self.mideleg,
            SATP => {
                if self.privilege == Privilege::Supervisor
                    && self.mstatus & mstatus::TVM != 0
                {
                    return Err(Exception::IllegalInstruction);
                }
                self.satp
            }
            MVENDORID => 0,
            MARCHID => 25, // XiangShan's registered open-source marchid
            MIMPID => 0,
            MHARTID => self.mhartid,
            MSTATUS => self.mstatus_read(),
            MISA => MISA_RV64GCSU,
            MEDELEG => self.medeleg,
            MIDELEG => self.mideleg,
            MIE => self.mie,
            MTVEC => self.mtvec,
            MCOUNTEREN => self.mcounteren,
            MSCRATCH => self.mscratch,
            MEPC => self.mepc,
            MCAUSE => self.mcause,
            MTVAL => self.mtval,
            MIP => self.mip,
            MCYCLE => self.mcycle,
            MINSTRET => self.minstret,
            // PMP registers read as zero (no PMP implemented).
            c if (PMPCFG0..PMPCFG0 + 16).contains(&c) => 0,
            c if (PMPADDR0..PMPADDR0 + 64).contains(&c) => 0,
            // Unimplemented hardware performance counters read as zero.
            c if (0xb03..=0xb1f).contains(&c) => 0,
            c if (0xc03..=0xc1f).contains(&c) => 0,
            c if (0x323..=0x33f).contains(&c) => 0, // mhpmevent
            _ => return Err(Exception::IllegalInstruction),
        })
    }

    /// Write a CSR, applying WARL masks and checking privilege.
    ///
    /// # Errors
    ///
    /// Returns [`Exception::IllegalInstruction`] for unknown or read-only
    /// CSRs, or insufficient privilege.
    pub fn write(&mut self, csr: u16, value: u64) -> Result<(), Exception> {
        self.check_privilege(csr)?;
        if csr >> 10 == 0b11 {
            return Err(Exception::IllegalInstruction); // read-only region
        }
        use addr::*;
        match csr {
            FFLAGS => self.fcsr = (self.fcsr & !0x1f) | (value & 0x1f),
            FRM => self.fcsr = (self.fcsr & !0xe0) | ((value & 0x7) << 5),
            FCSR => self.fcsr = value & 0xff,
            SSTATUS => {
                let mask = mstatus::SSTATUS_MASK & mstatus::WRITE_MASK;
                self.mstatus = (self.mstatus & !mask) | (value & mask);
            }
            SIE => {
                self.mie = (self.mie & !self.mideleg) | (value & self.mideleg);
            }
            STVEC => self.stvec = value & !0b10,
            SCOUNTEREN => self.scounteren = value & 0b111,
            SSCRATCH => self.sscratch = value,
            SEPC => self.sepc = value & !1,
            SCAUSE => self.scause = value,
            STVAL => self.stval = value,
            SIP => {
                // Only SSIP is software-writable from S-mode.
                let mask = self.mideleg & (1 << Interrupt::SupervisorSoftware.code());
                self.mip = (self.mip & !mask) | (value & mask);
            }
            SATP => {
                if self.privilege == Privilege::Supervisor
                    && self.mstatus & mstatus::TVM != 0
                {
                    return Err(Exception::IllegalInstruction);
                }
                let mode = value >> 60;
                if mode == 0 || mode == 8 {
                    self.satp = value & 0x8fff_ffff_ffff_ffff;
                }
                // Other modes: WARL, write ignored.
            }
            MSTATUS => {
                self.mstatus =
                    (self.mstatus & !mstatus::WRITE_MASK) | (value & mstatus::WRITE_MASK);
                // MPP is WARL: only 0/1/3 are legal; map 2 to 0.
                if (self.mstatus >> 11) & 3 == 2 {
                    self.mstatus &= !mstatus::MPP;
                }
            }
            MISA => {} // WARL, fixed
            MEDELEG => self.medeleg = value & 0xb3ff, // delegable exceptions
            MIDELEG => self.mideleg = value & 0x222,  // delegable (S) interrupts
            MIE => self.mie = value & 0xaaa,
            MTVEC => self.mtvec = value & !0b10,
            MCOUNTEREN => self.mcounteren = value & 0b111,
            MSCRATCH => self.mscratch = value,
            MEPC => self.mepc = value & !1,
            MCAUSE => self.mcause = value,
            MTVAL => self.mtval = value,
            MIP => {
                let mask = 0x222; // S-level bits writable from M-mode
                self.mip = (self.mip & !mask) | (value & mask);
            }
            MCYCLE => self.mcycle = value,
            MINSTRET => self.minstret = value,
            c if (PMPCFG0..PMPCFG0 + 16).contains(&c) => {}
            c if (PMPADDR0..PMPADDR0 + 64).contains(&c) => {}
            c if (0xb03..=0xb1f).contains(&c) => {}
            c if (0x323..=0x33f).contains(&c) => {}
            _ => return Err(Exception::IllegalInstruction),
        }
        Ok(())
    }

    fn counter_read(&self, which: u16) -> Result<u64, Exception> {
        // User-level counters are gated by mcounteren/scounteren.
        let bit = 1u64 << which;
        if self.privilege < Privilege::Machine && self.mcounteren & bit == 0 {
            return Err(Exception::IllegalInstruction);
        }
        if self.privilege == Privilege::User && self.scounteren & bit == 0 {
            return Err(Exception::IllegalInstruction);
        }
        Ok(match which {
            0 => self.mcycle,
            1 => self.time,
            _ => self.minstret,
        })
    }

    fn check_privilege(&self, csr: u16) -> Result<(), Exception> {
        let required = (csr >> 8) & 0b11;
        if (self.privilege as u16) < required {
            return Err(Exception::IllegalInstruction);
        }
        // FP CSRs require an enabled FPU.
        if matches!(csr, addr::FFLAGS | addr::FRM | addr::FCSR)
            && self.mstatus & mstatus::FS == 0
        {
            return Err(Exception::IllegalInstruction);
        }
        Ok(())
    }

    /// Take a trap at `pc`, returning the handler address.
    ///
    /// Delegation to S-mode follows medeleg/mideleg when the trap arises
    /// at S or U privilege.
    pub fn take_trap(&mut self, trap: Trap, pc: u64) -> u64 {
        let (code, is_interrupt) = match trap {
            Trap::Exception(e, _) => (e.code(), false),
            Trap::Interrupt(i) => (i.code(), true),
        };
        let deleg = if is_interrupt { self.mideleg } else { self.medeleg };
        let to_s = self.privilege <= Privilege::Supervisor && (deleg >> code) & 1 == 1;

        if to_s {
            self.scause = trap.cause();
            self.sepc = pc;
            self.stval = trap.tval();
            let sie = (self.mstatus & mstatus::SIE) != 0;
            self.mstatus &= !(mstatus::SPIE | mstatus::SPP | mstatus::SIE);
            if sie {
                self.mstatus |= mstatus::SPIE;
            }
            if self.privilege == Privilege::Supervisor {
                self.mstatus |= mstatus::SPP;
            }
            self.privilege = Privilege::Supervisor;
            vector_target(self.stvec, is_interrupt, code)
        } else {
            self.mcause = trap.cause();
            self.mepc = pc;
            self.mtval = trap.tval();
            let mie = (self.mstatus & mstatus::MIE) != 0;
            self.mstatus &= !(mstatus::MPIE | mstatus::MPP | mstatus::MIE);
            if mie {
                self.mstatus |= mstatus::MPIE;
            }
            self.mstatus |= (self.privilege as u64) << 11;
            self.privilege = Privilege::Machine;
            vector_target(self.mtvec, is_interrupt, code)
        }
    }

    /// Execute MRET, returning the PC to resume at.
    ///
    /// # Errors
    ///
    /// Illegal below machine mode.
    pub fn mret(&mut self) -> Result<u64, Exception> {
        if self.privilege != Privilege::Machine {
            return Err(Exception::IllegalInstruction);
        }
        let mpp = Privilege::from_bits(self.mstatus >> 11).unwrap_or(Privilege::User);
        let mpie = self.mstatus & mstatus::MPIE != 0;
        self.mstatus &= !(mstatus::MIE | mstatus::MPIE | mstatus::MPP);
        if mpie {
            self.mstatus |= mstatus::MIE;
        }
        self.mstatus |= mstatus::MPIE;
        if mpp != Privilege::Machine {
            self.mstatus &= !mstatus::MPRV;
        }
        self.privilege = mpp;
        Ok(self.mepc)
    }

    /// Execute SRET, returning the PC to resume at.
    ///
    /// # Errors
    ///
    /// Illegal below supervisor mode, or when `mstatus.TSR` is set in
    /// S-mode.
    pub fn sret(&mut self) -> Result<u64, Exception> {
        if self.privilege < Privilege::Supervisor {
            return Err(Exception::IllegalInstruction);
        }
        if self.privilege == Privilege::Supervisor && self.mstatus & mstatus::TSR != 0 {
            return Err(Exception::IllegalInstruction);
        }
        let spp = if self.mstatus & mstatus::SPP != 0 {
            Privilege::Supervisor
        } else {
            Privilege::User
        };
        let spie = self.mstatus & mstatus::SPIE != 0;
        self.mstatus &= !(mstatus::SIE | mstatus::SPIE | mstatus::SPP);
        if spie {
            self.mstatus |= mstatus::SIE;
        }
        self.mstatus |= mstatus::SPIE;
        self.mstatus &= !mstatus::MPRV;
        self.privilege = spp;
        Ok(self.sepc)
    }

    /// The highest-priority pending-and-enabled interrupt, if any should
    /// be taken at the current privilege.
    pub fn pending_interrupt(&self) -> Option<Interrupt> {
        let pending = self.mip & self.mie;
        if pending == 0 {
            return None;
        }
        let m_enabled = self.privilege < Privilege::Machine
            || (self.mstatus & mstatus::MIE != 0);
        let m_pending = pending & !self.mideleg;
        if m_enabled && m_pending != 0 {
            return pick_interrupt(m_pending);
        }
        let s_enabled = self.privilege < Privilege::Supervisor
            || (self.privilege == Privilege::Supervisor && self.mstatus & mstatus::SIE != 0);
        let s_pending = pending & self.mideleg;
        if s_enabled && s_pending != 0 {
            return pick_interrupt(s_pending);
        }
        None
    }

    /// Accumulate floating-point exception flags into fcsr and mark FS dirty.
    #[inline]
    pub fn set_fflags(&mut self, flags: u64) {
        if flags != 0 {
            self.fcsr |= flags & 0x1f;
            self.mstatus |= mstatus::FS;
        }
    }

    /// The current dynamic rounding mode (frm field).
    #[inline]
    pub fn frm(&self) -> u8 {
        ((self.fcsr >> 5) & 0x7) as u8
    }
}

fn vector_target(tvec: u64, is_interrupt: bool, code: u64) -> u64 {
    let base = tvec & !0b11;
    if tvec & 1 == 1 && is_interrupt {
        base + 4 * code
    } else {
        base
    }
}

fn pick_interrupt(pending: u64) -> Option<Interrupt> {
    // Priority: MEI, MSI, MTI, SEI, SSI, STI.
    for i in [
        Interrupt::MachineExternal,
        Interrupt::MachineSoftware,
        Interrupt::MachineTimer,
        Interrupt::SupervisorExternal,
        Interrupt::SupervisorSoftware,
        Interrupt::SupervisorTimer,
    ] {
        if pending & (1 << i.code()) != 0 {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state() {
        let c = CsrFile::new(3);
        assert_eq!(c.privilege, Privilege::Machine);
        assert_eq!(c.read(addr::MHARTID).unwrap(), 3);
        assert_ne!(c.read(addr::MISA).unwrap() & (1 << 8), 0); // I bit
    }

    #[test]
    fn mstatus_warl_and_sd() {
        let mut c = CsrFile::new(0);
        c.write(addr::MSTATUS, u64::MAX).unwrap();
        let v = c.read(addr::MSTATUS).unwrap();
        assert_ne!(v & mstatus::SD, 0, "SD must mirror dirty FS");
        assert_eq!(v & mstatus::MPP, mstatus::MPP, "MPP=3 is legal");
        // Write MPP=2 (illegal) -> mapped to 0.
        c.write(addr::MSTATUS, 2 << 11).unwrap();
        assert_eq!(c.read(addr::MSTATUS).unwrap() & mstatus::MPP, 0);
    }

    #[test]
    fn sstatus_is_masked_view() {
        let mut c = CsrFile::new(0);
        c.write(addr::MSTATUS, mstatus::SIE | mstatus::MIE | mstatus::SUM)
            .unwrap();
        let s = c.read(addr::SSTATUS).unwrap();
        assert_ne!(s & mstatus::SIE, 0);
        assert_eq!(s & mstatus::MIE, 0, "MIE invisible through sstatus");
        assert_ne!(s & mstatus::SUM, 0);
        // Writing sstatus must not touch MIE.
        c.write(addr::SSTATUS, 0).unwrap();
        assert_ne!(c.read(addr::MSTATUS).unwrap() & mstatus::MIE, 0);
    }

    #[test]
    fn privilege_checks() {
        let mut c = CsrFile::new(0);
        c.privilege = Privilege::User;
        assert_eq!(c.read(addr::MSTATUS), Err(Exception::IllegalInstruction));
        assert_eq!(c.read(addr::SSTATUS), Err(Exception::IllegalInstruction));
        assert_eq!(
            c.write(addr::MSCRATCH, 1),
            Err(Exception::IllegalInstruction)
        );
        // Read-only region rejects writes even from M-mode.
        c.privilege = Privilege::Machine;
        assert_eq!(
            c.write(addr::MHARTID, 1),
            Err(Exception::IllegalInstruction)
        );
    }

    #[test]
    fn counter_gating() {
        let mut c = CsrFile::new(0);
        c.mcycle = 1234;
        assert_eq!(c.read(addr::CYCLE).unwrap(), 1234);
        c.privilege = Privilege::User;
        assert_eq!(c.read(addr::CYCLE), Err(Exception::IllegalInstruction));
        c.privilege = Privilege::Machine;
        c.write(addr::MCOUNTEREN, 1).unwrap();
        c.write(addr::SCOUNTEREN, 1).unwrap();
        c.privilege = Privilege::User;
        assert_eq!(c.read(addr::CYCLE).unwrap(), 1234);
    }

    #[test]
    fn trap_to_machine_and_mret() {
        let mut c = CsrFile::new(0);
        c.write(addr::MTVEC, 0x8000_1000).unwrap();
        c.write(addr::MSTATUS, mstatus::MIE).unwrap();
        c.privilege = Privilege::User;
        let target = c.take_trap(Trap::Exception(Exception::EcallFromU, 0), 0x100);
        assert_eq!(target, 0x8000_1000);
        assert_eq!(c.privilege, Privilege::Machine);
        assert_eq!(c.mepc, 0x100);
        assert_eq!(c.mcause, 8);
        assert_eq!(c.mstatus & mstatus::MPP, 0); // from U
        assert_eq!(c.mstatus & mstatus::MIE, 0);
        let back = c.mret().unwrap();
        assert_eq!(back, 0x100);
        assert_eq!(c.privilege, Privilege::User);
    }

    #[test]
    fn trap_delegation_to_supervisor() {
        let mut c = CsrFile::new(0);
        c.write(addr::MEDELEG, 1 << Exception::EcallFromU.code())
            .unwrap();
        c.write(addr::STVEC, 0x8000_2000).unwrap();
        c.privilege = Privilege::User;
        let target = c.take_trap(Trap::Exception(Exception::EcallFromU, 0), 0x200);
        assert_eq!(target, 0x8000_2000);
        assert_eq!(c.privilege, Privilege::Supervisor);
        assert_eq!(c.scause, 8);
        assert_eq!(c.sepc, 0x200);
        // Machine-mode traps are never delegated.
        c.privilege = Privilege::Machine;
        c.take_trap(Trap::Exception(Exception::EcallFromM, 0), 0x300);
        assert_eq!(c.mepc, 0x300);
    }

    #[test]
    fn vectored_interrupts() {
        let mut c = CsrFile::new(0);
        c.write(addr::MTVEC, 0x8000_0001).unwrap();
        let t = c.take_trap(Trap::Interrupt(Interrupt::MachineTimer), 0x0);
        assert_eq!(t, 0x8000_0000 + 4 * 7);
        assert_ne!(c.mcause >> 63, 0);
    }

    #[test]
    fn pending_interrupt_priority_and_gating() {
        let mut c = CsrFile::new(0);
        c.write(addr::MIE, 0xaaa).unwrap();
        c.mip = (1 << 7) | (1 << 3);
        // MIE clear in M-mode: no interrupt.
        assert_eq!(c.pending_interrupt(), None);
        c.write(addr::MSTATUS, mstatus::MIE).unwrap();
        assert_eq!(c.pending_interrupt(), Some(Interrupt::MachineSoftware));
        // Lower privilege always takes M-level interrupts.
        c.write(addr::MSTATUS, 0).unwrap();
        c.privilege = Privilege::User;
        assert_eq!(c.pending_interrupt(), Some(Interrupt::MachineSoftware));
    }

    #[test]
    fn satp_mode_warl() {
        let mut c = CsrFile::new(0);
        c.write(addr::SATP, 8 << 60 | 0x1234).unwrap();
        assert_eq!(c.read(addr::SATP).unwrap() >> 60, 8);
        // Sv48 (mode 9) unsupported: write ignored entirely.
        c.write(addr::SATP, 9 << 60).unwrap();
        assert_eq!(c.read(addr::SATP).unwrap() >> 60, 8);
    }

    #[test]
    fn fcsr_views() {
        let mut c = CsrFile::new(0);
        c.write(addr::FCSR, 0b101_11011).unwrap();
        assert_eq!(c.read(addr::FFLAGS).unwrap(), 0b11011);
        assert_eq!(c.read(addr::FRM).unwrap(), 0b101);
        c.write(addr::FRM, 0b001).unwrap();
        assert_eq!(c.read(addr::FCSR).unwrap(), 0b001_11011);
        c.set_fflags(0b00100);
        assert_eq!(c.read(addr::FFLAGS).unwrap(), 0b11111);
    }

    #[test]
    fn sret_tsr_trap() {
        let mut c = CsrFile::new(0);
        c.write(addr::MSTATUS, mstatus::TSR).unwrap();
        c.privilege = Privilege::Supervisor;
        assert_eq!(c.sret(), Err(Exception::IllegalInstruction));
    }
}
