//! Instruction decoding for 32-bit and compressed (RVC) encodings.
//!
//! The decoder maps raw bits into [`DecodedInst`]. Compressed instructions
//! are expanded straight into the same operation space (e.g. `c.addi`
//! becomes [`Op::Addi`] with `len == 2`), so everything past decode is
//! encoding-agnostic.

use crate::op::{DecodedInst, Op};

#[inline]
fn sext(value: u64, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((value << shift) as i64) >> shift
}

#[inline]
fn bit(raw: u32, i: u32) -> u64 {
    ((raw >> i) & 1) as u64
}

#[inline]
fn bits(raw: u32, hi: u32, lo: u32) -> u64 {
    ((raw >> lo) & ((1 << (hi - lo + 1)) - 1)) as u64
}

/// Decode an instruction from its raw bits.
///
/// If the low two bits are `11`, the full 32 bits are decoded; otherwise
/// only the low 16 bits are consumed as a compressed instruction.
///
/// ```
/// use riscv_isa::{decode, Op};
/// let inst = decode(0x0000_4501); // c.li a0, 0
/// assert_eq!(inst.op, Op::Addi);
/// assert_eq!(inst.len, 2);
/// ```
#[inline]
pub fn decode(raw: u32) -> DecodedInst {
    if raw & 0b11 == 0b11 {
        decode32(raw)
    } else {
        decode16(raw as u16)
    }
}

/// Decode a full 32-bit instruction.
pub fn decode32(raw: u32) -> DecodedInst {
    let opcode = raw & 0x7f;
    let rd = ((raw >> 7) & 0x1f) as u8;
    let funct3 = (raw >> 12) & 0x7;
    let rs1 = ((raw >> 15) & 0x1f) as u8;
    let rs2 = ((raw >> 20) & 0x1f) as u8;
    let funct7 = (raw >> 25) & 0x7f;

    let imm_i = sext((raw >> 20) as u64, 12);
    let imm_s = sext((bits(raw, 31, 25) << 5) | bits(raw, 11, 7), 12);
    let imm_b = sext(
        (bit(raw, 31) << 12) | (bit(raw, 7) << 11) | (bits(raw, 30, 25) << 5) | (bits(raw, 11, 8) << 1),
        13,
    );
    let imm_u = sext((raw & 0xffff_f000) as u64, 32);
    let imm_j = sext(
        (bit(raw, 31) << 20) | (bits(raw, 19, 12) << 12) | (bit(raw, 20) << 11) | (bits(raw, 30, 21) << 1),
        21,
    );

    let mut d = DecodedInst {
        rd,
        rs1,
        rs2,
        rm: funct3 as u8,
        len: 4,
        raw,
        ..Default::default()
    };

    macro_rules! inst {
        ($op:expr, $imm:expr) => {{
            d.op = $op;
            d.imm = $imm;
            d
        }};
        ($op:expr) => {{
            d.op = $op;
            d
        }};
    }

    match opcode {
        0x37 => inst!(Op::Lui, imm_u),
        0x17 => inst!(Op::Auipc, imm_u),
        0x6f => inst!(Op::Jal, imm_j),
        0x67 if funct3 == 0 => inst!(Op::Jalr, imm_i),
        0x63 => {
            let op = match funct3 {
                0 => Op::Beq,
                1 => Op::Bne,
                4 => Op::Blt,
                5 => Op::Bge,
                6 => Op::Bltu,
                7 => Op::Bgeu,
                _ => Op::Illegal,
            };
            inst!(op, imm_b)
        }
        0x03 => {
            let op = match funct3 {
                0 => Op::Lb,
                1 => Op::Lh,
                2 => Op::Lw,
                3 => Op::Ld,
                4 => Op::Lbu,
                5 => Op::Lhu,
                6 => Op::Lwu,
                _ => Op::Illegal,
            };
            inst!(op, imm_i)
        }
        0x23 => {
            let op = match funct3 {
                0 => Op::Sb,
                1 => Op::Sh,
                2 => Op::Sw,
                3 => Op::Sd,
                _ => Op::Illegal,
            };
            inst!(op, imm_s)
        }
        0x13 => {
            // OP-IMM: shifts use a 6-bit shamt on RV64.
            let shamt6 = bits(raw, 25, 20) as i64;
            let funct6 = bits(raw, 31, 26);
            match funct3 {
                0 => inst!(Op::Addi, imm_i),
                2 => inst!(Op::Slti, imm_i),
                3 => inst!(Op::Sltiu, imm_i),
                4 => inst!(Op::Xori, imm_i),
                6 => inst!(Op::Ori, imm_i),
                7 => inst!(Op::Andi, imm_i),
                1 => match funct6 {
                    0x00 => inst!(Op::Slli, shamt6),
                    0x18 => match rs2 {
                        0 => inst!(Op::Clz),
                        1 => inst!(Op::Ctz),
                        2 => inst!(Op::Cpop),
                        4 => inst!(Op::SextB),
                        5 => inst!(Op::SextH),
                        _ => inst!(Op::Illegal),
                    },
                    _ => inst!(Op::Illegal),
                },
                5 => match funct6 {
                    0x00 => inst!(Op::Srli, shamt6),
                    0x10 => inst!(Op::Srai, shamt6),
                    0x18 => inst!(Op::Rori, shamt6),
                    _ => {
                        let imm12 = bits(raw, 31, 20);
                        match imm12 {
                            0x287 => inst!(Op::OrcB),
                            0x6b8 => inst!(Op::Rev8),
                            _ => inst!(Op::Illegal),
                        }
                    }
                },
                _ => inst!(Op::Illegal),
            }
        }
        0x33 => {
            let op = match (funct7, funct3) {
                (0x00, 0) => Op::Add,
                (0x20, 0) => Op::Sub,
                (0x00, 1) => Op::Sll,
                (0x00, 2) => Op::Slt,
                (0x00, 3) => Op::Sltu,
                (0x00, 4) => Op::Xor,
                (0x00, 5) => Op::Srl,
                (0x20, 5) => Op::Sra,
                (0x00, 6) => Op::Or,
                (0x00, 7) => Op::And,
                (0x01, 0) => Op::Mul,
                (0x01, 1) => Op::Mulh,
                (0x01, 2) => Op::Mulhsu,
                (0x01, 3) => Op::Mulhu,
                (0x01, 4) => Op::Div,
                (0x01, 5) => Op::Divu,
                (0x01, 6) => Op::Rem,
                (0x01, 7) => Op::Remu,
                (0x20, 7) => Op::Andn,
                (0x20, 6) => Op::Orn,
                (0x20, 4) => Op::Xnor,
                (0x10, 2) => Op::Sh1add,
                (0x10, 4) => Op::Sh2add,
                (0x10, 6) => Op::Sh3add,
                (0x05, 4) => Op::Min,
                (0x05, 5) => Op::Minu,
                (0x05, 6) => Op::Max,
                (0x05, 7) => Op::Maxu,
                (0x30, 1) => Op::Rol,
                (0x30, 5) => Op::Ror,
                _ => Op::Illegal,
            };
            inst!(op)
        }
        0x1b => {
            let shamt5 = bits(raw, 24, 20) as i64;
            let funct6 = bits(raw, 31, 26);
            match funct3 {
                0 => inst!(Op::Addiw, imm_i),
                1 => match funct6 {
                    0x00 if funct7 == 0 => inst!(Op::Slliw, shamt5),
                    0x02 => inst!(Op::SlliUw, bits(raw, 25, 20) as i64),
                    0x18 if funct7 == 0x30 => match rs2 {
                        0 => inst!(Op::Clzw),
                        1 => inst!(Op::Ctzw),
                        2 => inst!(Op::Cpopw),
                        _ => inst!(Op::Illegal),
                    },
                    _ => inst!(Op::Illegal),
                },
                5 => match funct7 {
                    0x00 => inst!(Op::Srliw, shamt5),
                    0x20 => inst!(Op::Sraiw, shamt5),
                    0x30 => inst!(Op::Roriw, shamt5),
                    _ => inst!(Op::Illegal),
                },
                _ => inst!(Op::Illegal),
            }
        }
        0x3b => {
            let op = match (funct7, funct3) {
                (0x00, 0) => Op::Addw,
                (0x20, 0) => Op::Subw,
                (0x00, 1) => Op::Sllw,
                (0x00, 5) => Op::Srlw,
                (0x20, 5) => Op::Sraw,
                (0x01, 0) => Op::Mulw,
                (0x01, 4) => Op::Divw,
                (0x01, 5) => Op::Divuw,
                (0x01, 6) => Op::Remw,
                (0x01, 7) => Op::Remuw,
                (0x04, 0) => Op::AddUw,
                (0x10, 2) => Op::Sh1addUw,
                (0x10, 4) => Op::Sh2addUw,
                (0x10, 6) => Op::Sh3addUw,
                (0x04, 4) if rs2 == 0 => Op::ZextH,
                (0x30, 1) => Op::Rolw,
                (0x30, 5) => Op::Rorw,
                _ => Op::Illegal,
            };
            inst!(op)
        }
        0x0f => {
            // fm/pred/succ bits of fences are hints; normalize the
            // register fields so decode(encode(x)) is the identity.
            d.rd = 0;
            d.rs1 = 0;
            d.rs2 = 0;
            match funct3 {
                0 => inst!(Op::Fence),
                1 => inst!(Op::FenceI),
                _ => inst!(Op::Illegal),
            }
        }
        0x73 => match funct3 {
            0 => {
                if funct7 == 0x09 {
                    d.rd = 0;
                    inst!(Op::SfenceVma)
                } else if rd != 0 || rs1 != 0 {
                    inst!(Op::Illegal)
                } else {
                    match bits(raw, 31, 20) {
                        0x000 => inst!(Op::Ecall),
                        0x001 => inst!(Op::Ebreak),
                        0x302 => inst!(Op::Mret),
                        0x102 => inst!(Op::Sret),
                        0x105 => inst!(Op::Wfi),
                        _ => inst!(Op::Illegal),
                    }
                }
            }
            1 => inst!(Op::Csrrw, bits(raw, 31, 20) as i64),
            2 => inst!(Op::Csrrs, bits(raw, 31, 20) as i64),
            3 => inst!(Op::Csrrc, bits(raw, 31, 20) as i64),
            5 => inst!(Op::Csrrwi, bits(raw, 31, 20) as i64),
            6 => inst!(Op::Csrrsi, bits(raw, 31, 20) as i64),
            7 => inst!(Op::Csrrci, bits(raw, 31, 20) as i64),
            _ => inst!(Op::Illegal),
        },
        0x2f => {
            let funct5 = bits(raw, 31, 27);
            let wide = match funct3 {
                2 => false,
                3 => true,
                _ => return inst!(Op::Illegal),
            };
            let op = match (funct5, wide) {
                (0x02, false) => Op::LrW,
                (0x03, false) => Op::ScW,
                (0x01, false) => Op::AmoswapW,
                (0x00, false) => Op::AmoaddW,
                (0x04, false) => Op::AmoxorW,
                (0x0c, false) => Op::AmoandW,
                (0x08, false) => Op::AmoorW,
                (0x10, false) => Op::AmominW,
                (0x14, false) => Op::AmomaxW,
                (0x18, false) => Op::AmominuW,
                (0x1c, false) => Op::AmomaxuW,
                (0x02, true) => Op::LrD,
                (0x03, true) => Op::ScD,
                (0x01, true) => Op::AmoswapD,
                (0x00, true) => Op::AmoaddD,
                (0x04, true) => Op::AmoxorD,
                (0x0c, true) => Op::AmoandD,
                (0x08, true) => Op::AmoorD,
                (0x10, true) => Op::AmominD,
                (0x14, true) => Op::AmomaxD,
                (0x18, true) => Op::AmominuD,
                (0x1c, true) => Op::AmomaxuD,
                _ => Op::Illegal,
            };
            inst!(op)
        }
        0x07 => match funct3 {
            2 => inst!(Op::Flw, imm_i),
            3 => inst!(Op::Fld, imm_i),
            _ => inst!(Op::Illegal),
        },
        0x27 => match funct3 {
            2 => inst!(Op::Fsw, imm_s),
            3 => inst!(Op::Fsd, imm_s),
            _ => inst!(Op::Illegal),
        },
        0x43 | 0x47 | 0x4b | 0x4f => {
            d.rs3 = bits(raw, 31, 27) as u8;
            let fmt = bits(raw, 26, 25);
            let op = match (opcode, fmt) {
                (0x43, 0) => Op::FmaddS,
                (0x47, 0) => Op::FmsubS,
                (0x4b, 0) => Op::FnmsubS,
                (0x4f, 0) => Op::FnmaddS,
                (0x43, 1) => Op::FmaddD,
                (0x47, 1) => Op::FmsubD,
                (0x4b, 1) => Op::FnmsubD,
                (0x4f, 1) => Op::FnmaddD,
                _ => Op::Illegal,
            };
            inst!(op)
        }
        0x53 => {
            let op = match funct7 {
                0x00 => Op::FaddS,
                0x01 => Op::FaddD,
                0x04 => Op::FsubS,
                0x05 => Op::FsubD,
                0x08 => Op::FmulS,
                0x09 => Op::FmulD,
                0x0c => Op::FdivS,
                0x0d => Op::FdivD,
                0x2c => Op::FsqrtS,
                0x2d => Op::FsqrtD,
                0x10 => match funct3 {
                    0 => Op::FsgnjS,
                    1 => Op::FsgnjnS,
                    2 => Op::FsgnjxS,
                    _ => Op::Illegal,
                },
                0x11 => match funct3 {
                    0 => Op::FsgnjD,
                    1 => Op::FsgnjnD,
                    2 => Op::FsgnjxD,
                    _ => Op::Illegal,
                },
                0x14 => match funct3 {
                    0 => Op::FminS,
                    1 => Op::FmaxS,
                    _ => Op::Illegal,
                },
                0x15 => match funct3 {
                    0 => Op::FminD,
                    1 => Op::FmaxD,
                    _ => Op::Illegal,
                },
                0x20 => {
                    if rs2 == 1 {
                        Op::FcvtSD
                    } else {
                        Op::Illegal
                    }
                }
                0x21 => {
                    if rs2 == 0 {
                        Op::FcvtDS
                    } else {
                        Op::Illegal
                    }
                }
                0x50 => match funct3 {
                    2 => Op::FeqS,
                    1 => Op::FltS,
                    0 => Op::FleS,
                    _ => Op::Illegal,
                },
                0x51 => match funct3 {
                    2 => Op::FeqD,
                    1 => Op::FltD,
                    0 => Op::FleD,
                    _ => Op::Illegal,
                },
                0x60 => match rs2 {
                    0 => Op::FcvtWS,
                    1 => Op::FcvtWuS,
                    2 => Op::FcvtLS,
                    3 => Op::FcvtLuS,
                    _ => Op::Illegal,
                },
                0x61 => match rs2 {
                    0 => Op::FcvtWD,
                    1 => Op::FcvtWuD,
                    2 => Op::FcvtLD,
                    3 => Op::FcvtLuD,
                    _ => Op::Illegal,
                },
                0x68 => match rs2 {
                    0 => Op::FcvtSW,
                    1 => Op::FcvtSWu,
                    2 => Op::FcvtSL,
                    3 => Op::FcvtSLu,
                    _ => Op::Illegal,
                },
                0x69 => match rs2 {
                    0 => Op::FcvtDW,
                    1 => Op::FcvtDWu,
                    2 => Op::FcvtDL,
                    3 => Op::FcvtDLu,
                    _ => Op::Illegal,
                },
                0x70 => match funct3 {
                    0 if rs2 == 0 => Op::FmvXW,
                    1 if rs2 == 0 => Op::FclassS,
                    _ => Op::Illegal,
                },
                0x71 => match funct3 {
                    0 if rs2 == 0 => Op::FmvXD,
                    1 if rs2 == 0 => Op::FclassD,
                    _ => Op::Illegal,
                },
                0x78 if funct3 == 0 && rs2 == 0 => Op::FmvWX,
                0x79 if funct3 == 0 && rs2 == 0 => Op::FmvDX,
                _ => Op::Illegal,
            };
            inst!(op)
        }
        _ => inst!(Op::Illegal),
    }
}

/// Decode a 16-bit compressed (RVC) instruction into its expanded form.
///
/// The result has `len == 2` but carries the same [`Op`] as the equivalent
/// 32-bit instruction.
pub fn decode16(raw16: u16) -> DecodedInst {
    let raw = raw16 as u32;
    let quadrant = raw & 0b11;
    let funct3 = (raw >> 13) & 0b111;

    let mut d = DecodedInst {
        len: 2,
        raw,
        ..Default::default()
    };

    // 3-bit register fields map to x8..x15.
    let r1c = (bits(raw, 9, 7) + 8) as u8;
    let r2c = (bits(raw, 4, 2) + 8) as u8;
    let rd_full = bits(raw, 11, 7) as u8;
    let rs2_full = bits(raw, 6, 2) as u8;

    macro_rules! done {
        ($op:expr, $rd:expr, $rs1:expr, $rs2:expr, $imm:expr) => {{
            d.op = $op;
            d.rd = $rd;
            d.rs1 = $rs1;
            d.rs2 = $rs2;
            d.imm = $imm;
            d
        }};
    }

    match (quadrant, funct3) {
        (0b00, 0b000) => {
            // c.addi4spn: addi rd', x2, nzuimm
            let imm = (bits(raw, 10, 7) << 6)
                | (bits(raw, 12, 11) << 4)
                | (bit(raw, 5) << 3)
                | (bit(raw, 6) << 2);
            if imm == 0 {
                return d; // reserved
            }
            done!(Op::Addi, r2c, 2, 0, imm as i64)
        }
        (0b00, 0b001) => {
            // c.fld
            let imm = (bits(raw, 6, 5) << 6) | (bits(raw, 12, 10) << 3);
            done!(Op::Fld, r2c, r1c, 0, imm as i64)
        }
        (0b00, 0b010) => {
            // c.lw
            let imm = (bit(raw, 5) << 6) | (bits(raw, 12, 10) << 3) | (bit(raw, 6) << 2);
            done!(Op::Lw, r2c, r1c, 0, imm as i64)
        }
        (0b00, 0b011) => {
            // c.ld
            let imm = (bits(raw, 6, 5) << 6) | (bits(raw, 12, 10) << 3);
            done!(Op::Ld, r2c, r1c, 0, imm as i64)
        }
        (0b00, 0b101) => {
            // c.fsd
            let imm = (bits(raw, 6, 5) << 6) | (bits(raw, 12, 10) << 3);
            done!(Op::Fsd, 0, r1c, r2c, imm as i64)
        }
        (0b00, 0b110) => {
            // c.sw
            let imm = (bit(raw, 5) << 6) | (bits(raw, 12, 10) << 3) | (bit(raw, 6) << 2);
            done!(Op::Sw, 0, r1c, r2c, imm as i64)
        }
        (0b00, 0b111) => {
            // c.sd
            let imm = (bits(raw, 6, 5) << 6) | (bits(raw, 12, 10) << 3);
            done!(Op::Sd, 0, r1c, r2c, imm as i64)
        }
        (0b01, 0b000) => {
            // c.addi (c.nop when rd == 0)
            let imm = sext((bit(raw, 12) << 5) | bits(raw, 6, 2), 6);
            done!(Op::Addi, rd_full, rd_full, 0, imm)
        }
        (0b01, 0b001) => {
            // c.addiw (reserved when rd == 0)
            if rd_full == 0 {
                return d;
            }
            let imm = sext((bit(raw, 12) << 5) | bits(raw, 6, 2), 6);
            done!(Op::Addiw, rd_full, rd_full, 0, imm)
        }
        (0b01, 0b010) => {
            // c.li
            let imm = sext((bit(raw, 12) << 5) | bits(raw, 6, 2), 6);
            done!(Op::Addi, rd_full, 0, 0, imm)
        }
        (0b01, 0b011) => {
            if rd_full == 2 {
                // c.addi16sp
                let imm = sext(
                    (bit(raw, 12) << 9)
                        | (bits(raw, 4, 3) << 7)
                        | (bit(raw, 5) << 6)
                        | (bit(raw, 2) << 5)
                        | (bit(raw, 6) << 4),
                    10,
                );
                if imm == 0 {
                    return d;
                }
                done!(Op::Addi, 2, 2, 0, imm)
            } else {
                // c.lui (reserved when rd == 0 or imm == 0)
                let imm = sext((bit(raw, 12) << 17) | (bits(raw, 6, 2) << 12), 18);
                if imm == 0 || rd_full == 0 {
                    return d;
                }
                done!(Op::Lui, rd_full, 0, 0, imm)
            }
        }
        (0b01, 0b100) => {
            let funct2 = bits(raw, 11, 10);
            match funct2 {
                0b00 => {
                    let shamt = (bit(raw, 12) << 5) | bits(raw, 6, 2);
                    done!(Op::Srli, r1c, r1c, 0, shamt as i64)
                }
                0b01 => {
                    let shamt = (bit(raw, 12) << 5) | bits(raw, 6, 2);
                    done!(Op::Srai, r1c, r1c, 0, shamt as i64)
                }
                0b10 => {
                    let imm = sext((bit(raw, 12) << 5) | bits(raw, 6, 2), 6);
                    done!(Op::Andi, r1c, r1c, 0, imm)
                }
                _ => {
                    let op = match (bit(raw, 12), bits(raw, 6, 5)) {
                        (0, 0b00) => Op::Sub,
                        (0, 0b01) => Op::Xor,
                        (0, 0b10) => Op::Or,
                        (0, 0b11) => Op::And,
                        (1, 0b00) => Op::Subw,
                        (1, 0b01) => Op::Addw,
                        _ => return d,
                    };
                    done!(op, r1c, r1c, r2c, 0)
                }
            }
        }
        (0b01, 0b101) => {
            // c.j
            let imm = sext(
                (bit(raw, 12) << 11)
                    | (bit(raw, 8) << 10)
                    | (bits(raw, 10, 9) << 8)
                    | (bit(raw, 6) << 7)
                    | (bit(raw, 7) << 6)
                    | (bit(raw, 2) << 5)
                    | (bit(raw, 11) << 4)
                    | (bits(raw, 5, 3) << 1),
                12,
            );
            done!(Op::Jal, 0, 0, 0, imm)
        }
        (0b01, 0b110) | (0b01, 0b111) => {
            // c.beqz / c.bnez
            let imm = sext(
                (bit(raw, 12) << 8)
                    | (bits(raw, 6, 5) << 6)
                    | (bit(raw, 2) << 5)
                    | (bits(raw, 11, 10) << 3)
                    | (bits(raw, 4, 3) << 1),
                9,
            );
            let op = if funct3 == 0b110 { Op::Beq } else { Op::Bne };
            done!(op, 0, r1c, 0, imm)
        }
        (0b10, 0b000) => {
            // c.slli
            let shamt = (bit(raw, 12) << 5) | bits(raw, 6, 2);
            done!(Op::Slli, rd_full, rd_full, 0, shamt as i64)
        }
        (0b10, 0b001) => {
            // c.fldsp
            let imm = (bits(raw, 4, 2) << 6) | (bit(raw, 12) << 5) | (bits(raw, 6, 5) << 3);
            done!(Op::Fld, rd_full, 2, 0, imm as i64)
        }
        (0b10, 0b010) => {
            // c.lwsp (reserved when rd == 0)
            if rd_full == 0 {
                return d;
            }
            let imm = (bits(raw, 3, 2) << 6) | (bit(raw, 12) << 5) | (bits(raw, 6, 4) << 2);
            done!(Op::Lw, rd_full, 2, 0, imm as i64)
        }
        (0b10, 0b011) => {
            // c.ldsp (reserved when rd == 0)
            if rd_full == 0 {
                return d;
            }
            let imm = (bits(raw, 4, 2) << 6) | (bit(raw, 12) << 5) | (bits(raw, 6, 5) << 3);
            done!(Op::Ld, rd_full, 2, 0, imm as i64)
        }
        (0b10, 0b100) => {
            if bit(raw, 12) == 0 {
                if rs2_full == 0 {
                    if rd_full == 0 {
                        return d;
                    }
                    done!(Op::Jalr, 0, rd_full, 0, 0) // c.jr
                } else {
                    done!(Op::Add, rd_full, 0, rs2_full, 0) // c.mv
                }
            } else if rs2_full == 0 {
                if rd_full == 0 {
                    done!(Op::Ebreak, 0, 0, 0, 0)
                } else {
                    done!(Op::Jalr, 1, rd_full, 0, 0) // c.jalr
                }
            } else {
                done!(Op::Add, rd_full, rd_full, rs2_full, 0) // c.add
            }
        }
        (0b10, 0b101) => {
            // c.fsdsp
            let imm = (bits(raw, 9, 7) << 6) | (bits(raw, 12, 10) << 3);
            done!(Op::Fsd, 0, 2, rs2_full, imm as i64)
        }
        (0b10, 0b110) => {
            // c.swsp
            let imm = (bits(raw, 8, 7) << 6) | (bits(raw, 12, 9) << 2);
            done!(Op::Sw, 0, 2, rs2_full, imm as i64)
        }
        (0b10, 0b111) => {
            // c.sdsp
            let imm = (bits(raw, 9, 7) << 6) | (bits(raw, 12, 10) << 3);
            done!(Op::Sd, 0, 2, rs2_full, imm as i64)
        }
        _ => d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_basic_arith() {
        // addi x5, x0, 42
        let d = decode32(0x02a0_0293);
        assert_eq!((d.op, d.rd, d.rs1, d.imm), (Op::Addi, 5, 0, 42));
        // add x3, x1, x2
        let d = decode32(0x0020_81b3);
        assert_eq!((d.op, d.rd, d.rs1, d.rs2), (Op::Add, 3, 1, 2));
        // sub x3, x1, x2
        let d = decode32(0x4020_81b3);
        assert_eq!(d.op, Op::Sub);
    }

    #[test]
    fn decode_negative_imm() {
        // addi x1, x1, -1
        let d = decode32(0xfff0_8093);
        assert_eq!(d.imm, -1);
        // lui x1, 0xfffff
        let d = decode32(0xffff_f0b7);
        assert_eq!(d.imm, -4096);
    }

    #[test]
    fn decode_branches_and_jumps() {
        // beq x1, x2, +8
        let d = decode32(0x0020_8463);
        assert_eq!((d.op, d.imm), (Op::Beq, 8));
        // jal x1, -16
        let d = decode32(0xff1f_f0ef);
        assert_eq!((d.op, d.rd, d.imm), (Op::Jal, 1, -16));
        // jalr x0, 0(x1)
        let d = decode32(0x0000_8067);
        assert_eq!((d.op, d.rd, d.rs1), (Op::Jalr, 0, 1));
    }

    #[test]
    fn decode_loads_stores() {
        // ld x6, 16(x2)
        let d = decode32(0x0101_3303);
        assert_eq!((d.op, d.rd, d.rs1, d.imm), (Op::Ld, 6, 2, 16));
        // sd x6, -8(x2)
        let d = decode32(0xfe61_3c23);
        assert_eq!((d.op, d.rs1, d.rs2, d.imm), (Op::Sd, 2, 6, -8));
    }

    #[test]
    fn decode_system() {
        assert_eq!(decode32(0x0000_0073).op, Op::Ecall);
        assert_eq!(decode32(0x0010_0073).op, Op::Ebreak);
        assert_eq!(decode32(0x3020_0073).op, Op::Mret);
        assert_eq!(decode32(0x1020_0073).op, Op::Sret);
        assert_eq!(decode32(0x1050_0073).op, Op::Wfi);
        // sfence.vma x0, x0
        assert_eq!(decode32(0x1200_0073).op, Op::SfenceVma);
        // csrrw x1, mscratch, x2
        let d = decode32(0x3401_10f3);
        assert_eq!((d.op, d.csr(), d.rd, d.rs1), (Op::Csrrw, 0x340, 1, 2));
    }

    #[test]
    fn decode_amo() {
        // lr.d x5, (x10)
        let d = decode32(0x1005_32af);
        assert_eq!((d.op, d.rd, d.rs1), (Op::LrD, 5, 10));
        // sc.d x6, x5, (x10)
        let d = decode32(0x1855_332f);
        assert_eq!((d.op, d.rd, d.rs1, d.rs2), (Op::ScD, 6, 10, 5));
        // amoadd.w x7, x5, (x10)
        let d = decode32(0x0055_23af);
        assert_eq!((d.op, d.rd, d.rs1, d.rs2), (Op::AmoaddW, 7, 10, 5));
    }

    #[test]
    fn decode_fp() {
        // fadd.d f3, f1, f2 (rm=dyn)
        let d = decode32(0x0220_f1d3);
        assert_eq!((d.op, d.rd, d.rs1, d.rs2, d.rm), (Op::FaddD, 3, 1, 2, 7));
        // fmadd.d f3, f1, f2, f4
        let d = decode32(0x2220_f1c3);
        assert_eq!((d.op, d.rs3), (Op::FmaddD, 4));
        // fcvt.d.w f1, x2
        let d = decode32(0xd201_00d3);
        assert_eq!(d.op, Op::FcvtDW);
        // fmv.x.d x1, f2
        let d = decode32(0xe201_00d3);
        assert_eq!(d.op, Op::FmvXD);
    }

    #[test]
    fn decode_zba_zbb() {
        // sh1add x3, x1, x2
        let d = decode32(0x2020_a1b3);
        assert_eq!(d.op, Op::Sh1add);
        // andn x3, x1, x2
        let d = decode32(0x4020_f1b3);
        assert_eq!(d.op, Op::Andn);
        // clz x3, x1
        let d = decode32(0x6000_9193);
        assert_eq!(d.op, Op::Clz);
        // cpop x3, x1
        let d = decode32(0x6020_9193);
        assert_eq!(d.op, Op::Cpop);
        // rev8 x3, x1
        let d = decode32(0x6b80_d193);
        assert_eq!(d.op, Op::Rev8);
        // orc.b x3, x1
        let d = decode32(0x2870_d193);
        assert_eq!(d.op, Op::OrcB);
    }

    #[test]
    fn decode_compressed() {
        // c.li a0, 1 => 0x4505
        let d = decode16(0x4505);
        assert_eq!((d.op, d.rd, d.rs1, d.imm, d.len), (Op::Addi, 10, 0, 1, 2));
        // c.mv a0, a1 => 0x852e
        let d = decode16(0x852e);
        assert_eq!((d.op, d.rd, d.rs1, d.rs2), (Op::Add, 10, 0, 11));
        // c.add a0, a1 => 0x952e
        let d = decode16(0x952e);
        assert_eq!((d.op, d.rd, d.rs1, d.rs2), (Op::Add, 10, 10, 11));
        // c.addi sp, -32 => 0x1101
        let d = decode16(0x1101);
        assert_eq!((d.op, d.rd, d.imm), (Op::Addi, 2, -32));
        // c.jr ra => 0x8082
        let d = decode16(0x8082);
        assert_eq!((d.op, d.rd, d.rs1), (Op::Jalr, 0, 1));
        // c.ebreak => 0x9002
        assert_eq!(decode16(0x9002).op, Op::Ebreak);
        // c.ld a1, 0(a0) => 0x610c: funct3=011, uimm=0, rs1'=a0(2), rd'=a1(3)
        let d = decode16(0x610c);
        assert_eq!((d.op, d.rd, d.rs1, d.imm), (Op::Ld, 11, 10, 0));
        // c.sd a1, 8(a0) => 0xe50c
        let d = decode16(0xe50c);
        assert_eq!((d.op, d.rs1, d.rs2, d.imm), (Op::Sd, 10, 11, 8));
    }

    #[test]
    fn decode_compressed_branches() {
        // c.beqz a0, +6 (imm=6): 0xc319? compute: funct3=110 quad=01, rs1'=a0 -> bits.
        // Instead verify via round structure: c.j +0 is 0xa001.
        let d = decode16(0xa001);
        assert_eq!((d.op, d.rd, d.imm), (Op::Jal, 0, 0));
        // c.bnez a0, 0 => funct3=111 rs1'=010 -> 0xe101
        let d = decode16(0xe101);
        assert_eq!((d.op, d.rs1, d.imm), (Op::Bne, 10, 0));
    }

    #[test]
    fn dispatcher_selects_width() {
        assert_eq!(decode(0x0000_4501).len, 2);
        assert_eq!(decode(0x02a0_0293).len, 4);
    }

    #[test]
    fn illegal_encodings() {
        assert_eq!(decode32(0x0000_0000).op, Op::Illegal);
        assert_eq!(decode32(0xffff_ffff).op, Op::Illegal);
        assert_eq!(decode16(0x0000).op, Op::Illegal);
    }
}
