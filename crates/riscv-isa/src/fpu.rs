//! Host-float-backed floating-point semantics with RISC-V NaN boxing.
//!
//! This is the analogue of NEMU's fast path (paper §III-D1d): guest
//! floating-point instructions are interpreted with host floating-point
//! arithmetic, including FMA via the host's fused `mul_add`. Results are
//! NaN-boxed and NaN-canonicalized per the RISC-V spec.
//!
//! Rounding: host arithmetic rounds to nearest-even; the explicit rounding
//! mode field is honored for float→int conversions (where RISC-V code
//! commonly uses RTZ) and ignored for arithmetic, which is an accepted
//! approximation documented in DESIGN.md. The exact-rounding
//! [`crate::softfloat`] module is the bit-precise alternative used by the
//! Spike-like baseline.

use crate::op::Op;

/// Exception flag bits (fcsr fflags layout).
#[allow(missing_docs)]
pub mod flags {
    pub const NX: u64 = 1 << 0;
    pub const UF: u64 = 1 << 1;
    pub const OF: u64 = 1 << 2;
    pub const DZ: u64 = 1 << 3;
    pub const NV: u64 = 1 << 4;
}

/// Canonical quiet NaN for f32 (as boxed 64-bit value).
pub const CANONICAL_NAN_F32: u64 = 0xffff_ffff_7fc0_0000;
/// Canonical quiet NaN for f64.
pub const CANONICAL_NAN_F64: u64 = 0x7ff8_0000_0000_0000;

/// Result of a floating-point operation: the destination bits (NaN-boxed
/// for single precision, raw integer for int-destination ops) plus the
/// accumulated exception flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpResult {
    /// Destination register value.
    pub bits: u64,
    /// fflags bits raised by this operation.
    pub flags: u64,
}

#[inline]
fn box32(bits: u32) -> u64 {
    0xffff_ffff_0000_0000 | bits as u64
}

/// Unbox a single-precision value; improperly boxed values read as the
/// canonical NaN, as the spec requires.
#[inline]
pub fn unbox32(v: u64) -> f32 {
    if v >> 32 == 0xffff_ffff {
        f32::from_bits(v as u32)
    } else {
        f32::from_bits(0x7fc0_0000)
    }
}

#[inline]
fn canon32(x: f32) -> u64 {
    if x.is_nan() {
        CANONICAL_NAN_F32
    } else {
        box32(x.to_bits())
    }
}

#[inline]
fn canon64(x: f64) -> u64 {
    if x.is_nan() {
        CANONICAL_NAN_F64
    } else {
        x.to_bits()
    }
}

#[inline]
fn is_snan32(bits: u32) -> bool {
    let exp_all = bits & 0x7f80_0000 == 0x7f80_0000;
    exp_all && bits & 0x007f_ffff != 0 && bits & 0x0040_0000 == 0
}

#[inline]
fn is_snan64(bits: u64) -> bool {
    let exp_all = bits & 0x7ff0_0000_0000_0000 == 0x7ff0_0000_0000_0000;
    exp_all && bits & 0x000f_ffff_ffff_ffff != 0 && bits & 0x0008_0000_0000_0000 == 0
}

fn arith_flags32(r: f32, operands_nan: bool) -> u64 {
    let mut f = 0;
    if r.is_nan() && !operands_nan {
        f |= flags::NV;
    }
    if r.is_infinite() && !operands_nan {
        f |= flags::OF | flags::NX;
    }
    f
}

fn arith_flags64(r: f64, operands_nan: bool) -> u64 {
    let mut f = 0;
    if r.is_nan() && !operands_nan {
        f |= flags::NV;
    }
    if r.is_infinite() && !operands_nan {
        f |= flags::OF | flags::NX;
    }
    f
}

/// Round a host double according to a RISC-V rounding mode.
#[inline]
fn round_f64(x: f64, rm: u8) -> f64 {
    match rm {
        0 => round_ties_even(x),  // RNE
        1 => x.trunc(),           // RTZ
        2 => x.floor(),           // RDN
        3 => x.ceil(),            // RUP
        4 => {
            // RMM: ties away from zero.
            if x >= 0.0 {
                (x + 0.5).floor()
            } else {
                (x - 0.5).ceil()
            }
        }
        _ => round_ties_even(x),
    }
}

#[inline]
fn round_ties_even(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - x.signum()
    } else {
        r
    }
}

macro_rules! cvt_to_int {
    ($x:expr, $rm:expr, $ty:ty) => {{
        let x = $x;
        if x.is_nan() {
            FpResult {
                bits: <$ty>::MAX as i64 as u64,
                flags: flags::NV,
            }
        } else {
            let r = round_f64(x, $rm);
            if r < <$ty>::MIN as f64 {
                FpResult {
                    bits: <$ty>::MIN as i64 as u64,
                    flags: flags::NV,
                }
            } else if r >= -(<$ty>::MIN as f64) && <$ty>::MIN != 0 {
                FpResult {
                    bits: <$ty>::MAX as i64 as u64,
                    flags: flags::NV,
                }
            } else if <$ty>::MIN == 0 && r >= 2.0f64.powi(8 * std::mem::size_of::<$ty>() as i32) {
                FpResult {
                    bits: <$ty>::MAX as i64 as u64,
                    flags: flags::NV,
                }
            } else {
                let v = r as $ty;
                let nx = if r != x { flags::NX } else { 0 };
                FpResult {
                    bits: v as i64 as u64,
                    flags: nx,
                }
            }
        }
    }};
}

fn minmax64(a: f64, b: f64, is_max: bool, snan: bool) -> FpResult {
    let fl = if snan { flags::NV } else { 0 };
    let bits = if a.is_nan() && b.is_nan() {
        CANONICAL_NAN_F64
    } else if a.is_nan() {
        b.to_bits()
    } else if b.is_nan() {
        a.to_bits()
    } else if a == 0.0 && b == 0.0 && a.is_sign_negative() != b.is_sign_negative() {
        // -0.0 vs +0.0: min is -0.0, max is +0.0.
        if is_max == a.is_sign_positive() {
            a.to_bits()
        } else {
            b.to_bits()
        }
    } else if (a < b) != is_max {
        a.to_bits()
    } else {
        b.to_bits()
    };
    FpResult { bits, flags: fl }
}

fn minmax32(a: f32, b: f32, is_max: bool, snan: bool) -> FpResult {
    let fl = if snan { flags::NV } else { 0 };
    let bits = if a.is_nan() && b.is_nan() {
        CANONICAL_NAN_F32
    } else if a.is_nan() {
        box32(b.to_bits())
    } else if b.is_nan() {
        box32(a.to_bits())
    } else if a == 0.0 && b == 0.0 && a.is_sign_negative() != b.is_sign_negative() {
        if is_max == a.is_sign_positive() {
            box32(a.to_bits())
        } else {
            box32(b.to_bits())
        }
    } else if (a < b) != is_max {
        box32(a.to_bits())
    } else {
        box32(b.to_bits())
    };
    FpResult { bits, flags: fl }
}

/// IEEE-754 classify, returning the RISC-V 10-bit class mask.
pub fn classify64(bits: u64) -> u64 {
    let x = f64::from_bits(bits);
    let sign = bits >> 63 != 0;
    if x.is_nan() {
        if is_snan64(bits) {
            1 << 8
        } else {
            1 << 9
        }
    } else if x.is_infinite() {
        if sign {
            1 << 0
        } else {
            1 << 7
        }
    } else if x == 0.0 {
        if sign {
            1 << 3
        } else {
            1 << 4
        }
    } else if x.is_subnormal() {
        if sign {
            1 << 2
        } else {
            1 << 5
        }
    } else if sign {
        1 << 1
    } else {
        1 << 6
    }
}

/// IEEE-754 classify for single precision (takes the boxed value).
pub fn classify32(v: u64) -> u64 {
    let bits = if v >> 32 == 0xffff_ffff {
        v as u32
    } else {
        0x7fc0_0000
    };
    let x = f32::from_bits(bits);
    let sign = bits >> 31 != 0;
    if x.is_nan() {
        if is_snan32(bits) {
            1 << 8
        } else {
            1 << 9
        }
    } else if x.is_infinite() {
        if sign {
            1 << 0
        } else {
            1 << 7
        }
    } else if x == 0.0 {
        if sign {
            1 << 3
        } else {
            1 << 4
        }
    } else if x.is_subnormal() {
        if sign {
            1 << 2
        } else {
            1 << 5
        }
    } else if sign {
        1 << 1
    } else {
        1 << 6
    }
}

/// Execute a floating-point operation.
///
/// `a`, `b`, `c` are the source register values: FP sources carry register
/// bits (NaN-boxed for `.s`), integer sources (for `fcvt.*.w` etc.) carry
/// the GPR value. The result carries destination bits in the same
/// convention.
///
/// # Panics
///
/// Debug-asserts if `op` is not a floating-point operation.
pub fn fp_execute(op: Op, a: u64, b: u64, c: u64, rm: u8) -> FpResult {
    use Op::*;
    let a32 = || unbox32(a);
    let b32 = || unbox32(b);
    let c32 = || unbox32(c);
    let a64 = || f64::from_bits(a);
    let b64 = || f64::from_bits(b);
    let c64 = || f64::from_bits(c);
    let nan2_32 = |x: f32, y: f32| x.is_nan() || y.is_nan();
    let nan2_64 = |x: f64, y: f64| x.is_nan() || y.is_nan();
    let snan2_32 = || is_snan32(a as u32) || is_snan32(b as u32);
    let snan2_64 = || is_snan64(a) || is_snan64(b);

    match op {
        FaddS => bin32(a32(), b32(), |x, y| x + y),
        FsubS => bin32(a32(), b32(), |x, y| x - y),
        FmulS => bin32(a32(), b32(), |x, y| x * y),
        FdivS => {
            let (x, y) = (a32(), b32());
            let r = x / y;
            let mut fl = arith_flags32(r, nan2_32(x, y));
            if y == 0.0 && !x.is_nan() && x != 0.0 && !x.is_infinite() {
                fl = flags::DZ;
            }
            FpResult {
                bits: canon32(r),
                flags: fl,
            }
        }
        FsqrtS => {
            let x = a32();
            let r = x.sqrt();
            let fl = if x < 0.0 { flags::NV } else { 0 };
            FpResult {
                bits: canon32(r),
                flags: fl,
            }
        }
        FaddD => bin64(a64(), b64(), |x, y| x + y),
        FsubD => bin64(a64(), b64(), |x, y| x - y),
        FmulD => bin64(a64(), b64(), |x, y| x * y),
        FdivD => {
            let (x, y) = (a64(), b64());
            let r = x / y;
            let mut fl = arith_flags64(r, nan2_64(x, y));
            if y == 0.0 && !x.is_nan() && x != 0.0 && !x.is_infinite() {
                fl = flags::DZ;
            }
            FpResult {
                bits: canon64(r),
                flags: fl,
            }
        }
        FsqrtD => {
            let x = a64();
            let r = x.sqrt();
            let fl = if x < 0.0 { flags::NV } else { 0 };
            FpResult {
                bits: canon64(r),
                flags: fl,
            }
        }
        FmaddS => fma32(a32(), b32(), c32(), 1.0, 1.0),
        FmsubS => fma32(a32(), b32(), c32(), 1.0, -1.0),
        FnmsubS => fma32(a32(), b32(), c32(), -1.0, 1.0),
        FnmaddS => fma32(a32(), b32(), c32(), -1.0, -1.0),
        FmaddD => fma64(a64(), b64(), c64(), 1.0, 1.0),
        FmsubD => fma64(a64(), b64(), c64(), 1.0, -1.0),
        FnmsubD => fma64(a64(), b64(), c64(), -1.0, 1.0),
        FnmaddD => fma64(a64(), b64(), c64(), -1.0, -1.0),
        FsgnjS => sgnj32(a, b, |s1, s2| {
            let _ = s1;
            s2
        }),
        FsgnjnS => sgnj32(a, b, |s1, s2| {
            let _ = s1;
            !s2
        }),
        FsgnjxS => sgnj32(a, b, |s1, s2| s1 ^ s2),
        FsgnjD => sgnj64(a, b, |s1, s2| {
            let _ = s1;
            s2
        }),
        FsgnjnD => sgnj64(a, b, |s1, s2| {
            let _ = s1;
            !s2
        }),
        FsgnjxD => sgnj64(a, b, |s1, s2| s1 ^ s2),
        FminS => minmax32(a32(), b32(), false, snan2_32()),
        FmaxS => minmax32(a32(), b32(), true, snan2_32()),
        FminD => minmax64(a64(), b64(), false, snan2_64()),
        FmaxD => minmax64(a64(), b64(), true, snan2_64()),
        FeqS => cmp(a32() == b32(), snan2_32()),
        FltS => cmp_signaling(a32() < b32(), nan2_32(a32(), b32())),
        FleS => cmp_signaling(a32() <= b32(), nan2_32(a32(), b32())),
        FeqD => cmp(a64() == b64(), snan2_64()),
        FltD => cmp_signaling(a64() < b64(), nan2_64(a64(), b64())),
        FleD => cmp_signaling(a64() <= b64(), nan2_64(a64(), b64())),
        FclassS => FpResult {
            bits: classify32(a),
            flags: 0,
        },
        FclassD => FpResult {
            bits: classify64(a),
            flags: 0,
        },
        FmvXW => FpResult {
            bits: a as u32 as i32 as i64 as u64,
            flags: 0,
        },
        FmvWX => FpResult {
            bits: box32(a as u32),
            flags: 0,
        },
        FmvXD => FpResult { bits: a, flags: 0 },
        FmvDX => FpResult { bits: a, flags: 0 },
        FcvtWS => cvt_to_int!(a32() as f64, rm, i32),
        FcvtWuS => cvt_to_int!(a32() as f64, rm, u32),
        FcvtLS => cvt_to_int!(a32() as f64, rm, i64),
        FcvtLuS => cvt_to_int!(a32() as f64, rm, u64),
        FcvtWD => cvt_to_int!(a64(), rm, i32),
        FcvtWuD => cvt_to_int!(a64(), rm, u32),
        FcvtLD => cvt_to_int!(a64(), rm, i64),
        FcvtLuD => cvt_to_int!(a64(), rm, u64),
        FcvtSW => from_int32(a as i32 as f64),
        FcvtSWu => from_int32(a as u32 as f64),
        FcvtSL => from_int32(a as i64 as f64),
        FcvtSLu => from_int32(a as f64),
        FcvtDW => FpResult {
            bits: canon64(a as i32 as f64),
            flags: 0,
        },
        FcvtDWu => FpResult {
            bits: canon64(a as u32 as f64),
            flags: 0,
        },
        FcvtDL => FpResult {
            bits: canon64(a as i64 as f64),
            flags: 0,
        },
        FcvtDLu => FpResult {
            bits: canon64(a as f64),
            flags: 0,
        },
        FcvtSD => {
            let x = a64();
            let r = x as f32;
            let nx = if !x.is_nan() && r as f64 != x {
                flags::NX
            } else {
                0
            };
            FpResult {
                bits: canon32(r),
                flags: nx,
            }
        }
        FcvtDS => FpResult {
            bits: canon64(a32() as f64),
            flags: 0,
        },
        _ => {
            debug_assert!(false, "fp_execute called on {op:?}");
            FpResult { bits: 0, flags: 0 }
        }
    }
}

fn bin32(x: f32, y: f32, f: impl Fn(f32, f32) -> f32) -> FpResult {
    let r = f(x, y);
    FpResult {
        bits: canon32(r),
        flags: arith_flags32(r, x.is_nan() || y.is_nan()),
    }
}

fn bin64(x: f64, y: f64, f: impl Fn(f64, f64) -> f64) -> FpResult {
    let r = f(x, y);
    FpResult {
        bits: canon64(r),
        flags: arith_flags64(r, x.is_nan() || y.is_nan()),
    }
}

fn fma32(a: f32, b: f32, c: f32, prod_sign: f32, add_sign: f32) -> FpResult {
    let r = (a * prod_sign).mul_add(b, c * add_sign);
    FpResult {
        bits: canon32(r),
        flags: arith_flags32(r, a.is_nan() || b.is_nan() || c.is_nan()),
    }
}

fn fma64(a: f64, b: f64, c: f64, prod_sign: f64, add_sign: f64) -> FpResult {
    let r = (a * prod_sign).mul_add(b, c * add_sign);
    FpResult {
        bits: canon64(r),
        flags: arith_flags64(r, a.is_nan() || b.is_nan() || c.is_nan()),
    }
}

fn sgnj32(a: u64, b: u64, f: impl Fn(bool, bool) -> bool) -> FpResult {
    let abits = if a >> 32 == 0xffff_ffff {
        a as u32
    } else {
        0x7fc0_0000
    };
    let bbits = if b >> 32 == 0xffff_ffff {
        b as u32
    } else {
        0x7fc0_0000
    };
    let sign = f(abits >> 31 != 0, bbits >> 31 != 0);
    let r = (abits & 0x7fff_ffff) | ((sign as u32) << 31);
    FpResult {
        bits: box32(r),
        flags: 0,
    }
}

fn sgnj64(a: u64, b: u64, f: impl Fn(bool, bool) -> bool) -> FpResult {
    let sign = f(a >> 63 != 0, b >> 63 != 0);
    FpResult {
        bits: (a & 0x7fff_ffff_ffff_ffff) | ((sign as u64) << 63),
        flags: 0,
    }
}

fn cmp(result: bool, snan: bool) -> FpResult {
    FpResult {
        bits: result as u64,
        flags: if snan { flags::NV } else { 0 },
    }
}

fn cmp_signaling(result: bool, any_nan: bool) -> FpResult {
    FpResult {
        bits: (result && !any_nan) as u64,
        flags: if any_nan { flags::NV } else { 0 },
    }
}

fn from_int32(x: f64) -> FpResult {
    let r = x as f32;
    let nx = if r as f64 != x { flags::NX } else { 0 };
    FpResult {
        bits: canon32(r),
        flags: nx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f64bits(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn double_arithmetic() {
        let r = fp_execute(Op::FaddD, f64bits(1.5), f64bits(2.25), 0, 0);
        assert_eq!(f64::from_bits(r.bits), 3.75);
        let r = fp_execute(Op::FmulD, f64bits(3.0), f64bits(-2.0), 0, 0);
        assert_eq!(f64::from_bits(r.bits), -6.0);
        let r = fp_execute(Op::FmaddD, f64bits(2.0), f64bits(3.0), f64bits(1.0), 0);
        assert_eq!(f64::from_bits(r.bits), 7.0);
        let r = fp_execute(Op::FnmaddD, f64bits(2.0), f64bits(3.0), f64bits(1.0), 0);
        assert_eq!(f64::from_bits(r.bits), -7.0);
        let r = fp_execute(Op::FmsubD, f64bits(2.0), f64bits(3.0), f64bits(1.0), 0);
        assert_eq!(f64::from_bits(r.bits), 5.0);
        let r = fp_execute(Op::FnmsubD, f64bits(2.0), f64bits(3.0), f64bits(1.0), 0);
        assert_eq!(f64::from_bits(r.bits), -5.0);
    }

    #[test]
    fn single_nan_boxing() {
        let a = 0xffff_ffff_0000_0000u64 | 1.5f32.to_bits() as u64;
        let b = 0xffff_ffff_0000_0000u64 | 2.5f32.to_bits() as u64;
        let r = fp_execute(Op::FaddS, a, b, 0, 0);
        assert_eq!(r.bits >> 32, 0xffff_ffff);
        assert_eq!(f32::from_bits(r.bits as u32), 4.0);
        // An unboxed operand reads as NaN.
        let r = fp_execute(Op::FaddS, 1.5f64.to_bits(), b, 0, 0);
        assert_eq!(r.bits, CANONICAL_NAN_F32);
    }

    #[test]
    fn nan_canonicalization() {
        let nan = f64::NAN.to_bits() | 0xdead; // a non-canonical NaN payload
        let r = fp_execute(Op::FaddD, nan, f64bits(1.0), 0, 0);
        assert_eq!(r.bits, CANONICAL_NAN_F64);
        assert_eq!(r.flags, 0, "quiet NaN propagation raises no flags");
    }

    #[test]
    fn division_flags() {
        let r = fp_execute(Op::FdivD, f64bits(1.0), f64bits(0.0), 0, 0);
        assert!(f64::from_bits(r.bits).is_infinite());
        assert_eq!(r.flags, flags::DZ);
        let r = fp_execute(Op::FdivD, f64bits(0.0), f64bits(0.0), 0, 0);
        assert_eq!(r.bits, CANONICAL_NAN_F64);
        assert_eq!(r.flags & flags::NV, flags::NV);
        let r = fp_execute(Op::FsqrtD, f64bits(-1.0), 0, 0, 0);
        assert_eq!(r.flags, flags::NV);
    }

    #[test]
    fn comparisons() {
        assert_eq!(fp_execute(Op::FltD, f64bits(1.0), f64bits(2.0), 0, 0).bits, 1);
        assert_eq!(fp_execute(Op::FleD, f64bits(2.0), f64bits(2.0), 0, 0).bits, 1);
        assert_eq!(fp_execute(Op::FeqD, f64bits(2.0), f64bits(3.0), 0, 0).bits, 0);
        // Comparisons with NaN: flt/fle signal, feq is quiet on qNaN.
        let nan = f64::NAN.to_bits();
        let r = fp_execute(Op::FltD, nan, f64bits(1.0), 0, 0);
        assert_eq!((r.bits, r.flags), (0, flags::NV));
        let r = fp_execute(Op::FeqD, nan, f64bits(1.0), 0, 0);
        assert_eq!((r.bits, r.flags), (0, 0));
    }

    #[test]
    fn min_max_zero_and_nan() {
        let r = fp_execute(Op::FminD, f64bits(-0.0), f64bits(0.0), 0, 0);
        assert_eq!(r.bits, (-0.0f64).to_bits());
        let r = fp_execute(Op::FmaxD, f64bits(-0.0), f64bits(0.0), 0, 0);
        assert_eq!(r.bits, 0.0f64.to_bits());
        // One NaN: the other operand wins.
        let r = fp_execute(Op::FmaxD, f64::NAN.to_bits(), f64bits(5.0), 0, 0);
        assert_eq!(f64::from_bits(r.bits), 5.0);
        let r = fp_execute(Op::FminD, f64::NAN.to_bits(), f64::NAN.to_bits(), 0, 0);
        assert_eq!(r.bits, CANONICAL_NAN_F64);
    }

    #[test]
    fn conversions_and_saturation() {
        let r = fp_execute(Op::FcvtWD, f64bits(-3.75), 0, 0, 1); // RTZ
        assert_eq!(r.bits as i64, -3);
        assert_eq!(r.flags, flags::NX);
        let r = fp_execute(Op::FcvtWD, f64bits(-3.75), 0, 0, 2); // RDN
        assert_eq!(r.bits as i64, -4);
        let r = fp_execute(Op::FcvtWD, f64bits(2.5), 0, 0, 0); // RNE
        assert_eq!(r.bits as i64, 2);
        let r = fp_execute(Op::FcvtWD, f64bits(3.5), 0, 0, 0); // RNE
        assert_eq!(r.bits as i64, 4);
        // Saturation.
        let r = fp_execute(Op::FcvtWD, f64bits(1e20), 0, 0, 1);
        assert_eq!((r.bits as i64, r.flags), (i32::MAX as i64, flags::NV));
        let r = fp_execute(Op::FcvtWD, f64bits(-1e20), 0, 0, 1);
        assert_eq!(r.bits as i64, i32::MIN as i64);
        let r = fp_execute(Op::FcvtWuD, f64bits(-1.0), 0, 0, 1);
        assert_eq!((r.bits, r.flags), (0, flags::NV));
        let r = fp_execute(Op::FcvtWD, f64::NAN.to_bits(), 0, 0, 1);
        assert_eq!(r.bits as i64, i32::MAX as i64);
        // Int to float and back.
        let r = fp_execute(Op::FcvtDL, (-42i64) as u64, 0, 0, 0);
        assert_eq!(f64::from_bits(r.bits), -42.0);
        let r = fp_execute(Op::FcvtDLu, u64::MAX, 0, 0, 0);
        assert!(f64::from_bits(r.bits) > 1.8e19);
    }

    #[test]
    fn sign_injection() {
        let r = fp_execute(Op::FsgnjD, f64bits(1.5), f64bits(-2.0), 0, 0);
        assert_eq!(f64::from_bits(r.bits), -1.5);
        let r = fp_execute(Op::FsgnjnD, f64bits(1.5), f64bits(-2.0), 0, 0);
        assert_eq!(f64::from_bits(r.bits), 1.5);
        let r = fp_execute(Op::FsgnjxD, f64bits(-1.5), f64bits(-2.0), 0, 0);
        assert_eq!(f64::from_bits(r.bits), 1.5);
    }

    #[test]
    fn classify() {
        assert_eq!(classify64(f64bits(-f64::INFINITY)), 1 << 0);
        assert_eq!(classify64(f64bits(-1.0)), 1 << 1);
        assert_eq!(classify64((-0.0f64).to_bits()), 1 << 3);
        assert_eq!(classify64(0), 1 << 4);
        assert_eq!(classify64(f64bits(1.0)), 1 << 6);
        assert_eq!(classify64(f64bits(f64::INFINITY)), 1 << 7);
        assert_eq!(classify64(CANONICAL_NAN_F64), 1 << 9);
        assert_eq!(classify64(1), 1 << 5); // smallest subnormal
        assert_eq!(classify32(CANONICAL_NAN_F32), 1 << 9);
        assert_eq!(classify32(0xffff_ffff_0000_0000 | 1.0f32.to_bits() as u64), 1 << 6);
    }

    #[test]
    fn fp_moves() {
        let r = fp_execute(Op::FmvXD, f64bits(1.0), 0, 0, 0);
        assert_eq!(r.bits, f64bits(1.0));
        let r = fp_execute(Op::FmvWX, 0x3f80_0000, 0, 0, 0);
        assert_eq!(unbox32(r.bits), 1.0);
        // fmv.x.w sign-extends bit 31.
        let boxed = 0xffff_ffff_0000_0000u64 | 0x8000_0000;
        let r = fp_execute(Op::FmvXW, boxed, 0, 0, 0);
        assert_eq!(r.bits, 0xffff_ffff_8000_0000);
    }

    #[test]
    fn float_double_conversion() {
        let r = fp_execute(Op::FcvtSD, f64bits(1.5), 0, 0, 0);
        assert_eq!(unbox32(r.bits), 1.5);
        let r = fp_execute(Op::FcvtSD, f64bits(1.0 + 1e-12), 0, 0, 0);
        assert_eq!(r.flags, flags::NX);
        let boxed = 0xffff_ffff_0000_0000u64 | 2.5f32.to_bits() as u64;
        let r = fp_execute(Op::FcvtDS, boxed, 0, 0, 0);
        assert_eq!(f64::from_bits(r.bits), 2.5);
    }
}
