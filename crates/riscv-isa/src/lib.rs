//! RV64GCB instruction-set substrate for the MINJIE/XiangShan reproduction.
//!
//! This crate provides everything the rest of the workspace builds on:
//!
//! - [`op`] / [`decode`](mod@decode) / [`encode`] / [`disasm`]: the RV64IMAFDC + Zba/Zbb
//!   instruction set (decode of both 32-bit and compressed encodings,
//!   encoders for the 32-bit forms, and a disassembler),
//! - [`exec`]: pure functions giving the architectural semantics of the
//!   integer instructions (shared by every interpreter and the core model),
//! - [`csr`] / [`trap`]: machine- and supervisor-mode CSRs, privilege
//!   levels, and trap entry/return,
//! - [`mmu`]: the Sv39 page-table walker,
//! - [`mem`]: a sparse, copy-on-write physical memory (the substrate of the
//!   LightSSS snapshot mechanism),
//! - [`softfloat`]: exact-rounding software floating point (the analogue of
//!   Berkeley SoftFloat used by the Spike-like baseline interpreter),
//! - [`fpu`]: host-float-backed floating point with RISC-V NaN boxing (the
//!   analogue of NEMU's host-FP fast path),
//! - [`asm`]: an in-Rust assembler/program builder used by the workload
//!   suite,
//! - [`state`]: the architectural-state container that DiffTest compares.
//!
//! # Example
//!
//! ```
//! use riscv_isa::decode::decode32;
//! use riscv_isa::op::Op;
//!
//! // addi x5, x0, 42
//! let inst = decode32(0x02a0_0293);
//! assert_eq!(inst.op, Op::Addi);
//! assert_eq!(inst.rd, 5);
//! assert_eq!(inst.imm, 42);
//! ```

pub mod asm;
pub mod csr;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod exec;
pub mod fpu;
pub mod mem;
pub mod mmu;
pub mod op;
pub mod softfloat;
pub mod state;
pub mod trap;

pub use decode::{decode, decode16, decode32};
pub use mem::SparseMemory;
pub use op::{DecodedInst, Op};
pub use state::ArchState;
pub use trap::Exception;

/// Number of integer architectural registers.
pub const NUM_GPR: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FPR: usize = 32;
