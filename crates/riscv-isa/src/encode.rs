//! Instruction encoding (32-bit forms only).
//!
//! [`encode`] is the inverse of [`crate::decode::decode32`] for every
//! supported operation; the assembler in [`crate::asm`] is built on top of
//! it. Compressed encodings are decode-only in this crate — the workload
//! suite always emits 4-byte forms, while the decoder accepts both.

use crate::op::{DecodedInst, Op};

#[inline]
fn r_type(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8) -> u32 {
    (funct7 << 25) | ((rs2 as u32) << 20) | ((rs1 as u32) << 15) | (funct3 << 12) | ((rd as u32) << 7)
}

#[inline]
fn i_type(imm: i64, rs1: u8, funct3: u32, rd: u8) -> u32 {
    (((imm as u32) & 0xfff) << 20) | ((rs1 as u32) << 15) | (funct3 << 12) | ((rd as u32) << 7)
}

#[inline]
fn s_type(imm: i64, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
}

#[inline]
fn b_type(imm: i64, rs2: u8, rs1: u8, funct3: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
}

#[inline]
fn u_type(imm: i64, rd: u8) -> u32 {
    ((imm as u32) & 0xffff_f000) | ((rd as u32) << 7)
}

#[inline]
fn j_type(imm: i64, rd: u8) -> u32 {
    let imm = imm as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | ((rd as u32) << 7)
}

/// Encode a decoded instruction back into its 32-bit form.
///
/// Returns `None` for [`Op::Illegal`]. The `rm` field is honored for
/// floating-point operations; everything else re-derives funct3 from the
/// operation itself.
///
/// ```
/// use riscv_isa::{decode32, encode::encode, op::{DecodedInst, Op}};
/// let inst = DecodedInst { op: Op::Add, rd: 3, rs1: 1, rs2: 2, ..Default::default() };
/// let raw = encode(&inst).expect("encodable");
/// assert_eq!(decode32(raw).op, Op::Add);
/// ```
pub fn encode(d: &DecodedInst) -> Option<u32> {
    use Op::*;
    let (rd, rs1, rs2, rs3, imm) = (d.rd, d.rs1, d.rs2, d.rs3, d.imm);
    let rm = (d.rm & 0x7) as u32;

    let raw = match d.op {
        Lui => u_type(imm, rd) | 0x37,
        Auipc => u_type(imm, rd) | 0x17,
        Jal => j_type(imm, rd) | 0x6f,
        Jalr => i_type(imm, rs1, 0, rd) | 0x67,
        Beq => b_type(imm, rs2, rs1, 0) | 0x63,
        Bne => b_type(imm, rs2, rs1, 1) | 0x63,
        Blt => b_type(imm, rs2, rs1, 4) | 0x63,
        Bge => b_type(imm, rs2, rs1, 5) | 0x63,
        Bltu => b_type(imm, rs2, rs1, 6) | 0x63,
        Bgeu => b_type(imm, rs2, rs1, 7) | 0x63,
        Lb => i_type(imm, rs1, 0, rd) | 0x03,
        Lh => i_type(imm, rs1, 1, rd) | 0x03,
        Lw => i_type(imm, rs1, 2, rd) | 0x03,
        Ld => i_type(imm, rs1, 3, rd) | 0x03,
        Lbu => i_type(imm, rs1, 4, rd) | 0x03,
        Lhu => i_type(imm, rs1, 5, rd) | 0x03,
        Lwu => i_type(imm, rs1, 6, rd) | 0x03,
        Sb => s_type(imm, rs2, rs1, 0) | 0x23,
        Sh => s_type(imm, rs2, rs1, 1) | 0x23,
        Sw => s_type(imm, rs2, rs1, 2) | 0x23,
        Sd => s_type(imm, rs2, rs1, 3) | 0x23,
        Addi => i_type(imm, rs1, 0, rd) | 0x13,
        Slti => i_type(imm, rs1, 2, rd) | 0x13,
        Sltiu => i_type(imm, rs1, 3, rd) | 0x13,
        Xori => i_type(imm, rs1, 4, rd) | 0x13,
        Ori => i_type(imm, rs1, 6, rd) | 0x13,
        Andi => i_type(imm, rs1, 7, rd) | 0x13,
        Slli => i_type(imm & 0x3f, rs1, 1, rd) | 0x13,
        Srli => i_type(imm & 0x3f, rs1, 5, rd) | 0x13,
        Srai => i_type((imm & 0x3f) | 0x400, rs1, 5, rd) | 0x13,
        Add => r_type(0x00, rs2, rs1, 0, rd) | 0x33,
        Sub => r_type(0x20, rs2, rs1, 0, rd) | 0x33,
        Sll => r_type(0x00, rs2, rs1, 1, rd) | 0x33,
        Slt => r_type(0x00, rs2, rs1, 2, rd) | 0x33,
        Sltu => r_type(0x00, rs2, rs1, 3, rd) | 0x33,
        Xor => r_type(0x00, rs2, rs1, 4, rd) | 0x33,
        Srl => r_type(0x00, rs2, rs1, 5, rd) | 0x33,
        Sra => r_type(0x20, rs2, rs1, 5, rd) | 0x33,
        Or => r_type(0x00, rs2, rs1, 6, rd) | 0x33,
        And => r_type(0x00, rs2, rs1, 7, rd) | 0x33,
        Addiw => i_type(imm, rs1, 0, rd) | 0x1b,
        Slliw => i_type(imm & 0x1f, rs1, 1, rd) | 0x1b,
        Srliw => i_type(imm & 0x1f, rs1, 5, rd) | 0x1b,
        Sraiw => i_type((imm & 0x1f) | 0x400, rs1, 5, rd) | 0x1b,
        Addw => r_type(0x00, rs2, rs1, 0, rd) | 0x3b,
        Subw => r_type(0x20, rs2, rs1, 0, rd) | 0x3b,
        Sllw => r_type(0x00, rs2, rs1, 1, rd) | 0x3b,
        Srlw => r_type(0x00, rs2, rs1, 5, rd) | 0x3b,
        Sraw => r_type(0x20, rs2, rs1, 5, rd) | 0x3b,
        Fence => i_type(0, 0, 0, 0) | 0x0f,
        FenceI => i_type(0, 0, 1, 0) | 0x0f,
        Ecall => 0x0000_0073,
        Ebreak => 0x0010_0073,
        Csrrw => i_type(imm, rs1, 1, rd) | 0x73,
        Csrrs => i_type(imm, rs1, 2, rd) | 0x73,
        Csrrc => i_type(imm, rs1, 3, rd) | 0x73,
        Csrrwi => i_type(imm, rs1, 5, rd) | 0x73,
        Csrrsi => i_type(imm, rs1, 6, rd) | 0x73,
        Csrrci => i_type(imm, rs1, 7, rd) | 0x73,
        Mul => r_type(0x01, rs2, rs1, 0, rd) | 0x33,
        Mulh => r_type(0x01, rs2, rs1, 1, rd) | 0x33,
        Mulhsu => r_type(0x01, rs2, rs1, 2, rd) | 0x33,
        Mulhu => r_type(0x01, rs2, rs1, 3, rd) | 0x33,
        Div => r_type(0x01, rs2, rs1, 4, rd) | 0x33,
        Divu => r_type(0x01, rs2, rs1, 5, rd) | 0x33,
        Rem => r_type(0x01, rs2, rs1, 6, rd) | 0x33,
        Remu => r_type(0x01, rs2, rs1, 7, rd) | 0x33,
        Mulw => r_type(0x01, rs2, rs1, 0, rd) | 0x3b,
        Divw => r_type(0x01, rs2, rs1, 4, rd) | 0x3b,
        Divuw => r_type(0x01, rs2, rs1, 5, rd) | 0x3b,
        Remw => r_type(0x01, rs2, rs1, 6, rd) | 0x3b,
        Remuw => r_type(0x01, rs2, rs1, 7, rd) | 0x3b,
        LrW => amo(0x02, 0, rs1, 2, rd),
        ScW => amo(0x03, rs2, rs1, 2, rd),
        AmoswapW => amo(0x01, rs2, rs1, 2, rd),
        AmoaddW => amo(0x00, rs2, rs1, 2, rd),
        AmoxorW => amo(0x04, rs2, rs1, 2, rd),
        AmoandW => amo(0x0c, rs2, rs1, 2, rd),
        AmoorW => amo(0x08, rs2, rs1, 2, rd),
        AmominW => amo(0x10, rs2, rs1, 2, rd),
        AmomaxW => amo(0x14, rs2, rs1, 2, rd),
        AmominuW => amo(0x18, rs2, rs1, 2, rd),
        AmomaxuW => amo(0x1c, rs2, rs1, 2, rd),
        LrD => amo(0x02, 0, rs1, 3, rd),
        ScD => amo(0x03, rs2, rs1, 3, rd),
        AmoswapD => amo(0x01, rs2, rs1, 3, rd),
        AmoaddD => amo(0x00, rs2, rs1, 3, rd),
        AmoxorD => amo(0x04, rs2, rs1, 3, rd),
        AmoandD => amo(0x0c, rs2, rs1, 3, rd),
        AmoorD => amo(0x08, rs2, rs1, 3, rd),
        AmominD => amo(0x10, rs2, rs1, 3, rd),
        AmomaxD => amo(0x14, rs2, rs1, 3, rd),
        AmominuD => amo(0x18, rs2, rs1, 3, rd),
        AmomaxuD => amo(0x1c, rs2, rs1, 3, rd),
        Flw => i_type(imm, rs1, 2, rd) | 0x07,
        Fld => i_type(imm, rs1, 3, rd) | 0x07,
        Fsw => s_type(imm, rs2, rs1, 2) | 0x27,
        Fsd => s_type(imm, rs2, rs1, 3) | 0x27,
        FmaddS => fma(0x43, 0, rs3, rs2, rs1, rm, rd),
        FmsubS => fma(0x47, 0, rs3, rs2, rs1, rm, rd),
        FnmsubS => fma(0x4b, 0, rs3, rs2, rs1, rm, rd),
        FnmaddS => fma(0x4f, 0, rs3, rs2, rs1, rm, rd),
        FmaddD => fma(0x43, 1, rs3, rs2, rs1, rm, rd),
        FmsubD => fma(0x47, 1, rs3, rs2, rs1, rm, rd),
        FnmsubD => fma(0x4b, 1, rs3, rs2, rs1, rm, rd),
        FnmaddD => fma(0x4f, 1, rs3, rs2, rs1, rm, rd),
        FaddS => r_type(0x00, rs2, rs1, rm, rd) | 0x53,
        FsubS => r_type(0x04, rs2, rs1, rm, rd) | 0x53,
        FmulS => r_type(0x08, rs2, rs1, rm, rd) | 0x53,
        FdivS => r_type(0x0c, rs2, rs1, rm, rd) | 0x53,
        FsqrtS => r_type(0x2c, 0, rs1, rm, rd) | 0x53,
        FaddD => r_type(0x01, rs2, rs1, rm, rd) | 0x53,
        FsubD => r_type(0x05, rs2, rs1, rm, rd) | 0x53,
        FmulD => r_type(0x09, rs2, rs1, rm, rd) | 0x53,
        FdivD => r_type(0x0d, rs2, rs1, rm, rd) | 0x53,
        FsqrtD => r_type(0x2d, 0, rs1, rm, rd) | 0x53,
        FsgnjS => r_type(0x10, rs2, rs1, 0, rd) | 0x53,
        FsgnjnS => r_type(0x10, rs2, rs1, 1, rd) | 0x53,
        FsgnjxS => r_type(0x10, rs2, rs1, 2, rd) | 0x53,
        FsgnjD => r_type(0x11, rs2, rs1, 0, rd) | 0x53,
        FsgnjnD => r_type(0x11, rs2, rs1, 1, rd) | 0x53,
        FsgnjxD => r_type(0x11, rs2, rs1, 2, rd) | 0x53,
        FminS => r_type(0x14, rs2, rs1, 0, rd) | 0x53,
        FmaxS => r_type(0x14, rs2, rs1, 1, rd) | 0x53,
        FminD => r_type(0x15, rs2, rs1, 0, rd) | 0x53,
        FmaxD => r_type(0x15, rs2, rs1, 1, rd) | 0x53,
        FcvtSD => r_type(0x20, 1, rs1, rm, rd) | 0x53,
        FcvtDS => r_type(0x21, 0, rs1, rm, rd) | 0x53,
        FeqS => r_type(0x50, rs2, rs1, 2, rd) | 0x53,
        FltS => r_type(0x50, rs2, rs1, 1, rd) | 0x53,
        FleS => r_type(0x50, rs2, rs1, 0, rd) | 0x53,
        FeqD => r_type(0x51, rs2, rs1, 2, rd) | 0x53,
        FltD => r_type(0x51, rs2, rs1, 1, rd) | 0x53,
        FleD => r_type(0x51, rs2, rs1, 0, rd) | 0x53,
        FcvtWS => r_type(0x60, 0, rs1, rm, rd) | 0x53,
        FcvtWuS => r_type(0x60, 1, rs1, rm, rd) | 0x53,
        FcvtLS => r_type(0x60, 2, rs1, rm, rd) | 0x53,
        FcvtLuS => r_type(0x60, 3, rs1, rm, rd) | 0x53,
        FcvtWD => r_type(0x61, 0, rs1, rm, rd) | 0x53,
        FcvtWuD => r_type(0x61, 1, rs1, rm, rd) | 0x53,
        FcvtLD => r_type(0x61, 2, rs1, rm, rd) | 0x53,
        FcvtLuD => r_type(0x61, 3, rs1, rm, rd) | 0x53,
        FcvtSW => r_type(0x68, 0, rs1, rm, rd) | 0x53,
        FcvtSWu => r_type(0x68, 1, rs1, rm, rd) | 0x53,
        FcvtSL => r_type(0x68, 2, rs1, rm, rd) | 0x53,
        FcvtSLu => r_type(0x68, 3, rs1, rm, rd) | 0x53,
        FcvtDW => r_type(0x69, 0, rs1, rm, rd) | 0x53,
        FcvtDWu => r_type(0x69, 1, rs1, rm, rd) | 0x53,
        FcvtDL => r_type(0x69, 2, rs1, rm, rd) | 0x53,
        FcvtDLu => r_type(0x69, 3, rs1, rm, rd) | 0x53,
        FmvXW => r_type(0x70, 0, rs1, 0, rd) | 0x53,
        FclassS => r_type(0x70, 0, rs1, 1, rd) | 0x53,
        FmvXD => r_type(0x71, 0, rs1, 0, rd) | 0x53,
        FclassD => r_type(0x71, 0, rs1, 1, rd) | 0x53,
        FmvWX => r_type(0x78, 0, rs1, 0, rd) | 0x53,
        FmvDX => r_type(0x79, 0, rs1, 0, rd) | 0x53,
        Mret => 0x3020_0073,
        Sret => 0x1020_0073,
        Wfi => 0x1050_0073,
        SfenceVma => r_type(0x09, rs2, rs1, 0, 0) | 0x73,
        Sh1add => r_type(0x10, rs2, rs1, 2, rd) | 0x33,
        Sh2add => r_type(0x10, rs2, rs1, 4, rd) | 0x33,
        Sh3add => r_type(0x10, rs2, rs1, 6, rd) | 0x33,
        AddUw => r_type(0x04, rs2, rs1, 0, rd) | 0x3b,
        Sh1addUw => r_type(0x10, rs2, rs1, 2, rd) | 0x3b,
        Sh2addUw => r_type(0x10, rs2, rs1, 4, rd) | 0x3b,
        Sh3addUw => r_type(0x10, rs2, rs1, 6, rd) | 0x3b,
        SlliUw => i_type((imm & 0x3f) | 0x080, rs1, 1, rd) | 0x1b,
        Andn => r_type(0x20, rs2, rs1, 7, rd) | 0x33,
        Orn => r_type(0x20, rs2, rs1, 6, rd) | 0x33,
        Xnor => r_type(0x20, rs2, rs1, 4, rd) | 0x33,
        Clz => i_type(0x600, rs1, 1, rd) | 0x13,
        Ctz => i_type(0x601, rs1, 1, rd) | 0x13,
        Cpop => i_type(0x602, rs1, 1, rd) | 0x13,
        Clzw => i_type(0x600, rs1, 1, rd) | 0x1b,
        Ctzw => i_type(0x601, rs1, 1, rd) | 0x1b,
        Cpopw => i_type(0x602, rs1, 1, rd) | 0x1b,
        Max => r_type(0x05, rs2, rs1, 6, rd) | 0x33,
        Min => r_type(0x05, rs2, rs1, 4, rd) | 0x33,
        Maxu => r_type(0x05, rs2, rs1, 7, rd) | 0x33,
        Minu => r_type(0x05, rs2, rs1, 5, rd) | 0x33,
        SextB => i_type(0x604, rs1, 1, rd) | 0x13,
        SextH => i_type(0x605, rs1, 1, rd) | 0x13,
        ZextH => r_type(0x04, 0, rs1, 4, rd) | 0x3b,
        Rol => r_type(0x30, rs2, rs1, 1, rd) | 0x33,
        Ror => r_type(0x30, rs2, rs1, 5, rd) | 0x33,
        Rori => i_type((imm & 0x3f) | 0x600, rs1, 5, rd) | 0x13,
        Rolw => r_type(0x30, rs2, rs1, 1, rd) | 0x3b,
        Rorw => r_type(0x30, rs2, rs1, 5, rd) | 0x3b,
        Roriw => i_type((imm & 0x1f) | 0x600, rs1, 5, rd) | 0x1b,
        OrcB => i_type(0x287, rs1, 5, rd) | 0x13,
        Rev8 => i_type(0x6b8, rs1, 5, rd) | 0x13,
        Illegal => return None,
    };
    Some(raw)
}

#[inline]
fn amo(funct5: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8) -> u32 {
    // aq/rl bits are left clear; the decoder ignores them.
    (funct5 << 27)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | 0x2f
}

#[inline]
fn fma(opcode: u32, fmt: u32, rs3: u8, rs2: u8, rs1: u8, rm: u32, rd: u8) -> u32 {
    ((rs3 as u32) << 27)
        | (fmt << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (rm << 12)
        | ((rd as u32) << 7)
        | opcode
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode32;

    fn roundtrip(d: DecodedInst) {
        let raw = encode(&d).unwrap_or_else(|| panic!("{:?} must encode", d.op));
        let back = decode32(raw);
        assert_eq!(back.op, d.op, "op mismatch for {raw:#010x}");
        assert_eq!(back.rd, d.rd, "rd mismatch for {:?}", d.op);
        assert_eq!(back.rs1, d.rs1, "rs1 mismatch for {:?}", d.op);
    }

    #[test]
    fn roundtrip_alu() {
        for op in [
            Op::Add,
            Op::Sub,
            Op::Xor,
            Op::Sll,
            Op::Sra,
            Op::Mul,
            Op::Divu,
            Op::Sh2add,
            Op::Andn,
            Op::Max,
            Op::Rol,
        ] {
            roundtrip(DecodedInst {
                op,
                rd: 7,
                rs1: 11,
                rs2: 13,
                ..Default::default()
            });
        }
    }

    #[test]
    fn roundtrip_imm_ops() {
        for (op, imm) in [
            (Op::Addi, -2048),
            (Op::Andi, 2047),
            (Op::Slli, 63),
            (Op::Srai, 63),
            (Op::Rori, 17),
            (Op::Lw, -4),
            (Op::Ld, 2040),
            (Op::Jalr, 16),
        ] {
            let d = DecodedInst {
                op,
                rd: 5,
                rs1: 6,
                imm,
                ..Default::default()
            };
            let raw = encode(&d).unwrap();
            let back = decode32(raw);
            assert_eq!((back.op, back.imm), (op, imm));
        }
    }

    #[test]
    fn roundtrip_branch_store_jump() {
        let d = DecodedInst {
            op: Op::Beq,
            rs1: 1,
            rs2: 2,
            imm: -4096,
            ..Default::default()
        };
        let back = decode32(encode(&d).unwrap());
        assert_eq!(back.imm, -4096);

        let d = DecodedInst {
            op: Op::Sd,
            rs1: 2,
            rs2: 8,
            imm: -8,
            ..Default::default()
        };
        let back = decode32(encode(&d).unwrap());
        assert_eq!((back.op, back.imm), (Op::Sd, -8));

        let d = DecodedInst {
            op: Op::Jal,
            rd: 1,
            imm: -1048576,
            ..Default::default()
        };
        let back = decode32(encode(&d).unwrap());
        assert_eq!(back.imm, -1048576);
    }

    #[test]
    fn roundtrip_fp() {
        for op in [Op::FaddD, Op::FmulS, Op::FcvtDW, Op::FmvXD, Op::FeqD] {
            roundtrip(DecodedInst {
                op,
                rd: 3,
                rs1: 4,
                rs2: 5,
                rm: 0,
                ..Default::default()
            });
        }
        let d = DecodedInst {
            op: Op::FmaddD,
            rd: 1,
            rs1: 2,
            rs2: 3,
            rs3: 4,
            rm: 7,
            ..Default::default()
        };
        let back = decode32(encode(&d).unwrap());
        assert_eq!((back.op, back.rs3, back.rm), (Op::FmaddD, 4, 7));
    }

    #[test]
    fn roundtrip_amo_and_system() {
        for op in [Op::LrD, Op::ScW, Op::AmomaxuD, Op::AmoswapW] {
            roundtrip(DecodedInst {
                op,
                rd: 9,
                rs1: 10,
                rs2: 11,
                ..Default::default()
            });
        }
        assert_eq!(decode32(encode(&DecodedInst { op: Op::Mret, ..Default::default() }).unwrap()).op, Op::Mret);
        assert_eq!(decode32(encode(&DecodedInst { op: Op::Ecall, ..Default::default() }).unwrap()).op, Op::Ecall);
    }

    #[test]
    fn illegal_does_not_encode() {
        assert_eq!(encode(&DecodedInst::default()), None);
    }
}
