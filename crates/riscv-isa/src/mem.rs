//! Sparse, copy-on-write physical memory.
//!
//! [`SparseMemory`] stores guest memory as 4 KiB pages behind [`Arc`]s.
//! Cloning it is cheap — only the page table is copied, the pages
//! themselves are shared and duplicated lazily on the next write. This is
//! the substrate of the LightSSS snapshot mechanism: where the paper uses
//! `fork()` and the kernel's copy-on-write, this reproduction uses
//! `Arc::make_mut` and language-level copy-on-write (see DESIGN.md §5.3).

use std::collections::HashMap;
use std::sync::Arc;

/// Page size in bytes (matches the Sv39 base page).
pub const PAGE_SIZE: u64 = 4096;
const PAGE_MASK: u64 = PAGE_SIZE - 1;

type Page = [u8; PAGE_SIZE as usize];

/// Abstract byte-addressed physical memory.
///
/// Implemented by [`SparseMemory`] and by the cache hierarchy front doors
/// in `uncore`, so interpreters and the core model are generic over where
/// their memory traffic actually goes.
pub trait PhysMem {
    /// Read `buf.len()` bytes starting at physical address `addr`.
    fn read(&mut self, addr: u64, buf: &mut [u8]);
    /// Write `buf` starting at physical address `addr`.
    fn write(&mut self, addr: u64, buf: &[u8]);

    /// Read an unsigned little-endian value of `size` bytes (1/2/4/8).
    fn read_uint(&mut self, addr: u64, size: u64) -> u64 {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..size as usize]);
        u64::from_le_bytes(buf)
    }

    /// Write the low `size` bytes of `value` little-endian.
    fn write_uint(&mut self, addr: u64, size: u64, value: u64) {
        let buf = value.to_le_bytes();
        self.write(addr, &buf[..size as usize]);
    }

    /// Fetch 32 bits for instruction decode (may cross a page boundary).
    fn fetch32(&mut self, addr: u64) -> u32 {
        self.read_uint(addr, 4) as u32
    }
}

/// Sparse copy-on-write physical memory.
///
/// Unbacked reads return zero; writes allocate pages on demand.
///
/// # Example
///
/// ```
/// use riscv_isa::mem::{PhysMem, SparseMemory};
/// let mut mem = SparseMemory::new();
/// mem.write_uint(0x8000_0000, 8, 0xdead_beef);
/// assert_eq!(mem.read_uint(0x8000_0000, 8), 0xdead_beef);
///
/// // Snapshots are cheap: pages are shared until written.
/// let snapshot = mem.clone();
/// mem.write_uint(0x8000_0000, 8, 1);
/// assert_eq!(snapshot.clone().read_uint(0x8000_0000, 8), 0xdead_beef);
/// ```
#[derive(Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Arc<Page>>,
}

impl std::fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseMemory")
            .field("resident_pages", &self.pages.len())
            .finish()
    }
}

impl SparseMemory {
    /// Create an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resident (allocated) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages whose storage is currently shared with a snapshot.
    ///
    /// Used by the LightSSS evaluation to observe copy-on-write behavior.
    pub fn shared_pages(&self) -> usize {
        self.pages
            .values()
            .filter(|p| Arc::strong_count(p) > 1)
            .count()
    }

    /// Copy a byte slice into memory (used by program loaders).
    pub fn load_image(&mut self, addr: u64, image: &[u8]) {
        self.write(addr, image);
    }

    /// Serialize the entire memory eagerly into a flat byte buffer.
    ///
    /// This is deliberately expensive — it is the "SSS" baseline snapshot
    /// of paper §III-C2, contrasted against the incremental COW clone.
    pub fn serialize_full(&self) -> Vec<u8> {
        let mut keys: Vec<_> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        let mut out = Vec::with_capacity(16 + self.pages.len() * (8 + PAGE_SIZE as usize));
        out.extend_from_slice(&(self.pages.len() as u64).to_le_bytes());
        for k in keys {
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&self.pages[&k][..]);
        }
        out
    }

    /// Rebuild a memory from the output of [`Self::serialize_full`].
    ///
    /// # Panics
    ///
    /// Panics if the buffer is truncated or malformed.
    pub fn deserialize_full(data: &[u8]) -> Self {
        let n = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
        let mut pages = HashMap::with_capacity(n);
        let mut off = 8;
        for _ in 0..n {
            let k = u64::from_le_bytes(data[off..off + 8].try_into().unwrap());
            off += 8;
            let mut page = [0u8; PAGE_SIZE as usize];
            page.copy_from_slice(&data[off..off + PAGE_SIZE as usize]);
            off += PAGE_SIZE as usize;
            pages.insert(k, Arc::new(page));
        }
        SparseMemory { pages }
    }

    #[inline]
    fn page_mut(&mut self, page_idx: u64) -> &mut Page {
        Arc::make_mut(
            self.pages
                .entry(page_idx)
                .or_insert_with(|| Arc::new([0u8; PAGE_SIZE as usize])),
        )
    }
}

impl PhysMem for SparseMemory {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let mut addr = addr;
        let mut done = 0;
        while done < buf.len() {
            let page_idx = addr / PAGE_SIZE;
            let off = (addr & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE as usize - off) as usize).min(buf.len() - done);
            match self.pages.get(&page_idx) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            addr += n as u64;
        }
    }

    fn write(&mut self, addr: u64, buf: &[u8]) {
        let mut addr = addr;
        let mut done = 0;
        while done < buf.len() {
            let page_idx = addr / PAGE_SIZE;
            let off = (addr & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE as usize - off) as usize).min(buf.len() - done);
            self.page_mut(page_idx)[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            addr += n as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_on_unbacked_read() {
        let mut m = SparseMemory::new();
        assert_eq!(m.read_uint(0x1234, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_uint(0x8000_0000, 8, 0x1122_3344_5566_7788);
        assert_eq!(m.read_uint(0x8000_0000, 8), 0x1122_3344_5566_7788);
        assert_eq!(m.read_uint(0x8000_0004, 4), 0x1122_3344);
        assert_eq!(m.read_uint(0x8000_0000, 1), 0x88);
    }

    #[test]
    fn page_crossing_access() {
        let mut m = SparseMemory::new();
        let addr = PAGE_SIZE - 4;
        m.write_uint(addr, 8, 0xaabb_ccdd_eeff_0011);
        assert_eq!(m.read_uint(addr, 8), 0xaabb_ccdd_eeff_0011);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn cow_snapshot_isolation() {
        let mut m = SparseMemory::new();
        m.write_uint(0x1000, 8, 42);
        let snap = m.clone();
        assert_eq!(m.shared_pages(), 1);
        m.write_uint(0x1000, 8, 99);
        // The write duplicated the page; the snapshot sees the old value.
        let mut snap = snap;
        assert_eq!(snap.read_uint(0x1000, 8), 42);
        assert_eq!(m.read_uint(0x1000, 8), 99);
        assert_eq!(m.shared_pages(), 0);
    }

    #[test]
    fn full_serialization_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_uint(0x0, 8, 1);
        m.write_uint(0x10_0000, 8, 2);
        m.write_uint(0xdead_b000, 4, 3);
        let blob = m.serialize_full();
        let mut back = SparseMemory::deserialize_full(&blob);
        assert_eq!(back.read_uint(0x0, 8), 1);
        assert_eq!(back.read_uint(0x10_0000, 8), 2);
        assert_eq!(back.read_uint(0xdead_b000, 4), 3);
        assert_eq!(back.resident_pages(), m.resident_pages());
    }

    #[test]
    fn load_image_places_bytes() {
        let mut m = SparseMemory::new();
        m.load_image(0x8000_0000, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_uint(0x8000_0000, 4), 0x0403_0201);
        assert_eq!(m.read_uint(0x8000_0004, 1), 5);
    }
}
