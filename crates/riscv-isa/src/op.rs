//! Operation codes and the decoded-instruction representation.
//!
//! [`Op`] enumerates every operation in the supported subset (RV64IMAFDC +
//! Zba + Zbb + Zicsr + Zifencei + privileged instructions). Compressed
//! instructions decode into the same [`Op`] space, so everything downstream
//! of the decoder is encoding-agnostic — mirroring how XiangShan's decoder
//! expands RVC into full micro-ops.

use serde::{Deserialize, Serialize};

/// Every operation in the supported RV64GCB subset.
///
/// Word-sized (`*w`) variants are separate operations, as are the `.s`
/// (single) and `.d` (double) floating-point forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Op {
    // RV32I / RV64I
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Ld,
    Lbu,
    Lhu,
    Lwu,
    Sb,
    Sh,
    Sw,
    Sd,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Addiw,
    Slliw,
    Srliw,
    Sraiw,
    Addw,
    Subw,
    Sllw,
    Srlw,
    Sraw,
    Fence,
    FenceI,
    Ecall,
    Ebreak,
    // Zicsr
    Csrrw,
    Csrrs,
    Csrrc,
    Csrrwi,
    Csrrsi,
    Csrrci,
    // RV64M
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Mulw,
    Divw,
    Divuw,
    Remw,
    Remuw,
    // RV64A
    LrW,
    ScW,
    AmoswapW,
    AmoaddW,
    AmoxorW,
    AmoandW,
    AmoorW,
    AmominW,
    AmomaxW,
    AmominuW,
    AmomaxuW,
    LrD,
    ScD,
    AmoswapD,
    AmoaddD,
    AmoxorD,
    AmoandD,
    AmoorD,
    AmominD,
    AmomaxD,
    AmominuD,
    AmomaxuD,
    // RV64F
    Flw,
    Fsw,
    FmaddS,
    FmsubS,
    FnmsubS,
    FnmaddS,
    FaddS,
    FsubS,
    FmulS,
    FdivS,
    FsqrtS,
    FsgnjS,
    FsgnjnS,
    FsgnjxS,
    FminS,
    FmaxS,
    FcvtWS,
    FcvtWuS,
    FcvtLS,
    FcvtLuS,
    FmvXW,
    FeqS,
    FltS,
    FleS,
    FclassS,
    FcvtSW,
    FcvtSWu,
    FcvtSL,
    FcvtSLu,
    FmvWX,
    // RV64D
    Fld,
    Fsd,
    FmaddD,
    FmsubD,
    FnmsubD,
    FnmaddD,
    FaddD,
    FsubD,
    FmulD,
    FdivD,
    FsqrtD,
    FsgnjD,
    FsgnjnD,
    FsgnjxD,
    FminD,
    FmaxD,
    FcvtSD,
    FcvtDS,
    FeqD,
    FltD,
    FleD,
    FclassD,
    FcvtWD,
    FcvtWuD,
    FcvtLD,
    FcvtLuD,
    FmvXD,
    FcvtDW,
    FcvtDWu,
    FcvtDL,
    FcvtDLu,
    FmvDX,
    // Privileged
    Mret,
    Sret,
    Wfi,
    SfenceVma,
    // Zba
    Sh1add,
    Sh2add,
    Sh3add,
    AddUw,
    Sh1addUw,
    Sh2addUw,
    Sh3addUw,
    SlliUw,
    // Zbb
    Andn,
    Orn,
    Xnor,
    Clz,
    Ctz,
    Cpop,
    Clzw,
    Ctzw,
    Cpopw,
    Max,
    Min,
    Maxu,
    Minu,
    SextB,
    SextH,
    ZextH,
    Rol,
    Ror,
    Rori,
    Rolw,
    Rorw,
    Roriw,
    OrcB,
    Rev8,
    /// An encoding that does not correspond to any supported instruction.
    Illegal,
}

/// Functional unit class of an operation, used by the core model's
/// dispatch stage and by the interpreters' statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Simple integer ALU (including LUI/AUIPC and Zba/Zbb logic).
    Alu,
    /// Integer multiply/divide.
    Mdu,
    /// Branches, jumps, CSR access, and system instructions.
    Bru,
    /// Loads (integer and floating point).
    Load,
    /// Stores and AMOs.
    Store,
    /// Floating-point multiply-add pipeline.
    Fma,
    /// Floating-point miscellaneous (div/sqrt/cvt/cmp/move).
    Fmisc,
}

/// A fully decoded instruction.
///
/// `imm` carries the sign-extended immediate; for CSR instructions it
/// carries the CSR address in its low 12 bits (and the zimm for the `*i`
/// forms is in `rs1`). `len` is the encoding length in bytes (2 or 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedInst {
    /// The operation.
    pub op: Op,
    /// Destination register (x or f depending on `op`).
    pub rd: u8,
    /// First source register.
    pub rs1: u8,
    /// Second source register.
    pub rs2: u8,
    /// Third source register (FMA only).
    pub rs3: u8,
    /// Sign-extended immediate, or CSR address for Zicsr ops.
    pub imm: i64,
    /// Floating-point rounding mode field (0b111 = dynamic).
    pub rm: u8,
    /// Encoding length in bytes: 2 (compressed) or 4.
    pub len: u8,
    /// The raw instruction bits (low 16 valid when `len == 2`).
    pub raw: u32,
}

impl Default for DecodedInst {
    fn default() -> Self {
        DecodedInst {
            op: Op::Illegal,
            rd: 0,
            rs1: 0,
            rs2: 0,
            rs3: 0,
            imm: 0,
            rm: 0,
            len: 4,
            raw: 0,
        }
    }
}

impl DecodedInst {
    /// CSR address for Zicsr operations.
    #[inline]
    pub fn csr(&self) -> u16 {
        (self.imm as u64 & 0xfff) as u16
    }

    /// Returns true for conditional branches.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(
            self.op,
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu
        )
    }

    /// Returns true for unconditional jumps (JAL/JALR).
    #[inline]
    pub fn is_jump(&self) -> bool {
        matches!(self.op, Op::Jal | Op::Jalr)
    }

    /// Returns true if this is any control-flow instruction.
    #[inline]
    pub fn is_control_flow(&self) -> bool {
        self.is_branch() || self.is_jump()
    }

    /// Returns true for loads (integer and FP, including LR).
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(
            self.op,
            Op::Lb
                | Op::Lh
                | Op::Lw
                | Op::Ld
                | Op::Lbu
                | Op::Lhu
                | Op::Lwu
                | Op::Flw
                | Op::Fld
                | Op::LrW
                | Op::LrD
        )
    }

    /// Returns true for stores (integer and FP, including SC).
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(
            self.op,
            Op::Sb | Op::Sh | Op::Sw | Op::Sd | Op::Fsw | Op::Fsd | Op::ScW | Op::ScD
        ) || self.is_amo()
    }

    /// Returns true for read-modify-write atomics (excluding LR/SC).
    #[inline]
    pub fn is_amo(&self) -> bool {
        matches!(
            self.op,
            Op::AmoswapW
                | Op::AmoaddW
                | Op::AmoxorW
                | Op::AmoandW
                | Op::AmoorW
                | Op::AmominW
                | Op::AmomaxW
                | Op::AmominuW
                | Op::AmomaxuW
                | Op::AmoswapD
                | Op::AmoaddD
                | Op::AmoxorD
                | Op::AmoandD
                | Op::AmoorD
                | Op::AmominD
                | Op::AmomaxD
                | Op::AmominuD
                | Op::AmomaxuD
        )
    }

    /// Returns true for any memory-access instruction.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Memory access size in bytes for loads/stores/AMOs (0 otherwise).
    pub fn mem_size(&self) -> u64 {
        use Op::*;
        match self.op {
            Lb | Lbu | Sb => 1,
            Lh | Lhu | Sh => 2,
            Lw | Lwu | Sw | Flw | Fsw | LrW | ScW | AmoswapW | AmoaddW | AmoxorW | AmoandW
            | AmoorW | AmominW | AmomaxW | AmominuW | AmomaxuW => 4,
            Ld | Sd | Fld | Fsd | LrD | ScD | AmoswapD | AmoaddD | AmoxorD | AmoandD | AmoorD
            | AmominD | AmomaxD | AmominuD | AmomaxuD => 8,
            _ => 0,
        }
    }

    /// Returns true when the destination register is a floating-point one.
    pub fn writes_fpr(&self) -> bool {
        use Op::*;
        matches!(
            self.op,
            Flw | Fld
                | FmaddS
                | FmsubS
                | FnmsubS
                | FnmaddS
                | FaddS
                | FsubS
                | FmulS
                | FdivS
                | FsqrtS
                | FsgnjS
                | FsgnjnS
                | FsgnjxS
                | FminS
                | FmaxS
                | FcvtSW
                | FcvtSWu
                | FcvtSL
                | FcvtSLu
                | FmvWX
                | FmaddD
                | FmsubD
                | FnmsubD
                | FnmaddD
                | FaddD
                | FsubD
                | FmulD
                | FdivD
                | FsqrtD
                | FsgnjD
                | FsgnjnD
                | FsgnjxD
                | FminD
                | FmaxD
                | FcvtSD
                | FcvtDS
                | FcvtDW
                | FcvtDWu
                | FcvtDL
                | FcvtDLu
                | FmvDX
        )
    }

    /// Returns true when the instruction writes an integer register.
    pub fn writes_gpr(&self) -> bool {
        use Op::*;
        if self.rd == 0 {
            return false;
        }
        !(self.is_branch()
            || matches!(
                self.op,
                Sb | Sh | Sw | Sd | Fsw | Fsd | Fence | FenceI | Ecall | Ebreak | Mret | Sret
                    | Wfi | SfenceVma | Illegal
            )
            || self.writes_fpr())
    }

    /// Returns true when `rs1` names a floating-point register.
    pub fn rs1_is_fpr(&self) -> bool {
        use Op::*;
        matches!(
            self.op,
            FmaddS | FmsubS | FnmsubS | FnmaddS | FaddS | FsubS | FmulS | FdivS | FsqrtS
                | FsgnjS | FsgnjnS | FsgnjxS | FminS | FmaxS | FcvtWS | FcvtWuS | FcvtLS
                | FcvtLuS | FmvXW | FeqS | FltS | FleS | FclassS | FmaddD | FmsubD | FnmsubD
                | FnmaddD | FaddD | FsubD | FmulD | FdivD | FsqrtD | FsgnjD | FsgnjnD | FsgnjxD
                | FminD | FmaxD | FcvtSD | FcvtDS | FeqD | FltD | FleD | FclassD | FcvtWD
                | FcvtWuD | FcvtLD | FcvtLuD | FmvXD
        )
    }

    /// Returns true when `rs2` names a floating-point register.
    pub fn rs2_is_fpr(&self) -> bool {
        use Op::*;
        matches!(
            self.op,
            Fsw | Fsd
                | FmaddS
                | FmsubS
                | FnmsubS
                | FnmaddS
                | FaddS
                | FsubS
                | FmulS
                | FdivS
                | FsgnjS
                | FsgnjnS
                | FsgnjxS
                | FminS
                | FmaxS
                | FeqS
                | FltS
                | FleS
                | FmaddD
                | FmsubD
                | FnmsubD
                | FnmaddD
                | FaddD
                | FsubD
                | FmulD
                | FdivD
                | FsgnjD
                | FsgnjnD
                | FsgnjxD
                | FminD
                | FmaxD
                | FeqD
                | FltD
                | FleD
        )
    }

    /// Returns true for the four-operand fused multiply-add family.
    pub fn is_fma(&self) -> bool {
        use Op::*;
        matches!(
            self.op,
            FmaddS | FmsubS | FnmsubS | FnmaddS | FmaddD | FmsubD | FnmsubD | FnmaddD
        )
    }

    /// Returns true for instructions that end a basic block in NEMU's
    /// trace-organized uop cache (control flow + system instructions).
    pub fn ends_block(&self) -> bool {
        self.is_control_flow()
            || matches!(
                self.op,
                Op::Ecall
                    | Op::Ebreak
                    | Op::Mret
                    | Op::Sret
                    | Op::Wfi
                    | Op::FenceI
                    | Op::SfenceVma
                    | Op::Illegal
            )
    }

    /// Returns true for system/serializing instructions that flush the
    /// pipeline in the core model.
    pub fn is_system(&self) -> bool {
        matches!(
            self.op,
            Op::Ecall
                | Op::Ebreak
                | Op::Mret
                | Op::Sret
                | Op::Wfi
                | Op::Fence
                | Op::FenceI
                | Op::SfenceVma
                | Op::Csrrw
                | Op::Csrrs
                | Op::Csrrc
                | Op::Csrrwi
                | Op::Csrrsi
                | Op::Csrrci
        )
    }

    /// Functional-unit class this operation executes on.
    pub fn fu_class(&self) -> FuClass {
        use Op::*;
        if self.is_load() {
            return FuClass::Load;
        }
        if self.is_store() {
            return FuClass::Store;
        }
        if self.is_control_flow() || self.is_system() {
            return FuClass::Bru;
        }
        match self.op {
            Mul | Mulh | Mulhsu | Mulhu | Div | Divu | Rem | Remu | Mulw | Divw | Divuw | Remw
            | Remuw => FuClass::Mdu,
            FmaddS | FmsubS | FnmsubS | FnmaddS | FaddS | FsubS | FmulS | FmaddD | FmsubD
            | FnmsubD | FnmaddD | FaddD | FsubD | FmulD => FuClass::Fma,
            FdivS | FsqrtS | FdivD | FsqrtD | FsgnjS | FsgnjnS | FsgnjxS | FminS | FmaxS
            | FcvtWS | FcvtWuS | FcvtLS | FcvtLuS | FmvXW | FeqS | FltS | FleS | FclassS
            | FcvtSW | FcvtSWu | FcvtSL | FcvtSLu | FmvWX | FsgnjD | FsgnjnD | FsgnjxD | FminD
            | FmaxD | FcvtSD | FcvtDS | FeqD | FltD | FleD | FclassD | FcvtWD | FcvtWuD
            | FcvtLD | FcvtLuD | FmvXD | FcvtDW | FcvtDWu | FcvtDL | FcvtDLu | FmvDX => {
                FuClass::Fmisc
            }
            _ => FuClass::Alu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_illegal() {
        let d = DecodedInst::default();
        assert_eq!(d.op, Op::Illegal);
        assert_eq!(d.len, 4);
    }

    #[test]
    fn classification_basics() {
        let mut d = DecodedInst {
            op: Op::Lw,
            ..Default::default()
        };
        assert!(d.is_load());
        assert!(!d.is_store());
        assert_eq!(d.mem_size(), 4);
        assert_eq!(d.fu_class(), FuClass::Load);

        d.op = Op::AmoaddD;
        assert!(d.is_store());
        assert!(d.is_amo());
        assert_eq!(d.mem_size(), 8);

        d.op = Op::Beq;
        assert!(d.is_branch());
        assert!(d.ends_block());
        assert_eq!(d.fu_class(), FuClass::Bru);

        d.op = Op::FmaddD;
        assert!(d.is_fma());
        assert!(d.writes_fpr());
        assert_eq!(d.fu_class(), FuClass::Fma);
    }

    #[test]
    fn gpr_write_detection() {
        let mut d = DecodedInst {
            op: Op::Add,
            rd: 3,
            ..Default::default()
        };
        assert!(d.writes_gpr());
        d.rd = 0;
        assert!(!d.writes_gpr());
        d.rd = 3;
        d.op = Op::Sd;
        assert!(!d.writes_gpr());
        d.op = Op::FcvtWD;
        assert!(d.writes_gpr());
        assert!(d.rs1_is_fpr());
        d.op = Op::FcvtDW;
        assert!(!d.rs1_is_fpr());
        assert!(d.writes_fpr());
    }

    #[test]
    fn csr_field_extraction() {
        let d = DecodedInst {
            op: Op::Csrrw,
            imm: 0x342,
            ..Default::default()
        };
        assert_eq!(d.csr(), 0x342);
    }
}
