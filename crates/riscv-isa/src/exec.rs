//! Pure architectural semantics of the integer instruction set.
//!
//! These functions are shared verbatim by every interpreter in [`nemu`] and
//! by the execution units of the `xscore` cycle model, which guarantees that
//! DUT and REF disagree only for micro-architectural reasons — exactly the
//! property the DRAV diff-rules reason about.
//!
//! [`nemu`]: https://docs.rs/nemu

use crate::op::Op;

/// Compute the result of a two-operand integer operation.
///
/// Immediate forms take the already-selected immediate as `b`. Returns
/// `None` for operations that are not pure integer computations (loads,
/// branches, system ops, floating point).
#[inline]
pub fn int_compute(op: Op, a: u64, b: u64) -> Option<u64> {
    use Op::*;
    let v = match op {
        Add | Addi => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Sll | Slli => a << (b & 63),
        Slt | Slti => ((a as i64) < (b as i64)) as u64,
        Sltu | Sltiu => (a < b) as u64,
        Xor | Xori => a ^ b,
        Srl | Srli => a >> (b & 63),
        Sra | Srai => ((a as i64) >> (b & 63)) as u64,
        Or | Ori => a | b,
        And | Andi => a & b,
        Addw | Addiw => sext32(a.wrapping_add(b)),
        Subw => sext32(a.wrapping_sub(b)),
        Sllw | Slliw => sext32(a << (b & 31)),
        Srlw | Srliw => sext32(((a as u32) >> (b & 31)) as u64),
        Sraw | Sraiw => (((a as i32) >> (b & 31)) as i64) as u64,
        Lui => b,
        Mul => a.wrapping_mul(b),
        Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
        Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
        Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        Div => {
            if b == 0 {
                u64::MAX
            } else if a as i64 == i64::MIN && b as i64 == -1 {
                a
            } else {
                ((a as i64) / (b as i64)) as u64
            }
        }
        Divu => {
            if b == 0 {
                u64::MAX
            } else {
                a / b
            }
        }
        Rem => {
            if b == 0 {
                a
            } else if a as i64 == i64::MIN && b as i64 == -1 {
                0
            } else {
                ((a as i64) % (b as i64)) as u64
            }
        }
        Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        Mulw => sext32(a.wrapping_mul(b)),
        Divw => {
            let (a, b) = (a as i32, b as i32);
            let r = if b == 0 {
                -1
            } else if a == i32::MIN && b == -1 {
                a
            } else {
                a / b
            };
            r as i64 as u64
        }
        Divuw => {
            let (a, b) = (a as u32, b as u32);
            let r = if b == 0 { u32::MAX } else { a / b };
            r as i32 as i64 as u64
        }
        Remw => {
            let (a, b) = (a as i32, b as i32);
            let r = if b == 0 {
                a
            } else if a == i32::MIN && b == -1 {
                0
            } else {
                a % b
            };
            r as i64 as u64
        }
        Remuw => {
            let (a, b) = (a as u32, b as u32);
            let r = if b == 0 { a } else { a % b };
            r as i32 as i64 as u64
        }
        // Zba
        Sh1add => (a << 1).wrapping_add(b),
        Sh2add => (a << 2).wrapping_add(b),
        Sh3add => (a << 3).wrapping_add(b),
        AddUw => (a as u32 as u64).wrapping_add(b),
        Sh1addUw => ((a as u32 as u64) << 1).wrapping_add(b),
        Sh2addUw => ((a as u32 as u64) << 2).wrapping_add(b),
        Sh3addUw => ((a as u32 as u64) << 3).wrapping_add(b),
        SlliUw => (a as u32 as u64) << (b & 63),
        // Zbb
        Andn => a & !b,
        Orn => a | !b,
        Xnor => !(a ^ b),
        Clz => a.leading_zeros() as u64,
        Ctz => a.trailing_zeros() as u64,
        Cpop => a.count_ones() as u64,
        Clzw => (a as u32).leading_zeros() as u64,
        Ctzw => (a as u32).trailing_zeros() as u64,
        Cpopw => (a as u32).count_ones() as u64,
        Max => (a as i64).max(b as i64) as u64,
        Min => (a as i64).min(b as i64) as u64,
        Maxu => a.max(b),
        Minu => a.min(b),
        SextB => a as i8 as i64 as u64,
        SextH => a as i16 as i64 as u64,
        ZextH => a as u16 as u64,
        Rol => a.rotate_left((b & 63) as u32),
        Ror | Rori => a.rotate_right((b & 63) as u32),
        Rolw => sext32((a as u32).rotate_left((b & 31) as u32) as u64),
        Rorw | Roriw => sext32((a as u32).rotate_right((b & 31) as u32) as u64),
        OrcB => orc_b(a),
        Rev8 => a.swap_bytes(),
        _ => return None,
    };
    Some(v)
}

#[inline]
fn sext32(v: u64) -> u64 {
    v as i32 as i64 as u64
}

#[inline]
fn orc_b(a: u64) -> u64 {
    let mut r = 0u64;
    for i in 0..8 {
        let byte = (a >> (i * 8)) & 0xff;
        if byte != 0 {
            r |= 0xffu64 << (i * 8);
        }
    }
    r
}

/// Evaluate a conditional-branch condition.
///
/// # Panics
///
/// Panics (in debug builds) if `op` is not a branch.
#[inline]
pub fn branch_taken(op: Op, a: u64, b: u64) -> bool {
    match op {
        Op::Beq => a == b,
        Op::Bne => a != b,
        Op::Blt => (a as i64) < (b as i64),
        Op::Bge => (a as i64) >= (b as i64),
        Op::Bltu => a < b,
        Op::Bgeu => a >= b,
        _ => {
            debug_assert!(false, "branch_taken called on {op:?}");
            false
        }
    }
}

/// Compute the new memory value for a read-modify-write atomic.
///
/// `old` is the value read from memory and `src` the register operand; the
/// width (`W`/`D`) is implied by the operation.
#[inline]
pub fn amo_compute(op: Op, old: u64, src: u64) -> u64 {
    use Op::*;
    match op {
        AmoswapW => sext32(src),
        AmoaddW => sext32(old.wrapping_add(src)),
        AmoxorW => sext32(old ^ src),
        AmoandW => sext32(old & src),
        AmoorW => sext32(old | src),
        AmominW => ((old as i32).min(src as i32)) as i64 as u64,
        AmomaxW => ((old as i32).max(src as i32)) as i64 as u64,
        AmominuW => ((old as u32).min(src as u32)) as i32 as i64 as u64,
        AmomaxuW => ((old as u32).max(src as u32)) as i32 as i64 as u64,
        AmoswapD => src,
        AmoaddD => old.wrapping_add(src),
        AmoxorD => old ^ src,
        AmoandD => old & src,
        AmoorD => old | src,
        AmominD => (old as i64).min(src as i64) as u64,
        AmomaxD => (old as i64).max(src as i64) as u64,
        AmominuD => old.min(src),
        AmomaxuD => old.max(src),
        _ => {
            debug_assert!(false, "amo_compute called on {op:?}");
            old
        }
    }
}

/// Sign- or zero-extend a loaded value according to the load operation.
#[inline]
pub fn load_extend(op: Op, raw: u64) -> u64 {
    match op {
        Op::Lb => raw as i8 as i64 as u64,
        Op::Lh => raw as i16 as i64 as u64,
        Op::Lw | Op::LrW => raw as i32 as i64 as u64,
        Op::Lbu => raw as u8 as u64,
        Op::Lhu => raw as u16 as u64,
        Op::Lwu => raw as u32 as u64,
        Op::Ld | Op::LrD => raw,
        _ => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arith() {
        assert_eq!(int_compute(Op::Add, 2, 3), Some(5));
        assert_eq!(int_compute(Op::Sub, 2, 3), Some(u64::MAX));
        assert_eq!(int_compute(Op::Slt, (-1i64) as u64, 0), Some(1));
        assert_eq!(int_compute(Op::Sltu, u64::MAX, 0), Some(0));
        assert_eq!(int_compute(Op::Addw, 0x7fff_ffff, 1), Some(0xffff_ffff_8000_0000));
        assert_eq!(int_compute(Op::Sraiw, 0x8000_0000, 31), Some(u64::MAX));
    }

    #[test]
    fn division_corner_cases() {
        // Division by zero: quotient all ones, remainder = dividend.
        assert_eq!(int_compute(Op::Div, 5, 0), Some(u64::MAX));
        assert_eq!(int_compute(Op::Rem, 5, 0), Some(5));
        assert_eq!(int_compute(Op::Divu, 5, 0), Some(u64::MAX));
        assert_eq!(int_compute(Op::Remu, 5, 0), Some(5));
        // Signed overflow: quotient = dividend, remainder = 0.
        let min = i64::MIN as u64;
        assert_eq!(int_compute(Op::Div, min, u64::MAX), Some(min));
        assert_eq!(int_compute(Op::Rem, min, u64::MAX), Some(0));
        let minw = i32::MIN as i64 as u64;
        assert_eq!(int_compute(Op::Divw, minw, u64::MAX), Some(minw));
        assert_eq!(int_compute(Op::Remw, minw, u64::MAX), Some(0));
        assert_eq!(int_compute(Op::Divw, 7, 0), Some(u64::MAX));
    }

    #[test]
    fn mulh_variants() {
        let a = 0x8000_0000_0000_0000u64;
        assert_eq!(int_compute(Op::Mulhu, a, 2), Some(1));
        assert_eq!(int_compute(Op::Mulh, a, 2), Some(u64::MAX));
        assert_eq!(
            int_compute(Op::Mulhsu, (-1i64) as u64, u64::MAX),
            Some(u64::MAX)
        );
    }

    #[test]
    fn zba_zbb_semantics() {
        assert_eq!(int_compute(Op::Sh2add, 3, 10), Some(22));
        assert_eq!(int_compute(Op::AddUw, 0xffff_ffff_0000_0001, 1), Some(2));
        assert_eq!(int_compute(Op::Andn, 0b1100, 0b1010), Some(0b0100));
        assert_eq!(int_compute(Op::Clz, 1, 0), Some(63));
        assert_eq!(int_compute(Op::Ctz, 8, 0), Some(3));
        assert_eq!(int_compute(Op::Cpop, 0xff, 0), Some(8));
        assert_eq!(int_compute(Op::Min, (-5i64) as u64, 3), Some((-5i64) as u64));
        assert_eq!(int_compute(Op::Maxu, (-5i64) as u64, 3), Some((-5i64) as u64));
        assert_eq!(int_compute(Op::Rev8, 0x0102_0304_0506_0708, 0), Some(0x0807_0605_0403_0201));
        assert_eq!(int_compute(Op::OrcB, 0x0100_0000_0020_0003, 0), Some(0xff00_0000_00ff_00ff));
        assert_eq!(int_compute(Op::SextB, 0x80, 0), Some((-128i64) as u64));
        assert_eq!(int_compute(Op::ZextH, 0xffff_ffff, 0), Some(0xffff));
        assert_eq!(int_compute(Op::Ror, 1, 1), Some(0x8000_0000_0000_0000));
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(Op::Beq, 1, 1));
        assert!(branch_taken(Op::Bne, 1, 2));
        assert!(branch_taken(Op::Blt, (-1i64) as u64, 0));
        assert!(!branch_taken(Op::Bltu, (-1i64) as u64, 0));
        assert!(branch_taken(Op::Bge, 0, 0));
        assert!(branch_taken(Op::Bgeu, (-1i64) as u64, 0));
    }

    #[test]
    fn amo_semantics() {
        assert_eq!(amo_compute(Op::AmoaddD, 1, 2), 3);
        assert_eq!(amo_compute(Op::AmoswapW, 1, 0xffff_ffff), 0xffff_ffff_ffff_ffff);
        assert_eq!(amo_compute(Op::AmominW, 5, (-1i32) as u32 as u64), u64::MAX);
        assert_eq!(amo_compute(Op::AmomaxuD, 5, u64::MAX), u64::MAX);
        assert_eq!(amo_compute(Op::AmoandD, 0b1100, 0b1010), 0b1000);
    }

    #[test]
    fn load_extension() {
        assert_eq!(load_extend(Op::Lb, 0x80), 0xffff_ffff_ffff_ff80);
        assert_eq!(load_extend(Op::Lbu, 0x80), 0x80);
        assert_eq!(load_extend(Op::Lw, 0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(load_extend(Op::Lwu, 0x8000_0000), 0x8000_0000);
        assert_eq!(load_extend(Op::Ld, u64::MAX), u64::MAX);
    }

    #[test]
    fn non_integer_ops_return_none() {
        assert_eq!(int_compute(Op::Lw, 0, 0), None);
        assert_eq!(int_compute(Op::FaddD, 0, 0), None);
        assert_eq!(int_compute(Op::Ecall, 0, 0), None);
    }
}
