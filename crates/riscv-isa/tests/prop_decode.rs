//! Property tests for the ISA substrate: total decode, disassembly
//! robustness, and memory semantics.

use proptest::prelude::*;
use riscv_isa::mem::PhysMem;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The decoder is total: any 32-bit pattern decodes without panicking,
    /// and the result either round-trips through the encoder or is Illegal.
    #[test]
    fn decode_is_total_and_consistent(raw in any::<u32>()) {
        let d = riscv_isa::decode(raw);
        let _ = riscv_isa::disasm::disassemble(&d, 0x8000_0000);
        if d.len == 4 && d.op != riscv_isa::Op::Illegal {
            if let Some(re) = riscv_isa::encode::encode(&d) {
                let back = riscv_isa::decode32(re);
                prop_assert_eq!(back.op, d.op);
                prop_assert_eq!(back.rd, d.rd);
                prop_assert_eq!(back.rs1, d.rs1);
                prop_assert_eq!(back.rs2, d.rs2);
                prop_assert_eq!(back.imm, d.imm);
            }
        }
    }

    /// Compressed decode is total too.
    #[test]
    fn decode16_is_total(raw in any::<u16>()) {
        let d = riscv_isa::decode16(raw);
        prop_assert_eq!(d.len, 2);
        let _ = riscv_isa::disasm::disassemble(&d, 0);
    }

    /// Sparse memory behaves like a flat byte array.
    #[test]
    fn memory_matches_model(ops in prop::collection::vec(
        (0u64..8192, any::<u64>(), 1u64..=8), 1..64)
    ) {
        let mut mem = riscv_isa::SparseMemory::new();
        let mut model = vec![0u8; 8192 + 8];
        for (addr, val, size) in ops {
            mem.write_uint(addr, size, val);
            model[addr as usize..(addr + size) as usize]
                .copy_from_slice(&val.to_le_bytes()[..size as usize]);
            let mut expect = [0u8; 8];
            expect[..size as usize]
                .copy_from_slice(&model[addr as usize..(addr + size) as usize]);
            prop_assert_eq!(mem.read_uint(addr, size), u64::from_le_bytes(expect));
        }
    }

    /// CSR write-then-read respects WARL masks without panicking for any
    /// address/value in machine mode.
    #[test]
    fn csr_access_is_total(addr in 0u16..4096, value in any::<u64>()) {
        let mut c = riscv_isa::csr::CsrFile::new(0);
        let _ = c.write(addr, value);
        if let Ok(v) = c.read(addr) {
            // Reading back immediately must be stable.
            prop_assert_eq!(c.read(addr).unwrap(), v);
        }
    }
}
