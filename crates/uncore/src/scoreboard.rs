//! The coherence permission scoreboard and bus-legality checker.
//!
//! This is the cache-hierarchy half of the paper's §III-B2b diff-rules:
//! caches are treated as black boxes and only the *transactions* between
//! levels are monitored. Two rule families are enforced:
//!
//! 1. **bus legality** — a `ProbeAck` must answer an outstanding `Probe`,
//!    a `Grant` must answer an outstanding `Acquire`, a `ReleaseAck` an
//!    outstanding `Release`;
//! 2. **permission scoreboard** — per block, sibling clients of the same
//!    manager may never simultaneously hold Trunk (or Trunk + Branch).
//!
//! The §IV-C injected bug is caught by rule 2: the buggy L2 acks a probe
//! without shrinking, so the next Grant to the sibling creates two Trunk
//! owners.

use crate::msg::{Msg, MsgKind, Node, Perm};
use std::collections::HashMap;

/// A detected protocol violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle the violating message was observed.
    pub at: u64,
    /// Line address concerned.
    pub line: u64,
    /// Human-readable description.
    pub description: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {}: line {:#x}: {}",
            self.at, self.line, self.description
        )
    }
}

/// Observes every hierarchy message and checks coherence invariants.
#[derive(Debug, Clone, Default)]
pub struct CoherenceScoreboard {
    /// Believed permission of each (line, client) pair.
    perms: HashMap<(u64, Node), Perm>,
    /// Outstanding probes: (line, client) -> cap.
    outstanding_probes: HashMap<(u64, Node), Perm>,
    /// Outstanding acquires: (line, client) -> need.
    outstanding_acquires: HashMap<(u64, Node), Perm>,
    /// Outstanding releases: (line, client).
    outstanding_releases: HashMap<(u64, Node), ()>,
    /// Parent of each client node (topology).
    parents: HashMap<Node, Node>,
    /// All violations found so far.
    pub violations: Vec<Violation>,
}

impl CoherenceScoreboard {
    /// Create a scoreboard for the given topology (child -> parent).
    pub fn new(parents: HashMap<Node, Node>) -> Self {
        CoherenceScoreboard {
            parents,
            ..Default::default()
        }
    }

    fn violate(&mut self, at: u64, line: u64, description: String) {
        self.violations.push(Violation {
            at,
            line,
            description,
        });
    }

    fn siblings(&self, node: Node) -> Vec<Node> {
        let Some(parent) = self.parents.get(&node) else {
            return Vec::new();
        };
        self.parents
            .iter()
            .filter(|(c, p)| **p == *parent && **c != node)
            .map(|(c, _)| *c)
            .collect()
    }

    /// Observe one routed message (called by the hierarchy router).
    pub fn observe(&mut self, msg: &Msg) {
        let at = msg.at;
        match &msg.kind {
            MsgKind::Acquire { line, need } => {
                self.outstanding_acquires.insert((*line, msg.src), *need);
            }
            MsgKind::Grant { line, perm, .. } => {
                let client = msg.dst;
                if self.outstanding_acquires.remove(&(*line, client)).is_none() {
                    self.violate(at, *line, format!("Grant to {client:?} without Acquire"));
                }
                self.perms.insert((*line, client), *perm);
                if *perm == Perm::Trunk {
                    for sib in self.siblings(client) {
                        let sp = self
                            .perms
                            .get(&(*line, sib))
                            .copied()
                            .unwrap_or(Perm::None);
                        if sp > Perm::None {
                            self.violate(
                                at,
                                *line,
                                format!(
                                    "Trunk granted to {client:?} while sibling {sib:?} holds {sp:?}"
                                ),
                            );
                        }
                    }
                } else {
                    for sib in self.siblings(client) {
                        let sp = self
                            .perms
                            .get(&(*line, sib))
                            .copied()
                            .unwrap_or(Perm::None);
                        if sp == Perm::Trunk {
                            self.violate(
                                at,
                                *line,
                                format!(
                                    "Branch granted to {client:?} while sibling {sib:?} holds Trunk"
                                ),
                            );
                        }
                    }
                }
            }
            MsgKind::Probe { line, cap } => {
                self.outstanding_probes.insert((*line, msg.dst), *cap);
            }
            MsgKind::ProbeAck { line, now, .. } => {
                let client = msg.src;
                match self.outstanding_probes.remove(&(*line, client)) {
                    None => {
                        self.violate(at, *line, format!("ProbeAck from {client:?} without Probe"));
                    }
                    Some(cap) => {
                        if *now > cap {
                            self.violate(
                                at,
                                *line,
                                format!(
                                    "ProbeAck reports {now:?} above the probed cap {cap:?}"
                                ),
                            );
                        }
                    }
                }
                self.perms.insert((*line, client), *now);
            }
            MsgKind::Release { line, .. } => {
                self.outstanding_releases.insert((*line, msg.src), ());
                self.perms.insert((*line, msg.src), Perm::None);
            }
            MsgKind::GrantAck { line } => {
                // Must follow a grant the client actually received; the
                // perms map records receipt.
                if !self.perms.contains_key(&(*line, msg.src)) {
                    self.violate(at, *line, format!("GrantAck from {:?} without Grant", msg.src));
                }
            }
            MsgKind::ReleaseAck { line } => {
                if self
                    .outstanding_releases
                    .remove(&(*line, msg.dst))
                    .is_none()
                {
                    self.violate(
                        at,
                        *line,
                        format!("ReleaseAck to {:?} without Release", msg.dst),
                    );
                }
            }
        }
    }

    /// True when no violations have been recorded.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> HashMap<Node, Node> {
        let mut m = HashMap::new();
        m.insert(Node::L2(0), Node::L3);
        m.insert(Node::L2(1), Node::L3);
        m.insert(Node::L3, Node::Dram);
        m
    }

    fn msg(src: Node, dst: Node, kind: MsgKind) -> Msg {
        Msg {
            at: 1,
            src,
            dst,
            kind,
        }
    }

    #[test]
    fn clean_handoff_passes() {
        let mut sb = CoherenceScoreboard::new(topo());
        // L2(0) acquires Trunk.
        sb.observe(&msg(Node::L2(0), Node::L3, MsgKind::Acquire { line: 0x100, need: Perm::Trunk }));
        sb.observe(&msg(Node::L3, Node::L2(0), MsgKind::Grant { line: 0x100, perm: Perm::Trunk, data: None }));
        // L3 probes it away before granting to L2(1).
        sb.observe(&msg(Node::L3, Node::L2(0), MsgKind::Probe { line: 0x100, cap: Perm::None }));
        sb.observe(&msg(Node::L2(0), Node::L3, MsgKind::ProbeAck { line: 0x100, now: Perm::None, data: None }));
        sb.observe(&msg(Node::L2(1), Node::L3, MsgKind::Acquire { line: 0x100, need: Perm::Trunk }));
        sb.observe(&msg(Node::L3, Node::L2(1), MsgKind::Grant { line: 0x100, perm: Perm::Trunk, data: None }));
        assert!(sb.clean(), "{:?}", sb.violations);
    }

    #[test]
    fn double_trunk_is_flagged() {
        let mut sb = CoherenceScoreboard::new(topo());
        for core in [0, 1] {
            sb.observe(&msg(Node::L2(core), Node::L3, MsgKind::Acquire { line: 0x100, need: Perm::Trunk }));
            sb.observe(&msg(Node::L3, Node::L2(core), MsgKind::Grant { line: 0x100, perm: Perm::Trunk, data: None }));
        }
        assert!(!sb.clean());
        assert!(sb.violations[0].description.contains("Trunk"));
    }

    #[test]
    fn probe_ack_without_probe_is_flagged() {
        let mut sb = CoherenceScoreboard::new(topo());
        sb.observe(&msg(Node::L2(0), Node::L3, MsgKind::ProbeAck { line: 0x40, now: Perm::None, data: None }));
        assert!(!sb.clean());
    }

    #[test]
    fn grant_without_acquire_is_flagged() {
        let mut sb = CoherenceScoreboard::new(topo());
        sb.observe(&msg(Node::L3, Node::L2(0), MsgKind::Grant { line: 0x40, perm: Perm::Branch, data: None }));
        assert!(!sb.clean());
    }

    #[test]
    fn probe_ack_above_cap_is_flagged() {
        let mut sb = CoherenceScoreboard::new(topo());
        sb.observe(&msg(Node::L3, Node::L2(0), MsgKind::Probe { line: 0x40, cap: Perm::None }));
        sb.observe(&msg(Node::L2(0), Node::L3, MsgKind::ProbeAck { line: 0x40, now: Perm::Branch, data: None }));
        assert!(!sb.clean());
    }
}
