//! TileLink-like coherence protocol messages.
//!
//! The protocol is a simplified TileLink-C (see DESIGN.md §5.7): clients
//! grow permissions with `Acquire`/`Grant`, managers shrink them with
//! `Probe`/`ProbeAck`, and evictions use `Release`/`ReleaseAck`.
//! Permissions follow TileLink's None/Branch/Trunk lattice.

use serde::{Deserialize, Serialize};

/// Cache line size in bytes (fixed across the hierarchy).
pub const LINE_SIZE: u64 = 64;

/// Mask a physical address down to its line address.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_SIZE - 1)
}

/// Line data payload.
pub type LineData = [u8; LINE_SIZE as usize];

/// Coherence permission on a block (TileLink nomenclature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Perm {
    /// No permission (invalid).
    None,
    /// Branch: read-only shared copy.
    Branch,
    /// Trunk: exclusive read-write copy.
    Trunk,
}

impl Perm {
    /// True when this permission satisfies a request needing `need`.
    #[inline]
    pub fn covers(self, need: Perm) -> bool {
        self >= need
    }
}

/// A node in the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Node {
    /// A core-side port (instruction fetch unit or LSU of core `n`).
    Core(usize),
    /// The instruction cache of core `n`.
    L1i(usize),
    /// The data cache of core `n`.
    L1d(usize),
    /// The private L2 of core `n`.
    L2(usize),
    /// The shared last-level cache.
    L3,
    /// The memory controller.
    Dram,
}

/// Message kinds exchanged between hierarchy nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgKind {
    /// Client asks its parent for permission `need` on a line.
    Acquire {
        /// Line address.
        line: u64,
        /// Requested permission.
        need: Perm,
    },
    /// Parent grants permission (with data for a fill).
    Grant {
        /// Line address.
        line: u64,
        /// Permission granted.
        perm: Perm,
        /// Line contents (present on fills, absent on pure upgrades).
        data: Option<Box<LineData>>,
    },
    /// Parent asks a client to shrink its permission to `cap`.
    Probe {
        /// Line address.
        line: u64,
        /// Maximum permission the client may keep.
        cap: Perm,
    },
    /// Client's probe response (data when it held the line dirty).
    ProbeAck {
        /// Line address.
        line: u64,
        /// Permission the client now holds.
        now: Perm,
        /// Dirty data written back, if any.
        data: Option<Box<LineData>>,
    },
    /// Voluntary write-back/shrink on eviction.
    Release {
        /// Line address.
        line: u64,
        /// Dirty data, if the line was modified.
        data: Option<Box<LineData>>,
    },
    /// Acknowledges a `Release`.
    ReleaseAck {
        /// Line address.
        line: u64,
    },
    /// Client acknowledges a `Grant`; the manager keeps the line
    /// serialized until this arrives (prevents probe/grant overlap).
    GrantAck {
        /// Line address.
        line: u64,
    },
}

impl MsgKind {
    /// Line address this message concerns.
    pub fn line(&self) -> u64 {
        match self {
            MsgKind::Acquire { line, .. }
            | MsgKind::Grant { line, .. }
            | MsgKind::Probe { line, .. }
            | MsgKind::ProbeAck { line, .. }
            | MsgKind::Release { line, .. }
            | MsgKind::ReleaseAck { line }
            | MsgKind::GrantAck { line } => *line,
        }
    }
}

/// A routed message with its delivery time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Cycle at which the destination observes the message.
    pub at: u64,
    /// Sender.
    pub src: Node,
    /// Receiver.
    pub dst: Node,
    /// Payload.
    pub kind: MsgKind,
}

impl PartialOrd for Msg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Msg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse ordering on time for use in a max-heap as earliest-first.
        other.at.cmp(&self.at)
    }
}

/// A core-side memory request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch (read-only, L1I path).
    Fetch,
    /// Data load (needs Branch).
    Load,
    /// Data store (needs Trunk; data written on completion).
    Store,
    /// Load that acquires exclusive permission (AMO/LR sequences).
    LoadExclusive,
}

/// A core-side request submitted to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreReq {
    /// Requesting core.
    pub core: usize,
    /// Request kind.
    pub kind: AccessKind,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes (1/2/4/8; fetches read a 32-byte block).
    pub size: u64,
    /// Store data (low `size` bytes).
    pub data: u64,
    /// Caller-chosen identifier returned with the completion.
    pub id: u64,
}

/// A completed core-side request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub req: CoreReq,
    /// Cycle of completion.
    pub at: u64,
    /// Load/fetch result (fetches return up to 32 bytes; loads the value).
    pub data: u64,
    /// Fetch block bytes (fetches only).
    pub fetch_block: Option<[u8; 32]>,
    /// True when the access was satisfied without leaving the L1.
    pub l1_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perm_lattice() {
        assert!(Perm::Trunk.covers(Perm::Branch));
        assert!(Perm::Trunk.covers(Perm::Trunk));
        assert!(Perm::Branch.covers(Perm::None));
        assert!(!Perm::Branch.covers(Perm::Trunk));
        assert!(!Perm::None.covers(Perm::Branch));
    }

    #[test]
    fn line_masking() {
        assert_eq!(line_of(0x1234), 0x1200);
        assert_eq!(line_of(0x1240), 0x1240);
        assert_eq!(line_of(0x7f), 0x40);
    }

    #[test]
    fn msg_heap_order_is_earliest_first() {
        use std::collections::BinaryHeap;
        let mk = |at| Msg {
            at,
            src: Node::L1d(0),
            dst: Node::L2(0),
            kind: MsgKind::ReleaseAck { line: 0 },
        };
        let mut h = BinaryHeap::new();
        h.push(mk(5));
        h.push(mk(1));
        h.push(mk(3));
        assert_eq!(h.pop().unwrap().at, 1);
        assert_eq!(h.pop().unwrap().at, 3);
        assert_eq!(h.pop().unwrap().at, 5);
    }
}
