//! Memory-controller timing models.
//!
//! Two models mirror the paper's two evaluation platforms (§IV-B):
//!
//! - [`DramModel::FixedAmat`]: a constant access latency with unlimited
//!   bandwidth — the FPGA platform's "padding cycles" configuration
//!   (YQH-FPGA-90C-AMAT, NH-FPGA-250C-AMAT).
//! - [`DramModel::Ddr`]: a bank/row-buffer model with a shared data bus —
//!   the DDR4-1600/2400 configurations used for chips and RTL simulation.

use serde::{Deserialize, Serialize};

/// Configuration of the DDR timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdrConfig {
    /// Number of banks.
    pub banks: usize,
    /// Latency of a row-buffer hit (CAS), in core cycles.
    pub row_hit: u64,
    /// Latency of a row-buffer miss (precharge + activate + CAS).
    pub row_miss: u64,
    /// Minimum core cycles between successive data bursts (bandwidth).
    pub bus_interval: u64,
}

impl DdrConfig {
    /// A DDR4-2400-like part as seen from a 2 GHz core.
    pub fn ddr4_2400() -> Self {
        DdrConfig {
            banks: 16,
            row_hit: 60,
            row_miss: 110,
            bus_interval: 4,
        }
    }

    /// A DDR4-1600-like part as seen from a 1 GHz core.
    pub fn ddr4_1600() -> Self {
        DdrConfig {
            banks: 16,
            row_hit: 45,
            row_miss: 85,
            bus_interval: 5,
        }
    }
}

/// Aggregate memory-controller statistics (telemetry export).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Line accesses serviced.
    pub accesses: u64,
    /// Row-buffer hits (DDR model only).
    pub row_hits: u64,
    /// Row-buffer misses (DDR model only).
    pub row_misses: u64,
}

/// The memory-controller timing model.
#[derive(Debug, Clone)]
pub enum DramModel {
    /// Constant latency, unlimited bandwidth (FPGA-style AMAT padding).
    FixedAmat {
        /// Cycles per access.
        latency: u64,
        /// Accesses serviced.
        accesses: u64,
    },
    /// Banked row-buffer model with a shared data bus.
    Ddr {
        /// Timing parameters.
        cfg: DdrConfig,
        /// Open row per bank.
        open_rows: Vec<Option<u64>>,
        /// Cycle until which each bank is busy.
        bank_busy: Vec<u64>,
        /// Cycle until which the data bus is busy.
        bus_busy: u64,
        /// Row-buffer hit count.
        row_hits: u64,
        /// Row-buffer miss count.
        row_misses: u64,
        /// Accesses serviced.
        accesses: u64,
    },
}

impl DramModel {
    /// Create the fixed-AMAT model.
    pub fn fixed(latency: u64) -> Self {
        DramModel::FixedAmat {
            latency,
            accesses: 0,
        }
    }

    /// Create the DDR model.
    pub fn ddr(cfg: DdrConfig) -> Self {
        DramModel::Ddr {
            open_rows: vec![None; cfg.banks],
            bank_busy: vec![0; cfg.banks],
            bus_busy: 0,
            row_hits: 0,
            row_misses: 0,
            accesses: 0,
            cfg,
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> DramStats {
        match self {
            DramModel::FixedAmat { accesses, .. } => DramStats {
                accesses: *accesses,
                ..Default::default()
            },
            DramModel::Ddr {
                row_hits,
                row_misses,
                accesses,
                ..
            } => DramStats {
                accesses: *accesses,
                row_hits: *row_hits,
                row_misses: *row_misses,
            },
        }
    }

    /// Latency (from `now`) of an access to line address `line`.
    pub fn access(&mut self, line: u64, now: u64) -> u64 {
        match self {
            DramModel::FixedAmat { latency, accesses } => {
                *accesses += 1;
                *latency
            }
            DramModel::Ddr {
                cfg,
                open_rows,
                bank_busy,
                bus_busy,
                row_hits,
                row_misses,
                accesses,
            } => {
                *accesses += 1;
                let bank = ((line >> 6) as usize) % cfg.banks;
                let row = line >> 13;
                let start = now.max(bank_busy[bank]).max(*bus_busy);
                let service = if open_rows[bank] == Some(row) {
                    *row_hits += 1;
                    cfg.row_hit
                } else {
                    *row_misses += 1;
                    open_rows[bank] = Some(row);
                    cfg.row_miss
                };
                let done = start + service;
                bank_busy[bank] = done;
                *bus_busy = start + cfg.bus_interval;
                done - now
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_amat_is_constant() {
        let mut d = DramModel::fixed(90);
        assert_eq!(d.access(0x0, 0), 90);
        assert_eq!(d.access(0x40, 5), 90);
        assert_eq!(d.access(0x0, 1000), 90);
    }

    #[test]
    fn ddr_row_hits_are_faster() {
        let mut d = DramModel::ddr(DdrConfig::ddr4_2400());
        let miss = d.access(0x0, 0);
        // Same bank (bank stride = 16 lines) and same row, queried later
        // so no queueing effects remain.
        let hit = d.access(0x400, 1000);
        assert!(hit < miss, "row hit {hit} must beat row miss {miss}");
    }

    #[test]
    fn ddr_bank_conflicts_queue() {
        let cfg = DdrConfig::ddr4_2400();
        let mut d = DramModel::ddr(cfg);
        // Two accesses to the same bank, different rows, back to back.
        let first = d.access(0x0, 0);
        let second = d.access(0x0 + (1 << 13), 0);
        assert!(second > first, "bank conflict must serialize");
    }

    #[test]
    fn ddr_bus_limits_bandwidth() {
        let cfg = DdrConfig::ddr4_2400();
        let mut d = DramModel::ddr(cfg);
        // Burst to distinct banks at the same instant: bus spacing shows up.
        let l0 = d.access(0x000, 0);
        let l1 = d.access(0x040, 0);
        let l2 = d.access(0x080, 0);
        assert!(l1 >= l0.min(cfg.row_miss));
        assert!(l2 > cfg.row_miss, "third burst delayed by bus");
    }
}
