//! Memory-system substrate for the XiangShan core model: coherent caches
//! with a TileLink-like protocol, DRAM timing models, and the coherence
//! permission scoreboard used by the DiffTest cache diff-rules.
//!
//! The hierarchy topology follows Table II of the paper: per-core L1I/L1D
//! under a private L2, with an optional shared non-inclusive L3 (this
//! model keeps data inclusive — see DESIGN.md §5.7) in front of a fixed-
//! AMAT or DDR-timed memory controller.
//!
//! # Example
//!
//! ```
//! use riscv_isa::mem::{PhysMem, SparseMemory};
//! use uncore::{AccessKind, CoreReq, DramModel, MemSystem, MemSystemConfig};
//!
//! let mut backing = SparseMemory::new();
//! backing.write_uint(0x1000, 8, 99);
//! let mut sys = MemSystem::new(MemSystemConfig::tiny(1), DramModel::fixed(20), backing);
//! let req = CoreReq { core: 0, kind: AccessKind::Load, addr: 0x1000, size: 8, data: 0, id: 1 };
//! assert!(sys.submit_data(req));
//! let c = uncore::run_until_complete(&mut sys, 1, 1000).expect("completes");
//! assert_eq!(c.data, 99);
//! ```

pub mod cache;
pub mod dram;
pub mod hist;
pub mod msg;
pub mod scoreboard;
pub mod system;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use dram::{DdrConfig, DramModel, DramStats};
pub use hist::{Hist, HIST_BUCKETS};
pub use msg::{line_of, AccessKind, Completion, CoreReq, Msg, MsgKind, Node, Perm, LINE_SIZE};
pub use scoreboard::{CoherenceScoreboard, Violation};
pub use system::{run_until_complete, LinkLatencies, MemLatencyHists, MemSystem, MemSystemConfig};
