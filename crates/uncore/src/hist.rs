//! A shared fixed-bucket histogram for occupancy and latency telemetry.
//!
//! Every histogram in the telemetry layer (ROB/IQ/store-buffer occupancy,
//! MSHR occupancy, memory latencies) uses the same power-of-two bucket
//! scheme so renderers and aggregators need exactly one code path:
//! bucket 0 holds the value 0, bucket `i` (for `i >= 1`) holds values in
//! `[2^(i-1), 2^i)`, and the last bucket absorbs everything above.

use serde::{Deserialize, Serialize};

/// Number of buckets: 0, 1, 2..3, 4..7, ..., >= 2^14.
pub const HIST_BUCKETS: usize = 16;

/// A fixed-bucket (power-of-two) histogram of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hist {
    /// Per-bucket sample counts (see module docs for the bucket scheme).
    pub counts: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub samples: u64,
    /// Sum of all samples (for the mean).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive-exclusive value range `[lo, hi)` of bucket `i` (the last
    /// bucket's `hi` is `u64::MAX`).
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 1),
            _ if i == HIST_BUCKETS - 1 => (1 << (i - 1), u64::MAX),
            _ => (1 << (i - 1), 1 << i),
        }
    }

    /// Human-readable label of bucket `i` (e.g. `"4-7"`).
    pub fn bucket_label(i: usize) -> String {
        let (lo, hi) = Self::bucket_range(i);
        if hi == lo + 1 {
            format!("{lo}")
        } else if hi == u64::MAX {
            format!(">={lo}")
        } else {
            format!("{lo}-{}", hi - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.samples += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Record `n` identical samples in one update. Equivalent to calling
    /// [`Hist::record`] `n` times; used to bulk-charge skipped idle spans
    /// where the sampled occupancy is provably constant.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_of(value)] += n;
        self.samples += n;
        self.sum += value * n;
        self.max = self.max.max(value);
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// True when no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.samples += other.samples;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_power_of_two() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(7), 3);
        assert_eq!(Hist::bucket_of(8), 4);
        assert_eq!(Hist::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every value lands in the bucket whose range contains it.
        for v in [0u64, 1, 5, 100, 4096, 1 << 20] {
            let (lo, hi) = Hist::bucket_range(Hist::bucket_of(v));
            assert!(v >= lo && (v < hi || hi == u64::MAX), "{v}");
        }
    }

    #[test]
    fn record_tracks_moments() {
        let mut h = Hist::new();
        for v in [0u64, 1, 1, 6, 40] {
            h.record(v);
        }
        assert_eq!(h.samples, 5);
        assert_eq!(h.sum, 48);
        assert_eq!(h.max, 40);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[3], 1); // 6 in 4..7
        assert!((h.mean() - 9.6).abs() < 1e-12);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Hist::new();
        bulk.record(3);
        bulk.record_n(6, 5);
        bulk.record_n(0, 2);
        bulk.record_n(9, 0); // no-op
        let mut single = Hist::new();
        single.record(3);
        for _ in 0..5 {
            single.record(6);
        }
        single.record(0);
        single.record(0);
        assert_eq!(bulk, single);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Hist::new();
        a.record(3);
        let mut b = Hist::new();
        b.record(100);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.samples, 3);
        assert_eq!(a.max, 100);
        assert_eq!(a.sum, 103);
    }

    #[test]
    fn labels_render() {
        assert_eq!(Hist::bucket_label(0), "0");
        assert_eq!(Hist::bucket_label(1), "1");
        assert_eq!(Hist::bucket_label(3), "4-7");
        assert_eq!(Hist::bucket_label(HIST_BUCKETS - 1), ">=16384");
    }

    #[test]
    fn serde_round_trip() {
        let mut h = Hist::new();
        h.record(9);
        let v = serde_json::to_string(&h).unwrap();
        let back: Hist = serde_json::from_str(&v).unwrap();
        assert_eq!(back, h);
    }
}
