//! A coherent, inclusive, set-associative cache level with MSHR-tracked
//! transactions.
//!
//! The same structure instantiates L1I, L1D, private L2, and the shared
//! L3: parents keep an in-line directory of child permissions and
//! serialize transactions per line, clients grow permissions with
//! Acquire/Grant and shrink with Probe/ProbeAck — the protocol of
//! [`crate::msg`].
//!
//! The §IV-C case-study bug ("L2 MSHR does not handle the overlapping of
//! Probe and GrantData correctly") is available as a fault injection via
//! [`CacheConfig::inject_probe_grant_race`].

use crate::msg::{
    line_of, AccessKind, Completion, CoreReq, LineData, MsgKind, Node, Perm, LINE_SIZE,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::ops::{Index, IndexMut};
use std::sync::Arc;

/// Static configuration of one cache level.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Display name ("l1d0", "l3", ...).
    pub name: String,
    /// Capacity in bytes.
    pub size: usize,
    /// Associativity.
    pub ways: usize,
    /// Cycles from request acceptance to response for a hit.
    pub hit_latency: u64,
    /// Maximum concurrently outstanding core-side misses (L1 only).
    pub mshrs: usize,
    /// Inject the Probe/GrantData overlap race of paper §IV-C.
    pub inject_probe_grant_race: bool,
}

impl CacheConfig {
    /// A convenience constructor.
    pub fn new(name: &str, size: usize, ways: usize, hit_latency: u64, mshrs: usize) -> Self {
        CacheConfig {
            name: name.to_string(),
            size,
            ways,
            hit_latency,
            mshrs,
            inject_probe_grant_race: false,
        }
    }

    fn n_sets(&self) -> usize {
        (self.size / LINE_SIZE as usize / self.ways).max(1)
    }
}

/// Aggregate statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Requests satisfied locally.
    pub hits: u64,
    /// Requests that required the parent.
    pub misses: u64,
    /// Lines written back (dirty evictions/probe write-backs).
    pub writebacks: u64,
    /// Probes sent to children.
    pub probes_sent: u64,
    /// Probes received from the parent.
    pub probes_received: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Times the injected probe/grant race fired (fault injection only).
    pub injected_races: u64,
    /// Core requests rejected for structural reasons (MSHRs exhausted or
    /// the line busy under a non-covering miss).
    pub mshr_stalls: u64,
}

/// The cache data arrays behind an `Arc`: cloning a cache (LightSSS
/// snapshots) shares the arrays and duplicates them lazily on the next
/// write — the same copy-on-write idea as the guest memory pages.
#[derive(Debug, Clone)]
struct CowSets(Arc<Vec<Vec<Line>>>);

impl CowSets {
    fn new(sets: Vec<Vec<Line>>) -> Self {
        CowSets(Arc::new(sets))
    }
    fn len(&self) -> usize {
        self.0.len()
    }
    fn iter(&self) -> impl Iterator<Item = &Vec<Line>> {
        self.0.iter()
    }
    fn iter_mut(&mut self) -> impl Iterator<Item = &mut Vec<Line>> {
        Arc::make_mut(&mut self.0).iter_mut()
    }
    /// Serialize every valid line for the eager SSS snapshot baseline.
    fn dump(&self, out: &mut Vec<u8>) {
        for set in self.0.iter() {
            for l in set {
                out.extend_from_slice(&l.tag.to_le_bytes());
                out.push(l.perm as u8);
                out.push(l.dirty as u8);
                out.extend_from_slice(&l.data);
            }
        }
    }
}

impl Index<usize> for CowSets {
    type Output = Vec<Line>;
    fn index(&self, i: usize) -> &Vec<Line> {
        &self.0[i]
    }
}

impl IndexMut<usize> for CowSets {
    fn index_mut(&mut self, i: usize) -> &mut Vec<Line> {
        &mut Arc::make_mut(&mut self.0)[i]
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64, // full line address
    perm: Perm,
    dirty: bool,
    child_perm: [Perm; 2],
    data: LineData,
    installed_at: u64,
}

impl Line {
    fn invalid() -> Self {
        Line {
            tag: u64::MAX,
            perm: Perm::None,
            dirty: false,
            child_perm: [Perm::None; 2],
            data: [0; LINE_SIZE as usize],
            installed_at: 0,
        }
    }

    fn max_child_perm(&self) -> Perm {
        self.child_perm[0].max(self.child_perm[1])
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Requester {
    /// A child cache acquiring permission.
    Child {
        slot: usize,
        need: Perm,
    },
    /// Core-side requests (L1 only); all target the same line.
    Core(Vec<CoreReq>),
    /// A probe from the parent capping our permission.
    ParentProbe {
        cap: Perm,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnState {
    /// Waiting for ProbeAcks from children.
    ProbeChildren { outstanding: usize },
    /// Waiting for a Grant from the parent.
    AcquireParent,
    /// Waiting for recall ProbeAcks on the eviction victim.
    EvictRecall { outstanding: usize, victim: u64 },
    /// Waiting for the parent's ReleaseAck (eviction in flight).
    ReleaseWait { victim: u64 },
    /// Grant sent to a child; waiting for its GrantAck before releasing
    /// the per-line serialization.
    GrantWait,
}

#[derive(Debug, Clone)]
struct Txn {
    line: u64,
    state: TxnState,
    requester: Requester,
    /// Grant buffered while the victim eviction completes.
    buffered_grant: Option<(Perm, Option<Box<LineData>>)>,
}

/// Messages and completions produced by one cache in one cycle.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Protocol messages to route (destination, payload).
    pub msgs: Vec<(Node, MsgKind)>,
    /// Core-request completions (L1 caches only).
    pub completions: Vec<Completion>,
}

/// One coherent cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Configuration.
    pub cfg: CacheConfig,
    /// This cache's node id.
    pub node: Node,
    /// Parent node (next level toward memory).
    pub parent: Node,
    /// Child nodes (cache levels or core ports that acquire from us).
    pub children: Vec<Node>,
    sets: CowSets,
    txns: Vec<Txn>,
    waiting_acquires: VecDeque<(usize, Perm, u64)>, // (child slot, need, line)
    deferred_probes: VecDeque<(u64, Perm)>,
    /// Statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Build a cache level.
    pub fn new(cfg: CacheConfig, node: Node, parent: Node, children: Vec<Node>) -> Self {
        assert!(children.len() <= 2, "at most two children per level");
        let sets = CowSets::new(vec![vec![Line::invalid(); cfg.ways]; cfg.n_sets()]);
        Cache {
            cfg,
            node,
            parent,
            children,
            sets,
            txns: Vec::new(),
            waiting_acquires: VecDeque::new(),
            deferred_probes: VecDeque::new(),
            stats: CacheStats::default(),
        }
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / LINE_SIZE) as usize) % self.sets.len()
    }

    fn find_line(&self, line: u64) -> Option<(usize, usize)> {
        let s = self.set_index(line);
        self.sets[s]
            .iter()
            .position(|l| l.tag == line && l.perm != Perm::None)
            .map(|w| (s, w))
    }

    fn line_ref(&self, line: u64) -> Option<&Line> {
        self.find_line(line).map(|(s, w)| &self.sets[s][w])
    }

    fn line_mut(&mut self, line: u64) -> Option<&mut Line> {
        let (s, w) = self.find_line(line)?;
        Some(&mut self.sets[s][w])
    }

    fn child_slot(&self, node: Node) -> usize {
        self.children
            .iter()
            .position(|&c| c == node)
            .unwrap_or_else(|| panic!("{:?} is not a child of {}", node, self.cfg.name))
    }

    fn has_txn_on(&self, line: u64) -> bool {
        self.txns
            .iter()
            .any(|t| t.line == line && !matches!(t.requester, Requester::ParentProbe { .. }))
    }

    /// True when any transaction (including parent probes and evictions)
    /// concerns `line` — used for per-line serialization.
    fn line_busy(&self, line: u64) -> bool {
        self.txns.iter().any(|t| {
            t.line == line
                || matches!(t.state,
                    TxnState::EvictRecall { victim, .. } | TxnState::ReleaseWait { victim }
                        if victim == line)
        })
    }

    /// Number of in-flight transactions (for MSHR occupancy stats).
    pub fn active_txns(&self) -> usize {
        self.txns.len()
    }

    // ------------------------------------------------------------------
    // Core-side interface (L1 caches).
    // ------------------------------------------------------------------

    /// Try to accept a core request. Returns false when the request must
    /// be retried later (MSHRs exhausted or the line is busy).
    pub fn submit_core(&mut self, req: CoreReq, now: u64, out: &mut Outbox) -> bool {
        let line = line_of(req.addr);
        debug_assert!(
            line_of(req.addr + req.size.max(1) - 1) == line,
            "core requests must not cross a line"
        );
        if self.line_busy(line) {
            // Merge into the existing miss when the permission suffices.
            for t in &mut self.txns {
                if t.line == line {
                    if let Requester::Core(reqs) = &mut t.requester {
                        let need = perm_for(req.kind);
                        let have = txn_need(reqs);
                        if have.covers(need) {
                            reqs.push(req);
                            return true;
                        }
                    }
                }
            }
            self.stats.mshr_stalls += 1;
            return false;
        }
        let need = perm_for(req.kind);
        if let Some(l) = self.line_ref(line) {
            if l.perm.covers(need) && l.max_child_perm() == Perm::None {
                self.stats.hits += 1;
                let (s, w) = self.find_line(line).expect("line present");
                let completion = perform_access(&mut self.sets[s][w], &req, now + self.cfg.hit_latency, true);
                out.completions.push(completion);
                return true;
            }
        }
        if self.txns.len() >= self.cfg.mshrs {
            self.stats.mshr_stalls += 1;
            return false;
        }
        self.stats.misses += 1;
        let mut txn = Txn {
            line,
            state: TxnState::AcquireParent, // placeholder, fixed by begin_serve
            requester: Requester::Core(vec![req]),
            buffered_grant: None,
        };
        if self.begin_serve(&mut txn, now, out) {
            self.txn_epilogue(line, now, out);
        } else {
            self.txns.push(txn);
        }
        true
    }

    // ------------------------------------------------------------------
    // Protocol engine.
    // ------------------------------------------------------------------

    /// Handle an incoming protocol message.
    pub fn handle(&mut self, src: Node, kind: MsgKind, now: u64, out: &mut Outbox) {
        match kind {
            MsgKind::Acquire { line, need } => {
                let slot = self.child_slot(src);
                if self.line_busy(line) {
                    self.waiting_acquires.push_back((slot, need, line));
                } else {
                    let mut txn = Txn {
                        line,
                        state: TxnState::AcquireParent,
                        requester: Requester::Child { slot, need },
                        buffered_grant: None,
                    };
                    if self.begin_serve(&mut txn, now, out) {
                        self.txn_epilogue(line, now, out);
                    } else {
                        self.txns.push(txn);
                    }
                }
            }
            MsgKind::Grant { line, perm, data } => {
                out.msgs.push((self.parent, MsgKind::GrantAck { line }));
                self.on_grant(line, perm, data, now, out);
            }
            MsgKind::GrantAck { line } => {
                if let Some(idx) = self
                    .txns
                    .iter()
                    .position(|t| t.line == line && t.state == TxnState::GrantWait)
                {
                    self.txns.swap_remove(idx);
                    self.txn_epilogue(line, now, out);
                }
            }
            MsgKind::Probe { line, cap } => {
                self.stats.probes_received += 1;
                self.on_probe(line, cap, now, out);
            }
            MsgKind::ProbeAck { line, now: child_now, data } => {
                let slot = self.child_slot(src);
                self.on_probe_ack(line, slot, child_now, data, now, out);
            }
            MsgKind::Release { line, data } => {
                let slot = self.child_slot(src);
                if let Some(l) = self.line_mut(line) {
                    l.child_perm[slot] = Perm::None;
                    if let Some(d) = data {
                        l.data = *d;
                        l.dirty = true;
                    }
                }
                out.msgs.push((src, MsgKind::ReleaseAck { line }));
            }
            MsgKind::ReleaseAck { line } => {
                self.on_release_ack(line, now, out);
            }
        }
    }

    /// Start (or restart) serving an acquire-type transaction: probe
    /// conflicting children, then acquire from the parent, then grant.
    /// Returns true when the transaction completed synchronously.
    fn begin_serve(&mut self, txn: &mut Txn, now: u64, out: &mut Outbox) -> bool {
        let line = txn.line;
        let need = match &txn.requester {
            Requester::Child { need, .. } => *need,
            Requester::Core(reqs) => txn_need(reqs),
            _ => unreachable!("begin_serve on non-acquire txn"),
        };
        let exclude = match &txn.requester {
            Requester::Child { slot, .. } => Some(*slot),
            _ => None,
        };
        if let Some((s, w)) = self.find_line(line) {
            let l = &self.sets[s][w];
            if l.perm.covers(need) {
                // Locally sufficient: shrink other children first.
                let cap = if need == Perm::Trunk {
                    Perm::None
                } else {
                    Perm::Branch
                };
                let mut outstanding = 0;
                for (slot, child) in self.children.iter().enumerate() {
                    if Some(slot) != exclude && l.child_perm[slot] > cap {
                        out.msgs.push((*child, MsgKind::Probe { line, cap }));
                        outstanding += 1;
                    }
                }
                self.stats.probes_sent += outstanding as u64;
                return if outstanding > 0 {
                    txn.state = TxnState::ProbeChildren {
                        outstanding: outstanding as usize,
                    };
                    false
                } else {
                    self.finish_serve(txn, now, out)
                };
            }
        }
        // Grow our own permission.
        out.msgs.push((self.parent, MsgKind::Acquire { line, need }));
        txn.state = TxnState::AcquireParent;
        false
    }

    /// Complete an acquire-type transaction: update directory/data and
    /// respond to the requester. Returns true when fully done (core
    /// requests); child grants keep the line serialized until GrantAck.
    fn finish_serve(&mut self, txn: &mut Txn, now: u64, out: &mut Outbox) -> bool {
        let line = txn.line;
        let latency = self.cfg.hit_latency;
        let (s, w) = self.find_line(line).expect("line installed by now");
        match &txn.requester {
            Requester::Child { slot, need } => {
                let l = &mut self.sets[s][w];
                l.child_perm[*slot] = *need;
                if *need == Perm::Trunk {
                    for (i, p) in l.child_perm.iter_mut().enumerate() {
                        if i != *slot {
                            *p = Perm::None;
                        }
                    }
                }
                out.msgs.push((
                    self.children[*slot],
                    MsgKind::Grant {
                        line,
                        perm: *need,
                        data: Some(Box::new(l.data)),
                    },
                ));
                txn.state = TxnState::GrantWait;
                false
            }
            Requester::Core(reqs) => {
                for req in reqs {
                    let l = &mut self.sets[s][w];
                    let completion = perform_access(l, req, now + latency, false);
                    out.completions.push(completion);
                }
                true
            }
            _ => unreachable!("finish_serve on non-acquire txn"),
        }
    }

    fn on_grant(
        &mut self,
        line: u64,
        perm: Perm,
        data: Option<Box<LineData>>,
        now: u64,
        out: &mut Outbox,
    ) {
        let idx = self
            .txns
            .iter()
            .position(|t| t.line == line && t.state == TxnState::AcquireParent)
            .unwrap_or_else(|| panic!("{}: unexpected grant for {line:#x}", self.cfg.name));
        let mut txn = self.txns.swap_remove(idx);
        // Install: find a way (existing line for upgrades, else a victim).
        if self.find_line(line).is_some() {
            let l = self.line_mut(line).expect("present");
            l.perm = perm;
            if let Some(d) = data {
                if !l.dirty {
                    l.data = *d;
                }
            }
            l.installed_at = now;
            if self.begin_serve(&mut txn, now, out) {
                self.complete_txn(txn, now, out);
            } else {
                self.txns.push(txn);
            }
            return;
        }
        let set = self.set_index(line);
        match self.pick_victim(set, line) {
            VictimChoice::Free(w) => {
                self.install(set, w, line, perm, data.as_deref(), now);
                if self.begin_serve(&mut txn, now, out) {
                    self.complete_txn(txn, now, out);
                } else {
                    self.txns.push(txn);
                }
            }
            VictimChoice::Evict(wv) => {
                let victim = self.sets[set][wv].tag;
                self.stats.evictions += 1;
                let recalled = self.recall_children(victim, out);
                txn.buffered_grant = Some((perm, data));
                if recalled > 0 {
                    txn.state = TxnState::EvictRecall {
                        outstanding: recalled,
                        victim,
                    };
                    self.txns.push(txn);
                } else {
                    self.release_victim(victim, out);
                    txn.state = TxnState::ReleaseWait { victim };
                    self.txns.push(txn);
                }
            }
        }
    }

    /// Send recall probes to children holding `victim`; returns how many.
    fn recall_children(&mut self, victim: u64, out: &mut Outbox) -> usize {
        let Some(l) = self.line_ref(victim) else {
            return 0;
        };
        let mut n = 0;
        for (slot, child) in self.children.iter().enumerate() {
            if l.child_perm[slot] > Perm::None {
                out.msgs.push((
                    *child,
                    MsgKind::Probe {
                        line: victim,
                        cap: Perm::None,
                    },
                ));
                n += 1;
            }
        }
        self.stats.probes_sent += n as u64;
        n
    }

    /// Issue the Release for a fully recalled victim.
    fn release_victim(&mut self, victim: u64, out: &mut Outbox) {
        let l = self.line_mut(victim).expect("victim present");
        let data = if l.dirty {
            Some(Box::new(l.data))
        } else {
            None
        };
        if data.is_some() {
            self.stats.writebacks += 1;
        }
        out.msgs.push((self.parent, MsgKind::Release { line: victim, data }));
        let l = self.line_mut(victim).expect("victim present");
        *l = Line::invalid();
    }

    fn on_release_ack(&mut self, released: u64, now: u64, out: &mut Outbox) {
        let idx = self
            .txns
            .iter()
            .position(|t| matches!(t.state, TxnState::ReleaseWait { victim } if victim == released));
        let Some(idx) = idx else { return };
        let mut txn = self.txns.swap_remove(idx);
        // The victim line is gone: serve anything that was deferred on it
        // (a parent probe answers "None" now; a queued acquire restarts).
        self.txn_epilogue(released, now, out);
        // Resume the buffered install.
        let (perm, data) = txn.buffered_grant.take().expect("grant buffered");
        let set = self.set_index(txn.line);
        match self.pick_victim(set, txn.line) {
            VictimChoice::Free(w) => {
                self.install(set, w, txn.line, perm, data.as_deref(), now);
                if self.begin_serve(&mut txn, now, out) {
                    self.complete_txn(txn, now, out);
                } else {
                    self.txns.push(txn);
                }
            }
            VictimChoice::Evict(wv) => {
                // Another victim needed (set under heavy pressure).
                let victim = self.sets[set][wv].tag;
                self.stats.evictions += 1;
                let recalled = self.recall_children(victim, out);
                txn.buffered_grant = Some((perm, data));
                if recalled > 0 {
                    txn.state = TxnState::EvictRecall {
                        outstanding: recalled,
                        victim,
                    };
                } else {
                    self.release_victim(victim, out);
                    txn.state = TxnState::ReleaseWait { victim };
                }
                self.txns.push(txn);
            }
        }
    }

    fn install(
        &mut self,
        set: usize,
        way: usize,
        line: u64,
        perm: Perm,
        data: Option<&LineData>,
        now: u64,
    ) {
        let l = &mut self.sets[set][way];
        *l = Line::invalid();
        l.tag = line;
        l.perm = perm;
        if let Some(d) = data {
            l.data = *d;
        }
        l.installed_at = now;
    }

    fn pick_victim(&self, set: usize, _incoming: u64) -> VictimChoice {
        // Prefer an invalid way, then a way with no child copies (clean
        // first), finally any non-busy way that needs recall.
        if let Some(w) = self.sets[set].iter().position(|l| l.perm == Perm::None) {
            return VictimChoice::Free(w);
        }
        let busy = |l: &Line| self.line_busy(l.tag);
        let mut candidate: Option<usize> = None;
        for (w, l) in self.sets[set].iter().enumerate() {
            if busy(l) {
                continue;
            }
            if l.max_child_perm() == Perm::None && !l.dirty {
                return VictimChoice::Evict(w);
            }
            candidate.get_or_insert(w);
        }
        VictimChoice::Evict(candidate.expect("at least one non-busy way per set"))
    }

    fn on_probe(&mut self, line: u64, cap: Perm, now: u64, out: &mut Outbox) {
        // Defer while we are mid-transaction with installed state on the
        // line (probing children or evicting it).
        let blocking = self.txns.iter().any(|t| {
            t.line == line
                && matches!(
                    t.state,
                    TxnState::ProbeChildren { .. }
                        | TxnState::EvictRecall { .. }
                        | TxnState::ReleaseWait { .. }
                        | TxnState::GrantWait
                )
        }) || self
            .txns
            .iter()
            .any(|t| matches!(t.state, TxnState::EvictRecall { victim, .. } | TxnState::ReleaseWait { victim } if victim == line));
        if blocking {
            self.deferred_probes.push_back((line, cap));
            return;
        }
        let Some((s, w)) = self.find_line(line) else {
            // We no longer hold the line (e.g. it raced with our Release).
            out.msgs.push((
                self.parent,
                MsgKind::ProbeAck {
                    line,
                    now: Perm::None,
                    data: None,
                },
            ));
            return;
        };
        let l = &self.sets[s][w];
        let mut outstanding = 0;
        for (slot, child) in self.children.iter().enumerate() {
            if l.child_perm[slot] > cap {
                out.msgs.push((*child, MsgKind::Probe { line, cap }));
                outstanding += 1;
            }
        }
        self.stats.probes_sent += outstanding as u64;
        if outstanding > 0 {
            self.txns.push(Txn {
                line,
                state: TxnState::ProbeChildren { outstanding },
                requester: Requester::ParentProbe { cap },
                buffered_grant: None,
            });
        } else {
            self.probe_ack_now(line, cap, now, out);
        }
    }

    fn probe_ack_now(&mut self, line: u64, cap: Perm, now: u64, out: &mut Outbox) {
        let parent = self.parent;
        let inject = self.cfg.inject_probe_grant_race;
        let l = self.line_mut(line).expect("probed line present");
        // FAULT INJECTION (paper §IV-C): when the probe overlaps a
        // just-granted line ("Probe and GrantData from L3 arrive at a
        // specific time interval"), the buggy MSHR mixes up its data
        // buffers and writes back the wrong data.
        let injected = inject && now.saturating_sub(l.installed_at) <= 300;
        if injected {
            l.data[0] ^= 0xff;
            l.data[8] ^= 0xff;
            l.dirty = true;
        }
        let data = if l.dirty && cap < Perm::Trunk {
            l.dirty = false;
            Some(Box::new(l.data))
        } else {
            None
        };
        let wrote_back = data.is_some();
        l.perm = cap;
        if cap == Perm::None {
            *l = Line::invalid();
        }
        if wrote_back {
            self.stats.writebacks += 1;
        }
        if injected {
            self.stats.injected_races += 1;
        }
        out.msgs.push((parent, MsgKind::ProbeAck { line, now: cap, data }));
    }

    fn on_probe_ack(
        &mut self,
        line: u64,
        slot: usize,
        child_now: Perm,
        data: Option<Box<LineData>>,
        now: u64,
        out: &mut Outbox,
    ) {
        if let Some(l) = self.line_mut(line) {
            l.child_perm[slot] = child_now;
            if let Some(d) = data {
                l.data = *d;
                l.dirty = true;
            }
        }
        // Find the transaction waiting on probes for this line (either an
        // acquire-type in ProbeChildren, a ParentProbe, or an EvictRecall
        // whose *victim* is this line).
        let idx = self
            .txns
            .iter()
            .position(|t| {
                (t.line == line && matches!(t.state, TxnState::ProbeChildren { .. }))
                    || matches!(t.state, TxnState::EvictRecall { victim, .. } if victim == line)
            })
            .unwrap_or_else(|| panic!("{}: stray ProbeAck for {line:#x}", self.cfg.name));
        let mut txn = self.txns.swap_remove(idx);
        match &mut txn.state {
            TxnState::ProbeChildren { outstanding } => {
                *outstanding -= 1;
                if *outstanding > 0 {
                    self.txns.push(txn);
                    return;
                }
                match txn.requester.clone() {
                    Requester::ParentProbe { cap } => {
                        self.probe_ack_now(line, cap, now, out);
                        self.txn_epilogue(line, now, out);
                    }
                    _ => {
                        if self.finish_serve(&mut txn, now, out) {
                            self.complete_txn(txn, now, out);
                        } else {
                            self.txns.push(txn);
                        }
                    }
                }
            }
            TxnState::EvictRecall { outstanding, victim } => {
                *outstanding -= 1;
                if *outstanding == 0 {
                    let victim = *victim;
                    self.release_victim(victim, out);
                    txn.state = TxnState::ReleaseWait { victim };
                }
                self.txns.push(txn);
            }
            _ => unreachable!("probe ack in unexpected state"),
        }
    }

    /// Called when an acquire-type transaction fully completes.
    fn complete_txn(&mut self, txn: Txn, now: u64, out: &mut Outbox) {
        self.txn_epilogue(txn.line, now, out);
    }

    /// After any transaction on `line` retires: run deferred probes and
    /// queued child acquires.
    fn txn_epilogue(&mut self, line: u64, now: u64, out: &mut Outbox) {
        if let Some(pos) = self.deferred_probes.iter().position(|(l, _)| *l == line) {
            let (l, cap) = self.deferred_probes.remove(pos).expect("present");
            self.on_probe(l, cap, now, out);
            // A deferred probe may itself spawn a txn on this line; queued
            // acquires wait for the next epilogue in that case.
            if self.has_txn_on(line) {
                return;
            }
        }
        if let Some(pos) = self
            .waiting_acquires
            .iter()
            .position(|&(_, _, l)| l == line)
        {
            let (slot, need, l) = self.waiting_acquires.remove(pos).expect("present");
            let mut txn = Txn {
                line: l,
                state: TxnState::AcquireParent,
                requester: Requester::Child { slot, need },
                buffered_grant: None,
            };
            if self.begin_serve(&mut txn, now, out) {
                self.complete_txn(txn, now, out);
            } else {
                self.txns.push(txn);
            }
        }
    }

    // ------------------------------------------------------------------
    // Functional inspection (DiffTest global memory, snapshots).
    // ------------------------------------------------------------------

    /// Peek line data if present (used for coherent functional reads).
    pub fn peek_line(&self, line: u64) -> Option<(&LineData, bool, Perm)> {
        self.line_ref(line).map(|l| (&l.data, l.dirty, l.perm))
    }

    /// Invalidate every line (used for fence.i on the L1I).
    ///
    /// # Panics
    ///
    /// Panics if any line is dirty — only clean (instruction) caches may
    /// be flash-invalidated.
    pub fn invalidate_all_clean(&mut self) {
        for set in self.sets.iter_mut() {
            for l in set {
                assert!(!l.dirty, "invalidate_all_clean on a dirty line");
                *l = Line::invalid();
            }
        }
    }

    /// Total number of valid lines (occupancy metric).
    pub fn valid_lines(&self) -> usize {
        self.sets
            .iter()
            .flatten()
            .filter(|l| l.perm != Perm::None)
            .count()
    }

    /// Serialize the full cache state (SSS baseline).
    pub fn dump_state(&self, out: &mut Vec<u8>) {
        self.sets.dump(out);
    }
}

enum VictimChoice {
    Free(usize),
    Evict(usize),
}

fn perm_for(kind: AccessKind) -> Perm {
    match kind {
        AccessKind::Fetch | AccessKind::Load => Perm::Branch,
        AccessKind::Store | AccessKind::LoadExclusive => Perm::Trunk,
    }
}

fn txn_need(reqs: &[CoreReq]) -> Perm {
    reqs.iter()
        .map(|r| perm_for(r.kind))
        .max()
        .unwrap_or(Perm::Branch)
}

/// Perform the data access of a hit/fill on a line and build the
/// completion record.
fn perform_access(l: &mut Line, req: &CoreReq, at: u64, l1_hit: bool) -> Completion {
    let off = (req.addr - line_of(req.addr)) as usize;
    let mut data = 0u64;
    let mut fetch_block = None;
    match req.kind {
        AccessKind::Load | AccessKind::LoadExclusive => {
            let mut buf = [0u8; 8];
            buf[..req.size as usize].copy_from_slice(&l.data[off..off + req.size as usize]);
            data = u64::from_le_bytes(buf);
        }
        AccessKind::Store => {
            let bytes = req.data.to_le_bytes();
            l.data[off..off + req.size as usize].copy_from_slice(&bytes[..req.size as usize]);
            l.dirty = true;
        }
        AccessKind::Fetch => {
            let mut blk = [0u8; 32];
            let take = (LINE_SIZE as usize - off).min(32);
            blk[..take].copy_from_slice(&l.data[off..off + take]);
            fetch_block = Some(blk);
        }
    }
    Completion {
        req: *req,
        at,
        data,
        fetch_block,
        l1_hit,
    }
}
