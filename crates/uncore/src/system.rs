//! The memory system: cores' L1s, private L2s, an optional shared L3, and
//! the memory controller, connected by latency-modeled links.
//!
//! The topology mirrors XiangShan's (Table II): per-core L1I/L1D under a
//! private L2; NH adds a shared L3 between the L2s and DRAM, YQH connects
//! its (single) L2 directly to DRAM.

use crate::cache::{Cache, CacheConfig, CacheStats, Outbox};
use crate::dram::{DramModel, DramStats};
use crate::hist::Hist;
use crate::msg::{
    line_of, AccessKind, Completion, CoreReq, Msg, MsgKind, Node, Perm, LINE_SIZE,
};
use crate::scoreboard::CoherenceScoreboard;
use riscv_isa::mem::{PhysMem, SparseMemory};
use std::collections::{BinaryHeap, HashMap};

/// Per-link message latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkLatencies {
    /// L1 <-> L2.
    pub l1_l2: u64,
    /// L2 <-> L3.
    pub l2_l3: u64,
    /// Last-level cache <-> memory controller.
    pub llc_dram: u64,
}

impl Default for LinkLatencies {
    fn default() -> Self {
        LinkLatencies {
            l1_l2: 3,
            l2_l3: 6,
            llc_dram: 10,
        }
    }
}

/// Memory-system configuration.
#[derive(Debug, Clone)]
pub struct MemSystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// L1 instruction cache template (instantiated per core).
    pub l1i: CacheConfig,
    /// L1 data cache template.
    pub l1d: CacheConfig,
    /// Private L2 template.
    pub l2: CacheConfig,
    /// Shared L3 (None for the YQH generation).
    pub l3: Option<CacheConfig>,
    /// Link latencies.
    pub links: LinkLatencies,
    /// Enable the coherence scoreboard checker.
    pub scoreboard: bool,
    /// Record per-request latency histograms (telemetry; small per-access
    /// bookkeeping cost, so off by default).
    pub telemetry: bool,
}

impl MemSystemConfig {
    /// A small configuration for unit tests.
    pub fn tiny(cores: usize) -> Self {
        MemSystemConfig {
            cores,
            l1i: CacheConfig::new("l1i", 4096, 2, 1, 4),
            l1d: CacheConfig::new("l1d", 4096, 2, 1, 4),
            l2: CacheConfig::new("l2", 16384, 4, 4, 8),
            l3: Some(CacheConfig::new("l3", 65536, 4, 10, 16)),
            links: LinkLatencies {
                l1_l2: 1,
                l2_l3: 2,
                llc_dram: 3,
            },
            scoreboard: true,
            telemetry: false,
        }
    }
}

/// Round-trip latency histograms for the memory hierarchy, as seen from
/// the request side (submit-to-completion), plus the controller's own
/// service latency. Populated only when [`MemSystemConfig::telemetry`]
/// is set.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemLatencyHists {
    /// Data/fetch requests that hit in the L1.
    pub l1_hit: Hist,
    /// Data/fetch requests that missed the L1 (any deeper level served).
    pub l1_miss: Hist,
    /// Memory-controller service latency per line access.
    pub dram: Hist,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct TimedCompletion(Completion);

impl PartialOrd for TimedCompletion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimedCompletion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.at.cmp(&self.0.at) // min-heap on completion time
    }
}

/// The whole coherent memory system below the cores.
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemSystemConfig,
    cycle: u64,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Option<Cache>,
    wheel: BinaryHeap<Msg>,
    done: BinaryHeap<TimedCompletion>,
    dram: DramModel,
    backing: SparseMemory,
    /// Coherence scoreboard (present when enabled in the config).
    pub scoreboard: Option<CoherenceScoreboard>,
    /// Submit cycle of in-flight requests, keyed by (is_fetch, core, id).
    /// Only populated when telemetry is enabled.
    inflight_since: HashMap<(bool, usize, u64), u64>,
    lat: MemLatencyHists,
}

impl MemSystem {
    /// Build a memory system over a backing physical memory.
    pub fn new(cfg: MemSystemConfig, dram: DramModel, backing: SparseMemory) -> Self {
        let mut l1i = Vec::new();
        let mut l1d = Vec::new();
        let mut l2 = Vec::new();
        let llc_parent = Node::Dram;
        let l3 = cfg.l3.as_ref().map(|c3| {
            let children = (0..cfg.cores).map(Node::L2).collect();
            let mut c = c3.clone();
            c.name = "l3".into();
            Cache::new(c, Node::L3, llc_parent, children)
        });
        for core in 0..cfg.cores {
            let mut ci = cfg.l1i.clone();
            ci.name = format!("l1i{core}");
            let mut cd = cfg.l1d.clone();
            cd.name = format!("l1d{core}");
            let mut c2 = cfg.l2.clone();
            c2.name = format!("l2_{core}");
            l1i.push(Cache::new(ci, Node::L1i(core), Node::L2(core), vec![]));
            l1d.push(Cache::new(cd, Node::L1d(core), Node::L2(core), vec![]));
            let l2_parent = if l3.is_some() { Node::L3 } else { Node::Dram };
            l2.push(Cache::new(
                c2,
                Node::L2(core),
                l2_parent,
                vec![Node::L1i(core), Node::L1d(core)],
            ));
        }
        let scoreboard = cfg.scoreboard.then(|| {
            let mut parents = HashMap::new();
            for core in 0..cfg.cores {
                parents.insert(Node::L1i(core), Node::L2(core));
                parents.insert(Node::L1d(core), Node::L2(core));
                parents.insert(
                    Node::L2(core),
                    if cfg.l3.is_some() { Node::L3 } else { Node::Dram },
                );
            }
            if cfg.l3.is_some() {
                parents.insert(Node::L3, Node::Dram);
            }
            CoherenceScoreboard::new(parents)
        });
        MemSystem {
            cfg,
            cycle: 0,
            l1i,
            l1d,
            l2,
            l3,
            wheel: BinaryHeap::new(),
            done: BinaryHeap::new(),
            dram,
            backing,
            scoreboard,
            inflight_since: HashMap::new(),
            lat: MemLatencyHists::default(),
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The earliest future cycle at which anything in the hierarchy acts:
    /// the next in-flight message delivery or core-visible completion.
    /// `None` when the memory system is fully quiescent.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let wheel = self.wheel.peek().map(|m| m.at);
        let done = self.done.peek().map(|c| c.0.at);
        match (wheel, done) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advance the clock by `n` cycles with no deliveries. Only sound when
    /// the caller has proven nothing is due in `(cycle, cycle + n]` — i.e.
    /// `next_event_cycle()` is `None` or `> cycle + n`.
    pub fn advance_idle(&mut self, n: u64) {
        debug_assert!(self.next_event_cycle().map_or(true, |e| e > self.cycle + n));
        self.cycle += n;
    }

    /// Submit a data-side request for `core`. Returns false when the L1D
    /// cannot accept it this cycle (retry later).
    ///
    /// # Panics
    ///
    /// Panics if the access crosses a cache line.
    pub fn submit_data(&mut self, req: CoreReq) -> bool {
        let key = (false, req.core, req.id);
        let mut out = Outbox::default();
        let ok = self.l1d[req.core].submit_core(req, self.cycle, &mut out);
        self.route_outbox(Node::L1d(req.core), out);
        if ok && self.cfg.telemetry {
            self.inflight_since.insert(key, self.cycle);
        }
        ok
    }

    /// Submit an instruction fetch (32-byte block at `addr`).
    pub fn submit_fetch(&mut self, core: usize, addr: u64, id: u64) -> bool {
        let req = CoreReq {
            core,
            kind: AccessKind::Fetch,
            addr,
            size: 32,
            data: 0,
            id,
        };
        let mut out = Outbox::default();
        let ok = self.l1i[core].submit_core(req, self.cycle, &mut out);
        self.route_outbox(Node::L1i(core), out);
        if ok && self.cfg.telemetry {
            self.inflight_since.insert((true, core, id), self.cycle);
        }
        ok
    }

    /// Advance one cycle; returns the completions due this cycle.
    pub fn tick(&mut self) -> Vec<Completion> {
        self.cycle += 1;
        // Deliver all messages due now.
        while let Some(top) = self.wheel.peek() {
            if top.at > self.cycle {
                break;
            }
            let msg = self.wheel.pop().expect("peeked");
            if let Some(sb) = &mut self.scoreboard {
                sb.observe(&msg);
            }
            self.deliver(msg);
        }
        // Collect due completions.
        let mut out = Vec::new();
        while let Some(top) = self.done.peek() {
            if top.0.at > self.cycle {
                break;
            }
            let c = self.done.pop().expect("peeked").0;
            if self.cfg.telemetry {
                let key = (c.req.kind == AccessKind::Fetch, c.req.core, c.req.id);
                if let Some(since) = self.inflight_since.remove(&key) {
                    let rtt = c.at.saturating_sub(since);
                    if c.l1_hit {
                        self.lat.l1_hit.record(rtt);
                    } else {
                        self.lat.l1_miss.record(rtt);
                    }
                }
            }
            out.push(c);
        }
        out
    }

    fn deliver(&mut self, msg: Msg) {
        match msg.dst {
            Node::Dram => self.deliver_dram(msg),
            node => {
                let mut out = Outbox::default();
                let now = self.cycle;
                let cache = self.cache_mut(node);
                cache.handle(msg.src, msg.kind, now, &mut out);
                self.route_outbox(node, out);
            }
        }
    }

    fn deliver_dram(&mut self, msg: Msg) {
        match msg.kind {
            MsgKind::Acquire { line, need: _ } => {
                let latency = self.dram.access(line, self.cycle);
                if self.cfg.telemetry {
                    self.lat.dram.record(latency);
                }
                let mut data = Box::new([0u8; LINE_SIZE as usize]);
                self.backing.read(line, &mut data[..]);
                self.schedule(
                    Node::Dram,
                    msg.src,
                    MsgKind::Grant {
                        line,
                        perm: Perm::Trunk,
                        data: Some(data),
                    },
                    latency + self.cfg.links.llc_dram,
                );
            }
            MsgKind::Release { line, data } => {
                if let Some(d) = data {
                    self.backing.write(line, &d[..]);
                }
                self.schedule(
                    Node::Dram,
                    msg.src,
                    MsgKind::ReleaseAck { line },
                    self.cfg.links.llc_dram,
                );
            }
            MsgKind::GrantAck { .. } => {
                // The controller has no probes, so no serialization needed.
            }
            other => panic!("memory controller cannot handle {other:?}"),
        }
    }

    fn cache_mut(&mut self, node: Node) -> &mut Cache {
        match node {
            Node::L1i(c) => &mut self.l1i[c],
            Node::L1d(c) => &mut self.l1d[c],
            Node::L2(c) => &mut self.l2[c],
            Node::L3 => self.l3.as_mut().expect("no L3 in this configuration"),
            n => panic!("{n:?} is not a cache"),
        }
    }

    fn link_latency(&self, a: Node, b: Node) -> u64 {
        use Node::*;
        match (a, b) {
            (L1i(_) | L1d(_), L2(_)) | (L2(_), L1i(_) | L1d(_)) => self.cfg.links.l1_l2,
            (L2(_), L3) | (L3, L2(_)) => self.cfg.links.l2_l3,
            (L3, Dram) | (Dram, L3) | (L2(_), Dram) | (Dram, L2(_)) => self.cfg.links.llc_dram,
            (x, y) => panic!("no link between {x:?} and {y:?}"),
        }
    }

    fn schedule(&mut self, src: Node, dst: Node, kind: MsgKind, latency: u64) {
        self.wheel.push(Msg {
            at: self.cycle + latency.max(1),
            src,
            dst,
            kind,
        });
    }

    fn route_outbox(&mut self, from: Node, out: Outbox) {
        for (dst, kind) in out.msgs {
            let latency = self.link_latency(from, dst);
            self.schedule(from, dst, kind, latency);
        }
        for c in out.completions {
            self.done.push(TimedCompletion(c));
        }
    }

    // ------------------------------------------------------------------
    // Functional access (program loading, DiffTest global memory).
    // ------------------------------------------------------------------

    /// Read bytes with full coherence: the freshest dirty copy anywhere in
    /// the hierarchy wins. Used by the DiffTest global-memory diff-rule.
    pub fn coherent_read(&mut self, addr: u64, size: u64) -> u64 {
        let line = line_of(addr);
        let off = (addr - line) as usize;
        let grab = |data: &crate::msg::LineData| {
            let mut buf = [0u8; 8];
            buf[..size as usize].copy_from_slice(&data[off..off + size as usize]);
            u64::from_le_bytes(buf)
        };
        // Freshest first: L1D dirty, L2 dirty, L3 dirty, backing memory.
        for c in &self.l1d {
            if let Some((d, dirty, _)) = c.peek_line(line) {
                if dirty {
                    return grab(d);
                }
            }
        }
        for c in &self.l2 {
            if let Some((d, dirty, _)) = c.peek_line(line) {
                if dirty {
                    return grab(d);
                }
            }
        }
        if let Some(c) = &self.l3 {
            if let Some((d, dirty, _)) = c.peek_line(line) {
                if dirty {
                    return grab(d);
                }
            }
        }
        self.backing.read_uint(addr, size)
    }

    /// Direct backing-memory access (program loading before boot).
    pub fn backing_mut(&mut self) -> &mut SparseMemory {
        &mut self.backing
    }

    /// Immutable backing-memory view (snapshot serialization).
    pub fn backing(&self) -> &SparseMemory {
        &self.backing
    }

    /// Eagerly serialize the full memory-system state: backing memory plus
    /// every cache array — the SSS baseline snapshot of paper §III-C2.
    pub fn serialize_full_state(&self) -> Vec<u8> {
        let mut out = self.backing.serialize_full();
        for c in self
            .l1i
            .iter()
            .chain(&self.l1d)
            .chain(&self.l2)
            .chain(self.l3.iter())
        {
            c.dump_state(&mut out);
        }
        out
    }

    /// Invalidate all (clean) lines of a core's L1I — `fence.i`.
    pub fn flush_l1i(&mut self, core: usize) {
        self.l1i[core].invalidate_all_clean();
    }

    /// Statistics of each level, keyed by cache name.
    pub fn stats(&self) -> Vec<(String, CacheStats)> {
        let mut v: Vec<(String, CacheStats)> = Vec::new();
        for c in self.l1i.iter().chain(&self.l1d).chain(&self.l2) {
            v.push((c.cfg.name.clone(), c.stats));
        }
        if let Some(c) = &self.l3 {
            v.push((c.cfg.name.clone(), c.stats));
        }
        v
    }

    /// Memory-controller statistics.
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Round-trip / service latency histograms (empty unless the config
    /// enables telemetry).
    pub fn latency_hists(&self) -> &MemLatencyHists {
        &self.lat
    }

    /// In-flight transaction count of core `core`'s L1D (MSHR occupancy
    /// proxy, sampled per cycle by the core's telemetry).
    pub fn l1d_active_txns(&self, core: usize) -> usize {
        self.l1d[core].active_txns()
    }

    /// Enable the §IV-C probe/grant race fault in core `core`'s L2.
    pub fn inject_l2_race_bug(&mut self, core: usize) {
        self.l2[core].cfg.inject_probe_grant_race = true;
    }

    /// True when nothing is in flight anywhere in the hierarchy.
    pub fn quiescent(&self) -> bool {
        self.wheel.is_empty()
            && self.done.is_empty()
            && self
                .l1i
                .iter()
                .chain(&self.l1d)
                .chain(&self.l2)
                .chain(self.l3.iter())
                .all(|c| c.active_txns() == 0)
    }
}

/// Drive the system until a specific request id completes (test helper).
pub fn run_until_complete(sys: &mut MemSystem, id: u64, max_cycles: u64) -> Option<Completion> {
    for _ in 0..max_cycles {
        for c in sys.tick() {
            if c.req.id == id {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load_req(core: usize, addr: u64, id: u64) -> CoreReq {
        CoreReq {
            core,
            kind: AccessKind::Load,
            addr,
            size: 8,
            data: 0,
            id,
        }
    }

    fn store_req(core: usize, addr: u64, data: u64, id: u64) -> CoreReq {
        CoreReq {
            core,
            kind: AccessKind::Store,
            addr,
            size: 8,
            data,
            id,
        }
    }

    fn new_sys(cores: usize) -> MemSystem {
        let mut backing = SparseMemory::new();
        backing.write_uint(0x1000, 8, 0xabcd_ef01_2345_6789);
        MemSystem::new(MemSystemConfig::tiny(cores), DramModel::fixed(20), backing)
    }

    #[test]
    fn load_through_hierarchy() {
        let mut sys = new_sys(1);
        assert!(sys.submit_data(load_req(0, 0x1000, 1)));
        let c = run_until_complete(&mut sys, 1, 1000).expect("completes");
        assert_eq!(c.data, 0xabcd_ef01_2345_6789);
        assert!(!c.l1_hit, "first access must miss");
        // Second access to the same line hits in L1.
        assert!(sys.submit_data(load_req(0, 0x1008, 2)));
        let c2 = run_until_complete(&mut sys, 2, 1000).expect("completes");
        assert!(c2.l1_hit);
        assert!(c2.at - sys_first_latency_floor() <= c.at, "hit is faster");
        assert!(sys.scoreboard.as_ref().unwrap().clean());
    }

    fn sys_first_latency_floor() -> u64 {
        1
    }

    #[test]
    fn store_then_load_roundtrip() {
        let mut sys = new_sys(1);
        assert!(sys.submit_data(store_req(0, 0x2000, 42, 1)));
        run_until_complete(&mut sys, 1, 1000).expect("store completes");
        assert!(sys.submit_data(load_req(0, 0x2000, 2)));
        let c = run_until_complete(&mut sys, 2, 1000).expect("load completes");
        assert_eq!(c.data, 42);
        assert_eq!(sys.coherent_read(0x2000, 8), 42);
        // Backing memory still stale until eviction — that's the point of
        // the coherent read.
        assert_eq!(sys.backing_mut().read_uint(0x2000, 8), 0);
    }

    #[test]
    fn latency_ordering_l1_l2_dram() {
        let mut sys = new_sys(1);
        // DRAM fill.
        sys.submit_data(load_req(0, 0x1000, 1));
        let dram_fill = run_until_complete(&mut sys, 1, 1000).unwrap();
        let t0 = sys.cycle();
        // L1 hit.
        sys.submit_data(load_req(0, 0x1000, 2));
        let l1_hit = run_until_complete(&mut sys, 2, 1000).unwrap();
        let dram_latency = dram_fill.at;
        let l1_latency = l1_hit.at - t0;
        assert!(
            l1_latency < dram_latency / 3,
            "l1 {l1_latency} vs dram {dram_latency}"
        );
    }

    #[test]
    fn eviction_writes_back_through_levels() {
        let mut sys = new_sys(1);
        // Write enough distinct lines mapping to the same L1 set to force
        // evictions through L2 and beyond (L1: 4 KiB, 2 ways, 32 sets).
        let mut id = 1;
        for i in 0..64u64 {
            let addr = 0x10_0000 + i * 4096; // same set every time
            assert!(sys.submit_data(store_req(0, addr, i + 1, id)));
            run_until_complete(&mut sys, id, 5000).expect("store completes");
            id += 1;
        }
        // All values must be recoverable.
        for i in 0..64u64 {
            let addr = 0x10_0000 + i * 4096;
            assert_eq!(sys.coherent_read(addr, 8), i + 1, "line {i}");
        }
        assert!(sys.scoreboard.as_ref().unwrap().clean());
        let stats = sys.stats();
        let l1d = &stats.iter().find(|(n, _)| n == "l1d0").unwrap().1;
        assert!(l1d.evictions > 0, "L1D must have evicted");
    }

    #[test]
    fn fetch_path_returns_block() {
        let mut sys = new_sys(1);
        for i in 0..8u64 {
            sys.backing_mut().write_uint(0x8000_0000 + i * 4, 4, i);
        }
        assert!(sys.submit_fetch(0, 0x8000_0000, 7));
        let c = run_until_complete(&mut sys, 7, 1000).expect("fetch completes");
        let block = c.fetch_block.expect("fetch returns block");
        assert_eq!(u32::from_le_bytes(block[0..4].try_into().unwrap()), 0);
        assert_eq!(u32::from_le_bytes(block[28..32].try_into().unwrap()), 7);
    }

    #[test]
    fn dual_core_coherence() {
        let mut sys = new_sys(2);
        // Core 0 writes, core 1 reads the same line.
        assert!(sys.submit_data(store_req(0, 0x3000, 1234, 1)));
        run_until_complete(&mut sys, 1, 2000).expect("store");
        assert!(sys.submit_data(load_req(1, 0x3000, 2)));
        let c = run_until_complete(&mut sys, 2, 2000).expect("load");
        assert_eq!(c.data, 1234, "core 1 must see core 0's store");
        // And back: core 1 writes, core 0 reads.
        assert!(sys.submit_data(store_req(1, 0x3000, 5678, 3)));
        run_until_complete(&mut sys, 3, 2000).expect("store");
        assert!(sys.submit_data(load_req(0, 0x3000, 4)));
        let c = run_until_complete(&mut sys, 4, 2000).expect("load");
        assert_eq!(c.data, 5678);
        assert!(sys.scoreboard.as_ref().unwrap().clean(), "{:?}", sys.scoreboard.as_ref().unwrap().violations);
    }

    #[test]
    fn ping_pong_many_rounds_stays_coherent() {
        let mut sys = new_sys(2);
        let mut id = 1;
        let mut expected = 0u64;
        for round in 0..50u64 {
            let writer = (round % 2) as usize;
            expected = round + 1000;
            assert!(sys.submit_data(store_req(writer, 0x4000, expected, id)));
            run_until_complete(&mut sys, id, 5000).expect("store");
            id += 1;
            let reader = 1 - writer;
            assert!(sys.submit_data(load_req(reader, 0x4000, id)));
            let c = run_until_complete(&mut sys, id, 5000).expect("load");
            assert_eq!(c.data, expected, "round {round}");
            id += 1;
        }
        assert_eq!(sys.coherent_read(0x4000, 8), expected);
        assert!(sys.scoreboard.as_ref().unwrap().clean());
    }

    /// Drive concurrent same-line stores from both cores, then check that
    /// (a) both cores agree on the stored dword and (b) the *untouched*
    /// neighboring dword of the same line keeps its sentinel value.
    /// Returns true when wrong data was observed — the signature of the
    /// injected Probe/GrantData corruption.
    fn race_rounds(sys: &mut MemSystem, rounds: u64) -> bool {
        const SENTINEL: u64 = 0xaaaa_5555_aaaa_5555;
        sys.backing_mut().write_uint(0x5008, 8, SENTINEL);
        let mut id = 1;
        for round in 0..rounds {
            // Both cores store concurrently — this creates the
            // Probe/GrantData overlap window at the L2s.
            let v0 = round * 2 + 1;
            let v1 = round * 2 + 2;
            sys.submit_data(store_req(0, 0x5000, v0, id));
            sys.submit_data(store_req(1, 0x5000, v1, id + 1));
            id += 2;
            for _ in 0..400 {
                sys.tick();
            }
            sys.submit_data(load_req(0, 0x5000, id));
            let c0 = run_until_complete(sys, id, 5000).expect("load 0");
            sys.submit_data(load_req(1, 0x5000, id + 1));
            let c1 = run_until_complete(sys, id + 1, 5000).expect("load 1");
            sys.submit_data(load_req(0, 0x5008, id + 2));
            let s0 = run_until_complete(sys, id + 2, 5000).expect("sentinel load");
            id += 3;
            if c0.data != c1.data || (c0.data != v0 && c0.data != v1) || s0.data != SENTINEL {
                return true;
            }
        }
        false
    }

    #[test]
    fn concurrent_stores_stay_coherent_without_bug() {
        let mut sys = new_sys(2);
        assert!(!race_rounds(&mut sys, 25), "no wrong data expected");
        assert!(
            sys.scoreboard.as_ref().unwrap().clean(),
            "{:?}",
            sys.scoreboard.as_ref().unwrap().violations
        );
    }

    #[test]
    fn injected_probe_grant_race_breaks_coherence() {
        let mut sys = new_sys(2);
        sys.inject_l2_race_bug(0);
        let wrong_data = race_rounds(&mut sys, 25);
        assert!(
            wrong_data,
            "the injected race must produce observable wrong data"
        );
    }

    #[test]
    fn telemetry_latency_hists_populate() {
        let mut backing = SparseMemory::new();
        backing.write_uint(0x1000, 8, 7);
        let mut cfg = MemSystemConfig::tiny(1);
        cfg.telemetry = true;
        let mut sys = MemSystem::new(cfg, DramModel::fixed(20), backing);
        sys.submit_data(load_req(0, 0x1000, 1));
        run_until_complete(&mut sys, 1, 1000).expect("miss completes");
        sys.submit_data(load_req(0, 0x1008, 2));
        run_until_complete(&mut sys, 2, 1000).expect("hit completes");
        let lat = sys.latency_hists();
        assert_eq!(lat.l1_miss.samples, 1);
        assert_eq!(lat.l1_hit.samples, 1);
        assert!(lat.l1_miss.max > lat.l1_hit.max, "miss slower than hit");
        assert_eq!(lat.dram.samples, 1);
        assert_eq!(sys.dram_stats().accesses, 1);
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let mut sys = new_sys(1);
        sys.submit_data(load_req(0, 0x1000, 1));
        run_until_complete(&mut sys, 1, 1000).expect("completes");
        assert!(sys.latency_hists().l1_hit.is_empty());
        assert!(sys.latency_hists().l1_miss.is_empty());
        assert!(sys.latency_hists().dram.is_empty());
        // DRAM access counting is always on (cheap, needed by RunStats).
        assert_eq!(sys.dram_stats().accesses, 1);
    }

    #[test]
    fn mshr_stalls_count_rejections() {
        let mut sys = new_sys(1);
        for i in 0..6u64 {
            sys.submit_data(load_req(0, 0xa000 + i * 64, 300 + i));
        }
        let stats = sys.stats();
        let l1d = &stats.iter().find(|(n, _)| n == "l1d0").unwrap().1;
        assert_eq!(l1d.mshr_stalls, 2, "2 of 6 distinct-line misses rejected");
    }

    #[test]
    fn mshr_backpressure() {
        let mut sys = new_sys(1);
        // 4 MSHRs in the tiny config: the fifth distinct-line miss must be
        // rejected in the same cycle.
        let mut accepted = 0;
        for i in 0..6u64 {
            if sys.submit_data(load_req(0, 0x9000 + i * 64, 100 + i)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4, "MSHR limit must backpressure");
        // They all eventually complete after draining.
        for _ in 0..2000 {
            sys.tick();
        }
        assert!(sys.quiescent());
    }
}
