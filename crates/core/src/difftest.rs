//! DiffTest: the co-simulation verification framework (paper §III-B).
//!
//! The DUT's instruction-commit probes feed [`DiffTest::on_commit`]; each
//! event advances the corresponding single-core reference model and
//! checks equivalence, applying diff-rules where the specification leaves
//! the outcome open. Multi-core designs are verified against simple
//! single-core REFs by pruning the interleaving space with the Global
//! Memory rule, exactly as in §III-B2b.

use crate::coverage::CommitCoverage;
use crate::rules::{compare_csrs, CsrMismatch, CsrRuleTable, DiffRule, RuleStats};
use nemu::hart::{self, Hart, StepInfo};
use riscv_isa::exec::load_extend;
use riscv_isa::mem::{PhysMem, SparseMemory};
use riscv_isa::state::{ArchState, StateDiff};
use riscv_isa::trap::{Exception, Trap};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xscore::{CommitEvent, SbufferDrainEvent};

/// A reference model DiffTest can drive (the `R` of §III-A).
///
/// The model must be cheaply cloneable (snapshot/rollback is how DiffTest
/// trial-executes before deciding which rule applies).
pub trait RefModel: Clone {
    /// Execute one instruction, returning its commit information.
    fn step(&mut self) -> StepInfo;
    /// Project the architectural state.
    fn arch_state(&self) -> ArchState;
    /// Force an exception before the next instruction (page-fault rule).
    fn inject_exception(&mut self, cause: Exception, tval: u64);
    /// Force the next SC to fail (SC-timeout rule).
    fn force_sc_fail(&mut self);
    /// Patch a general-purpose register (global-memory/MMIO rules).
    fn patch_gpr(&mut self, rd: u8, value: u64);
    /// Patch a floating-point register (global-memory rule, FP loads).
    fn patch_fpr(&mut self, rd: u8, value: u64);
    /// Patch local memory (global-memory rule).
    fn patch_mem(&mut self, paddr: u64, size: u64, value: u64);
    /// Patch a CSR by address (counter-read rule).
    fn patch_csr(&mut self, csr: u16, value: u64);
}

/// NEMU as the reference model (the paper's choice: "NEMU can also be
/// used as an easy-to-develop REF for DiffTest").
#[derive(Debug, Clone)]
pub struct NemuRef {
    /// The architectural hart.
    pub hart: Hart,
    /// The REF's local memory.
    pub mem: SparseMemory,
}

impl NemuRef {
    /// Boot a REF from a program image.
    pub fn new(program: &riscv_isa::asm::Program, hartid: u64) -> Self {
        let mut mem = SparseMemory::new();
        program.load_into(&mut mem);
        NemuRef {
            hart: Hart::new(program.entry, hartid),
            mem,
        }
    }

    /// Build from explicit state and memory (checkpoint restore).
    pub fn from_state(state: ArchState, mem: SparseMemory) -> Self {
        let mut hart = Hart::new(state.pc, state.csr.mhartid);
        hart.state = state;
        NemuRef { hart, mem }
    }
}

impl RefModel for NemuRef {
    fn step(&mut self) -> StepInfo {
        hart::step(&mut self.hart, &mut self.mem)
    }
    fn arch_state(&self) -> ArchState {
        self.hart.state.clone()
    }
    fn inject_exception(&mut self, cause: Exception, tval: u64) {
        self.hart.pending_injection = Some((cause, tval));
    }
    fn force_sc_fail(&mut self) {
        self.hart.force_sc_fail = true;
    }
    fn patch_gpr(&mut self, rd: u8, value: u64) {
        self.hart.state.write_gpr(rd, value);
    }
    fn patch_fpr(&mut self, rd: u8, value: u64) {
        self.hart.state.fpr[rd as usize] = value;
    }
    fn patch_mem(&mut self, paddr: u64, size: u64, value: u64) {
        self.mem.write_uint(paddr, size, value);
    }
    fn patch_csr(&mut self, csr: u16, value: u64) {
        let _ = self.hart.state.csr.write(csr, value);
    }
}

/// A runtime-selected REF personality: the bare architectural stepper
/// (the default, and what [`NemuRef`] provides) or any interpreter from
/// [`nemu::registry`] driven through its architectural single-step path.
///
/// Enum dispatch keeps [`RefModel`]'s `Clone` bound satisfiable (a
/// `Box<dyn RefModel>` could not be), and makes the campaign `--ref`
/// flag a pure configuration choice: DiffTest semantics are identical
/// across variants, only the REF's internal caching layers differ.
#[derive(Debug, Clone)]
pub enum AnyRef {
    /// The bare architectural stepper (default).
    Arch(NemuRef),
    /// `nemu` — the uop-cache interpreter.
    Nemu(nemu::Nemu),
    /// `nemu-trace` — the superblock trace tier.
    Trace(nemu::NemuTrace),
    /// `spike-like`.
    Spike(nemu::SpikeLike),
    /// `dromajo-like`.
    Dromajo(nemu::DromajoLike),
    /// `qemu-tci-like`.
    QemuTci(nemu::QemuTciLike),
}

/// The `--ref` spelling of the default architectural stepper.
pub const ARCH_REF_NAME: &str = "arch";

impl AnyRef {
    /// Boot the default architectural REF.
    pub fn arch(program: &riscv_isa::asm::Program, hartid: u64) -> Self {
        AnyRef::Arch(NemuRef::new(program, hartid))
    }

    /// Boot a REF personality by name — [`ARCH_REF_NAME`] or any
    /// [`nemu::registry`] personality. Returns `None` for unknown names.
    pub fn by_name(name: &str, program: &riscv_isa::asm::Program, hartid: u64) -> Option<Self> {
        let mut r = match name {
            ARCH_REF_NAME => AnyRef::arch(program, 0),
            "nemu" => AnyRef::Nemu(nemu::Nemu::new(program)),
            "nemu-trace" => AnyRef::Trace(nemu::NemuTrace::new(program)),
            "spike-like" => AnyRef::Spike(nemu::SpikeLike::new(program)),
            "dromajo-like" => AnyRef::Dromajo(nemu::DromajoLike::new(program)),
            "qemu-tci-like" => AnyRef::QemuTci(nemu::QemuTciLike::new(program)),
            _ => return None,
        };
        // `interp::boot` hardcodes hart 0; multi-hart presets need the
        // real id in mhartid.
        r.hart_mut().state.csr.mhartid = hartid;
        Some(r)
    }

    /// Every accepted `--ref` name.
    pub fn names() -> Vec<&'static str> {
        let mut v = vec![ARCH_REF_NAME];
        v.extend(nemu::registry::names());
        v
    }

    fn hart(&self) -> &Hart {
        match self {
            AnyRef::Arch(r) => &r.hart,
            AnyRef::Nemu(i) => nemu::Interpreter::hart(i),
            AnyRef::Trace(i) => nemu::Interpreter::hart(i),
            AnyRef::Spike(i) => nemu::Interpreter::hart(i),
            AnyRef::Dromajo(i) => nemu::Interpreter::hart(i),
            AnyRef::QemuTci(i) => nemu::Interpreter::hart(i),
        }
    }

    fn hart_mut(&mut self) -> &mut Hart {
        match self {
            AnyRef::Arch(r) => &mut r.hart,
            AnyRef::Nemu(i) => nemu::Interpreter::hart_mut(i),
            AnyRef::Trace(i) => nemu::Interpreter::hart_mut(i),
            AnyRef::Spike(i) => nemu::Interpreter::hart_mut(i),
            AnyRef::Dromajo(i) => nemu::Interpreter::hart_mut(i),
            AnyRef::QemuTci(i) => nemu::Interpreter::hart_mut(i),
        }
    }

    /// Re-import shadow state in personalities that keep one (the uop
    /// cache and trace tiers mirror the GPR file for their fast loops).
    fn resync_shadow(&mut self) {
        match self {
            AnyRef::Nemu(i) => i.resync(),
            AnyRef::Trace(i) => i.resync(),
            _ => {}
        }
    }
}

impl RefModel for AnyRef {
    fn step(&mut self) -> StepInfo {
        match self {
            AnyRef::Arch(r) => r.step(),
            AnyRef::Nemu(i) => nemu::Interpreter::step_one(i),
            AnyRef::Trace(i) => nemu::Interpreter::step_one(i),
            AnyRef::Spike(i) => nemu::Interpreter::step_one(i),
            AnyRef::Dromajo(i) => nemu::Interpreter::step_one(i),
            AnyRef::QemuTci(i) => nemu::Interpreter::step_one(i),
        }
    }
    fn arch_state(&self) -> ArchState {
        self.hart().state.clone()
    }
    fn inject_exception(&mut self, cause: Exception, tval: u64) {
        self.hart_mut().pending_injection = Some((cause, tval));
    }
    fn force_sc_fail(&mut self) {
        self.hart_mut().force_sc_fail = true;
    }
    fn patch_gpr(&mut self, rd: u8, value: u64) {
        self.hart_mut().state.write_gpr(rd, value);
        self.resync_shadow();
    }
    fn patch_fpr(&mut self, rd: u8, value: u64) {
        self.hart_mut().state.fpr[rd as usize] = value;
        self.resync_shadow();
    }
    fn patch_mem(&mut self, paddr: u64, size: u64, value: u64) {
        match self {
            AnyRef::Arch(r) => r.patch_mem(paddr, size, value),
            AnyRef::Nemu(i) => nemu::Interpreter::mem_mut(i).write_uint(paddr, size, value),
            AnyRef::Trace(i) => nemu::Interpreter::mem_mut(i).write_uint(paddr, size, value),
            AnyRef::Spike(i) => nemu::Interpreter::mem_mut(i).write_uint(paddr, size, value),
            AnyRef::Dromajo(i) => nemu::Interpreter::mem_mut(i).write_uint(paddr, size, value),
            AnyRef::QemuTci(i) => nemu::Interpreter::mem_mut(i).write_uint(paddr, size, value),
        }
    }
    fn patch_csr(&mut self, csr: u16, value: u64) {
        let _ = self.hart_mut().state.csr.write(csr, value);
    }
}

/// The Global Memory of §III-B2b: records every store that entered the
/// DUT's cache hierarchy, across all harts, together with a bounded
/// per-location history. A load value is "possibly written by other
/// hardware threads" when it matches the current value or a recent one —
/// the history absorbs the bounded lag between a load's execution and its
/// commit-time check.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    mem: SparseMemory,
    history: HashMap<u64, std::collections::VecDeque<u64>>,
    /// Stores recorded.
    pub stores: u64,
}

/// Per-dword history depth (bounds legal commit-vs-drain lag).
const HISTORY_DEPTH: usize = 16;

impl GlobalMemory {
    /// Initialize from the boot image.
    pub fn new(image: &riscv_isa::asm::Program) -> Self {
        let mut mem = SparseMemory::new();
        image.load_into(&mut mem);
        GlobalMemory {
            mem,
            history: HashMap::new(),
            stores: 0,
        }
    }

    /// Initialize from raw memory.
    pub fn from_memory(mem: SparseMemory) -> Self {
        GlobalMemory {
            mem,
            history: HashMap::new(),
            stores: 0,
        }
    }

    /// Record a drained store.
    pub fn record(&mut self, e: &SbufferDrainEvent) {
        // Remember the pre-store value of each touched dword.
        let start = e.paddr & !7;
        let end = (e.paddr + e.size - 1) & !7;
        let mut d = start;
        while d <= end {
            let old = self.mem.read_uint(d, 8);
            let h = self.history.entry(d).or_default();
            h.push_back(old);
            if h.len() > HISTORY_DEPTH {
                h.pop_front();
            }
            d += 8;
        }
        self.mem.write_uint(e.paddr, e.size, e.data);
        self.stores += 1;
    }

    /// Read the current globally-visible value.
    pub fn read(&mut self, paddr: u64, size: u64) -> u64 {
        self.mem.read_uint(paddr, size)
    }

    /// All values this location may legally return to a recent load: the
    /// current value plus the bounded history.
    pub fn possible_values(&mut self, paddr: u64, size: u64) -> Vec<u64> {
        let mut out = vec![self.mem.read_uint(paddr, size)];
        let d = paddr & !7;
        if (paddr + size - 1) & !7 == d {
            if let Some(h) = self.history.get(&d) {
                let shift = (paddr - d) * 8;
                let mask = if size == 8 { u64::MAX } else { (1 << (size * 8)) - 1 };
                out.extend(h.iter().map(|v| (v >> shift) & mask));
            }
        }
        out
    }
}

/// A DUT/REF divergence no rule could legitimize — a reported bug.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DiffError {
    /// Program counters diverged.
    Pc {
        /// Hart index.
        hart: usize,
        /// DUT pc.
        dut: u64,
        /// REF pc.
        reference: u64,
        /// Commits checked before the divergence.
        at_commit: u64,
    },
    /// A register writeback diverged.
    Writeback {
        /// Hart index.
        hart: usize,
        /// PC of the instruction.
        pc: u64,
        /// Register (fp?, index).
        reg: (bool, u8),
        /// DUT value.
        dut: u64,
        /// REF value.
        reference: u64,
    },
    /// Trap behavior diverged.
    Trap {
        /// Hart index.
        hart: usize,
        /// PC.
        pc: u64,
        /// DUT trap.
        dut: Option<Trap>,
        /// REF trap.
        reference: Option<Trap>,
    },
    /// A forced event repeated at the same pc (rule soundness guard,
    /// §III-B2c: "asserted not to repeatedly occur").
    RepeatedForcedEvent {
        /// Hart index.
        hart: usize,
        /// PC of the repeated event.
        pc: u64,
        /// The rule involved.
        rule: String,
    },
    /// Final/periodic full-state comparison failed.
    State {
        /// Hart index.
        hart: usize,
        /// Field difference.
        diff: String,
    },
    /// CSR comparison failed.
    Csr {
        /// Hart index.
        hart: usize,
        /// Mismatch details.
        mismatch: CsrMismatch,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for DiffError {}

/// The DiffTest engine: one REF per hart, the global memory, the rule
/// table, and the forced-event guards.
#[derive(Debug, Clone)]
pub struct DiffTest<R: RefModel> {
    refs: Vec<R>,
    /// The global memory (multi-core store ordering).
    pub global_mem: GlobalMemory,
    /// The static CSR rule table.
    pub csr_rules: CsrRuleTable,
    /// Rule application statistics.
    pub stats: RuleStats,
    /// Commits verified.
    pub commits_checked: u64,
    /// Decode-level coverage, accumulated per commit when enabled
    /// (`XsConfig::coverage`); `None` keeps the default path free.
    pub coverage: Option<CommitCoverage>,
    forced_guard: HashMap<(usize, u64, &'static str), u32>,
}

impl<R: RefModel> DiffTest<R> {
    /// Build from per-hart REFs and the initial memory image.
    pub fn new(refs: Vec<R>, global_mem: GlobalMemory) -> Self {
        DiffTest {
            refs,
            global_mem,
            csr_rules: CsrRuleTable::standard(),
            stats: RuleStats::default(),
            commits_checked: 0,
            coverage: None,
            forced_guard: HashMap::new(),
        }
    }

    /// Access a hart's REF.
    pub fn reference(&self, hart: usize) -> &R {
        &self.refs[hart]
    }

    /// Record a store entering the DUT's cache hierarchy.
    pub fn on_sbuffer_drain(&mut self, e: &SbufferDrainEvent) {
        self.global_mem.record(e);
    }

    /// Verify one DUT commit event.
    ///
    /// # Errors
    ///
    /// Returns a [`DiffError`] when no diff-rule legitimizes the
    /// divergence — i.e. a detected bug.
    pub fn on_commit(&mut self, e: &CommitEvent) -> Result<(), DiffError> {
        self.commits_checked += 1;
        if let Some(cov) = &mut self.coverage {
            cov.record(&e.inst);
            if let Some(second) = &e.fused {
                cov.record(second);
            }
        }
        let hart = e.hart;

        // --- Trap events -------------------------------------------------
        if let Some(dut_trap) = e.trap {
            // Trial-step the REF: does it trap identically on its own?
            let snapshot = self.refs[hart].clone();
            let info = self.refs[hart].step();
            if info.trap == Some(dut_trap) && info.pc == e.pc {
                return Ok(());
            }
            // Speculative page-fault rule: DUT-only page faults are legal;
            // the REF is forced to take the same fault.
            if let Trap::Exception(cause, tval) = dut_trap {
                if cause.is_page_fault() {
                    self.refs[hart] = snapshot;
                    self.guard(hart, e.pc, "speculative-page-fault")?;
                    self.refs[hart].inject_exception(cause, tval);
                    let info = self.refs[hart].step();
                    debug_assert_eq!(info.trap, Some(dut_trap));
                    self.stats.record(DiffRule::SpeculativePageFault);
                    return Ok(());
                }
            }
            return Err(DiffError::Trap {
                hart,
                pc: e.pc,
                dut: Some(dut_trap),
                reference: info.trap,
            });
        }

        // --- SC-failure rule (must be armed before stepping) -------------
        if e.sc_failed {
            self.guard(hart, e.pc, "sc-failure")?;
            self.refs[hart].force_sc_fail();
            self.stats.record(DiffRule::ScFailure);
        }

        // --- Normal instruction ------------------------------------------
        let mut info = self.refs[hart].step();
        if info.pc != e.pc {
            return Err(DiffError::Pc {
                hart,
                dut: e.pc,
                reference: info.pc,
                at_commit: self.commits_checked,
            });
        }
        if info.trap.is_some() {
            return Err(DiffError::Trap {
                hart,
                pc: e.pc,
                dut: None,
                reference: info.trap,
            });
        }
        // Macro-fusion rule: DUT committed a fused pair in one event.
        if e.fused.is_some() {
            info = self.refs[hart].step();
            self.stats.record(DiffRule::MacroFusion);
        }
        self.clear_guards(hart, e.pc);

        // --- AMO store-value check ----------------------------------------
        // The value an AMO writes must be derivable from a recent globally
        // visible value — even when rd is x0 and the read is otherwise
        // architecturally invisible. This is the check that catches the
        // §IV-C wrong-data bug regardless of how the program consumes it.
        if e.inst.is_amo() {
            if let (Some(dm), Some(rm)) = (e.mem, info.mem) {
                if dm.value != rm.value {
                    let src = self.refs[hart].arch_state().gpr[e.inst.rs2 as usize];
                    let mut legal = false;
                    for old in self.global_mem.possible_values(dm.paddr, dm.size) {
                        let ext = if dm.size == 4 {
                            old as u32 as i32 as i64 as u64
                        } else {
                            old
                        };
                        if riscv_isa::exec::amo_compute(e.inst.op, ext, src) == dm.value {
                            legal = true;
                            break;
                        }
                    }
                    if !legal {
                        return Err(DiffError::Writeback {
                            hart,
                            pc: e.pc,
                            reg: (false, 0),
                            dut: dm.value,
                            reference: rm.value,
                        });
                    }
                    self.refs[hart].patch_mem(dm.paddr, dm.size, dm.value);
                    self.stats.record(DiffRule::GlobalMemoryLoad);
                }
            }
        }

        // --- Writeback comparison with load rules -------------------------
        let Some((dut_fp, dut_rd, dut_v)) = e.wb else {
            return Ok(());
        };
        let ref_wb = info.wb;
        let matches = ref_wb == Some((dut_fp, dut_rd, dut_v));
        if matches {
            return Ok(());
        }
        // MMIO loads / counter reads: trust the DUT.
        if e.mem.map(|m| m.mmio && !m.is_store).unwrap_or(false) {
            self.refs[hart].patch_gpr(dut_rd, dut_v);
            self.stats.record(DiffRule::MmioLoad);
            return Ok(());
        }
        if e.inst.is_system() && CsrRuleTable::is_counter(e.inst.csr()) {
            self.refs[hart].patch_gpr(dut_rd, dut_v);
            self.stats.record(DiffRule::CounterRead);
            return Ok(());
        }
        // Global-memory rule for atomics: the old value read by an AMO
        // may reflect another hart's stores; the REF's memory is patched
        // with the DUT's read-modify-write result.
        if e.inst.is_amo() {
            if let Some(m) = e.mem {
                // The old value read by the AMO must be recently globally
                // visible (AMOs are performed at the memory system).
                for raw in self.global_mem.possible_values(m.paddr, m.size) {
                    let extended = if m.size == 4 {
                        raw as i32 as i64 as u64
                    } else {
                        raw
                    };
                    if extended == dut_v {
                        // m.value carries the DUT's stored (new) value.
                        self.refs[hart].patch_mem(m.paddr, m.size, m.value);
                        self.refs[hart].patch_gpr(dut_rd, dut_v);
                        self.stats.record(DiffRule::GlobalMemoryLoad);
                        return Ok(());
                    }
                }
            }
        }
        // Global-memory rule for loads: the DUT may have observed another
        // hart's store that the REF's local memory has not seen.
        if let Some(m) = e.mem {
            if !m.is_store && !dut_fp {
                for raw in self.global_mem.possible_values(m.paddr, m.size) {
                    let extended = load_extend(e.inst.op, raw);
                    if extended == dut_v {
                        self.refs[hart].patch_mem(m.paddr, m.size, raw);
                        self.refs[hart].patch_gpr(dut_rd, dut_v);
                        self.stats.record(DiffRule::GlobalMemoryLoad);
                        return Ok(());
                    }
                }
            }
            // FP loads through global memory.
            if !m.is_store && dut_fp {
                for raw in self.global_mem.possible_values(m.paddr, m.size) {
                    let boxed = if m.size == 4 {
                        0xffff_ffff_0000_0000 | raw
                    } else {
                        raw
                    };
                    if boxed == dut_v {
                        self.refs[hart].patch_mem(m.paddr, m.size, raw);
                        self.patch_fpr(hart, dut_rd, dut_v);
                        self.stats.record(DiffRule::GlobalMemoryLoad);
                        return Ok(());
                    }
                }
            }
        }
        Err(DiffError::Writeback {
            hart,
            pc: e.pc,
            reg: (dut_fp, dut_rd),
            dut: dut_v,
            reference: ref_wb.map(|w| w.2).unwrap_or(0),
        })
    }

    fn patch_fpr(&mut self, hart: usize, rd: u8, v: u64) {
        self.refs[hart].patch_fpr(rd, v);
    }

    /// Full-state comparison (periodic or at end of simulation).
    ///
    /// # Errors
    ///
    /// Returns the first field mismatch not covered by CSR rules.
    pub fn compare_state(&self, hart: usize, dut: &ArchState) -> Result<(), DiffError> {
        let r = self.refs[hart].arch_state();
        if let Some(d) = dut.first_diff(&r) {
            // CSR differences go through the rule table.
            if matches!(d, StateDiff::Csr) {
                if let Some(m) = compare_csrs(&dut.csr, &r.csr, &self.csr_rules) {
                    return Err(DiffError::Csr { hart, mismatch: m });
                }
                return Ok(());
            }
            return Err(DiffError::State {
                hart,
                diff: d.to_string(),
            });
        }
        Ok(())
    }

    /// Rule-soundness guard: a forced event at the same pc twice in a row
    /// (without an intervening successful commit at that pc) indicates a
    /// real bug rather than legal non-determinism.
    fn guard(&mut self, hart: usize, pc: u64, rule: &'static str) -> Result<(), DiffError> {
        let n = self.forced_guard.entry((hart, pc, rule)).or_insert(0);
        *n += 1;
        if *n > 2 {
            return Err(DiffError::RepeatedForcedEvent {
                hart,
                pc,
                rule: rule.to_string(),
            });
        }
        Ok(())
    }

    fn clear_guards(&mut self, hart: usize, pc: u64) {
        self.forced_guard.retain(|&(h, p, _), _| h != hart || p != pc);
    }
}

impl DiffTest<AnyRef> {
    /// One REF of the named personality per hart over a program.
    ///
    /// # Panics
    ///
    /// Panics on an unknown personality name — callers (the campaign CLI,
    /// [`xscore::XsConfig`] consumers) validate against [`AnyRef::names`]
    /// first.
    pub fn for_program_with_ref(
        name: &str,
        program: &riscv_isa::asm::Program,
        harts: usize,
    ) -> Self {
        let refs = (0..harts)
            .map(|h| {
                AnyRef::by_name(name, program, h as u64)
                    .unwrap_or_else(|| panic!("unknown REF personality `{name}`"))
            })
            .collect();
        DiffTest::new(refs, GlobalMemory::new(program))
    }
}

impl DiffTest<NemuRef> {
    /// Convenience constructor: one NEMU REF per hart over a program.
    pub fn for_program(program: &riscv_isa::asm::Program, harts: usize) -> Self {
        let refs = (0..harts)
            .map(|h| NemuRef::new(program, h as u64))
            .collect();
        DiffTest::new(refs, GlobalMemory::new(program))
    }

    /// Patch an FP register in a NEMU REF.
    pub fn patch_nemu_fpr(&mut self, hart: usize, rd: u8, v: u64) {
        self.refs[hart].hart.state.fpr[rd as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm::{reg::*, Asm};
    use riscv_isa::op::{DecodedInst, Op};

    fn nop_program() -> riscv_isa::asm::Program {
        let mut a = Asm::new(0x8000_0000);
        a.li(T0, 1);
        a.li(T1, 2);
        a.add(T2, T0, T1);
        a.ebreak();
        a.assemble()
    }

    fn commit(pc: u64, inst: DecodedInst, wb: Option<(bool, u8, u64)>) -> CommitEvent {
        CommitEvent {
            hart: 0,
            pc,
            inst,
            fused: None,
            wb,
            mem: None,
            trap: None,
            sc_failed: false,
            halted: false,
            cycle: 0,
        }
    }

    #[test]
    fn matching_commits_pass() {
        let p = nop_program();
        let mut dt = DiffTest::for_program(&p, 1);
        // li T0, 1 == addi t0, x0, 1
        let i1 = riscv_isa::decode32(0x0010_0293);
        let e = commit(0x8000_0000, i1, Some((false, 5, 1)));
        dt.on_commit(&e).expect("matches");
        assert_eq!(dt.commits_checked, 1);
    }

    #[test]
    fn wrong_value_is_detected() {
        let p = nop_program();
        let mut dt = DiffTest::for_program(&p, 1);
        let i1 = riscv_isa::decode32(0x0010_0293);
        let e = commit(0x8000_0000, i1, Some((false, 5, 99)));
        let err = dt.on_commit(&e).unwrap_err();
        assert!(matches!(err, DiffError::Writeback { dut: 99, .. }), "{err:?}");
    }

    #[test]
    fn wrong_pc_is_detected() {
        let p = nop_program();
        let mut dt = DiffTest::for_program(&p, 1);
        let i1 = riscv_isa::decode32(0x0010_0293);
        let e = commit(0x8000_0010, i1, None);
        assert!(matches!(dt.on_commit(&e), Err(DiffError::Pc { .. })));
    }

    #[test]
    fn page_fault_rule_forces_ref() {
        let p = nop_program();
        let mut dt = DiffTest::for_program(&p, 1);
        let e = CommitEvent {
            trap: Some(Trap::Exception(Exception::LoadPageFault, 0x4000_0000)),
            ..commit(0x8000_0000, DecodedInst::default(), None)
        };
        dt.on_commit(&e).expect("rule applies");
        assert_eq!(dt.stats.count(DiffRule::SpeculativePageFault), 1);
        // The REF took the fault: its mcause reflects it.
        assert_eq!(
            dt.reference(0).hart.state.csr.mcause,
            Exception::LoadPageFault.code()
        );
    }

    #[test]
    fn repeated_forced_fault_is_a_bug() {
        let p = nop_program();
        let mut dt = DiffTest::for_program(&p, 1);
        let e = CommitEvent {
            trap: Some(Trap::Exception(Exception::LoadPageFault, 0x4000_0000)),
            ..commit(0x8000_0000, DecodedInst::default(), None)
        };
        // mtvec is 0, so the fault loops back near the same pc; force the
        // same pc repeatedly.
        assert!(dt.on_commit(&e).is_ok());
        assert!(dt.on_commit(&e).is_ok());
        let err = dt.on_commit(&e).unwrap_err();
        assert!(matches!(err, DiffError::RepeatedForcedEvent { .. }));
    }

    #[test]
    fn global_memory_rule_patches_ref() {
        let p = nop_program();
        let mut dt = DiffTest::for_program(&p, 1);
        // Another hart's store lands in the global memory.
        dt.on_sbuffer_drain(&SbufferDrainEvent {
            hart: 1,
            paddr: 0x8002_0000,
            size: 8,
            data: 777,
            cycle: 5,
        });
        // The DUT's first committed instruction is a load observing it.
        let ld = DecodedInst {
            op: Op::Ld,
            rd: 5,
            rs1: 6,
            len: 4,
            ..Default::default()
        };
        let e = CommitEvent {
            mem: Some(xscore::CommitMem {
                vaddr: 0x8002_0000,
                paddr: 0x8002_0000,
                size: 8,
                is_store: false,
                value: 777,
                mmio: false,
            }),
            // DUT pc runs the same program; its first inst is li t0,1 but
            // we substitute a load for the scenario. Use a fresh DiffTest
            // whose REF executes a real load instead.
            ..commit(0x8000_0000, ld, Some((false, 5, 777)))
        };
        // Build a program whose first instruction IS that load.
        let mut a = Asm::new(0x8000_0000);
        a.ld(T0, 0, T1); // t1=0.. reads address 0 -> 0 in REF
        a.ebreak();
        let p2 = a.assemble();
        let mut dt2 = DiffTest::for_program(&p2, 1);
        dt2.global_mem = dt.global_mem.clone();
        let mut e2 = e;
        e2.mem = Some(xscore::CommitMem {
            vaddr: 0x8002_0000,
            paddr: 0x8002_0000,
            size: 8,
            is_store: false,
            value: 777,
            mmio: false,
        });
        dt2.on_commit(&e2).expect("global memory rule");
        assert_eq!(dt2.stats.count(DiffRule::GlobalMemoryLoad), 1);
        // REF register and local memory were patched.
        assert_eq!(dt2.reference(0).hart.state.read_gpr(5), 777);
    }

    #[test]
    fn bogus_load_value_still_fails() {
        let mut a = Asm::new(0x8000_0000);
        a.ld(T0, 0, T1);
        a.ebreak();
        let p = a.assemble();
        let mut dt = DiffTest::for_program(&p, 1);
        let ld = DecodedInst {
            op: Op::Ld,
            rd: 5,
            rs1: 6,
            len: 4,
            ..Default::default()
        };
        let e = CommitEvent {
            mem: Some(xscore::CommitMem {
                vaddr: 0x8002_0000,
                paddr: 0x8002_0000,
                size: 8,
                is_store: false,
                value: 1234,
                mmio: false,
            }),
            ..commit(0x8000_0000, ld, Some((false, 5, 1234)))
        };
        // 1234 matches neither the REF memory nor the global memory.
        assert!(matches!(
            dt.on_commit(&e),
            Err(DiffError::Writeback { .. })
        ));
    }

    #[test]
    fn state_comparison_with_csr_rules() {
        let p = nop_program();
        let dt = DiffTest::for_program(&p, 1);
        let mut dut_state = dt.reference(0).arch_state();
        dut_state.csr.mcycle = 42424242; // counters may diverge
        dt.compare_state(0, &dut_state).expect("counters ignored");
        dut_state.csr.mscratch = 7;
        assert!(matches!(
            dt.compare_state(0, &dut_state),
            Err(DiffError::Csr { .. })
        ));
        let mut dut_state2 = dt.reference(0).arch_state();
        dut_state2.gpr[3] = 9;
        assert!(matches!(
            dt.compare_state(0, &dut_state2),
            Err(DiffError::State { .. })
        ));
    }
}
