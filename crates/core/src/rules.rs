//! DRAV — Diff-Rule based Agile Verification (paper §III-A).
//!
//! A diff-rule captures one specification-level degree of freedom: a way
//! in which a DUT's outcome may legally differ from the reference model's.
//! Rules are deterministic and persistent across micro-architectures, so
//! the same rule set verifies every implementation of the specification —
//! the N-to-1 DUT↔REF mapping of Fig. 1(c).
//!
//! This module defines the rule vocabulary and the CSR field-rule table
//! (the "at least 120 rules" of §III-B2 devised from the privilege
//! specification).

use riscv_isa::csr::{addr, CsrFile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The dynamic diff-rules DiffTest can apply during co-simulation.
///
/// Each variant corresponds to a non-determinism source from §III-B2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiffRule {
    /// The DUT may take a page fault the REF does not (speculative TLBs
    /// caching stale/invalid PTEs, Fig. 3). The REF is forced to take the
    /// same fault; afterwards the states must agree.
    SpeculativePageFault,
    /// An SC may fail on the DUT for micro-architectural reasons
    /// (timeouts); the REF is notified and fails too.
    ScFailure,
    /// A load may observe a value written by another hart: checked
    /// against the Global Memory, then patched into the REF
    /// (multi-core/RVWMO rule, §III-B2b).
    GlobalMemoryLoad,
    /// MMIO load values are taken from the DUT (device state is not
    /// modeled in the REF, §III-B2c).
    MmioLoad,
    /// Performance-counter CSR reads are taken from the DUT.
    CounterRead,
    /// Fused macro-op pairs commit as one DUT event; the REF steps twice.
    MacroFusion,
    /// A CSR field-level rule from the static table.
    CsrField,
}

impl DiffRule {
    /// Short identifier used in statistics.
    pub fn name(self) -> &'static str {
        match self {
            DiffRule::SpeculativePageFault => "speculative-page-fault",
            DiffRule::ScFailure => "sc-failure",
            DiffRule::GlobalMemoryLoad => "global-memory-load",
            DiffRule::MmioLoad => "mmio-load",
            DiffRule::CounterRead => "counter-read",
            DiffRule::MacroFusion => "macro-fusion",
            DiffRule::CsrField => "csr-field",
        }
    }
}

/// How a CSR field may legally diverge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CsrFieldKind {
    /// Free-running or implementation-defined: excluded from comparison.
    Ignore,
    /// WARL field: both must agree after masking (the mask defines the
    /// implemented bits).
    WarlMask,
    /// Read-only zero in this implementation.
    ReadOnlyZero,
}

/// One field-level CSR rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CsrFieldRule {
    /// CSR address.
    pub csr: u16,
    /// Bit mask of the field.
    pub mask: u64,
    /// Rule kind.
    pub kind: CsrFieldKind,
    /// Human-readable name ("mstatus.FS", "mcycle", ...).
    pub name: String,
}

/// The static CSR rule table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CsrRuleTable {
    rules: Vec<CsrFieldRule>,
}

impl CsrRuleTable {
    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterate over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &CsrFieldRule> {
        self.rules.iter()
    }

    /// The ignore-mask for a CSR (union of Ignore-field masks).
    pub fn ignore_mask(&self, csr: u16) -> u64 {
        self.rules
            .iter()
            .filter(|r| r.csr == csr && r.kind == CsrFieldKind::Ignore)
            .fold(0, |m, r| m | r.mask)
    }

    /// The standard RV64 machine/supervisor rule table.
    ///
    /// Devised from the privilege specification like the paper's set; the
    /// count is ≥ 120 (checked by a unit test).
    pub fn standard() -> Self {
        let mut rules = Vec::new();
        let mut push = |csr: u16, mask: u64, kind: CsrFieldKind, name: &str| {
            rules.push(CsrFieldRule {
                csr,
                mask,
                kind,
                name: name.to_string(),
            });
        };
        use CsrFieldKind::*;
        // Free-running counters (mcycle/minstret + user shadows + time).
        push(addr::MCYCLE, u64::MAX, Ignore, "mcycle");
        push(addr::MINSTRET, u64::MAX, Ignore, "minstret");
        push(addr::CYCLE, u64::MAX, Ignore, "cycle");
        push(addr::INSTRET, u64::MAX, Ignore, "instret");
        push(addr::TIME, u64::MAX, Ignore, "time");
        // 29 machine hardware performance counters + their events.
        for i in 3..32u16 {
            push(0xb00 + i, u64::MAX, Ignore, &format!("mhpmcounter{i}"));
            push(0xc00 + i, u64::MAX, Ignore, &format!("hpmcounter{i}"));
            push(0x320 + i, u64::MAX, ReadOnlyZero, &format!("mhpmevent{i}"));
        }
        // mstatus fields (each WARL field is its own rule).
        for (mask, name) in [
            (1u64 << 1, "mstatus.SIE"),
            (1 << 3, "mstatus.MIE"),
            (1 << 5, "mstatus.SPIE"),
            (1 << 7, "mstatus.MPIE"),
            (1 << 8, "mstatus.SPP"),
            (0b11 << 11, "mstatus.MPP"),
            (0b11 << 13, "mstatus.FS"),
            (0b11 << 15, "mstatus.XS"),
            (1 << 17, "mstatus.MPRV"),
            (1 << 18, "mstatus.SUM"),
            (1 << 19, "mstatus.MXR"),
            (1 << 20, "mstatus.TVM"),
            (1 << 21, "mstatus.TW"),
            (1 << 22, "mstatus.TSR"),
            (0b11 << 32, "mstatus.UXL"),
            (0b11 << 34, "mstatus.SXL"),
            (1 << 63, "mstatus.SD"),
        ] {
            push(addr::MSTATUS, mask, WarlMask, name);
        }
        // mip/mie implemented bits (each standard interrupt its own rule).
        for (bit, n) in [(1u16, "SSI"), (3, "MSI"), (5, "STI"), (7, "MTI"), (9, "SEI"), (11, "MEI")]
        {
            push(addr::MIP, 1 << bit, WarlMask, &format!("mip.{n}"));
            push(addr::MIE, 1 << bit, WarlMask, &format!("mie.{n}"));
        }
        // PMP is unimplemented: reads as zero.
        for i in 0..16u16 {
            push(addr::PMPCFG0 + i, u64::MAX, ReadOnlyZero, &format!("pmpcfg{i}"));
        }
        for i in 0..16u16 {
            push(
                addr::PMPADDR0 + i,
                u64::MAX,
                ReadOnlyZero,
                &format!("pmpaddr{i}"),
            );
        }
        // WARL trap vectors and delegation masks.
        push(addr::MTVEC, !0b10, WarlMask, "mtvec");
        push(addr::STVEC, !0b10, WarlMask, "stvec");
        push(addr::MEDELEG, 0xb3ff, WarlMask, "medeleg");
        push(addr::MIDELEG, 0x222, WarlMask, "mideleg");
        push(addr::MCOUNTEREN, 0b111, WarlMask, "mcounteren");
        push(addr::SCOUNTEREN, 0b111, WarlMask, "scounteren");
        push(addr::SATP, 0x8fff_ffff_ffff_ffff, WarlMask, "satp");
        push(addr::MEPC, !1, WarlMask, "mepc");
        push(addr::SEPC, !1, WarlMask, "sepc");
        push(addr::FCSR, 0xff, WarlMask, "fcsr");
        CsrRuleTable { rules }
    }

    /// CSR addresses whose reads are DUT-trusted (counter-read rule).
    pub fn is_counter(csr: u16) -> bool {
        matches!(
            csr,
            addr::MCYCLE | addr::MINSTRET | addr::CYCLE | addr::INSTRET | addr::TIME
        ) || (0xb03..=0xb1f).contains(&csr)
            || (0xc03..=0xc1f).contains(&csr)
    }
}

/// A CSR comparison mismatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrMismatch {
    /// CSR address.
    pub csr: u16,
    /// DUT value (masked).
    pub dut: u64,
    /// REF value (masked).
    pub reference: u64,
}

/// Compare two CSR files under the rule table. Counters and ignore-fields
/// are excluded; everything else must match exactly.
pub fn compare_csrs(dut: &CsrFile, reference: &CsrFile, table: &CsrRuleTable) -> Option<CsrMismatch> {
    let compared: &[u16] = &[
        addr::MSTATUS,
        addr::MTVEC,
        addr::MEDELEG,
        addr::MIDELEG,
        addr::MIE,
        addr::MIP,
        addr::MSCRATCH,
        addr::MEPC,
        addr::MCAUSE,
        addr::MTVAL,
        addr::MCOUNTEREN,
        addr::STVEC,
        addr::SSCRATCH,
        addr::SEPC,
        addr::SCAUSE,
        addr::STVAL,
        addr::SATP,
        addr::SCOUNTEREN,
        addr::FCSR,
    ];
    for &csr in compared {
        let ignore = table.ignore_mask(csr);
        // Read raw fields, bypassing privilege checks.
        let (d, r) = (raw_csr(dut, csr), raw_csr(reference, csr));
        let (dm, rm) = (d & !ignore, r & !ignore);
        if dm != rm {
            return Some(CsrMismatch {
                csr,
                dut: dm,
                reference: rm,
            });
        }
    }
    None
}

fn raw_csr(f: &CsrFile, csr: u16) -> u64 {
    match csr {
        addr::MSTATUS => f.mstatus,
        addr::MTVEC => f.mtvec,
        addr::MEDELEG => f.medeleg,
        addr::MIDELEG => f.mideleg,
        addr::MIE => f.mie,
        addr::MIP => f.mip,
        addr::MSCRATCH => f.mscratch,
        addr::MEPC => f.mepc,
        addr::MCAUSE => f.mcause,
        addr::MTVAL => f.mtval,
        addr::MCOUNTEREN => f.mcounteren,
        addr::STVEC => f.stvec,
        addr::SSCRATCH => f.sscratch,
        addr::SEPC => f.sepc,
        addr::SCAUSE => f.scause,
        addr::STVAL => f.stval,
        addr::SATP => f.satp,
        addr::SCOUNTEREN => f.scounteren,
        addr::FCSR => f.fcsr,
        _ => 0,
    }
}

/// Statistics over applied diff-rules.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleStats {
    counts: HashMap<String, u64>,
}

impl RuleStats {
    /// Record one application of `rule`.
    pub fn record(&mut self, rule: DiffRule) {
        *self.counts.entry(rule.name().to_string()).or_insert(0) += 1;
    }

    /// Times `rule` was applied.
    pub fn count(&self, rule: DiffRule) -> u64 {
        self.counts.get(rule.name()).copied().unwrap_or(0)
    }

    /// All counts (rule name -> applications).
    pub fn all(&self) -> &HashMap<String, u64> {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_has_at_least_120_rules() {
        let t = CsrRuleTable::standard();
        assert!(t.len() >= 120, "only {} rules", t.len());
    }

    #[test]
    fn counters_are_ignored_in_comparison() {
        let t = CsrRuleTable::standard();
        let a = CsrFile::new(0);
        let mut b = CsrFile::new(0);
        b.mcycle = 999;
        b.minstret = 123;
        b.time = 7;
        assert_eq!(compare_csrs(&a, &b, &t), None);
    }

    #[test]
    fn real_divergence_is_caught() {
        let t = CsrRuleTable::standard();
        let a = CsrFile::new(0);
        let mut b = CsrFile::new(0);
        b.mscratch = 1;
        let m = compare_csrs(&a, &b, &t).expect("mismatch");
        assert_eq!(m.csr, addr::MSCRATCH);
        let mut c = CsrFile::new(0);
        c.mcause = 5;
        assert!(compare_csrs(&a, &c, &t).is_some());
    }

    #[test]
    fn counter_csr_classification() {
        assert!(CsrRuleTable::is_counter(addr::MCYCLE));
        assert!(CsrRuleTable::is_counter(addr::TIME));
        assert!(CsrRuleTable::is_counter(0xb10));
        assert!(!CsrRuleTable::is_counter(addr::MSCRATCH));
    }

    #[test]
    fn rule_stats_accumulate() {
        let mut s = RuleStats::default();
        s.record(DiffRule::ScFailure);
        s.record(DiffRule::ScFailure);
        s.record(DiffRule::MmioLoad);
        assert_eq!(s.count(DiffRule::ScFailure), 2);
        assert_eq!(s.count(DiffRule::MmioLoad), 1);
        assert_eq!(s.count(DiffRule::MacroFusion), 0);
    }

    #[test]
    fn ignore_masks_compose() {
        let t = CsrRuleTable::standard();
        assert_eq!(t.ignore_mask(addr::MCYCLE), u64::MAX);
        assert_eq!(t.ignore_mask(addr::MSCRATCH), 0);
    }
}
