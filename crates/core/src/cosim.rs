//! The integrated co-simulation harness — "Put It All Together" (§III-E).
//!
//! [`CoSim`] wires a [`xscore::XsSystem`] DUT, per-hart NEMU REFs under
//! [`DiffTest`], the [`LightSss`] snapshot manager, and [`ArchDb`] event
//! recording into the paper's workflow: launch the simulation, and when
//! DiffTest reports a mismatch, roll back to the older snapshot and
//! replay with debugging information enabled.

use crate::archdb::ArchDb;
use crate::difftest::{AnyRef, DiffError, DiffTest, GlobalMemory, NemuRef, ARCH_REF_NAME};
use crate::lightsss::{LightSss, Snapshotable};
use riscv_isa::asm::Program;
use riscv_isa::mem::SparseMemory;
use riscv_isa::state::ArchState;
use xscore::{XsConfig, XsSystem};

/// The snapshotable simulation state: the DUT and the verification state
/// move through time together, so a snapshot captures both.
#[derive(Clone)]
pub struct CoSimState {
    /// The device under test.
    pub sys: XsSystem,
    /// The DiffTest engine (REF harts + global memory + rule stats).
    pub diff: DiffTest<AnyRef>,
}

impl Snapshotable for CoSimState {
    fn time(&self) -> u64 {
        self.sys.cores[0].cycle()
    }
    fn serialize_full(&self) -> Vec<u8> {
        // The SSS baseline: eagerly serialize the bulk state — backing
        // memory plus the complete cache arrays (the paper's SSS snapshots
        // "the entire circuit state of DUT").
        let mut blob = self.sys.mem.serialize_full_state();
        for c in &self.sys.cores {
            blob.extend_from_slice(
                serde_json::to_string(&c.arch_state())
                    .expect("arch state serializes")
                    .as_bytes(),
            );
        }
        blob
    }
}

/// Why a co-simulation ended.
#[derive(Debug)]
pub enum CoSimEnd {
    /// All harts halted; exit code of hart 0.
    Halted(u64),
    /// Cycle budget exhausted.
    OutOfCycles,
    /// DiffTest reported a bug.
    Bug(BugReport),
}

/// A detected bug, with the LightSSS replay debrief.
#[derive(Debug)]
pub struct BugReport {
    /// The divergence DiffTest reported.
    pub error: DiffError,
    /// Cycle at which the divergence was detected.
    pub at_cycle: u64,
    /// Commit index (commits checked, across harts) at which the
    /// divergence was detected — the anchor a deterministic replay must
    /// hit again.
    pub at_commit: u64,
    /// Replay information, when LightSSS was enabled.
    pub replay: Option<ReplayReport>,
}

/// The result of the on-demand debug-mode replay (§III-C3).
#[derive(Debug)]
pub struct ReplayReport {
    /// Cycle of the snapshot the replay started from (0 for the
    /// reset-state fallback).
    pub from_cycle: u64,
    /// True when no snapshot had been retained yet and the replay fell
    /// back to the reset state.
    pub fallback_reset: bool,
    /// Cycles re-simulated (bounded by 2 × interval when a snapshot was
    /// available).
    pub cycles_replayed: u64,
    /// The error reproduced identically.
    pub reproduced: bool,
    /// Commit index at which the replay reproduced the error (0 when it
    /// did not reproduce).
    pub at_commit: u64,
    /// CPI stack of the replayed window alone (end minus start).
    pub window_cpi: xscore::CpiStack,
    /// Events captured in debug mode during the replay.
    pub trace: ArchDb,
}

/// The co-simulation harness.
pub struct CoSim {
    /// Live simulation state.
    pub state: CoSimState,
    /// The reset state (a COW clone taken at boot): the rollback target
    /// when a failure strikes before the first snapshot interval.
    reset: Box<CoSimState>,
    /// Snapshot manager (None disables LightSSS).
    pub lightsss: Option<LightSss<CoSimState>>,
    /// Event database (populated in debug mode).
    pub archdb: ArchDb,
    /// Debug mode: record commit/drain events into ArchDB. Slows the
    /// simulation — which is the very reason LightSSS exists.
    pub debug_mode: bool,
    /// Reused per-step output buffer (keeps the hot loop allocation-free).
    outs_buf: Vec<xscore::CycleOutput>,
}

/// Per-table row cap of the bounded trace a debug-mode replay records.
const REPLAY_TRACE_CAP: usize = 65_536;

/// Per-table row cap of the full lifecycle trace streamed under
/// `XsConfig::lifecycle` — keeps the newest window so a long run cannot
/// grow the database without bound.
const LIFECYCLE_TRACE_CAP: usize = 262_144;

/// Idle-skip bound of a standalone [`CoSim::step_cycle`] call (callers
/// driving the loop themselves supply their own deadline through
/// [`CoSim::step_cycle_until`]).
const MAX_STANDALONE_SKIP: u64 = 1 << 20;

impl CoSim {
    /// Boot a program under co-simulation.
    pub fn new(cfg: XsConfig, program: &Program) -> Self {
        let harts = cfg.cores;
        let coverage = cfg.coverage;
        let lifecycle = cfg.lifecycle;
        let ref_model = cfg
            .ref_model
            .clone()
            .unwrap_or_else(|| ARCH_REF_NAME.to_string());
        let sys = XsSystem::new(cfg, program);
        let mut diff = DiffTest::for_program_with_ref(&ref_model, program, harts);
        if coverage {
            diff.coverage = Some(crate::coverage::CommitCoverage::default());
        }
        let state = CoSimState { sys, diff };
        CoSim {
            reset: Box::new(state.clone()),
            state,
            lightsss: None,
            // Full-trace mode streams a lifecycle record per finished uop;
            // bound the database so the stream keeps only the newest window.
            archdb: if lifecycle {
                ArchDb::bounded(LIFECYCLE_TRACE_CAP)
            } else {
                ArchDb::new()
            },
            debug_mode: false,
            outs_buf: Vec::new(),
        }
    }

    /// Boot co-simulation from an architectural checkpoint: the DUT is
    /// rebuilt over the checkpointed memory image with core 0 restored
    /// to the checkpointed state, and the DiffTest REF is the bare
    /// architectural stepper resumed from the same state — so commits
    /// are verified from the first restored instruction on, exactly as
    /// in a from-reset run. Checkpoints are single-hart (§III-D3
    /// profiles one hart), so the configuration is clamped to one core.
    pub fn from_checkpoint(mut cfg: XsConfig, state: &ArchState, memory: &SparseMemory) -> Self {
        cfg.cores = 1;
        let coverage = cfg.coverage;
        let lifecycle = cfg.lifecycle;
        let mut sys = XsSystem::from_memory(cfg, memory.clone(), state.pc);
        sys.restore(state);
        let mut diff = DiffTest::new(
            vec![AnyRef::Arch(NemuRef::from_state(
                state.clone(),
                memory.clone(),
            ))],
            GlobalMemory::from_memory(memory.clone()),
        );
        if coverage {
            diff.coverage = Some(crate::coverage::CommitCoverage::default());
        }
        let state = CoSimState { sys, diff };
        CoSim {
            reset: Box::new(state.clone()),
            state,
            lightsss: None,
            archdb: if lifecycle {
                ArchDb::bounded(LIFECYCLE_TRACE_CAP)
            } else {
                ArchDb::new()
            },
            debug_mode: false,
            outs_buf: Vec::new(),
        }
    }

    /// Build a debug-mode harness resuming from a snapshot (or salvaged)
    /// state: commit/drain tracing on, bounded trace, no snapshots.
    pub fn debug_resume(state: CoSimState) -> Self {
        CoSim {
            reset: Box::new(state.clone()),
            state,
            lightsss: None,
            archdb: ArchDb::bounded(REPLAY_TRACE_CAP),
            debug_mode: true,
            outs_buf: Vec::new(),
        }
    }

    /// The reset state captured at boot.
    pub fn reset_state(&self) -> &CoSimState {
        &self.reset
    }

    /// Enable LightSSS with the given snapshot interval (cycles).
    pub fn with_lightsss(mut self, interval: u64) -> Self {
        self.lightsss = Some(LightSss::new(interval));
        self
    }

    /// Advance one cycle, verifying every commit.
    ///
    /// When the event-driven skipper is on, the step may additionally
    /// jump over a bounded idle span (see [`CoSim::step_cycle_until`]).
    ///
    /// # Errors
    ///
    /// The first [`DiffError`] found.
    pub fn step_cycle(&mut self) -> Result<(), DiffError> {
        // Standalone steps bound the idle skip so a scheduling bug (an
        // event that was never queued) degrades into early landings
        // instead of a single jump to the caller's whole budget.
        let cap = self.state.time().saturating_add(MAX_STANDALONE_SKIP);
        self.step_cycle_until(cap)
    }

    /// Advance one cycle, then — when `XsConfig::event_driven` is on and
    /// no core made progress — skip ahead to just before the next
    /// scheduled event, but never past `limit` or past the next LightSSS
    /// snapshot-due cycle (snapshots must be captured at the same cycles
    /// as a cycle-by-cycle run so their state is byte-identical).
    ///
    /// # Errors
    ///
    /// The first [`DiffError`] found.
    pub fn step_cycle_until(&mut self, mut limit: u64) -> Result<(), DiffError> {
        if let Some(l) = &mut self.lightsss {
            l.tick(&self.state);
            limit = limit.min(l.next_due());
        }
        // Temporarily take the scratch buffer so the borrow checker sees
        // disjoint access to `state.sys` and the rest of `self` below.
        let mut outs = std::mem::take(&mut self.outs_buf);
        self.state.sys.tick_skipping_into(limit, &mut outs);
        // Commits are checked before this cycle's drains are applied to
        // the Global Memory: a value read by a committed instruction
        // predates stores that reach memory in the same cycle.
        for out in &outs {
            for c in &out.commits {
                if self.debug_mode {
                    self.archdb.insert("instr_commit", c.cycle, c);
                }
                self.state.diff.on_commit(c)?;
                if c.halted {
                    // Final full-state comparison for this hart.
                    let dut_state = self.state.sys.cores[c.hart].arch_state();
                    self.state.diff.compare_state(c.hart, &dut_state)?;
                }
            }
        }
        for out in &outs {
            for d in &out.drains {
                self.state.diff.on_sbuffer_drain(d);
                if self.debug_mode {
                    self.archdb.insert("sbuffer_drain", d.cycle, d);
                }
            }
        }
        // Drain full-trace lifecycle records (empty unless
        // `XsConfig::lifecycle` is on, so this is free on the default path).
        for core in &mut self.state.sys.cores {
            for rec in core.take_lifecycle_trace() {
                self.archdb.insert("lifecycle", rec.end_cycle(), &rec);
            }
        }
        // An early `?` above forfeits the buffer — fine, errors end the run.
        self.outs_buf = outs;
        Ok(())
    }

    /// Run to completion, with automatic LightSSS replay on a bug.
    ///
    /// `max_cycles` is a simulated-cycle budget (not a step count): with
    /// the event-driven skipper on, one step may consume many cycles.
    pub fn run(&mut self, max_cycles: u64) -> CoSimEnd {
        let deadline = self.state.time().saturating_add(max_cycles);
        while self.state.time() < deadline {
            if self.state.sys.all_halted() {
                return CoSimEnd::Halted(self.state.sys.cores[0].halted.unwrap_or(0));
            }
            if let Err(error) = self.step_cycle_until(deadline) {
                let at_cycle = self.state.time();
                let at_commit = self.state.diff.commits_checked;
                let replay = self.replay(&error);
                return CoSimEnd::Bug(BugReport {
                    error,
                    at_cycle,
                    at_commit,
                    replay,
                });
            }
        }
        CoSimEnd::OutOfCycles
    }

    /// On-demand debugging: restore the older snapshot and re-simulate in
    /// debug mode until the error reproduces (§III-C3, Fig. 5d).
    ///
    /// Returns `None` only when LightSSS is disabled entirely. When the
    /// failure strikes before the first snapshot interval — so no
    /// snapshot has been retained — the replay falls back to the reset
    /// state instead of panicking on `oldest()`, starting from cycle 0.
    pub fn replay(&self, original: &DiffError) -> Option<ReplayReport> {
        let lightsss = self.lightsss.as_ref()?;
        let (from_cycle, start, fallback_reset) = match lightsss.oldest() {
            Some(snap) => (snap.at, snap.state.clone(), false),
            None => (0, (*self.reset).clone(), true),
        };
        // Bounded trace: a runaway replay (large interval, slow
        // reproduction) keeps only the newest window per table instead of
        // growing without limit.
        let mut replayed = CoSim::debug_resume(start);
        let budget = if fallback_reset {
            // The whole failing prefix is the window: reset → failure.
            self.state.time() + 10_000
        } else {
            4 * lightsss.interval + 10_000
        };
        let start_cpi = crate::telemetry::PerfSnapshot::collect(&replayed.state.sys).cpi_stack();
        let mut reproduced = false;
        let mut at_commit = 0;
        let deadline = replayed.state.time().saturating_add(budget);
        while replayed.state.time() < deadline {
            if replayed.state.sys.all_halted() {
                break;
            }
            match replayed.step_cycle_until(deadline) {
                Ok(()) => {}
                Err(e) => {
                    reproduced = &e == original;
                    at_commit = replayed.state.diff.commits_checked;
                    break;
                }
            }
        }
        let end_cpi = crate::telemetry::PerfSnapshot::collect(&replayed.state.sys).cpi_stack();
        Some(ReplayReport {
            from_cycle,
            fallback_reset,
            cycles_replayed: replayed.state.time().saturating_sub(from_cycle),
            reproduced,
            at_commit,
            window_cpi: end_cpi.saturating_sub(&start_cpi),
            trace: replayed.archdb,
        })
    }
}

/// Render a caught panic payload as text.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".into())
}

/// Outcome and summary statistics of one isolated co-simulation run.
#[derive(Debug)]
pub struct RunStats {
    /// Why the run ended.
    pub end: CoSimEnd,
    /// Cycles simulated.
    pub cycles: u64,
    /// Commits DiffTest verified.
    pub commits_checked: u64,
    /// Instructions retired, summed over harts.
    pub instret: u64,
    /// Architectural exceptions taken, summed over harts.
    pub exceptions: u64,
    /// Diff-rule applications (rule name → count), sorted by name.
    pub rule_counts: Vec<(String, u64)>,
    /// Unified cross-layer performance snapshot at the end of the run.
    pub perf: crate::telemetry::PerfSnapshot,
    /// Coverage map of the run (`Some` only under `XsConfig::coverage`).
    pub coverage: Option<crate::coverage::CoverageMap>,
    /// The always-on lifecycle ring: the last
    /// [`xscore::LIFECYCLE_RING_CAP`] finished uops per core (core order),
    /// snapshotted at the end of the run for crash triage.
    pub lifecycle_ring: Vec<xscore::Lifecycle>,
}

/// A rollback start point salvaged from a finished run, so a
/// campaign-level triage pass can re-execute the failure window after
/// `run_isolated` has already torn the harness down.
pub struct Salvage {
    /// Cycle of the salvaged state (0 for the reset fallback).
    pub snapshot_cycle: u64,
    /// True when no snapshot had been retained and the reset state was
    /// salvaged instead.
    pub fallback_reset: bool,
    /// The rollback state itself (COW clone — cheap).
    pub state: CoSimState,
}

/// Construct and run a co-simulation inside a panic boundary.
///
/// A campaign worker must survive a crashing job: any panic raised while
/// booting or stepping the simulation is caught and returned as its
/// message instead of unwinding into the worker's pool. The harness is
/// rebuilt from scratch inside the boundary, so no partially-unwound
/// state leaks out.
///
/// # Errors
///
/// The panic payload (as text) if the simulation panicked.
pub fn run_isolated(
    cfg: XsConfig,
    program: &Program,
    max_cycles: u64,
    lightsss_interval: Option<u64>,
) -> Result<RunStats, String> {
    run_isolated_salvaging(cfg, program, max_cycles, lightsss_interval).0
}

/// [`run_isolated`], additionally salvaging a rollback start point when
/// the run ends without its own replay debrief: on a cycle-budget
/// timeout (oldest snapshot, or the reset state), and on a divergence
/// with LightSSS disabled (reset state). A panic unwinds the harness, so
/// nothing can be salvaged on the `Err` path.
pub fn run_isolated_salvaging(
    cfg: XsConfig,
    program: &Program,
    max_cycles: u64,
    lightsss_interval: Option<u64>,
) -> (Result<RunStats, String>, Option<Salvage>) {
    let program = program.clone();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut cosim = CoSim::new(cfg, &program);
        if let Some(iv) = lightsss_interval {
            cosim = cosim.with_lightsss(iv);
        }
        let end = cosim.run(max_cycles);
        let salvage = match &end {
            CoSimEnd::OutOfCycles => Some(salvage_from(&cosim)),
            CoSimEnd::Bug(bug) if bug.replay.is_none() => Some(Salvage {
                snapshot_cycle: 0,
                fallback_reset: true,
                state: (*cosim.reset).clone(),
            }),
            _ => None,
        };
        let mut rule_counts: Vec<(String, u64)> = cosim
            .state
            .diff
            .stats
            .all()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        rule_counts.sort();
        let perf = crate::telemetry::PerfSnapshot::collect(&cosim.state.sys);
        let coverage = cosim.state.diff.coverage.as_ref().map(|commit| {
            crate::coverage::CoverageMap::from_run(commit, &cosim.state.diff.stats, &perf)
        });
        let lifecycle_ring: Vec<xscore::Lifecycle> = cosim
            .state
            .sys
            .cores
            .iter()
            .flat_map(|c| c.lifecycle_ring())
            .collect();
        (
            RunStats {
                cycles: cosim.state.time(),
                commits_checked: cosim.state.diff.commits_checked,
                instret: cosim.state.sys.cores.iter().map(|c| c.instret()).sum(),
                exceptions: cosim.state.sys.cores.iter().map(|c| c.perf.exceptions).sum(),
                rule_counts,
                perf,
                coverage,
                lifecycle_ring,
                end,
            },
            salvage,
        )
    })) {
        Ok((stats, salvage)) => (Ok(stats), salvage),
        Err(payload) => (Err(panic_message(payload)), None),
    }
}

/// Why a checkpoint sample run ended.
#[derive(Debug)]
pub enum SampleEnd {
    /// The full measured window retired — the normal outcome.
    Window,
    /// The program halted before the window filled (checkpoints near
    /// the end of a run legitimately do this); exit code of hart 0.
    /// Whatever part of the window did retire was still measured.
    Halted(u64),
    /// Cycle budget exhausted before the window filled.
    OutOfCycles,
    /// DiffTest reported a bug while warming up or measuring.
    Bug(BugReport),
}

/// The measured detail window of one checkpoint sample (pure integers,
/// so the numbers can live in a deterministic report body).
#[derive(Debug, Clone)]
pub struct SampleWindowStats {
    /// Cycles the warm-up phase consumed.
    pub warmup_cycles: u64,
    /// Instructions the warm-up phase retired.
    pub warmup_instret: u64,
    /// Cycles of the measured window.
    pub window_cycles: u64,
    /// Instructions retired inside the measured window.
    pub window_instret: u64,
    /// CPI stack of the measured window alone (end minus warm-up end) —
    /// its components sum to `window_cycles × commit_width`, same
    /// identity as a whole-run stack.
    pub cpi: xscore::CpiStack,
}

/// Outcome and statistics of one isolated checkpoint sample run:
/// whole-run counters (from the restored state on) plus the measured
/// window carved out after warm-up.
#[derive(Debug)]
pub struct SampleStats {
    /// Why the sample ended.
    pub end: SampleEnd,
    /// Cycles simulated in total (warm-up + window).
    pub cycles: u64,
    /// Commits DiffTest verified.
    pub commits_checked: u64,
    /// Instructions retired since the restore.
    pub instret: u64,
    /// Architectural exceptions taken.
    pub exceptions: u64,
    /// Diff-rule applications (rule name → count), sorted by name.
    pub rule_counts: Vec<(String, u64)>,
    /// Unified cross-layer performance snapshot at the end of the run.
    pub perf: crate::telemetry::PerfSnapshot,
    /// Coverage map (`Some` only under `XsConfig::coverage`).
    pub coverage: Option<crate::coverage::CoverageMap>,
    /// The always-on lifecycle ring, snapshotted at the end of the run.
    pub lifecycle_ring: Vec<xscore::Lifecycle>,
    /// The measured window.
    pub window: SampleWindowStats,
}

/// How one warm-up/window phase of a sample run ended.
enum PhaseEnd {
    /// The phase's instruction target retired.
    Reached,
    /// Every hart halted; exit code of hart 0.
    Halted(u64),
    /// The shared cycle deadline arrived first.
    OutOfCycles,
    /// DiffTest diverged.
    Bug(BugReport),
}

/// Drive `cosim` until core 0 has retired `target` instructions in
/// total, every hart halts, or `deadline` (absolute cycle) arrives.
fn run_phase_to_instret(cosim: &mut CoSim, target: u64, deadline: u64) -> PhaseEnd {
    loop {
        if cosim.state.sys.cores[0].instret() >= target {
            return PhaseEnd::Reached;
        }
        if cosim.state.sys.all_halted() {
            return PhaseEnd::Halted(cosim.state.sys.cores[0].halted.unwrap_or(0));
        }
        if cosim.state.time() >= deadline {
            return PhaseEnd::OutOfCycles;
        }
        if let Err(error) = cosim.step_cycle_until(deadline) {
            let at_cycle = cosim.state.time();
            let at_commit = cosim.state.diff.commits_checked;
            let replay = cosim.replay(&error);
            return PhaseEnd::Bug(BugReport {
                error,
                at_cycle,
                at_commit,
                replay,
            });
        }
    }
}

/// Resume a checkpoint on the cycle model inside a panic boundary, warm
/// caches and predictors for `warmup` instructions, then measure a
/// `window`-instruction detail window — the per-checkpoint half of the
/// paper's §III-D3 sampled-performance flow. DiffTest (against the
/// architectural stepper resumed from the same state) verifies every
/// commit of both phases, and LightSSS rollback/replay applies to
/// sample runs exactly as to from-reset runs.
///
/// # Errors
///
/// The panic payload (as text) if the simulation panicked.
pub fn run_isolated_checkpoint(
    cfg: XsConfig,
    state: &ArchState,
    memory: &SparseMemory,
    warmup: u64,
    window: u64,
    max_cycles: u64,
    lightsss_interval: Option<u64>,
) -> (Result<SampleStats, String>, Option<Salvage>) {
    let state = state.clone();
    let memory = memory.clone();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let mut cosim = CoSim::from_checkpoint(cfg, &state, &memory);
        if let Some(iv) = lightsss_interval {
            cosim = cosim.with_lightsss(iv);
        }
        let deadline = cosim.state.time().saturating_add(max_cycles);

        // Phase 1: warm-up. Caches, TLBs, and predictors start cold at a
        // restore — the paper warms them before measuring for exactly
        // this reason.
        let warm_end = run_phase_to_instret(&mut cosim, warmup, deadline);
        let warmup_cycles = cosim.state.time();
        let warmup_instret = cosim.state.sys.cores[0].instret();
        let warm_cpi = crate::telemetry::PerfSnapshot::collect(&cosim.state.sys).cpi_stack();

        // Phase 2: the measured window (skipped if warm-up already ended
        // the run).
        let end = match warm_end {
            PhaseEnd::Reached => {
                match run_phase_to_instret(&mut cosim, warmup.saturating_add(window), deadline) {
                    PhaseEnd::Reached => SampleEnd::Window,
                    PhaseEnd::Halted(code) => SampleEnd::Halted(code),
                    PhaseEnd::OutOfCycles => SampleEnd::OutOfCycles,
                    PhaseEnd::Bug(bug) => SampleEnd::Bug(bug),
                }
            }
            PhaseEnd::Halted(code) => SampleEnd::Halted(code),
            PhaseEnd::OutOfCycles => SampleEnd::OutOfCycles,
            PhaseEnd::Bug(bug) => SampleEnd::Bug(bug),
        };

        let salvage = match &end {
            SampleEnd::OutOfCycles => Some(salvage_from(&cosim)),
            SampleEnd::Bug(bug) if bug.replay.is_none() => Some(Salvage {
                snapshot_cycle: 0,
                fallback_reset: true,
                state: (*cosim.reset).clone(),
            }),
            _ => None,
        };
        let end_cpi = crate::telemetry::PerfSnapshot::collect(&cosim.state.sys).cpi_stack();
        let mut rule_counts: Vec<(String, u64)> = cosim
            .state
            .diff
            .stats
            .all()
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        rule_counts.sort();
        let perf = crate::telemetry::PerfSnapshot::collect(&cosim.state.sys);
        let coverage = cosim.state.diff.coverage.as_ref().map(|commit| {
            crate::coverage::CoverageMap::from_run(commit, &cosim.state.diff.stats, &perf)
        });
        let lifecycle_ring: Vec<xscore::Lifecycle> = cosim
            .state
            .sys
            .cores
            .iter()
            .flat_map(|c| c.lifecycle_ring())
            .collect();
        (
            SampleStats {
                cycles: cosim.state.time(),
                commits_checked: cosim.state.diff.commits_checked,
                instret: cosim.state.sys.cores[0].instret(),
                exceptions: cosim.state.sys.cores.iter().map(|c| c.perf.exceptions).sum(),
                rule_counts,
                perf,
                coverage,
                lifecycle_ring,
                window: SampleWindowStats {
                    warmup_cycles,
                    warmup_instret,
                    window_cycles: cosim.state.time().saturating_sub(warmup_cycles),
                    window_instret: cosim
                        .state
                        .sys
                        .cores[0]
                        .instret()
                        .saturating_sub(warmup_instret),
                    cpi: end_cpi.saturating_sub(&warm_cpi),
                },
                end,
            },
            salvage,
        )
    })) {
        Ok((stats, salvage)) => (Ok(stats), salvage),
        Err(payload) => (Err(panic_message(payload)), None),
    }
}

/// The preferred rollback start of a live harness: oldest retained
/// snapshot, falling back to the reset state.
fn salvage_from(cosim: &CoSim) -> Salvage {
    match cosim.lightsss.as_ref().and_then(LightSss::oldest) {
        Some(snap) => Salvage {
            snapshot_cycle: snap.at,
            fallback_reset: false,
            state: snap.state.clone(),
        },
        None => Salvage {
            snapshot_cycle: 0,
            fallback_reset: true,
            state: (*cosim.reset).clone(),
        },
    }
}

// The campaign runner shards CoSims across a worker pool, so the whole
// harness must cross thread boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CoSim>();
    assert_send::<RunStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::asm::{reg::*, Asm};

    fn tiny_cfg(cores: usize) -> XsConfig {
        let mut c = XsConfig::nh();
        c.cores = cores;
        c.l1i = uncore::CacheConfig::new("l1i", 8192, 2, 2, 4);
        c.l1d = uncore::CacheConfig::new("l1d", 8192, 2, 4, 8);
        c.l2 = uncore::CacheConfig::new("l2", 32768, 4, 10, 8);
        c.l3 = Some(uncore::CacheConfig::new("l3", 131072, 4, 20, 16));
        c.memory = xscore::MemoryModel::FixedAmat(40);
        c
    }

    fn branchy_program() -> Program {
        let mut a = Asm::new(0x8000_0000);
        a.li(S0, 0);
        a.li(S1, 4000);
        a.li(A0, 0);
        a.li(S2, 0x9e3779b97f4a7c15u64 as i64);
        let top = a.bound_label();
        let skip = a.label();
        a.mul(T0, S0, S2);
        a.srli(T1, T0, 33);
        a.andi(T1, T1, 1);
        a.beqz(T1, skip);
        a.xor(A0, A0, T0);
        a.bind(skip);
        a.addi(S0, S0, 1);
        a.bne(S0, S1, top);
        a.andi(A0, A0, 0xff);
        a.li(T5, 0x8002_0000);
        a.sd(A0, 0, T5);
        a.ld(A0, 0, T5);
        a.ebreak();
        let p = a.assemble();
        p
    }

    #[test]
    fn clean_run_verifies_every_commit() {
        let mut cosim = CoSim::new(tiny_cfg(1), &branchy_program());
        match cosim.run(500_000) {
            CoSimEnd::Halted(_) => {}
            other => panic!("{other:?}"),
        }
        assert!(cosim.state.diff.commits_checked > 2_000);
    }

    #[test]
    fn injected_wrong_value_is_caught_and_replayed() {
        let mut cosim =
            CoSim::new(tiny_cfg(1), &branchy_program()).with_lightsss(2_000);
        // Inject a DUT fault mid-run: corrupt the REF-invisible path by
        // flipping a bit in the DUT's architectural result. We simulate a
        // logic bug by corrupting the DUT's memory under it.
        let mut bug_armed = true;
        let mut end = None;
        for _ in 0..500_000 {
            if cosim.state.sys.all_halted() {
                end = Some(CoSimEnd::Halted(0));
                break;
            }
            if bug_armed && cosim.state.sys.cores[0].instret() >= 8_000 {
                // Inject a logic fault: corrupt the hash constant held in
                // s2. Every later multiplication commits a wrong value.
                cosim.state.sys.cores[0].inject_fault_gpr(18, 1 << 17);
                bug_armed = false;
            }
            if let Err(error) = cosim.step_cycle() {
                let at_cycle = cosim.state.time();
                let at_commit = cosim.state.diff.commits_checked;
                let replay = cosim.replay(&error);
                end = Some(CoSimEnd::Bug(BugReport {
                    error,
                    at_cycle,
                    at_commit,
                    replay,
                }));
                break;
            }
        }
        match end.expect("simulation ended") {
            CoSimEnd::Bug(report) => {
                assert!(matches!(report.error, DiffError::Writeback { .. }));
                let replay = report.replay.expect("lightsss enabled");
                assert!(replay.from_cycle <= report.at_cycle);
                assert!(!replay.fallback_reset, "snapshots were retained");
                assert!(
                    report.at_cycle - replay.from_cycle <= 2 * 2_000 + 2_000,
                    "replay window bounded"
                );
                // Debug-mode trace captured commit events around the bug.
                assert!(replay.trace.table("instr_commit").is_some());
                // The replayed window did real work: its CPI stack is live.
                assert!(replay.window_cpi.total() > 0);
            }
            other => panic!("expected a bug, got {other:?}"),
        }
    }

    #[test]
    fn divergence_before_first_snapshot_replays_from_reset() {
        // Regression (ISSUE 3 satellite): an interval larger than the
        // failure cycle leaves LightSSS with zero retained snapshots; the
        // replay must fall back to the reset state, not unwrap `oldest()`.
        // The very first committed instruction is a corrupted Mul, so the
        // co-sim diverges in cycle 1 of a fresh harness.
        let mut a = Asm::new(0x8000_0000);
        a.mul(A0, S0, S1);
        a.ebreak();
        let program = a.assemble();
        let mut cfg = tiny_cfg(1);
        cfg.injected_bug = Some(xscore::InjectedBug::MulLowBit);
        let mut cosim = CoSim::new(cfg, &program).with_lightsss(1 << 40);
        let end = cosim.run(500_000);
        let CoSimEnd::Bug(report) = end else {
            panic!("expected an immediate divergence, got {end:?}");
        };
        assert_eq!(report.at_commit, 1, "first commit diverges");
        assert_eq!(cosim.lightsss.as_ref().unwrap().retained(), 0);
        let replay = report.replay.expect("replay must not require a snapshot");
        assert!(replay.fallback_reset, "reset-state fallback taken");
        assert_eq!(replay.from_cycle, 0);
        assert!(replay.reproduced, "reset replay reproduces the divergence");
        assert_eq!(replay.at_commit, report.at_commit);
    }

    #[test]
    fn isolated_run_matches_direct_run() {
        let stats = run_isolated(tiny_cfg(1), &branchy_program(), 500_000, None)
            .expect("no panic");
        assert!(matches!(stats.end, CoSimEnd::Halted(_)));
        assert!(stats.commits_checked > 2_000);
        assert!(stats.instret > 0 && stats.cycles > 0);
    }

    #[test]
    fn isolated_run_catches_panics() {
        // An empty program image makes the frontend fetch unmapped
        // memory; whatever panic that raises must be contained.
        let bogus = Program {
            base: 0x8000_0000,
            entry: 0x8000_0000,
            bytes: Vec::new(),
        };
        let r = run_isolated(tiny_cfg(1), &bogus, 10_000, None);
        if let Err(msg) = r {
            assert!(!msg.is_empty());
        }
        // Either outcome is fine — the contract is only that a panic
        // never unwinds through `run_isolated`.
    }

    /// Run the architectural stepper to an arbitrary boundary and hand
    /// back the state + memory a checkpoint would carry.
    fn profile_to(program: &Program, insts: u64) -> (riscv_isa::state::ArchState, SparseMemory) {
        let mut mem = SparseMemory::new();
        program.load_into(&mut mem);
        let mut hart = nemu::hart::Hart::new(program.entry, 0);
        for _ in 0..insts {
            assert!(!hart.is_halted(), "boundary must precede the halt");
            nemu::hart::step(&mut hart, &mut mem);
        }
        (hart.state.clone(), mem)
    }

    #[test]
    fn checkpoint_resume_measures_a_verified_window() {
        let program = branchy_program();
        let (state, mem) = profile_to(&program, 5_000);
        let (res, salvage) =
            run_isolated_checkpoint(tiny_cfg(1), &state, &mem, 1_000, 2_000, 500_000, None);
        let stats = res.expect("no panic");
        assert!(matches!(stats.end, SampleEnd::Window), "{:?}", stats.end);
        assert!(salvage.is_none(), "window completion salvages nothing");
        // Both phases hit their instruction targets (modulo event-driven
        // overshoot) and every commit was verified against the REF.
        assert!(stats.window.warmup_instret >= 1_000);
        assert!(stats.window.window_instret >= 2_000);
        assert_eq!(stats.instret, stats.window.warmup_instret + stats.window.window_instret);
        assert!(stats.commits_checked >= stats.instret);
        // The window CPI stack obeys the same identity as a full run's.
        assert_eq!(
            stats.window.cpi.total(),
            stats.window.window_cycles * stats.perf.commit_width,
            "window CPI stack must account for every window slot"
        );
    }

    #[test]
    fn checkpoint_resume_catches_injected_bugs() {
        // The restored REF must keep verifying commits: a DUT corrupted
        // after the restore diverges inside the sample run.
        let program = branchy_program();
        let (state, mem) = profile_to(&program, 3_000);
        let mut cfg = tiny_cfg(1);
        cfg.injected_bug = Some(xscore::InjectedBug::MulLowBit);
        let (res, _) = run_isolated_checkpoint(cfg, &state, &mem, 500, 2_000, 500_000, None);
        let stats = res.expect("no panic");
        assert!(
            matches!(stats.end, SampleEnd::Bug(_)),
            "expected a divergence, got {:?}",
            stats.end
        );
    }

    #[test]
    fn checkpoint_resume_halts_cleanly_past_the_end() {
        // A window larger than the remaining program: the run halts and
        // reports the partial window instead of spinning.
        let program = branchy_program();
        let (state, mem) = profile_to(&program, 15_000);
        let (res, _) = run_isolated_checkpoint(
            tiny_cfg(1),
            &state,
            &mem,
            1_000,
            100_000_000,
            500_000,
            None,
        );
        let stats = res.expect("no panic");
        assert!(matches!(stats.end, SampleEnd::Halted(_)), "{:?}", stats.end);
        assert!(stats.window.window_instret > 0, "partial window measured");
    }

    #[test]
    fn snapshots_track_simulation() {
        let mut cosim = CoSim::new(tiny_cfg(1), &branchy_program()).with_lightsss(500);
        let _ = cosim.run(100_000);
        let l = cosim.lightsss.as_ref().unwrap();
        assert!(l.taken >= 2);
        assert!(l.retained() <= 2);
    }
}
