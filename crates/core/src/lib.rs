//! MINJIE — the agile processor-development platform of the paper,
//! reproduced in Rust.
//!
//! The platform integrates (Fig. 2):
//!
//! - [`rules`] — DRAV: the diff-rule vocabulary and the ≥120-entry CSR
//!   field-rule table (§III-A, §III-B2),
//! - [`difftest`] — the co-simulation verification framework with
//!   information-probe-fed checkers, the Global Memory multi-core rule,
//!   forced page faults and SC failures (§III-B),
//! - [`lightsss`] — the lightweight copy-on-write simulation snapshot
//!   manager and the eager SSS baseline (§III-C, Table I, Fig. 6),
//! - [`archdb`] — the probe-schema event database (§III-B3),
//! - [`cosim`] — the integrated workflow: DUT + REFs + DiffTest +
//!   LightSSS + ArchDB, with on-demand debug-mode replay (§III-E, §IV-C).
//!
//! The DUT is the `xscore` cycle-level XiangShan model; the REF is a
//! `nemu` architectural hart per core — the same N-to-1 arrangement the
//! paper advocates.
//!
//! # Example
//!
//! ```
//! use minjie::{CoSim, CoSimEnd};
//! use riscv_isa::asm::{reg::*, Asm};
//! use xscore::XsConfig;
//!
//! let mut a = Asm::new(0x8000_0000);
//! a.li(A0, 7);
//! a.ebreak();
//! let program = a.assemble();
//!
//! let mut cosim = CoSim::new(XsConfig::yqh(), &program).with_lightsss(10_000);
//! match cosim.run(200_000) {
//!     CoSimEnd::Halted(code) => assert_eq!(code, 7),
//!     other => panic!("{other:?}"),
//! }
//! ```

pub mod archdb;
pub mod cosim;
pub mod coverage;
pub mod difftest;
pub mod lightsss;
pub mod rules;
pub mod telemetry;

pub use archdb::ArchDb;
pub use cosim::{
    panic_message, run_isolated, run_isolated_checkpoint, run_isolated_salvaging, BugReport, CoSim,
    CoSimEnd, CoSimState, ReplayReport, RunStats, Salvage, SampleEnd, SampleStats,
    SampleWindowStats,
};
pub use coverage::{bucket, CommitCoverage, CoverageMap, FU_CLASS_COUNT, OP_COUNT};
pub use difftest::{AnyRef, DiffError, DiffTest, GlobalMemory, NemuRef, RefModel, ARCH_REF_NAME};
pub use lightsss::{LightSss, Snapshot, Snapshotable, Sss};
pub use rules::{compare_csrs, CsrFieldKind, CsrFieldRule, CsrRuleTable, DiffRule, RuleStats};
pub use telemetry::{BpuStats, CacheSnap, CoreSnapshot, PerfSnapshot, TlbStats};
