//! LightSSS — the lightweight simulation snapshot technique (paper §III-C)
//! — and the eager "SSS" baseline it is compared against.
//!
//! The paper's LightSSS `fork()`s the RTL-simulation process and lets the
//! kernel's copy-on-write share unmodified pages between the snapshot and
//! the running simulation. This reproduction achieves the same three
//! properties of Table I — **in-memory**, **incremental**, and
//! **circuit-agnostic** — with language-level copy-on-write: all bulk
//! simulation state (guest memory pages) lives behind `Arc`s, so cloning
//! the simulation struct copies only the page table and duplicates pages
//! lazily on the next write (see DESIGN.md §5.3).
//!
//! `SSS` is the §III-C2 baseline: an eager full serialization of the
//! state, orders of magnitude more expensive per snapshot.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A simulation whose state can be snapshotted.
///
/// `Clone` must be cheap/COW for LightSSS to deliver its advantage; the
/// trait additionally exposes an eager serialization used by the SSS
/// baseline comparison.
pub trait Snapshotable: Clone {
    /// Current simulation time (cycles).
    fn time(&self) -> u64;
    /// Eagerly serialize the complete state (the expensive SSS path).
    fn serialize_full(&self) -> Vec<u8>;
}

/// One retained snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot<S> {
    /// Simulation time at capture.
    pub at: u64,
    /// The captured state.
    pub state: S,
}

/// The LightSSS snapshot manager: periodic COW snapshots, keeping only
/// the most recent two (paper: "we only reserve the most recent two
/// snapshots and drop the earlier ones").
#[derive(Debug, Clone)]
pub struct LightSss<S> {
    /// Snapshot interval in simulation cycles.
    pub interval: u64,
    snaps: VecDeque<Snapshot<S>>,
    last_at: Option<u64>,
    /// Total number of snapshots taken.
    pub taken: u64,
    /// Cumulative wall-clock time spent taking snapshots.
    pub snapshot_cost: Duration,
}

impl<S: Snapshotable> LightSss<S> {
    /// Create a manager snapshotting every `interval` cycles.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        LightSss {
            interval,
            snaps: VecDeque::with_capacity(2),
            last_at: None,
            taken: 0,
            snapshot_cost: Duration::ZERO,
        }
    }

    /// Offer the current state; a snapshot is captured when the interval
    /// elapsed. Returns true when one was taken.
    ///
    /// The first snapshot is due once `interval` cycles have elapsed —
    /// a failure inside the first interval therefore finds no retained
    /// snapshot, and rollback must fall back to the reset state (see
    /// `CoSim::replay`).
    pub fn tick(&mut self, state: &S) -> bool {
        let now = state.time();
        let due = match self.last_at {
            None => now >= self.interval,
            Some(last) => now >= last + self.interval,
        };
        if !due {
            return false;
        }
        let t0 = Instant::now();
        self.snaps.push_back(Snapshot {
            at: now,
            state: state.clone(),
        });
        if self.snaps.len() > 2 {
            self.snaps.pop_front();
        }
        self.snapshot_cost += t0.elapsed();
        self.last_at = Some(now);
        self.taken += 1;
        true
    }

    /// The next cycle at which [`LightSss::tick`] will capture a
    /// snapshot. The event-driven cycle skipper clamps idle-span jumps to
    /// land exactly on this cycle, so snapshots are taken at the same
    /// cycles — with the same captured state — as a cycle-by-cycle run.
    pub fn next_due(&self) -> u64 {
        match self.last_at {
            None => self.interval,
            Some(last) => last + self.interval,
        }
    }

    /// The older of the two retained snapshots (the replay start point:
    /// at most `2 * interval` cycles before the failure).
    pub fn oldest(&self) -> Option<&Snapshot<S>> {
        self.snaps.front()
    }

    /// The most recent snapshot.
    pub fn newest(&self) -> Option<&Snapshot<S>> {
        self.snaps.back()
    }

    /// Number of retained snapshots (≤ 2).
    pub fn retained(&self) -> usize {
        self.snaps.len()
    }
}

/// The eager full-serialization snapshot scheme of §III-C2 (the paper
/// measures 3.671 s per snapshot against 535 µs for a fork).
#[derive(Debug, Default)]
pub struct Sss {
    snaps: VecDeque<(u64, Vec<u8>)>,
    /// Total snapshots taken.
    pub taken: u64,
    /// Cumulative wall-clock cost.
    pub snapshot_cost: Duration,
}

impl Sss {
    /// Create an SSS manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take an eager snapshot.
    pub fn take<S: Snapshotable>(&mut self, state: &S) {
        let t0 = Instant::now();
        let blob = state.serialize_full();
        self.snaps.push_back((state.time(), blob));
        if self.snaps.len() > 2 {
            self.snaps.pop_front();
        }
        self.snapshot_cost += t0.elapsed();
        self.taken += 1;
    }

    /// The older retained blob.
    pub fn oldest(&self) -> Option<&(u64, Vec<u8>)> {
        self.snaps.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv_isa::mem::{PhysMem, SparseMemory};

    #[derive(Clone)]
    struct FakeSim {
        cycle: u64,
        mem: SparseMemory,
    }

    impl Snapshotable for FakeSim {
        fn time(&self) -> u64 {
            self.cycle
        }
        fn serialize_full(&self) -> Vec<u8> {
            self.mem.serialize_full()
        }
    }

    fn sim() -> FakeSim {
        let mut mem = SparseMemory::new();
        for i in 0..256u64 {
            mem.write_uint(i * 4096, 8, i);
        }
        FakeSim { cycle: 0, mem }
    }

    #[test]
    fn keeps_last_two_snapshots() {
        let mut s = sim();
        let mut l = LightSss::new(100);
        for c in 0..1000 {
            s.cycle = c;
            l.tick(&s);
        }
        assert_eq!(l.retained(), 2);
        assert!(l.taken >= 9);
        let old = l.oldest().unwrap().at;
        let new = l.newest().unwrap().at;
        assert_eq!(new - old, 100);
        assert!(s.cycle - old <= 2 * 100, "replay window bounded by 2N");
    }

    #[test]
    fn snapshot_isolation_under_writes() {
        let mut s = sim();
        let mut l = LightSss::new(10);
        s.cycle = 10;
        l.tick(&s);
        // Mutate after the snapshot.
        s.mem.write_uint(0, 8, 0xdead);
        let mut snap = l.newest().unwrap().state.clone();
        assert_eq!(snap.mem.read_uint(0, 8), 0, "snapshot sees old value");
        assert_eq!(s.mem.read_uint(0, 8), 0xdead);
    }

    #[test]
    fn replay_from_oldest_reproduces() {
        // A deterministic "simulation": state = f(cycle). Roll back and
        // re-run; the state at the failure point must be identical.
        let mut s = sim();
        let mut l = LightSss::new(50);
        let mut trace = Vec::new();
        for c in 1..=325u64 {
            s.cycle = c;
            s.mem.write_uint((c % 64) * 8, 8, c);
            l.tick(&s);
            trace.push((c, s.mem.read_uint((c % 64) * 8, 8)));
        }
        // "Error" at cycle 325: replay from the oldest snapshot.
        let snap = l.oldest().unwrap();
        let mut replay = snap.state.clone();
        for c in snap.at + 1..=325 {
            replay.cycle = c;
            replay.mem.write_uint((c % 64) * 8, 8, c);
        }
        assert_eq!(replay.cycle, s.cycle);
        for i in 0..64u64 {
            assert_eq!(
                replay.mem.read_uint(i * 8, 8),
                s.mem.read_uint(i * 8, 8),
                "slot {i}"
            );
        }
        let _ = trace;
    }

    #[test]
    fn lightsss_is_cheaper_than_sss() {
        let mut s = sim();
        // Grow the state so the serialization cost is visible.
        for i in 0..2048u64 {
            s.mem.write_uint(0x100_0000 + i * 4096, 8, i);
        }
        let mut light = LightSss::new(1);
        let mut heavy = Sss::new();
        let n = 20;
        for c in 1..=n {
            s.cycle = c;
            light.tick(&s);
            heavy.take(&s);
        }
        assert_eq!(light.taken, n);
        assert_eq!(heavy.taken, n);
        // The COW clone must beat the full serialization clearly.
        assert!(
            light.snapshot_cost * 5 < heavy.snapshot_cost,
            "light {:?} vs sss {:?}",
            light.snapshot_cost,
            heavy.snapshot_cost
        );
    }

    #[test]
    fn no_snapshot_before_the_first_interval() {
        // The pre-first-snapshot window exists by design: rollback in it
        // must fall back to the reset state instead of unwrapping
        // `oldest()` (ISSUE 3 satellite).
        let mut s = sim();
        let mut l = LightSss::new(100);
        for c in 0..100 {
            s.cycle = c;
            assert!(!l.tick(&s), "no snapshot due before cycle 100");
        }
        assert_eq!(l.retained(), 0);
        assert!(l.oldest().is_none() && l.newest().is_none());
        s.cycle = 100;
        assert!(l.tick(&s));
        assert_eq!(l.retained(), 1);
        assert_eq!(l.oldest().unwrap().at, 100);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = LightSss::<FakeSim>::new(0);
    }
}
