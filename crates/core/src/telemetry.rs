//! Cross-layer pipeline telemetry: the unified [`PerfSnapshot`] joining
//! the cores' top-down CPI stacks and occupancy histograms with the
//! uncore's cache, TLB, predictor, and DRAM counters.
//!
//! The paper's §IV-D2 performance analysis works exactly this way: "we
//! look into the detailed performance counters obtained from simulation"
//! and attribute lost commit slots top-down. A snapshot is pure integer
//! data (counters and fixed-bucket histograms), so embedding it in a
//! campaign report keeps report bodies byte-identical across runs;
//! derived ratios (IPC, MPKI, miss rates) are computed at render time.

use serde::{Deserialize, Serialize};
use uncore::{CacheStats, DramStats, Hist, MemLatencyHists};
use xscore::{CpiStack, PerfCounters, XsSystem};

/// Hit/miss counters of one TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Translation hits.
    pub hits: u64,
    /// Translation misses.
    pub misses: u64,
}

/// Branch-predictor counters surfaced from the BPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BpuStats {
    /// Conditional-branch predictions made.
    pub cond_predictions: u64,
    /// Conditional-branch mispredictions.
    pub cond_mispredictions: u64,
    /// Indirect-target mispredictions.
    pub indirect_mispredictions: u64,
}

/// One core's slice of the snapshot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoreSnapshot {
    /// The core's performance counters (CPI stack, occupancy and
    /// latency histograms included).
    pub perf: PerfCounters,
    /// L1 instruction TLB.
    pub itlb: TlbStats,
    /// L1 data TLB.
    pub dtlb: TlbStats,
    /// Unified second-level TLB.
    pub stlb: TlbStats,
    /// Page-table walks performed.
    pub ptw_walks: u64,
    /// Branch-predictor counters.
    pub bpu: BpuStats,
}

/// One cache's slice of the snapshot, keyed by the uncore's cache name
/// (`l1i0`, `l1d0`, `l2_0`, `l3`, ...).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CacheSnap {
    /// Cache name.
    pub name: String,
    /// Its counters.
    pub stats: CacheStats,
}

/// The unified cross-layer performance snapshot of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerfSnapshot {
    /// Commit width the CPI stacks were attributed against.
    pub commit_width: u64,
    /// Per-core counters.
    pub cores: Vec<CoreSnapshot>,
    /// Per-cache counters, hierarchy order.
    pub caches: Vec<CacheSnap>,
    /// Memory-controller counters.
    pub dram: DramStats,
    /// Memory round-trip latency histograms (empty unless the run had
    /// telemetry enabled).
    pub mem_latency: MemLatencyHists,
}

impl PerfSnapshot {
    /// Collect a snapshot from a finished (or running) system.
    pub fn collect(sys: &XsSystem) -> Self {
        let cores = sys
            .cores
            .iter()
            .map(|c| CoreSnapshot {
                perf: c.perf.clone(),
                itlb: TlbStats {
                    hits: c.mmu.itlb.hits,
                    misses: c.mmu.itlb.misses,
                },
                dtlb: TlbStats {
                    hits: c.mmu.dtlb.hits,
                    misses: c.mmu.dtlb.misses,
                },
                stlb: TlbStats {
                    hits: c.mmu.stlb.hits,
                    misses: c.mmu.stlb.misses,
                },
                ptw_walks: c.mmu.walks,
                bpu: BpuStats {
                    cond_predictions: c.bpu.cond_predictions,
                    cond_mispredictions: c.bpu.cond_mispredictions,
                    indirect_mispredictions: c.bpu.indirect_mispredictions,
                },
            })
            .collect();
        let caches = sys
            .mem
            .stats()
            .into_iter()
            .map(|(name, stats)| CacheSnap { name, stats })
            .collect();
        PerfSnapshot {
            commit_width: sys
                .cores
                .first()
                .map(|c| c.cfg.commit_width as u64)
                .unwrap_or(0),
            cores,
            caches,
            dram: sys.mem.dram_stats(),
            mem_latency: sys.mem.latency_hists().clone(),
        }
    }

    /// Instructions per cycle, summed over cores (0 when empty).
    pub fn ipc(&self) -> f64 {
        let cycles: u64 = self.cores.iter().map(|c| c.perf.cycles).max().unwrap_or(0);
        let instret: u64 = self.cores.iter().map(|c| c.perf.instret).sum();
        if cycles == 0 {
            0.0
        } else {
            instret as f64 / cycles as f64
        }
    }

    /// Branch mispredicts per kilo-instruction, over all cores.
    pub fn mpki(&self) -> f64 {
        let instret: u64 = self.cores.iter().map(|c| c.perf.instret).sum();
        let misses: u64 = self.cores.iter().map(|c| c.perf.branch_mispredicts).sum();
        if instret == 0 {
            0.0
        } else {
            1000.0 * misses as f64 / instret as f64
        }
    }

    /// Aggregate miss rate of all L1 data caches (0 when no accesses).
    pub fn l1d_miss_rate(&self) -> f64 {
        let (mut hits, mut misses) = (0u64, 0u64);
        for c in self.caches.iter().filter(|c| c.name.starts_with("l1d")) {
            hits += c.stats.hits;
            misses += c.stats.misses;
        }
        if hits + misses == 0 {
            0.0
        } else {
            misses as f64 / (hits + misses) as f64
        }
    }

    /// The CPI stack summed over cores.
    pub fn cpi_stack(&self) -> CpiStack {
        let mut total = CpiStack::default();
        for c in &self.cores {
            let s = &c.perf.cpi;
            total.retired += s.retired;
            total.frontend_starved += s.frontend_starved;
            total.mispredict_recovery += s.mispredict_recovery;
            total.memory_stall += s.memory_stall;
            total.rob_full += s.rob_full;
            total.iq_full += s.iq_full;
            total.serialization += s.serialization;
            total.other += s.other;
        }
        total
    }

    /// True when the top-down identity `sum(components) == cycles *
    /// commit_width` holds on every core.
    pub fn cpi_identity_holds(&self) -> bool {
        self.cores
            .iter()
            .all(|c| c.perf.cpi.total() == c.perf.cycles * self.commit_width)
    }

    /// The lifecycle digest summed over cores.
    pub fn lifecycle_digest(&self) -> xscore::LifecycleDigest {
        let mut total = xscore::LifecycleDigest::default();
        for c in &self.cores {
            total.merge(&c.perf.lifecycle);
        }
        total
    }

    /// Cross-check every core's lifecycle digest against its own flush
    /// and uop counters (see [`xscore::LifecycleDigest::cross_check`]).
    ///
    /// # Errors
    ///
    /// The first violated invariant, prefixed with the core index.
    pub fn lifecycle_consistent(&self) -> Result<(), String> {
        for (i, c) in self.cores.iter().enumerate() {
            c.perf
                .lifecycle
                .cross_check(&c.perf)
                .map_err(|e| format!("core {i}: {e}"))?;
        }
        Ok(())
    }

    /// Render the snapshot as an aligned ASCII report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "ipc {:.3}  mpki {:.2}  l1d-miss {:.2}%\n",
            self.ipc(),
            self.mpki(),
            100.0 * self.l1d_miss_rate()
        ));
        s.push_str(&render_cpi_stack(&self.cpi_stack(), "cpi stack (commit slots)"));
        for (hist, name) in self
            .cores
            .iter()
            .flat_map(|c| {
                [
                    (&c.perf.rob_occupancy, "rob occupancy"),
                    (&c.perf.iq_alu_occupancy, "alu-iq occupancy"),
                    (&c.perf.iq_ls_occupancy, "ls-iq occupancy"),
                    (&c.perf.sbuffer_occupancy, "sbuffer occupancy"),
                    (&c.perf.l1d_mshr_occupancy, "l1d-mshr occupancy"),
                    (&c.perf.load_to_use, "load-to-use latency"),
                ]
            })
            .chain([
                (&self.mem_latency.l1_hit, "mem rtt (l1 hit)"),
                (&self.mem_latency.l1_miss, "mem rtt (l1 miss)"),
                (&self.mem_latency.dram, "dram service latency"),
            ])
        {
            if !hist.is_empty() {
                s.push_str(&render_hist(hist, name));
            }
        }
        let mut any_cache = false;
        for c in &self.caches {
            let total = c.stats.hits + c.stats.misses;
            if total == 0 {
                continue;
            }
            if !any_cache {
                s.push_str("cache            hits      misses   miss%  mshr-stall\n");
                any_cache = true;
            }
            s.push_str(&format!(
                "  {:<12} {:>9} {:>9} {:>6.2} {:>10}\n",
                c.name,
                c.stats.hits,
                c.stats.misses,
                100.0 * c.stats.misses as f64 / total as f64,
                c.stats.mshr_stalls,
            ));
        }
        s
    }
}

/// Render a CPI stack with per-component percentage bars.
pub fn render_cpi_stack(stack: &CpiStack, title: &str) -> String {
    let total = stack.total().max(1);
    let mut s = format!("{title}\n");
    for (name, v) in stack.components() {
        let pct = 100.0 * v as f64 / total as f64;
        let bar = "#".repeat((pct / 2.0).round() as usize);
        s.push_str(&format!("  {name:<20} {v:>12} {pct:>6.2}% {bar}\n"));
    }
    s
}

/// Render a histogram: one row per non-empty bucket, plus moments.
pub fn render_hist(h: &Hist, title: &str) -> String {
    let mut s = format!(
        "{title}: n={} mean={:.1} max={}\n",
        h.samples,
        h.mean(),
        h.max
    );
    let peak = h.counts.iter().copied().max().unwrap_or(0).max(1);
    for (i, &n) in h.counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let bar = "#".repeat(((40 * n) / peak).max(1) as usize);
        s.push_str(&format!("  {:>8} {n:>10} {bar}\n", Hist::bucket_label(i)));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_with(cpi: CpiStack, cycles: u64, width: u64) -> PerfSnapshot {
        let mut core = CoreSnapshot::default();
        core.perf.cpi = cpi;
        core.perf.cycles = cycles;
        PerfSnapshot {
            commit_width: width,
            cores: vec![core],
            ..Default::default()
        }
    }

    #[test]
    fn identity_check() {
        let good = snapshot_with(
            CpiStack {
                retired: 300,
                memory_stall: 200,
                other: 100,
                ..Default::default()
            },
            100,
            6,
        );
        assert!(good.cpi_identity_holds());
        let bad = snapshot_with(
            CpiStack {
                retired: 300,
                ..Default::default()
            },
            100,
            6,
        );
        assert!(!bad.cpi_identity_holds());
    }

    #[test]
    fn derived_metrics() {
        let mut snap = snapshot_with(CpiStack::default(), 1000, 6);
        snap.cores[0].perf.instret = 2500;
        snap.cores[0].perf.branch_mispredicts = 5;
        snap.caches.push(CacheSnap {
            name: "l1d0".into(),
            stats: CacheStats {
                hits: 90,
                misses: 10,
                ..Default::default()
            },
        });
        assert!((snap.ipc() - 2.5).abs() < 1e-12);
        assert!((snap.mpki() - 2.0).abs() < 1e-12);
        assert!((snap.l1d_miss_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let mut snap = snapshot_with(
            CpiStack {
                retired: 400,
                frontend_starved: 100,
                memory_stall: 100,
                ..Default::default()
            },
            100,
            6,
        );
        snap.cores[0].perf.rob_occupancy.record(12);
        snap.cores[0].perf.rob_occupancy.record(0);
        let r = snap.render();
        assert!(r.contains("retired"));
        assert!(r.contains("frontend_starved"));
        assert!(r.contains("rob occupancy"));
        // Empty hists are skipped.
        assert!(!r.contains("load-to-use"));
    }

    #[test]
    fn serde_round_trips_snapshot() {
        let mut snap = snapshot_with(
            CpiStack {
                retired: 7,
                other: 5,
                ..Default::default()
            },
            2,
            6,
        );
        snap.cores[0].perf.load_to_use.record(9);
        snap.dram.accesses = 3;
        let json = serde_json::to_string(&snap).unwrap();
        let back: PerfSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cores[0].perf.cpi.retired, 7);
        assert_eq!(back.cores[0].perf.load_to_use.samples, 1);
        assert_eq!(back.dram.accesses, 3);
        assert_eq!(back.commit_width, 6);
    }
}
