//! Cheap coverage maps for coverage-guided fuzzing.
//!
//! Three families of coverage feed the campaign's fuzz scheduler:
//!
//! - **decode coverage** — per-opcode and per-functional-class commit
//!   counts, accumulated by DiffTest on its existing commit-check path
//!   ([`CommitCoverage`]),
//! - **diff-rule coverage** — how often each [`DiffRule`] legitimized a
//!   divergence, read straight out of [`RuleStats`],
//! - **pipeline-event coverage** — flush causes, replay/forward events,
//!   back-pressure, TLB misses and page-table walks, derived once at the
//!   end of a run from the telemetry counters in [`PerfSnapshot`].
//!
//! Everything is pure integer data so coverage maps embed in the
//! deterministic campaign report body without breaking byte-identical
//! reruns. Collection is gated by `XsConfig::coverage`: the only
//! per-commit cost when enabled is two hash-map bumps, and the default
//! path pays nothing.

use crate::rules::{DiffRule, RuleStats};
use crate::telemetry::PerfSnapshot;
use riscv_isa::op::FuClass;
use riscv_isa::{DecodedInst, Op};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of [`Op`] variants (`Illegal` is last by construction).
pub const OP_COUNT: usize = Op::Illegal as usize + 1;

/// Number of [`FuClass`] variants (`Fmisc` is last by construction).
pub const FU_CLASS_COUNT: usize = FuClass::Fmisc as usize + 1;

/// The functional classes, in declaration order (index = `as usize`).
pub const FU_CLASSES: [FuClass; FU_CLASS_COUNT] = [
    FuClass::Alu,
    FuClass::Mdu,
    FuClass::Bru,
    FuClass::Load,
    FuClass::Store,
    FuClass::Fma,
    FuClass::Fmisc,
];

/// Log2 bucket of a counter value: 0 for 0, else `1 + floor(log2(n))`.
///
/// Coverage novelty compares buckets, not raw counts, so "hit this event
/// at all" and "hit it an order of magnitude more" are distinct features
/// while run-to-run count jitter within a power of two is not.
pub fn bucket(n: u64) -> u8 {
    if n == 0 {
        0
    } else {
        64 - n.leading_zeros() as u8
    }
}

/// Per-commit decode coverage, accumulated on DiffTest's hot path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommitCoverage {
    /// Commits per opcode (fused pairs count both halves).
    pub ops: HashMap<Op, u64>,
    /// Commits per functional class, indexed by `FuClass as usize`.
    pub classes: [u64; FU_CLASS_COUNT],
}

impl CommitCoverage {
    /// Record one committed instruction.
    pub fn record(&mut self, inst: &DecodedInst) {
        *self.ops.entry(inst.op).or_insert(0) += 1;
        self.classes[inst.fu_class() as usize] += 1;
    }
}

/// The serializable coverage map of one run: sorted `(name, count)`
/// vectors, zero entries omitted, so equal coverage serializes equally.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageMap {
    /// Commit counts per opcode (`Debug` name of the [`Op`] variant).
    pub opcodes: Vec<(String, u64)>,
    /// Commit counts per functional class (`Alu`, `Mdu`, ...).
    pub op_classes: Vec<(String, u64)>,
    /// Diff-rule trigger counts (kebab-case rule names).
    pub rules: Vec<(String, u64)>,
    /// Pipeline-event coverage, log2-bucketed (see [`bucket`]).
    pub events: Vec<(String, u8)>,
    /// Multi-hart coherence-event coverage, log2-bucketed: probe
    /// traffic, grant/release interleavings (writebacks/evictions), SC
    /// success/failure under contention, store-buffer drain windows and
    /// cross-hart reservation kills. Populated only on multi-core runs,
    /// so single-core coverage pins are unaffected.
    pub mp: Vec<(String, u8)>,
}

impl CoverageMap {
    /// Assemble the map from the end-of-run artifacts.
    pub fn from_run(commit: &CommitCoverage, stats: &RuleStats, perf: &PerfSnapshot) -> Self {
        let mut opcodes: Vec<(String, u64)> = commit
            .ops
            .iter()
            .filter(|&(_, &n)| n > 0)
            .map(|(op, &n)| (format!("{op:?}"), n))
            .collect();
        opcodes.sort();
        let mut op_classes: Vec<(String, u64)> = FU_CLASSES
            .iter()
            .map(|&c| (format!("{c:?}"), commit.classes[c as usize]))
            .filter(|&(_, n)| n > 0)
            .collect();
        op_classes.sort();
        let mut rules: Vec<(String, u64)> = stats
            .all()
            .iter()
            .filter(|&(_, &n)| n > 0)
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        rules.sort();
        let mut events: Vec<(String, u8)> = pipeline_events(perf)
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|(name, n)| (name.to_string(), bucket(n)))
            .collect();
        events.sort();
        let mut mp: Vec<(String, u8)> = if perf.cores.len() > 1 {
            mp_events(perf)
                .into_iter()
                .filter(|&(_, n)| n > 0)
                .map(|(name, n)| (name.to_string(), bucket(n)))
                .collect()
        } else {
            Vec::new()
        };
        mp.sort();
        CoverageMap {
            opcodes,
            op_classes,
            rules,
            events,
            mp,
        }
    }

    /// Flatten the map into bucketed feature keys for the fuzz
    /// scheduler: `op:NAME`, `class:NAME`, `rule:NAME`, `evt:NAME`, each
    /// valued by its log2 bucket. A recipe is novel when it produces a
    /// key never seen, or a known key at a strictly higher bucket.
    pub fn features(&self) -> Vec<(String, u8)> {
        let mut out = Vec::with_capacity(
            self.opcodes.len() + self.op_classes.len() + self.rules.len() + self.events.len(),
        );
        for (name, n) in &self.opcodes {
            out.push((format!("op:{name}"), bucket(*n)));
        }
        for (name, n) in &self.op_classes {
            out.push((format!("class:{name}"), bucket(*n)));
        }
        for (name, n) in &self.rules {
            out.push((format!("rule:{name}"), bucket(*n)));
        }
        for (name, b) in &self.events {
            out.push((format!("evt:{name}"), *b));
        }
        for (name, b) in &self.mp {
            out.push((format!("mp:{name}"), *b));
        }
        out.sort();
        out
    }

    /// Distinct opcodes committed.
    pub fn opcode_count(&self) -> usize {
        self.opcodes.len()
    }

    /// Count of a named diff rule (0 when untriggered).
    pub fn rule_count(&self, rule: DiffRule) -> u64 {
        self.rules
            .iter()
            .find(|(n, _)| n == rule.name())
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }
}

/// Derive the pipeline-event counters from a run's telemetry snapshot:
/// per-core counters summed over cores, uncore counters taken whole.
fn pipeline_events(perf: &PerfSnapshot) -> Vec<(&'static str, u64)> {
    let sum = |f: fn(&crate::telemetry::CoreSnapshot) -> u64| -> u64 {
        perf.cores.iter().map(f).sum()
    };
    vec![
        ("flush-mispredict", sum(|c| c.perf.flushes_mispredict)),
        ("flush-violation", sum(|c| c.perf.flushes_violation)),
        ("flush-system", sum(|c| c.perf.flushes_system)),
        ("exception", sum(|c| c.perf.exceptions)),
        ("sc-failure", sum(|c| c.perf.sc_failures)),
        ("load-forward", sum(|c| c.perf.load_forwards)),
        ("move-eliminated", sum(|c| c.perf.moves_eliminated)),
        ("rob-full-cycle", sum(|c| c.perf.rob_full_cycles)),
        ("branch-mispredict", sum(|c| c.perf.branch_mispredicts)),
        ("itlb-miss", sum(|c| c.itlb.misses)),
        ("dtlb-miss", sum(|c| c.dtlb.misses)),
        ("stlb-miss", sum(|c| c.stlb.misses)),
        ("ptw-walk", sum(|c| c.ptw_walks)),
        (
            "mshr-stall",
            perf.caches.iter().map(|c| c.stats.mshr_stalls).sum(),
        ),
        ("dram-access", perf.dram.accesses),
    ]
}

/// Multi-hart coherence events from a run's telemetry snapshot; only
/// meaningful (and only collected) when more than one core ran.
fn mp_events(perf: &PerfSnapshot) -> Vec<(&'static str, u64)> {
    let core = |f: fn(&crate::telemetry::CoreSnapshot) -> u64| -> u64 {
        perf.cores.iter().map(f).sum()
    };
    let cache = |f: fn(&uncore::CacheStats) -> u64| -> u64 {
        perf.caches.iter().map(|c| f(&c.stats)).sum()
    };
    vec![
        ("probe-sent", cache(|s| s.probes_sent)),
        ("probe-received", cache(|s| s.probes_received)),
        ("writeback", cache(|s| s.writebacks)),
        ("eviction", cache(|s| s.evictions)),
        ("injected-race", cache(|s| s.injected_races)),
        ("sc-success", core(|c| c.perf.sc_successes)),
        ("sc-failure", core(|c| c.perf.sc_failures)),
        ("reservation-kill", core(|c| c.perf.reservation_snoop_kills)),
        ("sbuffer-drain", core(|c| c.perf.sbuffer_drains)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_log2_tiered() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(2), 2);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(1023), 10);
        assert_eq!(bucket(1024), 11);
        assert_eq!(bucket(u64::MAX), 64);
    }

    #[test]
    fn op_count_covers_every_variant() {
        // Illegal is the last variant by construction; a few spot checks
        // guard against reordering.
        assert!(OP_COUNT > 100);
        assert!((Op::Add as usize) < OP_COUNT);
        assert!((Op::Sh3add as usize) < OP_COUNT);
        assert_eq!(Op::Illegal as usize, OP_COUNT - 1);
        for (i, c) in FU_CLASSES.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }

    #[test]
    fn commit_coverage_counts_ops_and_classes() {
        let mut cov = CommitCoverage::default();
        let add = riscv_isa::decode32(0x00b50533); // add a0,a0,a1
        let mul = riscv_isa::decode32(0x02b50533); // mul a0,a0,a1
        cov.record(&add);
        cov.record(&add);
        cov.record(&mul);
        assert_eq!(cov.ops[&Op::Add], 2);
        assert_eq!(cov.ops[&Op::Mul], 1);
        assert_eq!(cov.classes[FuClass::Alu as usize], 2);
        assert_eq!(cov.classes[FuClass::Mdu as usize], 1);
    }

    #[test]
    fn map_is_sorted_and_omits_zeros() {
        let mut cov = CommitCoverage::default();
        cov.record(&riscv_isa::decode32(0x00b50533)); // add
        cov.record(&riscv_isa::decode32(0x02b50533)); // mul
        let mut stats = RuleStats::default();
        stats.record(DiffRule::MacroFusion);
        let mut perf = PerfSnapshot::default();
        perf.cores.push(crate::telemetry::CoreSnapshot::default());
        perf.cores[0].perf.flushes_mispredict = 5;
        let map = CoverageMap::from_run(&cov, &stats, &perf);
        assert_eq!(map.opcodes, vec![("Add".into(), 1), ("Mul".into(), 1)]);
        assert_eq!(map.op_classes, vec![("Alu".into(), 1), ("Mdu".into(), 1)]);
        assert_eq!(map.rules, vec![("macro-fusion".into(), 1)]);
        assert_eq!(map.events, vec![("flush-mispredict".into(), 3)]);
        assert_eq!(map.rule_count(DiffRule::MacroFusion), 1);
        assert_eq!(map.rule_count(DiffRule::ScFailure), 0);
        // Features carry the family prefix and the log2 bucket.
        let feats = map.features();
        assert!(feats.contains(&("op:Add".into(), 1)));
        assert!(feats.contains(&("class:Mdu".into(), 1)));
        assert!(feats.contains(&("rule:macro-fusion".into(), 1)));
        assert!(feats.contains(&("evt:flush-mispredict".into(), 3)));
    }

    #[test]
    fn serde_round_trips() {
        let map = CoverageMap {
            opcodes: vec![("Add".into(), 7)],
            op_classes: vec![("Alu".into(), 7)],
            rules: vec![("sc-failure".into(), 2)],
            events: vec![("dram-access".into(), 4)],
            mp: vec![("probe-sent".into(), 3)],
        };
        let json = serde_json::to_string(&map).unwrap();
        let back: CoverageMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
