//! Commit-stream equivalence between the xscore cycle model (DUT) and the
//! NEMU architectural executor (REF) — the raw material DiffTest builds
//! on. Every committed (pc, writeback) pair must match instruction for
//! instruction.

use nemu::{hart, Hart};
use riscv_isa::asm::{reg::*, Asm};
use riscv_isa::mem::SparseMemory;
use xscore::{XsConfig, XsSystem};

fn small_cfg() -> XsConfig {
    let mut c = XsConfig::nh();
    c.l1i = uncore::CacheConfig::new("l1i", 8192, 2, 2, 4);
    c.l1d = uncore::CacheConfig::new("l1d", 8192, 2, 4, 8);
    c.l2 = uncore::CacheConfig::new("l2", 32768, 4, 10, 8);
    c.l3 = Some(uncore::CacheConfig::new("l3", 131072, 4, 20, 16));
    c.memory = xscore::MemoryModel::FixedAmat(40);
    c
}

/// Run DUT and REF in lockstep over the commit stream.
fn lockstep(program: &riscv_isa::asm::Program, max_cycles: u64) -> (u64, u64) {
    let mut sys = XsSystem::new(small_cfg(), program);
    let mut mem = SparseMemory::new();
    program.load_into(&mut mem);
    let mut ref_hart = Hart::new(program.entry, 0);
    let mut compared = 0u64;
    for _ in 0..max_cycles {
        if sys.all_halted() {
            break;
        }
        let outs = sys.tick();
        for commit in &outs[0].commits {
            let mut info = hart::step(&mut ref_hart, &mut mem);
            assert_eq!(
                info.pc, commit.pc,
                "pc diverged after {compared} commits (dut inst {:?})",
                commit.inst.op
            );
            compared += 1;
            // Macro-fusion diff-rule: the DUT commits the pair as one
            // event, so the REF steps twice and the *final* writeback is
            // compared (paper §III-B2c).
            if commit.fused.is_some() {
                info = hart::step(&mut ref_hart, &mut mem);
                compared += 1;
            }
            if let Some((dut_fp, dut_rd, dut_v)) = commit.wb {
                let (ref_fp, ref_rd, ref_v) =
                    info.wb.unwrap_or_else(|| panic!("REF no wb at {:#x}", info.pc));
                assert_eq!((dut_fp, dut_rd), (ref_fp, ref_rd), "wb reg at {:#x}", info.pc);
                assert_eq!(dut_v, ref_v, "wb value at {:#x} ({:?})", info.pc, commit.inst.op);
            }
        }
    }
    assert!(sys.all_halted(), "DUT did not halt");
    assert_eq!(
        sys.cores[0].halted,
        ref_hart.halted,
        "exit codes differ"
    );
    (compared, sys.cores[0].perf.cycles)
}

#[test]
fn lockstep_branchy_hash_kernel() {
    let mut a = Asm::new(0x8000_0000);
    a.li(S0, 0); // i
    a.li(S1, 3000); // n
    a.li(A0, 0); // acc
    a.li(S2, 0x9e3779b97f4a7c15u64 as i64);
    let top = a.bound_label();
    let skip = a.label();
    a.mul(T0, S0, S2);
    a.srli(T1, T0, 29);
    a.andi(T1, T1, 7);
    a.beqz(T1, skip);
    a.xor(A0, A0, T0);
    a.bind(skip);
    a.rol(A0, A0, T1);
    a.addi(S0, S0, 1);
    a.bne(S0, S1, top);
    a.andi(A0, A0, 0xff);
    a.ebreak();
    let p = a.assemble();
    let (compared, _) = lockstep(&p, 2_000_000);
    assert!(compared > 10_000);
}

#[test]
fn lockstep_memory_kernel() {
    let mut a = Asm::new(0x8000_0000);
    // Fill an array, then pointer-walk it with dependent loads and
    // read-modify-write stores.
    a.li(S0, 0x8002_0000); // base
    a.li(T0, 0);
    a.li(T1, 256);
    let fill = a.bound_label();
    a.slli(T2, T0, 3);
    a.add(T2, T2, S0);
    a.mul(T3, T0, T0);
    a.sd(T3, 0, T2);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, fill);
    // Walk.
    a.li(A0, 0);
    a.li(T0, 0);
    let walk = a.bound_label();
    a.slli(T2, T0, 3);
    a.add(T2, T2, S0);
    a.ld(T3, 0, T2);
    a.add(A0, A0, T3);
    a.andi(T4, T3, 0x7f8);
    a.add(T5, S0, T4);
    a.ld(T6, 0, T5); // dependent load
    a.xor(A0, A0, T6);
    a.sd(A0, 0, T2); // rmw store
    a.addi(T0, T0, 2);
    a.li(T6, 256);
    a.blt(T0, T6, walk);
    a.andi(A0, A0, 0xffff);
    a.ebreak();
    let p = a.assemble();
    let (compared, _) = lockstep(&p, 2_000_000);
    assert!(compared > 1_000);
}

#[test]
fn lockstep_call_tree_kernel() {
    // Recursive-ish call pattern exercising RAS and stack memory.
    let mut a = Asm::new(0x8000_0000);
    let fib = a.label();
    let done = a.label();
    a.li(SP, 0x8008_0000);
    a.li(A0, 13);
    a.call(fib);
    a.j(done);
    // fib(n): naive recursion
    a.bind(fib);
    let base = a.label();
    let rec = a.label();
    a.li(T0, 2);
    a.blt(A0, T0, base);
    a.j(rec);
    a.bind(base);
    a.ret();
    a.bind(rec);
    a.addi(SP, SP, -24);
    a.sd(RA, 0, SP);
    a.sd(A0, 8, SP);
    a.addi(A0, A0, -1);
    a.call(fib);
    a.sd(A0, 16, SP);
    a.ld(A0, 8, SP);
    a.addi(A0, A0, -2);
    a.call(fib);
    a.ld(T1, 16, SP);
    a.add(A0, A0, T1);
    a.ld(RA, 0, SP);
    a.addi(SP, SP, 24);
    a.ret();
    a.bind(done);
    a.ebreak();
    let p = a.assemble();
    let (compared, _) = lockstep(&p, 4_000_000);
    assert!(compared > 2_000);
}

#[test]
fn lockstep_fp_kernel() {
    let mut a = Asm::new(0x8000_0000);
    a.li(T0, 1);
    a.fcvt_d_l(FT0, T0); // 1.0
    a.li(T0, 3);
    a.fcvt_d_l(FT1, T0); // 3.0
    a.fmv_d_x(FT2, ZERO); // acc = 0
    a.fdiv_d(FT3, FT0, FT1); // 1/3
    a.li(S0, 500);
    let top = a.bound_label();
    a.fmadd_d(FT2, FT3, FT1, FT2); // acc += 1
    a.fsub_d(FT4, FT2, FT0);
    a.fmax_d(FT2, FT2, FT4);
    a.addi(S0, S0, -1);
    a.bnez(S0, top);
    a.fcvt_l_d(A0, FT2);
    a.ebreak();
    let p = a.assemble();
    lockstep(&p, 2_000_000);
}

#[test]
fn yqh_and_nh_both_run() {
    let mut a = Asm::new(0x8000_0000);
    a.li(T0, 0);
    a.li(T1, 2000);
    a.li(T2, 0);
    let top = a.bound_label();
    a.add(T2, T2, T0);
    a.xor(T3, T2, T0);
    a.and(T2, T2, T3);
    a.addi(T0, T0, 1);
    a.bne(T0, T1, top);
    a.mv(A0, T2);
    a.ebreak();
    let p = a.assemble();

    let mut yqh = XsSystem::new(XsConfig::yqh(), &p);
    let mut nh = XsSystem::new(XsConfig::nh(), &p);
    let cy = yqh.run(5_000_000);
    let cn = nh.run(5_000_000);
    assert_eq!(cy, cn, "same architectural result");
    let ipc_y = yqh.cores[0].perf.ipc();
    let ipc_n = nh.cores[0].perf.ipc();
    assert!(ipc_y > 0.3, "YQH ipc {ipc_y}");
    assert!(ipc_n > 0.3, "NH ipc {ipc_n}");
}
