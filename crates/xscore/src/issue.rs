//! Distributed issue queues with the AGE baseline policy and PUBS
//! (Prioritizing Unconfident Branch Slices, paper §IV-D).
//!
//! PUBS components per the original paper [Ando, MICRO'18] as summarized
//! in §IV-D2: a confidence estimation table (`ConfTable`), a branch slice
//! table (`BrSliceTable`) + define table (`DefTable`) that propagate
//! "this instruction feeds an unconfident branch" backwards through
//! producers, and a prioritized select (`PriorityIssue`).

use crate::config::IssuePolicy;
use riscv_isa::op::FuClass;

/// One issue-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntry {
    /// ROB sequence number (age).
    pub seq: u64,
    /// PUBS high-priority mark.
    pub high_priority: bool,
}

/// A single distributed issue queue.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    /// FU class served.
    pub class: FuClass,
    /// Maximum instructions selected per cycle.
    pub width: usize,
    capacity: usize,
    entries: Vec<IqEntry>,
    policy: IssuePolicy,
}

impl IssueQueue {
    /// Create a queue.
    pub fn new(class: FuClass, capacity: usize, width: usize, policy: IssuePolicy) -> Self {
        IssueQueue {
            class,
            width,
            capacity,
            entries: Vec::with_capacity(capacity),
            policy,
        }
    }

    /// True when no entry can be dispatched this cycle.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a dispatched uop.
    ///
    /// # Panics
    ///
    /// Panics when full.
    pub fn dispatch(&mut self, seq: u64, high_priority: bool) {
        assert!(!self.is_full(), "issue queue overflow");
        self.entries.push(IqEntry { seq, high_priority });
    }

    /// Select up to `width` ready entries and remove them.
    ///
    /// `ready` reports whether an entry's operands are available. Returns
    /// the selected sequence numbers and the number of entries that were
    /// ready before selection (the Fig. 15 statistic).
    pub fn select(&mut self, mut ready: impl FnMut(u64) -> bool) -> (Vec<u64>, usize) {
        let mut candidates: Vec<IqEntry> = self
            .entries
            .iter()
            .copied()
            .filter(|e| ready(e.seq))
            .collect();
        let ready_count = candidates.len();
        match self.policy {
            IssuePolicy::Age => candidates.sort_by_key(|e| e.seq),
            IssuePolicy::Pubs => {
                // PriorityIssue: unconfident-branch-slice entries first,
                // age breaking ties (and ordering within each class).
                candidates.sort_by_key(|e| (!e.high_priority, e.seq));
            }
        }
        let picked: Vec<u64> = candidates
            .iter()
            .take(self.width)
            .map(|e| e.seq)
            .collect();
        self.entries.retain(|e| !picked.contains(&e.seq));
        (picked, ready_count)
    }

    /// Remove entries younger than `seq` (flush).
    pub fn flush_after(&mut self, seq: u64) {
        self.entries.retain(|e| e.seq <= seq);
    }

    /// Remove everything.
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Raise the priority of a specific in-flight entry (PUBS back-
    /// propagation marks producers after dispatch).
    pub fn mark_high_priority(&mut self, seq: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.high_priority = true;
        }
    }
}

// ---------------------------------------------------------------------
// PUBS tables.
// ---------------------------------------------------------------------

/// Branch confidence estimation table (PUBS `ConfTable`): a table of
/// resetting counters — a branch is *confident* once it has been
/// predicted correctly `threshold` times in a row.
#[derive(Debug, Clone)]
pub struct ConfTable {
    counters: Vec<u8>,
    threshold: u8,
}

impl ConfTable {
    /// Create a table with `entries` counters (power of two).
    pub fn new(entries: usize, threshold: u8) -> Self {
        ConfTable {
            counters: vec![0; entries.next_power_of_two()],
            threshold,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 1) as usize) & (self.counters.len() - 1)
    }

    /// Is the branch at `pc` low-confidence?
    pub fn unconfident(&self, pc: u64) -> bool {
        self.counters[self.idx(pc)] < self.threshold
    }

    /// Train on a resolved branch.
    pub fn update(&mut self, pc: u64, mispredicted: bool) {
        let i = self.idx(pc);
        if mispredicted {
            self.counters[i] = 0;
        } else {
            self.counters[i] = (self.counters[i] + 1).min(self.threshold);
        }
    }
}

/// PUBS define/branch-slice tracking at rename time.
///
/// `DefTable` maps each architectural register to the sequence number of
/// its most recent producer; when an unconfident branch renames, its
/// operand producers (and transitively *their* producers, one level per
/// rename pass, which converges quickly in practice) are marked
/// high-priority via the issue queues.
#[derive(Debug, Clone, Default)]
pub struct DefTable {
    producer: [u64; 32],
}

impl DefTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `seq` produces architectural register `rd`.
    pub fn define(&mut self, rd: u8, seq: u64) {
        if rd != 0 {
            self.producer[rd as usize] = seq;
        }
    }

    /// The most recent producer of `rs` (0 = none in flight).
    pub fn producer_of(&self, rs: u8) -> u64 {
        self.producer[rs as usize]
    }

    /// Forget everything (flush).
    pub fn clear(&mut self) {
        self.producer = [0; 32];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(policy: IssuePolicy) -> IssueQueue {
        IssueQueue::new(FuClass::Alu, 8, 2, policy)
    }

    #[test]
    fn age_policy_prefers_oldest() {
        let mut iq = q(IssuePolicy::Age);
        iq.dispatch(5, true);
        iq.dispatch(3, false);
        iq.dispatch(9, false);
        let (picked, ready) = iq.select(|_| true);
        assert_eq!(picked, vec![3, 5]);
        assert_eq!(ready, 3);
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn pubs_policy_prefers_marked_entries() {
        let mut iq = q(IssuePolicy::Pubs);
        iq.dispatch(3, false);
        iq.dispatch(5, false);
        iq.dispatch(9, true);
        let (picked, _) = iq.select(|_| true);
        assert_eq!(picked, vec![9, 3], "priority first, then age");
    }

    #[test]
    fn only_ready_entries_are_selected() {
        let mut iq = q(IssuePolicy::Age);
        iq.dispatch(1, false);
        iq.dispatch(2, false);
        let (picked, ready) = iq.select(|seq| seq == 2);
        assert_eq!(picked, vec![2]);
        assert_eq!(ready, 1);
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn flush_removes_younger() {
        let mut iq = q(IssuePolicy::Age);
        for s in 1..=5 {
            iq.dispatch(s, false);
        }
        iq.flush_after(2);
        assert_eq!(iq.len(), 2);
        let (picked, _) = iq.select(|_| true);
        assert_eq!(picked, vec![1, 2]);
    }

    #[test]
    fn late_priority_marking() {
        let mut iq = q(IssuePolicy::Pubs);
        iq.dispatch(1, false);
        iq.dispatch(2, false);
        iq.mark_high_priority(2);
        let (picked, _) = iq.select(|_| true);
        assert_eq!(picked[0], 2);
    }

    #[test]
    fn conf_table_learns_confidence() {
        let mut ct = ConfTable::new(64, 3);
        let pc = 0x1000;
        assert!(ct.unconfident(pc), "cold branches are unconfident");
        for _ in 0..3 {
            ct.update(pc, false);
        }
        assert!(!ct.unconfident(pc));
        ct.update(pc, true); // one mispredict resets
        assert!(ct.unconfident(pc));
    }

    #[test]
    fn def_table_tracks_producers() {
        let mut dt = DefTable::new();
        dt.define(5, 100);
        dt.define(0, 101); // x0 never recorded
        assert_eq!(dt.producer_of(5), 100);
        assert_eq!(dt.producer_of(0), 0);
        dt.define(5, 102);
        assert_eq!(dt.producer_of(5), 102);
        dt.clear();
        assert_eq!(dt.producer_of(5), 0);
    }
}
