//! Distributed issue queues with the AGE baseline policy and PUBS
//! (Prioritizing Unconfident Branch Slices, paper §IV-D).
//!
//! PUBS components per the original paper [Ando, MICRO'18] as summarized
//! in §IV-D2: a confidence estimation table (`ConfTable`), a branch slice
//! table (`BrSliceTable`) + define table (`DefTable`) that propagate
//! "this instruction feeds an unconfident branch" backwards through
//! producers, and a prioritized select (`PriorityIssue`).

use crate::config::IssuePolicy;
use crate::prf::PReg;
use riscv_isa::op::FuClass;

/// Upper bound on any queue's per-cycle issue width, so a cycle's
/// selections fit in a fixed stack buffer ([`Picks`]) instead of a
/// heap allocation on the hottest loop in the model.
pub const MAX_ISSUE_WIDTH: usize = 8;

/// One issue-queue entry.
///
/// Carries a copy of the uop's renamed sources so the per-cycle
/// readiness scan probes the PRF ready bitmaps directly instead of
/// chasing the ROB entry (a binary search over much larger structs).
/// The copy can never go stale: sources are fixed at rename, and every
/// ROB flush path removes the queue entry in the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IqEntry {
    /// ROB sequence number (age).
    pub seq: u64,
    /// PUBS high-priority mark.
    pub high_priority: bool,
    /// Renamed sources, `(fp, preg)` per operand slot.
    pub srcs: [Option<(bool, PReg)>; 3],
}

/// Up to [`MAX_ISSUE_WIDTH`] selected entries, kept sorted by selection
/// key — the allocation-free replacement for collect-sort-truncate.
#[derive(Debug, Clone, Copy, Default)]
pub struct Picks {
    // (deprioritized, seq): the same key the policy sort used. seq is
    // the payload; keys are unique because seqs are.
    keys: [(bool, u64); MAX_ISSUE_WIDTH],
    len: usize,
}

impl Picks {
    /// Number of selected entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing was selected.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Selected sequence numbers, best key first.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys[..self.len].iter().map(|&(_, s)| s)
    }

    fn contains(&self, seq: u64) -> bool {
        self.keys[..self.len].iter().any(|&(_, s)| s == seq)
    }

    /// Keep the `width` smallest keys seen so far (insertion sort into a
    /// bounded buffer — `width` is a handful at most).
    fn insert(&mut self, key: (bool, u64), width: usize) {
        let mut pos = self.len.min(width);
        while pos > 0 && self.keys[pos - 1] > key {
            pos -= 1;
        }
        if pos >= width {
            return;
        }
        let end = self.len.min(width - 1);
        for i in (pos..end).rev() {
            self.keys[i + 1] = self.keys[i];
        }
        self.keys[pos] = key;
        self.len = (self.len + 1).min(width);
    }
}

/// A single distributed issue queue.
#[derive(Debug, Clone)]
pub struct IssueQueue {
    /// FU class served.
    pub class: FuClass,
    /// Maximum instructions selected per cycle.
    pub width: usize,
    capacity: usize,
    entries: Vec<IqEntry>,
    policy: IssuePolicy,
    /// A full scan at this PRF wakeup epoch found nothing ready, and the
    /// queue has not changed since — the scan can be skipped until a
    /// wakeup or a queue mutation invalidates it.
    quiescent_at: Option<u64>,
}

impl IssueQueue {
    /// Create a queue.
    pub fn new(class: FuClass, capacity: usize, width: usize, policy: IssuePolicy) -> Self {
        assert!(width <= MAX_ISSUE_WIDTH, "issue width {width} over the Picks bound");
        IssueQueue {
            class,
            width,
            capacity,
            entries: Vec::with_capacity(capacity),
            policy,
            quiescent_at: None,
        }
    }

    /// True when no entry can be dispatched this cycle.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a dispatched uop with its renamed sources.
    ///
    /// # Panics
    ///
    /// Panics when full.
    pub fn dispatch(&mut self, seq: u64, high_priority: bool, srcs: [Option<(bool, PReg)>; 3]) {
        assert!(!self.is_full(), "issue queue overflow");
        self.entries.push(IqEntry { seq, high_priority, srcs });
        self.quiescent_at = None;
    }

    /// Select up to `width` ready entries and remove them.
    ///
    /// `ready` reports whether an entry's operands are available. Returns
    /// the selected sequence numbers (best policy key first — oldest for
    /// AGE, unconfident-branch-slice entries first for PUBS
    /// [PriorityIssue], age breaking ties) and the number of entries that
    /// were ready before selection (the Fig. 15 statistic). One pass, no
    /// allocation: selection keys go through a bounded insertion buffer
    /// that keeps exactly what collect-sort-truncate kept.
    ///
    /// `epoch` is the PRF wakeup epoch ([`crate::prf::Prf::epoch`],
    /// summed over both register classes): when a scan finds nothing
    /// ready, the result is cached against it, and re-scans are skipped
    /// until a wakeup or queue mutation — readiness depends on nothing
    /// else, so the skip is exact, not heuristic.
    pub fn select(&mut self, epoch: u64, mut ready: impl FnMut(&IqEntry) -> bool) -> (Picks, usize) {
        if self.entries.is_empty() || self.quiescent_at == Some(epoch) {
            return (Picks::default(), 0);
        }
        let mut picks = Picks::default();
        let mut ready_count = 0usize;
        for e in &self.entries {
            if !ready(e) {
                continue;
            }
            ready_count += 1;
            let key = match self.policy {
                IssuePolicy::Age => (false, e.seq),
                IssuePolicy::Pubs => (!e.high_priority, e.seq),
            };
            picks.insert(key, self.width);
        }
        if !picks.is_empty() {
            self.entries.retain(|e| !picks.contains(e.seq));
        } else if ready_count == 0 {
            self.quiescent_at = Some(epoch);
        }
        (picks, ready_count)
    }

    /// Remove entries younger than `seq` (flush).
    pub fn flush_after(&mut self, seq: u64) {
        self.entries.retain(|e| e.seq <= seq);
        self.quiescent_at = None;
    }

    /// Remove everything.
    pub fn flush_all(&mut self) {
        self.entries.clear();
        self.quiescent_at = None;
    }

    /// Raise the priority of a specific in-flight entry (PUBS back-
    /// propagation marks producers after dispatch).
    pub fn mark_high_priority(&mut self, seq: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.high_priority = true;
            self.quiescent_at = None;
        }
    }
}

// ---------------------------------------------------------------------
// PUBS tables.
// ---------------------------------------------------------------------

/// Branch confidence estimation table (PUBS `ConfTable`): a table of
/// resetting counters — a branch is *confident* once it has been
/// predicted correctly `threshold` times in a row.
#[derive(Debug, Clone)]
pub struct ConfTable {
    counters: Vec<u8>,
    threshold: u8,
}

impl ConfTable {
    /// Create a table with `entries` counters (power of two).
    pub fn new(entries: usize, threshold: u8) -> Self {
        ConfTable {
            counters: vec![0; entries.next_power_of_two()],
            threshold,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 1) as usize) & (self.counters.len() - 1)
    }

    /// Is the branch at `pc` low-confidence?
    pub fn unconfident(&self, pc: u64) -> bool {
        self.counters[self.idx(pc)] < self.threshold
    }

    /// Train on a resolved branch.
    pub fn update(&mut self, pc: u64, mispredicted: bool) {
        let i = self.idx(pc);
        if mispredicted {
            self.counters[i] = 0;
        } else {
            self.counters[i] = (self.counters[i] + 1).min(self.threshold);
        }
    }
}

/// PUBS define/branch-slice tracking at rename time.
///
/// `DefTable` maps each architectural register to the sequence number of
/// its most recent producer; when an unconfident branch renames, its
/// operand producers (and transitively *their* producers, one level per
/// rename pass, which converges quickly in practice) are marked
/// high-priority via the issue queues.
#[derive(Debug, Clone, Default)]
pub struct DefTable {
    producer: [u64; 32],
}

impl DefTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `seq` produces architectural register `rd`.
    pub fn define(&mut self, rd: u8, seq: u64) {
        if rd != 0 {
            self.producer[rd as usize] = seq;
        }
    }

    /// The most recent producer of `rs` (0 = none in flight).
    pub fn producer_of(&self, rs: u8) -> u64 {
        self.producer[rs as usize]
    }

    /// Forget everything (flush).
    pub fn clear(&mut self) {
        self.producer = [0; 32];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(policy: IssuePolicy) -> IssueQueue {
        IssueQueue::new(FuClass::Alu, 8, 2, policy)
    }

    #[test]
    fn age_policy_prefers_oldest() {
        let mut iq = q(IssuePolicy::Age);
        iq.dispatch(5, true, [None; 3]);
        iq.dispatch(3, false, [None; 3]);
        iq.dispatch(9, false, [None; 3]);
        let (picked, ready) = iq.select(u64::MAX, |_| true);
        assert_eq!(picked.iter().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(ready, 3);
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn pubs_policy_prefers_marked_entries() {
        let mut iq = q(IssuePolicy::Pubs);
        iq.dispatch(3, false, [None; 3]);
        iq.dispatch(5, false, [None; 3]);
        iq.dispatch(9, true, [None; 3]);
        let (picked, _) = iq.select(u64::MAX, |_| true);
        assert_eq!(picked.iter().collect::<Vec<_>>(), vec![9, 3], "priority first, then age");
    }

    #[test]
    fn only_ready_entries_are_selected() {
        let mut iq = q(IssuePolicy::Age);
        iq.dispatch(1, false, [None; 3]);
        iq.dispatch(2, false, [None; 3]);
        let (picked, ready) = iq.select(u64::MAX, |e| e.seq == 2);
        assert_eq!(picked.iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(ready, 1);
        assert_eq!(iq.len(), 1);
    }

    #[test]
    fn flush_removes_younger() {
        let mut iq = q(IssuePolicy::Age);
        for s in 1..=5 {
            iq.dispatch(s, false, [None; 3]);
        }
        iq.flush_after(2);
        assert_eq!(iq.len(), 2);
        let (picked, _) = iq.select(u64::MAX, |_| true);
        assert_eq!(picked.iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn late_priority_marking() {
        let mut iq = q(IssuePolicy::Pubs);
        iq.dispatch(1, false, [None; 3]);
        iq.dispatch(2, false, [None; 3]);
        iq.mark_high_priority(2);
        let (picked, _) = iq.select(u64::MAX, |_| true);
        assert_eq!(picked.iter().next(), Some(2));
    }

    #[test]
    fn conf_table_learns_confidence() {
        let mut ct = ConfTable::new(64, 3);
        let pc = 0x1000;
        assert!(ct.unconfident(pc), "cold branches are unconfident");
        for _ in 0..3 {
            ct.update(pc, false);
        }
        assert!(!ct.unconfident(pc));
        ct.update(pc, true); // one mispredict resets
        assert!(ct.unconfident(pc));
    }

    #[test]
    fn def_table_tracks_producers() {
        let mut dt = DefTable::new();
        dt.define(5, 100);
        dt.define(0, 101); // x0 never recorded
        assert_eq!(dt.producer_of(5), 100);
        assert_eq!(dt.producer_of(0), 0);
        dt.define(5, 102);
        assert_eq!(dt.producer_of(5), 102);
        dt.clear();
        assert_eq!(dt.producer_of(5), 0);
    }
}
