//! Per-instruction pipeline lifecycle tracing.
//!
//! Every in-flight uop carries a compact set of pure-integer cycle
//! stamps (fetch/decode/rename/dispatch/issue/execute/writeback) in its
//! ROB entry; when the uop leaves the machine — retired or squashed — a
//! [`Lifecycle`] record is finalized. Two consumers exist:
//!
//! * an **always-on ring buffer** ([`LifecycleRing`]) of the last
//!   [`LIFECYCLE_RING_CAP`] records, snapshotted into triage bundles on
//!   campaign failures so every diverged/timeout job ships a pipeline
//!   waterfall of its final window, and
//! * a **full-trace mode** (gated behind `XsConfig::lifecycle`) that
//!   streams every record into ArchDB and can be exported as
//!   gem5-O3PipeView/Konata-compatible text ([`render_o3pipeview`]).
//!
//! An always-on [`LifecycleDigest`] (per-stage gap histograms,
//! squash-cause counts, dominant-stall attribution reusing the CPI-stack
//! category names) lives inside `PerfCounters` so the two observability
//! layers cross-check (see [`LifecycleDigest::cross_check`]).

use crate::perf::PerfCounters;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Capacity of the always-on per-core ring buffer (and therefore the
/// upper bound on the ring snapshot embedded in a triage bundle).
pub const LIFECYCLE_RING_CAP: usize = 64;

/// Why a uop was squashed instead of retiring.
///
/// The order is stable: [`LifecycleDigest::squash_causes`] is indexed by
/// `cause as usize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SquashCause {
    /// Flushed by an older mispredicted branch.
    Mispredict,
    /// Flushed by a memory-order violation detected at commit.
    MemOrderViolation,
    /// Flushed by an older serializing instruction (CSR/system/atomic).
    Serialize,
    /// Flushed by an older instruction taking an architectural exception
    /// (the excepting instruction itself is tagged this way too).
    Exception,
}

impl SquashCause {
    /// Stable display names, digest index order.
    pub const NAMES: [&'static str; 4] =
        ["mispredict", "mem_order_violation", "serialize", "exception"];

    /// Display name.
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }
}

/// Per-uop pipeline stage stamps, recorded unconditionally (plain u64
/// stores on the default path). A stamp of 0 means "never reached".
///
/// In this model predecode *is* decode (so `decoded == fetched`) and
/// rename/dispatch happen in the same cycle (`dispatched == renamed`);
/// both pairs are kept distinct so the export format stays
/// O3PipeView-shaped and survives a future decoupled frontend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifeStamps {
    /// Cycle the instruction entered the instruction buffer.
    pub fetched: u64,
    /// Cycle the instruction was predecoded (== `fetched` today).
    pub decoded: u64,
    /// Cycle the uop was renamed.
    pub renamed: u64,
    /// Cycle the uop was dispatched to an issue queue (== `renamed`).
    pub dispatched: u64,
    /// Cycle of the (last) issue to a functional unit / LSU.
    pub issued: u64,
    /// Cycle execution produced the result.
    pub executed: u64,
    /// Cycle the result was written back (== `executed` today).
    pub writeback: u64,
    /// Number of LSU replays this uop suffered before completing.
    pub replays: u64,
}

/// A finalized lifecycle record: one uop's trip through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lifecycle {
    /// Hart the uop executed on.
    pub hart: u64,
    /// ROB sequence number (global program order, gaps after flushes).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Raw instruction bits.
    pub inst: u32,
    /// Fused macro-op (counts as two architectural instructions).
    pub fused: bool,
    /// Memory operation (load/store/atomic) — selects the memory-stall
    /// bucket in dominant-gap attribution.
    pub mem: bool,
    /// Stage stamps.
    pub stamps: LifeStamps,
    /// Commit cycle (0 when squashed).
    pub committed: u64,
    /// Squash cycle (0 when retired).
    pub squashed_at: u64,
    /// Why the uop was squashed (`None` when retired).
    pub cause: Option<SquashCause>,
}

impl Lifecycle {
    /// True when the uop retired architecturally.
    pub fn retired(&self) -> bool {
        self.committed != 0
    }

    /// The cycle the record was finalized (commit or squash).
    pub fn end_cycle(&self) -> u64 {
        if self.retired() {
            self.committed
        } else {
            self.squashed_at
        }
    }
}

/// Always-on bounded ring of the most recent finalized records.
#[derive(Debug, Clone, Default)]
pub struct LifecycleRing {
    buf: VecDeque<Lifecycle>,
    cap: usize,
}

impl LifecycleRing {
    /// A ring holding at most `cap` records.
    pub fn new(cap: usize) -> Self {
        LifecycleRing {
            buf: VecDeque::with_capacity(cap),
            cap,
        }
    }

    /// Append, evicting the oldest record when full.
    pub fn push(&mut self, rec: Lifecycle) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(rec);
    }

    /// Records currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<Lifecycle> {
        self.buf.iter().copied().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Number of power-of-two buckets per gap histogram (bucket 15 is
/// ">= 2^14 cycles").
pub const GAP_BUCKETS: usize = 16;

fn gap_bucket(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(GAP_BUCKETS - 1)
    }
}

/// Always-on, pure-integer summary of every finalized lifecycle record.
///
/// Lives inside `PerfCounters` so it rides the existing `PerfSnapshot`
/// plumbing into campaign reports (deterministic body). The
/// `dominant_stall` array reuses the CPI-stack component order
/// (`CpiStack::components`) so the two attribution layers can be checked
/// against each other.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleDigest {
    /// Records finalized as retired.
    pub retired: u64,
    /// Records finalized as squashed.
    pub squashed: u64,
    /// Squashed records per [`SquashCause`] (index = `cause as usize`).
    pub squash_causes: [u64; 4],
    /// Total LSU replays observed across all uops.
    pub replays: u64,
    /// Fetch→rename gap histogram (frontend / ibuf wait).
    pub gap_fetch_rename: [u64; GAP_BUCKETS],
    /// Rename→issue gap histogram (issue-queue wait).
    pub gap_rename_issue: [u64; GAP_BUCKETS],
    /// Issue→writeback gap histogram (execution / memory latency).
    pub gap_issue_writeback: [u64; GAP_BUCKETS],
    /// Writeback→commit gap histogram (ROB wait).
    pub gap_writeback_commit: [u64; GAP_BUCKETS],
    /// Per retired uop, the CPI-stack category of its largest stage gap:
    /// fetch→rename ⇒ `frontend_starved`, rename→issue ⇒ `iq_full`,
    /// issue→writeback ⇒ `memory_stall` (memory ops) / `other`,
    /// writeback→commit ⇒ `serialization`; all gaps zero ⇒ `retired`.
    /// Indexed like `CpiStack::components()`.
    pub dominant_stall: [u64; 8],
}

/// `dominant_stall` index constants (CPI-stack component order).
const DS_RETIRED: usize = 0;
const DS_FRONTEND: usize = 1;
const DS_MEMORY: usize = 3;
const DS_IQ: usize = 5;
const DS_SERIALIZATION: usize = 6;
const DS_OTHER: usize = 7;

/// Stable display names for the `dominant_stall` slots.
pub const DOMINANT_STALL_NAMES: [&'static str; 8] = [
    "retired",
    "frontend_starved",
    "mispredict_recovery",
    "memory_stall",
    "rob_full",
    "iq_full",
    "serialization",
    "other",
];

impl LifecycleDigest {
    /// Fold a retired record into the digest.
    pub fn observe_retired(&mut self, rec: &Lifecycle) {
        self.retired += 1;
        self.replays += rec.stamps.replays;
        let s = &rec.stamps;
        let g_front = s.renamed.saturating_sub(s.fetched);
        let g_issue = s.issued.saturating_sub(s.dispatched);
        let g_exec = s.writeback.saturating_sub(s.issued);
        let g_commit = rec.committed.saturating_sub(s.writeback);
        self.gap_fetch_rename[gap_bucket(g_front)] += 1;
        self.gap_rename_issue[gap_bucket(g_issue)] += 1;
        self.gap_issue_writeback[gap_bucket(g_exec)] += 1;
        self.gap_writeback_commit[gap_bucket(g_commit)] += 1;
        // Largest gap wins; ties resolve to the earliest stage so the
        // attribution stays deterministic.
        let exec_slot = if rec.mem { DS_MEMORY } else { DS_OTHER };
        let gaps = [
            (g_front, DS_FRONTEND),
            (g_issue, DS_IQ),
            (g_exec, exec_slot),
            (g_commit, DS_SERIALIZATION),
        ];
        let (max_gap, slot) = gaps
            .iter()
            .copied()
            .max_by_key(|&(g, _)| g)
            .map(|best| {
                gaps.iter()
                    .copied()
                    .find(|&(g, _)| g == best.0)
                    .unwrap_or(best)
            })
            .unwrap();
        if max_gap == 0 {
            self.dominant_stall[DS_RETIRED] += 1;
        } else {
            self.dominant_stall[slot] += 1;
        }
    }

    /// Fold a squashed record into the digest.
    pub fn observe_squashed(&mut self, rec: &Lifecycle, cause: SquashCause) {
        self.squashed += 1;
        self.replays += rec.stamps.replays;
        self.squash_causes[cause as usize] += 1;
    }

    /// Check the digest against the independently-maintained CPI-stack
    /// layer of the same run. Returns the violated invariant on failure.
    ///
    /// Exact identities: every retired record carries exactly one
    /// dominant-stall tag, retired records equal committed uops, and
    /// squashed records sum over their causes. Liveness implications: a
    /// nonzero squash-cause count requires the matching flush counter to
    /// be live (the converse cannot hold — a flush may squash zero
    /// younger uops).
    pub fn cross_check(&self, perf: &PerfCounters) -> Result<(), String> {
        let ds_sum: u64 = self.dominant_stall.iter().sum();
        if ds_sum != self.retired {
            return Err(format!(
                "dominant-stall sum {ds_sum} != retired records {}",
                self.retired
            ));
        }
        if self.retired != perf.uops {
            return Err(format!(
                "retired lifecycle records {} != committed uops {}",
                self.retired, perf.uops
            ));
        }
        let cause_sum: u64 = self.squash_causes.iter().sum();
        if cause_sum != self.squashed {
            return Err(format!(
                "squash-cause sum {cause_sum} != squashed records {}",
                self.squashed
            ));
        }
        let flush_live = [
            perf.flushes_mispredict,
            perf.flushes_violation,
            perf.flushes_system,
            perf.exceptions,
        ];
        for (i, (&count, &live)) in
            self.squash_causes.iter().zip(flush_live.iter()).enumerate()
        {
            if count > 0 && live == 0 {
                return Err(format!(
                    "{} squashes recorded but the matching flush counter is zero",
                    SquashCause::NAMES[i]
                ));
            }
        }
        Ok(())
    }

    /// Merge another digest into this one (multi-core aggregation).
    pub fn merge(&mut self, other: &LifecycleDigest) {
        self.retired += other.retired;
        self.squashed += other.squashed;
        self.replays += other.replays;
        for i in 0..4 {
            self.squash_causes[i] += other.squash_causes[i];
        }
        for i in 0..GAP_BUCKETS {
            self.gap_fetch_rename[i] += other.gap_fetch_rename[i];
            self.gap_rename_issue[i] += other.gap_rename_issue[i];
            self.gap_issue_writeback[i] += other.gap_issue_writeback[i];
            self.gap_writeback_commit[i] += other.gap_writeback_commit[i];
        }
        for i in 0..8 {
            self.dominant_stall[i] += other.dominant_stall[i];
        }
    }
}

fn bucket_label(i: usize) -> String {
    match i {
        0 => "0".into(),
        1 => "1".into(),
        i if i == GAP_BUCKETS - 1 => format!(">={}", 1u64 << (GAP_BUCKETS - 2)),
        i => format!("{}-{}", 1u64 << (i - 1), (1u64 << i) - 1),
    }
}

fn render_gap_hist(out: &mut String, name: &str, hist: &[u64; GAP_BUCKETS]) {
    let total: u64 = hist.iter().sum();
    if total == 0 {
        out.push_str(&format!("  {name:<22} (no samples)\n"));
        return;
    }
    out.push_str(&format!("  {name:<22} samples={total}\n"));
    let max = hist.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in hist.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar = "#".repeat(((c * 40) / max).max(1) as usize);
        out.push_str(&format!("    {:>12} {:>10} {bar}\n", bucket_label(i), c));
    }
}

/// Render the per-stage gap histograms, squash-cause counts, and
/// dominant-stall attribution of a digest as aligned ASCII.
pub fn render_gap_summary(d: &LifecycleDigest) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "lifecycle digest: retired={} squashed={} replays={}\n",
        d.retired, d.squashed, d.replays
    ));
    render_gap_hist(&mut s, "fetch->rename", &d.gap_fetch_rename);
    render_gap_hist(&mut s, "rename->issue", &d.gap_rename_issue);
    render_gap_hist(&mut s, "issue->writeback", &d.gap_issue_writeback);
    render_gap_hist(&mut s, "writeback->commit", &d.gap_writeback_commit);
    s.push_str("  squash causes\n");
    for (i, &c) in d.squash_causes.iter().enumerate() {
        if c > 0 {
            s.push_str(&format!("    {:<22} {c}\n", SquashCause::NAMES[i]));
        }
    }
    s.push_str("  dominant stall (per retired uop, CPI-stack categories)\n");
    for (i, &c) in d.dominant_stall.iter().enumerate() {
        if c > 0 {
            s.push_str(&format!("    {:<22} {c}\n", DOMINANT_STALL_NAMES[i]));
        }
    }
    s
}

const WATERFALL_COLS: usize = 48;

/// Render records as an ASCII waterfall: one row per uop with its stage
/// stamps and a lane scaled onto the window's cycle range
/// (`F`etch, `R`ename, `I`ssue, `W`riteback, `C`ommit / `x` squash).
pub fn render_waterfall(records: &[Lifecycle]) -> String {
    let mut s = String::new();
    if records.is_empty() {
        s.push_str("(no lifecycle records)\n");
        return s;
    }
    let lo = records
        .iter()
        .map(|r| {
            if r.stamps.fetched != 0 {
                r.stamps.fetched
            } else {
                r.stamps.renamed
            }
        })
        .filter(|&c| c != 0)
        .min()
        .unwrap_or(1);
    let hi = records.iter().map(|r| r.end_cycle()).max().unwrap_or(lo).max(lo + 1);
    let span = (hi - lo).max(1);
    let col = |c: u64| -> Option<usize> {
        if c == 0 {
            None
        } else {
            Some((((c.max(lo) - lo) * (WATERFALL_COLS as u64 - 1)) / span) as usize)
        }
    };
    s.push_str(&format!(
        "waterfall: {} records, cycles {lo}..{hi}\n",
        records.len()
    ));
    s.push_str(&format!(
        "{:>10} {:>18} {:>8} {:>8} {:>8} {:>8} {:>8}  lane\n",
        "seq", "pc", "fetch", "rename", "issue", "wb", "end"
    ));
    for r in records {
        let mut lane = vec![b' '; WATERFALL_COLS];
        let mut mark = |c: u64, ch: u8| {
            if let Some(i) = col(c) {
                lane[i] = ch;
            }
        };
        // Later stages overwrite earlier ones on collision.
        mark(r.stamps.fetched, b'F');
        mark(r.stamps.renamed, b'R');
        mark(r.stamps.issued, b'I');
        mark(r.stamps.writeback, b'W');
        if r.retired() {
            mark(r.committed, b'C');
        } else {
            mark(r.squashed_at, b'x');
        }
        let end = if r.retired() {
            format!("C@{}", r.committed)
        } else {
            format!(
                "x@{} {}",
                r.squashed_at,
                r.cause.map(|c| c.name()).unwrap_or("?")
            )
        };
        s.push_str(&format!(
            "{:>10} {:>#18x} {:>8} {:>8} {:>8} {:>8} {:>8}  |{}|\n",
            r.seq,
            r.pc,
            r.stamps.fetched,
            r.stamps.renamed,
            r.stamps.issued,
            r.stamps.writeback,
            end,
            String::from_utf8_lossy(&lane)
        ));
    }
    s
}

/// Export records as gem5-O3PipeView text (Konata-compatible): one
/// `fetch` line carrying pc/seq, one line per later stage, and a
/// `retire` line whose tick is 0 for squashed uops.
pub fn render_o3pipeview(records: &[Lifecycle]) -> String {
    let mut s = String::new();
    for r in records {
        s.push_str(&format!(
            "O3PipeView:fetch:{}:0x{:016x}:0:{}:inst_{:08x}\n",
            r.stamps.fetched, r.pc, r.seq, r.inst
        ));
        s.push_str(&format!("O3PipeView:decode:{}\n", r.stamps.decoded));
        s.push_str(&format!("O3PipeView:rename:{}\n", r.stamps.renamed));
        s.push_str(&format!("O3PipeView:dispatch:{}\n", r.stamps.dispatched));
        s.push_str(&format!("O3PipeView:issue:{}\n", r.stamps.issued));
        s.push_str(&format!("O3PipeView:complete:{}\n", r.stamps.writeback));
        s.push_str(&format!("O3PipeView:retire:{}:store:0\n", r.committed));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, fetched: u64, committed: u64) -> Lifecycle {
        Lifecycle {
            hart: 0,
            seq,
            pc: 0x8000_0000 + seq * 4,
            inst: 0x13,
            fused: false,
            mem: false,
            stamps: LifeStamps {
                fetched,
                decoded: fetched,
                renamed: fetched + 2,
                dispatched: fetched + 2,
                issued: fetched + 3,
                executed: fetched + 4,
                writeback: fetched + 4,
                replays: 0,
            },
            committed,
            squashed_at: 0,
            cause: None,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = LifecycleRing::new(3);
        for i in 0..5 {
            ring.push(rec(i, 10 + i, 20 + i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].seq, 2);
        assert_eq!(snap[2].seq, 4);
    }

    #[test]
    fn gap_buckets_are_log2() {
        assert_eq!(gap_bucket(0), 0);
        assert_eq!(gap_bucket(1), 1);
        assert_eq!(gap_bucket(2), 2);
        assert_eq!(gap_bucket(3), 2);
        assert_eq!(gap_bucket(4), 3);
        assert_eq!(gap_bucket(1 << 20), GAP_BUCKETS - 1);
    }

    #[test]
    fn digest_counts_and_cross_check() {
        let mut d = LifecycleDigest::default();
        let r = rec(1, 100, 110);
        d.observe_retired(&r);
        let mut sq = rec(2, 101, 0);
        sq.squashed_at = 105;
        sq.cause = Some(SquashCause::Mispredict);
        d.observe_squashed(&sq, SquashCause::Mispredict);
        assert_eq!(d.retired, 1);
        assert_eq!(d.squashed, 1);
        assert_eq!(d.squash_causes[SquashCause::Mispredict as usize], 1);
        assert_eq!(d.dominant_stall.iter().sum::<u64>(), 1);
        // writeback->commit gap (6) dominates -> serialization slot.
        assert_eq!(d.dominant_stall[DS_SERIALIZATION], 1);

        let mut perf = PerfCounters::default();
        perf.uops = 1;
        perf.flushes_mispredict = 1;
        assert!(d.cross_check(&perf).is_ok());
        perf.flushes_mispredict = 0;
        assert!(d.cross_check(&perf).is_err(), "dead flush counter must fail");
        perf.flushes_mispredict = 1;
        perf.uops = 2;
        assert!(d.cross_check(&perf).is_err(), "uops mismatch must fail");
    }

    #[test]
    fn digest_merge_adds() {
        let mut a = LifecycleDigest::default();
        let mut b = LifecycleDigest::default();
        a.observe_retired(&rec(1, 10, 20));
        b.observe_retired(&rec(2, 30, 40));
        let mut sq = rec(3, 31, 0);
        sq.squashed_at = 33;
        b.observe_squashed(&sq, SquashCause::Exception);
        a.merge(&b);
        assert_eq!(a.retired, 2);
        assert_eq!(a.squashed, 1);
        assert_eq!(a.squash_causes[SquashCause::Exception as usize], 1);
    }

    #[test]
    fn mem_ops_attribute_to_memory_stall() {
        let mut d = LifecycleDigest::default();
        let mut r = rec(1, 100, 0);
        r.mem = true;
        r.stamps.issued = 103;
        r.stamps.writeback = 150; // huge execution gap
        r.committed = 151;
        d.observe_retired(&r);
        assert_eq!(d.dominant_stall[DS_MEMORY], 1);
    }

    #[test]
    fn renders_are_nonempty_and_deterministic() {
        let records = vec![rec(1, 100, 110), {
            let mut r = rec(2, 101, 0);
            r.squashed_at = 104;
            r.cause = Some(SquashCause::Serialize);
            r
        }];
        let w1 = render_waterfall(&records);
        let w2 = render_waterfall(&records);
        assert_eq!(w1, w2);
        assert!(w1.contains("2 records"));
        assert!(w1.contains("serialize"));
        let o3 = render_o3pipeview(&records);
        assert!(o3.contains("O3PipeView:fetch:100:"));
        assert!(o3.contains("O3PipeView:retire:110:store:0"));
        assert!(o3.contains("O3PipeView:retire:0:store:0"), "squashed -> retire tick 0");
        let mut d = LifecycleDigest::default();
        d.observe_retired(&records[0]);
        let g = render_gap_summary(&d);
        assert!(g.contains("retired=1"));
        assert!(g.contains("fetch->rename"));
    }

    #[test]
    fn empty_waterfall_renders() {
        assert!(render_waterfall(&[]).contains("no lifecycle records"));
    }
}
