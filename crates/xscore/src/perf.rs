//! Performance counters — the detailed counters the paper's §IV-D2
//! analysis reads from simulation ("we look into the detailed performance
//! counters obtained from simulation").

use serde::{Deserialize, Serialize};

/// Aggregated per-core performance counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Architecturally retired instructions (fused pairs count as two).
    pub instret: u64,
    /// Committed micro-ops (fused pairs count as one).
    pub uops: u64,
    /// Committed fused macro-ops.
    pub fused_pairs: u64,
    /// Committed conditional branches.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub branch_mispredicts: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub load_forwards: u64,
    /// Pipeline flushes due to branch mispredicts.
    pub flushes_mispredict: u64,
    /// Pipeline flushes due to memory-order violations.
    pub flushes_violation: u64,
    /// Pipeline flushes after serializing (system) instructions.
    pub flushes_system: u64,
    /// Architectural exceptions taken.
    pub exceptions: u64,
    /// SC instructions that failed.
    pub sc_failures: u64,
    /// Register moves eliminated at rename.
    pub moves_eliminated: u64,
    /// Cycles in which rename stalled because the ROB was full.
    pub rob_full_cycles: u64,
    /// Distribution over cycles of the number of ready-to-issue
    /// instructions in the ALU issue queues (Fig. 15); bucket 15 is
    /// ">= 15".
    pub ready_hist: [u64; 16],
    /// Instructions dispatched with the PUBS high-priority mark.
    pub high_priority_dispatched: u64,
    /// Total dispatched instructions.
    pub dispatched: u64,
}

impl PerfCounters {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instret as f64 / self.cycles as f64
        }
    }

    /// Branch mispredictions per kilo-instruction (the PUBS paper's
    /// selection metric).
    pub fn mpki(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            1000.0 * self.branch_mispredicts as f64 / self.instret as f64
        }
    }

    /// Record a ready-count observation for the Fig. 15 histogram.
    pub fn record_ready(&mut self, ready: usize) {
        self.ready_hist[ready.min(15)] += 1;
    }

    /// Fraction of cycles in which more instructions were ready than the
    /// paper's two-wide issue could service (the §IV-D2 "12.8%" metric).
    pub fn frac_cycles_ready_gt(&self, k: usize) -> f64 {
        let total: u64 = self.ready_hist.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = self.ready_hist[k + 1..].iter().sum();
        above as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let mut p = PerfCounters::default();
        assert_eq!(p.ipc(), 0.0);
        p.cycles = 100;
        p.instret = 250;
        assert!((p.ipc() - 2.5).abs() < 1e-12);
        p.branch_mispredicts = 5;
        assert!((p.mpki() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ready_histogram() {
        let mut p = PerfCounters::default();
        p.record_ready(0);
        p.record_ready(2);
        p.record_ready(3);
        p.record_ready(99);
        assert_eq!(p.ready_hist[0], 1);
        assert_eq!(p.ready_hist[2], 1);
        assert_eq!(p.ready_hist[15], 1);
        // 2 of 4 observations exceed 2.
        assert!((p.frac_cycles_ready_gt(2) - 0.5).abs() < 1e-12);
    }
}
